GO ?= go

.PHONY: build test race vet check bench bench-allocs bench-short bench-all obs-smoke chaos clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full test suite
# under the race detector.
check: vet race

# bench runs the performance suites with 5 samples per benchmark and
# archives the aggregated results: the snapshot/apply suite as
# BENCH_snapshot.json, the wire-format ingest suite (segb1 binary
# encode/decode vs text parse/write, end-to-end frontend throughput,
# and the BenchmarkIngestApplyShards shards=1/2/4/8 graph-apply scaling
# curve) as BENCH_ingest.json, the classify pipeline suite (full vs
# delta classify-all, the sharded-backend delta variant, batch scoring)
# as BENCH_classify.json, and the belief propagation suite (cold full
# pass vs residual incremental pass) as BENCH_lbp.json. It is
# informational (no CI gate; bench-allocs holds the hard gates); diff
# the JSON across commits to spot regressions. events/s rates land in
# each benchmark's "extra" map.
bench:
	$(GO) test -bench . -benchmem -count=5 -run '^$$' ./internal/graph \
		| $(GO) run ./cmd/benchjson -o BENCH_snapshot.json
	$(GO) test -bench 'BenchmarkParseEventText|BenchmarkDecodeEventsBinary|BenchmarkEncodeEventsBinary|BenchmarkWriteEventText|BenchmarkIngest' \
		-benchmem -count=5 -run '^$$' ./internal/logio ./internal/ingest \
		| $(GO) run ./cmd/benchjson -o BENCH_ingest.json
	$(GO) test -bench 'BenchmarkClassifyAll|BenchmarkScore' -benchmem -count=5 -run '^$$' \
		./internal/server ./internal/ml \
		| $(GO) run ./cmd/benchjson -o BENCH_classify.json
	$(GO) test -bench 'BenchmarkLBP' -benchmem -count=5 -run '^$$' ./internal/belief \
		| $(GO) run ./cmd/benchjson -o BENCH_lbp.json
	$(GO) test -bench . -benchmem -count=5 -run '^$$' ./internal/tsdb \
		| $(GO) run ./cmd/benchjson -o BENCH_obs.json

# bench-allocs is the CI allocation gate: fails when the steady-state
# delta classify pass allocates more than its fixed budget (see
# scripts/bench-allocs.sh), which would mean it regressed to O(graph).
bench-allocs:
	./scripts/bench-allocs.sh

bench-all:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# bench-short compiles and runs every benchmark exactly once — a smoke
# test that the benchmark suite still builds and executes (CI runs this).
bench-short:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# chaos runs the fault-injection e2e suite under the race detector: a
# full daemon driven healthy -> degraded -> overloaded -> recovered via
# injected pass stalls, fsync faults, and an event flood, plus a
# SIGKILL at peak overload — asserting stale-marked serves, exact shed
# accounting, and no acknowledged event lost.
chaos:
	$(GO) test -race -count=1 -v -run 'TestDaemonChaos' ./cmd/segugiod/

# obs-smoke boots a real segugiod, feeds it a canned event trace, and
# curls the observability surface (/metrics, /debug/obs/traces,
# /v1/audit, /healthz). Fails if any endpoint is missing or broken.
obs-smoke:
	./scripts/obs-smoke.sh

clean:
	$(GO) clean ./...
	rm -f segugio segugiod segugio-experiments
