GO ?= go

.PHONY: build test race vet check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full test suite
# under the race detector.
check: vet race

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

clean:
	$(GO) clean ./...
	rm -f segugio segugiod segugio-experiments
