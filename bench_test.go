// Package segugio_bench benchmarks every stage of the pipeline and one
// bench per reproduced table/figure (DESIGN.md Section 4). Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks use the small test-scale networks so the suite completes in
// minutes; cmd/segugio-experiments runs the same experiments at paper
// scale.
package segugio_bench

import (
	"math/rand"
	"sync"
	"testing"

	"segugio/internal/activity"
	"segugio/internal/belief"
	"segugio/internal/core"
	"segugio/internal/dnsutil"
	"segugio/internal/eval"
	"segugio/internal/experiments"
	"segugio/internal/features"
	"segugio/internal/graph"
	"segugio/internal/ml"
	"segugio/internal/notos"
	"segugio/internal/trace"
)

var bench struct {
	once sync.Once
	u    *experiments.Universe
	isp1 *experiments.Network
	isp2 *experiments.Network
	err  error
}

func fixture(b *testing.B) (*experiments.Universe, *experiments.Network, *experiments.Network) {
	b.Helper()
	bench.once.Do(func() {
		u, err := experiments.NewUniverse(experiments.TestUniverseParams(61), experiments.UniverseOptions{})
		if err != nil {
			bench.err = err
			return
		}
		bench.u = u
		bench.isp1 = u.Network(experiments.TestPopulation("B1", 31))
		bench.isp2 = u.Network(experiments.TestPopulation("B2", 32))
	})
	if bench.err != nil {
		b.Fatal(bench.err)
	}
	return bench.u, bench.isp1, bench.isp2
}

// labeledDay returns a labeled day graph plus its feature context.
func labeledDay(b *testing.B, n *experiments.Network, day int) (*graph.Graph, *activity.Log, *core.TrainInput) {
	b.Helper()
	dd := n.Day(day)
	g := n.Labeled(dd, n.Commercial, nil)
	in := &core.TrainInput{Graph: g, Activity: dd.Activity, Abuse: n.Abuse(day, n.Commercial)}
	return g, dd.Activity, in
}

// --- Table I: graph construction over a full ISP-day ---

func BenchmarkTableIGraphBuild(b *testing.B) {
	u, isp1, _ := fixture(b)
	sl := dnsutil.DefaultSuffixList()
	tr := isp1.Gen.GenerateDay(170)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := trace.BuildGraph(tr, u.Cat, sl)
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkGraphBuildScale sweeps the machine population, demonstrating
// the near-linear scaling behind the paper's Section IV-G claim.
func BenchmarkGraphBuildScale(b *testing.B) {
	u, _, _ := fixture(b)
	sl := dnsutil.DefaultSuffixList()
	for _, machines := range []int{500, 1000, 2000, 4000} {
		pop := experiments.TestPopulation("SCALE", 77)
		pop.Machines = machines
		gen := trace.NewGeneratorFor(u.Cat, pop)
		tr := gen.GenerateDay(170)
		b.Run(itoa(machines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trace.BuildGraph(tr, u.Cat, sl)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Section III: pruning ---

func BenchmarkGraphPrune(b *testing.B) {
	_, isp1, _ := fixture(b)
	g, _, _ := labeledDay(b, isp1, 170)
	cfg := graph.DefaultPruneConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.Prune(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section IV-G: pipeline phases ---

func BenchmarkPipelineTrain(b *testing.B) {
	_, isp1, _ := fixture(b)
	_, _, in := labeledDay(b, isp1, 170)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Train(cfg, *in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineClassify(b *testing.B) {
	_, isp1, _ := fixture(b)
	_, _, in := labeledDay(b, isp1, 170)
	det, _, err := core.Train(core.DefaultConfig(), *in)
	if err != nil {
		b.Fatal(err)
	}
	ci := core.ClassifyInput{Graph: in.Graph, Activity: in.Activity, Abuse: in.Abuse}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.Classify(ci); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	_, isp1, _ := fixture(b)
	_, _, in := labeledDay(b, isp1, 170)
	pruned, _, err := graph.Prune(in.Graph, graph.DefaultPruneConfig())
	if err != nil {
		b.Fatal(err)
	}
	ex, err := features.NewExtractor(pruned, in.Activity, in.Abuse, 14)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := features.TrainingSet(ex, nil)
		if ds.Len() == 0 {
			b.Fatal("empty training set")
		}
	}
}

// --- Figure 3 / Table I / pruning statistics ---

func BenchmarkFig3Distribution(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(isp1, 170); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	_, isp1, _ := fixture(b)
	nets := []*experiments.Network{isp1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(nets, []int{170}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPruningStats(b *testing.B) {
	_, isp1, _ := fixture(b)
	nets := []*experiments.Network{isp1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPruning(nets, []int{170}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II + Figure 6: cross-day / cross-network ---

func BenchmarkFig6CrossDay(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCross(isp1, 170, isp1, 178, experiments.CrossOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6CrossNetwork(b *testing.B) {
	_, isp1, isp2 := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCross(isp1, 170, isp2, 178, experiments.CrossOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: feature ablations ---

func BenchmarkFig7Ablations(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(isp1, 170, 178, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: cross-malware-family ---

func BenchmarkFig8CrossFamily(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(isp1, 175, 4, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table III: FP analysis ---

func BenchmarkTable3FPAnalysis(b *testing.B) {
	_, isp1, _ := fixture(b)
	cross, err := experiments.RunCross(isp1, 170, isp1, 178, experiments.CrossOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	nets := map[string]*experiments.Network{isp1.Name(): isp1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3([]*experiments.CrossResult{cross}, nets); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10 + cross-blacklist (Section IV-E) ---

func BenchmarkFig10PublicBlacklists(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10(isp1, 170, 178, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossBlacklist(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCrossBlacklist(isp1, 170, 178, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 11: early detection ---

func BenchmarkFig11EarlyDetection(b *testing.B) {
	_, isp1, _ := fixture(b)
	nets := []*experiments.Network{isp1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig11(nets, []int{170}, 35, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12 + Table IV: Notos comparison ---

func BenchmarkFig12NotosComparison(b *testing.B) {
	_, isp1, _ := fixture(b)
	nets := []*experiments.Network{isp1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig12(nets, 170, 185, 13); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNotosTrain(b *testing.B) {
	u, isp1, _ := fixture(b)
	bl := isp1.Commercial.Union(isp1.Public)
	cfg := notos.Config{Suffixes: u.Suffixes}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := notos.Train(cfg, u.DB, 170, bl, u.Top100K); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section I: loopy belief propagation baseline ---

func BenchmarkBeliefPropagation(b *testing.B) {
	_, isp1, _ := fixture(b)
	g, _, _ := labeledDay(b, isp1, 170)
	pruned, _, err := graph.Prune(g, graph.DefaultPruneConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := belief.Propagate(pruned, belief.Config{MaxIterations: 15}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLBPComparison(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLBP(isp1, 170, 178, false, 17); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

func BenchmarkClassifierAblation(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClassifiers(isp1, 170, 178, 21); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPruningAblation(b *testing.B) {
	_, isp1, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPruningAblation(isp1, 170, 178, 23); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the ML substrate ---

func benchDataset(n int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(9))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		row := make([]float64, features.NumFeatures)
		for f := range row {
			row[f] = rng.NormFloat64() + float64(c)
		}
		X[i] = row
		y[i] = c
	}
	return X, y
}

func BenchmarkRandomForestFit(b *testing.B) {
	X, y := benchDataset(20000)
	cfg := ml.RandomForestConfig{NumTrees: 48, MaxDepth: 14, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := ml.NewRandomForest(cfg)
		if err := rf.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestScore(b *testing.B) {
	X, y := benchDataset(5000)
	rf := ml.NewRandomForest(ml.RandomForestConfig{NumTrees: 48, MaxDepth: 14, Seed: 1})
	if err := rf.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf.Score(X[i%len(X)])
	}
}

func BenchmarkLogisticRegressionFit(b *testing.B) {
	X, y := benchDataset(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := ml.NewLogisticRegression(ml.LogisticRegressionConfig{Epochs: 10, Seed: 1})
		if err := lr.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkROCConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 100000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ROC(scores, labels); err != nil {
			b.Fatal(err)
		}
	}
}
