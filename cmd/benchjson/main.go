// Command benchjson converts `go test -bench` text output into a JSON
// report, so benchmark runs can be archived and diffed mechanically:
//
//	go test -bench . -benchmem -count=5 -run '^$' ./internal/graph | benchjson -o BENCH_snapshot.json
//
// Repeated samples of the same benchmark (from -count=N) are aggregated:
// the report carries the per-benchmark minimum (the conventional
// steady-state estimate), mean, and sample count for ns/op and B/op.
// Custom units emitted via b.ReportMetric (events/s, MB/s, ...) are
// captured into an "extra" map holding the mean across samples.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
	extra       map[string]float64
}

// Result is one aggregated benchmark in the JSON report.
type Result struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	BPerOpMean  float64 `json:"b_per_op_mean,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom units (b.ReportMetric output such as
	// "events/s"), averaged across samples.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	report, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads benchmark output from r, echoing every line to echo so the
// tool can sit in a pipeline without hiding the underlying run.
func parse(r io.Reader, echo io.Writer) (*Report, error) {
	report := &Report{}
	samples := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, s, ok := parseLine(line)
		if !ok {
			continue
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}

	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := samples[name]
		res := Result{Name: name, Samples: len(ss)}
		res.NsPerOp = ss[0].nsPerOp
		for _, s := range ss {
			if s.nsPerOp < res.NsPerOp {
				res.NsPerOp = s.nsPerOp
			}
			res.NsPerOpMean += s.nsPerOp / float64(len(ss))
			if s.hasMem {
				if res.BPerOp == 0 || s.bytesPerOp < res.BPerOp {
					res.BPerOp = s.bytesPerOp
				}
				res.BPerOpMean += s.bytesPerOp / float64(len(ss))
				if res.AllocsPerOp == 0 || s.allocsPerOp < res.AllocsPerOp {
					res.AllocsPerOp = s.allocsPerOp
				}
			}
			for unit, v := range s.extra {
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] += v / float64(len(ss))
			}
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}
	return report, nil
}

// parseLine decodes one `BenchmarkName-8  123  456 ns/op  789 B/op ...`
// result line. Unit tokens beyond the standard three are collected into
// the sample's extra map (custom b.ReportMetric units, MB/s, ...).
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	var s sample
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp = v
			seenNs = true
		case "B/op":
			s.bytesPerOp = v
			s.hasMem = true
		case "allocs/op":
			s.allocsPerOp = v
			s.hasMem = true
		default:
			if s.extra == nil {
				s.extra = make(map[string]float64)
			}
			s.extra[fields[i+1]] = v
		}
	}
	if !seenNs {
		return "", sample{}, false
	}
	return name, s, true
}
