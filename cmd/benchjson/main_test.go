package main

import (
	"strings"
	"testing"
)

func TestParseCapturesExtraUnits(t *testing.T) {
	out := `goos: linux
goarch: amd64
cpu: test
BenchmarkIngestBinaryThroughput-1   20   54000000 ns/op   120.5 MB/s   3600000 events/s   1024 B/op   12 allocs/op
BenchmarkIngestBinaryThroughput-1   20   56000000 ns/op   118.5 MB/s   3400000 events/s   1024 B/op   12 allocs/op
BenchmarkParseEventText-1          100   10000000 ns/op   512 B/op   3 allocs/op
PASS
`
	report, err := parse(strings.NewReader(out), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(report.Benchmarks))
	}
	bin := report.Benchmarks[0]
	if bin.Name != "BenchmarkIngestBinaryThroughput" || bin.Samples != 2 {
		t.Fatalf("first benchmark = %+v", bin)
	}
	if got := bin.Extra["events/s"]; got != 3500000 {
		t.Fatalf("events/s mean = %v, want 3500000", got)
	}
	if got := bin.Extra["MB/s"]; got != 119.5 {
		t.Fatalf("MB/s mean = %v, want 119.5", got)
	}
	if bin.NsPerOp != 54000000 || bin.AllocsPerOp != 12 {
		t.Fatalf("standard units mis-parsed: %+v", bin)
	}
	text := report.Benchmarks[1]
	if text.Extra != nil {
		t.Fatalf("text benchmark has unexpected extra units: %v", text.Extra)
	}
}
