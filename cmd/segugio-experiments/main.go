// Command segugio-experiments regenerates every table and figure of the
// paper's evaluation on synthetic ISP networks (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	segugio-experiments -exp all                 # everything, paper scale
//	segugio-experiments -exp fig6,table3 -small  # selected, test scale
//	segugio-experiments -list
//
// ROC curves are additionally written as CSV files under -outdir.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"segugio/internal/eval"
	"segugio/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "segugio-experiments:", err)
		os.Exit(1)
	}
}

type env struct {
	isp1, isp2 *experiments.Network
	trainDay   int
	testDay    int
	gapDay     int // a farther test day for the Notos comparison
	outdir     string
	seed       int64
}

type experiment struct {
	name string
	desc string
	run  func(*env) (fmt.Stringer, error)
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("segugio-experiments", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "comma-separated experiment names, or 'all'")
	small := fs.Bool("small", false, "use the small test-scale networks (fast)")
	list := fs.Bool("list", false, "list experiments and exit")
	outdir := fs.String("outdir", "results", "directory for CSV curve output")
	seed := fs.Int64("seed", 1, "base seed for held-out sampling")
	trainDay := fs.Int("train-day", 170, "training observation day")
	testDay := fs.Int("test-day", 183, "test observation day (cross-day gap)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	exps := catalog()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-16s %s\n", e.name, e.desc)
		}
		return nil
	}

	selected, err := selectExperiments(exps, *expFlag)
	if err != nil {
		return err
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "building synthetic ISP networks (small=%v)...\n", *small)
	t0 := time.Now()
	e, err := buildEnv(*small, *seed, *trainDay, *testDay, *outdir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "networks ready in %v\n\n", time.Since(t0).Round(time.Millisecond))

	// Experiments run one at a time; a Ctrl-C lands between them instead
	// of waiting for the remaining catalog.
	for _, ex := range selected {
		if err := ctx.Err(); err != nil {
			return err
		}
		t0 := time.Now()
		res, err := ex.run(e)
		if err != nil {
			return fmt.Errorf("%s: %w", ex.name, err)
		}
		fmt.Printf("==== %s (%v) ====\n%s\n", ex.name, time.Since(t0).Round(time.Millisecond), res)
	}
	return nil
}

func buildEnv(small bool, seed int64, trainDay, testDay int, outdir string) (*env, error) {
	var u *experiments.Universe
	var err error
	var isp1, isp2 *experiments.Network
	if small {
		u, err = experiments.NewUniverse(experiments.TestUniverseParams(41), experiments.UniverseOptions{})
		if err != nil {
			return nil, err
		}
		isp1 = u.Network(experiments.TestPopulation("ISP1", 11))
		isp2 = u.Network(experiments.TestPopulation("ISP2", 22))
	} else {
		u, err = experiments.NewUniverse(experiments.UniverseParams(), experiments.UniverseOptions{})
		if err != nil {
			return nil, err
		}
		isp1 = u.Network(experiments.ISP1Population())
		isp2 = u.Network(experiments.ISP2Population())
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return nil, err
	}
	return &env{
		isp1: isp1, isp2: isp2,
		trainDay: trainDay, testDay: testDay, gapDay: testDay + 12,
		outdir: outdir, seed: seed,
	}, nil
}

func selectExperiments(all []experiment, spec string) ([]experiment, error) {
	if spec == "all" {
		return all, nil
	}
	byName := map[string]experiment{}
	for _, e := range all {
		byName[e.name] = e
	}
	var out []experiment
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		e, ok := byName[name]
		if !ok {
			names := make([]string, 0, len(byName))
			for n := range byName {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown experiment %q (have: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

// crossSummary adapts a CrossResult plus CSV side effects into the
// experiment interface.
type rendered string

func (r rendered) String() string { return string(r) }

func catalog() []experiment {
	return []experiment{
		{name: "table1", desc: "Table I: per-day dataset sizes", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunTable1([]*experiments.Network{e.isp1, e.isp2}, []int{e.trainDay, e.testDay})
		}},
		{name: "fig3", desc: "Figure 3: C&C domains per infected machine", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunFig3(e.isp1, e.trainDay)
		}},
		{name: "pruning", desc: "Section III: pruning reductions", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunPruning([]*experiments.Network{e.isp1, e.isp2}, []int{e.trainDay, e.testDay})
		}},
		{name: "fig6", desc: "Table II + Figure 6: cross-day and cross-network ROC", run: runFig6},
		{name: "fig7", desc: "Figure 7: feature-group ablations", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunFig7(e.isp1, e.trainDay, e.testDay, e.seed)
		}},
		{name: "fig8", desc: "Figure 8: cross-malware-family detection", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunFig8(e.isp1, e.trainDay, 5, e.seed)
		}},
		{name: "table3", desc: "Table III: false-positive analysis", run: runTable3},
		{name: "fig10", desc: "Figure 10: public-blacklist-only cross-day", run: func(e *env) (fmt.Stringer, error) {
			r, err := experiments.RunFig10(e.isp2, e.trainDay, e.testDay, e.seed)
			if err != nil {
				return nil, err
			}
			if err := writeCurve(e, "fig10_"+r.TestNet, r); err != nil {
				return nil, err
			}
			return rendered("Figure 10: cross-day using only public blacklists\n" + r.Summary() +
				"(paper: >94% TPs at 0.1% FPs)\n"), nil
		}},
		{name: "crossblacklist", desc: "Section IV-E: commercial-train, public-only test", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunCrossBlacklist(e.isp2, e.trainDay, e.testDay, e.seed)
		}},
		{name: "fig11", desc: "Figure 11: early detection vs blacklist lag", run: func(e *env) (fmt.Stringer, error) {
			days := []int{e.trainDay, e.trainDay + 1, e.trainDay + 2, e.trainDay + 3}
			return experiments.RunFig11([]*experiments.Network{e.isp1, e.isp2}, days, 35, e.seed)
		}},
		{name: "perf", desc: "Section IV-G: timing breakdown", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunPerf(e.isp1, e.trainDay)
		}},
		{name: "fig12", desc: "Figure 12 + Table IV: Notos comparison", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunFig12([]*experiments.Network{e.isp1, e.isp2}, e.trainDay, e.gapDay, e.seed)
		}},
		{name: "lbp", desc: "Section I: loopy belief propagation comparison", run: func(e *env) (fmt.Stringer, error) {
			dense, err := experiments.RunLBP(e.isp1, e.trainDay, e.testDay, false, e.seed)
			if err != nil {
				return nil, err
			}
			sparse, err := experiments.RunLBP(e.isp1, e.trainDay, e.testDay, true, e.seed)
			if err != nil {
				return nil, err
			}
			return rendered(dense.String() + "\n" + sparse.String()), nil
		}},
		{name: "classifiers", desc: "Ablation: random forest vs logistic regression", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunClassifiers(e.isp1, e.trainDay, e.testDay, e.seed)
		}},
		{name: "pruneablation", desc: "Ablation: pruning on vs off", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunPruningAblation(e.isp1, e.trainDay, e.testDay, e.seed)
		}},
		{name: "proberfilter", desc: "Section VI: anomalous-client filter on vs off", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunProberFilter(e.isp1, e.trainDay, e.testDay, e.seed)
		}},
		{name: "churn", desc: "Section VI: DHCP churn sensitivity", run: func(e *env) (fmt.Stringer, error) {
			base := experiments.ISP1Population()
			base.Name = "ISP1"
			return experiments.RunChurn(e.isp1.Universe, base, e.trainDay, e.testDay, nil, e.seed)
		}},
		{name: "coverage", desc: "Ablation: blacklist-coverage sweep", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunCoverage(e.isp1, e.trainDay, e.testDay, nil, e.seed)
		}},
		{name: "window", desc: "Ablation: activity look-back window sweep", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunWindow(e.isp1, e.trainDay, e.testDay, nil, e.seed)
		}},
		{name: "importance", desc: "Feature importances of the trained forest", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunImportances(e.isp1, e.trainDay)
		}},
		{name: "evasion", desc: "Section VI: C&C hidden under whitelisted zones", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunEvasion(e.isp1, e.trainDay, e.testDay, e.seed)
		}},
		{name: "crossval", desc: "5-fold cross-validation with bootstrap CI", run: func(e *env) (fmt.Stringer, error) {
			return experiments.RunCrossValidation(e.isp1, e.trainDay, 5, e.seed)
		}},
	}
}

// runFig6 performs the three train/test settings of Table II / Figure 6.
func runFig6(e *env) (fmt.Stringer, error) {
	type setting struct {
		name     string
		trainNet *experiments.Network
		testNet  *experiments.Network
	}
	settings := []setting{
		{"ISP1 cross-day", e.isp1, e.isp1},
		{"ISP2 cross-day", e.isp2, e.isp2},
		{"cross-network ISP1->ISP2", e.isp1, e.isp2},
	}
	var b strings.Builder
	b.WriteString("Table II + Figure 6: cross-day and cross-network tests\n\n")
	for i, s := range settings {
		r, err := experiments.RunCross(s.trainNet, e.trainDay, s.testNet, e.testDay,
			experiments.CrossOptions{Seed: e.seed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintf(&b, "(%c) %s\n%s", 'a'+i, s.name, r.Summary())
		b.WriteString(eval.RenderASCII(r.Curve, 56, 10, 0.01))
		b.WriteString("\n")
		if err := writeCurve(e, fmt.Sprintf("fig6%c", 'a'+i), r); err != nil {
			return nil, err
		}
	}
	b.WriteString("(paper: consistently above 92% TPs at 0.1% FPs)\n")
	return rendered(b.String()), nil
}

// runTable3 reruns the three Figure 6 settings and analyzes their FPs.
func runTable3(e *env) (fmt.Stringer, error) {
	nets := map[string]*experiments.Network{e.isp1.Name(): e.isp1, e.isp2.Name(): e.isp2}
	var results []*experiments.CrossResult
	for i, s := range []struct{ trainNet, testNet *experiments.Network }{
		{e.isp1, e.isp1}, {e.isp2, e.isp2}, {e.isp1, e.isp2},
	} {
		r, err := experiments.RunCross(s.trainNet, e.trainDay, s.testNet, e.testDay,
			experiments.CrossOptions{Seed: e.seed + int64(i)})
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return experiments.RunTable3(results, nets)
}

func writeCurve(e *env, name string, r *experiments.CrossResult) error {
	path := filepath.Join(e.outdir, name+".csv")
	return os.WriteFile(path, []byte(r.CurveCSV(400)), 0o644)
}
