package main

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestSelectExperiments(t *testing.T) {
	all := catalog()
	if len(all) < 15 {
		t.Fatalf("catalog has %d experiments, want >= 15", len(all))
	}
	names := map[string]bool{}
	for _, e := range all {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if names[e.name] {
			t.Fatalf("duplicate experiment name %q", e.name)
		}
		names[e.name] = true
	}

	sel, err := selectExperiments(all, "all")
	if err != nil || len(sel) != len(all) {
		t.Fatalf("all selection: %d, err %v", len(sel), err)
	}
	sel, err = selectExperiments(all, "fig6, table3")
	if err != nil || len(sel) != 2 || sel[0].name != "fig6" || sel[1].name != "table3" {
		t.Fatalf("subset selection = %v, err %v", sel, err)
	}
	if _, err := selectExperiments(all, "nonsense"); err == nil {
		t.Fatal("unknown experiment must error")
	} else if !strings.Contains(err.Error(), "fig6") {
		t.Fatalf("error should list valid names: %v", err)
	}
}

func TestRenderedStringer(t *testing.T) {
	if rendered("x").String() != "x" {
		t.Fatal("rendered stringer broken")
	}
}

func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-exp", "table1", "-small", "-outdir", t.TempDir()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
