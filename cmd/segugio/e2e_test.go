package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestEndToEnd drives the real subcommand entry points over a temp
// directory: generate -> train -> classify (with a JSON report) ->
// evaluate -> track.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI test")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	model := filepath.Join(dir, "det.bin")
	reportPath := filepath.Join(dir, "rep.json")

	mustRun := func(args ...string) {
		t.Helper()
		if err := run(context.Background(), args); err != nil {
			t.Fatalf("segugio %v: %v", args, err)
		}
	}

	mustRun("generate", "-out", data, "-machines", "900", "-days", "170,171,178", "-seed", "5")
	for _, f := range []string{"blacklist.tsv", "whitelist.txt", "pdns.tsv", "activity.tsv",
		"queries-170.tsv", "resolutions-178.tsv"} {
		if _, err := os.Stat(filepath.Join(data, f)); err != nil {
			t.Fatalf("generate did not write %s: %v", f, err)
		}
	}

	mustRun("train", "-data", data, "-day", "170", "-model", model)
	if fi, err := os.Stat(model); err != nil || fi.Size() == 0 {
		t.Fatalf("model not written: %v", err)
	}

	mustRun("classify", "-data", data, "-day", "178", "-model", model, "-report", reportPath, "-top", "3")
	rep, err := os.ReadFile(reportPath)
	if err != nil || len(rep) == 0 {
		t.Fatalf("report not written: %v", err)
	}

	mustRun("evaluate", "-data", data, "-train-day", "170", "-test-day", "178", "-fraction", "0.5")
	mustRun("track", "-data", data, "-model", model, "-days", "171,178", "-min-days", "1")
}

// TestRunErrors covers the top-level dispatch failure paths.
func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("missing subcommand must fail")
	}
	if err := run(context.Background(), []string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand must fail")
	}
	if err := run(context.Background(), []string{"help"}); err != nil {
		t.Fatalf("help must succeed: %v", err)
	}
	// Missing data directory surfaces a clear error.
	if err := run(context.Background(), []string{"train", "-data", "/nonexistent-segugio-dir"}); err == nil {
		t.Fatal("missing data dir must fail")
	}
	if err := run(context.Background(), []string{"classify", "-model", "/nonexistent-model.bin"}); err == nil {
		t.Fatal("missing model must fail")
	}
	if err := run(context.Background(), []string{"track", "-days", ""}); err == nil {
		t.Fatal("track without days must fail")
	}
}

// TestRunCanceled verifies a canceled context aborts long subcommands
// instead of letting them run to completion.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"generate", "-out", t.TempDir(), "-machines", "300", "-days", "170"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestGenerateBadFlags covers generate's input validation.
func TestGenerateBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"generate", "-days", "notaday", "-out", t.TempDir()}); err == nil {
		t.Fatal("bad day list must fail")
	}
}

// Silence accidental stdout noise in -v runs.
func TestMain(m *testing.M) {
	code := m.Run()
	fmt.Fprint(os.Stderr, "")
	os.Exit(code)
}
