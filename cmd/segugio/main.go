// Command segugio is the operational entry point to the Segugio pipeline:
// it trains behavior-based detectors from a day of DNS query logs plus
// ground-truth feeds, and classifies the unknown domains of later days to
// surface new malware-control domains and the machines querying them.
//
// Subcommands:
//
//	segugio generate -out data/              synthesize a demo ISP dataset
//	segugio train    -data data/ -day 170 -model det.bin
//	segugio classify -data data/ -day 183 -model det.bin -top 20
//
// File formats are documented in internal/logio. See the README for a
// walkthrough.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"segugio/internal/activity"
	"segugio/internal/core"
	"segugio/internal/dnsutil"
	"segugio/internal/eval"
	"segugio/internal/features"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/logio"
	"segugio/internal/pdns"
	reportpkg "segugio/internal/report"
	"segugio/internal/trace"
	"segugio/internal/tracker"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "segugio:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(ctx, args[1:])
	case "train":
		return cmdTrain(ctx, args[1:])
	case "classify":
		return cmdClassify(ctx, args[1:])
	case "evaluate":
		return cmdEvaluate(ctx, args[1:])
	case "track":
		return cmdTrack(ctx, args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: segugio <subcommand> [flags]

  generate   synthesize a demo ISP dataset (query logs + ground truth)
  train      learn a detector from one observation day
  classify   score the unknown domains of an observation day
  evaluate   run the cross-day train/test protocol and print the ROC
  track      classify several consecutive days and diff the detections

Run 'segugio <subcommand> -h' for flags.
`)
}

// ---- generate ----

func cmdGenerate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	out := fs.String("out", "data", "output directory")
	seed := fs.Int64("seed", 42, "generator seed")
	days := fs.String("days", "170,183", "comma-separated observation days to emit query logs for")
	machines := fs.Int("machines", 2000, "ordinary machine count")
	eventsOut := fs.String("events-out", "", "also write a replayable live event stream (for segugiod -events) to this file")
	eventsFormat := fs.String("events-format", "text", `live event stream format: "text" lines or "binary" (segb1 framing with interned symbols)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dayList, err := parseDays(*days)
	if err != nil {
		return err
	}
	if *eventsFormat != "text" && *eventsFormat != "binary" {
		return fmt.Errorf("-events-format: want \"text\" or \"binary\", got %q", *eventsFormat)
	}

	cfg := trace.DefaultConfig("DEMO", *seed)
	cfg.Machines = *machines
	cat, err := trace.NewCatalog(cfg)
	if err != nil {
		return err
	}
	gen := trace.NewGenerator(cat)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	// Ground-truth feeds.
	bl := cat.Blacklist(trace.BlacklistConfig{Coverage: 0.75, MeanListingDelayDays: 3, Salt: 1})
	arch := cat.RankArchive(trace.RankArchiveConfig{Days: 30, ListLen: 3 * cfg.BenignE2LDs / 4, JitterFraction: 0.02})
	wl, err := intel.BuildWhitelist(arch, intel.WhitelistConfig{ExcludeZones: cat.KnownFreeRegZones(0.6)})
	if err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "blacklist.tsv"), func(w *bufio.Writer) error {
		return logio.WriteBlacklist(w, bl)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "whitelist.txt"), func(w *bufio.Writer) error {
		return logio.WriteWhitelist(w, wl)
	}); err != nil {
		return err
	}

	// Passive DNS history covering the feature look-backs of every
	// requested day.
	db := pdns.NewDB()
	maxDay := dayList[len(dayList)-1]
	cat.EmitPDNSHistory(db, 0, maxDay)
	if err := writeFile(filepath.Join(*out, "pdns.tsv"), func(w *bufio.Writer) error {
		var werr error
		db.ForEachRecord(0, maxDay, func(day int, domain string, ip dnsutil.IPv4) {
			if werr == nil {
				werr = logio.WritePDNSRecord(w, day, domain, ip)
			}
		})
		return werr
	}); err != nil {
		return err
	}

	// Daily activity digest covering every requested day's F2 look-back.
	minDay, maxDay2 := dayList[0], dayList[len(dayList)-1]
	if err := writeFile(filepath.Join(*out, "activity.tsv"), func(w *bufio.Writer) error {
		for d := minDay - 13; d <= maxDay2; d++ {
			for id := int32(0); int(id) < cat.NumDomains(); id++ {
				if !cat.ActiveOn(d, id) {
					continue
				}
				if err := logio.WriteActivityMark(w, d, cat.Name(id)); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Optional interleaved live event stream, replayable through
	// `segugiod -events` (text or segb1 binary, same events either way).
	var emitEvent func(e logio.Event) error
	closeEvents := func() error { return nil }
	eventCount := 0
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		bw := bufio.NewWriterSize(f, 256<<10)
		if *eventsFormat == "binary" {
			enc := logio.NewEventEncoder(bw)
			emitEvent = enc.Encode
			closeEvents = func() error {
				if err := enc.Flush(); err != nil {
					f.Close()
					return err
				}
				if err := bw.Flush(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
		} else {
			emitEvent = func(e logio.Event) error { return logio.WriteEvent(bw, e) }
			closeEvents = func() error {
				if err := bw.Flush(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
		}
	}

	// Per-day query logs and resolutions.
	for _, day := range dayList {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr := gen.GenerateDay(day)
		if err := writeFile(filepath.Join(*out, fmt.Sprintf("queries-%d.tsv", day)), func(w *bufio.Writer) error {
			for _, e := range tr.Edges {
				if err := logio.WriteQuery(w, tr.MachineIDs[e.Machine], cat.Name(e.Domain)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		if err := writeFile(filepath.Join(*out, fmt.Sprintf("resolutions-%d.tsv", day)), func(w *bufio.Writer) error {
			seen := map[int32]struct{}{}
			for _, e := range tr.Edges {
				if _, dup := seen[e.Domain]; dup {
					continue
				}
				seen[e.Domain] = struct{}{}
				if err := logio.WriteResolution(w, cat.Name(e.Domain), cat.ResolveOn(day, e.Domain)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		if emitEvent != nil {
			// Interleave the day's traffic as segugiod would see it live: a
			// domain's resolution event rides with its first query.
			seen := map[int32]struct{}{}
			for _, e := range tr.Edges {
				if _, dup := seen[e.Domain]; !dup {
					seen[e.Domain] = struct{}{}
					if err := emitEvent(logio.Event{Kind: logio.EventResolution, Day: day,
						Domain: cat.Name(e.Domain), IPs: cat.ResolveOn(day, e.Domain)}); err != nil {
						return err
					}
					eventCount++
				}
				if err := emitEvent(logio.Event{Kind: logio.EventQuery, Day: day,
					Machine: tr.MachineIDs[e.Machine], Domain: cat.Name(e.Domain)}); err != nil {
					return err
				}
				eventCount++
			}
		}
		fmt.Printf("day %d: %d queries written\n", day, len(tr.Edges))
	}
	if err := closeEvents(); err != nil {
		return err
	}
	if *eventsOut != "" {
		fmt.Printf("event stream in %s (%s, %d events)\n", *eventsOut, *eventsFormat, eventCount)
	}
	fmt.Printf("dataset in %s (blacklist %d domains, whitelist %d e2LDs, pdns %d records)\n",
		*out, bl.Len(), wl.Len(), db.Len())
	return nil
}

// ---- train ----

func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	data := fs.String("data", "data", "dataset directory (as written by generate)")
	day := fs.Int("day", 170, "training observation day")
	model := fs.String("model", "detector.bin", "output model path")
	fpBudget := fs.Float64("fp-budget", 0.001, "false-positive budget for threshold calibration")
	valFraction := fs.Float64("val-fraction", 0.3, "fraction of known domains held out for calibration")
	psl := fs.String("psl", "", "optional public-suffix-list file (publicsuffix.org format)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	env, err := loadDayEnv(*data, *day, *psl)
	if err != nil {
		return err
	}

	// Calibration pass: hide a validation share of the known domains,
	// train on the rest, and pick the threshold hitting the FP budget.
	rng := rand.New(rand.NewSource(7))
	val := map[string]struct{}{}
	var valDomains []string
	var valLabels []int
	for d := int32(0); d < int32(env.graph.NumDomains()); d++ {
		name := env.graph.DomainName(d)
		isMal := env.blacklist.Contains(name, *day)
		isBen := env.whitelist.ContainsE2LD(env.graph.DomainE2LD(d))
		if (!isMal && !isBen) || rng.Float64() > *valFraction {
			continue
		}
		val[name] = struct{}{}
		valDomains = append(valDomains, name)
		if isMal {
			valLabels = append(valLabels, 1)
		} else {
			valLabels = append(valLabels, 0)
		}
	}
	env.label(val)

	if err := ctx.Err(); err != nil {
		return err
	}
	t0 := time.Now()
	det, report, err := core.Train(core.DefaultConfig(), core.TrainInput{
		Graph: env.graph, Activity: env.activity, Abuse: env.abuse, Exclude: val,
	})
	if err != nil {
		return err
	}
	dets, _, err := det.Classify(core.ClassifyInput{
		Graph: env.graph, Activity: env.activity, Abuse: env.abuse, Domains: valDomains,
	})
	if err != nil {
		return err
	}
	scores := map[string]float64{}
	for _, d := range dets {
		scores[d.Domain] = d.Score
	}
	valScores := make([]float64, len(valDomains))
	for i, name := range valDomains {
		valScores[i] = scores[name]
	}
	curve, err := eval.ROC(valScores, valLabels)
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}
	threshold := eval.ThresholdAtFPR(curve, *fpBudget)
	tpr := eval.TPRAtFPR(curve, *fpBudget)

	// Final pass: retrain on every known domain, keep the threshold.
	if err := ctx.Err(); err != nil {
		return err
	}
	env.label(nil)
	det, report, err = core.Train(core.DefaultConfig(), core.TrainInput{
		Graph: env.graph, Activity: env.activity, Abuse: env.abuse,
	})
	if err != nil {
		return err
	}
	det.SetThreshold(threshold)

	f, err := os.Create(*model)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.SaveDetector(f, det); err != nil {
		return err
	}
	fmt.Printf("trained on %d benign + %d malware domains in %v\n",
		report.TrainBenign, report.TrainMalware, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("threshold %.4f calibrated for <=%.2f%% FPs (validation TPR %.1f%%)\n",
		threshold, *fpBudget*100, tpr*100)
	fmt.Printf("detector saved to %s\n", *model)
	return nil
}

// ---- classify ----

func cmdClassify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	data := fs.String("data", "data", "dataset directory")
	day := fs.Int("day", 183, "observation day to classify")
	model := fs.String("model", "detector.bin", "trained model path")
	top := fs.Int("top", 20, "print at most this many detections")
	showMachines := fs.Bool("machines", true, "print infected machines")
	reportPath := fs.String("report", "", "write a JSON evidence report to this path")
	psl := fs.String("psl", "", "optional public-suffix-list file (publicsuffix.org format)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*model)
	if err != nil {
		return err
	}
	det, err := core.LoadDetector(f)
	f.Close()
	if err != nil {
		return err
	}

	env, err := loadDayEnv(*data, *day, *psl)
	if err != nil {
		return err
	}
	env.label(nil)

	if err := ctx.Err(); err != nil {
		return err
	}
	t0 := time.Now()
	dets, report, err := det.Classify(core.ClassifyInput{
		Graph: env.graph, Activity: env.activity, Abuse: env.abuse,
	})
	if err != nil {
		return err
	}
	detected := det.Detected(dets)
	fmt.Printf("classified %d unknown domains in %v; %d above threshold %.4f\n",
		report.Classified, time.Since(t0).Round(time.Millisecond), len(detected), det.Threshold())
	for i, d := range detected {
		if i >= *top {
			fmt.Printf("  ... and %d more\n", len(detected)-*top)
			break
		}
		fmt.Printf("  %.4f  %s\n", d.Score, d.Domain)
	}
	if *showMachines {
		machines := core.InfectedMachines(report.PrunedGraph, detected)
		fmt.Printf("machines querying detected domains: %d\n", len(machines))
		for i, m := range machines {
			if i >= *top {
				fmt.Printf("  ... and %d more\n", len(machines)-*top)
				break
			}
			fmt.Printf("  %s\n", m)
		}
	}
	if *reportPath != "" {
		ex, err := features.NewExtractor(report.PrunedGraph, env.activity, env.abuse, 14)
		if err != nil {
			return err
		}
		rep := reportpkg.Build(report.PrunedGraph, ex, det, dets, report.Classified)
		f, err := os.Create(*reportPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("evidence report written to %s (%d detections)\n", *reportPath, len(rep.Detections))
	}
	return nil
}

// ---- track ----

// cmdTrack runs a trained detector over several observation days and
// folds the detections into the multi-day tracker: what is new, what
// recurs (block with confidence), what went dormant (the operators moved
// on).
func cmdTrack(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("track", flag.ContinueOnError)
	data := fs.String("data", "data", "dataset directory")
	model := fs.String("model", "detector.bin", "trained model path")
	days := fs.String("days", "", "comma-separated observation days (required)")
	minDays := fs.Int("min-days", 2, "persistence cutoff for the final summary")
	psl := fs.String("psl", "", "optional public-suffix-list file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dayList, err := parseDays(*days)
	if err != nil {
		return fmt.Errorf("track: %w", err)
	}

	f, err := os.Open(*model)
	if err != nil {
		return err
	}
	det, err := core.LoadDetector(f)
	f.Close()
	if err != nil {
		return err
	}

	track := tracker.New()
	for _, day := range dayList {
		if err := ctx.Err(); err != nil {
			return err
		}
		env, err := loadDayEnv(*data, day, *psl)
		if err != nil {
			return err
		}
		env.label(nil)
		dets, report, err := det.Classify(core.ClassifyInput{
			Graph: env.graph, Activity: env.activity, Abuse: env.abuse,
		})
		if err != nil {
			return err
		}
		detected := det.Detected(dets)
		diff := track.Observe(day, detected, report.PrunedGraph)
		fmt.Printf("day %d: %d detections — %d new, %d recurring, %d dormant\n",
			day, len(detected), len(diff.New), len(diff.Recurring), len(diff.Dormant))
		for _, d := range diff.New {
			fmt.Printf("  NEW %s\n", d)
		}
	}

	persistent := track.Persistent(*minDays)
	fmt.Printf("\ndetected on %d+ days (%d domains):\n", *minDays, len(persistent))
	for _, e := range persistent {
		fmt.Printf("  %-30s days %d-%d (%dx), peak %.3f, %d machines\n",
			e.Domain, e.FirstDetected, e.LastDetected, e.DaysDetected, e.PeakScore, len(e.Machines))
	}
	return nil
}

// ---- evaluate ----

// cmdEvaluate runs the paper's rigorous cross-day protocol on file data:
// known domains present on both days are held out (their ground truth
// hidden from labeling, feature measurement, and training), the detector
// is trained on the first day and scored on the second, and the ROC is
// printed.
func cmdEvaluate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ContinueOnError)
	data := fs.String("data", "data", "dataset directory")
	trainDay := fs.Int("train-day", 170, "training observation day")
	testDay := fs.Int("test-day", 183, "test observation day")
	fraction := fs.Float64("fraction", 0.6, "fraction of known domains held out for testing")
	psl := fs.String("psl", "", "optional public-suffix-list file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	trainEnv, err := loadDayEnv(*data, *trainDay, *psl)
	if err != nil {
		return err
	}
	testEnv, err := loadDayEnv(*data, *testDay, *psl)
	if err != nil {
		return err
	}

	// Held-out test set: known domains observed on both days.
	rng := rand.New(rand.NewSource(11))
	hidden := map[string]struct{}{}
	var testDomains []string
	var testLabels []int
	for d := int32(0); d < int32(testEnv.graph.NumDomains()); d++ {
		name := testEnv.graph.DomainName(d)
		if _, inTrain := trainEnv.graph.DomainIndex(name); !inTrain {
			continue
		}
		isMal := testEnv.blacklist.Contains(name, *trainDay)
		isBen := testEnv.whitelist.ContainsE2LD(testEnv.graph.DomainE2LD(d))
		if (!isMal && !isBen) || rng.Float64() > *fraction {
			continue
		}
		hidden[name] = struct{}{}
		testDomains = append(testDomains, name)
		if isMal {
			testLabels = append(testLabels, 1)
		} else {
			testLabels = append(testLabels, 0)
		}
	}
	if len(testDomains) == 0 {
		return fmt.Errorf("no known domains shared between days %d and %d", *trainDay, *testDay)
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	trainEnv.label(hidden)
	det, trainReport, err := core.Train(core.DefaultConfig(), core.TrainInput{
		Graph: trainEnv.graph, Activity: trainEnv.activity, Abuse: trainEnv.abuse, Exclude: hidden,
	})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	testEnv.label(hidden)
	dets, _, err := det.Classify(core.ClassifyInput{
		Graph: testEnv.graph, Activity: testEnv.activity, Abuse: testEnv.abuse, Domains: testDomains,
	})
	if err != nil {
		return err
	}

	byDomain := map[string]float64{}
	for _, d := range dets {
		byDomain[d.Domain] = d.Score
	}
	scores := make([]float64, len(testDomains))
	malware := 0
	for i, name := range testDomains {
		scores[i] = byDomain[name]
		malware += testLabels[i]
	}
	curve, err := eval.ROC(scores, testLabels)
	if err != nil {
		return fmt.Errorf("evaluate: %w", err)
	}
	auc, _ := eval.AUC(curve)

	fmt.Printf("train day %d -> test day %d\n", *trainDay, *testDay)
	fmt.Printf("training set: %d benign + %d malware domains\n",
		trainReport.TrainBenign, trainReport.TrainMalware)
	fmt.Printf("held-out test set: %d malware, %d benign\n", malware, len(testDomains)-malware)
	fmt.Printf("AUC %.4f\n", auc)
	for _, budget := range []float64{0.001, 0.005, 0.01} {
		threshold := eval.ThresholdAtFPR(curve, budget)
		c := eval.Confuse(scores, testLabels, threshold)
		fmt.Printf("  FP budget %.2f%%: threshold %.4f -> TPR %5.1f%%, precision %5.1f%% (TP %d FP %d FN %d)\n",
			budget*100, threshold, c.Recall()*100, c.Precision()*100, c.TP, c.FP, c.FN)
	}
	return nil
}

// ---- shared plumbing ----

type dayEnv struct {
	day       int
	graph     *graph.Graph
	activity  *activity.Log
	abuse     *pdns.AbuseIndex
	blacklist *intel.Blacklist
	whitelist *intel.Whitelist
	suffixes  *dnsutil.SuffixList
}

func (e *dayEnv) label(hidden map[string]struct{}) {
	e.graph.ApplyLabels(graph.LabelSources{
		Blacklist: e.blacklist, Whitelist: e.whitelist, AsOf: e.day, Hidden: hidden,
	})
}

func loadDayEnv(dir string, day int, pslPath string) (*dayEnv, error) {
	env := &dayEnv{day: day, suffixes: dnsutil.DefaultSuffixList()}
	if pslPath != "" {
		if err := readFile(pslPath, func(f *os.File) error {
			sl, err := dnsutil.ParseSuffixList(bufio.NewReader(f))
			if err != nil {
				return err
			}
			env.suffixes = sl
			return nil
		}); err != nil {
			return nil, err
		}
	}

	if err := readFile(filepath.Join(dir, "blacklist.tsv"), func(f *os.File) (err error) {
		env.blacklist, err = logio.ReadBlacklist(f)
		return err
	}); err != nil {
		return nil, err
	}
	if err := readFile(filepath.Join(dir, "whitelist.txt"), func(f *os.File) (err error) {
		env.whitelist, err = logio.ReadWhitelist(f)
		return err
	}); err != nil {
		return nil, err
	}

	db := pdns.NewDB()
	if err := readFile(filepath.Join(dir, "pdns.tsv"), func(f *os.File) error {
		return logio.ReadPDNS(bufio.NewReader(f), db)
	}); err != nil {
		return nil, err
	}

	b := graph.NewBuilder("cli", day, env.suffixes)
	if err := readFile(filepath.Join(dir, fmt.Sprintf("queries-%d.tsv", day)), func(f *os.File) error {
		return logio.ReadQueryLog(bufio.NewReader(f), b.AddQuery)
	}); err != nil {
		return nil, err
	}
	if err := readFile(filepath.Join(dir, fmt.Sprintf("resolutions-%d.tsv", day)), func(f *os.File) error {
		return logio.ReadResolutions(bufio.NewReader(f), b.SetDomainIPs)
	}); err != nil {
		return nil, err
	}
	env.graph = b.Build()

	// Prefer the per-day activity digest when present; fall back to the
	// (coarser) passive-DNS-derived activity.
	actPath := filepath.Join(dir, "activity.tsv")
	if _, statErr := os.Stat(actPath); statErr == nil {
		env.activity = activity.NewLog()
		if err := readFile(actPath, func(f *os.File) error {
			return logio.ReadActivity(bufio.NewReader(f), env.activity, env.suffixes)
		}); err != nil {
			return nil, err
		}
	} else {
		env.activity = activity.FromDB(db, env.suffixes, day-13, day)
	}
	env.abuse = pdns.BuildAbuseIndex(db, day-150, day-1, func(d string) pdns.Verdict {
		if env.blacklist.Contains(d, day) {
			return pdns.VerdictMalware
		}
		if env.whitelist.ContainsDomain(d, env.suffixes) {
			return pdns.VerdictBenign
		}
		return pdns.VerdictUnknown
	})
	return env, nil
}

func parseDays(spec string) ([]int, error) {
	var out []int
	for _, p := range splitComma(spec) {
		var d int
		if _, err := fmt.Sscanf(p, "%d", &d); err != nil {
			return nil, fmt.Errorf("bad day %q", p)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no days given")
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func writeFile(path string, fn func(w *bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fn(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readFile(path string, fn func(f *os.File) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}
