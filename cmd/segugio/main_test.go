package main

import "testing"

func TestSplitComma(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{"a", []string{"a"}},
		{"", nil},
		{"a,,b", []string{"a", "b"}},
		{",a,", []string{"a"}},
	}
	for _, tt := range tests {
		got := splitComma(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("splitComma(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("splitComma(%q) = %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestParseDays(t *testing.T) {
	got, err := parseDays("170,183")
	if err != nil || len(got) != 2 || got[0] != 170 || got[1] != 183 {
		t.Fatalf("parseDays = %v, %v", got, err)
	}
	if _, err := parseDays("notaday"); err == nil {
		t.Fatal("bad day must fail")
	}
	if _, err := parseDays(""); err == nil {
		t.Fatal("empty spec must fail")
	}
}
