package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"segugio/internal/faultinject"
	"segugio/internal/ingest"
	"segugio/internal/logio"
	"segugio/internal/obs"
	"segugio/internal/wal"
)

// chaosHealth is the slice of /healthz the chaos assertions read.
type chaosHealth struct {
	Health  string `json:"health"`
	Signals []struct {
		Name  string `json:"name"`
		State string `json:"state"`
	} `json:"signals"`
}

func getHealth(t *testing.T, base string) chaosHealth {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var h chaosHealth
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz: bad JSON %q: %v", body, err)
	}
	return h
}

// pollHealth scrapes /healthz until the aggregate state matches.
func pollHealth(t *testing.T, base, want string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		h := getHealth(t, base)
		if h.Health == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("health stuck at %q (signals %+v), want %q", h.Health, h.Signals, want)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// floodEvents builds n same-day query events across a small domain pool;
// machine IDs are unique when uniqueMachines is set (so applied events
// are countable as graph machines).
func floodEvents(n int, uniqueMachines bool) []logio.Event {
	evs := make([]logio.Event, 0, n)
	for i := 0; i < n; i++ {
		machine := fmt.Sprintf("f%03d", i%311)
		if uniqueMachines {
			machine = fmt.Sprintf("k%06d", i)
		}
		evs = append(evs, logio.Event{
			Kind: logio.EventQuery, Day: e2eDay,
			Machine: machine,
			Domain:  fmt.Sprintf("d%02d.flood.net", i%97),
		})
	}
	return evs
}

// TestDaemonChaosOverloadRecovery is the chaos-harness acceptance e2e:
// one in-process daemon is driven through healthy -> degraded (stalled
// classify passes, slow fsync) -> overloaded (flooded ingest shards) ->
// recovery, with fault injectors flipped at runtime. Throughout, the API
// must keep answering (stale-marked results from the last-good pass,
// 429/503 with Retry-After for shed load, probes always reachable),
// shedding must happen only under the explicit drop-oldest policy with
// exact accounting, and the health transitions must land in the audit
// trail.
func TestDaemonChaosOverloadRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	dataDir := t.TempDir()
	bl, wl := writeIntel(t, dataDir)
	model := trainModel(t, dataDir, bl, wl)

	disk := &faultinject.Disk{}
	passGate := &faultinject.Gate{}
	logBuf := &logBuffer{}
	logger, err := obs.NewLogger(logBuf, obs.FormatText, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(options{
		listen:   "127.0.0.1:0",
		events:   "tcp://127.0.0.1:0",
		model:    model,
		dataDir:  dataDir,
		network:  "chaos",
		startDay: e2eDay,
		workers:  2,
		// Shards sized so the baseline stream can never overflow them
		// (2 shards x 1024 > the ~1400 baseline events) while the 20k
		// flood against fsync-stalled workers must.
		queue:        1024,
		window:       14,
		keepDays:     30,
		stateDir:     t.TempDir(),
		ckptInterval: time.Hour, // no background checkpoints mid-chaos
		walSyncEvery: 1,
		passDeadline: 150 * time.Millisecond,
		shedPolicy:   ingest.ShedDropOldest,
		maxInflight:  1,
		passHook:     func(ctx context.Context) { passGate.Wait(ctx) },
		walHooks:     &wal.Hooks{BeforeWrite: disk.BeforeWrite, BeforeSync: disk.BeforeSync},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, nil) }()
	base := "http://" + d.httpLn.Addr().String()
	eventsAddr := d.eventsLn.Addr().String()

	classify := func() (int, bool) {
		t.Helper()
		resp, err := http.Post(base+"/v1/classify", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var out struct {
			Stale bool `json:"stale"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatalf("classify: bad JSON %q: %v", body, err)
			}
		}
		return resp.StatusCode, out.Stale
	}

	// ---- Phase 1: healthy baseline. ----
	baseline := genEvents()
	streamed := len(baseline)
	streamEvents(t, eventsAddr, baseline)
	pollMetric(t, base, "segugiod_ingest_events_total", func(v float64) bool { return v == float64(streamed) })
	if code, stale := classify(); code != http.StatusOK || stale {
		t.Fatalf("baseline classify: code=%d stale=%v", code, stale)
	}
	pollHealth(t, base, "healthy")
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline readyz: %d", resp.StatusCode)
	}

	// ---- Phase 2: stalled classify passes -> stale serves, admission
	// rejections, degraded. ----
	passGate.Arm()

	// Burst concurrent classifies at the single in-flight slot: at most
	// one is admitted at a time (and stalls on the gate for the full
	// deadline), so the rest of each burst must be turned away with 429.
	saw429 := false
	for round := 0; round < 5 && !saw429; round++ {
		codes := make(chan int, 8)
		var burst sync.WaitGroup
		for i := 0; i < cap(codes); i++ {
			burst.Add(1)
			go func() {
				defer burst.Done()
				resp, err := http.Post(base+"/v1/classify", "application/json", strings.NewReader("{}"))
				if err != nil {
					codes <- 0
					return
				}
				retry := resp.Header.Get("Retry-After")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests && retry == "" {
					codes <- -1
					return
				}
				codes <- resp.StatusCode
			}()
		}
		burst.Wait()
		close(codes)
		for c := range codes {
			if c == -1 {
				t.Fatal("429 without Retry-After")
			}
			if c == http.StatusTooManyRequests {
				saw429 = true
			}
		}
	}
	if !saw429 {
		t.Fatal("admission control never rejected concurrent classify load")
	}

	// Sequential overruns: every one is served stale from the last-good
	// pass, and the watchdog escalates to degraded.
	for i := 0; i < 3; i++ {
		code, stale := classify()
		if code != http.StatusOK || !stale {
			t.Fatalf("stalled classify %d: code=%d stale=%v, want stale 200", i, code, stale)
		}
	}
	pollMetric(t, base, "segugiod_pass_deadline_exceeded_total", func(v float64) bool { return v >= 3 })
	pollHealth(t, base, "degraded")
	h := getHealth(t, base)
	found := false
	for _, sig := range h.Signals {
		if sig.Name == "classify_pass" {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded without a classify_pass signal: %+v", h.Signals)
	}

	// Release: the next completed pass resets the watchdog.
	passGate.Release()
	if code, stale := classify(); code != http.StatusOK || stale {
		t.Fatalf("post-release classify: code=%d stale=%v", code, stale)
	}
	pollHealth(t, base, "healthy")

	// ---- Phase 3: slow fsync + event flood -> overloaded, policy
	// shedding with exact accounting, API still answering. ----
	disk.SlowSyncs(300 * time.Millisecond) // > slow-append threshold: stalls workers and flags the WAL
	flood := floodEvents(20000, false)
	streamed += len(flood)
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		streamEvents(t, eventsAddr, flood)
	}()
	pollMetric(t, base, `segugiod_ingest_shed_total{reason="drop-oldest"}`,
		func(v float64) bool { return v >= 1 })
	pollHealth(t, base, "overloaded")
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded readyz: %d, want 503", resp.StatusCode)
	}
	// The API never wedges: classify under full overload still answers
	// 200 (fresh or stale-marked, never hanging, never 5xx).
	if code, _ := classify(); code != http.StatusOK {
		t.Fatalf("classify under overload: %d, want 200", code)
	}
	<-floodDone

	// ---- Phase 4: faults off -> drain, exact shed accounting, recovery. ----
	disk.SlowSyncs(0)
	// Every streamed event is accounted for: applied (acknowledged) or
	// shed under the explicit policy. Nothing dropped, nothing lost.
	pollMetric(t, base, "segugiod_ingest_events_total", func(ingested float64) bool {
		shed, _ := metricValue(t, base, `segugiod_ingest_shed_total{reason="drop-oldest"}`)
		return ingested+shed == float64(streamed)
	})
	if v, _ := metricValue(t, base, "segugiod_ingest_dropped_total"); v != 0 {
		t.Fatalf("legacy drop counter = %v under drop-oldest policy, want 0", v)
	}
	if v, _ := metricValue(t, base, `segugiod_ingest_shed_total{reason="sample"}`); v != 0 {
		t.Fatalf("sample shed counter = %v under drop-oldest policy, want 0", v)
	}
	// One completed pass clears the watchdog; the TTL signals decay.
	if code, _ := classify(); code != http.StatusOK {
		t.Fatalf("recovery classify: %d", code)
	}
	pollHealth(t, base, "healthy")
	if v, ok := metricValue(t, base, "segugiod_health_state"); !ok || v != 0 {
		t.Fatalf("health_state gauge = %v (present=%v), want 0", v, ok)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered readyz: %d", resp.StatusCode)
	}

	// ---- The whole incident is audited. ----
	resp, err = http.Get(base + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var audit struct {
		Records []obs.AuditRecord `json:"records"`
	}
	if err := json.Unmarshal(body, &audit); err != nil {
		t.Fatalf("audit: bad JSON %q: %v", body, err)
	}
	var toOverloaded, backToHealthy bool
	for _, rec := range audit.Records {
		if rec.Reason != obs.ReasonHealthTransition {
			continue
		}
		if strings.Contains(rec.Note, "-> overloaded") {
			toOverloaded = true
		}
		if strings.Contains(rec.Note, "-> healthy") {
			backToHealthy = true
		}
	}
	if !toOverloaded || !backToHealthy {
		t.Fatalf("audit trail lacks the incident (overloaded=%v healthy=%v):\n%s",
			toOverloaded, backToHealthy, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down; log:\n%s", logBuf.String())
	}
}

// TestDaemonChaosKillUnderOverload SIGKILLs a daemon mid-flood under the
// drop-oldest shed policy and restarts it on the same state directory:
// whatever the shed policy discarded was never acknowledged, so every
// event the ingest counter reported before the kill must come back from
// the WAL. Each flood event carries a unique machine ID, making "applied
// events" countable as recovered graph machines.
func TestDaemonChaosKillUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	state := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0",
		"-events", "tcp://127.0.0.1:0",
		"-state", state,
		"-network", "chaos",
		"-start-day", fmt.Sprint(e2eDay),
		"-workers", "2",
		"-queue", "64",
		"-wal-sync-every", "1",
		"-checkpoint-interval", "1h",
		"-shed-policy", "drop-oldest",
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SEGUGIOD_CRASH_HELPER=1",
		"SEGUGIOD_CRASH_ARGS="+strings.Join(args, "\n"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var logMu sync.Mutex
	var helperLog strings.Builder
	httpRe := regexp.MustCompile(`msg="HTTP API listening".* addr=(127\.0\.0\.1:\d+)`)
	eventsRe := regexp.MustCompile(`msg="event listener started".* addr=tcp://(127\.0\.0\.1:\d+)`)
	addrCh := make(chan [2]string, 1)
	go func() {
		var httpAddr, eventsAddr string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			helperLog.WriteString(line + "\n")
			logMu.Unlock()
			if m := httpRe.FindStringSubmatch(line); m != nil {
				httpAddr = m[1]
			}
			if m := eventsRe.FindStringSubmatch(line); m != nil {
				eventsAddr = m[1]
			}
			if httpAddr != "" && eventsAddr != "" {
				select {
				case addrCh <- [2]string{httpAddr, eventsAddr}:
				default:
				}
			}
		}
	}()
	var httpAddr, eventsAddr string
	select {
	case addrs := <-addrCh:
		httpAddr, eventsAddr = addrs[0], addrs[1]
	case <-time.After(20 * time.Second):
		logMu.Lock()
		defer logMu.Unlock()
		t.Fatalf("helper did not report its addresses; log:\n%s", helperLog.String())
	}
	base := "http://" + httpAddr

	// One burst of unique-machine events against 64-slot shards. Some may
	// be shed (unacknowledged, allowed); everything counted as ingested is
	// WAL-synced before the counter moves (-wal-sync-every=1).
	flood := floodEvents(30000, true)
	streamEvents(t, eventsAddr, flood)
	pollMetric(t, base, "segugiod_ingest_events_total", func(v float64) bool { return v >= 1000 })
	ackedBeforeKill, _ := metricValue(t, base, "segugiod_ingest_events_total")

	// Unclean death mid-drain.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the same state: every acknowledged event must be back.
	logger, err := obs.NewLogger(io.Discard, obs.FormatText, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(options{
		listen:       "127.0.0.1:0",
		events:       "tcp://127.0.0.1:0",
		network:      "chaos",
		startDay:     e2eDay,
		workers:      2,
		queue:        16384,
		window:       14,
		keepDays:     30,
		stateDir:     state,
		ckptInterval: time.Hour,
		walSyncEvery: 1,
	}, logger)
	if err != nil {
		t.Fatalf("restart on killed state: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, nil) }()
	base2 := "http://" + d.httpLn.Addr().String()

	// Unique machines make the acked-event floor directly observable.
	pollMetric(t, base2, "segugiod_graph_machines", func(v float64) bool {
		return v >= ackedBeforeKill
	})

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recovered daemon exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("recovered daemon did not shut down")
	}
}

// TestDaemonChaosFreshnessSLOBurn drives the watermark -> tsdb -> SLO
// pipeline through a full incident: graph apply is wedged while the
// event stream advances a day, the freshness objective's fast and slow
// windows both burn past threshold, the planted health signal flips
// /readyz to 503 and lands in the audit trail, and releasing the stall
// resolves the objective and recovers the daemon.
func TestDaemonChaosFreshnessSLOBurn(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	sloPath := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(sloPath, []byte(`{
		"interval": "50ms",
		"objectives": [{
			"name": "graph_freshness",
			"type": "freshness",
			"metric": "segugiod_watermark_lag_seconds",
			"labels": "{stage=\"graph_apply\",source=\"stream\"}",
			"target": 0.25,
			"budget": 0.05,
			"fastWindow": "500ms",
			"slowWindow": "1s",
			"severity": "overloaded"
		}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	applyGate := &faultinject.Gate{}
	defer applyGate.Release() // never leave shutdown wedged
	logBuf := &logBuffer{}
	logger, err := obs.NewLogger(logBuf, obs.FormatText, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(options{
		listen:        "127.0.0.1:0",
		events:        "tcp://127.0.0.1:0",
		network:       "chaos",
		startDay:      e2eDay,
		workers:       2,
		queue:         1024,
		window:        14,
		keepDays:      30,
		statsInterval: 25 * time.Millisecond,
		sloConfig:     sloPath,
		applyHook:     func() { applyGate.Wait(context.Background()) },
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, nil) }()
	base := "http://" + d.httpLn.Addr().String()
	eventsAddr := d.eventsLn.Addr().String()

	// ---- Phase 1: healthy baseline on day 42. ----
	baseline := floodEvents(200, false)
	streamEvents(t, eventsAddr, baseline)
	pollMetric(t, base, "segugiod_ingest_events_total", func(v float64) bool { return v == 200 })
	pollHealth(t, base, "healthy")
	if v, ok := metricValue(t, base, `segugiod_slo_firing{objective="graph_freshness"}`); !ok || v != 0 {
		t.Fatalf("baseline slo_firing = %v (present=%v), want 0", v, ok)
	}

	// ---- Phase 2: wedge graph apply, advance the event-day frontier. ----
	applyGate.Arm()
	next := make([]logio.Event, 0, 64)
	for i := 0; i < 64; i++ {
		next = append(next, logio.Event{
			Kind: logio.EventQuery, Day: e2eDay + 1,
			Machine: fmt.Sprintf("s%03d", i), Domain: "late.flood.net",
		})
	}
	streamEvents(t, eventsAddr, next)

	// The stalled stage's lag exceeds the 0.25s target, both burn windows
	// fill with bad samples, and the objective fires at severity
	// overloaded: readyz flips, the gauge reports the firing objective.
	pollHealth(t, base, "overloaded")
	h := getHealth(t, base)
	foundSignal := false
	for _, sig := range h.Signals {
		if sig.Name == "slo_graph_freshness" && sig.State == "overloaded" {
			foundSignal = true
		}
	}
	if !foundSignal {
		t.Fatalf("no slo_graph_freshness signal while burning: %+v", h.Signals)
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("burning readyz: %d, want 503", resp.StatusCode)
	}
	pollMetric(t, base, `segugiod_slo_firing{objective="graph_freshness"}`,
		func(v float64) bool { return v == 1 })
	if v, ok := metricValue(t, base, `segugiod_slo_burn_rate{objective="graph_freshness",window="fast"}`); !ok || v < 1 {
		t.Fatalf("fast burn = %v (present=%v), want >= 1", v, ok)
	}

	// ---- Phase 3: release, drain, resolve, recover. ----
	applyGate.Release()
	pollMetric(t, base, "segugiod_ingest_events_total", func(v float64) bool { return v == 264 })
	pollHealth(t, base, "healthy")
	pollMetric(t, base, `segugiod_slo_firing{objective="graph_freshness"}`,
		func(v float64) bool { return v == 0 })
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered readyz: %d", resp.StatusCode)
	}

	// ---- Both edges of the incident are audited. ----
	resp, err = http.Get(base + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var audit struct {
		Records []obs.AuditRecord `json:"records"`
	}
	if err := json.Unmarshal(body, &audit); err != nil {
		t.Fatalf("audit: bad JSON %q: %v", body, err)
	}
	var fired, resolved bool
	for _, rec := range audit.Records {
		if rec.Reason != obs.ReasonSLOBreach {
			continue
		}
		if strings.Contains(rec.Note, "graph_freshness firing") {
			fired = true
		}
		if strings.Contains(rec.Note, "graph_freshness resolved") {
			resolved = true
		}
	}
	if !fired || !resolved {
		t.Fatalf("audit trail lacks the SLO incident (fired=%v resolved=%v):\n%s",
			fired, resolved, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down; log:\n%s", logBuf.String())
	}
}
