package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"segugio/internal/logio"
	"segugio/internal/obs"
)

// TestCrashHelperProcess is not a test: it is the daemon process the
// crash-recovery e2e SIGKILLs. The parent re-execs the test binary with
// SEGUGIOD_CRASH_HELPER=1 and the daemon flags in the environment.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv("SEGUGIOD_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestDaemonCrashRecovery")
	}
	args := strings.Split(os.Getenv("SEGUGIOD_CRASH_ARGS"), "\n")
	if err := run(context.Background(), args, nil, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// streamEvents writes events over one TCP connection to addr.
func streamEvents(t *testing.T, addr string, evs []logio.Event) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	for _, e := range evs {
		if err := logio.WriteEvent(w, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
}

// pollMetric scrapes base/metrics until cond holds for the named metric.
func pollMetric(t *testing.T, base, name string, cond func(v float64) bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if v, ok := metricValue(t, base, name); ok && cond(v) {
			return
		}
		if time.Now().After(deadline) {
			v, _ := metricValue(t, base, name)
			t.Fatalf("metric %s stuck at %v", name, v)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonCrashRecovery is the acceptance e2e for the durability
// layer: a daemon dies uncleanly (SIGKILL) mid-stream after
// acknowledging events, and a restart on the same -state directory must
// rebuild the graph from the checkpoint plus the WAL tail with no
// acknowledged event lost.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	state := t.TempDir()
	dataDir := t.TempDir()
	bl, wl := writeIntel(t, dataDir)
	model := trainModel(t, dataDir, bl, wl)

	// Phase 1: the victim daemon runs in a separate process so it can be
	// SIGKILLed — a real unclean death, not a polite shutdown. The model
	// and the periodic tracker pass make it write detection audit records,
	// which must survive the kill like the graph does.
	args := []string{
		"-listen", "127.0.0.1:0",
		"-events", "tcp://127.0.0.1:0",
		"-state", state,
		"-network", "crash",
		"-start-day", fmt.Sprint(e2eDay),
		"-queue", "16384",
		"-wal-sync-every", "1",
		"-checkpoint-interval", "300ms",
		"-data", dataDir,
		"-model", model,
		"-classify-every", "200ms",
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SEGUGIOD_CRASH_HELPER=1",
		"SEGUGIOD_CRASH_ARGS="+strings.Join(args, "\n"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The helper logs its bound addresses; scrape them off its stderr.
	var logMu sync.Mutex
	var helperLog strings.Builder
	httpRe := regexp.MustCompile(`msg="HTTP API listening".* addr=(127\.0\.0\.1:\d+)`)
	eventsRe := regexp.MustCompile(`msg="event listener started".* addr=tcp://(127\.0\.0\.1:\d+)`)
	addrCh := make(chan [2]string, 1)
	go func() {
		var httpAddr, eventsAddr string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			helperLog.WriteString(line + "\n")
			logMu.Unlock()
			if m := httpRe.FindStringSubmatch(line); m != nil {
				httpAddr = m[1]
			}
			if m := eventsRe.FindStringSubmatch(line); m != nil {
				eventsAddr = m[1]
			}
			if httpAddr != "" && eventsAddr != "" {
				select {
				case addrCh <- [2]string{httpAddr, eventsAddr}:
				default:
				}
			}
		}
	}()
	var httpAddr, eventsAddr string
	select {
	case addrs := <-addrCh:
		httpAddr, eventsAddr = addrs[0], addrs[1]
	case <-time.After(20 * time.Second):
		logMu.Lock()
		defer logMu.Unlock()
		t.Fatalf("helper did not report its addresses; log:\n%s", helperLog.String())
	}
	base := "http://" + httpAddr

	evs := genEvents()
	half := len(evs) / 2

	// First half, then wait for a checkpoint to cover (some prefix of) it.
	streamEvents(t, eventsAddr, evs[:half])
	pollMetric(t, base, "segugiod_ingest_events_total", func(v float64) bool { return v == float64(half) })
	pollMetric(t, base, "segugiod_checkpoints_total", func(v float64) bool { return v >= 1 })

	// Second half. Once the ingest counter reaches the full count, every
	// event is applied AND WAL-synced (-wal-sync-every 1 orders the sync
	// before the counter moves) — i.e. acknowledged durable.
	streamEvents(t, eventsAddr, evs[half:])
	pollMetric(t, base, "segugiod_ingest_events_total", func(v float64) bool { return v == float64(len(evs)) })
	if v, _ := metricValue(t, base, "segugiod_ingest_dropped_total"); v != 0 {
		t.Fatalf("helper dropped %v events; the acknowledged-event invariant needs 0", v)
	}

	// Wait for the periodic tracker pass to flag and audit detections.
	// The audit metric is read under the same lock Append fsyncs under,
	// so any value it reports counts records already durable on disk.
	pollMetric(t, base, "segugiod_audit_records_total", func(v float64) bool { return v >= 1 })
	auditedBeforeKill, _ := metricValue(t, base, "segugiod_audit_records_total")

	// Unclean death.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reaps; exit status is "signal: killed", not interesting

	// Phase 2: restart on the same state directory, in-process this time
	// so the recovered daemon's internals are inspectable. The victim ran
	// with the default 4 graph shards; restarting with 2 forces recovery
	// to rehash the per-shard checkpoints and WAL stripes into the new
	// partition — the flag may change across any restart, crashes
	// included.
	logBuf := &logBuffer{}
	logger, err := obs.NewLogger(logBuf, obs.FormatText, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(options{
		listen:       "127.0.0.1:0",
		events:       "tcp://127.0.0.1:0",
		network:      "crash",
		startDay:     e2eDay,
		workers:      4,
		graphShards:  2,
		queue:        16384,
		window:       14,
		keepDays:     30,
		stateDir:     state,
		ckptInterval: time.Hour, // only the shutdown checkpoint
		walSyncEvery: 1,
	}, logger)
	if err != nil {
		t.Fatalf("restart on crashed state: %v", err)
	}
	// Recovery runs inside newDaemon, so its log lines are already in
	// logBuf; snapshot them before d.run starts writing concurrently.
	recoveryLog := logBuf.String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, nil) }()
	base2 := "http://" + d.httpLn.Addr().String()

	// Recovery must have come from a checkpoint (one was scraped as
	// durable before the kill) plus the WAL tail, and must have rehashed
	// the victim's 4-shard state into the requested 2 shards.
	if !strings.Contains(recoveryLog, "checkpoint") {
		t.Fatalf("recovery did not report a checkpoint:\n%s", recoveryLog)
	}
	if !strings.Contains(recoveryLog, "rehashed to 2 shards") {
		t.Fatalf("recovery did not rehash across the shard-count change:\n%s", recoveryLog)
	}
	// No acknowledged event lost: the full day's graph is back. genEvents
	// yields 34 domains across 37 machines.
	pollMetric(t, base2, "segugiod_graph_domains", func(v float64) bool { return v == 34 })
	pollMetric(t, base2, "segugiod_graph_machines", func(v float64) bool { return v == 37 })
	resp, err := http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), fmt.Sprintf(`"day": %d`, e2eDay)) {
		t.Fatalf("healthz after recovery: %s", body)
	}

	// No acknowledged audit record lost either: the restarted daemon
	// reloads the audit trail from state/audit, and /v1/audit serves at
	// least every record the victim acknowledged before the kill.
	resp, err = http.Get(base2 + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var audit struct {
		Total   int               `json:"total"`
		Records []obs.AuditRecord `json:"records"`
	}
	if err := json.Unmarshal(body, &audit); err != nil {
		t.Fatalf("audit after recovery: bad JSON %q: %v", body, err)
	}
	if audit.Total < int(auditedBeforeKill) {
		t.Fatalf("audit records after recovery = %d, victim acknowledged %v before SIGKILL",
			audit.Total, auditedBeforeKill)
	}
	if len(audit.Records) == 0 || audit.Records[0].Reason != obs.ReasonNewDetection {
		t.Fatalf("recovered audit records = %s", body)
	}

	// The recovered daemon keeps ingesting durably: a fresh machine shows
	// up in the graph (and in the WAL, though this test stops here).
	streamEvents(t, d.eventsLn.Addr().String(), []logio.Event{
		{Kind: logio.EventQuery, Day: e2eDay, Machine: "post-crash", Domain: "alive.example.com"},
	})
	pollMetric(t, base2, "segugiod_graph_machines", func(v float64) bool { return v == 38 })

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recovered daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("recovered daemon did not shut down; log:\n%s", logBuf.String())
	}

	// A graceful stop leaves the flight-recorder snapshot behind.
	snap, err := os.ReadFile(filepath.Join(state, "traces.json"))
	if err != nil {
		t.Fatalf("no trace snapshot after graceful shutdown: %v", err)
	}
	var dump obs.Dump
	if err := json.Unmarshal(snap, &dump); err != nil {
		t.Fatalf("trace snapshot is not a Dump: %v", err)
	}
	if len(dump.Recent) == 0 {
		t.Fatal("trace snapshot has no traces")
	}
}
