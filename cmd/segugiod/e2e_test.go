package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"segugio/internal/core"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/logio"
	"segugio/internal/ml"
	"segugio/internal/obs"
)

const e2eDay = 42

// genEvents builds the synthetic day stream: blacklisted C&C domains
// queried by infected machines, whitelisted sites queried by clean
// machines, and a handful of unknown domains queried by the infected
// population (the detection targets). Repetitions push the count past the
// 1000-event floor the daemon e2e asserts.
func genEvents() []logio.Event {
	var evs []logio.Event
	for rep := 0; rep < 5; rep++ {
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("c%d.evil.net", i)
			for m := 0; m < 6; m++ {
				evs = append(evs, logio.Event{
					Kind: logio.EventQuery, Day: e2eDay,
					Machine: fmt.Sprintf("inf%02d", (i+m)%12), Domain: name,
				})
			}
			evs = append(evs, logio.Event{
				Kind: logio.EventResolution, Day: e2eDay, Domain: name,
				IPs: []dnsutil.IPv4{dnsutil.IPv4(0x0a000000 + uint32(i))},
			})
		}
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("www.good%d.com", i)
			for m := 0; m < 8; m++ {
				evs = append(evs, logio.Event{
					Kind: logio.EventQuery, Day: e2eDay,
					Machine: fmt.Sprintf("clean%02d", (i+m)%25), Domain: name,
				})
			}
			evs = append(evs, logio.Event{
				Kind: logio.EventResolution, Day: e2eDay, Domain: name,
				IPs: []dnsutil.IPv4{dnsutil.IPv4(0x0b000000 + uint32(i))},
			})
		}
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("unk%d.gray.org", i)
			for m := 0; m < 5; m++ {
				evs = append(evs, logio.Event{
					Kind: logio.EventQuery, Day: e2eDay,
					Machine: fmt.Sprintf("inf%02d", (i+m)%12), Domain: name,
				})
			}
			evs = append(evs, logio.Event{
				Kind: logio.EventResolution, Day: e2eDay, Domain: name,
				IPs: []dnsutil.IPv4{dnsutil.IPv4(0x0c000000 + uint32(i))},
			})
		}
	}
	return evs
}

// writeIntel drops blacklist.tsv and whitelist.txt for -data.
func writeIntel(t *testing.T, dir string) (*intel.Blacklist, *intel.Whitelist) {
	t.Helper()
	bl := intel.NewBlacklist()
	for i := 0; i < 10; i++ {
		bl.Add(intel.BlacklistEntry{
			Domain: fmt.Sprintf("c%d.evil.net", i), Family: "fam", FirstListed: 0,
		})
	}
	var e2lds []string
	for i := 0; i < 20; i++ {
		e2lds = append(e2lds, fmt.Sprintf("good%d.com", i))
	}
	wl := intel.NewWhitelist(e2lds)

	mustWrite := func(name string, fn func(w *bufio.Writer) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		w := bufio.NewWriter(f)
		if err := fn(w); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("blacklist.tsv", func(w *bufio.Writer) error { return logio.WriteBlacklist(w, bl) })
	mustWrite("whitelist.txt", func(w *bufio.Writer) error { return logio.WriteWhitelist(w, wl) })
	return bl, wl
}

// trainModel trains a detector on the batch graph of the same event
// distribution the e2e streams, and saves it for -model.
func trainModel(t *testing.T, dir string, bl *intel.Blacklist, wl *intel.Whitelist) string {
	t.Helper()
	b := graph.NewBuilder("train", e2eDay, dnsutil.DefaultSuffixList())
	for _, e := range genEvents() {
		switch e.Kind {
		case logio.EventQuery:
			b.AddQuery(e.Machine, e.Domain)
		case logio.EventResolution:
			for _, ip := range e.IPs {
				b.AddResolution(e.Domain, ip)
			}
		}
	}
	g := b.Build()
	g.ApplyLabels(graph.LabelSources{Blacklist: bl, Whitelist: wl, AsOf: e2eDay})

	cfg := core.DefaultConfig()
	cfg.DisablePruning = true
	cfg.NewModel = func(benign, malware int) ml.Model {
		return ml.NewLogisticRegression(ml.LogisticRegressionConfig{Seed: 7})
	}
	det, _, err := core.Train(cfg, core.TrainInput{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "detector.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveDetector(f, det); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// metricValue scrapes one series from /metrics; name may carry a label
// set (`foo{bar="x"}`) and must match the exposed series exactly.
func metricValue(t *testing.T, base, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in %q: %v", name, line, err)
		}
		return v, true
	}
	return 0, false
}

// logBuffer is a goroutine-safe log sink for in-process daemons: handler
// and source goroutines keep logging while the test reads.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	dir := t.TempDir()
	bl, wl := writeIntel(t, dir)
	model := trainModel(t, dir, bl, wl)

	logBuf := &logBuffer{}
	logger, err := obs.NewLogger(logBuf, obs.FormatJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(options{
		listen:   "127.0.0.1:0",
		events:   "tcp://127.0.0.1:0",
		model:    model,
		dataDir:  dir,
		network:  "e2e",
		startDay: e2eDay,
		workers:  4,
		queue:    8192,
		window:   14,
		keepDays: 30,
	}, logger)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, nil) }()

	base := "http://" + d.httpLn.Addr().String()

	// Stream the synthetic day over a real TCP connection.
	evs := genEvents()
	if len(evs) < 1000 {
		t.Fatalf("generated only %d events, e2e needs at least 1000", len(evs))
	}
	conn, err := net.Dial("tcp", d.eventsLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	for _, e := range evs {
		if err := logio.WriteEvent(w, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	// The ingest-events counter must converge on exactly the streamed
	// count (the queue is deep enough that nothing is dropped).
	deadline := time.Now().Add(15 * time.Second)
	for {
		if v, ok := metricValue(t, base, "segugiod_ingest_events_total"); ok && v == float64(len(evs)) {
			break
		}
		if time.Now().After(deadline) {
			v, _ := metricValue(t, base, "segugiod_ingest_events_total")
			dropped, _ := metricValue(t, base, "segugiod_ingest_dropped_total")
			t.Fatalf("ingested %v of %d events (%v dropped) before deadline", v, len(evs), dropped)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v, _ := metricValue(t, base, "segugiod_ingest_dropped_total"); v != 0 {
		t.Fatalf("dropped %v events, want 0", v)
	}
	if v, ok := metricValue(t, base, "segugiod_graph_domains"); !ok || v != 34 {
		t.Fatalf("graph domains gauge = %v, want 34", v)
	}

	// Classify the live graph.
	var classify struct {
		Day        int      `json:"day"`
		Threshold  float64  `json:"threshold"`
		Classified int      `json:"classified"`
		Missing    []string `json:"missing"`
		Detections []struct {
			Domain   string  `json:"domain"`
			Score    float64 `json:"score"`
			Detected bool    `json:"detected"`
		} `json:"detections"`
	}
	resp, err := http.Post(base+"/v1/classify", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &classify); err != nil {
		t.Fatalf("classify: bad JSON %q: %v", body, err)
	}
	if classify.Day != e2eDay {
		t.Fatalf("classify day = %d, want %d", classify.Day, e2eDay)
	}
	if classify.Classified != 4 || len(classify.Detections) != 4 {
		t.Fatalf("classified %d (%d detections), want the 4 unknown domains: %s",
			classify.Classified, len(classify.Detections), body)
	}
	for _, det := range classify.Detections {
		if !strings.HasPrefix(det.Domain, "unk") {
			t.Fatalf("unexpected classification target %q", det.Domain)
		}
		if det.Detected != (det.Score >= classify.Threshold) {
			t.Fatalf("detection %+v inconsistent with threshold %v", det, classify.Threshold)
		}
	}

	// A second classify on the same snapshot reuses the memoized prune
	// pipeline: the prune cache hit counter must move.
	resp, err = http.Post(base+"/v1/classify", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second classify: status %d", resp.StatusCode)
	}
	if v, ok := metricValue(t, base, "segugiod_classify_prune_cache_hits_total"); !ok || v < 1 {
		t.Fatalf("prune cache hits = %v (present=%v), want >= 1", v, ok)
	}

	// Per-domain evidence from the live graph.
	resp, err = http.Get(base + "/v1/domains/unk0.gray.org")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("domains: status %d: %s", resp.StatusCode, body)
	}
	var evidence struct {
		Label            string  `json:"label"`
		InfectedFraction float64 `json:"infectedFraction"`
		QueryingMachines int     `json:"queryingMachines"`
	}
	if err := json.Unmarshal(body, &evidence); err != nil {
		t.Fatal(err)
	}
	if evidence.Label != "unknown" || evidence.QueryingMachines != 5 || evidence.InfectedFraction != 1 {
		t.Fatalf("evidence = %s", body)
	}

	// Every pipeline stage the in-memory daemon exercises must have fed
	// its latency histogram.
	for _, stage := range []string{"parse", "graph_apply", "snapshot", "classify", "feature_extract"} {
		series := fmt.Sprintf(`segugiod_stage_seconds_count{stage="%s"}`, stage)
		if v, ok := metricValue(t, base, series); !ok || v == 0 {
			t.Fatalf("stage histogram %s = %v (present=%v), want nonzero", series, v, ok)
		}
	}

	// The flight recorder covers the whole pipeline: across the dumped
	// traces there are parse, graph_apply, snapshot, and classify spans.
	resp, err = http.Get(base + "/debug/obs/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var dump obs.Dump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("traces: bad JSON %q: %v", body, err)
	}
	spanNames := map[string]bool{}
	for _, trc := range append(dump.Recent, dump.Slowest...) {
		for _, s := range trc.Spans {
			spanNames[s.Name] = true
		}
	}
	for _, want := range []string{obs.StageParse, obs.StageGraphApply, obs.StageSnapshot, obs.StageClassify} {
		if !spanNames[want] {
			t.Fatalf("flight recorder lacks %s spans (have %v)", want, spanNames)
		}
	}

	// The audit trail holds one record per detection the classify-all
	// produced, with the full feature vector.
	detected := 0
	for _, det := range classify.Detections {
		if det.Detected {
			detected++
		}
	}
	resp, err = http.Get(base + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var audit struct {
		Total   int               `json:"total"`
		Records []obs.AuditRecord `json:"records"`
	}
	if err := json.Unmarshal(body, &audit); err != nil {
		t.Fatalf("audit: bad JSON %q: %v", body, err)
	}
	if audit.Total != detected {
		t.Fatalf("audit total = %d, want %d detections: %s", audit.Total, detected, body)
	}
	if detected > 0 && len(audit.Records[0].Features) != 11 {
		t.Fatalf("audit record lacks the 11-feature vector: %+v", audit.Records[0])
	}

	// Health and hot-reload.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz: status %d: %s", resp.StatusCode, body)
	}
	resp, err = http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d: %s", resp.StatusCode, body)
	}

	// Graceful shutdown on context cancel.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down cleanly; log:\n%s", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "shut down cleanly") {
		t.Fatalf("missing clean-shutdown log line:\n%s", logBuf.String())
	}

	// -log-format=json: every line is a JSON object carrying a component,
	// and the HTTP request records carry request ids.
	sawRequestID := false
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("log line is not JSON: %v (%s)", err, sc.Text())
		}
		if comp, _ := obj["component"].(string); comp == "" {
			t.Fatalf("log line lacks component: %s", sc.Text())
		}
		if rid, _ := obj["request_id"].(string); obj["msg"] == "request" && rid != "" {
			sawRequestID = true
		}
	}
	if !sawRequestID {
		t.Fatalf("no request record with request_id in:\n%s", logBuf.String())
	}
}

// TestDaemonStdinSource covers the "-" event source: events arrive on
// stdin and the API serves them without a TCP listener.
func TestDaemonStdinSource(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	var stream bytes.Buffer
	evs := genEvents()[:300]
	for _, e := range evs {
		if err := logio.WriteEvent(&stream, e); err != nil {
			t.Fatal(err)
		}
	}
	logger, err := obs.NewLogger(io.Discard, obs.FormatText, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(options{
		listen:   "127.0.0.1:0",
		events:   "-",
		network:  "stdin",
		startDay: e2eDay,
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, &stream) }()

	base := "http://" + d.httpLn.Addr().String()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := metricValue(t, base, "segugiod_ingest_events_total"); ok && v == float64(len(evs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stdin events not ingested before deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// No detector configured: classify must answer 503, not crash.
	resp, err := http.Post(base+"/v1/classify", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("classify without detector: status %d, want 503", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down cleanly")
	}
}

func TestParseFlagsRejectsExtraArgs(t *testing.T) {
	if _, err := parseFlags([]string{"extra"}); err == nil {
		t.Fatal("positional arguments must be rejected")
	}
	opts, err := parseFlags([]string{"-listen", "127.0.0.1:1234", "-events", "tcp://127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.listen != "127.0.0.1:1234" || opts.events != "tcp://127.0.0.1:9" {
		t.Fatalf("opts = %+v", opts)
	}
}
