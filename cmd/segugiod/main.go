// Command segugiod is the deployment daemon: it ingests a live stream of
// DNS events (queries and resolutions), maintains the current day's
// behavior graph incrementally, and serves online classification plus
// health and metrics over HTTP.
//
//	segugiod -listen 127.0.0.1:8080 -events tcp://127.0.0.1:9000 \
//	    -model detector.gob -data ./day-data -start-day 170
//
// Event sources (-events):
//
//	"-"              read the event stream from stdin
//	tcp://host:port  listen and accept any number of streaming connections
//	path             tail a file, following appended events
//
// The HTTP surface is internal/server: POST /v1/classify,
// GET /v1/domains/{name}, POST /v1/reload, GET /healthz, GET /metrics.
// SIGHUP reloads the detector in place; SIGINT/SIGTERM shut down
// gracefully (drain ingest queues, stop the HTTP server).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/ingest"
	"segugio/internal/intel"
	"segugio/internal/logio"
	"segugio/internal/metrics"
	"segugio/internal/pdns"
	"segugio/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "segugiod:", err)
		os.Exit(1)
	}
}

type options struct {
	listen   string
	events   string
	model    string
	dataDir  string
	pslPath  string
	network  string
	startDay int
	workers  int
	queue    int
	window   int
	keepDays int
}

func parseFlags(args []string) (options, error) {
	var opts options
	fs := flag.NewFlagSet("segugiod", flag.ContinueOnError)
	fs.StringVar(&opts.listen, "listen", "127.0.0.1:8080", "HTTP API listen address")
	fs.StringVar(&opts.events, "events", "-", `event source: "-" (stdin), tcp://host:port (listener), or a file path (tail)`)
	fs.StringVar(&opts.model, "model", "", "trained detector file (optional; classify answers 503 without one)")
	fs.StringVar(&opts.dataDir, "data", "", "directory with blacklist.tsv, whitelist.txt, and optional pdns.tsv/activity.tsv")
	fs.StringVar(&opts.pslPath, "psl", "", "public-suffix list file (optional)")
	fs.StringVar(&opts.network, "network", "isp", "network name stamped on live graphs")
	fs.IntVar(&opts.startDay, "start-day", 0, "initial epoch day; earlier events are dropped as stale")
	fs.IntVar(&opts.workers, "workers", 4, "ingest worker shards")
	fs.IntVar(&opts.queue, "queue", 4096, "per-shard event queue depth")
	fs.IntVar(&opts.window, "window", 14, "activity look-back window in days (F2 features)")
	fs.IntVar(&opts.keepDays, "keep-days", 30, "days of activity history kept across rotations")
	if err := fs.Parse(args); err != nil {
		return opts, err
	}
	if fs.NArg() != 0 {
		return opts, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return opts, nil
}

func run(ctx context.Context, args []string, stdin io.Reader, logw io.Writer) error {
	opts, err := parseFlags(args)
	if err != nil {
		return err
	}
	d, err := newDaemon(opts, log.New(logw, "segugiod: ", log.LstdFlags))
	if err != nil {
		return err
	}
	return d.run(ctx, stdin)
}

// daemon wires the ingester, the HTTP server, and the event source. It is
// constructed with its listeners already bound so tests can read the
// assigned ports before starting run.
type daemon struct {
	opts   options
	logger *log.Logger

	reg    *metrics.Registry
	ing    *ingest.Ingester
	srv    *server.Server
	handle *server.DetectorHandle

	httpLn   net.Listener
	eventsLn net.Listener // non-nil only for tcp:// sources

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

func newDaemon(opts options, logger *log.Logger) (*daemon, error) {
	d := &daemon{opts: opts, logger: logger, conns: make(map[net.Conn]struct{})}

	suffixes := dnsutil.DefaultSuffixList()
	if opts.pslPath != "" {
		f, err := os.Open(opts.pslPath)
		if err != nil {
			return nil, err
		}
		sl, err := dnsutil.ParseSuffixList(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("psl: %w", err)
		}
		suffixes = sl
	}

	bl := intel.NewBlacklist()
	wl := intel.NewWhitelist(nil)
	act := activity.NewLog()
	var abuse *pdns.AbuseIndex
	if opts.dataDir != "" {
		var err error
		bl, wl, abuse, err = loadIntel(opts.dataDir, opts.startDay, act, suffixes)
		if err != nil {
			return nil, err
		}
	}

	d.reg = metrics.NewRegistry()
	ingMetrics := &ingest.Metrics{
		EventsIngested: d.reg.NewCounter("segugiod_ingest_events_total",
			"Events applied to the live graph.", ""),
		EventsDropped: d.reg.NewCounter("segugiod_ingest_dropped_total",
			"Events dropped because a shard queue was full.", ""),
		EventsStale: d.reg.NewCounter("segugiod_ingest_stale_total",
			"Events discarded for belonging to a rotated-out day.", ""),
		ParseErrors: d.reg.NewCounter("segugiod_ingest_parse_errors_total",
			"Event streams aborted by malformed input.", ""),
		Rotations: d.reg.NewCounter("segugiod_ingest_rotations_total",
			"Day-boundary epoch rotations.", ""),
		GraphMachines: d.reg.NewGauge("segugiod_graph_machines",
			"Machines in the live behavior graph.", ""),
		GraphDomains: d.reg.NewGauge("segugiod_graph_domains",
			"Domains in the live behavior graph.", ""),
		GraphObservations: d.reg.NewGauge("segugiod_graph_observations",
			"Raw query observations in the live behavior graph.", ""),
	}

	d.ing = ingest.New(ingest.Config{
		Network:          opts.network,
		StartDay:         opts.startDay,
		Suffixes:         suffixes,
		Workers:          opts.workers,
		QueueDepth:       opts.queue,
		Activity:         act,
		ActivityKeepDays: opts.keepDays,
		PrepareSnapshot: func(g *graph.Graph) {
			g.ApplyLabels(graph.LabelSources{Blacklist: bl, Whitelist: wl, AsOf: g.Day()})
		},
		OnRotate: func(day int, final *graph.Graph) {
			logger.Printf("epoch rotated: day %d finalized with %d machines, %d domains",
				day, final.NumMachines(), final.NumDomains())
		},
		Metrics: ingMetrics,
	})

	if opts.model != "" {
		var err error
		d.handle, err = server.OpenDetector(opts.model)
		if err != nil {
			d.ing.Shutdown()
			return nil, err
		}
	}
	d.srv = server.New(server.Config{
		Graphs:   d.ing,
		Detector: d.handle,
		Activity: act,
		Abuse:    abuse,
		Window:   opts.window,
		Registry: d.reg,
	})

	var err error
	d.httpLn, err = net.Listen("tcp", opts.listen)
	if err != nil {
		d.ing.Shutdown()
		return nil, fmt.Errorf("listen %s: %w", opts.listen, err)
	}
	if addr, ok := strings.CutPrefix(opts.events, "tcp://"); ok {
		d.eventsLn, err = net.Listen("tcp", addr)
		if err != nil {
			d.httpLn.Close()
			d.ing.Shutdown()
			return nil, fmt.Errorf("listen events %s: %w", addr, err)
		}
	}
	return d, nil
}

// loadIntel reads the ground-truth files segugiod labels snapshots with.
// blacklist.tsv and whitelist.txt are required once -data is given;
// pdns.tsv (F3 abuse features) and activity.tsv (F2 history preload) are
// optional.
func loadIntel(dir string, day int, act *activity.Log, suffixes *dnsutil.SuffixList) (*intel.Blacklist, *intel.Whitelist, *pdns.AbuseIndex, error) {
	var bl *intel.Blacklist
	var wl *intel.Whitelist
	if err := readFile(filepath.Join(dir, "blacklist.tsv"), func(f *os.File) (err error) {
		bl, err = logio.ReadBlacklist(f)
		return err
	}); err != nil {
		return nil, nil, nil, err
	}
	if err := readFile(filepath.Join(dir, "whitelist.txt"), func(f *os.File) (err error) {
		wl, err = logio.ReadWhitelist(f)
		return err
	}); err != nil {
		return nil, nil, nil, err
	}

	var abuse *pdns.AbuseIndex
	pdnsPath := filepath.Join(dir, "pdns.tsv")
	if _, err := os.Stat(pdnsPath); err == nil {
		db := pdns.NewDB()
		if err := readFile(pdnsPath, func(f *os.File) error {
			return logio.ReadPDNS(bufio.NewReader(f), db)
		}); err != nil {
			return nil, nil, nil, err
		}
		abuse = pdns.BuildAbuseIndex(db, day-150, day-1, func(d string) pdns.Verdict {
			if bl.Contains(d, day) {
				return pdns.VerdictMalware
			}
			if wl.ContainsDomain(d, suffixes) {
				return pdns.VerdictBenign
			}
			return pdns.VerdictUnknown
		})
	}

	actPath := filepath.Join(dir, "activity.tsv")
	if _, err := os.Stat(actPath); err == nil {
		if err := readFile(actPath, func(f *os.File) error {
			return logio.ReadActivity(bufio.NewReader(f), act, suffixes)
		}); err != nil {
			return nil, nil, nil, err
		}
	}
	return bl, wl, abuse, nil
}

func readFile(path string, fn func(f *os.File) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

// run serves until ctx is canceled, then shuts down in order: stop
// accepting events, drain the ingest queues, stop the HTTP server.
func (d *daemon) run(ctx context.Context, stdin io.Reader) error {
	httpSrv := &http.Server{Handler: d.srv.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(d.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	d.logger.Printf("HTTP API on %s", d.httpLn.Addr())

	var sources sync.WaitGroup
	srcCtx, cancelSources := context.WithCancel(ctx)
	defer cancelSources()
	switch {
	case d.eventsLn != nil:
		d.logger.Printf("event listener on tcp://%s", d.eventsLn.Addr())
		sources.Add(1)
		go func() {
			defer sources.Done()
			d.acceptEvents(srcCtx)
		}()
	case d.opts.events == "-":
		if stdin != nil {
			sources.Add(1)
			go func() {
				defer sources.Done()
				if err := d.ing.Consume(stdin); err != nil && !errors.Is(err, ingest.ErrShuttingDown) {
					d.logger.Printf("stdin stream: %v", err)
				}
			}()
		}
	default:
		d.logger.Printf("tailing %s", d.opts.events)
		sources.Add(1)
		go func() {
			defer sources.Done()
			if err := d.ing.TailFile(srcCtx, d.opts.events, 0); err != nil {
				d.logger.Printf("tail %s: %v", d.opts.events, err)
			}
		}()
	}

	// SIGHUP: hot-reload the detector without restarting.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if d.handle == nil {
				d.logger.Printf("SIGHUP ignored: no detector configured")
				continue
			}
			if err := d.srv.ReloadForSignal(); err != nil {
				d.logger.Printf("SIGHUP reload failed: %v", err)
			} else {
				d.logger.Printf("SIGHUP: detector reloaded from %s", d.handle.Path())
			}
		}
	}()

	var serveErr error
	select {
	case <-ctx.Done():
	case serveErr = <-httpErr:
	}

	// Shutdown order matters: stop the event sources first so the
	// ingester's queues stop refilling, drain them, then stop HTTP.
	cancelSources()
	if d.eventsLn != nil {
		d.eventsLn.Close()
	}
	d.closeConns()
	d.ing.Shutdown()
	sources.Wait()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && serveErr == nil {
		serveErr = err
	}
	d.logger.Printf("shut down cleanly")
	return serveErr
}

// acceptEvents accepts streaming connections until the listener closes,
// feeding each to the ingester.
func (d *daemon) acceptEvents(ctx context.Context) {
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := d.eventsLn.Accept()
		if err != nil {
			return // listener closed during shutdown
		}
		d.trackConn(conn, true)
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer d.trackConn(conn, false)
			defer conn.Close()
			if err := d.ing.Consume(conn); err != nil &&
				!errors.Is(err, ingest.ErrShuttingDown) && ctx.Err() == nil {
				d.logger.Printf("event stream %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (d *daemon) trackConn(c net.Conn, add bool) {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	if add {
		d.conns[c] = struct{}{}
	} else {
		delete(d.conns, c)
	}
}

// closeConns unblocks Consume loops stuck reading idle connections.
func (d *daemon) closeConns() {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	for c := range d.conns {
		c.Close()
	}
}
