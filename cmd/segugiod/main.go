// Command segugiod is the deployment daemon: it ingests a live stream of
// DNS events (queries and resolutions), maintains the current day's
// behavior graph incrementally, and serves online classification plus
// health and metrics over HTTP.
//
//	segugiod -listen 127.0.0.1:8080 -events tcp://127.0.0.1:9000 \
//	    -model detector.gob -data ./day-data -start-day 170
//
// Event sources (-events):
//
//	"-"              read the event stream from stdin
//	tcp://host:port  listen and accept any number of streaming connections
//	path             tail a file, following appended events
//	tracedns:path    tail inspektor-gadget trace_dns JSONL ("tracedns:-" for stdin)
//
// Stream sources (stdin, tcp://, and the tailed file's WAL replay) accept
// both the tab-separated text format and the length-prefixed segb1 binary
// framing; the format is auto-detected per connection from the first
// bytes. Binary framing is produced by `segugio generate -events-format
// binary` or any EventEncoder writer and carries interned symbols for a
// ~5x parse speedup at the ingest frontend.
//
// The HTTP surface is internal/server: POST /v1/classify,
// GET /v1/domains/{name}, POST /v1/reload, GET /v1/audit, GET /healthz,
// GET /metrics, GET /debug/obs/traces. SIGHUP reloads the detector in
// place; SIGINT/SIGTERM shut down gracefully (drain ingest queues, seal
// the audit trail, snapshot the flight recorder, stop the HTTP server).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"segugio/internal/activity"
	"segugio/internal/belief"
	"segugio/internal/core"
	"segugio/internal/detector"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/health"
	"segugio/internal/ingest"
	"segugio/internal/intel"
	"segugio/internal/logio"
	"segugio/internal/metrics"
	"segugio/internal/obs"
	"segugio/internal/pdns"
	"segugio/internal/server"
	"segugio/internal/slo"
	"segugio/internal/tracker"
	"segugio/internal/tsdb"
	"segugio/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "segugiod:", err)
		os.Exit(1)
	}
}

type options struct {
	listen   string
	events   string
	model    string
	dataDir  string
	pslPath  string
	network  string
	startDay int
	workers  int
	queue    int
	window   int
	keepDays int

	// graphShards partitions the live graph by machine/domain hash; 0
	// follows -workers so each ingest shard feeds its own graph shard.
	graphShards int

	// Durability and hardening knobs. A zero value disables the feature
	// (no -state means a purely in-memory daemon, as before).
	stateDir         string
	ckptInterval     time.Duration
	walSyncEvery     int
	walBinary        bool
	maxEventConns    int
	eventIdleTimeout time.Duration

	// classifyEvery enables the periodic tracker pass: a cached
	// classify-all whose detections accumulate in the cross-day tracker.
	classifyEvery time.Duration
	pprof         bool

	// Overload-resilience knobs: the classify-pass deadline, the ingest
	// shed policy, the per-endpoint admission cap, and the heap
	// watermark that trips the overloaded state. Zero disables each.
	passDeadline   time.Duration
	shedPolicy     string
	maxInflight    int
	memWatermarkMB int

	// Test seams (not flags): passHook stalls classify passes, applyHook
	// stalls graph apply batches, and walHooks injects WAL faults — the
	// chaos harness wires them.
	passHook  func(context.Context)
	applyHook func()
	walHooks  *wal.Hooks

	// Observability knobs: structured-log shape, flight-recorder sizing,
	// and the slow-trace alert threshold.
	logFormat string
	logLevel  string
	slowTrace time.Duration
	traceRing int
	auditRing int

	// Freshness-telemetry knobs: the embedded stats store's scrape
	// cadence and retention, and an optional SLO objectives file whose
	// burn-rate evaluator feeds the health state machine.
	statsInterval  time.Duration
	statsRetention time.Duration
	sloConfig      string

	// Detector-plugin knobs: which plugins the classify pass drives, the
	// LBP engine's tuning, and an optional JSON file layered over the
	// flags and re-read on every reload (POST /v1/reload or SIGHUP).
	detectors      string
	detectorConfig string
	lbpEpsilon     float64
	lbpDamping     float64
	lbpMaxIter     int
	lbpTolerance   float64
	lbpThreshold   float64
}

func parseFlags(args []string) (options, error) {
	var opts options
	fs := flag.NewFlagSet("segugiod", flag.ContinueOnError)
	fs.StringVar(&opts.listen, "listen", "127.0.0.1:8080", "HTTP API listen address")
	fs.StringVar(&opts.events, "events", "-", `event source: "-" (stdin), tcp://host:port (listener), a file path (tail), or tracedns:path (inspektor-gadget trace_dns JSONL; "tracedns:-" for stdin). Stream sources auto-detect text vs segb1 binary framing`)
	fs.StringVar(&opts.model, "model", "", "trained detector file (optional; classify answers 503 without one)")
	fs.StringVar(&opts.dataDir, "data", "", "directory with blacklist.tsv, whitelist.txt, and optional pdns.tsv/activity.tsv")
	fs.StringVar(&opts.pslPath, "psl", "", "public-suffix list file (optional)")
	fs.StringVar(&opts.network, "network", "isp", "network name stamped on live graphs")
	fs.IntVar(&opts.startDay, "start-day", 0, "initial epoch day; earlier events are dropped as stale")
	fs.IntVar(&opts.workers, "workers", 4, "ingest worker shards")
	fs.IntVar(&opts.graphShards, "graph-shards", 0, "machine-hash graph shards, each with its own apply lock and WAL stripe (0 = -workers; a restart with a different value rehashes the recovered state)")
	fs.IntVar(&opts.queue, "queue", 4096, "per-shard event queue depth")
	fs.IntVar(&opts.window, "window", 14, "activity look-back window in days (F2 features)")
	fs.IntVar(&opts.keepDays, "keep-days", 30, "days of activity history kept across rotations")
	fs.StringVar(&opts.stateDir, "state", "", "state directory for the write-ahead log and checkpoints (empty: in-memory only)")
	fs.DurationVar(&opts.ckptInterval, "checkpoint-interval", 30*time.Second, "how often to checkpoint the live graph (with -state)")
	fs.IntVar(&opts.walSyncEvery, "wal-sync-every", 256, "fsync the WAL after this many records (with -state; 1 = every record)")
	fs.BoolVar(&opts.walBinary, "wal-binary", false, "append WAL records in the segb1 binary framing instead of text (with -state; replay auto-detects either, so the flag can change across restarts)")
	fs.IntVar(&opts.maxEventConns, "max-event-conns", 64, "concurrent tcp:// event connections accepted (0 = unlimited)")
	fs.DurationVar(&opts.eventIdleTimeout, "event-idle-timeout", 5*time.Minute, "drop a tcp:// event connection idle this long (0 = never)")
	fs.DurationVar(&opts.classifyEvery, "classify-every", 0, "run a periodic classify-all and feed detections to the /v1/tracker history (0 = disabled; needs -model)")
	fs.DurationVar(&opts.passDeadline, "pass-deadline", 0, "cancel a classify/tracker pass running longer than this and serve last-good cached scores stale-marked (0 = unbounded)")
	fs.StringVar(&opts.shedPolicy, "shed-policy", "drop", `full ingest shard policy: "drop" (legacy drop-newest), "block" (backpressure), "drop-oldest" or "sample" (shed only while overloaded)`)
	fs.IntVar(&opts.maxInflight, "max-inflight", 0, "per-endpoint concurrent request cap; excess requests get 429/503 with Retry-After (0 = unlimited)")
	fs.IntVar(&opts.memWatermarkMB, "mem-watermark-mb", 0, "heap-in-use megabytes above which the daemon reports overloaded (0 = disabled)")
	fs.BoolVar(&opts.pprof, "pprof", true, "serve net/http/pprof under /debug/pprof/ on the API listener")
	fs.StringVar(&opts.logFormat, "log-format", obs.FormatText, `log output format: "text" or "json"`)
	fs.StringVar(&opts.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	fs.DurationVar(&opts.slowTrace, "slow-trace", time.Second, "log pipeline traces slower than this (0 = never)")
	fs.IntVar(&opts.traceRing, "trace-ring", 32, "traces kept in each flight-recorder ring (most recent and slowest)")
	fs.IntVar(&opts.auditRing, "audit-ring", 1024, "detection audit records kept in memory for /v1/audit")
	fs.DurationVar(&opts.statsInterval, "stats-interval", 5*time.Second, "self-scrape cadence of the embedded time-series store behind /v1/stats/query")
	fs.DurationVar(&opts.statsRetention, "stats-retention", time.Hour, "how far back the embedded time-series store holds samples")
	fs.StringVar(&opts.sloConfig, "slo-config", "", "JSON SLO objectives file; burn-rate breaches feed the health state machine (empty: disabled)")
	fs.StringVar(&opts.detectors, "detectors", "forest",
		`comma-separated detector plugins driven by the classify pass (e.g. "forest,lbp")`)
	fs.StringVar(&opts.detectorConfig, "detector-config", "",
		"JSON detector tuning file layered over the -lbp-* flags, re-read on every reload")
	fs.Float64Var(&opts.lbpEpsilon, "lbp-epsilon", 0, "LBP homophily strength epsilon (0 = default)")
	fs.Float64Var(&opts.lbpDamping, "lbp-damping", 0, "LBP message damping factor in [0,1)")
	fs.IntVar(&opts.lbpMaxIter, "lbp-max-iter", 0, "LBP iteration budget per pass (0 = default)")
	fs.Float64Var(&opts.lbpTolerance, "lbp-tolerance", 0, "LBP convergence tolerance (0 = default)")
	fs.Float64Var(&opts.lbpThreshold, "lbp-threshold", 0, "LBP detection threshold (0 = default)")
	if err := fs.Parse(args); err != nil {
		return opts, err
	}
	if fs.NArg() != 0 {
		return opts, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if !ingest.ValidShedPolicy(opts.shedPolicy) {
		return opts, fmt.Errorf("-shed-policy: unknown policy %q (have drop, block, drop-oldest, sample)", opts.shedPolicy)
	}
	if _, err := opts.detectorNames(); err != nil {
		return opts, err
	}
	return opts, nil
}

// detectorNames splits and validates -detectors against the plugin
// registry. The forest is always enabled: it is the primary detector
// the score cache and the top-level verdicts are built on.
func (opts *options) detectorNames() ([]string, error) {
	names := []string{"forest"}
	for _, name := range strings.Split(opts.detectors, ",") {
		name = strings.TrimSpace(name)
		if name == "" || name == "forest" {
			continue
		}
		if !slices.Contains(detector.Names(), name) {
			return nil, fmt.Errorf("-detectors: unknown plugin %q (have %v)", name, detector.Names())
		}
		if !slices.Contains(names, name) {
			names = append(names, name)
		}
	}
	return names, nil
}

// detectorTuning resolves the effective plugin tuning: the -lbp-* flags
// first, then the -detector-config file layered on top.
func (opts *options) detectorTuning() (detector.Tuning, error) {
	tuning := detector.Tuning{
		LBP: belief.Config{
			Epsilon:       opts.lbpEpsilon,
			Damping:       opts.lbpDamping,
			MaxIterations: opts.lbpMaxIter,
			Tolerance:     opts.lbpTolerance,
		},
		LBPThreshold: opts.lbpThreshold,
	}
	if opts.detectorConfig == "" {
		return tuning, nil
	}
	f, err := os.Open(opts.detectorConfig)
	if err != nil {
		return tuning, err
	}
	defer f.Close()
	return detector.LoadTuning(f, tuning)
}

func run(ctx context.Context, args []string, stdin io.Reader, logw io.Writer) error {
	opts, err := parseFlags(args)
	if err != nil {
		return err
	}
	level, err := obs.ParseLevel(opts.logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(logw, opts.logFormat, level)
	if err != nil {
		return err
	}
	d, err := newDaemon(opts, logger)
	if err != nil {
		return err
	}
	return d.run(ctx, stdin)
}

// daemon wires the ingester, the HTTP server, and the event source. It is
// constructed with its listeners already bound so tests can read the
// assigned ports before starting run.
type daemon struct {
	opts options

	// logger is the root structured logger; log is its "daemon"
	// component child used for the daemon's own lifecycle records.
	logger *slog.Logger
	log    *slog.Logger

	reg     *metrics.Registry
	tracer  *obs.Tracer
	audit   *obs.AuditLog
	health  *health.Tracker
	wm      *obs.Watermarks
	stats   *tsdb.Store
	sloEval *slo.Evaluator
	ing     *ingest.Ingester
	srv     *server.Server
	handle  *server.DetectorHandle
	trk     *tracker.Tracker

	httpLn   net.Listener
	eventsLn net.Listener // non-nil only for tcp:// sources

	// panics/restarts back segugiod_panics_total and
	// segugiod_source_restarts_total; shared by the ingest workers, the
	// HTTP handlers, and the source supervisors.
	panics   *metrics.Counter
	restarts *metrics.Counter

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

func newDaemon(opts options, logger *slog.Logger) (*daemon, error) {
	d := &daemon{
		opts:   opts,
		logger: logger,
		log:    obs.Component(logger, "daemon"),
		conns:  make(map[net.Conn]struct{}),
	}

	suffixes := dnsutil.DefaultSuffixList()
	if opts.pslPath != "" {
		f, err := os.Open(opts.pslPath)
		if err != nil {
			return nil, err
		}
		sl, err := dnsutil.ParseSuffixList(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("psl: %w", err)
		}
		suffixes = sl
	}

	bl := intel.NewBlacklist()
	wl := intel.NewWhitelist(nil)
	act := activity.NewLog()
	var abuse *pdns.AbuseIndex
	if opts.dataDir != "" {
		var err error
		bl, wl, abuse, err = loadIntel(opts.dataDir, opts.startDay, act, suffixes)
		if err != nil {
			return nil, err
		}
	}

	d.reg = metrics.NewRegistry()
	d.panics = d.reg.NewCounter("segugiod_panics_total",
		"Panics recovered anywhere in the daemon (ingest workers, HTTP handlers, sources).", "")
	d.restarts = d.reg.NewCounter("segugiod_source_restarts_total",
		"Supervised event-source restarts after a failure.", "")

	// One latency histogram per pipeline stage; the tracer feeds them
	// through OnStage so internal/obs stays metrics-agnostic. Span names
	// outside the stage set (http.* roots) are recorded in traces only.
	stageHist := make(map[string]*metrics.Histogram, len(obs.Stages()))
	for _, stage := range obs.Stages() {
		stageHist[stage] = d.reg.NewHistogram("segugiod_stage_seconds",
			"Pipeline stage latency in seconds, by stage.",
			metrics.Labels("stage", stage), nil)
	}
	d.tracer = obs.NewTracer(obs.TracerConfig{
		RingSize:      opts.traceRing,
		SlowThreshold: opts.slowTrace,
		Logger:        obs.Component(logger, "trace"),
		OnStage: func(stage string, seconds float64) {
			if h := stageHist[stage]; h != nil {
				h.Observe(seconds)
			}
		},
		// The sampled parse meter books whole line/record groups in one
		// call; ObserveN keeps the histogram's count exact without one
		// Observe per line.
		OnStageN: func(stage string, seconds float64, n int) {
			if h := stageHist[stage]; h != nil {
				h.ObserveN(seconds, int64(n))
			}
		},
	})

	auditCfg := obs.AuditConfig{RingSize: opts.auditRing}
	if opts.stateDir != "" {
		auditCfg.Dir = filepath.Join(opts.stateDir, "audit")
	}
	var err error
	d.audit, err = obs.OpenAudit(auditCfg)
	if err != nil {
		return nil, fmt.Errorf("open audit trail: %w", err)
	}

	// The health state machine aggregates overload signals from every
	// stage (ingest queues, WAL latency, classify-pass overruns, the heap
	// watermark). Transitions are logged and land in the audit trail so a
	// post-mortem can line up detections with degradation windows.
	healthLog := obs.Component(logger, "health")
	d.health = health.New(health.Config{
		OnTransition: func(tr health.Transition) {
			level := slog.LevelWarn
			if tr.To == health.Healthy.String() {
				level = slog.LevelInfo
			}
			healthLog.Log(context.Background(), level, "health state changed",
				"from", tr.From, "to", tr.To,
				"signal", tr.Signal, "reason", tr.Reason)
			if err := d.audit.Append(obs.AuditRecord{
				Time:   tr.Time,
				Reason: obs.ReasonHealthTransition,
				Note: fmt.Sprintf("%s -> %s (signal %s: %s)",
					tr.From, tr.To, tr.Signal, tr.Reason),
			}); err != nil {
				healthLog.Warn("health transition audit failed", "err", err)
			}
		},
	})
	// Gauge reads the live state on every scrape, so decayed (TTL-expired)
	// signals show up without anyone polling State() in between.
	d.reg.NewGaugeFunc("segugiod_health_state",
		"Daemon health state machine: 0 healthy, 1 degraded, 2 overloaded.", "",
		func() float64 { return float64(d.health.State()) })

	// Event-time watermarks: every source advances a day frontier at
	// dispatch and each downstream stage acks the days it completes; the
	// gauges render how long each stage has been behind its frontier.
	d.wm = obs.NewWatermarks()
	d.wm.Register(obs.WatermarkScoreCache, obs.WatermarkSourceAll)
	d.reg.NewGaugeVecFunc("segugiod_watermark_lag_seconds",
		"Seconds each pipeline stage has been behind its source's event-day frontier (0: caught up), by stage and source.",
		func() []metrics.LabeledValue {
			marks := d.wm.Marks()
			out := make([]metrics.LabeledValue, 0, len(marks))
			for _, m := range marks {
				out = append(out, metrics.LabeledValue{
					Labels: metrics.Labels("stage", m.Stage, "source", m.Source),
					Value:  m.LagSeconds,
				})
			}
			return out
		})
	d.reg.NewGaugeVecFunc("segugiod_watermark_day",
		"Last event day acknowledged per pipeline stage (ingest rows carry the source frontier), by stage and source.",
		func() []metrics.LabeledValue {
			marks := d.wm.Marks()
			out := make([]metrics.LabeledValue, 0, len(marks))
			for _, m := range marks {
				if !m.HasDay {
					continue
				}
				out = append(out, metrics.LabeledValue{
					Labels: metrics.Labels("stage", m.Stage, "source", m.Source),
					Value:  float64(m.Day),
				})
			}
			return out
		})

	ingMetrics := &ingest.Metrics{
		EventsIngested: d.reg.NewCounter("segugiod_ingest_events_total",
			"Events applied to the live graph.", ""),
		EventsDropped: d.reg.NewCounter("segugiod_ingest_dropped_total",
			"Events dropped because a shard queue was full.", ""),
		EventsStale: d.reg.NewCounter("segugiod_ingest_stale_total",
			"Events discarded for belonging to a rotated-out day.", ""),
		ParseErrors: d.reg.NewCounter("segugiod_ingest_parse_errors_total",
			"Malformed input skipped or aborted: bad text lines (abort stdin/TCP streams, skipped by tail and tracedns sources) and corrupt binary frames (always skipped).", ""),
		Rotations: d.reg.NewCounter("segugiod_ingest_rotations_total",
			"Day-boundary epoch rotations.", ""),
		GraphMachines: d.reg.NewGauge("segugiod_graph_machines",
			"Machines in the live behavior graph.", ""),
		GraphDomains: d.reg.NewGauge("segugiod_graph_domains",
			"Domains in the live behavior graph.", ""),
		GraphObservations: d.reg.NewGauge("segugiod_graph_observations",
			"Raw query observations in the live behavior graph.", ""),
		Panics: d.panics,
		TailReopens: d.reg.NewCounter("segugiod_tail_reopens_total",
			"Tailed-file reopens forced by rotation or truncation.", ""),
		WALAppendFailures: d.reg.NewCounter("segugiod_wal_append_failures_total",
			"Applied batches that could not be logged to the WAL.", ""),
		SnapshotSeconds: d.reg.NewHistogram("segugiod_snapshot_seconds",
			"Latency of taking one live-graph snapshot (incremental merge + labeling).", "", nil),
		DirtyDomains: d.reg.NewGauge("segugiod_dirty_domains",
			"Domains whose evidence changed between the last two snapshots.", ""),
		EventsShed: map[string]*metrics.Counter{},
	}
	// Pre-register every shed reason so the series scrape as zeros from
	// the first exposition, whatever policy is active.
	for _, reason := range []string{ingest.ShedDropOldest, ingest.ShedSample} {
		ingMetrics.EventsShed[reason] = d.reg.NewCounter("segugiod_ingest_shed_total",
			"Unacknowledged events shed by the overload policy, by reason.",
			metrics.Labels("reason", reason))
	}
	// Per-shard apply instrumentation: one series per graph shard, so a
	// hot or stalled shard is visible in isolation.
	graphShards := opts.graphShards
	if graphShards <= 0 {
		graphShards = opts.workers
	}
	for s := 0; s < graphShards; s++ {
		lbl := metrics.Labels("shard", strconv.Itoa(s))
		ingMetrics.ShardEvents = append(ingMetrics.ShardEvents, d.reg.NewCounter(
			"segugiod_shard_events_total",
			"Events applied to the live graph, by graph shard.", lbl))
		ingMetrics.ShardApplySeconds = append(ingMetrics.ShardApplySeconds, d.reg.NewHistogram(
			"segugiod_shard_apply_seconds",
			"Latency of applying one event batch to its graph shard, including shard-lock wait.", lbl, nil))
	}

	ingLog := obs.Component(logger, "ingest")
	ingCfg := ingest.Config{
		Network:          opts.network,
		StartDay:         opts.startDay,
		Suffixes:         suffixes,
		Workers:          opts.workers,
		GraphShards:      opts.graphShards,
		QueueDepth:       opts.queue,
		Activity:         act,
		ActivityKeepDays: opts.keepDays,
		PrepareSnapshot: func(g *graph.Graph) {
			g.ApplyLabels(graph.LabelSources{Blacklist: bl, Whitelist: wl, AsOf: g.Day()})
		},
		OnRotate: func(day int, final *graph.Graph) {
			ingLog.Info("epoch rotated",
				"day", day, "machines", final.NumMachines(), "domains", final.NumDomains())
		},
		Metrics:    ingMetrics,
		Tracer:     d.tracer,
		Health:     d.health,
		ShedPolicy: opts.shedPolicy,
		BinaryWAL:  opts.walBinary,
		Watermarks: d.wm,
		ApplyHook:  opts.applyHook,
	}
	if opts.stateDir == "" {
		d.ing = ingest.New(ingCfg)
	} else {
		durMetrics := &ingest.DurableMetrics{
			WAL: wal.Metrics{
				Appends: d.reg.NewCounter("segugiod_wal_appends_total",
					"Records appended to the write-ahead log.", ""),
				Bytes: d.reg.NewCounter("segugiod_wal_bytes_total",
					"Bytes appended to the write-ahead log.", ""),
				Syncs: d.reg.NewCounter("segugiod_wal_syncs_total",
					"Write-ahead log fsync batches.", ""),
				TornRecords: d.reg.NewCounter("segugiod_wal_torn_records_total",
					"Torn or corrupt trailing WAL records truncated at startup.", ""),
				Segments: d.reg.NewGauge("segugiod_wal_segments",
					"Live WAL segment files.", ""),
			},
			ReplayedEvents: d.reg.NewCounter("segugiod_recovery_replayed_events_total",
				"Events re-applied from the WAL during startup recovery.", ""),
			ReplayErrors: d.reg.NewCounter("segugiod_recovery_replay_errors_total",
				"Intact WAL records skipped during recovery because they did not parse.", ""),
			CheckpointFallbacks: d.reg.NewCounter("segugiod_recovery_checkpoint_fallbacks_total",
				"Recoveries that discarded a corrupt checkpoint for the previous generation.", ""),
			Checkpoints: d.reg.NewCounter("segugiod_checkpoints_total",
				"Checkpoints durably written.", ""),
			CheckpointFailures: d.reg.NewCounter("segugiod_checkpoint_failures_total",
				"Checkpoint attempts that failed.", ""),
			LastCheckpointUnix: d.reg.NewGauge("segugiod_last_checkpoint_unix",
				"Wall-clock second of the newest durable checkpoint.", ""),
		}
		var info *ingest.RecoveryInfo
		d.ing, info, err = ingest.OpenDurable(ingCfg, ingest.DurableConfig{
			Dir:             opts.stateDir,
			CheckpointEvery: opts.ckptInterval,
			SyncEvery:       opts.walSyncEvery,
			Metrics:         durMetrics,
			WALHooks:        opts.walHooks,
		})
		if err != nil {
			return nil, fmt.Errorf("open state %s: %w", opts.stateDir, err)
		}
		ingLog.Info("state recovered", "dir", opts.stateDir, "summary", info.String())
	}
	// Queue depth is a ring (worker) property, sampled at scrape time so a
	// backed-up shard shows up without a poll loop.
	d.reg.NewGaugeVecFunc("segugiod_shard_queue_depth",
		"Events queued per ingest ring shard, summed across attached sources.",
		func() []metrics.LabeledValue {
			depths := d.ing.QueueDepths()
			out := make([]metrics.LabeledValue, len(depths))
			for s, n := range depths {
				out[s] = metrics.LabeledValue{
					Labels: metrics.Labels("shard", strconv.Itoa(s)),
					Value:  float64(n),
				}
			}
			return out
		})

	if opts.model != "" {
		var err error
		d.handle, err = server.OpenDetector(opts.model)
		if err != nil {
			d.ing.Shutdown()
			return nil, err
		}
	}
	detNames, err := opts.detectorNames()
	if err != nil {
		d.ing.Shutdown()
		return nil, err
	}
	tuning, err := opts.detectorTuning()
	if err != nil {
		d.ing.Shutdown()
		return nil, fmt.Errorf("detector tuning: %w", err)
	}
	// The embedded stats store self-scrapes the registry (run drives the
	// cadence); it must exist before the SLO evaluator that queries it.
	d.stats = tsdb.New(tsdb.Config{
		Registry:  d.reg,
		Interval:  opts.statsInterval,
		Retention: opts.statsRetention,
	})
	if opts.sloConfig != "" {
		sloCfg, err := slo.Load(opts.sloConfig)
		if err != nil {
			d.ing.Shutdown()
			return nil, fmt.Errorf("slo config %s: %w", opts.sloConfig, err)
		}
		d.sloEval = slo.NewEvaluator(sloCfg, slo.EvaluatorConfig{
			Store:  d.stats,
			Health: d.health,
			Audit:  d.audit,
			Day:    d.ing.Day,
			Logger: obs.Component(logger, "slo"),
		})
		d.reg.NewGaugeVecFunc("segugiod_slo_burn_rate",
			"Error-budget burn rate per SLO objective and window (>= the threshold in both windows fires the objective).",
			func() []metrics.LabeledValue {
				burns := d.sloEval.Burns()
				out := make([]metrics.LabeledValue, 0, len(burns))
				for _, b := range burns {
					out = append(out, metrics.LabeledValue{
						Labels: metrics.Labels("objective", b.Objective, "window", b.Window),
						Value:  b.Value,
					})
				}
				return out
			})
		d.reg.NewGaugeVecFunc("segugiod_slo_firing",
			"Whether each SLO objective is currently firing (1) or within budget (0).",
			func() []metrics.LabeledValue {
				firing := d.sloEval.Firing()
				out := make([]metrics.LabeledValue, 0, len(firing))
				for _, f := range firing {
					out = append(out, metrics.LabeledValue{
						Labels: metrics.Labels("objective", f.Objective),
						Value:  f.Value,
					})
				}
				return out
			})
	}

	d.trk = tracker.New()
	d.srv = server.New(server.Config{
		Graphs:       d.ing,
		Detector:     d.handle,
		Activity:     act,
		Abuse:        abuse,
		Window:       opts.window,
		Registry:     d.reg,
		Panics:       d.panics,
		Tracker:      d.trk,
		EnablePprof:  opts.pprof,
		Logger:       logger,
		Tracer:       d.tracer,
		Audit:        d.audit,
		Detectors:    detNames,
		Tuning:       tuning,
		TuningPath:   opts.detectorConfig,
		PassDeadline: opts.passDeadline,
		MaxInflight:  opts.maxInflight,
		Health:       d.health,
		PassHook:     opts.passHook,
		Stats:        d.stats,
		Watermarks:   d.wm,
	})

	d.httpLn, err = net.Listen("tcp", opts.listen)
	if err != nil {
		d.ing.Shutdown()
		return nil, fmt.Errorf("listen %s: %w", opts.listen, err)
	}
	if addr, ok := strings.CutPrefix(opts.events, "tcp://"); ok {
		d.eventsLn, err = net.Listen("tcp", addr)
		if err != nil {
			d.httpLn.Close()
			d.ing.Shutdown()
			return nil, fmt.Errorf("listen events %s: %w", addr, err)
		}
	}
	return d, nil
}

// loadIntel reads the ground-truth files segugiod labels snapshots with.
// blacklist.tsv and whitelist.txt are required once -data is given;
// pdns.tsv (F3 abuse features) and activity.tsv (F2 history preload) are
// optional.
func loadIntel(dir string, day int, act *activity.Log, suffixes *dnsutil.SuffixList) (*intel.Blacklist, *intel.Whitelist, *pdns.AbuseIndex, error) {
	var bl *intel.Blacklist
	var wl *intel.Whitelist
	if err := readFile(filepath.Join(dir, "blacklist.tsv"), func(f *os.File) (err error) {
		bl, err = logio.ReadBlacklist(f)
		return err
	}); err != nil {
		return nil, nil, nil, err
	}
	if err := readFile(filepath.Join(dir, "whitelist.txt"), func(f *os.File) (err error) {
		wl, err = logio.ReadWhitelist(f)
		return err
	}); err != nil {
		return nil, nil, nil, err
	}

	var abuse *pdns.AbuseIndex
	pdnsPath := filepath.Join(dir, "pdns.tsv")
	if _, err := os.Stat(pdnsPath); err == nil {
		db := pdns.NewDB()
		if err := readFile(pdnsPath, func(f *os.File) error {
			return logio.ReadPDNS(bufio.NewReader(f), db)
		}); err != nil {
			return nil, nil, nil, err
		}
		abuse = pdns.BuildAbuseIndex(db, day-150, day-1, func(d string) pdns.Verdict {
			if bl.Contains(d, day) {
				return pdns.VerdictMalware
			}
			if wl.ContainsDomain(d, suffixes) {
				return pdns.VerdictBenign
			}
			return pdns.VerdictUnknown
		})
	}

	actPath := filepath.Join(dir, "activity.tsv")
	if _, err := os.Stat(actPath); err == nil {
		if err := readFile(actPath, func(f *os.File) error {
			return logio.ReadActivity(bufio.NewReader(f), act, suffixes)
		}); err != nil {
			return nil, nil, nil, err
		}
	}
	return bl, wl, abuse, nil
}

func readFile(path string, fn func(f *os.File) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

// run serves until ctx is canceled, then shuts down in order: stop
// accepting events, drain the ingest queues, stop the HTTP server.
func (d *daemon) run(ctx context.Context, stdin io.Reader) error {
	httpSrv := &http.Server{
		Handler: d.srv.Handler(),
		// Slowloris and fd-leak protection: a client must finish its
		// headers promptly and keep-alive connections do not linger forever.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(d.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	d.log.Info("HTTP API listening", "addr", d.httpLn.Addr().String())

	var sources sync.WaitGroup
	srcCtx, cancelSources := context.WithCancel(ctx)
	defer cancelSources()
	switch {
	case strings.HasPrefix(d.opts.events, "tracedns:"):
		target := strings.TrimPrefix(d.opts.events, "tracedns:")
		sources.Add(1)
		if target == "-" {
			go func() {
				defer sources.Done()
				if stdin == nil {
					return
				}
				if err := d.ing.ConsumeTraceDNS(stdin); err != nil && !errors.Is(err, ingest.ErrShuttingDown) {
					d.log.Error("trace_dns stdin stream failed", "err", err)
				}
			}()
			break
		}
		d.log.Info("tailing trace_dns JSONL", "path", target)
		go func() {
			defer sources.Done()
			tailer := d.ing.NewTraceDNSTailer(target, 0)
			err := ingest.Supervise(srcCtx, d.supervisorConfig("tracedns-tail"), tailer.Run)
			if err != nil {
				d.log.Error("trace_dns tail failed", "path", target, "err", err)
			}
		}()
	case d.eventsLn != nil:
		d.log.Info("event listener started", "addr", "tcp://"+d.eventsLn.Addr().String())
		sources.Add(1)
		go func() {
			defer sources.Done()
			err := ingest.Supervise(srcCtx, d.supervisorConfig("events-listener"), d.acceptEvents)
			if err != nil {
				d.log.Error("event listener failed", "err", err)
			}
		}()
	case d.opts.events == "-":
		if stdin != nil {
			sources.Add(1)
			go func() {
				defer sources.Done()
				if err := d.ing.Consume(stdin); err != nil && !errors.Is(err, ingest.ErrShuttingDown) {
					d.log.Error("stdin stream failed", "err", err)
				}
			}()
		}
	default:
		d.log.Info("tailing events file", "path", d.opts.events)
		sources.Add(1)
		go func() {
			defer sources.Done()
			// Supervision makes the tail robust to the file not existing
			// yet and to transient I/O errors: the source restarts with
			// backoff instead of silently dying for the daemon's lifetime.
			// One Tailer is shared across restarts so each run resumes at
			// the last fully consumed line instead of re-ingesting (and
			// double-counting) the whole file.
			tailer := d.ing.NewTailer(d.opts.events, 0)
			err := ingest.Supervise(srcCtx, d.supervisorConfig("tail"), tailer.Run)
			if err != nil {
				d.log.Error("tail failed", "path", d.opts.events, "err", err)
			}
		}()
	}

	// Periodic tracker pass: classify-all through the delta cache, fold
	// the detections into the cross-day tracker, and log the day diff.
	// Failures (e.g. the graph not labeled yet at startup) only log.
	if d.opts.classifyEvery > 0 && d.handle != nil {
		trkLog := obs.Component(d.logger, "tracker")
		sources.Add(1)
		go func() {
			defer sources.Done()
			tick := time.NewTicker(d.opts.classifyEvery)
			defer tick.Stop()
			for {
				select {
				case <-srcCtx.Done():
					return
				case <-tick.C:
				}
				diff, err := d.srv.RunTrackerPass(srcCtx)
				if err != nil {
					trkLog.Warn("tracker pass failed", "err", err)
					continue
				}
				if len(diff.New) > 0 || len(diff.Dormant) > 0 {
					trkLog.Info("tracker day diff", "day", diff.Day,
						"new", len(diff.New), "recurring", len(diff.Recurring),
						"dormant", len(diff.Dormant))
				}
			}
		}()
	}

	// Heap watermark sampler: crossing -mem-watermark-mb asserts the
	// memory signal as overloaded with a short decay, so the state falls
	// back on its own once the heap shrinks below the line.
	if d.opts.memWatermarkMB > 0 {
		watermark := uint64(d.opts.memWatermarkMB) << 20
		sources.Add(1)
		go func() {
			defer sources.Done()
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-srcCtx.Done():
					return
				case <-tick.C:
				}
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse >= watermark {
					d.health.SetFor("memory", health.Overloaded,
						fmt.Sprintf("heap in use %d MiB >= watermark %d MiB",
							ms.HeapInuse>>20, d.opts.memWatermarkMB),
						3*time.Second)
				}
			}
		}()
	}

	// Embedded stats store: self-scrape the registry on the configured
	// cadence so /v1/stats/query can answer windowed rate/quantile
	// queries over the daemon's own metrics.
	if d.stats != nil && d.opts.statsInterval > 0 {
		sources.Add(1)
		go func() {
			defer sources.Done()
			tick := time.NewTicker(d.opts.statsInterval)
			defer tick.Stop()
			for {
				select {
				case <-srcCtx.Done():
					return
				case <-tick.C:
				}
				d.stats.Scrape()
			}
		}()
	}

	// SLO burn-rate evaluator: each pass re-derives every objective's
	// fast/slow-window burn from the stats store and feeds TTL'd signals
	// into the health state machine (the TTL outlives one interval, so a
	// dead evaluator auto-recovers to healthy).
	if d.sloEval != nil {
		sources.Add(1)
		go func() {
			defer sources.Done()
			tick := time.NewTicker(d.sloEval.Interval())
			defer tick.Stop()
			for {
				select {
				case <-srcCtx.Done():
					return
				case <-tick.C:
				}
				d.sloEval.EvalOnce()
			}
		}()
	}

	// SIGHUP: hot-reload the detector without restarting.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if d.handle == nil {
				d.log.Warn("SIGHUP ignored: no detector configured")
				continue
			}
			if err := d.srv.ReloadForSignal(); err != nil {
				d.log.Error("SIGHUP reload failed", "err", err)
			} else {
				d.log.Info("SIGHUP: detector reloaded", "path", d.handle.Path())
			}
		}
	}()

	var serveErr error
	select {
	case <-ctx.Done():
	case serveErr = <-httpErr:
	}

	// Shutdown order matters: stop the event sources first so the
	// ingester's queues stop refilling, drain them, then stop HTTP.
	cancelSources()
	if d.eventsLn != nil {
		d.eventsLn.Close()
	}
	d.closeConns()
	d.ing.Shutdown()
	sources.Wait()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && serveErr == nil {
		serveErr = err
	}

	// Leave a post-mortem trail behind: flush and seal the audit log, and
	// snapshot the flight recorder and the stats store next to the rest
	// of the durable state.
	if d.opts.stateDir != "" {
		if err := d.writeTraceSnapshot(); err != nil {
			d.log.Warn("trace snapshot failed", "err", err)
		}
		if err := d.writeStatsSnapshot(); err != nil {
			d.log.Warn("stats snapshot failed", "err", err)
		}
	}
	if err := d.audit.Close(); err != nil {
		d.log.Warn("audit close failed", "err", err)
	}
	d.log.Info("shut down cleanly")
	return serveErr
}

// writeTraceSnapshot dumps the flight recorder to state/traces.json so a
// graceful stop preserves the recent and slowest traces for post-mortem
// inspection. core.WriteAtomic gives the same torn-write guarantees as
// the checkpoints: fsynced temp file renamed into place.
func (d *daemon) writeTraceSnapshot() error {
	return writeJSONSnapshot(filepath.Join(d.opts.stateDir, "traces.json"), d.tracer.Dump())
}

// writeStatsSnapshot dumps the embedded time-series store to
// state/stats.json, so the freshness and latency history leading up to a
// stop survives for post-mortem queries.
func (d *daemon) writeStatsSnapshot() error {
	if d.stats == nil {
		return nil
	}
	return writeJSONSnapshot(filepath.Join(d.opts.stateDir, "stats.json"), d.stats.Dump())
}

// writeJSONSnapshot atomically writes v as indented JSON.
func writeJSONSnapshot(path string, v any) error {
	return core.WriteAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

// supervisorConfig builds the restart policy shared by the daemon's
// event sources: back off exponentially with jitter, never give up (the
// context ending is the only way out), and feed the shared counters.
func (d *daemon) supervisorConfig(name string) ingest.SupervisorConfig {
	return ingest.SupervisorConfig{
		Name:     name,
		Restarts: d.restarts,
		Panics:   d.panics,
		Logger:   obs.Component(d.logger, "source"),
	}
}

// acceptEvents accepts streaming connections, feeding each to the
// ingester. Connections beyond the -max-event-conns cap are refused
// immediately, and each accepted connection carries a rolling read
// deadline so an idle peer cannot pin a slot forever. A nil return means
// shutdown; any other accept failure is handed to the supervisor.
func (d *daemon) acceptEvents(ctx context.Context) error {
	var conns sync.WaitGroup
	defer conns.Wait()
	var sem chan struct{}
	if d.opts.maxEventConns > 0 {
		sem = make(chan struct{}, d.opts.maxEventConns)
	}
	for {
		conn, err := d.eventsLn.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // listener closed during shutdown
			}
			return err
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				d.log.Warn("event stream refused",
					"remote", conn.RemoteAddr().String(), "open", d.opts.maxEventConns)
				conn.Close()
				continue
			}
		}
		d.trackConn(conn, true)
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer d.trackConn(conn, false)
			defer conn.Close()
			if sem != nil {
				defer func() { <-sem }()
			}
			r := io.Reader(conn)
			if d.opts.eventIdleTimeout > 0 {
				r = &deadlineReader{conn: conn, timeout: d.opts.eventIdleTimeout, health: d.health}
			}
			if err := d.ing.Consume(r); err != nil &&
				!errors.Is(err, ingest.ErrShuttingDown) && ctx.Err() == nil {
				d.log.Warn("event stream failed",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
		}()
	}
}

// overloadReadDelay throttles each event-stream read while the daemon is
// overloaded: the read loop slows, the kernel receive buffer fills, and
// TCP flow control pushes back on the sender — backpressure propagated
// all the way to the source instead of an unbounded in-daemon backlog.
const overloadReadDelay = 5 * time.Millisecond

// deadlineReader arms a fresh read deadline before every read, turning a
// silent idle peer into a timeout error that releases the connection.
// Under overload it additionally delays each read (see
// overloadReadDelay).
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
	health  *health.Tracker
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	if r.health != nil && r.health.Overloaded() {
		time.Sleep(overloadReadDelay)
	}
	r.conn.SetReadDeadline(time.Now().Add(r.timeout))
	return r.conn.Read(p)
}

func (d *daemon) trackConn(c net.Conn, add bool) {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	if add {
		d.conns[c] = struct{}{}
	} else {
		delete(d.conns, c)
	}
}

// closeConns unblocks Consume loops stuck reading idle connections.
func (d *daemon) closeConns() {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	for c := range d.conns {
		c.Close()
	}
}
