package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"segugio/internal/logio"
	"segugio/internal/metrics"
	"segugio/internal/obs"
)

// TestMetricsScrapeLints boots a full daemon (durable state, model,
// tracer, audit trail), drives every subsystem once, and then validates
// the complete /metrics exposition with the internal/metrics linter:
// HELP/TYPE pairing, parseable values, and monotone histogram buckets
// ending in le="+Inf". This is the scrape-compatibility gate for every
// metric the daemon exports.
func TestMetricsScrapeLints(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	dir := t.TempDir()
	bl, wl := writeIntel(t, dir)
	model := trainModel(t, dir, bl, wl)
	sloPath := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(sloPath, []byte(`{"objectives": [{
		"name": "graph_freshness",
		"type": "freshness",
		"metric": "segugiod_watermark_lag_seconds",
		"labels": "{stage=\"graph_apply\",source=\"stream\"}",
		"target": 3600
	}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	for _, e := range genEvents() {
		if err := logio.WriteEvent(&stream, e); err != nil {
			t.Fatal(err)
		}
	}
	logger, err := obs.NewLogger(io.Discard, obs.FormatText, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(options{
		listen:       "127.0.0.1:0",
		events:       "-",
		model:        model,
		dataDir:      dir,
		network:      "scrape",
		startDay:     e2eDay,
		workers:      2,
		queue:        16384,
		window:       14,
		keepDays:     30,
		stateDir:     t.TempDir(),
		ckptInterval: 50 * time.Millisecond,
		walSyncEvery:  1,
		detectors:     "forest,lbp",
		statsInterval: 50 * time.Millisecond,
		sloConfig:     sloPath,
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, &stream) }()

	base := "http://" + d.httpLn.Addr().String()
	total := float64(len(genEvents()))
	deadline := time.Now().Add(15 * time.Second)
	for {
		if v, ok := metricValue(t, base, "segugiod_ingest_events_total"); ok && v == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("events not ingested before deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	pollUntil := func(name string, cond func(v float64) bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			if v, ok := metricValue(t, base, name); ok && cond(v) {
				return
			}
			if time.Now().After(deadline) {
				v, _ := metricValue(t, base, name)
				t.Fatalf("metric %s stuck at %v", name, v)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// Make the durable and classify metric families carry real samples.
	pollUntil("segugiod_checkpoints_total", func(v float64) bool { return v >= 1 })
	for _, path := range []string{"/v1/classify", "/healthz", "/v1/audit", "/debug/obs/traces"} {
		var resp *http.Response
		var err error
		if strings.HasSuffix(path, "classify") {
			resp, err = http.Post(base+path, "application/json", strings.NewReader("{}"))
		} else {
			resp, err = http.Get(base + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if errs := metrics.Lint(bytes.NewReader(raw)); len(errs) != 0 {
		t.Fatalf("exposition violations: %v\n%s", errs, raw)
	}
	// Sanity: the document is not trivially small and covers the new
	// families.
	for _, want := range []string{
		"segugiod_stage_seconds_bucket",
		"segugiod_http_request_seconds_bucket",
		"segugiod_build_info",
		"segugiod_uptime_seconds",
		"segugiod_audit_records_total",
		"segugiod_lbp_iterations",
		"segugiod_lbp_residual_queue",
		`segugiod_lbp_passes_total{mode="full"}`,
		`segugiod_detector_pass_seconds_bucket{detector="forest"`,
		`segugiod_detector_pass_seconds_bucket{detector="lbp"`,
		`segugiod_detector_pass_errors_total{detector="lbp"}`,
		"segugiod_health_state",
		`segugiod_ingest_shed_total{reason="drop-oldest"}`,
		`segugiod_ingest_shed_total{reason="sample"}`,
		"segugiod_pass_deadline_exceeded_total",
		`segugiod_http_rejected_total{code="429"}`,
		`segugiod_http_rejected_total{code="503"}`,
		`segugiod_watermark_lag_seconds{stage="graph_apply",source="stream"}`,
		`segugiod_watermark_lag_seconds{stage="score_cache",source="all"}`,
		`segugiod_watermark_lag_seconds{stage="shard_apply",source="shard-0"}`,
		`segugiod_watermark_lag_seconds{stage="shard_apply",source="shard-1"}`,
		`segugiod_watermark_day{stage="graph_apply",source="stream"}`,
		`segugiod_shard_events_total{shard="0"}`,
		`segugiod_shard_events_total{shard="1"}`,
		`segugiod_shard_apply_seconds_bucket{shard="0"`,
		`segugiod_shard_apply_seconds_bucket{shard="1"`,
		`segugiod_shard_queue_depth{shard="0"}`,
		`segugiod_shard_queue_depth{shard="1"}`,
		`segugiod_slo_burn_rate{objective="graph_freshness",window="fast"}`,
		`segugiod_slo_burn_rate{objective="graph_freshness",window="slow"}`,
		`segugiod_slo_firing{objective="graph_freshness"}`,
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("scrape lacks %s:\n%s", want, raw)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
