package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"segugio/internal/faultinject"
	"segugio/internal/obs"
	"segugio/internal/tsdb"
)

// runSnapshotDaemon starts an in-process daemon on state, lets the stats
// store self-scrape at least once, and shuts it down cleanly.
func runSnapshotDaemon(t *testing.T, state string) {
	t.Helper()
	logBuf := &logBuffer{}
	logger, err := obs.NewLogger(logBuf, obs.FormatText, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(options{
		listen:        "127.0.0.1:0",
		events:        "tcp://127.0.0.1:0",
		network:       "snap",
		startDay:      e2eDay,
		workers:       2,
		queue:         1024,
		window:        14,
		keepDays:      30,
		stateDir:      state,
		ckptInterval:  time.Hour,
		walSyncEvery:  1,
		statsInterval: 20 * time.Millisecond,
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, nil) }()
	// Wait for the store to hold at least one self-scrape.
	base := "http://" + d.httpLn.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var disc struct {
			Series []tsdb.SeriesInfo `json:"series"`
		}
		if err := getJSONURL(base+"/v1/stats/query", &disc); err == nil && len(disc.Series) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats store never scraped; log:\n%s", logBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\n%s", err, logBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down; log:\n%s", logBuf.String())
	}
}

// TestShutdownSnapshotsSurviveTornWrites verifies the post-mortem
// snapshots: a clean stop writes state/traces.json and state/stats.json
// as valid JSON, and a torn snapshot left by a crash is replaced
// wholesale on the next clean stop rather than appended to or half
// rewritten.
func TestShutdownSnapshotsSurviveTornWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	state := t.TempDir()
	runSnapshotDaemon(t, state)

	statsPath := filepath.Join(state, "stats.json")
	tracesPath := filepath.Join(state, "traces.json")
	var dump tsdb.Snapshot
	decodeJSONFile(t, statsPath, &dump)
	if len(dump.Series) == 0 {
		t.Fatal("stats.json holds no series")
	}
	var traces obs.Dump
	decodeJSONFile(t, tracesPath, &traces)

	// Tear both snapshots mid-record, as a crash during a plain
	// (non-atomic) rewrite would.
	for _, p := range []string{statsPath, tracesPath} {
		if err := faultinject.TruncateTail(p, 25); err != nil {
			t.Fatal(err)
		}
		var junk any
		if err := json.Unmarshal(readFileT(t, p), &junk); err == nil {
			t.Fatalf("%s still parses after truncation; torn fixture is wrong", p)
		}
	}

	// The next daemon run must not trip over the torn files, and its
	// clean stop must leave intact replacements.
	runSnapshotDaemon(t, state)
	decodeJSONFile(t, statsPath, &dump)
	if len(dump.Series) == 0 {
		t.Fatal("stats.json empty after rewrite over torn file")
	}
	decodeJSONFile(t, tracesPath, &traces)

	// No temp droppings from the atomic writes.
	entries, err := os.ReadDir(state)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left in state dir: %s", e.Name())
		}
	}
}

// TestWriteJSONSnapshotFailureKeepsOldFile pins the atomicity contract
// at the helper level: an encode failure must leave the previous
// snapshot byte-for-byte intact.
func TestWriteJSONSnapshotFailureKeepsOldFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	if err := writeJSONSnapshot(path, map[string]int{"ok": 1}); err != nil {
		t.Fatal(err)
	}
	before := readFileT(t, path)

	// NaN is not representable in JSON, so the encoder fails after the
	// writer may already have consumed partial output.
	if err := writeJSONSnapshot(path, map[string]float64{"bad": math.NaN()}); err == nil {
		t.Fatal("encoding NaN must fail")
	}
	if after := readFileT(t, path); string(after) != string(before) {
		t.Fatalf("failed snapshot altered the file:\nbefore: %s\nafter:  %s", before, after)
	}
}

func getJSONURL(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func decodeJSONFile(t *testing.T, path string, v any) {
	t.Helper()
	if err := json.Unmarshal(readFileT(t, path), v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
