// Crossnetwork: train Segugio in one ISP, deploy it in another.
//
// The paper's Section IV-A shows a detector learned from one network's
// traffic transfers to a different network, because the features describe
// the behavior *around* a domain, not the identities of any particular
// network's machines. This example builds two ISPs that observe the same
// Internet (one domain universe) with disjoint machine populations,
// trains on the first, and evaluates on held-out known domains of the
// second.
//
//	go run ./examples/crossnetwork
package main

import (
	"fmt"
	"log"

	"segugio/internal/experiments"
)

func main() {
	log.SetFlags(0)

	universe, err := experiments.NewUniverse(
		experiments.TestUniverseParams(19), experiments.UniverseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Same universe, different user populations: the cross-network
	// deployment scenario.
	west := universe.Network(experiments.TestPopulation("ISP-WEST", 100))
	coast := universe.Network(experiments.TestPopulation("ISP-COAST", 200))

	res, err := experiments.RunCross(west, 170, coast, 182, experiments.CrossOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print("cross-network deployment: ", res.Summary())
	fmt.Println("\nROC operating points (FPR <= 1%):")
	for _, p := range res.Curve {
		if p.FPR > 0.01 {
			break
		}
		fmt.Printf("  threshold %.3f: FPR %.3f%%  TPR %.1f%%\n", p.Threshold, p.FPR*100, p.TPR*100)
	}
	fmt.Println("\nThe paper reads >92% TPs at 0.1% FPs for its cross-network test at")
	fmt.Println("full ISP scale; see EXPERIMENTS.md for this reproduction's numbers.")
}
