// Dailyops: the deployment loop an ISP would actually run.
//
// Each day: retrain on yesterday's labeled graph, classify today's
// unknown domains at a fixed false-positive budget, fold the detections
// into a multi-day tracker, and emit an evidence report. Across days the
// tracker separates new infrastructure from recurring (high-confidence)
// control domains and flags dormant ones — the operational view of the
// network agility Segugio is built to chase.
//
//	go run ./examples/dailyops
package main

import (
	"fmt"
	"log"
	"os"

	"segugio/internal/core"
	"segugio/internal/eval"
	"segugio/internal/experiments"
	"segugio/internal/features"
	"segugio/internal/report"
	"segugio/internal/tracker"
)

func main() {
	log.SetFlags(0)

	universe, err := experiments.NewUniverse(
		experiments.TestUniverseParams(37), experiments.UniverseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	isp := universe.Network(experiments.TestPopulation("OPS", 8))
	track := tracker.New()

	var lastReport *report.Report
	for day := 170; day <= 173; day++ {
		// Calibrate threshold and train on the day's known domains.
		val, err := experiments.RunCross(isp, day, isp, day,
			experiments.CrossOptions{TestFraction: 0.3, Seed: int64(day)})
		if err != nil {
			log.Fatal(err)
		}
		detector := val.Detector
		detector.SetThreshold(eval.ThresholdAtFPR(val.Curve, 0.001))

		// Classify everything still unknown today.
		dd := isp.Day(day)
		g := isp.Labeled(dd, isp.Commercial, nil)
		abuse := isp.Abuse(day, isp.Commercial)
		detections, classifyReport, err := detector.Classify(core.ClassifyInput{
			Graph: g, Activity: dd.Activity, Abuse: abuse,
		})
		if err != nil {
			log.Fatal(err)
		}
		detected := detector.Detected(detections)
		diff := track.Observe(day, detected, classifyReport.PrunedGraph)
		fmt.Printf("day %d: %d detections — %d new, %d recurring, %d went dormant\n",
			day, len(detected), len(diff.New), len(diff.Recurring), len(diff.Dormant))

		// The last day's evidence report, for the vetting queue.
		ex, err := features.NewExtractor(classifyReport.PrunedGraph, dd.Activity, abuse, 14)
		if err != nil {
			log.Fatal(err)
		}
		lastReport = report.Build(classifyReport.PrunedGraph, ex, detector,
			detections, classifyReport.Classified)
	}

	fmt.Printf("\ntracked control domains after 4 days: %d\n", track.Len())
	persistent := track.Persistent(2)
	fmt.Printf("detected on 2+ days (block with confidence): %d\n", len(persistent))
	for i, e := range persistent {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(persistent)-5)
			break
		}
		fmt.Printf("  %-26s first day %d, %d days, peak %.3f, %d machines\n",
			e.Domain, e.FirstDetected, e.DaysDetected, e.PeakScore, len(e.Machines))
	}

	fmt.Println("\nlast day's evidence report (text form):")
	short := *lastReport
	if len(short.Detections) > 3 {
		short.Detections = short.Detections[:3]
	}
	if err := short.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
