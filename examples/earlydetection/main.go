// Earlydetection: how far ahead of the blacklist does Segugio run?
//
// Section IV-F of the paper deploys Segugio on consecutive days with its
// threshold tuned to a 0.1% false-positive budget, classifies all
// still-unknown domains, and then watches the commercial blacklist: many
// of the detected control domains only appear on the list days or weeks
// later. This example reproduces that timeline on a synthetic ISP, where
// the listing delay is part of the ground-truth model.
//
//	go run ./examples/earlydetection
package main

import (
	"fmt"
	"log"
	"strings"

	"segugio/internal/experiments"
)

func main() {
	log.SetFlags(0)

	universe, err := experiments.NewUniverse(
		experiments.TestUniverseParams(23), experiments.UniverseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	isp := universe.Network(experiments.TestPopulation("MONITORED", 5))

	// Four consecutive monitoring days, 35-day blacklist horizon.
	days := []int{168, 169, 170, 171}
	res, err := experiments.RunFig11([]*experiments.Network{isp}, days, 35, 9)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitored days: %v\n", days)
	fmt.Printf("detections at the 0.1%%-FP threshold: %d\n", res.TotalDetections)
	fmt.Printf("  of which truly malware-operated:   %d (simulator ground truth)\n", res.TrulyMalware)
	fmt.Printf("  later added to the blacklist:      %d (within %d days)\n\n", res.LaterListed, res.Horizon)

	fmt.Println("days between Segugio's detection and the blacklist listing:")
	maxGap := 0
	for gap := range res.Gaps {
		if gap > maxGap {
			maxGap = gap
		}
	}
	for gap := 1; gap <= maxGap; gap++ {
		if c := res.Gaps[gap]; c > 0 {
			fmt.Printf("  +%2d days  %s (%d)\n", gap, strings.Repeat("#", c), c)
		}
	}
	fmt.Println("\nEvery bar is lead time: domains blocked before any feed lists them.")
}
