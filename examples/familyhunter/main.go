// Familyhunter: discovering control domains of never-before-seen malware
// families.
//
// Section IV-C of the paper holds out entire malware families from
// training: none of the control domains used for training belong to any
// family represented in the test set. Detection still works, driven by
// multi-infected machines, fresh domain activity, and reused hosting
// space. This example runs one such held-out-family round and inspects
// which families were discovered without any training exposure.
//
//	go run ./examples/familyhunter
package main

import (
	"fmt"
	"log"
	"sort"

	"segugio/internal/eval"
	"segugio/internal/experiments"
)

func main() {
	log.SetFlags(0)

	universe, err := experiments.NewUniverse(
		experiments.TestUniverseParams(29), experiments.UniverseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	isp := universe.Network(experiments.TestPopulation("HUNTER", 3))
	day := 175

	// Partition the blacklist into family-balanced folds and hold one out.
	byFamily := isp.Commercial.ByFamily()
	delete(byFamily, "")
	folds, err := eval.FamilyFolds(byFamily, 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	heldOut := folds[0]
	heldFamilies := map[string]bool{}
	for _, d := range heldOut {
		if e, ok := isp.Commercial.Entry(d); ok {
			heldFamilies[e.Family] = true
		}
	}
	fmt.Printf("holding out %d families (%d control domains) from training\n",
		len(heldFamilies), len(heldOut))

	// Hide the held-out fold (and sampled benign) and run train/test on
	// one day of traffic.
	dd := isp.Day(day)
	split := experiments.SplitFromDomains(isp, dd.Graph, heldOut, 0.5, 13)
	res, err := experiments.RunCross(isp, day, isp, day, experiments.CrossOptions{Split: split})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %d held-out-family C&C domains, %d benign\n\n",
		res.TestMalware, res.TestBenign)

	threshold := eval.ThresholdAtFPR(res.Curve, 0.01)
	discovered := map[string]int{}
	missed := 0
	for i, name := range res.Domains {
		if res.Labels[i] != 1 {
			continue
		}
		if res.Scores[i] >= threshold {
			e, _ := isp.Commercial.Entry(name)
			discovered[e.Family]++
		} else {
			missed++
		}
	}
	fams := make([]string, 0, len(discovered))
	for f := range discovered {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	fmt.Println("families discovered with zero training exposure (<=1% FP threshold):")
	for _, f := range fams {
		fmt.Printf("  %-8s %d control domains\n", f, discovered[f])
	}
	fmt.Printf("missed held-out C&C domains: %d\n", missed)
	fmt.Printf("\nTPR at 1%% FP: %.1f%%  (paper reads >85%% at 0.1%% FP at full ISP scale)\n",
		res.TPRAt[0.01]*100)
}
