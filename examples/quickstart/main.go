// Quickstart: the smallest end-to-end Segugio run.
//
// It builds a small synthetic ISP, trains the behavior-based classifier on
// one day of DNS traffic, classifies the next day's unknown domains, and
// prints the discovered malware-control domains together with the infected
// machines that query them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"segugio/internal/core"
	"segugio/internal/eval"
	"segugio/internal/experiments"
)

func main() {
	log.SetFlags(0)

	// A small synthetic ISP: the domain universe (benign sites, malware
	// families with rotating control domains, passive-DNS history) plus a
	// machine population querying it.
	universe, err := experiments.NewUniverse(
		experiments.TestUniverseParams(7), experiments.UniverseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	isp := universe.Network(experiments.TestPopulation("QUICK", 1))

	trainDay, deployDay := 170, 178

	// Train on one day of traffic. Labels come from the commercial C&C
	// blacklist and the consistently-popular whitelist; the pipeline
	// prunes the graph (rules R1-R4), measures the 11 features of every
	// known domain with its own label hidden, and fits a random forest.
	dd := isp.Day(trainDay)
	g := isp.Labeled(dd, isp.Commercial, nil)
	detector, report, err := core.Train(core.DefaultConfig(), core.TrainInput{
		Graph:    g,
		Activity: dd.Activity,
		Abuse:    isp.Abuse(trainDay, isp.Commercial),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d benign + %d malware domains (graph pruned %d -> %d domains)\n",
		report.TrainBenign, report.TrainMalware,
		report.Prune.DomainsBefore, report.Prune.DomainsAfter)

	// Calibrate the detection threshold for a 0.1% false-positive budget
	// using a same-day validation run (hide a third of the known domains
	// and measure the ROC on them).
	val, err := experiments.RunCross(isp, trainDay, isp, trainDay,
		experiments.CrossOptions{TestFraction: 0.33, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	detector.SetThreshold(eval.ThresholdAtFPR(val.Curve, 0.001))
	fmt.Printf("threshold %.3f for <=0.1%% FPs\n", detector.Threshold())

	// Deploy on a later day: classify everything still unknown.
	dd2 := isp.Day(deployDay)
	g2 := isp.Labeled(dd2, isp.Commercial, nil)
	detections, classifyReport, err := detector.Classify(core.ClassifyInput{
		Graph:    g2,
		Activity: dd2.Activity,
		Abuse:    isp.Abuse(deployDay, isp.Commercial),
	})
	if err != nil {
		log.Fatal(err)
	}
	detected := detector.Detected(detections)
	fmt.Printf("\nclassified %d unknown domains on day %d; %d detections:\n",
		classifyReport.Classified, deployDay, len(detected))
	for i, d := range detected {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(detected)-10)
			break
		}
		truth := "?"
		if id, ok := universe.Cat.IDByName(d.Domain); ok {
			if fam, isMalware := universe.Cat.TrueFamily(id); isMalware {
				truth = "true C&C of " + fam
			} else {
				truth = "false positive"
			}
		}
		fmt.Printf("  %.3f  %-26s (%s)\n", d.Score, d.Domain, truth)
	}

	machines := core.InfectedMachines(classifyReport.PrunedGraph, detected)
	fmt.Printf("\n%d machines query the detected domains (first 5):\n", len(machines))
	for i, m := range machines {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", m)
	}
}
