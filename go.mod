module segugio

go 1.22
