// Package activity tracks on which days domains (and their effective
// second-level domains) were observed in DNS query logs. Segugio's
// domain-activity features (F2) are measured against this log: the number
// of active days in a 14-day look-back window and the length of the
// consecutive-activity streak ending on the observation day, for both the
// full domain name and its e2LD (paper Section II-A3).
package activity

import (
	"sort"
	"sync"
)

// Log records per-day activity for domains and e2LDs. It is safe for
// concurrent use. The zero value is not usable; construct with NewLog.
type Log struct {
	mu      sync.RWMutex
	domains map[string][]int // sorted unique day lists
	e2lds   map[string][]int
}

// NewLog returns an empty activity log.
func NewLog() *Log {
	return &Log{
		domains: make(map[string][]int),
		e2lds:   make(map[string][]int),
	}
}

// MarkDomain records that domain was actively queried on day.
func (l *Log) MarkDomain(day int, domain string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.domains[domain] = insertDay(l.domains[domain], day)
}

// MarkE2LD records that some name under e2ld was actively queried on day.
func (l *Log) MarkE2LD(day int, e2ld string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.e2lds[e2ld] = insertDay(l.e2lds[e2ld], day)
}

// insertDay inserts day into a sorted unique slice. Days normally arrive in
// order, so the append fast path dominates.
func insertDay(days []int, day int) []int {
	if n := len(days); n == 0 || days[n-1] < day {
		return append(days, day)
	}
	i := sort.SearchInts(days, day)
	if i < len(days) && days[i] == day {
		return days
	}
	days = append(days, 0)
	copy(days[i+1:], days[i:])
	days[i] = day
	return days
}

// DomainActiveDays counts the days in [from, to] on which domain was
// active.
func (l *Log) DomainActiveDays(domain string, from, to int) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return countInWindow(l.domains[domain], from, to)
}

// E2LDActiveDays counts the days in [from, to] on which e2ld was active.
func (l *Log) E2LDActiveDays(e2ld string, from, to int) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return countInWindow(l.e2lds[e2ld], from, to)
}

// DomainStreak returns the length of the consecutive-day activity run
// ending exactly at endDay (0 when the domain was not active on endDay).
func (l *Log) DomainStreak(domain string, endDay int) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return streak(l.domains[domain], endDay)
}

// E2LDStreak is DomainStreak for an effective second-level domain.
func (l *Log) E2LDStreak(e2ld string, endDay int) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return streak(l.e2lds[e2ld], endDay)
}

// FirstSeenDay returns the earliest recorded activity day for domain.
// ok is false when the domain has no recorded activity. Because Trim
// drops days outside the look-back window, this is the first *retained*
// day — exact for domains younger than the retention horizon (the case
// detection-freshness audit records care about: new detections are by
// construction recent arrivals), a lower bound on age otherwise.
func (l *Log) FirstSeenDay(domain string) (day int, ok bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	days := l.domains[domain]
	if len(days) == 0 {
		return 0, false
	}
	return days[0], true
}

// Domains reports the number of distinct tracked domains.
func (l *Log) Domains() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.domains)
}

// Trim drops all activity strictly before day, bounding memory in
// long-running deployments: once the observation day advances, anything
// older than the F2 look-back window is dead weight. Names left with no
// in-window activity are removed entirely.
func (l *Log) Trim(day int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	trimSet(l.domains, day)
	trimSet(l.e2lds, day)
}

func trimSet(set map[string][]int, day int) {
	for name, days := range set {
		i := sort.SearchInts(days, day)
		switch {
		case i == 0:
		case i == len(days):
			delete(set, name)
		default:
			set[name] = append(days[:0], days[i:]...)
		}
	}
}

func countInWindow(days []int, from, to int) int {
	lo := sort.SearchInts(days, from)
	hi := sort.SearchInts(days, to+1)
	return hi - lo
}

func streak(days []int, endDay int) int {
	i := sort.SearchInts(days, endDay)
	if i >= len(days) || days[i] != endDay {
		return 0
	}
	n := 1
	for j := i - 1; j >= 0 && days[j] == days[j+1]-1; j-- {
		n++
	}
	return n
}
