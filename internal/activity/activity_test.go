package activity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogActiveDaysWindow(t *testing.T) {
	l := NewLog()
	for _, d := range []int{1, 2, 3, 7, 8, 12} {
		l.MarkDomain(d, "d.com")
	}
	tests := []struct {
		from, to, want int
	}{
		{1, 12, 6},
		{1, 3, 3},
		{4, 6, 0},
		{7, 8, 2},
		{12, 12, 1},
		{13, 20, 0},
	}
	for _, tt := range tests {
		if got := l.DomainActiveDays("d.com", tt.from, tt.to); got != tt.want {
			t.Errorf("DomainActiveDays(%d, %d) = %d, want %d", tt.from, tt.to, got, tt.want)
		}
	}
	if got := l.DomainActiveDays("absent.com", 0, 100); got != 0 {
		t.Errorf("absent domain active days = %d, want 0 days", got)
	}
}

func TestLogStreak(t *testing.T) {
	l := NewLog()
	for _, d := range []int{2, 3, 4, 8, 10, 11} {
		l.MarkDomain(d, "d.com")
	}
	tests := []struct {
		endDay, want int
	}{
		{4, 3},  // 2,3,4
		{3, 2},  // 2,3
		{2, 1},  // 2
		{8, 1},  // isolated
		{11, 2}, // 10,11
		{5, 0},  // not active on endDay
		{99, 0},
	}
	for _, tt := range tests {
		if got := l.DomainStreak("d.com", tt.endDay); got != tt.want {
			t.Errorf("DomainStreak(end=%d) = %d, want %d", tt.endDay, got, tt.want)
		}
	}
}

func TestLogDuplicateAndOutOfOrderMarks(t *testing.T) {
	l := NewLog()
	l.MarkDomain(5, "d.com")
	l.MarkDomain(3, "d.com")
	l.MarkDomain(5, "d.com") // duplicate
	l.MarkDomain(4, "d.com")
	if got := l.DomainActiveDays("d.com", 0, 10); got != 3 {
		t.Fatalf("active days = %d, want 3", got)
	}
	if got := l.DomainStreak("d.com", 5); got != 3 {
		t.Fatalf("streak = %d, want 3 (days 3,4,5)", got)
	}
}

func TestLogE2LDTracking(t *testing.T) {
	l := NewLog()
	l.MarkE2LD(1, "example.com")
	l.MarkE2LD(2, "example.com")
	if got := l.E2LDActiveDays("example.com", 0, 5); got != 2 {
		t.Fatalf("E2LDActiveDays = %d, want 2", got)
	}
	if got := l.E2LDStreak("example.com", 2); got != 2 {
		t.Fatalf("E2LDStreak = %d, want 2", got)
	}
	if got := l.DomainActiveDays("example.com", 0, 5); got != 0 {
		t.Fatalf("e2LD marks must not leak into domain tracking, got %d", got)
	}
}

func TestLogDomainsCount(t *testing.T) {
	l := NewLog()
	l.MarkDomain(1, "a.com")
	l.MarkDomain(2, "a.com")
	l.MarkDomain(1, "b.com")
	if got := l.Domains(); got != 2 {
		t.Fatalf("Domains = %d, want 2", got)
	}
}

// Property: regardless of mark order, the streak ending at the max marked
// day equals the length of the final run of consecutive integers.
func TestLogStreakProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLog()
		days := make(map[int]bool)
		for i := 0; i < int(n)+1; i++ {
			d := rng.Intn(40)
			days[d] = true
			l.MarkDomain(d, "d.com")
		}
		maxDay := -1
		for d := range days {
			if d > maxDay {
				maxDay = d
			}
		}
		want := 0
		for d := maxDay; d >= 0 && days[d]; d-- {
			want++
		}
		return l.DomainStreak("d.com", maxDay) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogConcurrent(t *testing.T) {
	l := NewLog()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for d := 0; d < 50; d++ {
				l.MarkDomain(d, "shared.com")
				l.MarkE2LD(d, "shared.com")
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := l.DomainActiveDays("shared.com", 0, 49); got != 50 {
		t.Fatalf("active days = %d, want 50", got)
	}
}

func TestLogTrim(t *testing.T) {
	l := NewLog()
	for d := 1; d <= 10; d++ {
		l.MarkDomain(d, "old.com")
	}
	for d := 8; d <= 12; d++ {
		l.MarkDomain(d, "fresh.com")
		l.MarkE2LD(d, "fresh.com")
	}
	l.MarkDomain(2, "gone.com")

	l.Trim(8)
	if got := l.DomainActiveDays("old.com", 0, 20); got != 3 {
		t.Fatalf("old.com days after trim = %d, want 3 (days 8-10)", got)
	}
	if got := l.DomainActiveDays("fresh.com", 0, 20); got != 5 {
		t.Fatalf("fresh.com days after trim = %d, want 5", got)
	}
	if got := l.E2LDActiveDays("fresh.com", 0, 20); got != 5 {
		t.Fatalf("fresh.com e2LD days after trim = %d, want 5", got)
	}
	if got := l.DomainActiveDays("gone.com", 0, 20); got != 0 {
		t.Fatalf("gone.com should be fully dropped, got %d", got)
	}
	if got := l.Domains(); got != 2 {
		t.Fatalf("tracked domains after trim = %d, want 2", got)
	}
	// Trim at a day before everything is a no-op.
	l.Trim(0)
	if got := l.DomainActiveDays("old.com", 0, 20); got != 3 {
		t.Fatalf("no-op trim changed data: %d", got)
	}
}
