package activity

import (
	"segugio/internal/dnsutil"
	"segugio/internal/pdns"
)

// FromDB derives an activity log from a passive-DNS database: a domain is
// considered active on every day it has a resolution record in [from, to].
// Deployments that archive the resolver's responses (which is what feeds
// the passive-DNS database in the first place) get the F2 activity window
// for free this way.
func FromDB(db *pdns.DB, suffixes *dnsutil.SuffixList, from, to int) *Log {
	l := NewLog()
	e2ldCache := make(map[string]string)
	db.ForEachRecord(from, to, func(day int, domain string, _ dnsutil.IPv4) {
		l.MarkDomain(day, domain)
		e2ld, ok := e2ldCache[domain]
		if !ok {
			e2ld = suffixes.E2LD(domain)
			e2ldCache[domain] = e2ld
		}
		l.MarkE2LD(day, e2ld)
	})
	return l
}
