// Package belief implements loopy belief propagation over the
// machine-domain bipartite graph — the graph-inference baseline Segugio is
// compared against in Section I (Manadhata et al. [6], and Polonium's
// file-machine variant [17]). Nodes carry a binary hidden state
// (benign/malware); labeled nodes get strong priors, unknown nodes
// uninformative ones; edges carry a homophily potential ("infected
// machines talk to malware domains"). After message passing, each unknown
// domain's marginal belief of being malware is its score.
//
// The paper reports that this approach is both less accurate than
// Segugio's feature-based classifier (it cannot exploit domain-activity or
// IP-abuse evidence) and far more expensive (hours vs. minutes per
// ISP-day). The benchmarks in this repository reproduce that comparison.
package belief

import (
	"context"
	"errors"
	"math"

	"segugio/internal/graph"
)

// Config parameterizes the propagation. Zero values select the documented
// defaults.
type Config struct {
	// MaxIterations bounds the message-passing rounds (default 15).
	MaxIterations int
	// Epsilon is the homophily strength: the edge potential is
	// [[0.5+e, 0.5-e], [0.5-e, 0.5+e]] (default 0.02, Polonium's choice
	// of a weak homophilic coupling).
	Epsilon float64
	// PriorMalware is the malware-state prior of malware-labeled nodes
	// (default 0.99); benign-labeled nodes get 1-PriorMalware; unknown
	// nodes get 0.5.
	PriorMalware float64
	// Damping blends each new message with the previous one to tame
	// oscillation on loopy graphs. Zero (the default) disables damping;
	// weak bipartite potentials converge without it.
	Damping float64
	// Tolerance stops iteration early when no belief moves more than this
	// between rounds (default 1e-4).
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 15
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.02
	}
	if c.PriorMalware <= 0 || c.PriorMalware >= 1 {
		c.PriorMalware = 0.99
	}
	if c.Damping < 0 || c.Damping >= 1 {
		c.Damping = 0
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-4
	}
	return c
}

// Result holds the posterior marginals plus pass accounting.
type Result struct {
	// DomainBelief[d] is the malware marginal of domain node d.
	DomainBelief []float64
	// MachineBelief[m] is the malware marginal of machine node m.
	MachineBelief []float64
	// Iterations actually run (full passes only), and whether the
	// tolerance was reached within budget.
	Iterations int
	Converged  bool
	// Mode is how the pass ran: ModeFull, ModeResidual, or ModeCached.
	Mode string
	// Residual-pass accounting: nodes seeded from the delta, node
	// updates performed, and the residual queue's high-water mark.
	Seeds     int
	Updates   int
	PeakQueue int
}

// ErrUnlabeledGraph is returned when the graph has no labels: without
// priors there is nothing to propagate.
var ErrUnlabeledGraph = errors.New("belief: graph is not labeled")

const msgFloor = 1e-9

// Propagate runs sum-product loopy BP from scratch and returns the
// marginals. It is the batch entry point; Engine layers persistent
// message state and residual delta passes on top of the same update
// rules (see incremental.go).
func Propagate(g *graph.Graph, cfg Config) (*Result, error) {
	if !g.Labeled() {
		return nil, ErrUnlabeledGraph
	}
	cfg = cfg.withDefaults()
	st := newEngineState(g, 0, cfg)
	iters, conv, err := st.runFull(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return st.result(ModeFull, iters, conv, passStats{}), nil
}

func prior(l graph.Label, priorMalware float64) float64 {
	switch l {
	case graph.LabelMalware:
		return priorMalware
	case graph.LabelBenign:
		return 1 - priorMalware
	default:
		return 0.5
	}
}

func clamp(v float64) float64 {
	if math.IsNaN(v) {
		return 0.5
	}
	if v < msgFloor {
		return msgFloor
	}
	if v > 1-msgFloor {
		return 1 - msgFloor
	}
	return v
}

func constSlice(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}
