// Package belief implements loopy belief propagation over the
// machine-domain bipartite graph — the graph-inference baseline Segugio is
// compared against in Section I (Manadhata et al. [6], and Polonium's
// file-machine variant [17]). Nodes carry a binary hidden state
// (benign/malware); labeled nodes get strong priors, unknown nodes
// uninformative ones; edges carry a homophily potential ("infected
// machines talk to malware domains"). After message passing, each unknown
// domain's marginal belief of being malware is its score.
//
// The paper reports that this approach is both less accurate than
// Segugio's feature-based classifier (it cannot exploit domain-activity or
// IP-abuse evidence) and far more expensive (hours vs. minutes per
// ISP-day). The benchmarks in this repository reproduce that comparison.
package belief

import (
	"errors"
	"math"

	"segugio/internal/graph"
)

// Config parameterizes the propagation. Zero values select the documented
// defaults.
type Config struct {
	// MaxIterations bounds the message-passing rounds (default 15).
	MaxIterations int
	// Epsilon is the homophily strength: the edge potential is
	// [[0.5+e, 0.5-e], [0.5-e, 0.5+e]] (default 0.02, Polonium's choice
	// of a weak homophilic coupling).
	Epsilon float64
	// PriorMalware is the malware-state prior of malware-labeled nodes
	// (default 0.99); benign-labeled nodes get 1-PriorMalware; unknown
	// nodes get 0.5.
	PriorMalware float64
	// Damping blends each new message with the previous one to tame
	// oscillation on loopy graphs. Zero (the default) disables damping;
	// weak bipartite potentials converge without it.
	Damping float64
	// Tolerance stops iteration early when no belief moves more than this
	// between rounds (default 1e-4).
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 15
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.02
	}
	if c.PriorMalware <= 0 || c.PriorMalware >= 1 {
		c.PriorMalware = 0.99
	}
	if c.Damping < 0 || c.Damping >= 1 {
		c.Damping = 0
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-4
	}
	return c
}

// Result holds the posterior marginals.
type Result struct {
	// DomainBelief[d] is the malware marginal of domain node d.
	DomainBelief []float64
	// MachineBelief[m] is the malware marginal of machine node m.
	MachineBelief []float64
	// Iterations actually run, and whether the tolerance was reached.
	Iterations int
	Converged  bool
}

// ErrUnlabeledGraph is returned when the graph has no labels: without
// priors there is nothing to propagate.
var ErrUnlabeledGraph = errors.New("belief: graph is not labeled")

const msgFloor = 1e-9

// Propagate runs sum-product loopy BP and returns the marginals.
func Propagate(g *graph.Graph, cfg Config) (*Result, error) {
	if !g.Labeled() {
		return nil, ErrUnlabeledGraph
	}
	cfg = cfg.withDefaults()
	nm, nd, ne := g.NumMachines(), g.NumDomains(), g.NumEdges()

	// Node priors: probability of the malware state.
	machinePrior := make([]float64, nm)
	for m := 0; m < nm; m++ {
		machinePrior[m] = prior(g.MachineLabel(int32(m)), cfg.PriorMalware)
	}
	domainPrior := make([]float64, nd)
	for d := 0; d < nd; d++ {
		domainPrior[d] = prior(g.DomainLabel(int32(d)), cfg.PriorMalware)
	}

	// Cross-indexes between the two CSR edge orders. Machine-side edge p
	// corresponds to domain-side edge toDomainSide[p], and vice versa.
	// The domain-side adjacency was filled by scanning machines in
	// ascending order, so replaying that scan reproduces the positions.
	toDomainSide := make([]int32, ne)
	toMachineSide := make([]int32, ne)
	{
		cursor := make([]int32, nd)
		off := int32(0)
		for d := 0; d < nd; d++ {
			cursor[d] = off
			off += int32(g.DomainDegree(int32(d)))
		}
		p := 0
		for m := 0; m < nm; m++ {
			for _, d := range g.DomainsOf(int32(m)) {
				q := cursor[d]
				cursor[d]++
				toDomainSide[p] = q
				toMachineSide[q] = int32(p)
				p++
			}
		}
	}

	// Messages store the malware-state component of a normalized pair.
	// m2d is indexed by domain-side position, d2m by machine-side
	// position, so each update pass reads contiguous slices.
	m2d := constSlice(ne, 0.5)
	d2m := constSlice(ne, 0.5)
	newMsg := make([]float64, ne)

	domBelief := make([]float64, nd)
	macBelief := make([]float64, nm)
	prevDom := make([]float64, nd)

	psiSame := 0.5 + cfg.Epsilon
	psiDiff := 0.5 - cfg.Epsilon

	iter := 0
	converged := false
	for ; iter < cfg.MaxIterations; iter++ {
		// Machines -> domains.
		p := 0
		for m := 0; m < nm; m++ {
			edges := g.DomainsOf(int32(m))
			s0, s1 := 0.0, 0.0
			for i := range edges {
				s0 += math.Log(1 - d2m[p+i])
				s1 += math.Log(d2m[p+i])
			}
			phi1 := machinePrior[m]
			for i := range edges {
				mu0 := (1 - phi1) * math.Exp(s0-math.Log(1-d2m[p+i]))
				mu1 := phi1 * math.Exp(s1-math.Log(d2m[p+i]))
				// Apply the edge potential and normalize.
				out0 := mu0*psiSame + mu1*psiDiff
				out1 := mu0*psiDiff + mu1*psiSame
				v := clamp(out1 / (out0 + out1))
				q := toDomainSide[p+i]
				newMsg[q] = cfg.Damping*m2d[q] + (1-cfg.Damping)*v
			}
			p += len(edges)
		}
		m2d, newMsg = newMsg, m2d

		// Domains -> machines.
		q := 0
		for d := 0; d < nd; d++ {
			edges := g.MachinesOf(int32(d))
			s0, s1 := 0.0, 0.0
			for i := range edges {
				s0 += math.Log(1 - m2d[q+i])
				s1 += math.Log(m2d[q+i])
			}
			phi1 := domainPrior[d]
			for i := range edges {
				mu0 := (1 - phi1) * math.Exp(s0-math.Log(1-m2d[q+i]))
				mu1 := phi1 * math.Exp(s1-math.Log(m2d[q+i]))
				out0 := mu0*psiSame + mu1*psiDiff
				out1 := mu0*psiDiff + mu1*psiSame
				v := clamp(out1 / (out0 + out1))
				pp := toMachineSide[q+i]
				newMsg[pp] = cfg.Damping*d2m[pp] + (1-cfg.Damping)*v
			}
			q += len(edges)
		}
		d2m, newMsg = newMsg, d2m

		// Beliefs and convergence check.
		copy(prevDom, domBelief)
		qq := 0
		for d := 0; d < nd; d++ {
			edges := g.MachinesOf(int32(d))
			s0 := math.Log(1 - domainPrior[d])
			s1 := math.Log(domainPrior[d])
			for i := range edges {
				s0 += math.Log(1 - m2d[qq+i])
				s1 += math.Log(m2d[qq+i])
			}
			domBelief[d] = clamp(1 / (1 + math.Exp(s0-s1)))
			qq += len(edges)
		}
		maxDelta := 0.0
		for d := 0; d < nd; d++ {
			if delta := math.Abs(domBelief[d] - prevDom[d]); delta > maxDelta {
				maxDelta = delta
			}
		}
		if iter > 0 && maxDelta < cfg.Tolerance {
			converged = true
			iter++
			break
		}
	}

	pp := 0
	for m := 0; m < nm; m++ {
		edges := g.DomainsOf(int32(m))
		s0 := math.Log(1 - machinePrior[m])
		s1 := math.Log(machinePrior[m])
		for i := range edges {
			s0 += math.Log(1 - d2m[pp+i])
			s1 += math.Log(d2m[pp+i])
		}
		macBelief[m] = clamp(1 / (1 + math.Exp(s0-s1)))
		pp += len(edges)
	}

	return &Result{
		DomainBelief:  domBelief,
		MachineBelief: macBelief,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

func prior(l graph.Label, priorMalware float64) float64 {
	switch l {
	case graph.LabelMalware:
		return priorMalware
	case graph.LabelBenign:
		return 1 - priorMalware
	default:
		return 0.5
	}
}

func clamp(v float64) float64 {
	if math.IsNaN(v) {
		return 0.5
	}
	if v < msgFloor {
		return msgFloor
	}
	if v > 1-msgFloor {
		return 1 - msgFloor
	}
	return v
}

func constSlice(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}
