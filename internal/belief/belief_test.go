package belief

import (
	"errors"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/intel"
)

// propagationFixture: two infected machines share a known C&C domain and
// an unknown candidate; two clean machines share benign domains and a
// second unknown domain.
func propagationFixture(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("BP", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("bot1", "c2.evil.com")
	b.AddQuery("bot1", "cand.net")
	b.AddQuery("bot2", "c2.evil.com")
	b.AddQuery("bot2", "cand.net")
	b.AddQuery("clean1", "www.good.com")
	b.AddQuery("clean1", "other.org")
	b.AddQuery("clean2", "www.good.com")
	b.AddQuery("clean2", "other.org")
	g := b.Build()
	bl := intel.NewBlacklist()
	bl.Add(intel.BlacklistEntry{Domain: "c2.evil.com", FirstListed: 0})
	wl := intel.NewWhitelist([]string{"good.com"})
	g.ApplyLabels(graph.LabelSources{Blacklist: bl, Whitelist: wl, AsOf: 1})
	return g
}

func TestPropagateRequiresLabels(t *testing.T) {
	b := graph.NewBuilder("BP", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m", "d.com")
	g := b.Build()
	if _, err := Propagate(g, Config{}); !errors.Is(err, ErrUnlabeledGraph) {
		t.Fatalf("err = %v, want ErrUnlabeledGraph", err)
	}
}

func TestPropagateSeparatesUnknowns(t *testing.T) {
	g := propagationFixture(t)
	res, err := Propagate(g, Config{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	cand, _ := g.DomainIndex("cand.net")
	other, _ := g.DomainIndex("other.org")
	if res.DomainBelief[cand] <= res.DomainBelief[other] {
		t.Fatalf("cand.net belief %.4f should exceed other.org %.4f",
			res.DomainBelief[cand], res.DomainBelief[other])
	}
	// The candidate queried only by infected machines leans malware; the
	// domain queried only by clean machines leans benign.
	if res.DomainBelief[cand] <= 0.5 {
		t.Fatalf("cand.net belief = %.4f, want > 0.5", res.DomainBelief[cand])
	}
	if res.DomainBelief[other] >= 0.5 {
		t.Fatalf("other.org belief = %.4f, want < 0.5", res.DomainBelief[other])
	}
}

func TestPropagateMachineBeliefs(t *testing.T) {
	g := propagationFixture(t)
	res, err := Propagate(g, Config{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	bot, _ := g.MachineIndex("bot1")
	clean, _ := g.MachineIndex("clean1")
	if res.MachineBelief[bot] <= res.MachineBelief[clean] {
		t.Fatalf("bot belief %.4f should exceed clean %.4f",
			res.MachineBelief[bot], res.MachineBelief[clean])
	}
}

func TestPropagateLabeledNodesKeepStrongBeliefs(t *testing.T) {
	g := propagationFixture(t)
	res, err := Propagate(g, Config{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := g.DomainIndex("c2.evil.com")
	good, _ := g.DomainIndex("www.good.com")
	if res.DomainBelief[c2] < 0.9 {
		t.Fatalf("known C&C belief = %.4f, want >= 0.9", res.DomainBelief[c2])
	}
	if res.DomainBelief[good] > 0.1 {
		t.Fatalf("known benign belief = %.4f, want <= 0.1", res.DomainBelief[good])
	}
}

func TestPropagateConverges(t *testing.T) {
	g := propagationFixture(t)
	res, err := Propagate(g, Config{MaxIterations: 100, Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	if res.Iterations >= 100 {
		t.Fatal("convergence should arrive before the cap")
	}
}

func TestPropagateBeliefsInRange(t *testing.T) {
	g := propagationFixture(t)
	res, err := Propagate(g, Config{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for d, b := range res.DomainBelief {
		if b <= 0 || b >= 1 {
			t.Fatalf("domain %d belief %v out of (0,1)", d, b)
		}
	}
	for m, b := range res.MachineBelief {
		if b <= 0 || b >= 1 {
			t.Fatalf("machine %d belief %v out of (0,1)", m, b)
		}
	}
}

func TestPropagateDeterministic(t *testing.T) {
	g := propagationFixture(t)
	a, err := Propagate(g, Config{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Propagate(g, Config{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.DomainBelief {
		if a.DomainBelief[d] != b.DomainBelief[d] {
			t.Fatalf("belief %d differs across runs", d)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxIterations != 15 || c.Epsilon != 0.02 || c.PriorMalware != 0.99 ||
		c.Damping != 0 || c.Tolerance != 1e-4 {
		t.Fatalf("defaults = %+v", c)
	}
	// Out-of-range values fall back too.
	c = Config{PriorMalware: 1.5, Damping: -1}.withDefaults()
	if c.PriorMalware != 0.99 || c.Damping != 0 {
		t.Fatalf("fallbacks = %+v", c)
	}
}
