package belief

import (
	"fmt"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/intel"
)

// benchLineage builds the acceptance-criteria workload: ~100k unknown
// domains plus labeled seed domains, then a 10-dirty-domain delta step.
// Returned are the warm snapshot, the delta snapshot, and their deltas.
type benchLineage struct {
	g0, g1         *graph.Graph
	delta0, delta1 graph.Delta
	cfg            Config
	warmed         *Engine
	warmedState    *engineState
	spareState     *engineState
	v0, v1         uint64
}

var benchShared *benchLineage

func benchSetup(b *testing.B) *benchLineage {
	b.Helper()
	if benchShared != nil {
		return benchShared
	}
	bl := intel.NewBlacklist()
	wl := intel.NewWhitelist([]string{"good.com"})
	bld := graph.NewBuilder("BENCH", 1, dnsutil.DefaultSuffixList())

	const (
		machines = 20000
		unknowns = 100000
		labeled  = 2000
	)
	for i := 0; i < labeled; i++ {
		bl.Add(intel.BlacklistEntry{Domain: fmt.Sprintf("c%d.evil.net", i), FirstListed: 0})
	}
	// Labeled seeds: each queried by a handful of machines.
	for i := 0; i < labeled; i++ {
		bld.AddQuery(fmt.Sprintf("m%d", (i*7)%machines), fmt.Sprintf("c%d.evil.net", i))
		bld.AddQuery(fmt.Sprintf("m%d", (i*13+1)%machines), fmt.Sprintf("www.g%d.good.com", i%50))
	}
	// Unknown mass: 1-3 querying machines each.
	for i := 0; i < unknowns; i++ {
		name := fmt.Sprintf("u%d.x%d.net", i, i%97)
		for k := 0; k <= i%3; k++ {
			bld.AddQuery(fmt.Sprintf("m%d", (i*31+k*17)%machines), name)
		}
	}
	lbl := func(g *graph.Graph) {
		g.ApplyLabels(graph.LabelSources{Blacklist: bl, Whitelist: wl, AsOf: 1})
		bld.MarkLabeled(g)
	}

	g0 := bld.Snapshot()
	lbl(g0)
	names0, exact0 := g0.DirtyDomainNames()

	// The delta step: 10 fresh unknown domains, one edge each.
	for i := 0; i < 10; i++ {
		bld.AddQuery(fmt.Sprintf("m%d", i*101), fmt.Sprintf("dirty%d.fresh.org", i))
	}
	g1 := bld.Snapshot()
	lbl(g1)
	names1, exact1 := g1.DirtyDomainNames()
	if !exact1 {
		b.Fatal("bench delta should be exact")
	}

	cfg := Config{}.withDefaults()
	eng := NewEngine(cfg)
	if _, err := eng.Run(g0, 1, 0, graph.Delta{Exact: exact0, Domains: names0}); err != nil {
		b.Fatal(err)
	}
	// A second, array-disjoint state donates buffer capacity to each
	// rewound iteration, matching the engine's steady-state spare reuse.
	spare := newEngineState(g0, 1, cfg)
	benchShared = &benchLineage{
		g0: g0, g1: g1,
		delta0: graph.Delta{Exact: exact0, Domains: names0},
		delta1: graph.Delta{Exact: exact1, Domains: names1},
		cfg:    cfg,
		warmed: eng, warmedState: eng.st, spareState: spare,
		v0: 1, v1: 2,
	}
	return benchShared
}

// BenchmarkLBPFull is a cold full propagation of the 100k-unknown
// graph — the cost every pass would pay without persistent state.
func BenchmarkLBPFull(b *testing.B) {
	s := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(s.cfg)
		if _, err := eng.Run(s.g1, s.v1, 0, graph.Delta{Exact: false}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLBPResidual is the incremental delta pass: 10 dirty domains
// against the warmed 100k-unknown state. Each iteration rewinds the
// engine to the warm snapshot's state (advance copies, so the warm
// state is never mutated) and replays the delta.
func BenchmarkLBPResidual(b *testing.B) {
	s := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.warmed.st = s.warmedState
		s.warmed.spare = s.spareState
		b.StartTimer()
		res, err := s.warmed.Run(s.g1, s.v1, s.v0, s.delta1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Mode != ModeResidual {
			b.Fatalf("mode = %q, want residual", res.Mode)
		}
	}
}
