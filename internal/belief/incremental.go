package belief

import (
	"context"
	"math"
	"slices"
	"sync"

	"segugio/internal/graph"
)

// Pass modes reported in Result.Mode.
const (
	// ModeFull is a cold synchronous propagation over the whole graph.
	ModeFull = "full"
	// ModeResidual is an incremental pass: messages carried over from the
	// previous snapshot, re-propagation seeded from the dirty nodes and
	// driven by a residual priority queue.
	ModeResidual = "residual"
	// ModeCached means the engine already holds beliefs for this exact
	// graph version and no propagation ran.
	ModeCached = "cached"
)

// Engine runs loopy BP incrementally across a lineage of graph
// snapshots. It keeps the per-edge message state of the last pass keyed
// to the graph version; when the next snapshot arrives with an exact
// delta, only the neighborhoods reachable from the dirty domains are
// re-propagated (residual scheduling), which is O(affected) instead of
// O(iterations x edges). The engine escalates to a full batch pass when
// the delta is inexact (first snapshot, window rotation, history
// eviction), when the day changes, when the caller's last-seen version
// does not match the engine state, or when the previous residual pass
// exhausted its convergence budget.
//
// Engine is safe for concurrent use; passes are serialized internally.
type Engine struct {
	cfg Config

	mu sync.Mutex
	st *engineState
	// spare is the state retired by the previous pass; advance reuses
	// its array capacity so steady-state residual passes allocate
	// (almost) nothing.
	spare *engineState
	scr   engineScratch
}

// engineScratch holds the residual pass's reusable work buffers. They
// obey a dirty-clean discipline: every pass clears exactly the entries
// it touched, so no O(n) zeroing happens per pass.
type engineScratch struct {
	mark        []bool // per-domain, for dirty dedup
	resid       []float64
	touched     []bool
	touchedList []int32
	q           residQueue
}

func (s *engineScratch) size(nd, total int) {
	if len(s.mark) < nd {
		s.mark = make([]bool, nd)
	}
	if len(s.resid) < total {
		s.resid = make([]float64, total)
		s.touched = make([]bool, total)
	}
}

// NewEngine builds an engine. Zero cfg fields select the package
// defaults (see Config).
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Config returns the engine's effective (default-filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// LastVersion returns the graph version of the engine's current state,
// if any. Callers use it as the `since` for the next SnapshotSince.
func (e *Engine) LastVersion() (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st == nil {
		return 0, false
	}
	return e.st.version, true
}

// Reset drops all persistent state; the next Run escalates to a full
// pass.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.st = nil
	e.mu.Unlock()
}

// Run advances the engine to snapshot g at the given version. delta
// must be the graph delta relative to `since` (the version of the
// caller's previous pass), exactly as returned by SnapshotSince. The
// returned Result owns its belief slices; the engine's internal state
// is never aliased.
func (e *Engine) Run(g *graph.Graph, version, since uint64, delta graph.Delta) (*Result, error) {
	return e.RunContext(context.Background(), g, version, since, delta)
}

// RunContext is Run bounded by ctx: the full sweep checks it once per
// iteration, the residual drain every residCheckEvery updates. A
// cancelled pass returns the context's error and discards its partial
// message state — the engine keeps the previous snapshot's fixed point
// (or no state at all), never a half-propagated one, so the next pass
// re-advances or escalates cleanly.
func (e *Engine) RunContext(ctx context.Context, g *graph.Graph, version, since uint64, delta graph.Delta) (*Result, error) {
	if g == nil || !g.Labeled() {
		return nil, ErrUnlabeledGraph
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	if e.st != nil && e.st.version == version && e.st.day == g.Day() {
		return e.st.result(ModeCached, 0, true, passStats{}), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.st == nil || !delta.Exact || since != e.st.version ||
		g.Day() != e.st.day || e.st.unconverged {
		ns := newEngineState(g, version, e.cfg)
		iters, conv, err := ns.runFull(ctx, e.cfg)
		if err != nil {
			return nil, err
		}
		e.st = ns
		return ns.result(ModeFull, iters, conv, passStats{}), nil
	}

	// Resolve dirty domains: the named delta plus every index minted
	// since the previous snapshot (new domains are in the delta by
	// contract; the index sweep is a cheap belt-and-braces).
	nd := g.NumDomains()
	e.scr.size(nd, 0)
	mark := e.scr.mark
	dirty := make([]int32, 0, len(delta.Domains)+nd-e.st.nd)
	for _, name := range delta.Domains {
		if d, ok := g.DomainIndex(name); ok && !mark[d] {
			mark[d] = true
			dirty = append(dirty, d)
		}
	}
	for d := e.st.nd; d < nd; d++ {
		if !mark[d] {
			mark[d] = true
			dirty = append(dirty, int32(d))
		}
	}
	for _, d := range dirty {
		mark[d] = false
	}

	dst := e.spare
	if dst == e.st {
		dst = nil
	}
	e.spare = nil
	ns, seeds, ok := e.st.advance(g, version, e.cfg, dirty, dst)
	if !ok {
		// The delta did not cover every structural change; rebuild.
		ns = newEngineState(g, version, e.cfg)
		iters, conv, err := ns.runFull(ctx, e.cfg)
		if err != nil {
			return nil, err
		}
		e.spare, e.st = e.st, ns
		return ns.result(ModeFull, iters, conv, passStats{}), nil
	}
	stats, conv, err := ns.runResidual(ctx, e.cfg, &e.scr, dirty, seeds)
	if err != nil {
		// Discard the half-propagated state: e.st (the previous fixed
		// point) stays current, and ns donates its array capacity to the
		// next advance.
		e.spare = ns
		return nil, err
	}
	e.spare, e.st = e.st, ns
	return ns.result(ModeResidual, 0, conv, stats), nil
}

// engineState is the persistent propagation state for one snapshot: the
// bipartite topology in both CSR directions (with each adjacency block
// sorted by neighbor id so state can be carried across snapshots by a
// linear merge), the per-edge messages, node priors, and beliefs.
type engineState struct {
	version uint64
	day     int

	nm, nd, ne int

	// mOff/dOff are CSR offsets (len n+1); mDom[p] is the domain of
	// machine-side edge p, dMac[q] the machine of domain-side edge q.
	// Both sides list neighbors in ascending id order.
	mOff, dOff []int32
	mDom, dMac []int32
	// Cross-index between the two edge orders.
	toDomainSide, toMachineSide []int32

	// m2d is indexed by domain-side position, d2m by machine-side
	// position, so each node reads its incoming messages contiguously.
	m2d, d2m []float64

	machinePrior, domainPrior []float64
	domBelief, macBelief      []float64

	// cursor is scratch for buildCrossIndex, kept to avoid re-allocating.
	cursor []int32

	// unconverged marks a residual pass that ran out of budget; the next
	// Run escalates to a full pass to restore the fixed point.
	unconverged bool
}

// newEngineState builds topology, priors, and uninformative messages
// for g. Beliefs are left zero; a pass fills them.
func newEngineState(g *graph.Graph, version uint64, cfg Config) *engineState {
	st := &engineState{
		version: version,
		day:     g.Day(),
		nm:      g.NumMachines(),
		nd:      g.NumDomains(),
		ne:      g.NumEdges(),
	}
	st.buildTopology(g)
	st.machinePrior = make([]float64, st.nm)
	for m := 0; m < st.nm; m++ {
		st.machinePrior[m] = prior(g.MachineLabel(int32(m)), cfg.PriorMalware)
	}
	st.domainPrior = make([]float64, st.nd)
	for d := 0; d < st.nd; d++ {
		st.domainPrior[d] = prior(g.DomainLabel(int32(d)), cfg.PriorMalware)
	}
	st.m2d = constSlice(st.ne, 0.5)
	st.d2m = constSlice(st.ne, 0.5)
	st.domBelief = make([]float64, st.nd)
	st.macBelief = make([]float64, st.nm)
	return st
}

// buildTopology materializes both CSR directions with each block sorted
// ascending. The graph's own adjacency order is not stable across
// snapshots (overlay rows append in arrival order, compaction re-sorts),
// so the engine canonicalizes: machine rows are sorted copies, and the
// domain side — filled by scanning machines in ascending order — comes
// out sorted for free because each (m,d) pair is unique.
func (st *engineState) buildTopology(g *graph.Graph) {
	st.mOff = make([]int32, st.nm+1)
	st.dOff = make([]int32, st.nd+1)
	st.mDom = make([]int32, st.ne)

	off := int32(0)
	for d := 0; d < st.nd; d++ {
		st.dOff[d] = off
		off += int32(g.DomainDegree(int32(d)))
	}
	st.dOff[st.nd] = off

	p := int32(0)
	for m := 0; m < st.nm; m++ {
		st.mOff[m] = p
		row := g.DomainsOf(int32(m))
		blk := st.mDom[p : int(p)+len(row)]
		copy(blk, row)
		if !slices.IsSorted(blk) {
			slices.Sort(blk)
		}
		p += int32(len(row))
	}
	st.mOff[st.nm] = p
	st.buildCrossIndex()
}

// buildCrossIndex derives dMac and the cross-index arrays from
// mOff/mDom/dOff alone — pure array arithmetic, no graph calls.
// Scanning machine-side edges in order fills each domain's block with
// machines ascending, which is the engine's canonical domain-side
// order.
func (st *engineState) buildCrossIndex() {
	st.dMac = reuseInt32(st.dMac, st.ne)
	st.toDomainSide = reuseInt32(st.toDomainSide, st.ne)
	st.toMachineSide = reuseInt32(st.toMachineSide, st.ne)
	st.cursor = reuseInt32(st.cursor, st.nd)
	cursor := st.cursor
	copy(cursor, st.dOff[:st.nd])
	m := int32(0)
	for p := int32(0); p < int32(st.ne); p++ {
		for p >= st.mOff[m+1] {
			m++
		}
		d := st.mDom[p]
		q := cursor[d]
		cursor[d]++
		st.dMac[q] = m
		st.toDomainSide[p] = q
		st.toMachineSide[q] = p
	}
}

// advance builds the state for the next snapshot in the lineage by
// splicing the previous state's arrays: unchanged spans are carried by
// bulk copies, changed nodes (dirty domains, machines adjacent to them,
// new nodes) get freshly merged blocks with new edges seeded at the
// uninformative message. Priors are refreshed for the dirty domains,
// for every machine adjacent to one (within a day, labels only move
// through the dirty set), and for new nodes. It returns the new state
// plus the machines to seed alongside the dirty domains; ok=false means
// the delta did not cover every structural change (a contract breach)
// and the caller must escalate to a full rebuild. The receiver is left
// untouched. dst, when non-nil, donates its array capacity (it must not
// share arrays with the receiver).
func (st *engineState) advance(g *graph.Graph, version uint64, cfg Config, dirty []int32, dst *engineState) (*engineState, []int32, bool) {
	ns := dst
	if ns == nil {
		ns = &engineState{}
	}
	old := *ns
	*ns = engineState{
		version: version,
		day:     g.Day(),
		nm:      g.NumMachines(),
		nd:      g.NumDomains(),
		ne:      g.NumEdges(),
	}

	// Sorted changed-domain list (Run already appended every new index).
	changedD := slices.Clone(dirty)
	slices.Sort(changedD)

	// Fresh sorted adjacency rows for the changed domains, concatenated
	// into one scratch buffer. Seed machines are collected on the way.
	dRowOff := make([]int32, len(changedD)+1)
	dRows := make([]int32, 0, 64)
	seenM := make([]bool, ns.nm)
	var seeds []int32
	for i, d := range changedD {
		dRowOff[i] = int32(len(dRows))
		dRows = append(dRows, g.MachinesOf(d)...)
		blk := dRows[dRowOff[i]:]
		if !slices.IsSorted(blk) {
			slices.Sort(blk)
		}
		for _, m := range blk {
			if !seenM[m] {
				seenM[m] = true
				seeds = append(seeds, m)
			}
		}
	}
	dRowOff[len(changedD)] = int32(len(dRows))

	// Machines whose adjacency changed: grown seeds plus new machines.
	// (Fresh edges only touch dirty domains, so any grown machine is a
	// seed; a violation surfaces as an offset mismatch below.)
	var changedM []int32
	for _, m := range seeds {
		if int(m) < st.nm {
			if int32(len(g.DomainsOf(m))) != st.mOff[m+1]-st.mOff[m] {
				changedM = append(changedM, m)
			}
		}
	}
	for m := st.nm; m < ns.nm; m++ {
		changedM = append(changedM, int32(m))
	}
	slices.Sort(changedM)
	mRowOff := make([]int32, len(changedM)+1)
	mRows := make([]int32, 0, 64)
	for i, m := range changedM {
		mRowOff[i] = int32(len(mRows))
		mRows = append(mRows, g.DomainsOf(m)...)
		blk := mRows[mRowOff[i]:]
		if !slices.IsSorted(blk) {
			slices.Sort(blk)
		}
	}
	mRowOff[len(changedM)] = int32(len(mRows))

	// Splice the domain side: dOff and the m2d messages (domain-side
	// blocks hold machines ascending, so old and new blocks merge by a
	// linear scan).
	ns.dOff = reuseInt32(old.dOff, ns.nd+1)
	ns.m2d = reuseFloat64(old.m2d, ns.ne)
	ok := true
	{
		shift, prev := int32(0), int32(0)
		span := func(hi int32) {
			o0, o1 := st.dOff[prev], st.dOff[hi]
			copy(ns.m2d[o0+shift:o1+shift], st.m2d[o0:o1])
			for d := prev; d < hi; d++ {
				ns.dOff[d] = st.dOff[d] + shift
			}
		}
		for i, d := range changedD {
			if d < int32(st.nd) {
				span(d)
			} else if prev < int32(st.nd) {
				span(int32(st.nd))
			}
			newRow := dRows[dRowOff[i]:dRowOff[i+1]]
			var base int32
			if d < int32(st.nd) {
				base = st.dOff[d] + shift
			} else {
				base = st.dOff[st.nd] + shift
			}
			if int(base)+len(newRow) > ns.ne {
				return nil, nil, false
			}
			ns.dOff[d] = base
			if d < int32(st.nd) {
				o, o1 := st.dOff[d], st.dOff[d+1]
				if int(o1-o) == len(newRow) {
					copy(ns.m2d[base:int(base)+len(newRow)], st.m2d[o:o1])
				} else {
					for j, m := range newRow {
						if o < o1 && st.dMac[o] == m {
							ns.m2d[base+int32(j)] = st.m2d[o]
							o++
						} else {
							ns.m2d[base+int32(j)] = 0.5
						}
					}
					if o != o1 {
						ok = false // an old edge vanished: not a lineage
					}
				}
				shift += int32(len(newRow)) - (o1 - st.dOff[d])
			} else {
				for j := range newRow {
					ns.m2d[base+int32(j)] = 0.5
				}
				shift += int32(len(newRow))
			}
			prev = d + 1
		}
		if prev < int32(st.nd) {
			span(int32(st.nd))
		}
		ns.dOff[ns.nd] = st.dOff[st.nd] + shift
		if ns.dOff[ns.nd] != int32(ns.ne) {
			ok = false
		}
	}
	if !ok {
		return nil, nil, false
	}

	// Splice the machine side: mOff, mDom (needed for the cross-index
	// rebuild), and the d2m messages.
	ns.mOff = reuseInt32(old.mOff, ns.nm+1)
	ns.mDom = reuseInt32(old.mDom, ns.ne)
	ns.d2m = reuseFloat64(old.d2m, ns.ne)
	{
		shift, prev := int32(0), int32(0)
		span := func(hi int32) {
			o0, o1 := st.mOff[prev], st.mOff[hi]
			copy(ns.d2m[o0+shift:o1+shift], st.d2m[o0:o1])
			copy(ns.mDom[o0+shift:o1+shift], st.mDom[o0:o1])
			for m := prev; m < hi; m++ {
				ns.mOff[m] = st.mOff[m] + shift
			}
		}
		for i, m := range changedM {
			if m < int32(st.nm) {
				span(m)
			} else if prev < int32(st.nm) {
				span(int32(st.nm))
			}
			newRow := mRows[mRowOff[i]:mRowOff[i+1]]
			var base int32
			if m < int32(st.nm) {
				base = st.mOff[m] + shift
			} else {
				base = st.mOff[st.nm] + shift
			}
			if int(base)+len(newRow) > ns.ne {
				return nil, nil, false
			}
			ns.mOff[m] = base
			copy(ns.mDom[base:int(base)+len(newRow)], newRow)
			if m < int32(st.nm) {
				o, o1 := st.mOff[m], st.mOff[m+1]
				if int(o1-o) == len(newRow) {
					copy(ns.d2m[base:int(base)+len(newRow)], st.d2m[o:o1])
				} else {
					for j, d := range newRow {
						if o < o1 && st.mDom[o] == d {
							ns.d2m[base+int32(j)] = st.d2m[o]
							o++
						} else {
							ns.d2m[base+int32(j)] = 0.5
						}
					}
					if o != o1 {
						ok = false
					}
				}
				shift += int32(len(newRow)) - (o1 - st.mOff[m])
			} else {
				for j := range newRow {
					ns.d2m[base+int32(j)] = 0.5
				}
				shift += int32(len(newRow))
			}
			prev = m + 1
		}
		if prev < int32(st.nm) {
			span(int32(st.nm))
		}
		ns.mOff[ns.nm] = st.mOff[st.nm] + shift
		if ns.mOff[ns.nm] != int32(ns.ne) {
			ok = false
		}
	}
	if !ok {
		return nil, nil, false
	}
	ns.dMac = old.dMac
	ns.toDomainSide = old.toDomainSide
	ns.toMachineSide = old.toMachineSide
	ns.cursor = old.cursor
	ns.buildCrossIndex()

	// Priors and beliefs: copy, extend for new nodes.
	ns.domainPrior = reuseFloat64(old.domainPrior, ns.nd)
	copy(ns.domainPrior, st.domainPrior)
	for d := st.nd; d < ns.nd; d++ {
		ns.domainPrior[d] = prior(g.DomainLabel(int32(d)), cfg.PriorMalware)
	}
	ns.machinePrior = reuseFloat64(old.machinePrior, ns.nm)
	copy(ns.machinePrior, st.machinePrior)
	for m := st.nm; m < ns.nm; m++ {
		ns.machinePrior[m] = prior(g.MachineLabel(int32(m)), cfg.PriorMalware)
	}
	ns.domBelief = reuseFloat64(old.domBelief, ns.nd)
	copy(ns.domBelief, st.domBelief)
	ns.macBelief = reuseFloat64(old.macBelief, ns.nm)
	copy(ns.macBelief, st.macBelief)

	// Refresh priors on the dirty frontier (the seeds collected above are
	// exactly the machines adjacent to a dirty domain).
	for _, d := range dirty {
		ns.domainPrior[d] = prior(g.DomainLabel(d), cfg.PriorMalware)
	}
	for _, m := range seeds {
		ns.machinePrior[m] = prior(g.MachineLabel(m), cfg.PriorMalware)
	}
	// New nodes start from their carried (uninformative) messages so a
	// budget-starved pass still leaves them with a sane belief.
	for d := st.nd; d < ns.nd; d++ {
		ns.domBelief[d] = ns.domainBelief1(int32(d))
	}
	for m := st.nm; m < ns.nm; m++ {
		ns.macBelief[m] = ns.machineBelief1(int32(m))
	}
	return ns, seeds, true
}

// passStats carries residual-pass accounting into Result.
type passStats struct {
	seeds     int
	updates   int
	peakQueue int
}

// result snapshots the state's beliefs into a caller-owned Result.
func (st *engineState) result(mode string, iters int, conv bool, ps passStats) *Result {
	return &Result{
		DomainBelief:  slices.Clone(st.domBelief),
		MachineBelief: slices.Clone(st.macBelief),
		Iterations:    iters,
		Converged:     conv,
		Mode:          mode,
		Seeds:         ps.seeds,
		Updates:       ps.updates,
		PeakQueue:     ps.peakQueue,
	}
}

// runFull is the synchronous batch schedule: alternate full
// machines->domains and domains->machines sweeps until the largest
// domain-belief move drops below Tolerance or MaxIterations is reached.
// This is the propagation core Propagate wraps. ctx is checked once per
// iteration; a cancelled pass returns the context error and the caller
// must discard the state (its messages are mid-sweep).
func (st *engineState) runFull(ctx context.Context, cfg Config) (int, bool, error) {
	psiSame := 0.5 + cfg.Epsilon
	psiDiff := 0.5 - cfg.Epsilon
	newMsg := make([]float64, st.ne)
	prevDom := make([]float64, st.nd)
	check := ctx.Done() != nil

	iter := 0
	converged := false
	for ; iter < cfg.MaxIterations; iter++ {
		if check {
			if err := ctx.Err(); err != nil {
				return iter, false, err
			}
		}
		// Machines -> domains.
		for m := 0; m < st.nm; m++ {
			p0, p1 := st.mOff[m], st.mOff[m+1]
			s0, s1 := 0.0, 0.0
			for p := p0; p < p1; p++ {
				s0 += math.Log(1 - st.d2m[p])
				s1 += math.Log(st.d2m[p])
			}
			phi1 := st.machinePrior[m]
			for p := p0; p < p1; p++ {
				mu0 := (1 - phi1) * math.Exp(s0-math.Log(1-st.d2m[p]))
				mu1 := phi1 * math.Exp(s1-math.Log(st.d2m[p]))
				// Apply the edge potential and normalize.
				out0 := mu0*psiSame + mu1*psiDiff
				out1 := mu0*psiDiff + mu1*psiSame
				v := clamp(out1 / (out0 + out1))
				q := st.toDomainSide[p]
				newMsg[q] = cfg.Damping*st.m2d[q] + (1-cfg.Damping)*v
			}
		}
		st.m2d, newMsg = newMsg, st.m2d

		// Domains -> machines.
		for d := 0; d < st.nd; d++ {
			q0, q1 := st.dOff[d], st.dOff[d+1]
			s0, s1 := 0.0, 0.0
			for q := q0; q < q1; q++ {
				s0 += math.Log(1 - st.m2d[q])
				s1 += math.Log(st.m2d[q])
			}
			phi1 := st.domainPrior[d]
			for q := q0; q < q1; q++ {
				mu0 := (1 - phi1) * math.Exp(s0-math.Log(1-st.m2d[q]))
				mu1 := phi1 * math.Exp(s1-math.Log(st.m2d[q]))
				out0 := mu0*psiSame + mu1*psiDiff
				out1 := mu0*psiDiff + mu1*psiSame
				v := clamp(out1 / (out0 + out1))
				p := st.toMachineSide[q]
				newMsg[p] = cfg.Damping*st.d2m[p] + (1-cfg.Damping)*v
			}
		}
		st.d2m, newMsg = newMsg, st.d2m

		// Beliefs and convergence check.
		copy(prevDom, st.domBelief)
		for d := 0; d < st.nd; d++ {
			st.domBelief[d] = st.domainBelief1(int32(d))
		}
		maxDelta := 0.0
		for d := 0; d < st.nd; d++ {
			if delta := math.Abs(st.domBelief[d] - prevDom[d]); delta > maxDelta {
				maxDelta = delta
			}
		}
		if iter > 0 && maxDelta < cfg.Tolerance {
			converged = true
			iter++
			break
		}
	}

	for m := 0; m < st.nm; m++ {
		st.macBelief[m] = st.machineBelief1(int32(m))
	}
	return iter, converged, nil
}

// residEntry is one scheduled node in the residual queue. Nodes are
// encoded as a single id: domains are [0, nd), machines are nd+m.
type residEntry struct {
	res float64
	id  int32
}

// residQueue is a binary max-heap by residual. Hand-rolled (rather than
// container/heap) to keep the hot path free of interface boxing.
type residQueue []residEntry

func (q *residQueue) push(e residEntry) {
	*q = append(*q, e)
	s := *q
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].res >= s[i].res {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (q *residQueue) pop() residEntry {
	s := *q
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*q = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s[l].res > s[big].res {
			big = l
		}
		if r < n && s[r].res > s[big].res {
			big = r
		}
		if big == i {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	return top
}

// residCheckEvery is how many residual node updates run between
// context checks in a cancellable pass.
const residCheckEvery = 1024

// runResidual re-propagates from the dirty frontier. Each scheduled
// node recomputes its outgoing messages from its current incoming ones
// (asynchronous updates); receivers whose strongest incoming change
// reaches Tolerance are queued by that residual, largest first. The
// pass stops when the queue drains (converged) or after
// MaxIterations x (nm+nd) node updates (budget exhausted — the next Run
// escalates to a full pass). Beliefs are recomputed for touched nodes
// only.
//
// ctx is checked every residCheckEvery updates; on cancellation the
// drain stops, the scratch's dirty-clean invariant is restored, and
// the context error is returned — the caller must discard the state.
func (st *engineState) runResidual(ctx context.Context, cfg Config, scr *engineScratch, dirty, seeds []int32) (passStats, bool, error) {
	nd32 := int32(st.nd)
	scr.size(0, st.nd+st.nm)
	resid := scr.resid
	touched := scr.touched
	touchedList := scr.touchedList[:0]
	q := scr.q[:0]

	touch := func(id int32) {
		if !touched[id] {
			touched[id] = true
			touchedList = append(touchedList, id)
		}
	}
	seed := func(id int32) {
		touch(id)
		resid[id] = math.Inf(1)
		q.push(residEntry{res: math.Inf(1), id: id})
	}
	for _, d := range dirty {
		seed(d)
	}
	for _, m := range seeds {
		seed(nd32 + m)
	}

	ps := passStats{seeds: len(q), peakQueue: len(q)}
	budget := cfg.MaxIterations * (st.nd + st.nm)
	if budget < len(q) {
		budget = len(q)
	}

	bump := func(id int32, diff float64) {
		touch(id)
		if diff > resid[id] {
			resid[id] = diff
			if diff >= cfg.Tolerance {
				q.push(residEntry{res: diff, id: id})
				if len(q) > ps.peakQueue {
					ps.peakQueue = len(q)
				}
			}
		}
	}

	psiSame := 0.5 + cfg.Epsilon
	psiDiff := 0.5 - cfg.Epsilon
	check := ctx.Done() != nil
	var cancelled error
	for len(q) > 0 && ps.updates < budget {
		if check && ps.updates%residCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				cancelled = err
				break
			}
		}
		e := q.pop()
		// Stale entry: the node was re-queued with a larger residual, or
		// already processed since this entry was pushed.
		if resid[e.id] != e.res || e.res < cfg.Tolerance {
			continue
		}
		resid[e.id] = 0
		ps.updates++
		if e.id < nd32 {
			// Domain e.id: recompute outgoing d->m messages.
			d := e.id
			q0, q1 := st.dOff[d], st.dOff[d+1]
			s0, s1 := 0.0, 0.0
			for qq := q0; qq < q1; qq++ {
				s0 += math.Log(1 - st.m2d[qq])
				s1 += math.Log(st.m2d[qq])
			}
			phi1 := st.domainPrior[d]
			for qq := q0; qq < q1; qq++ {
				mu0 := (1 - phi1) * math.Exp(s0-math.Log(1-st.m2d[qq]))
				mu1 := phi1 * math.Exp(s1-math.Log(st.m2d[qq]))
				out0 := mu0*psiSame + mu1*psiDiff
				out1 := mu0*psiDiff + mu1*psiSame
				v := clamp(out1 / (out0 + out1))
				p := st.toMachineSide[qq]
				nv := cfg.Damping*st.d2m[p] + (1-cfg.Damping)*v
				if diff := math.Abs(nv - st.d2m[p]); diff > 0 {
					st.d2m[p] = nv
					bump(nd32+st.dMac[qq], diff)
				}
			}
		} else {
			// Machine e.id-nd: recompute outgoing m->d messages.
			m := e.id - nd32
			p0, p1 := st.mOff[m], st.mOff[m+1]
			s0, s1 := 0.0, 0.0
			for p := p0; p < p1; p++ {
				s0 += math.Log(1 - st.d2m[p])
				s1 += math.Log(st.d2m[p])
			}
			phi1 := st.machinePrior[m]
			for p := p0; p < p1; p++ {
				mu0 := (1 - phi1) * math.Exp(s0-math.Log(1-st.d2m[p]))
				mu1 := phi1 * math.Exp(s1-math.Log(st.d2m[p]))
				out0 := mu0*psiSame + mu1*psiDiff
				out1 := mu0*psiDiff + mu1*psiSame
				v := clamp(out1 / (out0 + out1))
				qq := st.toDomainSide[p]
				nv := cfg.Damping*st.m2d[qq] + (1-cfg.Damping)*v
				if diff := math.Abs(nv - st.m2d[qq]); diff > 0 {
					st.m2d[qq] = nv
					bump(st.mDom[p], diff)
				}
			}
		}
	}

	converged := cancelled == nil
	if converged {
		for _, e := range q {
			if resid[e.id] == e.res && e.res >= cfg.Tolerance {
				converged = false
				break
			}
		}
		if !converged {
			st.unconverged = true
		}
	}

	// Refresh beliefs on the touched set, then restore the scratch's
	// dirty-clean invariant (clear only what this pass wrote). On
	// cancellation the belief refresh is wasted (the caller discards the
	// state) but the scratch cleanup is mandatory: the next pass reuses
	// it.
	for _, id := range touchedList {
		if id < nd32 {
			st.domBelief[id] = st.domainBelief1(id)
		} else {
			st.macBelief[id-nd32] = st.machineBelief1(id - nd32)
		}
		resid[id] = 0
		touched[id] = false
	}
	scr.touchedList = touchedList[:0]
	scr.q = q[:0]
	return ps, converged, cancelled
}

// domainBelief1 computes one domain's marginal from its current
// incoming messages.
func (st *engineState) domainBelief1(d int32) float64 {
	s0 := math.Log(1 - st.domainPrior[d])
	s1 := math.Log(st.domainPrior[d])
	for q := st.dOff[d]; q < st.dOff[d+1]; q++ {
		s0 += math.Log(1 - st.m2d[q])
		s1 += math.Log(st.m2d[q])
	}
	return clamp(1 / (1 + math.Exp(s0-s1)))
}

// machineBelief1 computes one machine's marginal from its current
// incoming messages.
func (st *engineState) machineBelief1(m int32) float64 {
	s0 := math.Log(1 - st.machinePrior[m])
	s1 := math.Log(st.machinePrior[m])
	for p := st.mOff[m]; p < st.mOff[m+1]; p++ {
		s0 += math.Log(1 - st.d2m[p])
		s1 += math.Log(st.d2m[p])
	}
	return clamp(1 / (1 + math.Exp(s0-s1)))
}

// reuseInt32 returns buf resized to n when its capacity suffices, or a
// fresh slice otherwise. Contents are unspecified.
func reuseInt32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

// reuseFloat64 is reuseInt32 for float64 slices.
func reuseFloat64(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}
