package belief

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/intel"
)

// lineage drives a Builder through labeled streaming snapshots the way
// the ingester does, handing each snapshot's dirty delta to the engine.
type lineage struct {
	t       *testing.T
	b       *graph.Builder
	bl      *intel.Blacklist
	wl      *intel.Whitelist
	day     int
	version uint64
}

func newLineage(t *testing.T, day int, whitelisted []string) *lineage {
	t.Helper()
	return &lineage{
		t:   t,
		b:   graph.NewBuilder("EQ", day, dnsutil.DefaultSuffixList()),
		bl:  intel.NewBlacklist(),
		wl:  intel.NewWhitelist(whitelisted),
		day: day,
	}
}

// snap takes a labeled streaming snapshot and returns it with its
// version and dirty delta, mirroring ingest.SnapshotSince(previous).
func (l *lineage) snap() (*graph.Graph, uint64, graph.Delta) {
	l.t.Helper()
	g := l.b.Snapshot()
	g.ApplyLabels(graph.LabelSources{Blacklist: l.bl, Whitelist: l.wl, AsOf: l.day})
	l.b.MarkLabeled(g)
	l.version++
	names, exact := g.DirtyDomainNames()
	return g, l.version, graph.Delta{Exact: exact, Domains: names}
}

// equivCfg converges tightly so residual and batch land on the same
// fixed point; beliefs are then compared at the looser production
// tolerance.
var equivCfg = Config{MaxIterations: 400, Tolerance: 1e-9}

const equivTol = 1e-4

func maxBeliefDiff(a, b *Result) float64 {
	max := 0.0
	for d := range a.DomainBelief {
		if diff := math.Abs(a.DomainBelief[d] - b.DomainBelief[d]); diff > max {
			max = diff
		}
	}
	for m := range a.MachineBelief {
		if diff := math.Abs(a.MachineBelief[m] - b.MachineBelief[m]); diff > max {
			max = diff
		}
	}
	return max
}

// checkStep runs the engine on the snapshot and asserts its beliefs
// match a cold batch propagation of the same graph.
func checkStep(t *testing.T, e *Engine, g *graph.Graph, v, since uint64, delta graph.Delta, wantMode string) *Result {
	t.Helper()
	res, err := e.Run(g, v, since, delta)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != wantMode {
		t.Fatalf("version %d: mode = %q, want %q (delta exact=%v, %d dirty)",
			v, res.Mode, wantMode, delta.Exact, len(delta.Domains))
	}
	batch, err := Propagate(g, equivCfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxBeliefDiff(res, batch); diff > equivTol {
		t.Fatalf("version %d (%s): max belief diff vs batch = %g, want <= %g",
			v, res.Mode, diff, equivTol)
	}
	return res
}

// TestEngineResidualMatchesBatch grows randomized graphs — two
// disconnected clusters — through many streaming snapshots and checks
// every residual pass against cold batch propagation.
func TestEngineResidualMatchesBatch(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var wl []string
			for i := 0; i < 6; i++ {
				wl = append(wl, fmt.Sprintf("good%d.com", i))
			}
			l := newLineage(t, 3, wl)
			// Cluster A: machines a0..a14 over evil/candidate domains.
			// Cluster B: machines b0..b9 over benign/other domains. The two
			// share no nodes, so deltas in one must leave the other's
			// beliefs untouched.
			domA := func(i int) string {
				if i%4 == 0 {
					return fmt.Sprintf("c%d.evil.net", i%5)
				}
				return fmt.Sprintf("cand%d.gray.org", i%20)
			}
			domB := func(i int) string {
				if i%3 == 0 {
					return fmt.Sprintf("www.good%d.com", i%6)
				}
				return fmt.Sprintf("other%d.misc.io", i%15)
			}
			for i := 0; i < 5; i++ {
				l.bl.Add(intel.BlacklistEntry{Domain: fmt.Sprintf("c%d.evil.net", i), FirstListed: 0})
			}
			for i := 0; i < 40; i++ {
				l.b.AddQuery(fmt.Sprintf("a%d", rng.Intn(15)), domA(rng.Intn(100)))
				l.b.AddQuery(fmt.Sprintf("b%d", rng.Intn(10)), domB(rng.Intn(100)))
			}

			e := NewEngine(equivCfg)
			g, v, delta := l.snap()
			if delta.Exact {
				t.Fatal("first snapshot delta should be inexact")
			}
			checkStep(t, e, g, v, 0, delta, ModeFull)

			since := v
			for step := 0; step < 8; step++ {
				// Grow one cluster per step: new edges among existing nodes,
				// brand-new machines, and brand-new domains.
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					switch rng.Intn(4) {
					case 0:
						l.b.AddQuery(fmt.Sprintf("a%d", rng.Intn(15)), domA(rng.Intn(100)))
					case 1:
						l.b.AddQuery(fmt.Sprintf("b%d", rng.Intn(10)), domB(rng.Intn(100)))
					case 2:
						l.b.AddQuery(fmt.Sprintf("fresh%d-%d", step, i), domA(rng.Intn(100)))
					default:
						l.b.AddQuery(fmt.Sprintf("a%d", rng.Intn(15)),
							fmt.Sprintf("new%d-%d.gray.org", step, i))
					}
				}
				g, v, delta = l.snap()
				if !delta.Exact {
					t.Fatalf("step %d: delta should be exact", step)
				}
				res := checkStep(t, e, g, v, since, delta, ModeResidual)
				if len(delta.Domains) > 0 && res.Seeds == 0 {
					t.Fatalf("step %d: %d dirty domains but residual pass seeded nothing",
						step, len(delta.Domains))
				}
				since = v
			}
		})
	}
}

// TestEngineZeroUnknownGraph: every domain labeled — residual passes
// must still agree with batch.
func TestEngineZeroUnknownGraph(t *testing.T) {
	l := newLineage(t, 1, []string{"good.com"})
	l.bl.Add(intel.BlacklistEntry{Domain: "c2.evil.net", FirstListed: 0})
	l.b.AddQuery("m1", "c2.evil.net")
	l.b.AddQuery("m2", "www.good.com")
	l.b.AddQuery("m1", "www.good.com")

	e := NewEngine(equivCfg)
	g, v, delta := l.snap()
	checkStep(t, e, g, v, 0, delta, ModeFull)

	l.b.AddQuery("m2", "c2.evil.net")
	g2, v2, delta2 := l.snap()
	checkStep(t, e, g2, v2, v, delta2, ModeResidual)
}

// TestEngineCachedOnSameVersion: re-running the same version does no
// propagation and returns the same beliefs.
func TestEngineCachedOnSameVersion(t *testing.T) {
	l := newLineage(t, 1, []string{"good.com"})
	l.bl.Add(intel.BlacklistEntry{Domain: "c2.evil.net", FirstListed: 0})
	l.b.AddQuery("m1", "c2.evil.net")
	l.b.AddQuery("m1", "u.gray.org")

	e := NewEngine(equivCfg)
	g, v, delta := l.snap()
	first, err := e.Run(g, v, 0, delta)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.Run(g, v, v, graph.Delta{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Mode != ModeCached {
		t.Fatalf("mode = %q, want cached", again.Mode)
	}
	if diff := maxBeliefDiff(first, again); diff != 0 {
		t.Fatalf("cached beliefs differ by %g", diff)
	}
}

// TestEngineEscalation: inexact deltas, a mismatched since, and a day
// change each force a full pass.
func TestEngineEscalation(t *testing.T) {
	l := newLineage(t, 1, []string{"good.com"})
	l.bl.Add(intel.BlacklistEntry{Domain: "c2.evil.net", FirstListed: 0})
	l.b.AddQuery("m1", "c2.evil.net")
	l.b.AddQuery("m1", "u.gray.org")

	e := NewEngine(equivCfg)
	g, v, delta := l.snap()
	if _, err := e.Run(g, v, 0, delta); err != nil {
		t.Fatal(err)
	}

	l.b.AddQuery("m2", "u.gray.org")
	g2, v2, _ := l.snap()

	res, err := e.Run(g2, v2, v, graph.Delta{Exact: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFull {
		t.Fatalf("inexact delta: mode = %q, want full", res.Mode)
	}

	l.b.AddQuery("m3", "u.gray.org")
	g3, v3, delta3 := l.snap()
	res, err = e.Run(g3, v3, v, delta3) // since is stale: engine is at v2
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFull {
		t.Fatalf("stale since: mode = %q, want full", res.Mode)
	}

	// Day change: fresh lineage on another day, exact delta anyway.
	l2 := newLineage(t, 2, []string{"good.com"})
	l2.bl.Add(intel.BlacklistEntry{Domain: "c2.evil.net", FirstListed: 0})
	l2.b.AddQuery("m1", "c2.evil.net")
	g4, _, _ := l2.snap()
	res, err = e.Run(g4, v3+1, v3, graph.Delta{Exact: true, Domains: []string{"c2.evil.net"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFull {
		t.Fatalf("day change: mode = %q, want full", res.Mode)
	}
}

// TestEngineBudgetExhaustionEscalates: a residual pass that runs out of
// update budget reports Converged=false and the next pass goes full.
func TestEngineBudgetExhaustionEscalates(t *testing.T) {
	l := newLineage(t, 1, []string{"good.com"})
	l.bl.Add(intel.BlacklistEntry{Domain: "c0.evil.net", FirstListed: 0})
	// One loopy cluster so message changes cascade around cycles.
	for m := 0; m < 8; m++ {
		for d := 0; d < 8; d++ {
			if (m+d)%2 == 0 {
				l.b.AddQuery(fmt.Sprintf("m%d", m), fmt.Sprintf("c%d.evil.net", d%2))
				l.b.AddQuery(fmt.Sprintf("m%d", m), fmt.Sprintf("u%d.gray.org", d))
			}
		}
	}
	// A starved budget (one update per node) with an unreachable
	// tolerance cannot drain the queue.
	cfg := Config{MaxIterations: 1, Tolerance: 1e-300}
	e := NewEngine(cfg)
	g, v, delta := l.snap()
	if _, err := e.Run(g, v, 0, delta); err != nil {
		t.Fatal(err)
	}

	l.b.AddQuery("m0", "u1.gray.org")
	g2, v2, delta2 := l.snap()
	res, err := e.Run(g2, v2, v, delta2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeResidual {
		t.Fatalf("mode = %q, want residual", res.Mode)
	}
	if res.Converged {
		t.Fatal("starved residual pass should not report convergence")
	}

	l.b.AddQuery("m0", "u3.gray.org")
	g3, v3, delta3 := l.snap()
	res, err = e.Run(g3, v3, v2, delta3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFull {
		t.Fatalf("pass after exhausted budget: mode = %q, want full", res.Mode)
	}
}

// TestEngineResultIsolation: mutating a returned Result must not affect
// the engine's state or later results.
func TestEngineResultIsolation(t *testing.T) {
	l := newLineage(t, 1, []string{"good.com"})
	l.bl.Add(intel.BlacklistEntry{Domain: "c2.evil.net", FirstListed: 0})
	l.b.AddQuery("m1", "c2.evil.net")
	l.b.AddQuery("m1", "u.gray.org")

	e := NewEngine(equivCfg)
	g, v, delta := l.snap()
	first, err := e.Run(g, v, 0, delta)
	if err != nil {
		t.Fatal(err)
	}
	want := first.DomainBelief[0]
	first.DomainBelief[0] = -1
	again, err := e.Run(g, v, v, graph.Delta{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.DomainBelief[0] != want {
		t.Fatalf("engine state aliased into result: %g != %g", again.DomainBelief[0], want)
	}
}

// TestEngineLastVersionAndReset exercises the bookkeeping accessors.
func TestEngineLastVersionAndReset(t *testing.T) {
	e := NewEngine(Config{})
	if _, ok := e.LastVersion(); ok {
		t.Fatal("fresh engine should have no version")
	}
	l := newLineage(t, 1, []string{"good.com"})
	l.bl.Add(intel.BlacklistEntry{Domain: "c2.evil.net", FirstListed: 0})
	l.b.AddQuery("m1", "c2.evil.net")
	g, v, delta := l.snap()
	if _, err := e.Run(g, v, 0, delta); err != nil {
		t.Fatal(err)
	}
	if got, ok := e.LastVersion(); !ok || got != v {
		t.Fatalf("LastVersion = %d,%v want %d,true", got, ok, v)
	}
	e.Reset()
	if _, ok := e.LastVersion(); ok {
		t.Fatal("reset engine should have no version")
	}
	res, err := e.Run(g, v, v, graph.Delta{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFull {
		t.Fatalf("post-reset mode = %q, want full", res.Mode)
	}
}

// TestPropagateReportsFullMode: the batch entry point tags its result.
func TestPropagateReportsFullMode(t *testing.T) {
	g := propagationFixture(t)
	res, err := Propagate(g, Config{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFull {
		t.Fatalf("mode = %q, want full", res.Mode)
	}
}
