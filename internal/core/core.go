// Package core assembles Segugio's end-to-end pipeline (paper Figure 2):
// label the machine-domain behavior graph from ground-truth feeds, prune
// it with the conservative rules R1-R4, measure the 11 statistical
// features of every known domain with its own label hidden, train the
// behavior-based classifier, and at deployment time score the unknown
// domains of a later observation window to detect new malware-control
// domains and enumerate the machines that query them.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"segugio/internal/activity"
	"segugio/internal/features"
	"segugio/internal/graph"
	"segugio/internal/ml"
	"segugio/internal/pdns"
)

// Config parameterizes the pipeline. DefaultConfig returns the paper's
// settings.
type Config struct {
	// ActivityWindow is the F2 look-back in days (paper: 14).
	ActivityWindow int
	// Prune holds the R1-R4 thresholds.
	Prune graph.PruneConfig
	// DisablePruning skips R1-R4, for the pruning ablation.
	DisablePruning bool
	// ProberFilter, when non-nil, removes anomalous security-scanner
	// clients before pruning (paper Section VI's noise discussion).
	ProberFilter *graph.ProberConfig
	// NewModel builds the statistical classifier C given the training
	// class sizes (so implementations can weight the rare malware class).
	// Defaults to a random forest, the paper's primary choice.
	NewModel func(benign, malware int) ml.Model
	// FeatureColumns optionally restricts the model to a subset of the 11
	// features (the Figure 7 ablations). Nil means all features.
	FeatureColumns []int
}

// DefaultConfig returns the paper's pipeline settings.
func DefaultConfig() Config {
	return Config{
		ActivityWindow: 14,
		Prune:          graph.DefaultPruneConfig(),
		NewModel:       DefaultModel,
	}
}

// DefaultModel builds the default random forest, weighting the malware
// class inversely to its prevalence so ISP-scale imbalance does not
// starve the split search. The cap keeps ambiguous feature cells (one
// malware example among several benign) scoring below pure-malware
// cells, which is what low-false-positive operating points live on.
func DefaultModel(benign, malware int) ml.Model {
	w := 1.0
	if malware > 0 && benign > malware {
		w = math.Min(float64(benign)/float64(malware), 10)
	}
	return ml.NewRandomForest(ml.RandomForestConfig{
		NumTrees:       96,
		MaxDepth:       14,
		MinLeaf:        4,
		SubsampleSize:  200000,
		PositiveWeight: w,
		Seed:           1,
	})
}

// Timing is the per-phase wall-clock breakdown the efficiency experiment
// (Section IV-G) reports.
type Timing struct {
	Prune   time.Duration
	Extract time.Duration
	Fit     time.Duration
	Score   time.Duration
}

// Total sums the phases.
func (t Timing) Total() time.Duration { return t.Prune + t.Extract + t.Fit + t.Score }

// TrainInput bundles one labeled observation window for training.
type TrainInput struct {
	// Graph is the labeled (ApplyLabels done), unpruned behavior graph.
	Graph *graph.Graph
	// Activity is the query-activity log covering the F2 look-back.
	Activity *activity.Log
	// Abuse is the passive-DNS abuse index covering the F3 look-back.
	// May be nil (F3 features become zero).
	Abuse *pdns.AbuseIndex
	// Exclude lists domains that must not become training examples (the
	// held-out test set of the train/test protocol).
	Exclude map[string]struct{}
}

// TrainReport summarizes a training run.
type TrainReport struct {
	Prune        graph.PruneStats
	TrainBenign  int
	TrainMalware int
	// ProbersRemoved lists anomalous clients dropped by the prober
	// filter, when enabled.
	ProbersRemoved []string
	Timing         Timing
}

// Pipeline errors.
var (
	ErrUnlabeled  = errors.New("core: graph must be labeled before use")
	ErrNoTraining = errors.New("core: training set is empty")
)

// Detector is a trained Segugio classifier plus its deployment threshold.
type Detector struct {
	cfg       Config
	model     ml.Model
	threshold float64
}

// Train runs the training half of the pipeline and returns a deployable
// Detector.
func Train(cfg Config, in TrainInput) (*Detector, *TrainReport, error) {
	if cfg.NewModel == nil {
		cfg.NewModel = DefaultModel
	}
	if in.Graph == nil || !in.Graph.Labeled() {
		return nil, nil, ErrUnlabeled
	}
	report := &TrainReport{}

	g := in.Graph
	if cfg.ProberFilter != nil {
		filtered, removed, err := graph.FilterProbers(g, *cfg.ProberFilter)
		if err != nil {
			return nil, nil, fmt.Errorf("core: prober filter: %w", err)
		}
		g = filtered
		report.ProbersRemoved = removed
	}
	if !cfg.DisablePruning {
		t0 := time.Now()
		pruned, stats, err := graph.Prune(g, cfg.Prune)
		if err != nil {
			return nil, nil, fmt.Errorf("core: prune: %w", err)
		}
		g = pruned
		report.Prune = stats
		report.Timing.Prune = time.Since(t0)
	}

	ex, err := features.NewExtractor(g, in.Activity, in.Abuse, cfg.ActivityWindow)
	if err != nil {
		return nil, nil, fmt.Errorf("core: extractor: %w", err)
	}
	t0 := time.Now()
	ds := features.TrainingSet(ex, in.Exclude)
	report.Timing.Extract = time.Since(t0)
	if ds.Len() == 0 {
		return nil, nil, ErrNoTraining
	}
	report.TrainBenign, report.TrainMalware = ds.Counts()

	X := ds.X
	if cfg.FeatureColumns != nil {
		X = ml.SelectColumns(X, cfg.FeatureColumns)
	}
	model := cfg.NewModel(report.TrainBenign, report.TrainMalware)
	t0 = time.Now()
	if err := model.Fit(X, ds.Y); err != nil {
		return nil, nil, fmt.Errorf("core: fit: %w", err)
	}
	report.Timing.Fit = time.Since(t0)

	return &Detector{cfg: cfg, model: model, threshold: 0.5}, report, nil
}

// SetThreshold sets the deployment detection threshold (scores at or above
// it are labeled malware). The paper tunes it from an ROC curve to hit a
// false-positive budget.
func (d *Detector) SetThreshold(t float64) { d.threshold = t }

// Threshold returns the current detection threshold.
func (d *Detector) Threshold() float64 { return d.threshold }

// PruneConfig exposes the detector's pruning thresholds and whether
// pruning is enabled at all. Score caches keyed by per-domain dirty sets
// need this: combined with graph.PruneSignature it detects the global
// threshold shifts (thetaD, thetaM) that can change the pruning fate of
// domains no local mutation touched.
func (d *Detector) PruneConfig() (graph.PruneConfig, bool) {
	return d.cfg.Prune, !d.cfg.DisablePruning
}

// Detection is one scored domain.
type Detection struct {
	Domain string
	Score  float64
}

// ClassifyInput bundles one labeled observation window for deployment.
type ClassifyInput struct {
	// Ctx, when non-nil and cancellable, bounds the pass: classification
	// checks it at stage boundaries and between scoring chunks, so a
	// deadline or cancellation aborts mid-sweep with the context's error
	// and no detections. Nil behaves like context.Background().
	Ctx context.Context
	// Graph is the labeled, unpruned behavior graph of the window.
	Graph    *graph.Graph
	Activity *activity.Log
	Abuse    *pdns.AbuseIndex
	// Domains optionally restricts classification to these names; nil
	// classifies every unknown-labeled domain in the (pruned) graph.
	Domains []string
}

// ctx returns the pass context, never nil.
func (in ClassifyInput) ctx() context.Context {
	if in.Ctx != nil {
		return in.Ctx
	}
	return context.Background()
}

// ClassifyReport summarizes a deployment run.
type ClassifyReport struct {
	Prune graph.PruneStats
	// Classified counts scored domains; Missing lists requested domains
	// that were absent from the pruned graph (they cannot be detected).
	Classified int
	Missing    []string
	// ProbersRemoved lists anomalous clients dropped by the prober
	// filter, when enabled.
	ProbersRemoved []string
	Timing         Timing
	// PrunedGraph is the graph classification ran on, kept so callers can
	// enumerate the machines behind each detection. Delta passes served
	// from a memoized session leave it nil: nothing is materialized.
	PrunedGraph *graph.Graph
	// PrunedCached reports whether the prober-filter + prune pipeline was
	// served from a memoized session instead of rescanning the graph.
	PrunedCached bool
	// PruneSig is the resolved prune-threshold signature
	// (graph.PrunePlan.Signature) of the plan this pass ran under; zero
	// when pruning is disabled.
	PruneSig uint64
}

// prepared is the memoizable per-snapshot preprocessing of a classify
// pass: the combined prober-filter + prune plan, the materialized pruned
// graph, and the feature extractor over it. It is immutable once built,
// so concurrent passes may share one.
type prepared struct {
	src      *graph.Graph
	activity *activity.Log
	abuse    *pdns.AbuseIndex
	// plan is nil when the detector has no prober filter and pruning
	// disabled; pruned is then src itself.
	plan           *graph.PrunePlan
	pruned         *graph.Graph
	stats          graph.PruneStats
	probersRemoved []string
	sig            uint64
	ex             *features.Extractor
	pruneTime      time.Duration
}

// prepare runs the O(graph) half of a classify pass once: one combined
// prober-filter + prune scan, materialization, and extractor setup.
func (d *Detector) prepare(g *graph.Graph, act *activity.Log, abuse *pdns.AbuseIndex) (*prepared, error) {
	p := &prepared{src: g, activity: act, abuse: abuse}
	if d.cfg.ProberFilter != nil || !d.cfg.DisablePruning {
		t0 := time.Now()
		plan, err := graph.NewPrunePlan(g, d.cfg.ProberFilter, d.cfg.Prune, d.cfg.DisablePruning)
		if err != nil {
			return nil, fmt.Errorf("core: prune: %w", err)
		}
		p.plan = plan
		p.pruned = plan.Materialize()
		p.stats = plan.Stats()
		p.probersRemoved = plan.ProbersRemoved()
		p.sig = plan.Signature()
		p.pruneTime = time.Since(t0)
	} else {
		p.pruned = g
	}
	ex, err := features.NewExtractor(p.pruned, act, abuse, d.cfg.ActivityWindow)
	if err != nil {
		return nil, fmt.Errorf("core: extractor: %w", err)
	}
	p.ex = ex
	return p, nil
}

// fillReport copies the prepared pass's prune outcome into the report.
func (p *prepared) fillReport(report *ClassifyReport, cached bool) {
	report.Prune = p.stats
	report.ProbersRemoved = p.probersRemoved
	report.PrunedGraph = p.pruned
	report.PruneSig = p.sig
	report.PrunedCached = cached
	if !cached {
		report.Timing.Prune = p.pruneTime
	}
}

// Classify scores the unknown domains of a new observation window.
// Detections are returned for every scored domain (not only those above
// the threshold), sorted by descending score, so callers can build full
// ROC curves.
func (d *Detector) Classify(in ClassifyInput) ([]Detection, *ClassifyReport, error) {
	if in.Graph == nil || !in.Graph.Labeled() {
		return nil, nil, ErrUnlabeled
	}
	ctx := in.ctx()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	report := &ClassifyReport{}
	prep, err := d.prepare(in.Graph, in.Activity, in.Abuse)
	if err != nil {
		return nil, nil, err
	}
	prep.fillReport(report, false)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	targets := in.Domains
	if targets == nil {
		targets = features.UnknownDomains(prep.ex)
	}
	dets, err := d.scoreTargets(ctx, prep.ex, targets, report)
	if err != nil {
		return nil, nil, err
	}
	return dets, report, nil
}

// scoreChunk bounds how many targets a cancellable pass extracts and
// scores between context checks — the granularity at which a deadline
// can abort a sweep mid-way.
const scoreChunk = 4096

// scoreTargets measures the targets' features and scores them in one
// batch: present rows are compacted into a dense matrix (missing targets
// recorded in report.Missing in input order), feature-column selection
// happens once for the whole matrix, and scoring goes through
// ml.ScoreAll — the forest's parallel batch path or a sharded fallback,
// both bit-identical to a serial per-domain loop.
//
// A cancellable ctx switches the sweep to scoreChunk-sized pieces with
// a context check between each, so a pass over a large graph can be
// abandoned mid-sweep; an uncancellable ctx keeps the single-batch
// fast path with zero overhead. Both orders are bit-identical.
func (d *Detector) scoreTargets(ctx context.Context, ex *features.Extractor, targets []string, report *ClassifyReport) ([]Detection, error) {
	var dets []Detection
	if ctx.Done() == nil {
		dets = d.scoreSweep(ex, targets, report)
	} else {
		dets = make([]Detection, 0, len(targets))
		for start := 0; start < len(targets) || start == 0; start += scoreChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := start + scoreChunk
			if end > len(targets) {
				end = len(targets)
			}
			dets = append(dets, d.scoreSweep(ex, targets[start:end], report)...)
			if end == len(targets) {
				break
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	report.Classified = len(dets)
	sortDetections(dets)
	return dets, nil
}

// scoreSweep extracts and scores one contiguous run of targets,
// accumulating timings and missing names into the report.
func (d *Detector) scoreSweep(ex *features.Extractor, targets []string, report *ClassifyReport) []Detection {
	t0 := time.Now()
	X, ok := features.VectorsFor(ex, targets)
	report.Timing.Extract += time.Since(t0)

	t0 = time.Now()
	rows := make([][]float64, 0, len(targets))
	names := make([]string, 0, len(targets))
	for i, name := range targets {
		if !ok[i] {
			report.Missing = append(report.Missing, name)
			continue
		}
		rows = append(rows, X[i])
		names = append(names, name)
	}
	if d.cfg.FeatureColumns != nil {
		rows = ml.SelectColumns(rows, d.cfg.FeatureColumns)
	}
	scores := ml.ScoreAll(d.model, rows)
	dets := make([]Detection, len(names))
	for i, name := range names {
		dets[i] = Detection{Domain: name, Score: scores[i]}
	}
	report.Timing.Score += time.Since(t0)
	return dets
}

// sortDetections orders by descending score, then ascending domain.
func sortDetections(dets []Detection) {
	sort.Slice(dets, func(i, j int) bool {
		if dets[i].Score != dets[j].Score {
			return dets[i].Score > dets[j].Score
		}
		return dets[i].Domain < dets[j].Domain
	})
}

// Detected filters detections by the deployment threshold.
func (d *Detector) Detected(dets []Detection) []Detection {
	var out []Detection
	for _, det := range dets {
		if det.Score >= d.threshold {
			out = append(out, det)
		}
	}
	return out
}

// InfectedMachines enumerates the machines of g that query any of the
// detected domains — the paper's point that Segugio identifies new
// control domains and the compromised machines behind them in one shot
// (Section VI).
func InfectedMachines(g *graph.Graph, detected []Detection) []string {
	seen := make(map[int32]struct{})
	for _, det := range detected {
		di, ok := g.DomainIndex(det.Domain)
		if !ok {
			continue
		}
		for _, m := range g.MachinesOf(di) {
			seen[m] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, g.MachineID(m))
	}
	sort.Strings(out)
	return out
}
