package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/eval"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/ml"
	"segugio/internal/pdns"
	"segugio/internal/trace"
)

// smallScenario builds a labeled graph + context from the synthetic ISP
// generator for one day.
type scenario struct {
	cat   *trace.Catalog
	gen   *trace.Generator
	bl    *intel.Blacklist
	wl    *intel.Whitelist
	sl    *dnsutil.SuffixList
	db    *pdns.DB
	cfg   trace.Config
	seedW int
}

func newScenario(t *testing.T, seed int64) *scenario {
	t.Helper()
	cfg := trace.DefaultConfig("CORE", seed)
	cfg.Machines = 1200
	cfg.BenignE2LDs = 1500
	cfg.TailDomains = 2000
	cat, err := trace.NewCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &scenario{cat: cat, gen: trace.NewGenerator(cat), cfg: cfg, sl: dnsutil.DefaultSuffixList()}
	s.bl = cat.Blacklist(trace.BlacklistConfig{Coverage: 0.7, MeanListingDelayDays: 2, Salt: 1})
	arch := cat.RankArchive(trace.RankArchiveConfig{Days: 15, ListLen: 1200, JitterFraction: 0.02})
	wl, err := intel.BuildWhitelist(arch, intel.WhitelistConfig{ExcludeZones: cat.KnownFreeRegZones(0.75)})
	if err != nil {
		t.Fatal(err)
	}
	s.wl = wl
	s.db = pdns.NewDB()
	cat.EmitPDNSHistory(s.db, 0, 200)
	return s
}

// dayContext labels a day's graph and builds its activity/abuse context.
func (s *scenario) dayContext(t *testing.T, day int, hidden map[string]struct{}) (*graph.Graph, *activity.Log, *pdns.AbuseIndex) {
	t.Helper()
	tr := s.gen.GenerateDay(day)
	g := trace.BuildGraph(tr, s.cat, s.sl)
	g.ApplyLabels(graph.LabelSources{Blacklist: s.bl, Whitelist: s.wl, AsOf: day, Hidden: hidden})
	log := activity.NewLog()
	s.cat.MarkActivity(log, s.sl, day-13, day)
	abuse := pdns.BuildAbuseIndex(s.db, day-150, day-1, func(d string) pdns.Verdict {
		if s.bl.Contains(d, day) {
			return pdns.VerdictMalware
		}
		if s.wl.ContainsDomain(d, s.sl) {
			return pdns.VerdictBenign
		}
		return pdns.VerdictUnknown
	})
	return g, log, abuse
}

func TestTrainRequiresLabeledGraph(t *testing.T) {
	b := graph.NewBuilder("X", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m", "d.com")
	g := b.Build()
	if _, _, err := Train(DefaultConfig(), TrainInput{Graph: g}); !errors.Is(err, ErrUnlabeled) {
		t.Fatalf("err = %v, want ErrUnlabeled", err)
	}
	if _, _, err := Train(DefaultConfig(), TrainInput{}); !errors.Is(err, ErrUnlabeled) {
		t.Fatalf("nil graph err = %v, want ErrUnlabeled", err)
	}
}

func TestTrainNoTrainingData(t *testing.T) {
	b := graph.NewBuilder("X", 1, dnsutil.DefaultSuffixList())
	for i := 0; i < 10; i++ {
		b.AddQuery("m1", "unknown"+string(rune('a'+i))+".com")
		b.AddQuery("m2", "unknown"+string(rune('a'+i))+".com")
	}
	g := b.Build()
	g.ApplyLabels(graph.LabelSources{AsOf: 1}) // no sources: all unknown
	_, _, err := Train(DefaultConfig(), TrainInput{Graph: g})
	if !errors.Is(err, ErrNoTraining) {
		t.Fatalf("err = %v, want ErrNoTraining", err)
	}
}

func TestTrainAndClassifyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test")
	}
	s := newScenario(t, 31)
	t1, t2 := 170, 180

	// Known domains present on both days form the held-out test set.
	g1Raw := trace.BuildGraph(s.gen.GenerateDay(t1), s.cat, s.sl)
	g2Raw := trace.BuildGraph(s.gen.GenerateDay(t2), s.cat, s.sl)
	testSet := map[string]struct{}{}
	var testDomains []string
	var testLabels []int
	rng := rand.New(rand.NewSource(9))
	for _, name := range domainNames(g2Raw) {
		if _, in1 := g1Raw.DomainIndex(name); !in1 {
			continue
		}
		isMal := s.bl.Contains(name, t1)
		isBen := s.wl.ContainsDomain(name, s.sl)
		if !isMal && !isBen {
			continue
		}
		if rng.Float64() > 0.7 {
			continue
		}
		testSet[name] = struct{}{}
		testDomains = append(testDomains, name)
		if isMal {
			testLabels = append(testLabels, 1)
		} else {
			testLabels = append(testLabels, 0)
		}
	}
	if countOnes(testLabels) < 20 {
		t.Fatalf("too few malware test domains: %d", countOnes(testLabels))
	}

	g1, log1, abuse1 := s.dayContext(t, t1, testSet)
	det, trainReport, err := Train(DefaultConfig(), TrainInput{
		Graph: g1, Activity: log1, Abuse: abuse1, Exclude: testSet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trainReport.TrainMalware == 0 || trainReport.TrainBenign == 0 {
		t.Fatalf("degenerate training set: %+v", trainReport)
	}
	if trainReport.Prune.DomainsAfter >= trainReport.Prune.DomainsBefore {
		t.Error("pruning should reduce domains")
	}

	g2, log2, abuse2 := s.dayContext(t, t2, testSet)
	dets, classifyReport, err := det.Classify(ClassifyInput{
		Graph: g2, Activity: log2, Abuse: abuse2, Domains: testDomains,
	})
	if err != nil {
		t.Fatal(err)
	}
	if classifyReport.Classified == 0 {
		t.Fatal("nothing classified")
	}

	// Build ROC over the classified test domains (missing ones score 0).
	scoreByDomain := map[string]float64{}
	for _, d := range dets {
		scoreByDomain[d.Domain] = d.Score
	}
	scores := make([]float64, len(testDomains))
	for i, name := range testDomains {
		scores[i] = scoreByDomain[name]
	}
	curve, err := eval.ROC(scores, testLabels)
	if err != nil {
		t.Fatal(err)
	}
	// At this deliberately tiny scale each test-malware domain is worth
	// ~4% of TPR and a couple get pruned from the deployment-day graph,
	// so the bars sit below the paper's full-scale numbers (the experiment
	// harness asserts those at scale).
	auc, _ := eval.AUC(curve)
	if auc < 0.85 {
		t.Fatalf("cross-day AUC = %.3f, want >= 0.85", auc)
	}
	if tpr := eval.TPRAtFPR(curve, 0.01); tpr < 0.7 {
		t.Fatalf("TPR@1%%FP = %.3f, want >= 0.7", tpr)
	}

	// Detections are sorted by score.
	for i := 1; i < len(dets); i++ {
		if dets[i].Score > dets[i-1].Score {
			t.Fatal("detections not sorted by descending score")
		}
	}

	// Threshold filtering and infected-machine enumeration.
	det.SetThreshold(eval.ThresholdAtFPR(curve, 0.01))
	detected := det.Detected(dets)
	if len(detected) == 0 {
		t.Fatal("no detections above threshold")
	}
	machines := InfectedMachines(classifyReport.PrunedGraph, detected)
	if len(machines) == 0 {
		t.Fatal("detected domains must implicate machines")
	}
}

func TestClassifyAllUnknownWhenDomainsNil(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test")
	}
	s := newScenario(t, 33)
	g1, log1, abuse1 := s.dayContext(t, 170, nil)
	det, _, err := Train(DefaultConfig(), TrainInput{Graph: g1, Activity: log1, Abuse: abuse1})
	if err != nil {
		t.Fatal(err)
	}
	g2, log2, abuse2 := s.dayContext(t, 175, nil)
	dets, report, err := det.Classify(ClassifyInput{Graph: g2, Activity: log2, Abuse: abuse2})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 || report.Classified != len(dets) {
		t.Fatalf("classified %d detections, report says %d", len(dets), report.Classified)
	}
	// Every returned domain was unknown-labeled in the pruned graph.
	for _, d := range dets[:min(50, len(dets))] {
		di, ok := report.PrunedGraph.DomainIndex(d.Domain)
		if !ok {
			t.Fatalf("detection %s not in pruned graph", d.Domain)
		}
		if report.PrunedGraph.DomainLabel(di) != graph.LabelUnknown {
			t.Fatalf("detection %s is not unknown-labeled", d.Domain)
		}
	}
}

func TestClassifyReportsMissingDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test")
	}
	s := newScenario(t, 35)
	g1, log1, abuse1 := s.dayContext(t, 170, nil)
	det, _, err := Train(DefaultConfig(), TrainInput{Graph: g1, Activity: log1, Abuse: abuse1})
	if err != nil {
		t.Fatal(err)
	}
	g2, log2, abuse2 := s.dayContext(t, 175, nil)
	_, report, err := det.Classify(ClassifyInput{
		Graph: g2, Activity: log2, Abuse: abuse2,
		Domains: []string{"definitely-not-present.example"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Missing) != 1 {
		t.Fatalf("missing = %v, want one entry", report.Missing)
	}
}

func TestDetectorThreshold(t *testing.T) {
	d := &Detector{threshold: 0.5}
	dets := []Detection{{Domain: "a", Score: 0.9}, {Domain: "b", Score: 0.4}}
	if got := d.Detected(dets); len(got) != 1 || got[0].Domain != "a" {
		t.Fatalf("Detected = %v", got)
	}
	d.SetThreshold(0.3)
	if d.Threshold() != 0.3 {
		t.Fatal("SetThreshold did not stick")
	}
	if got := d.Detected(dets); len(got) != 2 {
		t.Fatalf("Detected = %v, want both", got)
	}
}

func TestInfectedMachines(t *testing.T) {
	b := graph.NewBuilder("X", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m1", "c2.new.com")
	b.AddQuery("m2", "c2.new.com")
	b.AddQuery("m3", "other.com")
	g := b.Build()
	got := InfectedMachines(g, []Detection{{Domain: "c2.new.com", Score: 1}})
	if len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("InfectedMachines = %v, want [m1 m2]", got)
	}
	if got := InfectedMachines(g, []Detection{{Domain: "absent.com"}}); len(got) != 0 {
		t.Fatalf("absent domain should implicate no machines, got %v", got)
	}
}

func TestTimingTotal(t *testing.T) {
	tm := Timing{Prune: 1, Extract: 2, Fit: 3, Score: 4}
	if tm.Total() != 10 {
		t.Fatalf("Total = %v, want 10", tm.Total())
	}
}

func TestDefaultModelBalancesClasses(t *testing.T) {
	m := DefaultModel(10000, 100)
	rf, ok := m.(*ml.RandomForest)
	if !ok {
		t.Fatalf("DefaultModel returned %T, want *ml.RandomForest", m)
	}
	_ = rf
	// Degenerate inputs must not panic or produce nonsense.
	_ = DefaultModel(0, 0)
	_ = DefaultModel(5, 10)
}

func domainNames(g *graph.Graph) []string {
	out := make([]string, g.NumDomains())
	for d := int32(0); d < int32(g.NumDomains()); d++ {
		out[d] = g.DomainName(d)
	}
	return out
}

func countOnes(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func TestTrainWithProberFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test")
	}
	s := newScenario(t, 61)
	g, log, abuse := s.dayContext(t, 170, nil)
	cfg := DefaultConfig()
	pf := graph.DefaultProberConfig()
	cfg.ProberFilter = &pf
	_, report, err := Train(cfg, TrainInput{Graph: g, Activity: log, Abuse: abuse})
	if err != nil {
		t.Fatal(err)
	}
	// The test population includes prober machines querying ~80% of all
	// active C&C domains; the filter must catch them.
	if len(report.ProbersRemoved) == 0 {
		t.Fatal("prober filter removed nothing despite prober machines in the population")
	}
	for _, id := range report.ProbersRemoved {
		if !strings.Contains(id, "CORE-m") {
			t.Fatalf("unexpected prober id %q", id)
		}
	}
}
