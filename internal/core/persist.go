package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"segugio/internal/graph"
	"segugio/internal/ml"
)

// Detector persistence: a trained detector (model, threshold, feature
// selection, pipeline settings) can be saved after the learning phase and
// loaded by the deployment process that classifies live traffic.

type detectorWire struct {
	ModelKind      string // "randomforest" | "logreg"
	ModelBytes     []byte
	Threshold      float64
	ActivityWindow int
	Prune          graph.PruneConfig
	DisablePruning bool
	FeatureColumns []int
}

// Persistence errors.
var (
	ErrUnknownModel = errors.New("core: unsupported model type for persistence")
)

// SaveDetector writes a trained detector to w.
func SaveDetector(w io.Writer, d *Detector) error {
	wire := detectorWire{
		Threshold:      d.threshold,
		ActivityWindow: d.cfg.ActivityWindow,
		Prune:          d.cfg.Prune,
		DisablePruning: d.cfg.DisablePruning,
		FeatureColumns: d.cfg.FeatureColumns,
	}
	switch m := d.model.(type) {
	case *ml.RandomForest:
		wire.ModelKind = "randomforest"
		b, err := m.MarshalBinary()
		if err != nil {
			return err
		}
		wire.ModelBytes = b
	case *ml.LogisticRegression:
		wire.ModelKind = "logreg"
		b, err := m.MarshalBinary()
		if err != nil {
			return err
		}
		wire.ModelBytes = b
	default:
		return fmt.Errorf("%w: %T", ErrUnknownModel, d.model)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadDetector reads a detector previously written by SaveDetector.
func LoadDetector(r io.Reader) (*Detector, error) {
	var wire detectorWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decode detector: %w", err)
	}
	var model ml.Model
	switch wire.ModelKind {
	case "randomforest":
		rf := &ml.RandomForest{}
		if err := rf.UnmarshalBinary(wire.ModelBytes); err != nil {
			return nil, err
		}
		model = rf
	case "logreg":
		lr := &ml.LogisticRegression{}
		if err := lr.UnmarshalBinary(wire.ModelBytes); err != nil {
			return nil, err
		}
		model = lr
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, wire.ModelKind)
	}
	return &Detector{
		cfg: Config{
			ActivityWindow: wire.ActivityWindow,
			Prune:          wire.Prune,
			DisablePruning: wire.DisablePruning,
			FeatureColumns: wire.FeatureColumns,
		},
		model:     model,
		threshold: wire.Threshold,
	}, nil
}
