package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"segugio/internal/graph"
	"segugio/internal/ml"
)

// WriteAtomic durably replaces the file at path with the bytes produced
// by write: the content goes to a temporary file in the same directory,
// is fsynced, and is renamed over path, so a crash at any point leaves
// either the old file or the new one — never a torn mix. The containing
// directory is fsynced afterwards so the rename itself survives a power
// loss. segugiod's checkpoints and any detector written next to a live
// daemon go through this.
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Detector persistence: a trained detector (model, threshold, feature
// selection, pipeline settings) can be saved after the learning phase and
// loaded by the deployment process that classifies live traffic.

// DetectorFormatVersion is the current on-disk detector format. Files
// written by other versions (including pre-versioning files, which decode
// as version 0) are rejected with ErrIncompatibleVersion so segugiod's
// hot-reload fails with a clear error instead of scoring with a detector
// whose bytes it may be misinterpreting.
const DetectorFormatVersion = 1

type detectorWire struct {
	Version        int
	ModelKind      string // "randomforest" | "logreg"
	ModelBytes     []byte
	Threshold      float64
	ActivityWindow int
	Prune          graph.PruneConfig
	DisablePruning bool
	FeatureColumns []int
}

// Persistence errors.
var (
	ErrUnknownModel = errors.New("core: unsupported model type for persistence")
	// ErrIncompatibleVersion marks a detector file written by an
	// incompatible format version.
	ErrIncompatibleVersion = errors.New("core: incompatible detector format version")
)

// SaveDetector writes a trained detector to w.
func SaveDetector(w io.Writer, d *Detector) error {
	wire := detectorWire{
		Version:        DetectorFormatVersion,
		Threshold:      d.threshold,
		ActivityWindow: d.cfg.ActivityWindow,
		Prune:          d.cfg.Prune,
		DisablePruning: d.cfg.DisablePruning,
		FeatureColumns: d.cfg.FeatureColumns,
	}
	switch m := d.model.(type) {
	case *ml.RandomForest:
		wire.ModelKind = "randomforest"
		b, err := m.MarshalBinary()
		if err != nil {
			return err
		}
		wire.ModelBytes = b
	case *ml.LogisticRegression:
		wire.ModelKind = "logreg"
		b, err := m.MarshalBinary()
		if err != nil {
			return err
		}
		wire.ModelBytes = b
	default:
		return fmt.Errorf("%w: %T", ErrUnknownModel, d.model)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadDetector reads a detector previously written by SaveDetector.
func LoadDetector(r io.Reader) (*Detector, error) {
	var wire detectorWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decode detector: %w", err)
	}
	if wire.Version != DetectorFormatVersion {
		return nil, fmt.Errorf("%w: file is version %d, this build reads version %d",
			ErrIncompatibleVersion, wire.Version, DetectorFormatVersion)
	}
	var model ml.Model
	switch wire.ModelKind {
	case "randomforest":
		rf := &ml.RandomForest{}
		if err := rf.UnmarshalBinary(wire.ModelBytes); err != nil {
			return nil, err
		}
		model = rf
	case "logreg":
		lr := &ml.LogisticRegression{}
		if err := lr.UnmarshalBinary(wire.ModelBytes); err != nil {
			return nil, err
		}
		model = lr
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, wire.ModelKind)
	}
	return &Detector{
		cfg: Config{
			ActivityWindow: wire.ActivityWindow,
			Prune:          wire.Prune,
			DisablePruning: wire.DisablePruning,
			FeatureColumns: wire.FeatureColumns,
		},
		model:     model,
		threshold: wire.Threshold,
	}, nil
}
