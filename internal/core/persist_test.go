package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"segugio/internal/ml"
)

func trainedDetector(t *testing.T, newModel func(benign, malware int) ml.Model) (*Detector, [][]float64) {
	t.Helper()
	s := newScenario(t, 51)
	g, log, abuse := s.dayContext(t, 170, nil)
	cfg := DefaultConfig()
	if newModel != nil {
		cfg.NewModel = newModel
	}
	det, _, err := Train(cfg, TrainInput{Graph: g, Activity: log, Abuse: abuse})
	if err != nil {
		t.Fatal(err)
	}
	// Probe vectors for score comparison.
	probes := [][]float64{
		{1, 0, 5, 3, 3, 3, 3, 1, 1, 0, 0},
		{0, 0.5, 100, 14, 14, 14, 14, 0, 0, 0, 0},
		{0.8, 0.2, 10, 2, 2, 14, 14, 0.5, 1, 1, 2},
	}
	return det, probes
}

func TestDetectorPersistRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test")
	}
	det, probes := trainedDetector(t, nil)
	det.SetThreshold(0.77)

	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold() != 0.77 {
		t.Fatalf("threshold = %v, want 0.77", loaded.Threshold())
	}
	for i, p := range probes {
		if a, b := det.model.Score(p), loaded.model.Score(p); a != b {
			t.Fatalf("probe %d: score %v != %v", i, a, b)
		}
	}
}

func TestDetectorPersistLogreg(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test")
	}
	det, probes := trainedDetector(t, func(benign, malware int) ml.Model {
		return ml.NewLogisticRegression(ml.LogisticRegressionConfig{Seed: 3})
	})
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probes {
		if a, b := det.model.Score(p), loaded.model.Score(p); a != b {
			t.Fatalf("probe %d: score %v != %v", i, a, b)
		}
	}
}

type fakeModel struct{}

func (fakeModel) Fit([][]float64, []int) error { return nil }
func (fakeModel) Score([]float64) float64      { return 0 }

func TestSaveDetectorUnknownModel(t *testing.T) {
	d := &Detector{model: fakeModel{}}
	var buf bytes.Buffer
	if err := SaveDetector(&buf, d); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("err = %v, want ErrUnknownModel", err)
	}
}

func TestLoadDetectorGarbage(t *testing.T) {
	if _, err := LoadDetector(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

// TestLoadDetectorVersionMismatch checks that a detector file carrying a
// different format version is rejected with ErrIncompatibleVersion — the
// guarantee segugiod's hot-reload relies on to refuse stale files.
func TestLoadDetectorVersionMismatch(t *testing.T) {
	for _, version := range []int{0, DetectorFormatVersion + 1} {
		wire := detectorWire{
			Version:   version,
			ModelKind: "logreg",
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
			t.Fatal(err)
		}
		_, err := LoadDetector(&buf)
		if !errors.Is(err, ErrIncompatibleVersion) {
			t.Fatalf("version %d: err = %v, want ErrIncompatibleVersion", version, err)
		}
	}
}

// TestSaveDetectorStampsVersion decodes the wire struct directly to pin
// the version field round-trip.
func TestSaveDetectorStampsVersion(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test")
	}
	det, _ := trainedDetector(t, func(benign, malware int) ml.Model {
		return ml.NewLogisticRegression(ml.LogisticRegressionConfig{Seed: 3})
	})
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	var wire detectorWire
	if err := gob.NewDecoder(&buf).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Version != DetectorFormatVersion {
		t.Fatalf("saved version = %d, want %d", wire.Version, DetectorFormatVersion)
	}
}

func TestWriteAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("content = %q", got)
	}

	// Overwrite succeeds and replaces wholesale.
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("second"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content = %q", got)
	}

	// A failing writer leaves the previous file intact and no temp
	// droppings behind.
	boom := errors.New("boom")
	if err := WriteAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("after failed write: %q", got)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the target file", len(entries))
	}
}
