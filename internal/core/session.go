package core

import (
	"sync"

	"segugio/internal/features"
	"segugio/internal/graph"
)

// ClassifySession memoizes the O(graph) half of classification — the
// combined prober-filter + prune plan, the materialized pruned graph,
// and the feature extractor — across passes. A full pass (Classify)
// computes and publishes that preparation; subsequent delta passes
// (ClassifyDelta) at later snapshots of the same builder lineage reuse
// the frozen plan through a graph.PrunedView and cost O(dirty targets),
// not O(graph).
//
// Invalidation: the memo is keyed by input identity (graph snapshot,
// activity log, abuse index pointers). Classify recomputes whenever any
// of them changes. ClassifyDelta additionally accepts later snapshots of
// the same lineage while graph.PrunePlan.StaleFor allows — same day,
// monotone growth within a drift bound, R4's thetaM unchanged — and
// falls back to a full recompute otherwise. Detector configuration is
// immutable per Detector, so a reloaded detector needs a new session.
//
// A session is safe for concurrent use: preparation is immutable once
// built, and publication is last-writer-wins under a mutex.
type ClassifySession struct {
	det *Detector

	mu   sync.Mutex
	prep *prepared
}

// NewSession returns an empty classify session for the detector.
func (d *Detector) NewSession() *ClassifySession {
	return &ClassifySession{det: d}
}

// snapshot returns the current preparation, which is immutable.
func (s *ClassifySession) snapshot() *prepared {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prep
}

// publish installs a newly computed preparation. Concurrent computes are
// safe; the last one wins.
func (s *ClassifySession) publish(p *prepared) {
	s.mu.Lock()
	s.prep = p
	s.mu.Unlock()
}

// Classify is Detector.Classify with the per-snapshot preprocessing
// memoized: when the input identity matches the session's preparation,
// the prune pipeline and extractor are reused (report.PrunedCached) and
// the pass costs only extraction + scoring of its targets.
func (s *ClassifySession) Classify(in ClassifyInput) ([]Detection, *ClassifyReport, error) {
	if in.Graph == nil || !in.Graph.Labeled() {
		return nil, nil, ErrUnlabeled
	}
	ctx := in.ctx()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	report := &ClassifyReport{}
	prep := s.snapshot()
	cached := prep != nil && prep.src == in.Graph &&
		prep.activity == in.Activity && prep.abuse == in.Abuse
	if !cached {
		var err error
		prep, err = s.det.prepare(in.Graph, in.Activity, in.Abuse)
		if err != nil {
			return nil, nil, err
		}
		s.publish(prep)
	}
	prep.fillReport(report, cached)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	targets := in.Domains
	if targets == nil {
		targets = features.UnknownDomains(prep.ex)
	}
	dets, err := s.det.scoreTargets(ctx, prep.ex, targets, report)
	if err != nil {
		return nil, nil, err
	}
	return dets, report, nil
}

// ClassifyDelta scores exactly in.Domains against the session's frozen
// prune plan, without any full-graph scan: targets are resolved through
// a graph.PrunedView over the live snapshot (O(2-hop neighborhood of
// the targets)). When the session has no valid preparation for the
// input — first pass, new day, input identity change, or drift past the
// plan's staleness bounds — it behaves like Classify: one full
// preparation, report.PrunedCached=false, and the fresh plan is
// published for the passes that follow. A nil in.Domains delegates to
// Classify (scoring every unknown domain needs the full graph anyway).
func (s *ClassifySession) ClassifyDelta(in ClassifyInput) ([]Detection, *ClassifyReport, error) {
	if in.Domains == nil {
		return s.Classify(in)
	}
	if in.Graph == nil || !in.Graph.Labeled() {
		return nil, nil, ErrUnlabeled
	}
	ctx := in.ctx()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	report := &ClassifyReport{}
	prep := s.snapshot()
	if !s.deltaValid(prep, in) {
		var err error
		prep, err = s.det.prepare(in.Graph, in.Activity, in.Abuse)
		if err != nil {
			return nil, nil, err
		}
		s.publish(prep)
		prep.fillReport(report, false)
		dets, err := s.det.scoreTargets(ctx, prep.ex, in.Domains, report)
		if err != nil {
			return nil, nil, err
		}
		return dets, report, nil
	}

	prep.fillReport(report, true)
	ex := prep.ex
	switch {
	case prep.src == in.Graph:
		// Same snapshot: the memoized extractor already answers for it.
	case prep.plan == nil:
		// No prune pipeline configured: extract straight off the live
		// snapshot, exactly as a full pass would.
		var err error
		ex, err = features.NewExtractor(in.Graph, in.Activity, in.Abuse, s.det.cfg.ActivityWindow)
		if err != nil {
			return nil, nil, err
		}
		report.PrunedGraph = in.Graph
	default:
		view := graph.NewPrunedView(in.Graph, prep.plan, in.Domains)
		var err error
		ex, err = features.NewExtractorView(view, in.Activity, in.Abuse, s.det.cfg.ActivityWindow)
		if err != nil {
			return nil, nil, err
		}
		report.PrunedGraph = nil
	}
	dets, err := s.det.scoreTargets(ctx, ex, in.Domains, report)
	if err != nil {
		return nil, nil, err
	}
	return dets, report, nil
}

// deltaValid reports whether prep's frozen decisions may serve a delta
// pass over in: same activity/abuse inputs and same observation day, and
// — when the snapshot moved — either no frozen plan exists (nothing to
// go stale) or the plan's O(1) staleness bounds still hold.
func (s *ClassifySession) deltaValid(prep *prepared, in ClassifyInput) bool {
	if prep == nil || prep.activity != in.Activity || prep.abuse != in.Abuse {
		return false
	}
	if prep.src == in.Graph {
		return true
	}
	if prep.src.Day() != in.Graph.Day() {
		return false
	}
	if prep.plan == nil {
		return true
	}
	return !prep.plan.StaleFor(in.Graph)
}
