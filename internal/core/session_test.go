package core

import (
	"fmt"
	"sync"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/features"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/ml"
)

// sessionGraphParts builds a small streaming fixture for session tests:
// 10 blacklisted C&C domains on distinct e2LDs (so default R4 never
// fires), 20 whitelisted domains, and 4 unknown targets queried by the
// infected machines. The builder is returned so tests can keep streaming
// into it and take incremental snapshots.
func sessionGraphParts(day int) (*graph.Builder, graph.LabelSources) {
	b := graph.NewBuilder("sess", day, dnsutil.DefaultSuffixList())
	bl := intel.NewBlacklist()
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("c2.evil%d.net", i)
		bl.Add(intel.BlacklistEntry{Domain: name, Family: "fam", FirstListed: 0})
		for m := 0; m < 6; m++ {
			b.AddQuery(fmt.Sprintf("inf%02d", (i+m)%12), name)
		}
		b.AddResolution(name, dnsutil.IPv4(0x0a000000+uint32(i)))
	}
	var whitelisted []string
	for i := 0; i < 20; i++ {
		e2ld := fmt.Sprintf("good%d.com", i)
		whitelisted = append(whitelisted, e2ld)
		name := "www." + e2ld
		for m := 0; m < 8; m++ {
			b.AddQuery(fmt.Sprintf("clean%02d", (i+m)%25), name)
		}
		b.AddResolution(name, dnsutil.IPv4(0x0b000000+uint32(i)))
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("unk.gray%d.org", i)
		for m := 0; m < 5; m++ {
			b.AddQuery(fmt.Sprintf("inf%02d", (i+m)%12), name)
		}
		b.AddResolution(name, dnsutil.IPv4(0x0c000000+uint32(i)))
	}
	return b, graph.LabelSources{
		Blacklist: bl,
		Whitelist: intel.NewWhitelist(whitelisted),
		AsOf:      day,
	}
}

// sessionDetector trains a deterministic logistic-regression detector
// with the full prune pipeline enabled on the given labeled graph.
func sessionDetector(t *testing.T, g *graph.Graph) *Detector {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NewModel = func(benign, malware int) ml.Model {
		return ml.NewLogisticRegression(ml.LogisticRegressionConfig{Seed: 7})
	}
	det, _, err := Train(cfg, TrainInput{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func sameDetections(t *testing.T, a, b []Detection) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("detection counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Domain != b[i].Domain || a[i].Score != b[i].Score {
			t.Fatalf("detection %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSessionMemoizesPreparation: a repeated Classify on the same input
// reuses the memoized prune pipeline (no new full-graph scan), reports
// PrunedCached, and returns byte-identical detections — which also match
// a sessionless Detector.Classify.
func TestSessionMemoizesPreparation(t *testing.T) {
	b, src := sessionGraphParts(42)
	g := b.Snapshot()
	g.ApplyLabels(src)
	det := sessionDetector(t, g)
	sess := det.NewSession()
	in := ClassifyInput{Graph: g}

	ref, _, err := det.Classify(in)
	if err != nil {
		t.Fatal(err)
	}
	dets1, rep1, err := sess.Classify(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.PrunedCached {
		t.Fatal("first session pass cannot be served from the memo")
	}
	if rep1.PruneSig == 0 {
		t.Fatal("pruning is enabled, PruneSig must be non-zero")
	}
	sameDetections(t, ref, dets1)

	scans := graph.FullGraphScans()
	dets2, rep2, err := sess.Classify(in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.PrunedCached {
		t.Fatal("second pass on the same input must reuse the preparation")
	}
	if got := graph.FullGraphScans(); got != scans {
		t.Fatalf("memoized pass performed %d full-graph scans", got-scans)
	}
	if rep2.PruneSig != rep1.PruneSig {
		t.Fatalf("prune signature drifted: %#x vs %#x", rep2.PruneSig, rep1.PruneSig)
	}
	sameDetections(t, dets1, dets2)
}

// TestSessionDeltaMatchesFullOnSameSnapshot: delta-scoring explicit
// targets against the snapshot the session prepared must reproduce the
// full pass's scores exactly.
func TestSessionDeltaMatchesFullOnSameSnapshot(t *testing.T) {
	b, src := sessionGraphParts(42)
	g := b.Snapshot()
	g.ApplyLabels(src)
	det := sessionDetector(t, g)
	sess := det.NewSession()

	full, _, err := sess.Classify(ClassifyInput{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]float64, len(full))
	var targets []string
	for _, d := range full {
		byName[d.Domain] = d.Score
		targets = append(targets, d.Domain)
	}

	dets, rep, err := sess.ClassifyDelta(ClassifyInput{Graph: g, Domains: targets})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PrunedCached {
		t.Fatal("same-snapshot delta must be served from the memo")
	}
	if len(dets) != len(targets) {
		t.Fatalf("scored %d of %d targets (missing: %v)", len(dets), len(targets), rep.Missing)
	}
	for _, d := range dets {
		if want, ok := byName[d.Domain]; !ok || d.Score != want {
			t.Fatalf("%s: delta score %v != full score %v", d.Domain, d.Score, want)
		}
	}
}

// TestSessionDeltaZeroFullScans is the acceptance check for the
// memoized prune pipeline: after the first pass at a snapshot lineage,
// delta passes at later snapshots perform ZERO full-graph prune, prober,
// or signature scans, observed through the package scan counter.
func TestSessionDeltaZeroFullScans(t *testing.T) {
	b, src := sessionGraphParts(42)
	g1 := b.Snapshot()
	g1.ApplyLabels(src)
	det := sessionDetector(t, g1)
	sess := det.NewSession()
	if _, _, err := sess.Classify(ClassifyInput{Graph: g1}); err != nil {
		t.Fatal(err)
	}

	for pass := 0; pass < 3; pass++ {
		// Stream one new edge onto an unknown target: the next snapshot's
		// exact dirty set is that domain alone.
		b.AddQuery(fmt.Sprintf("inf%02d", 5+pass), "unk.gray0.org")
		g2 := b.Snapshot()
		g2.ApplyLabels(src)
		dirty, exact := g2.DirtyDomainNames()
		if !exact || len(dirty) == 0 {
			t.Fatalf("pass %d: dirty = %v (exact=%v)", pass, dirty, exact)
		}

		scans := graph.FullGraphScans()
		dets, rep, err := sess.ClassifyDelta(ClassifyInput{Graph: g2, Domains: dirty})
		if err != nil {
			t.Fatal(err)
		}
		if got := graph.FullGraphScans(); got != scans {
			t.Fatalf("pass %d: delta pass performed %d full-graph scans, want 0", pass, got-scans)
		}
		if !rep.PrunedCached {
			t.Fatalf("pass %d: delta pass recomputed the prune pipeline", pass)
		}
		if len(dets)+len(rep.Missing) != len(dirty) {
			t.Fatalf("pass %d: %d scored + %d missing != %d targets",
				pass, len(dets), len(rep.Missing), len(dirty))
		}
		for _, d := range dets {
			if d.Score < 0 || d.Score > 1 {
				t.Fatalf("pass %d: %s score %v out of [0,1]", pass, d.Domain, d.Score)
			}
		}
	}
}

// TestClassifyMatchesSerialReference: the parallel flat-matrix scoring
// path must be byte-identical to a serial per-domain Vector + Score loop
// over the same pruned graph.
func TestClassifyMatchesSerialReference(t *testing.T) {
	b, src := sessionGraphParts(42)
	g := b.Snapshot()
	g.ApplyLabels(src)
	det := sessionDetector(t, g)

	dets, rep, err := det.Classify(ClassifyInput{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("nothing classified")
	}
	ex, err := features.NewExtractor(rep.PrunedGraph, nil, nil, det.cfg.ActivityWindow)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		di, ok := rep.PrunedGraph.DomainIndex(d.Domain)
		if !ok {
			t.Fatalf("%s not in pruned graph", d.Domain)
		}
		if want := det.model.Score(ex.Vector(di)); d.Score != want {
			t.Fatalf("%s: parallel score %v != serial score %v", d.Domain, d.Score, want)
		}
	}
}

// TestSessionConcurrentPasses: concurrent full and delta passes sharing
// one session must never observe a partially built preparation. Run
// under -race; the assertions also pin determinism of the full pass.
func TestSessionConcurrentPasses(t *testing.T) {
	b, src := sessionGraphParts(42)
	g1 := b.Snapshot()
	g1.ApplyLabels(src)
	b.AddQuery("inf05", "unk.gray0.org")
	g2 := b.Snapshot()
	g2.ApplyLabels(src)
	dirty, exact := g2.DirtyDomainNames()
	if !exact || len(dirty) == 0 {
		t.Fatalf("dirty = %v (exact=%v)", dirty, exact)
	}
	det := sessionDetector(t, g1)
	sess := det.NewSession()

	ref, _, err := det.Classify(ClassifyInput{Graph: g1})
	if err != nil {
		t.Fatal(err)
	}

	const workers, rounds = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w%2 == 0 {
					dets, _, err := sess.Classify(ClassifyInput{Graph: g1})
					if err != nil {
						errs <- err
						return
					}
					if len(dets) != len(ref) {
						errs <- fmt.Errorf("full pass returned %d detections, want %d", len(dets), len(ref))
						return
					}
					for j := range dets {
						if dets[j] != ref[j] {
							errs <- fmt.Errorf("full pass diverged at %d: %+v vs %+v", j, dets[j], ref[j])
							return
						}
					}
				} else {
					dets, rep, err := sess.ClassifyDelta(ClassifyInput{Graph: g2, Domains: dirty})
					if err != nil {
						errs <- err
						return
					}
					if len(dets)+len(rep.Missing) != len(dirty) {
						errs <- fmt.Errorf("delta pass: %d scored + %d missing != %d targets",
							len(dets), len(rep.Missing), len(dirty))
						return
					}
					for _, d := range dets {
						if d.Score < 0 || d.Score > 1 {
							errs <- fmt.Errorf("delta score %v out of [0,1]", d.Score)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
