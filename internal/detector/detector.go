// Package detector defines the plugin interface the classify pass
// drives. Every detection model — the paper's random-forest feature
// classifier, the incremental belief-propagation baseline, and any
// future scenario-specific model (tunneling, DGA) — implements
// Detector and registers a factory under a stable name; the daemon
// enables a set of them with -detectors=forest,lbp and the server runs
// each enabled plugin once per classify pass, fusing their verdicts.
package detector

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"segugio/internal/activity"
	"segugio/internal/core"
	"segugio/internal/graph"
	"segugio/internal/pdns"
)

// Pass is one classify pass's input: the labeled live snapshot plus the
// delta since the caller's previous pass, exactly as returned by
// SnapshotSince(Since).
type Pass struct {
	Graph   *graph.Graph
	Version uint64
	// Since is the version of the previous pass this delta is relative
	// to (0 for the first pass).
	Since uint64
	Delta graph.Delta

	Activity *activity.Log
	Abuse    *pdns.AbuseIndex
}

// Score is one scored domain.
type Score struct {
	Domain string
	Score  float64
}

// Stats describes how a detector executed its pass.
type Stats struct {
	// Mode is detector-specific: the forest reports "full" or "delta",
	// the LBP engine "full", "residual", or "cached".
	Mode string
	// Iterations/Updates/PeakQueue carry propagation accounting for
	// graph-inference detectors; zero elsewhere.
	Iterations int
	Updates    int
	PeakQueue  int
}

// Result is one detector's output for a pass.
type Result struct {
	// Scores holds the scored targets, in the detector's native order.
	Scores []Score
	// Missing lists requested targets the detector could not score.
	Missing []string
	// Escalated reports that the pass abandoned its incremental state
	// and recomputed from scratch for a reason the caller must observe
	// (e.g. the forest's prune signature shifted, invalidating cached
	// scores of untouched domains).
	Escalated bool
	Stats     Stats

	// Report carries the forest's full classify report when the
	// detector wraps core (nil for other plugins).
	Report *core.ClassifyReport
}

// Detector is one pluggable detection model. Prepare observes a pass
// (propagating incremental state forward); Score answers for targets
// against the prepared pass — nil targets means every unknown domain.
// Implementations are safe for sequential use by one driver; drivers
// serialize Prepare/Score per detector.
//
// Both pass-driving methods take the pass context and must return its
// error promptly once it is cancelled (the daemon bounds passes with
// -pass-deadline). A cancelled pass must leave the detector in a state
// from which the next Prepare can proceed — partial incremental state
// is discarded or re-escalated, never served as a fixed point.
type Detector interface {
	Name() string
	// Threshold is the score at or above which a domain counts as
	// detected by this plugin.
	Threshold() float64
	Prepare(ctx context.Context, p Pass) error
	Score(ctx context.Context, targets []string) (*Result, error)
	Close() error
}

// Config parameterizes plugin construction.
type Config struct {
	// Core is the trained forest pipeline (required by "forest").
	Core *core.Detector
	// Tuning holds the hot-reloadable per-plugin knobs.
	Tuning Tuning
}

// Factory builds one plugin instance.
type Factory func(cfg Config) (Detector, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register installs a plugin factory under name. Registering a
// duplicate name panics: plugin names are part of the daemon's flag and
// metrics surface.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("detector: duplicate plugin %q", name))
	}
	registry[name] = f
}

// Names lists the registered plugin names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New builds the named plugin.
func New(name string, cfg Config) (Detector, error) {
	regMu.RLock()
	f := registry[name]
	regMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("detector: unknown plugin %q (have %v)", name, Names())
	}
	return f(cfg)
}
