package detector_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"segugio/internal/belief"
	"segugio/internal/core"
	"segugio/internal/detector"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/ml"
)

// testGraphParts builds the classify fixture shared by the plugin
// tests: blacklisted C&C domains on distinct e2LDs, whitelisted mass,
// and unknown targets queried by the infected machines.
func testGraphParts(day int) (*graph.Builder, graph.LabelSources) {
	b := graph.NewBuilder("det", day, dnsutil.DefaultSuffixList())
	bl := intel.NewBlacklist()
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("c2.evil%d.net", i)
		bl.Add(intel.BlacklistEntry{Domain: name, Family: "fam", FirstListed: 0})
		for m := 0; m < 6; m++ {
			b.AddQuery(fmt.Sprintf("inf%02d", (i+m)%12), name)
		}
		b.AddResolution(name, dnsutil.IPv4(0x0a000000+uint32(i)))
	}
	var whitelisted []string
	for i := 0; i < 20; i++ {
		e2ld := fmt.Sprintf("good%d.com", i)
		whitelisted = append(whitelisted, e2ld)
		name := "www." + e2ld
		for m := 0; m < 8; m++ {
			b.AddQuery(fmt.Sprintf("clean%02d", (i+m)%25), name)
		}
		b.AddResolution(name, dnsutil.IPv4(0x0b000000+uint32(i)))
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("unk.gray%d.org", i)
		for m := 0; m < 5; m++ {
			b.AddQuery(fmt.Sprintf("inf%02d", (i+m)%12), name)
		}
		b.AddResolution(name, dnsutil.IPv4(0x0c000000+uint32(i)))
	}
	return b, graph.LabelSources{
		Blacklist: bl,
		Whitelist: intel.NewWhitelist(whitelisted),
		AsOf:      day,
	}
}

func trainedCore(t *testing.T, g *graph.Graph) *core.Detector {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.NewModel = func(benign, malware int) ml.Model {
		return ml.NewLogisticRegression(ml.LogisticRegressionConfig{Seed: 7})
	}
	det, _, err := core.Train(cfg, core.TrainInput{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func labeledSnapshot(b *graph.Builder, src graph.LabelSources) (*graph.Graph, graph.Delta) {
	g := b.Snapshot()
	g.ApplyLabels(src)
	b.MarkLabeled(g)
	names, exact := g.DirtyDomainNames()
	return g, graph.Delta{Exact: exact, Domains: names}
}

func TestRegistryNamesAndUnknown(t *testing.T) {
	names := detector.Names()
	want := map[string]bool{"forest": false, "lbp": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("registry %v is missing %q", names, n)
		}
	}
	if _, err := detector.New("no-such-plugin", detector.Config{}); err == nil {
		t.Fatal("unknown plugin must error")
	}
	if _, err := detector.New("forest", detector.Config{}); err == nil {
		t.Fatal("forest without a core detector must error")
	}
}

// TestForestPluginMatchesCoreClassify: the forest plugin's full pass
// must reproduce core.Detector.Classify byte-for-byte — the porting
// behind the plugin interface is a pure refactor.
func TestForestPluginMatchesCoreClassify(t *testing.T) {
	b, src := testGraphParts(42)
	g, delta := labeledSnapshot(b, src)
	det := trainedCore(t, g)

	ref, refReport, err := det.Classify(core.ClassifyInput{Graph: g})
	if err != nil {
		t.Fatal(err)
	}

	p, err := detector.New("forest", detector.Config{Core: det})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Name() != "forest" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Threshold() != det.Threshold() {
		t.Fatalf("Threshold = %v, want %v", p.Threshold(), det.Threshold())
	}
	if _, err := p.Score(context.Background(), nil); err == nil {
		t.Fatal("Score before Prepare must error")
	}
	if err := p.Prepare(context.Background(), detector.Pass{Graph: g, Version: 1, Delta: delta}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Score(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mode != "full" {
		t.Fatalf("mode = %q, want full", res.Stats.Mode)
	}
	if res.Escalated {
		t.Fatal("first pass cannot count as an escalation")
	}
	if len(res.Scores) != len(ref) {
		t.Fatalf("scored %d domains, core scored %d", len(res.Scores), len(ref))
	}
	for i, sc := range res.Scores {
		if sc.Domain != ref[i].Domain || sc.Score != ref[i].Score {
			t.Fatalf("score %d differs: %+v vs %+v", i, sc, ref[i])
		}
	}
	if res.Report == nil || res.Report.PruneSig != refReport.PruneSig {
		t.Fatalf("plugin report %+v does not match core report", res.Report)
	}

	// Delta pass on the same snapshot: targeted scores equal full scores,
	// served from the memoized plan.
	var targets []string
	for _, sc := range res.Scores {
		targets = append(targets, sc.Domain)
	}
	dres, err := p.Score(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Stats.Mode != "delta" {
		t.Fatalf("mode = %q, want delta", dres.Stats.Mode)
	}
	if dres.Escalated {
		t.Fatal("same-snapshot delta must not escalate")
	}
	if len(dres.Scores) != len(res.Scores) {
		t.Fatalf("delta scored %d, want %d", len(dres.Scores), len(res.Scores))
	}
	for i := range dres.Scores {
		if dres.Scores[i] != res.Scores[i] {
			t.Fatalf("delta score %d differs: %+v vs %+v", i, dres.Scores[i], res.Scores[i])
		}
	}
}

// TestLBPPluginScoresAndModes: the LBP plugin's full pass matches batch
// Propagate, its delta pass runs in residual mode, and targeted scoring
// reports missing names.
func TestLBPPluginScoresAndModes(t *testing.T) {
	b, src := testGraphParts(42)
	g1, delta1 := labeledSnapshot(b, src)

	p, err := detector.New("lbp", detector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Threshold() != detector.DefaultLBPThreshold {
		t.Fatalf("Threshold = %v, want %v", p.Threshold(), detector.DefaultLBPThreshold)
	}
	if err := p.Prepare(context.Background(), detector.Pass{Graph: g1, Version: 1, Since: 0, Delta: delta1}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Score(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mode != belief.ModeFull || !res.Escalated {
		t.Fatalf("first pass: mode=%q escalated=%v, want full escalation", res.Stats.Mode, res.Escalated)
	}

	ref, err := belief.Propagate(g1, belief.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for d := 0; d < g1.NumDomains(); d++ {
		if g1.DomainLabel(int32(d)) == graph.LabelUnknown {
			want[g1.DomainName(int32(d))] = ref.DomainBelief[d]
		}
	}
	if len(res.Scores) != len(want) {
		t.Fatalf("scored %d unknowns, want %d", len(res.Scores), len(want))
	}
	for _, sc := range res.Scores {
		if sc.Score != want[sc.Domain] {
			t.Fatalf("%s: plugin belief %v != batch belief %v", sc.Domain, sc.Score, want[sc.Domain])
		}
	}

	// Grow the graph: the next pass must be residual and targeted scores
	// must answer, with unseen names reported missing.
	b.AddQuery("inf03", "unk.gray0.org")
	g2, delta2 := labeledSnapshot(b, src)
	if err := p.Prepare(context.Background(), detector.Pass{Graph: g2, Version: 2, Since: 1, Delta: delta2}); err != nil {
		t.Fatal(err)
	}
	res2, err := p.Score(context.Background(), []string{"unk.gray0.org", "never.seen.example"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Mode != belief.ModeResidual || res2.Escalated {
		t.Fatalf("delta pass: mode=%q escalated=%v, want residual", res2.Stats.Mode, res2.Escalated)
	}
	if len(res2.Scores) != 1 || res2.Scores[0].Domain != "unk.gray0.org" {
		t.Fatalf("targeted scores = %+v", res2.Scores)
	}
	if len(res2.Missing) != 1 || res2.Missing[0] != "never.seen.example" {
		t.Fatalf("missing = %v", res2.Missing)
	}
}

func TestFuse(t *testing.T) {
	f := detector.Fuse(map[string]detector.Verdict{
		"forest": {Score: 0.3, Detected: false},
		"lbp":    {Score: 0.95, Detected: true},
	})
	if f.Score != 0.95 || !f.Detected {
		t.Fatalf("fused = %+v", f)
	}
	if f := detector.Fuse(nil); f.Score != 0 || f.Detected {
		t.Fatalf("empty fuse = %+v", f)
	}
}

func TestLoadTuning(t *testing.T) {
	base := detector.Tuning{LBP: belief.Config{MaxIterations: 20}}
	tun, err := detector.LoadTuning(strings.NewReader(
		`{"lbp": {"epsilon": 0.05, "threshold": 0.8}}`), base)
	if err != nil {
		t.Fatal(err)
	}
	if tun.LBP.Epsilon != 0.05 || tun.LBP.MaxIterations != 20 || tun.LBPThreshold != 0.8 {
		t.Fatalf("tuning = %+v", tun)
	}
	if _, err := detector.LoadTuning(strings.NewReader(`{"nope": 1}`), base); err == nil {
		t.Fatal("unknown fields must error")
	}
	if _, err := detector.LoadTuning(strings.NewReader(`{`), base); err == nil {
		t.Fatal("truncated JSON must error")
	}
}

// TestLBPPassGraphImmutability runs LBP passes concurrently with
// continued streaming into the builder the snapshots came from. Under
// -race this pins that an LBP pass neither mutates the snapshot it
// propagates over nor trips on ingest appending behind it; the belief
// values must be identical to a quiet re-propagation of the same
// snapshot.
func TestLBPPassGraphImmutability(t *testing.T) {
	b, src := testGraphParts(7)
	g1, delta1 := labeledSnapshot(b, src)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 5000; i++ {
			b.AddQuery(fmt.Sprintf("late%02d", i%9), fmt.Sprintf("stream%d.burst.net", i%50))
		}
	}()

	p, err := detector.New("lbp", detector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Prepare(context.Background(), detector.Pass{Graph: g1, Version: 1, Delta: delta1}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Score(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Keep propagating cold passes over the same snapshot until the
	// stream drains, so LBP reads and ingest writes genuinely overlap.
	for streaming := true; streaming; {
		select {
		case <-done:
			streaming = false
		default:
			fresh, err := detector.New("lbp", detector.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Prepare(context.Background(), detector.Pass{Graph: g1, Version: 1, Delta: delta1}); err != nil {
				t.Fatal(err)
			}
			if _, err := fresh.Score(context.Background(), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	wg.Wait()

	// The stream kept appending the whole time; the snapshot's beliefs
	// must match a propagation computed with the world quiet.
	ref, err := belief.Propagate(g1, belief.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range res.Scores {
		d, ok := g1.DomainIndex(sc.Domain)
		if !ok {
			t.Fatalf("%s vanished from the snapshot", sc.Domain)
		}
		if sc.Score != ref.DomainBelief[d] {
			t.Fatalf("%s: belief %v != quiet-world belief %v", sc.Domain, sc.Score, ref.DomainBelief[d])
		}
	}

	// And the pass must not have perturbed the snapshot itself.
	g1b := b.Snapshot()
	if g1b.NumDomains() <= g1.NumDomains() {
		t.Fatal("stream produced no growth; immutability was not exercised")
	}
	if !g1.Labeled() {
		t.Fatal("snapshot lost its labels")
	}
}
