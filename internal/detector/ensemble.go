package detector

// FusedName keys the ensemble verdict in per-detector maps.
const FusedName = "fused"

// Verdict is one detector's opinion of one domain.
type Verdict struct {
	Score    float64
	Detected bool
}

// Fuse combines per-detector verdicts for one domain into the ensemble
// verdict: the fused score is the maximum plugin score and the domain
// counts as detected if any plugin detected it. The map must not
// already contain FusedName.
func Fuse(verdicts map[string]Verdict) Verdict {
	var f Verdict
	for _, v := range verdicts {
		if v.Score > f.Score {
			f.Score = v.Score
		}
		f.Detected = f.Detected || v.Detected
	}
	return f
}
