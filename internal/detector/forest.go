package detector

import (
	"context"
	"errors"

	"segugio/internal/core"
)

func init() {
	Register("forest", newForest)
}

// forest ports the paper's feature classifier behind the plugin
// interface without behavior change: it drives a core.ClassifySession
// exactly as the server's score cache used to — nil targets run a full
// memoized Classify, named targets a ClassifyDelta against the frozen
// prune plan — and surfaces the session's escalation signal (a pruned
// recompute whose prune signature moved) through Result.Escalated.
type forest struct {
	det     *core.Detector
	session *core.ClassifySession

	pass     Pass
	havePass bool

	// lastSig is the prune signature of the last full preparation;
	// a recompute that lands on a different signature means domains no
	// delta touched may have changed pruning fate.
	lastSig uint64
	haveSig bool
}

func newForest(cfg Config) (Detector, error) {
	if cfg.Core == nil {
		return nil, errors.New("detector: forest requires a trained core detector")
	}
	return &forest{det: cfg.Core, session: cfg.Core.NewSession()}, nil
}

func (f *forest) Name() string       { return "forest" }
func (f *forest) Threshold() float64 { return f.det.Threshold() }
func (f *forest) Close() error       { return nil }

func (f *forest) Prepare(ctx context.Context, p Pass) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if p.Graph == nil || !p.Graph.Labeled() {
		return core.ErrUnlabeled
	}
	f.pass = p
	f.havePass = true
	return nil
}

func (f *forest) Score(ctx context.Context, targets []string) (*Result, error) {
	if !f.havePass {
		return nil, errors.New("detector: forest: Score before Prepare")
	}
	in := core.ClassifyInput{
		Ctx:      ctx,
		Graph:    f.pass.Graph,
		Activity: f.pass.Activity,
		Abuse:    f.pass.Abuse,
		Domains:  targets,
	}
	var (
		dets   []core.Detection
		report *core.ClassifyReport
		err    error
		mode   string
	)
	if targets == nil {
		dets, report, err = f.session.Classify(in)
		mode = "full"
	} else {
		dets, report, err = f.session.ClassifyDelta(in)
		mode = "delta"
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scores:  make([]Score, len(dets)),
		Missing: report.Missing,
		Stats:   Stats{Mode: mode},
		Report:  report,
	}
	for i, d := range dets {
		res.Scores[i] = Score{Domain: d.Domain, Score: d.Score}
	}
	// A pass that rebuilt its preparation on a shifted prune signature
	// invalidates every cached score, not just the targets.
	if !report.PrunedCached {
		res.Escalated = f.haveSig && report.PruneSig != f.lastSig
		f.lastSig = report.PruneSig
		f.haveSig = true
	}
	return res, nil
}
