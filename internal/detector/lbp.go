package detector

import (
	"context"
	"errors"

	"segugio/internal/belief"
	"segugio/internal/graph"
)

func init() {
	Register("lbp", newLBP)
}

// lbp scores domains by loopy belief propagation over the live
// machine–domain graph, carrying per-edge message state across passes
// so a pass whose delta is exact re-propagates only from the dirty
// domains. Unlike the forest it runs on the unpruned snapshot: pruning
// removes exactly the low-degree machines whose co-occurrence carries
// belief, and the ingest delta contract makes the incremental pass
// exact there (grown machines are always adjacent to dirty domains).
type lbp struct {
	eng       *belief.Engine
	threshold float64

	g    *graph.Graph
	last *belief.Result
}

func newLBP(cfg Config) (Detector, error) {
	t := cfg.Tuning.withDefaults()
	return &lbp{eng: belief.NewEngine(t.LBP), threshold: t.LBPThreshold}, nil
}

func (l *lbp) Name() string       { return "lbp" }
func (l *lbp) Threshold() float64 { return l.threshold }
func (l *lbp) Close() error       { return nil }

func (l *lbp) Prepare(ctx context.Context, p Pass) error {
	if p.Graph == nil || !p.Graph.Labeled() {
		return belief.ErrUnlabeledGraph
	}
	res, err := l.eng.RunContext(ctx, p.Graph, p.Version, p.Since, p.Delta)
	if err != nil {
		return err
	}
	l.g, l.last = p.Graph, res
	return nil
}

func (l *lbp) Score(ctx context.Context, targets []string) (*Result, error) {
	if l.last == nil {
		return nil, errors.New("detector: lbp: Score before Prepare")
	}
	res := &Result{
		Escalated: l.last.Mode == belief.ModeFull,
		Stats: Stats{
			Mode:       l.last.Mode,
			Iterations: l.last.Iterations,
			Updates:    l.last.Updates,
			PeakQueue:  l.last.PeakQueue,
		},
	}
	if targets == nil {
		for d := 0; d < l.g.NumDomains(); d++ {
			if l.g.DomainLabel(int32(d)) != graph.LabelUnknown {
				continue
			}
			res.Scores = append(res.Scores, Score{
				Domain: l.g.DomainName(int32(d)),
				Score:  l.last.DomainBelief[d],
			})
		}
		return res, nil
	}
	for _, name := range targets {
		d, ok := l.g.DomainIndex(name)
		if !ok {
			res.Missing = append(res.Missing, name)
			continue
		}
		res.Scores = append(res.Scores, Score{Domain: name, Score: l.last.DomainBelief[d]})
	}
	return res, nil
}
