package detector

import (
	"encoding/json"
	"fmt"
	"io"

	"segugio/internal/belief"
)

// DefaultLBPThreshold is the belief at or above which the LBP plugin
// reports a detection. Labeled-malware nodes hold beliefs near the
// 0.99 prior; unknown domains tightly coupled to infected machines
// approach it.
const DefaultLBPThreshold = 0.9

// Tuning holds the hot-reloadable plugin knobs. The zero value selects
// every default.
type Tuning struct {
	// LBP parameterizes the belief-propagation engine; zero fields
	// select the belief package defaults.
	LBP belief.Config
	// LBPThreshold is the LBP detection threshold (default
	// DefaultLBPThreshold).
	LBPThreshold float64
}

func (t Tuning) withDefaults() Tuning {
	if t.LBPThreshold <= 0 || t.LBPThreshold >= 1 {
		t.LBPThreshold = DefaultLBPThreshold
	}
	return t
}

// tuningFile is the on-disk JSON shape of -detector-config:
//
//	{"lbp": {"epsilon": 0.02, "damping": 0, "maxIterations": 15,
//	         "tolerance": 1e-4, "threshold": 0.9}}
//
// Absent fields keep their defaults.
type tuningFile struct {
	LBP struct {
		Epsilon       float64 `json:"epsilon"`
		Damping       float64 `json:"damping"`
		MaxIterations int     `json:"maxIterations"`
		Tolerance     float64 `json:"tolerance"`
		PriorMalware  float64 `json:"priorMalware"`
		Threshold     float64 `json:"threshold"`
	} `json:"lbp"`
}

// LoadTuning parses the -detector-config JSON. Values layer on top of
// base (flag-provided tuning), so the file only needs the knobs it
// changes.
func LoadTuning(r io.Reader, base Tuning) (Tuning, error) {
	var f tuningFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return base, fmt.Errorf("detector: tuning config: %w", err)
	}
	t := base
	if f.LBP.Epsilon != 0 {
		t.LBP.Epsilon = f.LBP.Epsilon
	}
	if f.LBP.Damping != 0 {
		t.LBP.Damping = f.LBP.Damping
	}
	if f.LBP.MaxIterations != 0 {
		t.LBP.MaxIterations = f.LBP.MaxIterations
	}
	if f.LBP.Tolerance != 0 {
		t.LBP.Tolerance = f.LBP.Tolerance
	}
	if f.LBP.PriorMalware != 0 {
		t.LBP.PriorMalware = f.LBP.PriorMalware
	}
	if f.LBP.Threshold != 0 {
		t.LBPThreshold = f.LBP.Threshold
	}
	return t, nil
}
