// Package dnsutil provides domain-name and IPv4 utilities used throughout
// Segugio: fully-qualified-domain normalization and validation, effective
// second-level-domain (e2LD) extraction against a public-suffix list
// augmented with dynamic-DNS zones, and compact IPv4 / "/24"-prefix handling.
//
// The paper computes the effective second-level domain of every queried name
// by leveraging the Mozilla Public Suffix List augmented with a custom list
// of dynamic-DNS provider zones (Section II-A1, footnote 2). This package
// embeds a curated subset of the public suffix list that covers the zones
// exercised by the synthetic workloads, and allows callers to register
// additional suffixes (e.g. dynamic-DNS zones discovered operationally).
package dnsutil

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by domain validation.
var (
	ErrEmptyDomain  = errors.New("dnsutil: empty domain name")
	ErrDomainTooLng = errors.New("dnsutil: domain name exceeds 253 characters")
	ErrBadLabel     = errors.New("dnsutil: invalid domain label")
)

// Normalize lowercases a domain name, strips a single trailing dot, and
// validates its syntax. It returns the canonical form used as a graph-node
// key everywhere else in the system.
func Normalize(domain string) (string, error) {
	d := strings.ToLower(strings.TrimSuffix(domain, "."))
	if d == "" {
		return "", ErrEmptyDomain
	}
	if len(d) > 253 {
		return "", ErrDomainTooLng
	}
	start := 0
	for i := 0; i <= len(d); i++ {
		if i != len(d) && d[i] != '.' {
			continue
		}
		label := d[start:i]
		if err := checkLabel(label); err != nil {
			return "", fmt.Errorf("%w: %q in %q", err, label, d)
		}
		start = i + 1
	}
	return d, nil
}

// checkLabel validates a single DNS label (letters, digits, hyphen and
// underscore; no leading/trailing hyphen; 1..63 bytes). Underscores are
// accepted because they appear in real DNS traffic (e.g. DKIM, SRV owners).
func checkLabel(label string) error {
	if len(label) == 0 || len(label) > 63 {
		return ErrBadLabel
	}
	if label[0] == '-' || label[len(label)-1] == '-' {
		return ErrBadLabel
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case 'a' <= c && c <= 'z':
		case '0' <= c && c <= '9':
		case c == '-' || c == '_':
		default:
			return ErrBadLabel
		}
	}
	return nil
}

// Labels splits a normalized domain into its dot-separated labels.
func Labels(domain string) []string {
	if domain == "" {
		return nil
	}
	return strings.Split(domain, ".")
}

// SuffixList answers "is this a public suffix?" queries and extracts
// effective second-level domains. The zero value is not usable; construct
// with NewSuffixList or DefaultSuffixList.
//
// Matching follows the public-suffix-list algorithm: exact rules
// ("co.uk"), wildcard rules ("*.compute.example"), and exception rules
// ("!city.kawasaki.jp") that negate a wildcard for one name. Exceptions
// prevail over everything; otherwise the longest matching rule wins.
type SuffixList struct {
	exact      map[string]struct{}
	wildcard   map[string]struct{} // key is the parent of the "*": "compute.example"
	exceptions map[string]struct{}
}

// NewSuffixList builds a suffix list from explicit rules. Rules beginning
// with "*." are wildcard rules, rules beginning with "!" are exceptions;
// all others are exact. Rules are assumed to be already lowercase.
func NewSuffixList(rules []string) *SuffixList {
	s := &SuffixList{
		exact:      make(map[string]struct{}, len(rules)),
		wildcard:   make(map[string]struct{}),
		exceptions: make(map[string]struct{}),
	}
	for _, r := range rules {
		s.Add(r)
	}
	return s
}

// Add registers an additional suffix rule. It is how deployments fold in
// custom dynamic-DNS zones, mirroring the paper's augmented suffix list.
func (s *SuffixList) Add(rule string) {
	if rest, ok := strings.CutPrefix(rule, "!"); ok {
		s.exceptions[rest] = struct{}{}
		return
	}
	if rest, ok := strings.CutPrefix(rule, "*."); ok {
		s.wildcard[rest] = struct{}{}
		return
	}
	s.exact[rule] = struct{}{}
}

// Len reports the number of rules in the list.
func (s *SuffixList) Len() int { return len(s.exact) + len(s.wildcard) + len(s.exceptions) }

// PublicSuffix returns the longest public suffix of domain, or "" if no rule
// matches. domain must be normalized.
func (s *SuffixList) PublicSuffix(domain string) string {
	labels := Labels(domain)
	// Exception rules prevail over every other rule: the public suffix is
	// the exception with its leftmost label removed.
	if len(s.exceptions) > 0 {
		for i := 0; i < len(labels)-1; i++ {
			cand := strings.Join(labels[i:], ".")
			if _, ok := s.exceptions[cand]; ok {
				return strings.Join(labels[i+1:], ".")
			}
		}
	}
	// Scan from the longest candidate suffix to the shortest so the longest
	// rule wins, then fall back to the TLD-as-suffix default rule.
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		if _, ok := s.exact[cand]; ok {
			return cand
		}
		// A wildcard rule "*.foo" makes "<anything>.foo" a public suffix.
		if i+1 < len(labels) {
			parent := strings.Join(labels[i+1:], ".")
			if _, ok := s.wildcard[parent]; ok {
				return cand
			}
		}
	}
	// Default rule: the bare TLD is a public suffix.
	return labels[len(labels)-1]
}

// E2LD returns the effective second-level domain of a normalized domain
// name: the public suffix plus one label. If the domain is itself a public
// suffix (or a bare TLD), E2LD returns the domain unchanged.
func (s *SuffixList) E2LD(domain string) string {
	suffix := s.PublicSuffix(domain)
	if len(suffix) >= len(domain) {
		return domain
	}
	rest := domain[:len(domain)-len(suffix)-1] // strip ".suffix"
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		return rest[i+1:] + "." + suffix
	}
	return rest + "." + suffix
}

// defaultRules is a curated subset of the Mozilla Public Suffix List plus
// common dynamic-DNS provider zones, sufficient for the synthetic workloads
// and representative of a production deployment's augmented list.
var defaultRules = []string{
	// Generic TLDs (covered by the default rule too; listed for clarity).
	"com", "net", "org", "info", "biz", "edu", "gov", "mil", "int",
	// Country-code second-level registrations.
	"co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
	"com.br", "net.br", "org.br", "gov.br",
	"co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
	"com.cn", "net.cn", "org.cn", "gov.cn",
	"com.au", "net.au", "org.au",
	"co.kr", "or.kr", "ne.kr",
	"co.in", "net.in", "org.in",
	"com.ru", "net.ru", "org.ru",
	"com.tr", "net.tr", "org.tr",
	"co.za", "org.za",
	"com.mx", "org.mx",
	"com.ar", "net.ar",
	// Wildcard-style hosting zones.
	"*.compute.amazonaws.example",
	// Dynamic-DNS provider zones (the paper's custom augmentation). These
	// make "user.dyndns.example" an e2LD of its own, so per-user subdomains
	// are not collapsed into the provider's zone.
	"dyndns.example", "no-ip.example", "duckdns.example",
	"dynv6.example", "afraid-dns.example",
}

// DefaultSuffixList returns a SuffixList loaded with the embedded rules.
// Each call returns a fresh list so callers may Add to it independently.
func DefaultSuffixList() *SuffixList {
	return NewSuffixList(defaultRules)
}
