package dnsutil

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    string
		wantErr error
	}{
		{name: "simple", in: "example.com", want: "example.com"},
		{name: "uppercase", in: "EXAMPLE.Com", want: "example.com"},
		{name: "trailing dot", in: "example.com.", want: "example.com"},
		{name: "subdomain", in: "a.b.c.example.com", want: "a.b.c.example.com"},
		{name: "digits and hyphen", in: "a-1.x0.net", want: "a-1.x0.net"},
		{name: "underscore label", in: "_dmarc.example.com", want: "_dmarc.example.com"},
		{name: "empty", in: "", wantErr: ErrEmptyDomain},
		{name: "only dot", in: ".", wantErr: ErrEmptyDomain},
		{name: "empty label", in: "a..com", wantErr: ErrBadLabel},
		{name: "leading hyphen", in: "-a.com", wantErr: ErrBadLabel},
		{name: "trailing hyphen", in: "a-.com", wantErr: ErrBadLabel},
		{name: "bad char", in: "a b.com", wantErr: ErrBadLabel},
		{name: "label too long", in: strings.Repeat("a", 64) + ".com", wantErr: ErrBadLabel},
		{name: "name too long", in: strings.Repeat("a.", 127) + "toolongdomain", wantErr: ErrDomainTooLng},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Normalize(tt.in)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("Normalize(%q) error = %v, want %v", tt.in, err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Normalize(%q) unexpected error: %v", tt.in, err)
			}
			if got != tt.want {
				t.Fatalf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(raw string) bool {
		d, err := Normalize(raw)
		if err != nil {
			return true // invalid input: nothing to check
		}
		d2, err := Normalize(d)
		return err == nil && d2 == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabels(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"example.com", 2},
		{"a.b.c.d", 4},
		{"com", 1},
		{"", 0},
	}
	for _, tt := range tests {
		if got := Labels(tt.in); len(got) != tt.want {
			t.Errorf("Labels(%q) has %d labels, want %d", tt.in, len(got), tt.want)
		}
	}
}

func TestE2LD(t *testing.T) {
	s := DefaultSuffixList()
	tests := []struct {
		in, want string
	}{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.com", "example.com"},
		{"www.bbc.co.uk", "bbc.co.uk"},
		{"bbc.co.uk", "bbc.co.uk"},
		{"sites.uol.com.br", "uol.com.br"},
		{"x.y.gov.uk", "y.gov.uk"},
		{"foo.co.jp", "foo.co.jp"},
		// Dynamic-DNS zones: the per-user subdomain is its own e2LD.
		{"alice.dyndns.example", "alice.dyndns.example"},
		{"c2.alice.dyndns.example", "alice.dyndns.example"},
		// Wildcard rule.
		{"host.eu-1.compute.amazonaws.example", "host.eu-1.compute.amazonaws.example"},
		{"a.host.eu-1.compute.amazonaws.example", "host.eu-1.compute.amazonaws.example"},
		// Public suffix itself.
		{"co.uk", "co.uk"},
		{"com", "com"},
		// Unknown TLD falls back to the default rule.
		{"foo.bar.unknowntld", "bar.unknowntld"},
	}
	for _, tt := range tests {
		if got := s.E2LD(tt.in); got != tt.want {
			t.Errorf("E2LD(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestE2LDIdempotent(t *testing.T) {
	s := DefaultSuffixList()
	for _, d := range []string{"a.b.example.com", "x.bbc.co.uk", "c2.alice.dyndns.example", "com"} {
		e := s.E2LD(d)
		if again := s.E2LD(e); again != e {
			t.Errorf("E2LD not idempotent: E2LD(%q)=%q but E2LD(%q)=%q", d, e, e, again)
		}
	}
}

func TestSuffixListAdd(t *testing.T) {
	s := NewSuffixList([]string{"com"})
	if got := s.E2LD("user.blogs.example.com"); got != "example.com" {
		t.Fatalf("before Add: E2LD = %q, want example.com", got)
	}
	s.Add("blogs.example.com")
	if got := s.E2LD("user.blogs.example.com"); got != "user.blogs.example.com" {
		t.Fatalf("after Add: E2LD = %q, want user.blogs.example.com", got)
	}
}

func TestSuffixListLen(t *testing.T) {
	s := NewSuffixList([]string{"com", "co.uk", "*.cdn.example"})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestPublicSuffixLongestRuleWins(t *testing.T) {
	s := NewSuffixList([]string{"uk", "co.uk"})
	if got := s.PublicSuffix("www.bbc.co.uk"); got != "co.uk" {
		t.Fatalf("PublicSuffix = %q, want co.uk", got)
	}
}
