package dnsutil

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address packed into a uint32 in network (big-endian)
// order. The compact representation matters: the passive-DNS database and
// graph annotations hold tens of millions of addresses.
type IPv4 uint32

// ErrBadIPv4 is returned by ParseIPv4 for malformed dotted-quad strings.
var ErrBadIPv4 = errors.New("dnsutil: invalid IPv4 address")

// ParseIPv4 parses a dotted-quad IPv4 address.
func ParseIPv4(s string) (IPv4, error) {
	var ip uint32
	rest := s
	for i := 0; i < 4; i++ {
		part := rest
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("%w: %q", ErrBadIPv4, s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("%w: %q", ErrBadIPv4, s)
		}
		ip = ip<<8 | uint32(n)
	}
	return IPv4(ip), nil
}

// MakeIPv4 assembles an address from its four octets.
func MakeIPv4(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	return string(ip.Append(nil))
}

// Append appends the dotted-quad rendering to b without allocating —
// the hot-path form the logio writers use to build whole lines in one
// reusable buffer.
func (ip IPv4) Append(b []byte) []byte {
	b = strconv.AppendUint(b, uint64(byte(ip>>24)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>16)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>8)), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, uint64(byte(ip)), 10)
}

// Prefix24 is a /24 network prefix: an IPv4 address with the low octet
// cleared. The paper's IP-abuse features (F3) aggregate resolved addresses
// at /24 granularity to capture reuse of bulletproof hosting ranges.
type Prefix24 uint32

// Prefix24Of returns the /24 prefix containing ip.
func Prefix24Of(ip IPv4) Prefix24 { return Prefix24(uint32(ip) &^ 0xff) }

// Contains reports whether ip falls inside the prefix.
func (p Prefix24) Contains(ip IPv4) bool { return Prefix24Of(ip) == p }

// String renders the prefix in CIDR form.
func (p Prefix24) String() string { return IPv4(p).String() + "/24" }
