package dnsutil

import (
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	tests := []struct {
		in      string
		want    IPv4
		wantErr bool
	}{
		{in: "0.0.0.0", want: 0},
		{in: "1.2.3.4", want: MakeIPv4(1, 2, 3, 4)},
		{in: "255.255.255.255", want: 0xffffffff},
		{in: "192.168.0.1", want: MakeIPv4(192, 168, 0, 1)},
		{in: "256.1.1.1", wantErr: true},
		{in: "1.2.3", wantErr: true},
		{in: "1.2.3.4.5", wantErr: true},
		{in: "a.b.c.d", wantErr: true},
		{in: "01.2.3.4", wantErr: true}, // leading zero rejected
		{in: "", wantErr: true},
		{in: "1.2.3.-4", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseIPv4(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseIPv4(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseIPv4(%q) unexpected error: %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseIPv4(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4(v)
		parsed, err := ParseIPv4(ip.String())
		return err == nil && parsed == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefix24(t *testing.T) {
	ip := MakeIPv4(10, 20, 30, 40)
	p := Prefix24Of(ip)
	if got := p.String(); got != "10.20.30.0/24" {
		t.Fatalf("Prefix24.String() = %q, want 10.20.30.0/24", got)
	}
	if !p.Contains(MakeIPv4(10, 20, 30, 255)) {
		t.Error("prefix should contain 10.20.30.255")
	}
	if p.Contains(MakeIPv4(10, 20, 31, 0)) {
		t.Error("prefix should not contain 10.20.31.0")
	}
}

func TestPrefix24OfProperty(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4(v)
		p := Prefix24Of(ip)
		// The prefix always contains its member, and clearing the low octet
		// is idempotent.
		return p.Contains(ip) && Prefix24Of(IPv4(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
