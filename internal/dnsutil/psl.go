package dnsutil

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseSuffixList reads rules in the Mozilla Public Suffix List file
// format (publicsuffix.org/list): one rule per line, "//" comments, blank
// lines ignored, "*." wildcard rules, and "!" exception rules that negate
// a wildcard for a specific name ("!city.kawasaki.jp"). Production
// deployments load the real PSL (plus their dynamic-DNS zone additions)
// through this parser; DefaultSuffixList's embedded rules cover the
// synthetic workloads.
func ParseSuffixList(r io.Reader) (*SuffixList, error) {
	s := &SuffixList{
		exact:      make(map[string]struct{}),
		wildcard:   make(map[string]struct{}),
		exceptions: make(map[string]struct{}),
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		// The official list terminates rules at the first whitespace.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		rule := strings.ToLower(line)
		bare := strings.TrimPrefix(strings.TrimPrefix(rule, "!"), "*.")
		if _, err := Normalize(bare); err != nil {
			return nil, fmt.Errorf("dnsutil: suffix list line %d: %w", lineNo, err)
		}
		s.Add(rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dnsutil: suffix list: %w", err)
	}
	return s, nil
}
