package dnsutil

import (
	"strings"
	"testing"
)

const samplePSL = `
// ===BEGIN ICANN DOMAINS===
com
uk
co.uk

// Japan has wildcard geo zones with city exceptions.
jp
*.kawasaki.jp
!city.kawasaki.jp

// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
blogspot.example
// trailing-comment style entries
dyndns.example  registrar remark
`

func TestParseSuffixList(t *testing.T) {
	s, err := ParseSuffixList(strings.NewReader(samplePSL))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		domain, wantE2LD string
	}{
		{"www.bbc.co.uk", "bbc.co.uk"},
		{"example.com", "example.com"},
		// Wildcard: anything.kawasaki.jp is a public suffix.
		{"site.foo.kawasaki.jp", "site.foo.kawasaki.jp"},
		{"deep.site.foo.kawasaki.jp", "site.foo.kawasaki.jp"},
		// Exception: city.kawasaki.jp is registrable despite the wildcard.
		{"city.kawasaki.jp", "city.kawasaki.jp"},
		{"www.city.kawasaki.jp", "city.kawasaki.jp"},
		// Private-section zones behave like any suffix.
		{"alice.blogspot.example", "alice.blogspot.example"},
		{"c2.alice.dyndns.example", "alice.dyndns.example"},
	}
	for _, tt := range tests {
		if got := s.E2LD(tt.domain); got != tt.wantE2LD {
			t.Errorf("E2LD(%q) = %q, want %q", tt.domain, got, tt.wantE2LD)
		}
	}
}

func TestParseSuffixListPublicSuffixException(t *testing.T) {
	s, err := ParseSuffixList(strings.NewReader(samplePSL))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PublicSuffix("www.city.kawasaki.jp"); got != "kawasaki.jp" {
		t.Fatalf("PublicSuffix = %q, want kawasaki.jp (exception strips leftmost label)", got)
	}
	if got := s.PublicSuffix("other.kawasaki.jp"); got != "other.kawasaki.jp" {
		t.Fatalf("PublicSuffix = %q, want other.kawasaki.jp (wildcard)", got)
	}
}

func TestParseSuffixListRejectsGarbage(t *testing.T) {
	// Note the official format truncates rules at the first whitespace,
	// so the invalid part must be in the first token.
	if _, err := ParseSuffixList(strings.NewReader("b@d..rule\n")); err == nil {
		t.Fatal("garbage rule must fail")
	}
}

func TestParseSuffixListEmpty(t *testing.T) {
	s, err := ParseSuffixList(strings.NewReader("// only comments\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	// Default rule still applies.
	if got := s.E2LD("a.b.c"); got != "b.c" {
		t.Fatalf("E2LD with default rule = %q, want b.c", got)
	}
}

func TestSuffixListCaseInsensitiveRules(t *testing.T) {
	s, err := ParseSuffixList(strings.NewReader("CO.UK\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.E2LD("www.bbc.co.uk"); got != "bbc.co.uk" {
		t.Fatalf("E2LD = %q, want bbc.co.uk", got)
	}
}
