package eval

import (
	"math/rand"
	"sort"
)

// BootstrapTPRCI estimates a confidence interval for TPR at a fixed FP
// budget by case resampling: the (scores, labels) pairs are resampled
// with replacement iters times, the ROC is rebuilt each time, and the
// [lo, hi] quantiles of the TPR@maxFPR distribution are returned.
//
// The paper reads single operating points off its curves; with the
// smaller test sets of a scaled-down reproduction, the interval says how
// much a headline number can be trusted.
func BootstrapTPRCI(scores []float64, labels []int, maxFPR float64, iters int, confidence float64, seed int64) (lo, hi float64, err error) {
	if iters <= 0 {
		iters = 200
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	// Validate once on the full sample.
	if _, err := ROC(scores, labels); err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(scores)
	tprs := make([]float64, 0, iters)
	sampleScores := make([]float64, n)
	sampleLabels := make([]int, n)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			sampleScores[i] = scores[j]
			sampleLabels[i] = labels[j]
		}
		curve, err := ROC(sampleScores, sampleLabels)
		if err != nil {
			// A resample may hold a single class; skip it.
			continue
		}
		tprs = append(tprs, TPRAtFPR(curve, maxFPR))
	}
	if len(tprs) == 0 {
		return 0, 0, ErrOneClass
	}
	sort.Float64s(tprs)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(len(tprs)))
	hiIdx := int((1 - alpha) * float64(len(tprs)))
	if hiIdx >= len(tprs) {
		hiIdx = len(tprs) - 1
	}
	return tprs[loIdx], tprs[hiIdx], nil
}
