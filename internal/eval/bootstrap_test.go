package eval

import (
	"math/rand"
	"testing"
)

func TestBootstrapTPRCI(t *testing.T) {
	// A noisy-but-decent classifier: positives ~N(1.5,1), negatives ~N(0,1).
	rng := rand.New(rand.NewSource(5))
	n := 2000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		if i%4 == 0 {
			labels[i] = 1
			scores[i] = rng.NormFloat64() + 1.5
		} else {
			scores[i] = rng.NormFloat64()
		}
	}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	point := TPRAtFPR(curve, 0.05)
	lo, hi, err := BootstrapTPRCI(scores, labels, 0.05, 300, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= hi) {
		t.Fatalf("interval inverted: [%v, %v]", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("interval out of [0,1]: [%v, %v]", lo, hi)
	}
	// The point estimate should be inside (or very close to) the interval.
	if point < lo-0.05 || point > hi+0.05 {
		t.Fatalf("point %v far outside CI [%v, %v]", point, lo, hi)
	}
	// A 2000-sample CI at 5%% FP should be reasonably tight.
	if hi-lo > 0.25 {
		t.Fatalf("CI too wide: [%v, %v]", lo, hi)
	}
}

func TestBootstrapTPRCIErrors(t *testing.T) {
	if _, _, err := BootstrapTPRCI(nil, nil, 0.01, 10, 0.95, 1); err == nil {
		t.Fatal("empty input must error")
	}
	if _, _, err := BootstrapTPRCI([]float64{1, 2}, []int{1, 1}, 0.01, 10, 0.95, 1); err == nil {
		t.Fatal("single-class input must error")
	}
}

func TestBootstrapTPRCIDeterministic(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1, 0.6, 0.4}
	labels := []int{1, 1, 1, 0, 0, 0, 0, 1}
	lo1, hi1, err := BootstrapTPRCI(scores, labels, 0.2, 100, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapTPRCI(scores, labels, 0.2, 100, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("same seed must reproduce the interval")
	}
}
