package eval

import (
	"errors"
	"math/rand"
	"sort"
)

// FamilyFolds partitions malware domains into k folds by malware family,
// never splitting a family across folds, with roughly the same number of
// families per fold (the paper's "balanced sets of malware families",
// Section IV-C). Input maps family tag -> its domains. Families are
// shuffled deterministically by seed, then dealt round-robin in
// descending-size order so domain counts stay roughly even too.
func FamilyFolds(byFamily map[string][]string, k int, seed int64) ([][]string, error) {
	if k <= 1 {
		return nil, errors.New("eval: need at least 2 folds")
	}
	if len(byFamily) < k {
		return nil, errors.New("eval: fewer families than folds")
	}
	type fam struct {
		name    string
		domains []string
	}
	fams := make([]fam, 0, len(byFamily))
	for name, domains := range byFamily {
		fams = append(fams, fam{name: name, domains: domains})
	}
	// Deterministic order independent of map iteration.
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(fams), func(i, j int) { fams[i], fams[j] = fams[j], fams[i] })
	// Largest families first, then deal each to the currently smallest
	// fold: balances both family counts and domain counts.
	sort.SliceStable(fams, func(a, b int) bool { return len(fams[a].domains) > len(fams[b].domains) })

	folds := make([][]string, k)
	famCount := make([]int, k)
	domCount := make([]int, k)
	for _, f := range fams {
		best := 0
		for i := 1; i < k; i++ {
			if famCount[i] < famCount[best] ||
				(famCount[i] == famCount[best] && domCount[i] < domCount[best]) {
				best = i
			}
		}
		folds[best] = append(folds[best], f.domains...)
		famCount[best]++
		domCount[best] += len(f.domains)
	}
	return folds, nil
}
