package eval

// Confusion is a binary confusion matrix at a fixed threshold.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse counts the confusion matrix of scores against labels at the
// given threshold (score >= threshold predicts malware).
func Confuse(scores []float64, labels []int, threshold float64) Confusion {
	var c Confusion
	for i, s := range scores {
		pred := s >= threshold
		pos := labels[i] == 1
		switch {
		case pred && pos:
			c.TP++
		case pred && !pos:
			c.FP++
		case !pred && pos:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision is TP / (TP + FP); zero when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN) — the true-positive rate.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR is FP / (FP + TN) — the false-positive rate.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
