package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfuse(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.4, 0.3, 0.7, 0.1}
	labels := []int{1, 0, 1, 0, 1, 0}
	c := Confuse(scores, labels, 0.5)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %v, want 2/3", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall = %v, want 2/3 (2 of 3 positives found)", got)
	}
	if got := c.FPR(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("FPR = %v, want 1/3", got)
	}
	// Precision == recall == 2/3, so F1 == 2/3 too.
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v, want 2/3", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.FPR() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must yield zero metrics, not NaN")
	}
}

// Property: the confusion matrix at a threshold matches the ROC's
// operating point at the same threshold.
func TestConfusionMatchesROC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		scores := make([]float64, n)
		labels := make([]int, n)
		labels[0], labels[1] = 0, 1
		for i := range scores {
			scores[i] = float64(rng.Intn(50)) / 50 // ties on purpose
			if i > 1 {
				labels[i] = rng.Intn(2)
			}
		}
		curve, err := ROC(scores, labels)
		if err != nil {
			return false
		}
		threshold := scores[rng.Intn(n)]
		c := Confuse(scores, labels, threshold)
		fpr, tpr := OperatingPoint(curve, threshold)
		return math.Abs(c.FPR()-fpr) < 1e-12 && math.Abs(c.Recall()-tpr) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
