package eval

import (
	"fmt"
	"strings"
)

// RenderASCII draws the ROC curve in a terminal-friendly grid, zoomed
// into FPR <= maxFPR the way the paper's figures zoom into [0, 0.01].
// Width and height are the plot's interior dimensions in characters.
func RenderASCII(curve []ROCPoint, width, height int, maxFPR float64) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	if maxFPR <= 0 {
		maxFPR = 0.01
	}

	// tprAt interpolates the curve's TPR at a given FPR (step function:
	// the best TPR achievable at or below that FPR).
	tprAt := func(fpr float64) float64 {
		best := 0.0
		for _, p := range curve {
			if p.FPR <= fpr && p.TPR > best {
				best = p.TPR
			}
		}
		return best
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		fpr := maxFPR * float64(c) / float64(width-1)
		tpr := tprAt(fpr)
		r := int(tpr * float64(height-1))
		if r >= height {
			r = height - 1
		}
		row := height - 1 - r
		grid[row][c] = '*'
	}

	var b strings.Builder
	fmt.Fprintf(&b, "TPR 100%% +%s\n", strings.Repeat("-", width))
	for r, line := range grid {
		label := "         |"
		switch r {
		case height / 2:
			label = "     50% |"
		}
		b.WriteString(label)
		b.Write(line)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "      0%% +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "          0%%%sFPR %.2f%%\n",
		strings.Repeat(" ", max(1, width-12)), maxFPR*100)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
