// Package eval provides the evaluation machinery behind every figure in
// the paper: ROC curves over classifier scores, areas under (partial)
// curves, TP-rate lookups at fixed FP budgets, deployment-threshold
// selection, and the family-balanced fold construction of the
// cross-malware-family experiment (Section IV-C).
package eval

import (
	"errors"
	"math"
	"sort"
)

// ROCPoint is one operating point of a detector: at Threshold (classify
// malware when score >= Threshold), the detector attains the given
// false-positive and true-positive rates.
type ROCPoint struct {
	Threshold float64
	FPR       float64
	TPR       float64
}

// Errors returned by curve construction.
var (
	ErrNoScores  = errors.New("eval: no scores")
	ErrOneClass  = errors.New("eval: need both positive and negative examples")
	ErrMismatch  = errors.New("eval: scores and labels differ in length")
	ErrEmptyROC  = errors.New("eval: empty ROC curve")
	ErrBadLabels = errors.New("eval: labels must be 0 or 1")
)

// ROC builds the full ROC curve from scores and binary labels (1 =
// malware). Tied scores collapse into a single operating point. The curve
// is returned from the strictest threshold (FPR 0-ish) to the loosest
// (FPR 1), and always ends with the all-positive point (0 threshold).
func ROC(scores []float64, labels []int) ([]ROCPoint, error) {
	if len(scores) == 0 {
		return nil, ErrNoScores
	}
	if len(scores) != len(labels) {
		return nil, ErrMismatch
	}
	var pos, neg int
	for _, l := range labels {
		switch l {
		case 1:
			pos++
		case 0:
			neg++
		default:
			return nil, ErrBadLabels
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrOneClass
	}

	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var curve []ROCPoint
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		threshold := scores[idx[i]]
		// Consume the whole tie group.
		for i < len(idx) && scores[idx[i]] == threshold {
			if labels[idx[i]] == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, ROCPoint{
			Threshold: threshold,
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
		})
	}
	return curve, nil
}

// AUC computes the area under the curve by trapezoidal integration,
// anchored at (0,0) and (1,1).
func AUC(curve []ROCPoint) (float64, error) {
	if len(curve) == 0 {
		return 0, ErrEmptyROC
	}
	area := 0.0
	prevFPR, prevTPR := 0.0, 0.0
	for _, p := range curve {
		area += (p.FPR - prevFPR) * (p.TPR + prevTPR) / 2
		prevFPR, prevTPR = p.FPR, p.TPR
	}
	area += (1 - prevFPR) * (1 + prevTPR) / 2
	return area, nil
}

// PartialAUC integrates the curve only up to maxFPR and normalizes by
// maxFPR, so a perfect low-FP detector scores 1. The paper's figures all
// zoom into FPR <= 0.01; this is the matching scalar summary.
func PartialAUC(curve []ROCPoint, maxFPR float64) (float64, error) {
	if len(curve) == 0 {
		return 0, ErrEmptyROC
	}
	if maxFPR <= 0 {
		return 0, errors.New("eval: maxFPR must be positive")
	}
	area := 0.0
	prevFPR, prevTPR := 0.0, 0.0
	for _, p := range curve {
		if p.FPR >= maxFPR {
			// Interpolate the final sliver.
			if p.FPR > prevFPR {
				frac := (maxFPR - prevFPR) / (p.FPR - prevFPR)
				tprAt := prevTPR + frac*(p.TPR-prevTPR)
				area += (maxFPR - prevFPR) * (prevTPR + tprAt) / 2
			}
			prevFPR = maxFPR
			break
		}
		area += (p.FPR - prevFPR) * (p.TPR + prevTPR) / 2
		prevFPR, prevTPR = p.FPR, p.TPR
	}
	if prevFPR < maxFPR {
		area += (maxFPR - prevFPR) * prevTPR // flat extension at final TPR
	}
	return area / maxFPR, nil
}

// TPRAtFPR returns the best true-positive rate achievable with a
// false-positive rate at most maxFPR.
func TPRAtFPR(curve []ROCPoint, maxFPR float64) float64 {
	best := 0.0
	for _, p := range curve {
		if p.FPR <= maxFPR && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}

// ThresholdAtFPR returns the lowest threshold whose false-positive rate
// stays within maxFPR — the paper's deployment-threshold tuning ("we set
// the detection threshold to obtain <= 0.1% false positives"). Falls back
// to the strictest threshold when even it exceeds the budget.
func ThresholdAtFPR(curve []ROCPoint, maxFPR float64) float64 {
	best := math.Inf(1)
	found := false
	for _, p := range curve {
		if p.FPR <= maxFPR && (math.IsInf(best, 1) || p.Threshold < best) {
			best = p.Threshold
			found = true
		}
	}
	if !found && len(curve) > 0 {
		return curve[0].Threshold + 1e-12 // stricter than everything observed
	}
	return best
}

// OperatingPoint returns the realized (FPR, TPR) at a given threshold.
func OperatingPoint(curve []ROCPoint, threshold float64) (fpr, tpr float64) {
	for _, p := range curve {
		if p.Threshold >= threshold {
			fpr, tpr = p.FPR, p.TPR
		} else {
			break
		}
	}
	return fpr, tpr
}

// Downsample thins a curve to at most n points for reporting, always
// keeping the first and last.
func Downsample(curve []ROCPoint, n int) []ROCPoint {
	if n <= 0 || len(curve) <= n {
		out := make([]ROCPoint, len(curve))
		copy(out, curve)
		return out
	}
	out := make([]ROCPoint, 0, n)
	step := float64(len(curve)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, curve[int(float64(i)*step+0.5)])
	}
	return out
}
