package eval

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := AUC(curve)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1.0 {
		t.Fatalf("AUC = %v, want 1.0", auc)
	}
	if got := TPRAtFPR(curve, 0); got != 1.0 {
		t.Fatalf("TPR@FPR=0 = %v, want 1.0", got)
	}
}

func TestROCRandomScoresAUCHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	auc, _ := AUC(curve)
	if math.Abs(auc-0.5) > 0.02 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	curve, _ := ROC(scores, labels)
	auc, _ := AUC(curve)
	if auc != 0 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCTies(t *testing.T) {
	// All scores equal: single operating point (1,1).
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 1 {
		t.Fatalf("curve has %d points, want 1 for fully tied scores", len(curve))
	}
	if curve[0].FPR != 1 || curve[0].TPR != 1 {
		t.Fatalf("tied point = %+v, want FPR=TPR=1", curve[0])
	}
	auc, _ := AUC(curve)
	if auc != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC(nil, nil); !errors.Is(err, ErrNoScores) {
		t.Fatalf("err = %v, want ErrNoScores", err)
	}
	if _, err := ROC([]float64{1}, []int{1, 0}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
	if _, err := ROC([]float64{1, 2}, []int{1, 1}); !errors.Is(err, ErrOneClass) {
		t.Fatalf("err = %v, want ErrOneClass", err)
	}
	if _, err := ROC([]float64{1, 2}, []int{1, 3}); !errors.Is(err, ErrBadLabels) {
		t.Fatalf("err = %v, want ErrBadLabels", err)
	}
	if _, err := AUC(nil); !errors.Is(err, ErrEmptyROC) {
		t.Fatalf("err = %v, want ErrEmptyROC", err)
	}
}

func TestROCMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		scores := make([]float64, n)
		labels := make([]int, n)
		labels[0], labels[1] = 0, 1 // guarantee both classes
		scores[0], scores[1] = rng.Float64(), rng.Float64()
		for i := 2; i < n; i++ {
			scores[i] = rng.Float64()
			labels[i] = rng.Intn(2)
		}
		curve, err := ROC(scores, labels)
		if err != nil {
			return false
		}
		prevF, prevT, prevTh := -1.0, -1.0, math.Inf(1)
		for _, p := range curve {
			if p.FPR < prevF || p.TPR < prevT || p.Threshold > prevTh {
				return false
			}
			prevF, prevT, prevTh = p.FPR, p.TPR, p.Threshold
		}
		// Curve ends at (1,1).
		last := curve[len(curve)-1]
		return last.FPR == 1 && last.TPR == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTPRAtFPR(t *testing.T) {
	curve := []ROCPoint{
		{Threshold: 0.9, FPR: 0.00, TPR: 0.50},
		{Threshold: 0.7, FPR: 0.01, TPR: 0.80},
		{Threshold: 0.5, FPR: 0.10, TPR: 0.95},
		{Threshold: 0.1, FPR: 1.00, TPR: 1.00},
	}
	if got := TPRAtFPR(curve, 0.001); got != 0.5 {
		t.Errorf("TPR@0.001 = %v, want 0.5", got)
	}
	if got := TPRAtFPR(curve, 0.05); got != 0.8 {
		t.Errorf("TPR@0.05 = %v, want 0.8", got)
	}
	if got := TPRAtFPR(curve, 1.0); got != 1.0 {
		t.Errorf("TPR@1.0 = %v, want 1.0", got)
	}
}

func TestThresholdAtFPR(t *testing.T) {
	curve := []ROCPoint{
		{Threshold: 0.9, FPR: 0.00, TPR: 0.50},
		{Threshold: 0.7, FPR: 0.01, TPR: 0.80},
		{Threshold: 0.5, FPR: 0.10, TPR: 0.95},
	}
	if got := ThresholdAtFPR(curve, 0.05); got != 0.7 {
		t.Errorf("Threshold@0.05 = %v, want 0.7", got)
	}
	if got := ThresholdAtFPR(curve, 0.5); got != 0.5 {
		t.Errorf("Threshold@0.5 = %v, want 0.5", got)
	}
	// Budget below every point: stricter than the strictest threshold.
	strict := []ROCPoint{{Threshold: 0.9, FPR: 0.5, TPR: 0.5}}
	if got := ThresholdAtFPR(strict, 0.001); got <= 0.9 {
		t.Errorf("Threshold below budget = %v, want > 0.9", got)
	}
}

func TestOperatingPoint(t *testing.T) {
	curve := []ROCPoint{
		{Threshold: 0.9, FPR: 0.00, TPR: 0.50},
		{Threshold: 0.7, FPR: 0.01, TPR: 0.80},
		{Threshold: 0.5, FPR: 0.10, TPR: 0.95},
	}
	fpr, tpr := OperatingPoint(curve, 0.7)
	if fpr != 0.01 || tpr != 0.8 {
		t.Fatalf("OperatingPoint(0.7) = (%v, %v), want (0.01, 0.8)", fpr, tpr)
	}
	fpr, tpr = OperatingPoint(curve, 0.95)
	if fpr != 0 || tpr != 0 {
		t.Fatalf("OperatingPoint above max = (%v, %v), want (0, 0)", fpr, tpr)
	}
}

func TestPartialAUC(t *testing.T) {
	// Perfect detector: TPR=1 at FPR=0.
	perfect := []ROCPoint{{Threshold: 0.9, FPR: 0, TPR: 1}, {Threshold: 0.1, FPR: 1, TPR: 1}}
	got, err := PartialAUC(perfect, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.0 {
		t.Fatalf("perfect pAUC = %v, want 1", got)
	}
	// Degenerate budget.
	if _, err := PartialAUC(perfect, 0); err == nil {
		t.Fatal("maxFPR=0 must error")
	}
	if _, err := PartialAUC(nil, 0.01); !errors.Is(err, ErrEmptyROC) {
		t.Fatalf("err = %v, want ErrEmptyROC", err)
	}
	// pAUC never exceeds 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100
		scores := make([]float64, n)
		labels := make([]int, n)
		labels[0], labels[1] = 0, 1
		for i := range scores {
			scores[i] = rng.Float64()
			if i > 1 {
				labels[i] = rng.Intn(2)
			}
		}
		curve, err := ROC(scores, labels)
		if err != nil {
			return false
		}
		p, err := PartialAUC(curve, 0.1)
		return err == nil && p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDownsample(t *testing.T) {
	curve := make([]ROCPoint, 1000)
	for i := range curve {
		curve[i] = ROCPoint{FPR: float64(i) / 999, TPR: float64(i) / 999}
	}
	ds := Downsample(curve, 10)
	if len(ds) != 10 {
		t.Fatalf("downsampled to %d, want 10", len(ds))
	}
	if ds[0] != curve[0] || ds[9] != curve[999] {
		t.Fatal("endpoints must be preserved")
	}
	// No-op when already small.
	small := Downsample(curve[:5], 10)
	if len(small) != 5 {
		t.Fatalf("small curve resized to %d", len(small))
	}
}

func TestFamilyFolds(t *testing.T) {
	byFamily := map[string][]string{}
	for f := 0; f < 10; f++ {
		name := string(rune('a' + f))
		for d := 0; d < f+1; d++ {
			byFamily[name] = append(byFamily[name], name+"-dom")
		}
	}
	folds, err := FamilyFolds(byFamily, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d, want 5", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += len(f)
		if len(f) == 0 {
			t.Fatal("empty fold")
		}
	}
	if total != 55 {
		t.Fatalf("total domains across folds = %d, want 55", total)
	}
	// A family never splits across folds: every domain of family X lives
	// in exactly one fold. Domains are named after their family here.
	famFold := map[string]int{}
	for i, fold := range folds {
		for _, d := range fold {
			if prev, ok := famFold[d]; ok && prev != i {
				t.Fatalf("family %q split across folds %d and %d", d, prev, i)
			}
			famFold[d] = i
		}
	}
}

func TestFamilyFoldsBalanced(t *testing.T) {
	byFamily := map[string][]string{}
	for f := 0; f < 40; f++ {
		name := "fam" + string(rune('A'+f%26)) + string(rune('0'+f/26))
		byFamily[name] = []string{name + ".com", name + ".net"}
	}
	folds, err := FamilyFolds(byFamily, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range folds {
		// 40 families / 4 folds = 10 families = 20 domains each.
		if len(f) != 20 {
			t.Fatalf("fold size %d, want 20 (balanced)", len(f))
		}
	}
}

func TestFamilyFoldsErrors(t *testing.T) {
	if _, err := FamilyFolds(map[string][]string{"a": {"x"}}, 1, 0); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := FamilyFolds(map[string][]string{"a": {"x"}}, 2, 0); err == nil {
		t.Fatal("fewer families than folds must error")
	}
}

func TestRenderASCII(t *testing.T) {
	curve := []ROCPoint{
		{Threshold: 0.9, FPR: 0.000, TPR: 0.5},
		{Threshold: 0.7, FPR: 0.002, TPR: 0.9},
		{Threshold: 0.5, FPR: 0.008, TPR: 1.0},
	}
	out := RenderASCII(curve, 40, 10, 0.01)
	if !strings.Contains(out, "TPR 100%") || !strings.Contains(out, "FPR 1.00%") {
		t.Fatalf("render missing axes:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Interior rows plus two axis rows plus the x label.
	if len(lines) < 12 {
		t.Fatalf("render too short: %d lines", len(lines))
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no curve points drawn")
	}
	// Degenerate parameters clamp instead of panicking.
	_ = RenderASCII(curve, 1, 1, 0)
	_ = RenderASCII(nil, 20, 6, 0.01)
}
