package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/core"
	"segugio/internal/ml"
)

// ClassifierResult compares the two classifier choices the paper
// mentions for C (Section II-A3): random forest [9] and logistic
// regression [10], on an identical train/test split.
type ClassifierResult struct {
	RandomForest *CrossResult
	Logistic     *CrossResult
}

// RunClassifiers evaluates both models on one cross-day setting.
func RunClassifiers(n *Network, trainDay, testDay int, seed int64) (*ClassifierResult, error) {
	dd1, dd2 := n.Day(trainDay), n.Day(testDay)
	split := NewSplit(n, dd1.Graph, dd2.Graph, n.Commercial, trainDay, 0.6, seed)

	rf, err := RunCross(n, trainDay, n, testDay, CrossOptions{Split: split})
	if err != nil {
		return nil, fmt.Errorf("experiments: classifiers rf: %w", err)
	}
	lrCfg := core.DefaultConfig()
	lrCfg.NewModel = func(benign, malware int) ml.Model {
		w := 1.0
		if malware > 0 && benign > malware {
			w = float64(benign) / float64(malware)
			if w > 50 {
				w = 50
			}
		}
		return ml.NewLogisticRegression(ml.LogisticRegressionConfig{PositiveWeight: w, Seed: seed})
	}
	lr, err := RunCross(n, trainDay, n, testDay, CrossOptions{Split: split, Core: &lrCfg})
	if err != nil {
		return nil, fmt.Errorf("experiments: classifiers lr: %w", err)
	}
	return &ClassifierResult{RandomForest: rf, Logistic: lr}, nil
}

// String renders the comparison.
func (c *ClassifierResult) String() string {
	var b strings.Builder
	b.WriteString("Classifier choice ablation (Section II-A3: Random Forest vs Logistic Regression)\n")
	fmt.Fprintf(&b, "%-20s %10s %12s %12s\n", "classifier", "AUC", "TPR@0.1%FP", "TPR@1%FP")
	for _, row := range []struct {
		name string
		r    *CrossResult
	}{{"random forest", c.RandomForest}, {"logistic regression", c.Logistic}} {
		fmt.Fprintf(&b, "%-20s %10.4f %11.1f%% %11.1f%%\n",
			row.name, row.r.AUC, row.r.TPRAt[0.001]*100, row.r.TPRAt[0.01]*100)
	}
	return b.String()
}

// PruningAblationResult measures what the R1-R4 rules buy: accuracy and
// pipeline runtime with and without pruning (a DESIGN.md ablation; the
// paper motivates pruning with performance and noise reduction).
type PruningAblationResult struct {
	WithPruning    *CrossResult
	WithoutPruning *CrossResult
}

// RunPruningAblation evaluates the identical split with pruning on/off.
func RunPruningAblation(n *Network, trainDay, testDay int, seed int64) (*PruningAblationResult, error) {
	dd1, dd2 := n.Day(trainDay), n.Day(testDay)
	split := NewSplit(n, dd1.Graph, dd2.Graph, n.Commercial, trainDay, 0.6, seed)

	on, err := RunCross(n, trainDay, n, testDay, CrossOptions{Split: split})
	if err != nil {
		return nil, fmt.Errorf("experiments: pruning on: %w", err)
	}
	offCfg := core.DefaultConfig()
	offCfg.DisablePruning = true
	off, err := RunCross(n, trainDay, n, testDay, CrossOptions{Split: split, Core: &offCfg})
	if err != nil {
		return nil, fmt.Errorf("experiments: pruning off: %w", err)
	}
	return &PruningAblationResult{WithPruning: on, WithoutPruning: off}, nil
}

// String renders the ablation.
func (p *PruningAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Pruning ablation (rules R1-R4 on vs off)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %14s %14s\n", "pruning", "AUC", "TPR@0.1%FP", "train time", "classify time")
	for _, row := range []struct {
		name string
		r    *CrossResult
	}{{"on", p.WithPruning}, {"off", p.WithoutPruning}} {
		fmt.Fprintf(&b, "%-12s %10.4f %11.1f%% %14v %14v\n",
			row.name, row.r.AUC, row.r.TPRAt[0.001]*100,
			row.r.Train.Timing.Total().Round(1e6), row.r.Classify.Timing.Total().Round(1e6))
	}
	return b.String()
}
