package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/eval"
)

// RunFig10 reproduces Figure 10: the cross-day experiment repeated with
// machine-domain graphs labeled using only public blacklist feeds (the
// smaller, noisier ground truth of Section IV-E). The paper reads over
// 94% TPs at 0.1% FPs, demonstrating Segugio's results are not an
// artifact of the commercial feed.
func RunFig10(n *Network, trainDay, testDay int, seed int64) (*CrossResult, error) {
	return RunCross(n, trainDay, n, testDay, CrossOptions{
		TrainBlacklist: n.Public,
		TestFraction:   0.6,
		Seed:           seed,
	})
}

// CrossBlacklistResult reproduces the cross-blacklist test of
// Section IV-E: train on the commercial feed, then test on control
// domains that only the public feeds know. The paper reports
// (TP=57%, FP=0.1%), (74%, 0.5%), (77%, 0.9%) over just 53 test domains.
type CrossBlacklistResult struct {
	Result *CrossResult
	// PublicOnly counts public-blacklist domains observed on the test day
	// that the commercial feed does not know.
	PublicOnly int
	// Operating points at the paper's three FP budgets.
	Points []struct{ FPR, TPR float64 }
}

// RunCrossBlacklist trains on the commercial feed and evaluates on
// public-only domains.
func RunCrossBlacklist(n *Network, trainDay, testDay int, seed int64) (*CrossBlacklistResult, error) {
	publicOnly := n.Public.Minus(n.Commercial)
	dd2 := n.Day(testDay)
	var observed []string
	for _, d := range publicOnly.DomainsAsOf(testDay) {
		if _, ok := dd2.Graph.DomainIndex(d); ok {
			observed = append(observed, d)
		}
	}
	if len(observed) == 0 {
		return nil, fmt.Errorf("experiments: cross-blacklist: no public-only domains observed on day %d", testDay)
	}
	split := SplitFromDomains(n, dd2.Graph, observed, 0.6, seed)
	r, err := RunCross(n, trainDay, n, testDay, CrossOptions{
		TrainBlacklist: n.Commercial,
		Split:          split,
	})
	if err != nil {
		return nil, err
	}
	res := &CrossBlacklistResult{Result: r, PublicOnly: split.Malware()}
	for _, budget := range []float64{0.001, 0.005, 0.009} {
		res.Points = append(res.Points, struct{ FPR, TPR float64 }{
			FPR: budget, TPR: eval.TPRAtFPR(r.Curve, budget),
		})
	}
	return res, nil
}

// String renders the cross-blacklist trade-offs.
func (c *CrossBlacklistResult) String() string {
	var b strings.Builder
	b.WriteString("Cross-blacklist test (Section IV-E): train commercial, test public-only C&C domains\n")
	fmt.Fprintf(&b, "public-only test domains observed: %d\n", c.PublicOnly)
	for _, p := range c.Points {
		fmt.Fprintf(&b, "  TPs=%.0f%% at FPs=%.1f%%\n", p.TPR*100, p.FPR*100)
	}
	b.WriteString("(paper: TPs=57%/74%/77% at FPs=0.1%/0.5%/0.9%, on 53 noisy test domains)\n")
	return b.String()
}
