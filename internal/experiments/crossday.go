package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/core"
	"segugio/internal/eval"
	"segugio/internal/graph"
	"segugio/internal/intel"
)

// FPBudgets are the false-positive rates at which the paper reads its
// figures (0.1% headline, plus the 0.5% and 1% points of Section IV-E).
var FPBudgets = []float64{0.001, 0.005, 0.01}

// CrossOptions tunes one train/test experiment.
type CrossOptions struct {
	// TrainBlacklist labels the training day (default: the universe's
	// commercial feed). TestBlacklist provides the test-set ground truth
	// (default: TrainBlacklist).
	TrainBlacklist *intel.Blacklist
	TestBlacklist  *intel.Blacklist
	// TestFraction of eligible known domains is held out (default 0.6).
	TestFraction float64
	// Seed drives the held-out sampling.
	Seed int64
	// Core optionally overrides the pipeline configuration (feature
	// ablations, alternative classifiers, pruning off).
	Core *core.Config
	// Split optionally supplies a pre-built test split (cross-family
	// folds, cross-blacklist test sets); TestFraction/Seed are then
	// ignored.
	Split *Split
}

// CrossResult is one train/test outcome with the full ROC curve.
type CrossResult struct {
	TrainNet, TestNet string
	TrainDay, TestDay int
	TestMalware       int
	TestBenign        int
	Curve             []eval.ROCPoint
	AUC               float64
	PartialAUC01      float64 // normalized area under FPR <= 0.01
	TPRAt             map[float64]float64
	Train             *core.TrainReport
	Classify          *core.ClassifyReport
	Detector          *core.Detector
	Scores            []float64
	Labels            []int
	Domains           []string
	PrunedTestGraph   *graph.Graph
	// Hidden is the held-out set whose ground truth was withheld.
	Hidden              map[string]struct{}
	MissingTestDomains  int // test domains pruned/absent from the test graph
	MissingTestMalware  int
	TrainingSetExamples int
}

// RunCross trains Segugio on (trainNet, trainDay) and evaluates it on the
// held-out known domains of (testNet, testDay), following the rigorous
// protocol of Section IV-A: the test domains' ground truth is hidden from
// labeling, feature measurement, and training on both days.
func RunCross(trainNet *Network, trainDay int, testNet *Network, testDay int, opts CrossOptions) (*CrossResult, error) {
	if opts.TrainBlacklist == nil {
		opts.TrainBlacklist = trainNet.Commercial
	}
	if opts.TestBlacklist == nil {
		opts.TestBlacklist = opts.TrainBlacklist
	}
	if opts.TestFraction == 0 {
		opts.TestFraction = 0.6
	}
	coreCfg := core.DefaultConfig()
	if opts.Core != nil {
		coreCfg = *opts.Core
	}

	dd1 := trainNet.Day(trainDay)
	dd2 := testNet.Day(testDay)

	split := opts.Split
	if split == nil {
		split = NewSplit(testNet, dd1.Graph, dd2.Graph, opts.TestBlacklist, trainDay, opts.TestFraction, opts.Seed)
	}

	g1 := trainNet.Labeled(dd1, opts.TrainBlacklist, split.Hidden)
	abuse1 := trainNet.Abuse(trainDay, opts.TrainBlacklist)
	det, trainReport, err := core.Train(coreCfg, core.TrainInput{
		Graph: g1, Activity: dd1.Activity, Abuse: abuse1, Exclude: split.Hidden,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: train %s day %d: %w", trainNet.Name(), trainDay, err)
	}

	g2 := testNet.Labeled(dd2, opts.TrainBlacklist, split.Hidden)
	abuse2 := testNet.Abuse(testDay, opts.TrainBlacklist)
	dets, classifyReport, err := det.Classify(core.ClassifyInput{
		Graph: g2, Activity: dd2.Activity, Abuse: abuse2, Domains: split.Domains,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: classify %s day %d: %w", testNet.Name(), testDay, err)
	}

	res := &CrossResult{
		TrainNet: trainNet.Name(), TestNet: testNet.Name(),
		TrainDay: trainDay, TestDay: testDay,
		TestMalware: split.Malware(), TestBenign: split.Benign(),
		Train: trainReport, Classify: classifyReport,
		Detector:            det,
		Hidden:              split.Hidden,
		Domains:             split.Domains,
		Labels:              split.Labels,
		PrunedTestGraph:     classifyReport.PrunedGraph,
		TrainingSetExamples: trainReport.TrainBenign + trainReport.TrainMalware,
	}

	// Score vector over the whole test set; domains absent from the
	// pruned test graph cannot be detected and score zero.
	byDomain := make(map[string]float64, len(dets))
	for _, d := range dets {
		byDomain[d.Domain] = d.Score
	}
	res.Scores = make([]float64, len(split.Domains))
	missing := make(map[string]struct{}, len(classifyReport.Missing))
	for _, m := range classifyReport.Missing {
		missing[m] = struct{}{}
	}
	for i, name := range split.Domains {
		res.Scores[i] = byDomain[name]
		if _, miss := missing[name]; miss {
			res.MissingTestDomains++
			if split.Labels[i] == 1 {
				res.MissingTestMalware++
			}
		}
	}

	curve, err := eval.ROC(res.Scores, res.Labels)
	if err != nil {
		return nil, fmt.Errorf("experiments: roc: %w", err)
	}
	res.Curve = curve
	res.AUC, _ = eval.AUC(curve)
	res.PartialAUC01, _ = eval.PartialAUC(curve, 0.01)
	res.TPRAt = make(map[float64]float64, len(FPBudgets))
	for _, b := range FPBudgets {
		res.TPRAt[b] = eval.TPRAtFPR(curve, b)
	}
	return res, nil
}

// Label renders the experiment identity ("ISP1 day 170 -> ISP2 day 185").
func (r *CrossResult) Label() string {
	return fmt.Sprintf("%s day %d -> %s day %d (gap %d days)",
		r.TrainNet, r.TrainDay, r.TestNet, r.TestDay, r.TestDay-r.TrainDay)
}

// Summary renders the headline numbers of one run.
func (r *CrossResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Label())
	fmt.Fprintf(&b, "  test set: %d malware, %d benign (%d unobserved on test day, %d of them malware)\n",
		r.TestMalware, r.TestBenign, r.MissingTestDomains, r.MissingTestMalware)
	fmt.Fprintf(&b, "  training set: %d benign, %d malware\n", r.Train.TrainBenign, r.Train.TrainMalware)
	fmt.Fprintf(&b, "  AUC %.4f, partial AUC(FPR<=1%%) %.4f\n", r.AUC, r.PartialAUC01)
	for _, budget := range FPBudgets {
		fmt.Fprintf(&b, "  TPR @ %.2f%% FP: %5.1f%%\n", budget*100, r.TPRAt[budget]*100)
	}
	return b.String()
}

// CurveCSV renders the ROC curve as CSV (threshold, fpr, tpr), downsampled
// to at most n points.
func (r *CrossResult) CurveCSV(n int) string {
	var b strings.Builder
	b.WriteString("threshold,fpr,tpr\n")
	for _, p := range eval.Downsample(r.Curve, n) {
		fmt.Fprintf(&b, "%.6f,%.6f,%.6f\n", p.Threshold, p.FPR, p.TPR)
	}
	return b.String()
}
