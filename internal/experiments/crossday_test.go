package experiments

import (
	"strings"
	"testing"
)

// testUniverse builds the shared small-universe fixture once per test
// binary: universe construction (pdns emission in particular) dominates
// test runtime otherwise.
var testFixture struct {
	u    *Universe
	isp1 *Network
	isp2 *Network
	err  error
	once func(t *testing.T)
}

func sharedFixture(t *testing.T) (*Universe, *Network, *Network) {
	t.Helper()
	if testFixture.u == nil && testFixture.err == nil {
		u, err := NewUniverse(TestUniverseParams(41), UniverseOptions{})
		if err != nil {
			testFixture.err = err
		} else {
			testFixture.u = u
			testFixture.isp1 = u.Network(TestPopulation("TISP1", 11))
			testFixture.isp2 = u.Network(TestPopulation("TISP2", 22))
		}
	}
	if testFixture.err != nil {
		t.Fatal(testFixture.err)
	}
	return testFixture.u, testFixture.isp1, testFixture.isp2
}

func TestNewUniverse(t *testing.T) {
	u, isp1, isp2 := sharedFixture(t)
	if u.Commercial.Len() == 0 || u.Public.Len() == 0 {
		t.Fatal("blacklists empty")
	}
	if u.Commercial.Len() <= u.Public.Len() {
		t.Fatalf("commercial (%d) should exceed public (%d) coverage",
			u.Commercial.Len(), u.Public.Len())
	}
	if u.Whitelist.Len() == 0 {
		t.Fatal("whitelist empty")
	}
	if u.DB.Len() == 0 {
		t.Fatal("pdns database empty")
	}
	if isp1.Name() != "TISP1" || isp2.Name() != "TISP2" {
		t.Fatal("network names wrong")
	}
}

func TestNetworksShareDomainsNotMachines(t *testing.T) {
	_, isp1, isp2 := sharedFixture(t)
	g1 := isp1.Day(170).Graph
	g2 := isp2.Day(170).Graph
	shared := 0
	for d := int32(0); d < int32(g1.NumDomains()); d += 7 {
		if _, ok := g2.DomainIndex(g1.DomainName(d)); ok {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("two ISPs over one universe must observe overlapping domains")
	}
	for m := int32(0); m < int32(g1.NumMachines()); m += 97 {
		if _, ok := g2.MachineIndex(g1.MachineID(m)); ok {
			t.Fatalf("machine %s appears in both ISPs", g1.MachineID(m))
		}
	}
}

func TestDayCaching(t *testing.T) {
	_, isp1, _ := sharedFixture(t)
	a := isp1.Day(171)
	b := isp1.Day(171)
	if a != b {
		t.Fatal("Day must cache")
	}
	isp1.DropDay(171)
	c := isp1.Day(171)
	if a == c {
		t.Fatal("DropDay must evict")
	}
	isp1.DropDay(171)
}

func TestRunCrossSameNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunCross(isp1, 170, isp1, 180, CrossOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestMalware < 10 || res.TestBenign < 500 {
		t.Fatalf("test set too small: %d malware, %d benign", res.TestMalware, res.TestBenign)
	}
	if res.AUC < 0.85 {
		t.Fatalf("cross-day AUC = %.3f, want >= 0.85 at test scale", res.AUC)
	}
	if res.TPRAt[0.01] < 0.6 {
		t.Fatalf("TPR@1%% = %.3f, want >= 0.6 at test scale", res.TPRAt[0.01])
	}
	if !strings.Contains(res.Summary(), "AUC") {
		t.Fatal("summary must mention AUC")
	}
	if !strings.Contains(res.CurveCSV(50), "threshold,fpr,tpr") {
		t.Fatal("CSV header missing")
	}
	if res.Label() == "" {
		t.Fatal("label empty")
	}
}

func TestRunCrossNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, isp2 := sharedFixture(t)
	res, err := RunCross(isp1, 170, isp2, 182, CrossOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainNet != "TISP1" || res.TestNet != "TISP2" {
		t.Fatalf("nets = %s -> %s", res.TrainNet, res.TestNet)
	}
	// The transferred model must still rank well: the signal is the query
	// behavior of ISP2's own infected machines, not ISP1's identities.
	if res.AUC < 0.8 {
		t.Fatalf("cross-network AUC = %.3f, want >= 0.8 at test scale", res.AUC)
	}
}

func TestSplitCounts(t *testing.T) {
	_, isp1, _ := sharedFixture(t)
	dd1, dd2 := isp1.Day(170), isp1.Day(180)
	s := NewSplit(isp1, dd1.Graph, dd2.Graph, isp1.Commercial, 170, 1.0, 3)
	if s.Malware()+s.Benign() != len(s.Domains) {
		t.Fatal("split counts inconsistent")
	}
	if s.Malware() == 0 || s.Benign() == 0 {
		t.Fatal("split must contain both classes")
	}
	if len(s.Hidden) != len(s.Domains) {
		t.Fatal("hidden set size mismatch")
	}
	// Fraction halves the set, roughly.
	half := NewSplit(isp1, dd1.Graph, dd2.Graph, isp1.Commercial, 170, 0.5, 3)
	if len(half.Domains) >= len(s.Domains) {
		t.Fatal("fraction must shrink the split")
	}
}

func TestSplitFromDomains(t *testing.T) {
	_, isp1, _ := sharedFixture(t)
	dd2 := isp1.Day(180)
	mal := []string{}
	for _, d := range isp1.Commercial.DomainsAsOf(180) {
		if _, ok := dd2.Graph.DomainIndex(d); ok {
			mal = append(mal, d)
			if len(mal) == 5 {
				break
			}
		}
	}
	mal = append(mal, "not-observed.example")
	s := SplitFromDomains(isp1, dd2.Graph, mal, 0.3, 4)
	if s.Malware() != 5 {
		t.Fatalf("malware = %d, want 5 (unobserved dropped)", s.Malware())
	}
	if s.Benign() == 0 {
		t.Fatal("no benign sampled")
	}
}
