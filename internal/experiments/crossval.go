package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"segugio/internal/eval"
)

// CrossValResult is a k-fold cross-validation over one day of traffic
// (the paper lists cross-validation among its evaluation settings in
// Section VII): the known domains are partitioned at random into k folds;
// each fold is hidden in turn, the classifier trains on the rest, and the
// fold's scores are pooled into one curve.
type CrossValResult struct {
	Network string
	Day     int
	Folds   int
	AUC     float64
	TPRAt   map[float64]float64
	Curve   []eval.ROCPoint
	// TPRLo/TPRHi bound TPR@0.1%FP with a bootstrap 95% confidence
	// interval over the pooled scores.
	TPRLo, TPRHi float64
	TestMalware  int
	TestBenign   int
}

// RunCrossValidation performs the k-fold protocol on one observation day.
func RunCrossValidation(n *Network, day, k int, seed int64) (*CrossValResult, error) {
	if k < 2 {
		k = 5
	}
	dd := n.Day(day)
	// Enumerate the known domains once, deterministically.
	g := n.Labeled(dd, n.Commercial, nil)
	var known []string
	var labels []int
	for d := int32(0); d < int32(g.NumDomains()); d++ {
		name := g.DomainName(d)
		switch {
		case n.Commercial.Contains(name, day):
			known = append(known, name)
			labels = append(labels, 1)
		case n.Whitelist.ContainsE2LD(g.DomainE2LD(d)):
			known = append(known, name)
			labels = append(labels, 0)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(known))

	res := &CrossValResult{Network: n.Name(), Day: day, Folds: k}
	var scores []float64
	var pooledLabels []int
	for fold := 0; fold < k; fold++ {
		split := &Split{Hidden: make(map[string]struct{})}
		for i, pi := range perm {
			if i%k != fold {
				continue
			}
			split.Hidden[known[pi]] = struct{}{}
			split.Domains = append(split.Domains, known[pi])
			split.Labels = append(split.Labels, labels[pi])
		}
		r, err := RunCross(n, day, n, day, CrossOptions{Split: split})
		if err != nil {
			return nil, fmt.Errorf("experiments: crossval fold %d: %w", fold, err)
		}
		scores = append(scores, r.Scores...)
		pooledLabels = append(pooledLabels, r.Labels...)
		res.TestMalware += split.Malware()
		res.TestBenign += split.Benign()
	}

	curve, err := eval.ROC(scores, pooledLabels)
	if err != nil {
		return nil, fmt.Errorf("experiments: crossval roc: %w", err)
	}
	res.Curve = curve
	res.AUC, _ = eval.AUC(curve)
	res.TPRAt = map[float64]float64{}
	for _, b := range FPBudgets {
		res.TPRAt[b] = eval.TPRAtFPR(curve, b)
	}
	res.TPRLo, res.TPRHi, err = eval.BootstrapTPRCI(scores, pooledLabels, 0.001, 200, 0.95, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: crossval ci: %w", err)
	}
	return res, nil
}

// String renders the pooled result.
func (c *CrossValResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-fold cross-validation (%s, day %d)\n", c.Folds, c.Network, c.Day)
	fmt.Fprintf(&b, "pooled test set: %d malware, %d benign\n", c.TestMalware, c.TestBenign)
	fmt.Fprintf(&b, "AUC %.4f\n", c.AUC)
	for _, budget := range FPBudgets {
		fmt.Fprintf(&b, "  TPR @ %.2f%% FP: %5.1f%%\n", budget*100, c.TPRAt[budget]*100)
	}
	fmt.Fprintf(&b, "TPR @ 0.10%% FP bootstrap 95%% CI: [%.1f%%, %.1f%%]\n", c.TPRLo*100, c.TPRHi*100)
	return b.String()
}
