package experiments

import (
	"segugio/internal/features"
	"segugio/internal/graph"
)

func featuresExtractor(n *Network, day int, g *graph.Graph) (*features.Extractor, error) {
	return features.NewExtractor(g, n.Day(day).Activity, n.Abuse(day, n.Commercial), 14)
}
