package experiments

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"segugio/internal/core"
	"segugio/internal/graph"
	"segugio/internal/notos"
)

type scoredDiag struct {
	name  string
	score float64
	ok    bool
}

func countRejected(s []scoredDiag) int {
	n := 0
	for _, x := range s {
		if !x.ok {
			n++
		}
	}
	return n
}

// TestDiagNotos is a manual diagnostic (SEGUGIO_DIAG=1 -run TestDiagNotos -v).
func TestDiagNotos(t *testing.T) {
	if os.Getenv("SEGUGIO_DIAG") == "" {
		t.Skip("set SEGUGIO_DIAG=1: manual diagnostic")
	}
	_, n, _ := sharedFixture(t)
	trainDay, testDay := 170, 185
	notosBL := n.Commercial.Union(n.Public)
	nc, err := notos.Train(notos.Config{Suffixes: n.Suffixes}, n.DB, trainDay, notosBL, n.Top100K)
	if err != nil {
		t.Fatal(err)
	}
	dd2 := n.Day(testDay)

	// New C&C.
	var mal, ben []scoredDiag
	for _, d := range n.Commercial.Domains() {
		e, _ := n.Commercial.Entry(d)
		if e.FirstListed <= trainDay || e.FirstListed > testDay {
			continue
		}
		if _, ok := dd2.Graph.DomainIndex(d); !ok {
			continue
		}
		s, ok := nc.Score(d, testDay)
		mal = append(mal, scoredDiag{d, s, ok})
	}
	bigMinusTop := n.Whitelist.Clone()
	bigMinusTop.Remove(n.Top100K.E2LDs())
	for d := int32(0); d < int32(dd2.Graph.NumDomains()); d++ {
		name := dd2.Graph.DomainName(d)
		if bigMinusTop.ContainsE2LD(dd2.Graph.DomainE2LD(d)) {
			s, ok := nc.Score(name, testDay)
			ben = append(ben, scoredDiag{name, s, ok})
		}
	}
	sort.Slice(mal, func(i, j int) bool { return mal[i].score > mal[j].score })
	sort.Slice(ben, func(i, j int) bool { return ben[i].score > ben[j].score })
	fmt.Printf("new C&C: %d (rejected %d), benign: %d\n", len(mal), countRejected(mal), len(ben))
	fmt.Println("top benign scores:")
	for i := 0; i < 10 && i < len(ben); i++ {
		fmt.Printf("  %-30s %.3f ok=%v\n", ben[i].name, ben[i].score, ben[i].ok)
	}
	fmt.Println("malware scores (scored ones):")
	for i := 0; i < len(mal); i++ {
		if mal[i].ok {
			fmt.Printf("  %-30s %.3f\n", mal[i].name, mal[i].score)
		}
	}
	rejBen := countRejected(ben)
	fmt.Printf("benign rejected: %d / %d\n", rejBen, len(ben))
}

// TestDiagCross inspects the top-scoring benign test domains of a plain
// cross-day run (run with -run TestDiagCross -v).
func TestDiagCross(t *testing.T) {
	if os.Getenv("SEGUGIO_DIAG") == "" {
		t.Skip("set SEGUGIO_DIAG=1: manual diagnostic")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunCross(isp1, 170, isp1, 178, CrossOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("AUC %.4f TPR@0.1%%=%.3f TPR@1%%=%.3f malware=%d benign=%d\n",
		res.AUC, res.TPRAt[0.001], res.TPRAt[0.01], res.TestMalware, res.TestBenign)

	type row struct {
		name  string
		score float64
		label int
	}
	var rows []row
	for i := range res.Domains {
		rows = append(rows, row{res.Domains[i], res.Scores[i], res.Labels[i]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].score > rows[j].score })
	fmt.Println("top 30 scored test domains:")
	g := res.PrunedTestGraph
	ex, _ := featuresExtractor(isp1, res.TestDay, g)
	for i := 0; i < 30 && i < len(rows); i++ {
		r := rows[i]
		feat := ""
		if d, ok := g.DomainIndex(r.name); ok {
			v := ex.Vector(d)
			feat = fmt.Sprintf("m=%.2f u=%.2f t=%.0f actD=%.0f strk=%.0f e2actD=%.0f malIP=%.2f malPfx=%.2f unkIP=%.0f unkPfx=%.0f",
				v[0], v[1], v[2], v[3], v[4], v[5], v[7], v[8], v[9], v[10])
		}
		fmt.Printf("  L=%d %.3f %-28s %s\n", r.label, r.score, r.name, feat)
	}
}

// TestDiagFig12Segugio inspects Segugio's scores inside the fig12 setup.
func TestDiagFig12Segugio(t *testing.T) {
	if os.Getenv("SEGUGIO_DIAG") == "" {
		t.Skip("set SEGUGIO_DIAG=1: manual diagnostic")
	}
	_, n, _ := sharedFixture(t)
	res, err := RunFig12([]*Network{n}, 170, 185, 13)
	if err != nil {
		t.Fatal(err)
	}
	isp := res.PerISP[0]
	fmt.Printf("Segugio AUC %.4f TPR@0.7%%=%.3f TPR@3%%=%.3f; newC2=%d benign=%d\n",
		isp.Segugio.AUC, isp.Segugio.TPRAt[0.007], isp.Segugio.TPRAt[0.03], isp.NewC2, isp.TestBenign)
	for _, p := range isp.Segugio.Curve {
		if p.FPR <= 0.03 {
			fmt.Printf("  th=%.4f fpr=%.4f tpr=%.3f\n", p.Threshold, p.FPR, p.TPR)
		}
	}
}

// TestDiagSeed17 inspects Segugio's top benign under the LBP test's split.
func TestDiagSeed17(t *testing.T) {
	if os.Getenv("SEGUGIO_DIAG") == "" {
		t.Skip("set SEGUGIO_DIAG=1: manual diagnostic")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunCross(isp1, 170, isp1, 178, CrossOptions{TestFraction: 0.6, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("TPR@0.1%%=%.3f benign=%d malware=%d\n", res.TPRAt[0.001], res.TestBenign, res.TestMalware)
	type row struct {
		name  string
		score float64
	}
	var benign []row
	for i := range res.Domains {
		if res.Labels[i] == 0 {
			benign = append(benign, row{res.Domains[i], res.Scores[i]})
		}
	}
	sort.Slice(benign, func(i, j int) bool { return benign[i].score > benign[j].score })
	g := res.PrunedTestGraph
	ex, _ := featuresExtractor(isp1, res.TestDay, g)
	for i := 0; i < 8 && i < len(benign); i++ {
		r := benign[i]
		feat := ""
		if d, ok := g.DomainIndex(r.name); ok {
			v := ex.Vector(d)
			feat = fmt.Sprintf("m=%.2f u=%.2f t=%.0f actD=%.0f strk=%.0f e2actD=%.0f e2strk=%.0f malIP=%.2f malPfx=%.2f",
				v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8])
		}
		fmt.Printf("  %.4f %-30s %s\n", r.score, r.name, feat)
	}
}

// TestDiagScale probes cross-day + LBP at experiment scale. Gated behind
// SEGUGIO_SCALE=1 because it takes minutes.
func TestDiagScale(t *testing.T) {
	if os.Getenv("SEGUGIO_SCALE") == "" {
		t.Skip("set SEGUGIO_SCALE=1")
	}
	u, err := NewUniverse(UniverseParams(), UniverseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	isp1 := u.Network(ISP1Population())
	res, err := RunCross(isp1, 170, isp1, 183, CrossOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("SCALE cross-day: AUC %.4f TPR@0.1%%=%.3f TPR@0.5%%=%.3f TPR@1%%=%.3f mal=%d ben=%d missMal=%d\n",
		res.AUC, res.TPRAt[0.001], res.TPRAt[0.005], res.TPRAt[0.01],
		res.TestMalware, res.TestBenign, res.MissingTestMalware)
	lbp, err := RunLBP(isp1, 170, 183, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("SCALE lbp: seg AUC %.4f TPR@0.1%%=%.3f (%v) vs bp AUC %.4f TPR@0.1%%=%.3f (%v)\n",
		lbp.Segugio.AUC, lbp.Segugio.TPRAt[0.001], lbp.SegugioTime,
		lbp.BP.AUC, lbp.BP.TPRAt[0.001], lbp.BPTime)
}

// TestDiagAbusedSubs traces where abused free-reg subdomains end up in a
// cross-day run (SEGUGIO_DIAG=1).
func TestDiagAbusedSubs(t *testing.T) {
	if os.Getenv("SEGUGIO_DIAG") == "" {
		t.Skip("set SEGUGIO_DIAG=1: manual diagnostic")
	}
	_, isp1, _ := sharedFixture(t)
	trainDay, testDay := 170, 178
	dd1, dd2 := isp1.Day(trainDay), isp1.Day(testDay)
	res, err := RunCross(isp1, trainDay, isp1, testDay, CrossOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{}
	for i, d := range res.Domains {
		scores[d] = res.Scores[i]
	}
	inSplit := map[string]bool{}
	for _, d := range res.Domains {
		inSplit[d] = true
	}
	for _, id := range isp1.Cat.AllAbusedSubdomains() {
		name := isp1.Cat.Name(id)
		_, in1 := dd1.Graph.DomainIndex(name)
		_, in2 := dd2.Graph.DomainIndex(name)
		if !in1 && !in2 {
			continue
		}
		e2ld := isp1.Suffixes.E2LD(name)
		wl := isp1.Whitelist.ContainsE2LD(e2ld)
		deg := -1
		if d2, ok := res.PrunedTestGraph.DomainIndex(name); ok {
			deg = res.PrunedTestGraph.DomainDegree(d2)
		}
		fmt.Printf("%-28s in1=%v in2=%v wl=%v split=%v score=%.3f prunedDeg=%d\n",
			name, in1, in2, wl, inSplit[name], scores[name], deg)
	}
}

// TestDiagFig12Scale inspects fig12's per-ISP Segugio curves at scale
// (SEGUGIO_SCALE=1).
func TestDiagFig12Scale(t *testing.T) {
	if os.Getenv("SEGUGIO_SCALE") == "" {
		t.Skip("set SEGUGIO_SCALE=1")
	}
	u, err := NewUniverse(UniverseParams(), UniverseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	isp2 := u.Network(ISP2Population())
	res, err := RunFig12([]*Network{isp2}, 170, 195, 14)
	if err != nil {
		t.Fatal(err)
	}
	isp := res.PerISP[0]
	fmt.Printf("ISP2 segugio AUC %.4f TPR@0.7%%=%.3f; notos best %.3f\n",
		isp.Segugio.AUC, isp.Segugio.TPRAt[0.007], isp.Notos.BestTPR)
	for _, p := range isp.Segugio.Curve {
		if p.FPR <= 0.02 {
			fmt.Printf("  th=%.4f fpr=%.5f tpr=%.3f\n", p.Threshold, p.FPR, p.TPR)
		}
	}
}

// TestDiagFig12Features replicates fig12's Segugio path on one network
// and prints low-scoring new-C&C feature vectors (SEGUGIO_SCALE=1).
func TestDiagFig12Features(t *testing.T) {
	if os.Getenv("SEGUGIO_SCALE") == "" {
		t.Skip("set SEGUGIO_SCALE=1")
	}
	u, err := NewUniverse(UniverseParams(), UniverseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := u.Network(ISP2Population())
	trainDay, testDay := 170, 195

	dd2 := n.Day(testDay)
	var newC2 []string
	for _, d := range n.Commercial.Domains() {
		e, _ := n.Commercial.Entry(d)
		if e.FirstListed <= trainDay || e.FirstListed > testDay {
			continue
		}
		if _, ok := dd2.Graph.DomainIndex(d); ok {
			newC2 = append(newC2, d)
		}
	}
	hidden := map[string]struct{}{}
	for _, d := range newC2 {
		hidden[d] = struct{}{}
	}
	dd1 := n.Day(trainDay)
	dd1.Graph.ApplyLabels(graph.LabelSources{Blacklist: n.Commercial, Whitelist: n.Top100K, AsOf: trainDay, Hidden: hidden})
	det, trep, err := core.Train(core.DefaultConfig(), core.TrainInput{
		Graph: dd1.Graph, Activity: dd1.Activity, Abuse: n.Abuse(trainDay, n.Commercial), Exclude: hidden,
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("train: benign=%d malware=%d\n", trep.TrainBenign, trep.TrainMalware)
	dd2.Graph.ApplyLabels(graph.LabelSources{Blacklist: n.Commercial, Whitelist: n.Top100K, AsOf: trainDay, Hidden: hidden})
	dets, crep, err := det.Classify(core.ClassifyInput{
		Graph: dd2.Graph, Activity: dd2.Activity, Abuse: n.Abuse(testDay, n.Commercial), Domains: newC2,
	})
	if err != nil {
		t.Fatal(err)
	}
	score := map[string]float64{}
	for _, d := range dets {
		score[d.Domain] = d.Score
	}
	g := crep.PrunedGraph
	ex, err := featuresExtractor(n, testDay, g)
	if err != nil {
		t.Fatal(err)
	}
	low, miss := 0, 0
	for _, name := range newC2 {
		s, ok := score[name]
		if !ok {
			miss++
			continue
		}
		if s < 0.5 {
			low++
			if low <= 12 {
				d, okIdx := g.DomainIndex(name)
				if !okIdx {
					fmt.Printf("  %-26s s=%.3f PRUNED\n", name, s)
					continue
				}
				v := ex.Vector(d)
				fmt.Printf("  %-26s s=%.3f m=%.2f u=%.2f t=%.0f actD=%.0f strk=%.0f e2=%.0f malIP=%.2f malPfx=%.2f\n",
					name, s, v[0], v[1], v[2], v[3], v[4], v[5], v[7], v[8])
			}
		}
	}
	fmt.Printf("newC2=%d low(<0.5)=%d missing=%d\n", len(newC2), low, miss)
}
