package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/core"
	"segugio/internal/eval"
	"segugio/internal/graph"
)

// EvasionResult quantifies the Section VI evasion discussion: an attacker
// who operates a control channel under a legitimate, popular domain name
// (a free-registration subdomain whose zone is whitelisted) is invisible
// to Segugio *by labeling* — the whitelist marks the name benign and it
// is never classified. The experiment takes every malware-operated
// free-registration subdomain active on the test day (simulator ground
// truth) and reports where each one ends up.
type EvasionResult struct {
	Network string
	Day     int
	// ActiveAbusedSubs is the number of malware-operated subdomains
	// observed in the day's traffic.
	ActiveAbusedSubs int
	// WhitelistShadowed were labeled benign because their zone is
	// whitelisted: undetectable by construction (the evasion succeeds
	// against the classifier, though the paper notes popular zones are
	// patrolled and takedowns are faster there).
	WhitelistShadowed int
	// Of the classified (unknown-labeled) remainder at a 0.1%-FP
	// threshold:
	Detected int
	Missed   int
	Pruned   int // dropped by R1-R4 before classification
}

// RunEvasion trains normally on trainDay and measures the fate of every
// abused free-registration subdomain on testDay.
func RunEvasion(n *Network, trainDay, testDay int, seed int64) (*EvasionResult, error) {
	// Calibrate a deployment threshold as in the early-detection setup.
	cal, err := RunCross(n, trainDay, n, trainDay, CrossOptions{TestFraction: 0.3, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: evasion calibrate: %w", err)
	}
	det := cal.Detector
	det.SetThreshold(eval.ThresholdAtFPR(cal.Curve, 0.001))

	dd := n.Day(testDay)
	g := n.Labeled(dd, n.Commercial, nil)
	dets, report, err := det.Classify(core.ClassifyInput{
		Graph: g, Activity: dd.Activity, Abuse: n.Abuse(testDay, n.Commercial),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: evasion classify: %w", err)
	}
	score := make(map[string]float64, len(dets))
	for _, d := range dets {
		score[d.Domain] = d.Score
	}

	res := &EvasionResult{Network: n.Name(), Day: testDay}
	for _, id := range n.Cat.AllAbusedSubdomains() {
		name := n.Cat.Name(id)
		di, observed := g.DomainIndex(name)
		if !observed {
			continue
		}
		res.ActiveAbusedSubs++
		if g.DomainLabel(di) == graph.LabelBenign {
			res.WhitelistShadowed++
			continue
		}
		if _, inPruned := report.PrunedGraph.DomainIndex(name); !inPruned {
			res.Pruned++
			continue
		}
		if score[name] >= det.Threshold() {
			res.Detected++
		} else {
			res.Missed++
		}
	}
	return res, nil
}

// String renders the evasion accounting.
func (e *EvasionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Evasion study (Section VI): C&C channels on free-registration subdomains (%s, day %d)\n",
		e.Network, e.Day)
	fmt.Fprintf(&b, "malware-operated subdomains observed: %d\n", e.ActiveAbusedSubs)
	pct := func(x int) string {
		if e.ActiveAbusedSubs == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(x)/float64(e.ActiveAbusedSubs))
	}
	fmt.Fprintf(&b, "  shadowed by a whitelisted zone (never classified): %4d (%s)\n",
		e.WhitelistShadowed, pct(e.WhitelistShadowed))
	fmt.Fprintf(&b, "  pruned before classification:                      %4d (%s)\n", e.Pruned, pct(e.Pruned))
	fmt.Fprintf(&b, "  classified and detected at <=0.1%% FP:              %4d (%s)\n", e.Detected, pct(e.Detected))
	fmt.Fprintf(&b, "  classified but missed:                             %4d (%s)\n", e.Missed, pct(e.Missed))
	b.WriteString("(the whitelist-shadowed share is the cost of the evasion the paper discusses;\n")
	b.WriteString(" its counterweight is operational: popular zones are patrolled and taken down)\n")
	return b.String()
}
