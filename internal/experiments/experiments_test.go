package experiments

import (
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	_, isp1, isp2 := sharedFixture(t)
	res, err := RunTable1([]*Network{isp1, isp2}, []int{170, 180})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.TotalDomains == 0 || r.TotalMachines == 0 || r.Edges == 0 {
			t.Fatalf("empty row: %+v", r)
		}
		if r.MalwareDomains == 0 || r.MalwareMachine == 0 {
			t.Fatalf("no labeled malware in row: %+v", r)
		}
		if r.BenignDomains >= r.TotalDomains {
			t.Fatalf("benign >= total: %+v", r)
		}
	}
	s := res.String()
	if !strings.Contains(s, "Table I") || !strings.Contains(s, "TISP1") {
		t.Fatalf("rendering broken:\n%s", s)
	}
}

func TestRunFig3(t *testing.T) {
	_, isp1, _ := sharedFixture(t)
	res, err := RunFig3(isp1, 170)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected < 30 {
		t.Fatalf("infected = %d, too few for a shape check", res.Infected)
	}
	// The paper's headline: ~70% query more than one control domain.
	if res.FracMoreThanOne < 0.5 || res.FracMoreThanOne > 0.9 {
		t.Fatalf("frac >1 = %.2f, want ~0.7", res.FracMoreThanOne)
	}
	// The tiny test population over-represents prober machines (2 probers
	// vs ~75 infections); at experiment scale this fraction is ~0.
	if res.FracMoreThanTwenty > 0.05 {
		t.Fatalf("frac >20 = %.3f, want ~0", res.FracMoreThanTwenty)
	}
	if !strings.Contains(res.String(), "Figure 3") {
		t.Fatal("rendering broken")
	}
}

func TestRunPruning(t *testing.T) {
	_, isp1, _ := sharedFixture(t)
	res, err := RunPruning([]*Network{isp1}, []int{170, 180})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDomainReduction <= 0 || res.AvgDomainReduction >= 1 {
		t.Fatalf("domain reduction = %.3f, want in (0,1)", res.AvgDomainReduction)
	}
	if res.AvgEdgeReduction <= 0 {
		t.Fatalf("edge reduction = %.3f, want > 0", res.AvgEdgeReduction)
	}
	if !strings.Contains(res.String(), "R1") {
		t.Fatal("rendering broken")
	}
}

func TestRunFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunFig7(isp1, 170, 178, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %d, want 4", len(res.Variants))
	}
	byName := map[string]*CrossResult{}
	for _, v := range res.Variants {
		byName[v.Name] = v.Result
	}
	all := byName["All features"]
	noMachine := byName["No machine"]
	if all == nil || noMachine == nil {
		t.Fatal("missing variants")
	}
	// The paper's key finding: removing machine-behavior features hurts
	// low-FP detection.
	if noMachine.TPRAt[0.001] >= all.TPRAt[0.001] && noMachine.AUC >= all.AUC {
		t.Fatalf("no-machine (TPR %.3f AUC %.4f) should underperform all features (TPR %.3f AUC %.4f)",
			noMachine.TPRAt[0.001], noMachine.AUC, all.TPRAt[0.001], all.AUC)
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Fatal("rendering broken")
	}
}

func TestRunFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunFig8(isp1, 175, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestMalware < 10 {
		t.Fatalf("pooled malware = %d, too few", res.TestMalware)
	}
	// Cross-family detection should still work (the paper reads >85% at
	// 0.1% FP at full scale; we accept a lower bar at test scale).
	if res.All.TPRAt[0.01] < 0.5 {
		t.Fatalf("cross-family TPR@1%% = %.3f, want >= 0.5", res.All.TPRAt[0.01])
	}
	if !strings.Contains(res.String(), "Figure 8") {
		t.Fatal("rendering broken")
	}
}

func TestRunTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	cross, err := RunCross(isp1, 170, isp1, 180, CrossOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTable3([]*CrossResult{cross}, map[string]*Network{"TISP1": isp1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row.FQDs > 0 {
		if row.E2LDs == 0 || row.E2LDs > row.FQDs {
			t.Fatalf("e2LD count inconsistent: %+v", row)
		}
		if row.Top10E2LDShare <= 0 || row.Top10E2LDShare > 1 {
			t.Fatalf("top-10 share out of range: %+v", row)
		}
	}
	if !strings.Contains(res.String(), "Table III") {
		t.Fatal("rendering broken")
	}
}

func TestRunFig10AndCrossBlacklist(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	fig10, err := RunFig10(isp1, 170, 178, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fig10.TestMalware == 0 {
		t.Fatal("fig10: no public-blacklist malware in test set")
	}
	if fig10.AUC < 0.75 {
		t.Fatalf("fig10 AUC = %.3f, want >= 0.75 with noisy public feeds", fig10.AUC)
	}

	cbl, err := RunCrossBlacklist(isp1, 170, 178, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cbl.PublicOnly == 0 {
		t.Fatal("no public-only domains")
	}
	if len(cbl.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(cbl.Points))
	}
	if !strings.Contains(cbl.String(), "Cross-blacklist") {
		t.Fatal("rendering broken")
	}
}

func TestRunFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunFig11([]*Network{isp1}, []int{170, 171}, 35, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDetections == 0 {
		t.Fatal("no detections at the 0.1% FP threshold")
	}
	if res.TrulyMalware == 0 {
		t.Fatal("detections should include truly malware-operated domains")
	}
	if res.LaterListed == 0 {
		t.Fatal("some detections should appear on the blacklist later")
	}
	for gap := range res.Gaps {
		if gap < 1 || gap > 35 {
			t.Fatalf("gap %d out of horizon", gap)
		}
	}
	if !strings.Contains(res.String(), "Figure 11") {
		t.Fatal("rendering broken")
	}
}

func TestRunPerf(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunPerf(isp1, 172)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges == 0 || res.Classified == 0 {
		t.Fatalf("degenerate perf run: %+v", res)
	}
	if res.LearningTotal() <= 0 {
		t.Fatal("learning total must be positive")
	}
	// The paper's shape: classification is much cheaper than learning.
	classify := res.Classify.Extract + res.Classify.Score
	if classify > res.LearningTotal() {
		t.Fatalf("classification (%v) should be cheaper than learning (%v)",
			classify, res.LearningTotal())
	}
	if !strings.Contains(res.String(), "LEARNING TOTAL") {
		t.Fatal("rendering broken")
	}
}

func TestRunFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunFig12([]*Network{isp1}, 170, 185, 13)
	if err != nil {
		t.Fatal(err)
	}
	isp := res.PerISP[0]
	if isp.NewC2 == 0 {
		t.Fatal("no newly blacklisted C&C domains")
	}
	// The headline shape (paper Figure 12): Segugio at a sub-1% FP budget
	// detects more new C&C than Notos can at ANY threshold; Notos's
	// ceiling is capped by its reject option and it pays a visibly
	// higher FP cost to reach that ceiling.
	if isp.Segugio.TPRAt[0.007] <= isp.Notos.BestTPR {
		t.Fatalf("Segugio TPR@0.7%%=%.3f should exceed Notos's best reachable TPR %.3f",
			isp.Segugio.TPRAt[0.007], isp.Notos.BestTPR)
	}
	if isp.Notos.BestTPR > 0.8 {
		t.Fatalf("Notos best TPR %.3f — reject option should cap it below 0.8", isp.Notos.BestTPR)
	}
	if isp.Notos.FPRAtBestTPR < 0.0005 {
		t.Fatalf("Notos reaches its best TPR at FPR %.4f — too cheap; the young-hostname FP cost is missing",
			isp.Notos.FPRAtBestTPR)
	}
	t.Logf("Segugio TPR@0.7%%FP=%.3f; Notos best TPR %.3f at FPR %.4f, rejected %d/%d new C&C",
		isp.Segugio.TPRAt[0.007], isp.Notos.BestTPR, isp.Notos.FPRAtBestTPR,
		isp.NotosReject.Malware, isp.NewC2)
	t4 := res.Table4
	if t4.Total > 0 {
		sum := t4.SuspiciousContent + t4.SandboxQueried + t4.MalwareIPs + t4.MalwarePrefixes + t4.NoEvidence
		if sum != t4.Total {
			t.Fatalf("Table IV breakdown %d != total %d", sum, t4.Total)
		}
	}
	if !strings.Contains(res.String(), "Table IV") {
		t.Fatal("rendering broken")
	}
}

func TestRunLBP(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunLBP(isp1, 170, 178, false, 17)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim — Segugio clearly beating LBP, especially at low
	// FP rates — reproduces at experiment scale (see EXPERIMENTS.md: at
	// 24k machines Segugio reaches ~98% vs LBP's ~71% TPR at 0.1% FP).
	// At this tiny fixture scale single-coincidence FPs dominate the
	// 0.1% regime for both systems, so the unit test only checks that
	// both produce sane, comparable curves.
	t.Logf("Segugio: AUC %.4f TPR@0.1%%=%.3f TPR@1%%=%.3f (%v); LBP: AUC %.4f TPR@0.1%%=%.3f TPR@1%%=%.3f (%v)",
		res.Segugio.AUC, res.Segugio.TPRAt[0.001], res.Segugio.TPRAt[0.01], res.SegugioTime,
		res.BP.AUC, res.BP.TPRAt[0.001], res.BP.TPRAt[0.01], res.BPTime)
	if res.Segugio.AUC < 0.8 {
		t.Fatalf("Segugio AUC %.4f too low", res.Segugio.AUC)
	}
	if res.BP.AUC < 0.7 {
		t.Fatalf("LBP AUC %.4f too low for a functioning baseline", res.BP.AUC)
	}
	if res.Iterations == 0 || res.BPTime <= 0 {
		t.Fatal("LBP did not run")
	}
	if res.Iterations == 0 {
		t.Fatal("LBP did not iterate")
	}
	if !strings.Contains(res.String(), "Segugio") {
		t.Fatal("rendering broken")
	}
}

func TestRunClassifiers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunClassifiers(isp1, 170, 178, 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.RandomForest.AUC < 0.8 || res.Logistic.AUC < 0.7 {
		t.Fatalf("AUCs too low: rf=%.3f lr=%.3f", res.RandomForest.AUC, res.Logistic.AUC)
	}
	if !strings.Contains(res.String(), "random forest") {
		t.Fatal("rendering broken")
	}
}

func TestRunPruningAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunPruningAblation(isp1, 170, 178, 23)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithPruning.AUC < 0.8 {
		t.Fatalf("pruned AUC = %.3f too low", res.WithPruning.AUC)
	}
	// Unpruned must still work; the claim is efficiency, not accuracy.
	if res.WithoutPruning.AUC < 0.7 {
		t.Fatalf("unpruned AUC = %.3f too low", res.WithoutPruning.AUC)
	}
	if !strings.Contains(res.String(), "Pruning ablation") {
		t.Fatal("rendering broken")
	}
}

func TestRunProberFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunProberFilter(isp1, 170, 178, 27)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RemovedTrain) == 0 {
		t.Fatal("filter found no probers despite prober machines in the population")
	}
	if res.TrueProbers == 0 {
		t.Fatal("none of the removed clients is a true scanner")
	}
	// At this tiny scale the handful of scanners inflates every C&C
	// domain's degree, so filtering them costs visibility; the filter's
	// accuracy-neutrality only holds at experiment scale (where real
	// infections dominate domain degrees). Here we only require the
	// filtered pipeline to keep functioning.
	if res.With.AUC < 0.5 {
		t.Fatalf("filtered pipeline collapsed: AUC %.4f", res.With.AUC)
	}
	t.Logf("AUC without filter %.4f, with filter %.4f", res.Without.AUC, res.With.AUC)
	if !strings.Contains(res.String(), "Prober filter") {
		t.Fatal("rendering broken")
	}
}

func TestRunChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	u, _, _ := sharedFixture(t)
	res, err := RunChurn(u, TestPopulation("CHURNBASE", 44), 170, 178, []float64{0, 0.3}, 29)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(res.Results))
	}
	// Both settings must produce functioning detectors; the directional
	// effect of churn is a scale-level question (tiny fixtures swing
	// either way on coincidence noise).
	for i, r := range res.Results {
		if r.AUC < 0.75 {
			t.Fatalf("churn rate %.2f: AUC %.4f too low", res.Rates[i], r.AUC)
		}
	}
	if !strings.Contains(res.String(), "DHCP churn") {
		t.Fatal("rendering broken")
	}
}

func TestRunCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunCoverage(isp1, 170, 178, []float64{0.75, 0.2}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(res.Results))
	}
	for _, r := range res.Results {
		if r.AUC < 0.7 {
			t.Fatalf("AUC %.4f too low even at reduced coverage", r.AUC)
		}
	}
	if !strings.Contains(res.String(), "coverage") {
		t.Fatal("rendering broken")
	}
}

func TestRunWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunWindow(isp1, 170, 178, []int{3, 14}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(res.Results))
	}
	for _, r := range res.Results {
		if r.AUC < 0.8 {
			t.Fatalf("AUC %.4f too low", r.AUC)
		}
	}
	if !strings.Contains(res.String(), "window") {
		t.Fatal("rendering broken")
	}
}

func TestRunImportances(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunImportances(isp1, 170)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 11 || len(res.Weights) != 11 {
		t.Fatalf("names/weights = %d/%d, want 11", len(res.Names), len(res.Weights))
	}
	sum := 0.0
	for i, w := range res.Weights {
		if w < 0 || w > 1 {
			t.Fatalf("weight %d = %v out of [0,1]", i, w)
		}
		if i > 0 && w > res.Weights[i-1] {
			t.Fatal("weights not descending")
		}
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum = %v, want 1", sum)
	}
	// The Figure 7 story: F1 should dominate.
	if res.ByGroup["machine behavior (F1)"] < 0.4 {
		t.Fatalf("F1 group importance = %v, want dominant", res.ByGroup["machine behavior (F1)"])
	}
	if !strings.Contains(res.String(), "Feature importances") {
		t.Fatal("rendering broken")
	}
}

func TestRunEvasion(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunEvasion(isp1, 170, 178, 39)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveAbusedSubs == 0 {
		t.Fatal("no abused subdomains observed")
	}
	total := res.WhitelistShadowed + res.Pruned + res.Detected + res.Missed
	if total != res.ActiveAbusedSubs {
		t.Fatalf("accounting broken: %d+%d+%d+%d != %d",
			res.WhitelistShadowed, res.Pruned, res.Detected, res.Missed, res.ActiveAbusedSubs)
	}
	// The evasion must actually shadow something (some zones are
	// whitelisted) AND detection must catch some of the rest.
	if res.WhitelistShadowed == 0 {
		t.Fatal("no whitelist-shadowed subdomains; evasion vector missing")
	}
	if res.Detected == 0 {
		t.Fatal("no abused subdomain detected among the classified ones")
	}
	if !strings.Contains(res.String(), "Evasion study") {
		t.Fatal("rendering broken")
	}
}

func TestRunCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	_, isp1, _ := sharedFixture(t)
	res, err := RunCrossValidation(isp1, 172, 3, 47)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestMalware < 20 || res.TestBenign < 500 {
		t.Fatalf("pooled test set too small: %d/%d", res.TestMalware, res.TestBenign)
	}
	if res.AUC < 0.85 {
		t.Fatalf("cross-validation AUC = %.4f, want >= 0.85", res.AUC)
	}
	if !(res.TPRLo <= res.TPRAt[0.001]+1e-9 && res.TPRAt[0.001] <= res.TPRHi+0.1) {
		t.Fatalf("point %.3f outside CI [%.3f, %.3f]", res.TPRAt[0.001], res.TPRLo, res.TPRHi)
	}
	if !strings.Contains(res.String(), "cross-validation") {
		t.Fatal("rendering broken")
	}
}
