package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/core"
	"segugio/internal/eval"
)

// Fig11Result reproduces the early-detection experiment of Section IV-F
// (Figure 11): Segugio runs on several consecutive days with its
// threshold tuned to <=0.1% FPs, classifies all still-unknown domains,
// and each detection is checked against the blacklist's future listing
// dates. The paper found 38 detected domains that entered the blacklist
// up to 35 days later, many of them weeks after Segugio flagged them.
type Fig11Result struct {
	// Gaps histograms listing lag: Gaps[g] = number of detections that
	// appeared on the blacklist g days after Segugio detected them.
	Gaps map[int]int
	// LaterListed counts detections later added to the blacklist within
	// the horizon; TotalDetections counts all threshold-crossing unknown
	// domains.
	LaterListed     int
	TotalDetections int
	// TrulyMalware counts detections that are genuinely malware-operated
	// per the simulator's ground truth (the paper cannot know this; the
	// simulation can, and it bounds how many "non-listed" detections are
	// actually correct).
	TrulyMalware int
	// Horizon is the look-ahead window in days (paper: 35).
	Horizon int
	// DaysRun lists the (network, day) pairs evaluated.
	DaysRun []string
}

// RunFig11 performs the early-detection experiment over the given
// consecutive observation days on each network.
func RunFig11(nets []*Network, days []int, horizon int, seed int64) (*Fig11Result, error) {
	if horizon <= 0 {
		horizon = 35
	}
	res := &Fig11Result{Gaps: make(map[int]int), Horizon: horizon}
	for _, n := range nets {
		for _, day := range days {
			if err := earlyDetectOneDay(n, day, horizon, seed, res); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

func earlyDetectOneDay(n *Network, day, horizon int, seed int64, res *Fig11Result) error {
	// Calibrate the detection threshold on a same-day validation split.
	r, err := RunCross(n, day, n, day, CrossOptions{TestFraction: 0.3, Seed: seed})
	if err != nil {
		return fmt.Errorf("experiments: fig11 calibrate %s day %d: %w", n.Name(), day, err)
	}
	threshold := eval.ThresholdAtFPR(r.Curve, 0.001)
	det := r.Detector
	det.SetThreshold(threshold)

	// Classify every still-unknown domain of the day. The graph currently
	// carries the calibration labeling (validation split hidden); those
	// hidden knowns are skipped below.
	dd := n.Day(day)
	g := n.Labeled(dd, n.Commercial, nil)
	dets, _, err := det.Classify(core.ClassifyInput{
		Graph: g, Activity: dd.Activity, Abuse: n.Abuse(day, n.Commercial),
	})
	if err != nil {
		return fmt.Errorf("experiments: fig11 classify %s day %d: %w", n.Name(), day, err)
	}
	res.DaysRun = append(res.DaysRun, fmt.Sprintf("%s/day%d", n.Name(), day))

	for _, d := range det.Detected(dets) {
		res.TotalDetections++
		if id, ok := n.Cat.IDByName(d.Domain); ok {
			if _, malware := n.Cat.TrueFamily(id); malware {
				res.TrulyMalware++
			}
		}
		e, listed := n.Commercial.Entry(d.Domain)
		if !listed || e.FirstListed <= day || e.FirstListed > day+horizon {
			continue
		}
		res.LaterListed++
		res.Gaps[e.FirstListed-day]++
	}
	return nil
}

// String renders the early-detection histogram.
func (f *Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: early detection of malware-control domains (%s)\n",
		strings.Join(f.DaysRun, ", "))
	fmt.Fprintf(&b, "detections at <=0.1%% FP threshold: %d (of which %d truly malware-operated)\n",
		f.TotalDetections, f.TrulyMalware)
	fmt.Fprintf(&b, "detections appearing on the blacklist within %d days: %d (paper: 38)\n",
		f.Horizon, f.LaterListed)
	b.WriteString("histogram of days between detection and blacklisting:\n")
	maxGap := 0
	for g := range f.Gaps {
		if g > maxGap {
			maxGap = g
		}
	}
	for g := 1; g <= maxGap; g++ {
		if c := f.Gaps[g]; c > 0 {
			fmt.Fprintf(&b, "  +%2d days: %3d %s\n", g, c, strings.Repeat("#", c))
		}
	}
	return b.String()
}
