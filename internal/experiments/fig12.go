package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/core"
	"segugio/internal/eval"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/notos"
)

// Fig12ISP is the Segugio-vs-Notos outcome on one network (paper
// Figure 12): both systems are trained with ground truth frozen at the
// training day (Notos's blacklist a proper superset of Segugio's, both
// using the top-100K whitelist), then evaluated on the control domains
// blacklisted *after* training and the big whitelist minus the top-100K.
type Fig12ISP struct {
	Network  string
	TrainDay int
	TestDay  int
	// NewC2 counts the test-day-observed control domains blacklisted
	// after training (the paper had 44 and 36).
	NewC2       int
	TestBenign  int
	Segugio     CurveSummary
	Notos       CurveSummary
	NotosReject struct {
		Malware int // new C&C rejected for lack of history
		Benign  int
	}
}

// CurveSummary compresses one system's ROC.
type CurveSummary struct {
	Curve []eval.ROCPoint
	AUC   float64
	// BestTPR is the maximum reachable detection rate; FPRAtBestTPR is
	// the false-positive cost of reaching it.
	BestTPR      float64
	FPRAtBestTPR float64
	TPRAt        map[float64]float64
}

// Table4 breaks down the Notos false positives at its best-TPR threshold
// (paper Table IV), cascading each FP into the first matching evidence
// class.
type Table4 struct {
	Total             int
	SuspiciousContent int // benign sites in dirty hosting space
	SandboxQueried    int // domains queried by sandboxed malware
	MalwareIPs        int // resolved to IPs previously used by malware
	MalwarePrefixes   int // resolved into /24s used by malware
	NoEvidence        int // potential genuine reputation FPs
}

// Fig12Result bundles both networks plus the FP breakdown for the first.
type Fig12Result struct {
	PerISP []Fig12ISP
	Table4 Table4
}

// RunFig12 runs the comparison on each network.
func RunFig12(nets []*Network, trainDay, testDay int, seed int64) (*Fig12Result, error) {
	res := &Fig12Result{}
	for i, n := range nets {
		isp, fps, err := compareOnNetwork(n, trainDay, testDay, seed+int64(i))
		if err != nil {
			return nil, err
		}
		res.PerISP = append(res.PerISP, *isp)
		if i == 0 {
			res.Table4 = fps
		}
	}
	return res, nil
}

func compareOnNetwork(n *Network, trainDay, testDay int, seed int64) (*Fig12ISP, Table4, error) {
	isp := &Fig12ISP{Network: n.Name(), TrainDay: trainDay, TestDay: testDay}

	// Ground truth as of training time. The Notos blacklist is a proper
	// superset of Segugio's (paper Section V).
	notosBL := n.Commercial.Union(n.Public)

	// Test sets: new C&C blacklisted after training, and the big
	// whitelist minus the top-100K used in training.
	dd2 := n.Day(testDay)
	var testDomains []string
	var testLabels []int
	for _, d := range n.Commercial.Domains() {
		e, _ := n.Commercial.Entry(d)
		if e.FirstListed <= trainDay || e.FirstListed > testDay {
			continue
		}
		if _, ok := dd2.Graph.DomainIndex(d); !ok {
			continue
		}
		testDomains = append(testDomains, d)
		testLabels = append(testLabels, 1)
	}
	isp.NewC2 = len(testDomains)
	if isp.NewC2 == 0 {
		return nil, Table4{}, fmt.Errorf("experiments: fig12: no newly blacklisted C&C observed on %s day %d", n.Name(), testDay)
	}
	bigMinusTop := n.Whitelist.Clone()
	bigMinusTop.Remove(n.Top100K.E2LDs())
	for d := int32(0); d < int32(dd2.Graph.NumDomains()); d++ {
		name := dd2.Graph.DomainName(d)
		if bigMinusTop.ContainsE2LD(dd2.Graph.DomainE2LD(d)) {
			testDomains = append(testDomains, name)
			testLabels = append(testLabels, 0)
		}
	}
	isp.TestBenign = len(testDomains) - isp.NewC2

	hidden := make(map[string]struct{}, len(testDomains))
	for _, d := range testDomains {
		hidden[d] = struct{}{}
	}

	// --- Segugio, trained on trainDay with the top-100K whitelist. ---
	dd1 := n.Day(trainDay)
	dd1.Graph.ApplyLabels(graph.LabelSources{
		Blacklist: n.Commercial, Whitelist: n.Top100K, AsOf: trainDay, Hidden: hidden,
	})
	det, _, err := core.Train(core.DefaultConfig(), core.TrainInput{
		Graph: dd1.Graph, Activity: dd1.Activity,
		Abuse: n.Abuse(trainDay, n.Commercial), Exclude: hidden,
	})
	if err != nil {
		return nil, Table4{}, fmt.Errorf("experiments: fig12 segugio train: %w", err)
	}
	dd2.Graph.ApplyLabels(graph.LabelSources{
		Blacklist: n.Commercial, Whitelist: n.Top100K, AsOf: trainDay, Hidden: hidden,
	})
	dets, _, err := det.Classify(core.ClassifyInput{
		Graph: dd2.Graph, Activity: dd2.Activity,
		Abuse: n.Abuse(testDay, n.Commercial), Domains: testDomains,
	})
	if err != nil {
		return nil, Table4{}, fmt.Errorf("experiments: fig12 segugio classify: %w", err)
	}
	segScores := scoresFor(testDomains, dets)
	isp.Segugio, err = summarizeCurve(segScores, testLabels)
	if err != nil {
		return nil, Table4{}, err
	}

	// --- Notos, trained at the same cutoff on its superset blacklist. ---
	nc, err := notos.Train(notos.Config{Suffixes: n.Suffixes}, n.DB, trainDay, notosBL, n.Top100K)
	if err != nil {
		return nil, Table4{}, fmt.Errorf("experiments: fig12 notos train: %w", err)
	}
	notosScores := make([]float64, len(testDomains))
	for i, d := range testDomains {
		s, ok := nc.Score(d, testDay)
		if !ok {
			// Reject option: the domain cannot be classified, hence never
			// detected. Encode below every real score.
			notosScores[i] = -1
			if testLabels[i] == 1 {
				isp.NotosReject.Malware++
			} else {
				isp.NotosReject.Benign++
			}
			continue
		}
		notosScores[i] = s
	}
	isp.Notos, err = summarizeCurve(notosScores, testLabels)
	if err != nil {
		return nil, Table4{}, err
	}

	// --- Table IV: break down Notos's FPs at its best-TPR threshold. ---
	table4 := breakdownNotosFPs(n, dd2.Graph, testDomains, testLabels, notosScores, isp.Notos, testDay, notosBL)
	return isp, table4, nil
}

// summarizeCurve builds the curve and reads the headline points. BestTPR
// ignores the artificial -1 "rejected" threshold: detection requires a
// real score.
func summarizeCurve(scores []float64, labels []int) (CurveSummary, error) {
	curve, err := eval.ROC(scores, labels)
	if err != nil {
		return CurveSummary{}, fmt.Errorf("experiments: fig12 roc: %w", err)
	}
	s := CurveSummary{Curve: curve, TPRAt: map[float64]float64{}}
	s.AUC, _ = eval.AUC(curve)
	for _, b := range append(FPBudgets, 0.007, 0.03) {
		s.TPRAt[b] = eval.TPRAtFPR(curve, b)
	}
	for _, p := range curve {
		if p.Threshold < 0 {
			break // the rejected mass is not detectable
		}
		if p.TPR > s.BestTPR {
			s.BestTPR, s.FPRAtBestTPR = p.TPR, p.FPR
		}
	}
	return s, nil
}

func scoresFor(domains []string, dets []core.Detection) []float64 {
	byDomain := make(map[string]float64, len(dets))
	for _, d := range dets {
		byDomain[d.Domain] = d.Score
	}
	out := make([]float64, len(domains))
	for i, d := range domains {
		out[i] = byDomain[d]
	}
	return out
}

// breakdownNotosFPs classifies each Notos FP by its first matching
// evidence class, mirroring Table IV.
func breakdownNotosFPs(n *Network, g *graph.Graph, domains []string, labels []int,
	scores []float64, notosSummary CurveSummary, testDay int, notosBL *intel.Blacklist) Table4 {
	threshold := eval.ThresholdAtFPR(notosSummary.Curve, notosSummary.FPRAtBestTPR)
	abuse := n.Abuse(testDay, notosBL)
	var t Table4
	for i, name := range domains {
		if labels[i] != 0 || scores[i] < threshold || scores[i] < 0 {
			continue
		}
		t.Total++
		id, known := n.Cat.IDByName(name)
		inSandbox := n.Sandbox.QueriedByMalware(name, testDay)
		ips := []bool{false, false} // [ip evidence, prefix evidence]
		if di, ok := g.DomainIndex(name); ok {
			for _, ip := range g.DomainIPs(di) {
				if abuse.MalwareIP(ip) {
					ips[0] = true
				}
				if abuse.MalwarePrefix(ip) {
					ips[1] = true
				}
			}
		}
		switch {
		case known && n.Cat.IsDirtyBenign(id):
			t.SuspiciousContent++
		case inSandbox:
			t.SandboxQueried++
		case ips[0]:
			t.MalwareIPs++
		case ips[1]:
			t.MalwarePrefixes++
		default:
			t.NoEvidence++
		}
	}
	return t
}

// String renders the comparison.
func (f *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12: comparison between Notos and Segugio\n")
	for _, isp := range f.PerISP {
		fmt.Fprintf(&b, "\n%s (train day %d, test day %d, gap %d days)\n",
			isp.Network, isp.TrainDay, isp.TestDay, isp.TestDay-isp.TrainDay)
		fmt.Fprintf(&b, "  newly blacklisted C&C observed: %d; benign test domains: %d\n",
			isp.NewC2, isp.TestBenign)
		fmt.Fprintf(&b, "  Segugio: TPR %.1f%% @0.7%%FP, %.1f%% @3%%FP (AUC %.4f)\n",
			isp.Segugio.TPRAt[0.007]*100, isp.Segugio.TPRAt[0.03]*100, isp.Segugio.AUC)
		fmt.Fprintf(&b, "  Notos:   best TPR %.1f%% at %.1f%% FP; TPR @3%%FP %.1f%% (AUC %.4f)\n",
			isp.Notos.BestTPR*100, isp.Notos.FPRAtBestTPR*100, isp.Notos.TPRAt[0.03]*100, isp.Notos.AUC)
		fmt.Fprintf(&b, "  Notos reject option: %d/%d new C&C and %d benign rejected (no history)\n",
			isp.NotosReject.Malware, isp.NewC2, isp.NotosReject.Benign)
	}
	b.WriteString("\n(paper: Segugio 90.9%/75% TPs below 0.7% FPs; Notos <56% TPs at 16-21% FPs)\n")
	t := f.Table4
	b.WriteString("\nTable IV: break-down of Notos's FPs (first network)\n")
	fmt.Fprintf(&b, "  all Notos FPs                                 %6d\n", t.Total)
	fmt.Fprintf(&b, "  suspicious content (dirty hosting)            %6d (%s)\n", t.SuspiciousContent, pct(t.SuspiciousContent, t.Total))
	fmt.Fprintf(&b, "  domains queried by malware (sandbox)          %6d (%s)\n", t.SandboxQueried, pct(t.SandboxQueried, t.Total))
	fmt.Fprintf(&b, "  domains with IPs previously used by malware   %6d (%s)\n", t.MalwareIPs, pct(t.MalwareIPs, t.Total))
	fmt.Fprintf(&b, "  domains in /24 networks used by malware       %6d (%s)\n", t.MalwarePrefixes, pct(t.MalwarePrefixes, t.Total))
	fmt.Fprintf(&b, "  no evidence (potential reputation FPs)        %6d (%s)\n", t.NoEvidence, pct(t.NoEvidence, t.Total))
	return b.String()
}

func pct(x, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(x)/float64(total))
}
