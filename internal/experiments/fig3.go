package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/graph"
)

// Fig3Result reproduces Figure 3: the distribution of the number of
// known malware-control domains queried per infected machine in one day
// of traffic. The paper's headline reading: about 70% of infected
// machines query more than one control domain, and essentially none
// query more than twenty.
type Fig3Result struct {
	Network string
	Day     int
	// Histogram[k] counts machines that queried exactly k malware
	// domains (k >= 1); the tail is clipped at MaxBucket.
	Histogram map[int]int
	Infected  int
	// FracMoreThanOne is the fraction of infected machines querying >1.
	FracMoreThanOne float64
	// FracMoreThanTwenty is the (expected tiny) heavy tail.
	FracMoreThanTwenty float64
}

// RunFig3 measures the distribution on one labeled ISP-day.
func RunFig3(n *Network, day int) (*Fig3Result, error) {
	dd := n.Day(day)
	g := n.Labeled(dd, n.Commercial, nil)

	res := &Fig3Result{Network: n.Name(), Day: day, Histogram: make(map[int]int)}
	for m := int32(0); m < int32(g.NumMachines()); m++ {
		if g.MachineLabel(m) != graph.LabelMalware {
			continue
		}
		k := g.MachineMalwareCount(m)
		res.Infected++
		res.Histogram[k]++
		if k > 1 {
			res.FracMoreThanOne++
		}
		if k > 20 {
			res.FracMoreThanTwenty++
		}
	}
	if res.Infected > 0 {
		res.FracMoreThanOne /= float64(res.Infected)
		res.FracMoreThanTwenty /= float64(res.Infected)
	}
	return res, nil
}

// String renders the distribution as a CDF table.
func (f *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: malware-control domains queried per infected machine (%s, day %d)\n",
		f.Network, f.Day)
	fmt.Fprintf(&b, "infected machines: %d\n", f.Infected)
	maxK := 0
	for k := range f.Histogram {
		if k > maxK {
			maxK = k
		}
	}
	cum := 0
	fmt.Fprintf(&b, "%6s %8s %8s %8s\n", "k", "count", "pdf", "cdf")
	for k := 1; k <= maxK && k <= 25; k++ {
		c := f.Histogram[k]
		cum += c
		if c == 0 && k > 20 {
			continue
		}
		fmt.Fprintf(&b, "%6d %8d %7.1f%% %7.1f%%\n", k, c,
			100*float64(c)/float64(f.Infected), 100*float64(cum)/float64(f.Infected))
	}
	fmt.Fprintf(&b, "fraction querying >1 domain:  %5.1f%%  (paper: ~70%%)\n", f.FracMoreThanOne*100)
	fmt.Fprintf(&b, "fraction querying >20 domains: %5.2f%% (paper: ~0%%)\n", f.FracMoreThanTwenty*100)
	return b.String()
}
