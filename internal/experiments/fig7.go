package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/core"
	"segugio/internal/features"
)

// Fig7Variant is one curve of the feature-analysis figure.
type Fig7Variant struct {
	Name   string
	Result *CrossResult
}

// Fig7Result reproduces Figure 7: cross-day detection with one feature
// group removed at a time, against the all-features curve. The paper's
// reading: "No IP" still clears 80% TPs below 0.2% FPs, while "No
// machine" visibly drops at low FP rates — the machine-behavior features
// are what buys high detection at low false positives.
type Fig7Result struct {
	Variants []Fig7Variant
}

// fig7Ablations maps curve names to retained feature columns.
func fig7Ablations() []struct {
	name string
	cols []int
} {
	return []struct {
		name string
		cols []int
	}{
		{name: "All features", cols: nil},
		{name: "No machine", cols: features.ColumnsExcluding(features.GroupMachineBehavior)},
		{name: "No activity", cols: features.ColumnsExcluding(features.GroupDomainActivity)},
		{name: "No IP", cols: features.ColumnsExcluding(features.GroupIPAbuse)},
	}
}

// RunFig7 runs the cross-day experiment once per ablation, holding the
// train/test split fixed across variants so the curves are comparable.
func RunFig7(n *Network, trainDay, testDay int, seed int64) (*Fig7Result, error) {
	// Build the split once on unlabeled graphs.
	dd1, dd2 := n.Day(trainDay), n.Day(testDay)
	split := NewSplit(n, dd1.Graph, dd2.Graph, n.Commercial, trainDay, 0.6, seed)

	res := &Fig7Result{}
	for _, abl := range fig7Ablations() {
		cfg := core.DefaultConfig()
		cfg.FeatureColumns = abl.cols
		r, err := RunCross(n, trainDay, n, testDay, CrossOptions{Split: split, Core: &cfg})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %q: %w", abl.name, err)
		}
		res.Variants = append(res.Variants, Fig7Variant{Name: abl.name, Result: r})
	}
	return res, nil
}

// String renders the ablation comparison.
func (f *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: feature analysis (one group removed at a time)\n")
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %12s\n", "variant", "AUC", "TPR@0.1%FP", "TPR@0.5%FP", "TPR@1%FP")
	for _, v := range f.Variants {
		r := v.Result
		fmt.Fprintf(&b, "%-14s %10.4f %11.1f%% %11.1f%% %11.1f%%\n",
			v.Name, r.AUC, r.TPRAt[0.001]*100, r.TPRAt[0.005]*100, r.TPRAt[0.01]*100)
	}
	return b.String()
}
