package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/core"
	"segugio/internal/eval"
	"segugio/internal/features"
)

// Fig8Result reproduces the cross-malware-family experiment of
// Section IV-C (Figure 8): blacklisted domains are partitioned into
// family-balanced folds; each fold's families are entirely held out of
// training, so every detected test domain belongs to a malware family the
// classifier never saw. The paper reads >85% TPs at 0.1% FPs, and a
// marked drop when the machine-behavior features (F1) are removed.
type Fig8Result struct {
	Network string
	Day     int
	Folds   int
	// Pooled metrics over all folds' scores, for the full feature set and
	// for the No-machine ablation.
	All       Fig8Metrics
	NoMachine Fig8Metrics
	// TestMalware and TestBenign count pooled test examples (full run).
	TestMalware, TestBenign int
}

// Fig8Metrics summarizes one pooled curve.
type Fig8Metrics struct {
	AUC   float64
	TPRAt map[float64]float64
	Curve []eval.ROCPoint
}

// RunFig8 runs K-fold cross-family validation on one day of traffic.
func RunFig8(n *Network, day, folds int, seed int64) (*Fig8Result, error) {
	byFamily := map[string][]string{}
	for fam, domains := range n.Commercial.ByFamily() {
		if fam == "" {
			continue // the paper drops the <0.1% of unlabeled entries
		}
		var listed []string
		for _, d := range domains {
			if e, _ := n.Commercial.Entry(d); e.FirstListed <= day {
				listed = append(listed, d)
			}
		}
		if len(listed) > 0 {
			byFamily[fam] = listed
		}
	}
	foldSets, err := eval.FamilyFolds(byFamily, folds, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig8 folds: %w", err)
	}

	res := &Fig8Result{Network: n.Name(), Day: day, Folds: folds}
	variants := []struct {
		name string
		cols []int
		out  *Fig8Metrics
	}{
		{name: "all", cols: nil, out: &res.All},
		{name: "no-machine", cols: features.ColumnsExcluding(features.GroupMachineBehavior), out: &res.NoMachine},
	}
	for vi, v := range variants {
		var scores []float64
		var labels []int
		for fi, fold := range foldSets {
			dd := n.Day(day)
			split := SplitFromDomains(n, dd.Graph, fold, 1.0/float64(folds), seed+int64(fi))
			if split.Malware() == 0 {
				continue // fold's families not observed this day
			}
			cfg := core.DefaultConfig()
			cfg.FeatureColumns = v.cols
			r, err := RunCross(n, day, n, day, CrossOptions{Split: split, Core: &cfg})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 fold %d: %w", fi, err)
			}
			scores = append(scores, r.Scores...)
			labels = append(labels, r.Labels...)
			if vi == 0 {
				res.TestMalware += split.Malware()
				res.TestBenign += split.Benign()
			}
		}
		curve, err := eval.ROC(scores, labels)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 pooled roc: %w", err)
		}
		v.out.Curve = curve
		v.out.AUC, _ = eval.AUC(curve)
		v.out.TPRAt = map[float64]float64{}
		for _, b := range FPBudgets {
			v.out.TPRAt[b] = eval.TPRAtFPR(curve, b)
		}
	}
	return res, nil
}

// String renders the cross-family summary.
func (f *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: cross-malware-family detection (%s, day %d, %d family-balanced folds)\n",
		f.Network, f.Day, f.Folds)
	fmt.Fprintf(&b, "pooled test set: %d malware (families never in training), %d benign\n",
		f.TestMalware, f.TestBenign)
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %12s\n", "variant", "AUC", "TPR@0.1%FP", "TPR@0.5%FP", "TPR@1%FP")
	for _, row := range []struct {
		name string
		m    Fig8Metrics
	}{{"all features", f.All}, {"no machine", f.NoMachine}} {
		fmt.Fprintf(&b, "%-14s %10.4f %11.1f%% %11.1f%% %11.1f%%\n",
			row.name, row.m.AUC, row.m.TPRAt[0.001]*100, row.m.TPRAt[0.005]*100, row.m.TPRAt[0.01]*100)
	}
	b.WriteString("(paper: >85% TPs at 0.1% FPs with all features; removing F1 drops detection significantly)\n")
	return b.String()
}
