package experiments

import (
	"fmt"
	"sort"
	"strings"

	"segugio/internal/core"
	"segugio/internal/features"
	"segugio/internal/ml"
)

// ImportanceResult ranks the 11 features by the trained random forest's
// mean decrease in impurity. It complements the Figure 7 group ablations
// with a per-feature view: which individual signals the trees actually
// split on.
type ImportanceResult struct {
	Network  string
	Day      int
	Names    []string
	Weights  []float64 // parallel to Names, descending
	ByGroup  map[string]float64
	Examples int
}

// RunImportances trains the default forest on one labeled day and reads
// its feature importances.
func RunImportances(n *Network, day int) (*ImportanceResult, error) {
	dd := n.Day(day)
	g := n.Labeled(dd, n.Commercial, nil)

	var rf *ml.RandomForest
	cfg := core.DefaultConfig()
	baseFactory := cfg.NewModel
	cfg.NewModel = func(benign, malware int) ml.Model {
		m := baseFactory(benign, malware)
		rf = m.(*ml.RandomForest)
		return m
	}
	_, report, err := core.Train(cfg, core.TrainInput{
		Graph: g, Activity: dd.Activity, Abuse: n.Abuse(day, n.Commercial),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: importances: %w", err)
	}

	imp := rf.FeatureImportances()
	names := features.Names()
	order := make([]int, len(imp))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return imp[order[a]] > imp[order[b]] })

	res := &ImportanceResult{
		Network:  n.Name(),
		Day:      day,
		ByGroup:  map[string]float64{},
		Examples: report.TrainBenign + report.TrainMalware,
	}
	for _, i := range order {
		res.Names = append(res.Names, names[i])
		res.Weights = append(res.Weights, imp[i])
	}
	groups := map[string]features.Group{
		"machine behavior (F1)": features.GroupMachineBehavior,
		"domain activity (F2)":  features.GroupDomainActivity,
		"IP abuse (F3)":         features.GroupIPAbuse,
	}
	for label, gr := range groups {
		for _, c := range gr.Columns() {
			res.ByGroup[label] += imp[c]
		}
	}
	return res, nil
}

// String renders the ranking.
func (r *ImportanceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Feature importances (mean decrease in impurity; %s day %d, %d training examples)\n",
		r.Network, r.Day, r.Examples)
	for i, name := range r.Names {
		bar := strings.Repeat("#", int(r.Weights[i]*120))
		fmt.Fprintf(&b, "  %-28s %6.1f%% %s\n", name, r.Weights[i]*100, bar)
	}
	b.WriteString("by group:\n")
	groups := make([]string, 0, len(r.ByGroup))
	for g := range r.ByGroup {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Fprintf(&b, "  %-28s %6.1f%%\n", g, r.ByGroup[g]*100)
	}
	return b.String()
}
