package experiments

import (
	"fmt"
	"strings"
	"time"

	"segugio/internal/belief"
	"segugio/internal/graph"
)

// LBPResult reproduces the Section I comparison against loopy belief
// propagation ([6], Polonium-style inference): on the same test day and
// the same hidden test set, Segugio's feature-based classifier is
// compared with BP marginals computed directly on the behavior graph.
// The paper reports Segugio averaging 45% better accuracy and minutes
// instead of tens of hours.
type LBPResult struct {
	Network string
	Day     int
	// Sparse marks the public-feeds-only labeling variant.
	Sparse bool

	Segugio     CurveSummary
	BP          CurveSummary
	SegugioTime time.Duration // train + classify
	BPTime      time.Duration
	Iterations  int
	Converged   bool
}

// RunLBP evaluates both approaches on one cross-day setting. With
// sparse=true the graphs are labeled from the small public feeds instead
// of the commercial blacklist — the regime where the approaches separate:
// belief propagation has little to propagate from few seeds, while
// Segugio's activity and IP-abuse features keep carrying signal.
func RunLBP(n *Network, trainDay, testDay int, sparse bool, seed int64) (*LBPResult, error) {
	opts := CrossOptions{TestFraction: 0.6, Seed: seed}
	if sparse {
		opts.TrainBlacklist = n.Public
	}
	// Segugio path (timed end to end: train + classify).
	t0 := time.Now()
	seg, err := RunCross(n, trainDay, n, testDay, opts)
	if err != nil {
		return nil, err
	}
	segTime := time.Since(t0)

	res := &LBPResult{Network: n.Name(), Day: testDay, Sparse: sparse, SegugioTime: segTime}
	res.Segugio, err = summarizeCurve(seg.Scores, seg.Labels)
	if err != nil {
		return nil, err
	}

	// BP path on the raw labeled test-day graph (the same input Segugio's
	// Classify receives; graph pruning is part of Segugio's contribution
	// and the approach of [6] has no such stage, so BP takes the full
	// graph with its proxy/prober/singleton noise).
	bl := n.Commercial
	if sparse {
		bl = n.Public
	}
	g := n.Labeled(n.Day(testDay), bl, seg.Hidden)
	t0 = time.Now()
	// The experiment is a one-shot batch comparison, so the engine runs a
	// single cold pass (an inexact delta forces full propagation); the
	// same engine serves segugiod's incremental per-snapshot passes.
	eng := belief.NewEngine(belief.Config{MaxIterations: 15})
	bp, err := eng.Run(g, 1, 0, graph.Delta{})
	if err != nil {
		return nil, fmt.Errorf("experiments: lbp: %w", err)
	}
	res.BPTime = time.Since(t0)
	res.Iterations = bp.Iterations
	res.Converged = bp.Converged

	scores := make([]float64, len(seg.Domains))
	for i, name := range seg.Domains {
		if d, ok := g.DomainIndex(name); ok {
			scores[i] = bp.DomainBelief[d]
		}
	}
	res.BP, err = summarizeCurve(scores, seg.Labels)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the comparison.
func (l *LBPResult) String() string {
	var b strings.Builder
	regime := "commercial ground truth"
	if l.Sparse {
		regime = "sparse public-feed ground truth"
	}
	fmt.Fprintf(&b, "Loopy belief propagation comparison (%s, test day %d, %s)\n", l.Network, l.Day, regime)
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %14s\n", "system", "AUC", "TPR@0.1%FP", "TPR@1%FP", "wall clock")
	fmt.Fprintf(&b, "%-10s %10.4f %11.1f%% %11.1f%% %14v\n", "Segugio",
		l.Segugio.AUC, l.Segugio.TPRAt[0.001]*100, l.Segugio.TPRAt[0.01]*100, l.SegugioTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-10s %10.4f %11.1f%% %11.1f%% %14v (%d iters, converged=%v)\n", "LBP",
		l.BP.AUC, l.BP.TPRAt[0.001]*100, l.BP.TPRAt[0.01]*100, l.BPTime.Round(time.Millisecond),
		l.Iterations, l.Converged)
	b.WriteString("(paper: Segugio ~45% more accurate; minutes vs tens of hours on GraphLab)\n")
	return b.String()
}
