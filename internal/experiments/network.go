// Package experiments reproduces every table and figure of the paper's
// evaluation (Sections III-V) on synthetic ISP networks. Each experiment
// is a pure function over one or two Network bundles, returning a
// structured result with a text rendering, so the CLI, the benchmark
// harness, and EXPERIMENTS.md all draw from the same code.
package experiments

import (
	"fmt"
	"sync"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/pdns"
	"segugio/internal/sandbox"
	"segugio/internal/trace"
)

// Universe is the shared Internet both ISPs observe: the domain catalog,
// the ground-truth feeds derived from it (commercial and public C&C
// blacklists, the consistently-popular whitelist with imperfect
// free-registration exclusions), the passive-DNS database, and the
// sandbox-trace domain set.
type Universe struct {
	Cat        *trace.Catalog
	Commercial *intel.Blacklist
	Public     *intel.Blacklist
	Whitelist  *intel.Whitelist
	// Top100K is the much smaller consistently-top whitelist used to
	// train both systems in the Notos comparison (Section V trains on the
	// Alexa top-100K and evaluates FPs on the big whitelist minus it).
	Top100K  *intel.Whitelist
	Suffixes *dnsutil.SuffixList
	DB       *pdns.DB
	// Sandbox is the malware dynamic-analysis trace database consulted by
	// the Table III and Table IV evidence rows.
	Sandbox *sandbox.DB
}

// UniverseOptions tune the ground-truth feeds relative to the catalog.
type UniverseOptions struct {
	// CommercialCoverage is the fraction of true C&C domains the
	// commercial blacklist knows (default 0.75).
	CommercialCoverage float64
	// PublicCoverage is the public feeds' fraction (default 0.25).
	PublicCoverage float64
	// PublicNoise is the number of benign domains the public feeds
	// mislabel (default 12; Section IV-E observed such noise).
	PublicNoise int
	// KnownZoneFraction is how completely the operator identified
	// free-registration zones for whitelist exclusion (default 0.75; the
	// misses are the paper's Section IV-D false-positive source).
	KnownZoneFraction float64
	// ArchiveDays is the popularity-archive length (default 30; stands in
	// for the paper's one year at the same "consistently top" semantics).
	ArchiveDays int
	// WhitelistTopFraction bounds each day's ranked list to this fraction
	// of the benign catalog (default 0.75), the top-1M-style cut.
	WhitelistTopFraction float64
}

func (o UniverseOptions) withDefaults() UniverseOptions {
	if o.CommercialCoverage == 0 {
		o.CommercialCoverage = 0.75
	}
	if o.PublicCoverage == 0 {
		o.PublicCoverage = 0.25
	}
	if o.PublicNoise == 0 {
		o.PublicNoise = 12
	}
	if o.KnownZoneFraction == 0 {
		o.KnownZoneFraction = 0.75
	}
	if o.ArchiveDays == 0 {
		o.ArchiveDays = 30
	}
	if o.WhitelistTopFraction == 0 {
		o.WhitelistTopFraction = 0.75
	}
	return o
}

// NewUniverse builds the domain universe and its ground-truth feeds. The
// machine-population fields of cfg are ignored here; populations attach
// via Universe.Network.
func NewUniverse(cfg trace.Config, opts UniverseOptions) (*Universe, error) {
	opts = opts.withDefaults()
	cat, err := trace.NewCatalog(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: catalog: %w", err)
	}
	u := &Universe{
		Cat:      cat,
		Suffixes: dnsutil.DefaultSuffixList(),
		DB:       pdns.NewDB(),
		Sandbox:  sandbox.NewDB(),
	}
	cat.EmitSandboxTraces(u.Sandbox, 40, cfg.TimelineDays-1)
	u.Commercial = cat.Blacklist(trace.BlacklistConfig{
		Coverage: opts.CommercialCoverage, MeanListingDelayDays: 3, Salt: 1,
	})
	u.Public = cat.Blacklist(trace.BlacklistConfig{
		Coverage: opts.PublicCoverage, MeanListingDelayDays: 5,
		NoiseDomains: opts.PublicNoise, Salt: 2,
	})
	listLen := int(opts.WhitelistTopFraction * float64(cfg.BenignE2LDs))
	arch := cat.RankArchive(trace.RankArchiveConfig{
		Days: opts.ArchiveDays, ListLen: listLen, JitterFraction: 0.02,
	})
	wl, err := intel.BuildWhitelist(arch, intel.WhitelistConfig{
		ExcludeZones: cat.KnownFreeRegZones(opts.KnownZoneFraction),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: whitelist: %w", err)
	}
	u.Whitelist = wl
	top, err := intel.BuildWhitelist(arch, intel.WhitelistConfig{
		TopK:         listLen / 4,
		ExcludeZones: cat.KnownFreeRegZones(opts.KnownZoneFraction),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: top whitelist: %w", err)
	}
	u.Top100K = top
	cat.EmitPDNSHistory(u.DB, 0, cfg.TimelineDays-1)
	return u, nil
}

// Network attaches a machine population to the universe, yielding one
// monitored ISP.
func (u *Universe) Network(pop trace.Population) *Network {
	return &Network{
		Universe: u,
		Gen:      trace.NewGeneratorFor(u.Cat, pop),
		name:     pop.Name,
		dayCache: make(map[int]*DayData),
	}
}

// Network is one monitored ISP: a machine population observing the shared
// universe, with a per-day observation cache.
type Network struct {
	*Universe
	Gen  *trace.Generator
	name string

	mu       sync.Mutex
	dayCache map[int]*DayData
}

// Name returns the network's population name.
func (n *Network) Name() string { return n.name }

// DayData is the cached, label-free context of one observation day.
type DayData struct {
	Day      int
	Graph    *graph.Graph
	Activity *activity.Log
}

// Day generates (or returns cached) raw observation data for a day. The
// graph carries no labels; call Labeled before handing it to the
// pipeline. Cached DayData must not be used concurrently, because
// relabeling mutates the graph in place.
func (n *Network) Day(day int) *DayData {
	n.mu.Lock()
	if dd, ok := n.dayCache[day]; ok {
		n.mu.Unlock()
		return dd
	}
	n.mu.Unlock()

	tr := n.Gen.GenerateDay(day)
	g := trace.BuildGraph(tr, n.Cat, n.Suffixes)
	log := activity.NewLog()
	n.Cat.MarkActivity(log, n.Suffixes, day-13, day)
	dd := &DayData{Day: day, Graph: g, Activity: log}

	n.mu.Lock()
	n.dayCache[day] = dd
	n.mu.Unlock()
	return dd
}

// DropDay evicts a cached day to bound memory across long experiment
// sequences.
func (n *Network) DropDay(day int) {
	n.mu.Lock()
	delete(n.dayCache, day)
	n.mu.Unlock()
}

// Labeled applies ground truth to a day's graph (in place) and returns
// it. hidden is the test set whose labels must be withheld.
func (n *Network) Labeled(dd *DayData, bl *intel.Blacklist, hidden map[string]struct{}) *graph.Graph {
	dd.Graph.ApplyLabels(graph.LabelSources{
		Blacklist: bl,
		Whitelist: n.Whitelist,
		AsOf:      dd.Day,
		Hidden:    hidden,
	})
	return dd.Graph
}

// Abuse builds the passive-DNS abuse index for an observation day under a
// given blacklist, covering the five-month look-back the paper uses.
func (u *Universe) Abuse(day int, bl *intel.Blacklist) *pdns.AbuseIndex {
	return pdns.BuildAbuseIndex(u.DB, day-150, day-1, func(d string) pdns.Verdict {
		if bl.Contains(d, day) {
			return pdns.VerdictMalware
		}
		if u.Whitelist.ContainsDomain(d, u.Suffixes) {
			return pdns.VerdictBenign
		}
		return pdns.VerdictUnknown
	})
}

// UniverseParams returns the experiment-scale domain-universe
// configuration shared by both synthetic ISPs.
func UniverseParams() trace.Config {
	cfg := trace.DefaultConfig("NET", 777)
	cfg.BenignE2LDs = 40000
	cfg.FreeRegZones = 8
	cfg.SubdomainsPerZone = 500
	cfg.TailDomains = 40000
	cfg.Families = 36
	cfg.CCActivePerFamily = 16
	cfg.AbusedPrefixes = 320
	cfg.PrefixesPerFamily = 8
	return cfg
}

// ISP1Population returns the first ISP's experiment-scale machine
// population.
func ISP1Population() trace.Population {
	return trace.Population{
		Name: "ISP1", Seed: 101,
		Machines: 24000, InfectedFraction: 0.06, MultiInfectionFraction: 0.45,
		Proxies: 10, ProxyBreadth: 6000,
		Inactive: 1500, InactiveInfectedFraction: 0.10,
		Probers: 4, MeanDomainsPerMachine: 70,
	}
}

// ISP2Population returns the second, larger ISP.
func ISP2Population() trace.Population {
	p := ISP1Population()
	p.Name, p.Seed = "ISP2", 202
	p.Machines = 36000
	p.Inactive = 2400
	return p
}

// TestUniverseParams returns a small domain universe for unit tests.
func TestUniverseParams(seed int64) trace.Config {
	cfg := trace.DefaultConfig("TESTNET", seed)
	cfg.BenignE2LDs = 2500
	cfg.TailDomains = 3000
	cfg.Families = 16
	return cfg
}

// TestPopulation returns a small machine population for unit tests.
func TestPopulation(name string, seed int64) trace.Population {
	return trace.Population{
		Name: name, Seed: seed,
		Machines: 1500, InfectedFraction: 0.05, MultiInfectionFraction: 0.15,
		Proxies: 4, ProxyBreadth: 4000,
		Inactive: 120, InactiveInfectedFraction: 0.10,
		Probers: 2, MeanDomainsPerMachine: 60,
	}
}
