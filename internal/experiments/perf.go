package experiments

import (
	"fmt"
	"strings"
	"time"

	"segugio/internal/activity"
	"segugio/internal/core"
	"segugio/internal/graph"
	"segugio/internal/trace"
)

// PerfResult reproduces the efficiency numbers of Section IV-G: the
// wall-clock breakdown of one full train-and-deploy cycle over an
// ISP-day. The paper reports ~60 minutes for the learning phase (graph
// building, annotation, labeling, pruning, training) and ~3 minutes to
// measure features and classify all unknown domains — at 1.6M-4M machines
// per day; the shape to reproduce is classification being dramatically
// cheaper than learning, and both scaling linearly in graph size.
type PerfResult struct {
	Network  string
	Day      int
	Machines int
	Domains  int
	Edges    int

	GenerateTrace time.Duration
	BuildGraph    time.Duration
	Label         time.Duration
	BuildContext  time.Duration // activity log + abuse index
	Train         core.Timing
	Classify      core.Timing
	Classified    int
}

// RunPerf times one full cycle on a network day.
func RunPerf(n *Network, day int) (*PerfResult, error) {
	res := &PerfResult{Network: n.Name(), Day: day}

	t0 := time.Now()
	tr := n.Gen.GenerateDay(day)
	res.GenerateTrace = time.Since(t0)

	t0 = time.Now()
	g := trace.BuildGraph(tr, n.Cat, n.Suffixes)
	res.BuildGraph = time.Since(t0)
	res.Machines, res.Domains, res.Edges = g.NumMachines(), g.NumDomains(), g.NumEdges()

	t0 = time.Now()
	g.ApplyLabels(graph.LabelSources{
		Blacklist: n.Commercial, Whitelist: n.Whitelist, AsOf: day,
	})
	res.Label = time.Since(t0)

	t0 = time.Now()
	log := activity.NewLog()
	n.Cat.MarkActivity(log, n.Suffixes, day-13, day)
	abuse := n.Abuse(day, n.Commercial)
	res.BuildContext = time.Since(t0)

	det, trainReport, err := core.Train(core.DefaultConfig(), core.TrainInput{
		Graph: g, Activity: log, Abuse: abuse,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: perf train: %w", err)
	}
	res.Train = trainReport.Timing

	dets, classifyReport, err := det.Classify(core.ClassifyInput{
		Graph: g, Activity: log, Abuse: abuse,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: perf classify: %w", err)
	}
	res.Classify = classifyReport.Timing
	res.Classified = len(dets)
	return res, nil
}

// LearningTotal is the paper's "learning phase": everything up to and
// including model training.
func (p *PerfResult) LearningTotal() time.Duration {
	return p.GenerateTrace + p.BuildGraph + p.Label + p.BuildContext + p.Train.Total()
}

// String renders the timing breakdown.
func (p *PerfResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Performance (Section IV-G): %s day %d — %d machines, %d domains, %d edges\n",
		p.Network, p.Day, p.Machines, p.Domains, p.Edges)
	fmt.Fprintf(&b, "  trace generation        %12v\n", p.GenerateTrace.Round(time.Millisecond))
	fmt.Fprintf(&b, "  graph construction      %12v\n", p.BuildGraph.Round(time.Millisecond))
	fmt.Fprintf(&b, "  labeling                %12v\n", p.Label.Round(time.Millisecond))
	fmt.Fprintf(&b, "  activity+abuse context  %12v\n", p.BuildContext.Round(time.Millisecond))
	fmt.Fprintf(&b, "  pruning                 %12v\n", p.Train.Prune.Round(time.Millisecond))
	fmt.Fprintf(&b, "  training-set extraction %12v\n", p.Train.Extract.Round(time.Millisecond))
	fmt.Fprintf(&b, "  classifier training     %12v\n", p.Train.Fit.Round(time.Millisecond))
	fmt.Fprintf(&b, "  LEARNING TOTAL          %12v  (paper: ~60 min at 1.6M-4M machines)\n",
		p.LearningTotal().Round(time.Millisecond))
	fmt.Fprintf(&b, "  feature meas. + scoring %12v  for %d unknown domains (paper: ~3 min)\n",
		(p.Classify.Extract + p.Classify.Score).Round(time.Millisecond), p.Classified)
	return b.String()
}
