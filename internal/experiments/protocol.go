package experiments

import (
	"math/rand"

	"segugio/internal/graph"
	"segugio/internal/intel"
)

// Split is a held-out test set for the train/test protocol of
// Section IV-A: known benign and malware domains appearing in both the
// training-day and test-day graphs, whose ground truth is hidden from
// training, feature measurement, and machine labeling.
type Split struct {
	// Hidden is the test set as a lookup (for graph.LabelSources.Hidden
	// and core.TrainInput.Exclude).
	Hidden map[string]struct{}
	// Domains and Labels are the parallel test vectors (label 1 =
	// malware per the ground-truth blacklist).
	Domains []string
	Labels  []int
}

// Malware and Benign count the test classes.
func (s *Split) Malware() int {
	n := 0
	for _, l := range s.Labels {
		n += l
	}
	return n
}

// Benign counts the benign test domains.
func (s *Split) Benign() int { return len(s.Labels) - s.Malware() }

// NewSplit samples the held-out test set: known domains (per blacklist
// asOf the training day, or whitelist) present in both graphs, each kept
// with probability fraction.
func NewSplit(n *Network, g1, g2 *graph.Graph, bl *intel.Blacklist, asOf int, fraction float64, seed int64) *Split {
	rng := rand.New(rand.NewSource(seed))
	s := &Split{Hidden: make(map[string]struct{})}
	for d := int32(0); d < int32(g2.NumDomains()); d++ {
		name := g2.DomainName(d)
		if _, inTrain := g1.DomainIndex(name); !inTrain {
			continue
		}
		var label int
		switch {
		case bl.Contains(name, asOf):
			label = 1
		case n.Whitelist.ContainsE2LD(g2.DomainE2LD(d)):
			label = 0
		default:
			continue
		}
		if rng.Float64() > fraction {
			continue
		}
		s.Hidden[name] = struct{}{}
		s.Domains = append(s.Domains, name)
		s.Labels = append(s.Labels, label)
	}
	return s
}

// SplitFromDomains builds a Split from an explicit malware test list
// (e.g. one cross-family fold) plus benign domains sampled from the test
// graph. Malware domains absent from the test graph are dropped (they
// cannot be observed, let alone detected).
func SplitFromDomains(n *Network, g2 *graph.Graph, malware []string, benignFraction float64, seed int64) *Split {
	rng := rand.New(rand.NewSource(seed))
	s := &Split{Hidden: make(map[string]struct{})}
	for _, name := range malware {
		if _, ok := g2.DomainIndex(name); !ok {
			continue
		}
		if _, dup := s.Hidden[name]; dup {
			continue
		}
		s.Hidden[name] = struct{}{}
		s.Domains = append(s.Domains, name)
		s.Labels = append(s.Labels, 1)
	}
	for d := int32(0); d < int32(g2.NumDomains()); d++ {
		name := g2.DomainName(d)
		if !n.Whitelist.ContainsE2LD(g2.DomainE2LD(d)) {
			continue
		}
		if _, dup := s.Hidden[name]; dup {
			continue
		}
		if rng.Float64() > benignFraction {
			continue
		}
		s.Hidden[name] = struct{}{}
		s.Domains = append(s.Domains, name)
		s.Labels = append(s.Labels, 0)
	}
	return s
}
