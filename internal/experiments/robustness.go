package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/core"
	"segugio/internal/graph"
	"segugio/internal/trace"
)

// ProberFilterResult measures the Section VI anomalous-client concern:
// security scanners that probe long lists of known malware domains look
// like spectacular infections. The experiment compares detection with and
// without the prober filter, and reports what the filter caught.
type ProberFilterResult struct {
	Without *CrossResult
	With    *CrossResult
	// RemovedTrain/RemovedTest list the clients filtered on each day.
	RemovedTrain []string
	RemovedTest  []string
	// TrueProbers counts how many removed clients really are scanners per
	// the simulator's ground truth.
	TrueProbers int
}

// RunProberFilter evaluates the identical split with the filter on/off.
func RunProberFilter(n *Network, trainDay, testDay int, seed int64) (*ProberFilterResult, error) {
	dd1, dd2 := n.Day(trainDay), n.Day(testDay)
	split := NewSplit(n, dd1.Graph, dd2.Graph, n.Commercial, trainDay, 0.6, seed)

	without, err := RunCross(n, trainDay, n, testDay, CrossOptions{Split: split})
	if err != nil {
		return nil, fmt.Errorf("experiments: prober off: %w", err)
	}
	cfg := core.DefaultConfig()
	pf := graph.DefaultProberConfig()
	cfg.ProberFilter = &pf
	with, err := RunCross(n, trainDay, n, testDay, CrossOptions{Split: split, Core: &cfg})
	if err != nil {
		return nil, fmt.Errorf("experiments: prober on: %w", err)
	}

	res := &ProberFilterResult{
		Without:      without,
		With:         with,
		RemovedTrain: with.Train.ProbersRemoved,
		RemovedTest:  with.Classify.ProbersRemoved,
	}
	seen := map[string]struct{}{}
	for _, id := range append(append([]string{}, res.RemovedTrain...), res.RemovedTest...) {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if m, ok := machineByID(n, id); ok && n.Gen.Role(m) == trace.RoleProber {
			res.TrueProbers++
		}
	}
	return res, nil
}

// machineByID recovers the generator machine index from a stable ID.
func machineByID(n *Network, id string) (int, bool) {
	for m := 0; m < n.Gen.Machines(); m++ {
		if n.Gen.MachineID(m, 0) == id {
			return m, true
		}
	}
	return 0, false
}

// String renders the prober-filter comparison.
func (p *ProberFilterResult) String() string {
	var b strings.Builder
	b.WriteString("Prober filter (Section VI: anomalous security-scanner clients)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s\n", "filter", "AUC", "TPR@0.1%FP", "TPR@1%FP")
	for _, row := range []struct {
		name string
		r    *CrossResult
	}{{"off", p.Without}, {"on", p.With}} {
		fmt.Fprintf(&b, "%-12s %10.4f %11.1f%% %11.1f%%\n",
			row.name, row.r.AUC, row.r.TPRAt[0.001]*100, row.r.TPRAt[0.01]*100)
	}
	fmt.Fprintf(&b, "clients removed: %d train-day + %d test-day; %d distinct are true scanners\n",
		len(p.RemovedTrain), len(p.RemovedTest), p.TrueProbers)
	return b.String()
}

// ChurnResult measures DHCP-churn sensitivity (Section VI): when machine
// identifiers rotate between and within days, the machine-behavior
// features blur. The experiment reruns the cross-day test over increasing
// churn rates on populations that are otherwise identical.
type ChurnResult struct {
	Rates   []float64
	Results []*CrossResult
}

// RunChurn sweeps the per-day identifier-rotation probability.
func RunChurn(u *Universe, base trace.Population, trainDay, testDay int, rates []float64, seed int64) (*ChurnResult, error) {
	if len(rates) == 0 {
		rates = []float64{0, 0.1, 0.3}
	}
	res := &ChurnResult{Rates: rates}
	for i, rate := range rates {
		pop := base
		pop.Name = fmt.Sprintf("%s-churn%02d", base.Name, int(rate*100))
		pop.DHCPChurnRate = rate
		n := u.Network(pop)
		r, err := RunCross(n, trainDay, n, testDay, CrossOptions{Seed: seed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("experiments: churn %.2f: %w", rate, err)
		}
		res.Results = append(res.Results, r)
		n.DropDay(trainDay)
		n.DropDay(testDay)
	}
	return res, nil
}

// String renders the churn sweep.
func (c *ChurnResult) String() string {
	var b strings.Builder
	b.WriteString("DHCP churn sensitivity (Section VI)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s\n", "churn rate", "AUC", "TPR@0.1%FP", "TPR@1%FP")
	for i, r := range c.Results {
		fmt.Fprintf(&b, "%-12s %10.4f %11.1f%% %11.1f%%\n",
			fmt.Sprintf("%.0f%%/day", c.Rates[i]*100), r.AUC, r.TPRAt[0.001]*100, r.TPRAt[0.01]*100)
	}
	b.WriteString("(the paper's deployments had stable identifiers; churn dilutes F1, motivating\n")
	b.WriteString(" the suggested DHCP-log correlation)\n")
	return b.String()
}

// CoverageResult measures how much blacklist ground truth Segugio needs:
// the cross-day experiment repeated with feeds of decreasing coverage.
// Section IV-E's public-blacklist experiment is one point of this curve;
// the sweep maps the whole trade-off.
type CoverageResult struct {
	Coverages []float64
	Results   []*CrossResult
}

// RunCoverage sweeps the training blacklist's coverage of the true C&C
// population. Test ground truth stays the full commercial feed, so TP
// rates remain comparable across points.
func RunCoverage(n *Network, trainDay, testDay int, coverages []float64, seed int64) (*CoverageResult, error) {
	if len(coverages) == 0 {
		coverages = []float64{0.75, 0.5, 0.25, 0.1}
	}
	res := &CoverageResult{Coverages: coverages}
	for i, cov := range coverages {
		bl := n.Cat.Blacklist(trace.BlacklistConfig{
			Coverage: cov, MeanListingDelayDays: 3, Salt: 90 + uint64(i),
		})
		r, err := RunCross(n, trainDay, n, testDay, CrossOptions{
			TrainBlacklist: bl,
			TestBlacklist:  n.Commercial,
			Seed:           seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: coverage %.2f: %w", cov, err)
		}
		res.Results = append(res.Results, r)
	}
	return res, nil
}

// String renders the coverage sweep.
func (c *CoverageResult) String() string {
	var b strings.Builder
	b.WriteString("Ground-truth coverage sensitivity (how much blacklist does Segugio need?)\n")
	fmt.Fprintf(&b, "%-12s %12s %10s %12s %12s\n", "coverage", "test malware", "AUC", "TPR@0.1%FP", "TPR@1%FP")
	for i, r := range c.Results {
		fmt.Fprintf(&b, "%-12s %12d %10.4f %11.1f%% %11.1f%%\n",
			fmt.Sprintf("%.0f%%", c.Coverages[i]*100), r.TestMalware,
			r.AUC, r.TPRAt[0.001]*100, r.TPRAt[0.01]*100)
	}
	return b.String()
}

// WindowResult measures F2's look-back sensitivity: the paper fixes 14
// days; the sweep shows what shorter and longer windows cost.
type WindowResult struct {
	Windows []int
	Results []*CrossResult
}

// RunWindow sweeps the activity look-back window. The activity log in
// DayData covers 14 days; windows beyond that see the same data, so the
// sweep stays within it.
func RunWindow(n *Network, trainDay, testDay int, windows []int, seed int64) (*WindowResult, error) {
	if len(windows) == 0 {
		windows = []int{3, 7, 14}
	}
	dd1, dd2 := n.Day(trainDay), n.Day(testDay)
	split := NewSplit(n, dd1.Graph, dd2.Graph, n.Commercial, trainDay, 0.6, seed)
	res := &WindowResult{Windows: windows}
	for _, w := range windows {
		cfg := core.DefaultConfig()
		cfg.ActivityWindow = w
		r, err := RunCross(n, trainDay, n, testDay, CrossOptions{Split: split, Core: &cfg})
		if err != nil {
			return nil, fmt.Errorf("experiments: window %d: %w", w, err)
		}
		res.Results = append(res.Results, r)
	}
	return res, nil
}

// String renders the window sweep.
func (c *WindowResult) String() string {
	var b strings.Builder
	b.WriteString("Activity look-back window sensitivity (paper fixes 14 days)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s\n", "window", "AUC", "TPR@0.1%FP", "TPR@1%FP")
	for i, r := range c.Results {
		fmt.Fprintf(&b, "%-12s %10.4f %11.1f%% %11.1f%%\n",
			fmt.Sprintf("%d days", c.Windows[i]), r.AUC, r.TPRAt[0.001]*100, r.TPRAt[0.01]*100)
	}
	return b.String()
}
