package experiments

import (
	"fmt"
	"strings"

	"segugio/internal/graph"
)

// Table1Row is one ISP-day of dataset statistics (paper Table I).
type Table1Row struct {
	Network        string
	Day            int
	TotalDomains   int
	BenignDomains  int
	MalwareDomains int
	TotalMachines  int
	MalwareMachine int
	Edges          int
}

// Table1Result reproduces Table I: per-day dataset sizes before pruning.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 labels each sampled ISP-day with the commercial feed and
// collects the pre-pruning node and edge counts.
func RunTable1(nets []*Network, days []int) (*Table1Result, error) {
	res := &Table1Result{}
	for _, n := range nets {
		for _, day := range days {
			dd := n.Day(day)
			g := n.Labeled(dd, n.Commercial, nil)
			stats := countLabels(g)
			res.Rows = append(res.Rows, Table1Row{
				Network:        n.Name(),
				Day:            day,
				TotalDomains:   g.NumDomains(),
				BenignDomains:  stats.benignDomains,
				MalwareDomains: stats.malwareDomains,
				TotalMachines:  g.NumMachines(),
				MalwareMachine: stats.malwareMachines,
				Edges:          g.NumEdges(),
			})
		}
	}
	return res, nil
}

type labelCounts struct {
	benignDomains, malwareDomains int
	malwareMachines               int
}

func countLabels(g *graph.Graph) labelCounts {
	var c labelCounts
	for d := int32(0); d < int32(g.NumDomains()); d++ {
		switch g.DomainLabel(d) {
		case graph.LabelBenign:
			c.benignDomains++
		case graph.LabelMalware:
			c.malwareDomains++
		}
	}
	for m := int32(0); m < int32(g.NumMachines()); m++ {
		if g.MachineLabel(m) == graph.LabelMalware {
			c.malwareMachines++
		}
	}
	return c
}

// String renders the table in the paper's layout.
func (t *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I: Experiment data (before graph pruning)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %9s | %10s %9s | %10s\n",
		"Traffic Source", "Domains", "Benign", "Malware", "Machines", "Malware", "Edges")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %10d %10d %9d | %10d %9d | %10d\n",
			fmt.Sprintf("%s, day %d", r.Network, r.Day),
			r.TotalDomains, r.BenignDomains, r.MalwareDomains,
			r.TotalMachines, r.MalwareMachine, r.Edges)
	}
	return b.String()
}

// PruningResult reproduces the Section III pruning statistics: average
// node and edge reductions across the sampled ISP-days (the paper reports
// 26.55% domains, 13.85% machines, 26.59% edges).
type PruningResult struct {
	PerDay []PruningRow
	// Averages across all rows.
	AvgDomainReduction  float64
	AvgMachineReduction float64
	AvgEdgeReduction    float64
}

// PruningRow is one ISP-day's pruning outcome.
type PruningRow struct {
	Network string
	Day     int
	Stats   graph.PruneStats
}

// RunPruning prunes each labeled ISP-day with the paper's thresholds.
func RunPruning(nets []*Network, days []int) (*PruningResult, error) {
	res := &PruningResult{}
	for _, n := range nets {
		for _, day := range days {
			dd := n.Day(day)
			g := n.Labeled(dd, n.Commercial, nil)
			_, stats, err := graph.Prune(g, graph.DefaultPruneConfig())
			if err != nil {
				return nil, fmt.Errorf("experiments: prune %s day %d: %w", n.Name(), day, err)
			}
			res.PerDay = append(res.PerDay, PruningRow{Network: n.Name(), Day: day, Stats: stats})
		}
	}
	for _, r := range res.PerDay {
		res.AvgDomainReduction += r.Stats.DomainReduction()
		res.AvgMachineReduction += r.Stats.MachineReduction()
		res.AvgEdgeReduction += r.Stats.EdgeReduction()
	}
	if n := float64(len(res.PerDay)); n > 0 {
		res.AvgDomainReduction /= n
		res.AvgMachineReduction /= n
		res.AvgEdgeReduction /= n
	}
	return res, nil
}

// String renders the pruning summary.
func (p *PruningResult) String() string {
	var b strings.Builder
	b.WriteString("Graph pruning (Section III): reductions by rule R1-R4\n")
	fmt.Fprintf(&b, "%-14s %9s %9s %9s %9s | %8s %8s %8s %8s\n",
		"Traffic Source", "domains", "machines", "edges", "thetaD", "R1", "R2", "R3", "R4")
	for _, r := range p.PerDay {
		s := r.Stats
		fmt.Fprintf(&b, "%-14s %8.2f%% %8.2f%% %8.2f%% %9d | %8d %8d %8d %8d\n",
			fmt.Sprintf("%s, day %d", r.Network, r.Day),
			s.DomainReduction()*100, s.MachineReduction()*100, s.EdgeReduction()*100,
			s.ThetaD, s.DroppedR1, s.DroppedR2, s.DroppedR3, s.DroppedR4)
	}
	fmt.Fprintf(&b, "Average reduction: domains %.2f%%, machines %.2f%%, edges %.2f%%\n",
		p.AvgDomainReduction*100, p.AvgMachineReduction*100, p.AvgEdgeReduction*100)
	fmt.Fprintf(&b, "(paper: domains 26.55%%, machines 13.85%%, edges 26.59%%)\n")
	return b.String()
}
