package experiments

import (
	"fmt"
	"sort"
	"strings"

	"segugio/internal/eval"
	"segugio/internal/features"
)

// Table3Row is the false-positive analysis of one cross experiment
// (paper Table III): how many whitelisted test domains were classified
// malware at the ~0.05%-FP operating point, how concentrated they are
// under few e2LDs, which feature signals drove them, and how many show
// independent evidence of malware communications in sandbox traces.
type Table3Row struct {
	Experiment string
	Threshold  float64
	// Achieved operating point.
	FPRate, TPRate float64
	// FP composition.
	FQDs            int
	E2LDs           int
	Top10E2LDShare  float64 // fraction of FP FQDs under the 10 biggest e2LDs
	FracHighMachine float64 // >90% of querying machines known-infected
	FracAbusedIPs   float64 // resolved into previously abused IP space
	FracShortActive float64 // active <= 3 days
	FracSandbox     float64 // queried by sandboxed malware samples
}

// Table3Result aggregates the three cross experiments of Figure 6.
type Table3Result struct {
	Rows []Table3Row
}

// table3FPBudget is the paper's Table III operating point (0.05% FPs).
const table3FPBudget = 0.0005

// RunTable3 analyzes the false positives of previously run cross
// experiments. Each result's network is needed to rebuild the feature
// context of its test day.
func RunTable3(results []*CrossResult, nets map[string]*Network) (*Table3Result, error) {
	out := &Table3Result{}
	for _, r := range results {
		n := nets[r.TestNet]
		if n == nil {
			return nil, fmt.Errorf("experiments: table3: unknown network %q", r.TestNet)
		}
		row, err := analyzeFPs(r, n)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func analyzeFPs(r *CrossResult, n *Network) (Table3Row, error) {
	row := Table3Row{
		Experiment: fmt.Sprintf("%s->%s", r.TrainNet, r.TestNet),
		Threshold:  eval.ThresholdAtFPR(r.Curve, table3FPBudget),
	}
	row.FPRate, row.TPRate = eval.OperatingPoint(r.Curve, row.Threshold)

	// Collect FP domains: benign-labeled test domains at or above the
	// threshold.
	var fps []string
	for i, name := range r.Domains {
		if r.Labels[i] == 0 && r.Scores[i] >= row.Threshold {
			fps = append(fps, name)
		}
	}
	row.FQDs = len(fps)
	if len(fps) == 0 {
		return row, nil
	}

	// e2LD concentration.
	g := r.PrunedTestGraph
	perE2LD := map[string]int{}
	for _, name := range fps {
		e2ld := n.Suffixes.E2LD(name)
		perE2LD[e2ld]++
	}
	row.E2LDs = len(perE2LD)
	counts := make([]int, 0, len(perE2LD))
	for _, c := range perE2LD {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top10 := 0
	for i := 0; i < len(counts) && i < 10; i++ {
		top10 += counts[i]
	}
	row.Top10E2LDShare = float64(top10) / float64(len(fps))

	// Feature contributions, recomputed on the pruned test graph.
	ex, err := features.NewExtractor(g, n.Day(r.TestDay).Activity, n.Abuse(r.TestDay, n.Commercial), 14)
	if err != nil {
		return row, fmt.Errorf("experiments: table3 extractor: %w", err)
	}
	highMachine, abusedIPs, shortActive, sandbox := 0, 0, 0, 0
	for _, name := range fps {
		if n.Sandbox.QueriedByMalware(name, r.TestDay) {
			sandbox++
		}
		d, ok := g.DomainIndex(name)
		if !ok {
			continue
		}
		v := ex.Vector(d)
		if v[features.FInfectedFraction] > 0.9 {
			highMachine++
		}
		if v[features.FMalwareIPFraction] > 0 || v[features.FMalwarePrefixFraction] > 0 {
			abusedIPs++
		}
		if v[features.FDomainActiveDays] <= 3 {
			shortActive++
		}
	}
	total := float64(len(fps))
	row.FracHighMachine = float64(highMachine) / total
	row.FracAbusedIPs = float64(abusedIPs) / total
	row.FracShortActive = float64(shortActive) / total
	row.FracSandbox = float64(sandbox) / total
	return row, nil
}

// String renders the FP analysis in the paper's layout.
func (t *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table III: analysis of Segugio's false positives\n")
	fmt.Fprintf(&b, "(threshold tuned for <= %.2f%% FPs; paper used 0.05%% FPs at > 90%% TPs)\n\n", table3FPBudget*100)
	fmt.Fprintf(&b, "%-32s", "Test experiment")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %14s", r.Experiment)
	}
	b.WriteString("\n")
	line := func(label string, f func(Table3Row) string) {
		fmt.Fprintf(&b, "%-32s", label)
		for _, r := range t.Rows {
			fmt.Fprintf(&b, " %14s", f(r))
		}
		b.WriteString("\n")
	}
	line("achieved FP rate", func(r Table3Row) string { return fmt.Sprintf("%.3f%%", r.FPRate*100) })
	line("achieved TP rate", func(r Table3Row) string { return fmt.Sprintf("%.1f%%", r.TPRate*100) })
	line("false-positive FQDs", func(r Table3Row) string { return fmt.Sprintf("%d", r.FQDs) })
	line("distinct e2LDs", func(r Table3Row) string { return fmt.Sprintf("%d", r.E2LDs) })
	line("top-10 e2LD contribution", func(r Table3Row) string { return fmt.Sprintf("%.0f%%", r.Top10E2LDShare*100) })
	line("> 90% infected machines", func(r Table3Row) string { return fmt.Sprintf("%.0f%%", r.FracHighMachine*100) })
	line("past abused IPs", func(r Table3Row) string { return fmt.Sprintf("%.0f%%", r.FracAbusedIPs*100) })
	line("active <= 3 days", func(r Table3Row) string { return fmt.Sprintf("%.0f%%", r.FracShortActive*100) })
	line("queried by sandbox malware", func(r Table3Row) string { return fmt.Sprintf("%.0f%%", r.FracSandbox*100) })
	return b.String()
}
