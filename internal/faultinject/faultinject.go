// Package faultinject provides the small, deterministic fault injectors
// segugio's recovery tests are built on: readers that fail mid-stream,
// return short reads, or stall; listeners that feed such readers to the
// daemon's ingest path; and file mutators that simulate torn writes and
// bit rot. Production code never imports this package — it exists so
// crash-recovery behavior (WAL tail truncation, checkpoint fallback,
// source supervision) is exercised by tests instead of trusted on faith.
package faultinject

import (
	"errors"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error injected by the readers here, so
// tests can assert the failure they provoked is the failure they saw.
var ErrInjected = errors.New("faultinject: injected fault")

// FlakyReader reads from R until FailAfter bytes have been delivered,
// then returns Err (ErrInjected when nil) on every subsequent call. A
// mid-record failure for stream consumers.
type FlakyReader struct {
	R         io.Reader
	FailAfter int64
	Err       error

	delivered int64
}

// Read implements io.Reader.
func (r *FlakyReader) Read(p []byte) (int, error) {
	if r.delivered >= r.FailAfter {
		return 0, r.err()
	}
	if max := r.FailAfter - r.delivered; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.R.Read(p)
	r.delivered += int64(n)
	if err == io.EOF {
		err = nil // the injected fault arrives first
	}
	if err == nil && r.delivered >= r.FailAfter {
		err = r.err()
	}
	return n, err
}

func (r *FlakyReader) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// ShortReader delivers at most one byte per Read call, surfacing every
// buffer-boundary bug a consumer has.
type ShortReader struct {
	R io.Reader
}

// Read implements io.Reader.
func (r *ShortReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return r.R.Read(p)
}

// SlowReader sleeps Delay before every Read, modelling a stalled or
// trickling peer.
type SlowReader struct {
	R     io.Reader
	Delay time.Duration
}

// Read implements io.Reader.
func (r *SlowReader) Read(p []byte) (int, error) {
	time.Sleep(r.Delay)
	return r.R.Read(p)
}

// FailNTimes returns a function that fails with err its first n calls
// and then delegates to fn forever after — the canonical supervised
// source that recovers after transient faults. It is safe for
// concurrent use.
func FailNTimes(n int64, err error, fn func() error) func() error {
	if err == nil {
		err = ErrInjected
	}
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) <= n {
			return err
		}
		return fn()
	}
}

// TruncateTail removes the final n bytes of the file at path, simulating
// a torn write: the record framing survives but its payload does not.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte XORs the byte at offset off with 0xff — undetectable without
// a checksum, which is the point.
func FlipByte(path string, off int64) error {
	return mutateByte(path, off, func(b byte) byte { return b ^ 0xff })
}

// WriteByte overwrites the byte at offset off with v.
func WriteByte(path string, off int64, v byte) error {
	return mutateByte(path, off, func(byte) byte { return v })
}

func mutateByte(path string, off int64, fn func(byte) byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] = fn(b[0])
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Sync()
}
