// Package faultinject provides the small, deterministic fault injectors
// segugio's recovery tests are built on: readers that fail mid-stream,
// return short reads, or stall; listeners that feed such readers to the
// daemon's ingest path; and file mutators that simulate torn writes and
// bit rot. Production code never imports this package — it exists so
// crash-recovery behavior (WAL tail truncation, checkpoint fallback,
// source supervision) is exercised by tests instead of trusted on faith.
package faultinject

import (
	"context"
	"errors"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error injected by the readers here, so
// tests can assert the failure they provoked is the failure they saw.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrNoSpace simulates ENOSPC from a full disk.
var ErrNoSpace = errors.New("faultinject: no space left on device")

// FlakyReader reads from R until FailAfter bytes have been delivered,
// then returns Err (ErrInjected when nil) on every subsequent call. A
// mid-record failure for stream consumers.
type FlakyReader struct {
	R         io.Reader
	FailAfter int64
	Err       error

	delivered int64
}

// Read implements io.Reader.
func (r *FlakyReader) Read(p []byte) (int, error) {
	if r.delivered >= r.FailAfter {
		return 0, r.err()
	}
	if max := r.FailAfter - r.delivered; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.R.Read(p)
	r.delivered += int64(n)
	if err == io.EOF {
		err = nil // the injected fault arrives first
	}
	if err == nil && r.delivered >= r.FailAfter {
		err = r.err()
	}
	return n, err
}

func (r *FlakyReader) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// ShortReader delivers at most one byte per Read call, surfacing every
// buffer-boundary bug a consumer has.
type ShortReader struct {
	R io.Reader
}

// Read implements io.Reader.
func (r *ShortReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return r.R.Read(p)
}

// SlowReader sleeps Delay before every Read, modelling a stalled or
// trickling peer.
type SlowReader struct {
	R     io.Reader
	Delay time.Duration
}

// Read implements io.Reader.
func (r *SlowReader) Read(p []byte) (int, error) {
	time.Sleep(r.Delay)
	return r.R.Read(p)
}

// Disk injects disk faults into a write path that exposes
// before-write/before-sync seams (wal.Options.Hooks wires to it).
// All toggles are atomic and may be flipped while the daemon runs —
// that is the whole point: chaos tests turn faults on mid-flight and
// off again to watch the recovery. The zero value injects nothing.
type Disk struct {
	writeErr  atomic.Value // error: every write fails (ENOSPC)
	syncErr   atomic.Value // error: every fsync fails
	syncDelay atomic.Int64 // nanoseconds each fsync sleeps (slow disk)
	writes    atomic.Int64
	syncs     atomic.Int64
}

// errBox wraps an error so atomic.Value can store differing concrete
// types (including a nil reset).
type errBox struct{ err error }

// FailWrites makes every subsequent write fail with err (ErrNoSpace
// when nil).
func (d *Disk) FailWrites(err error) {
	if err == nil {
		err = ErrNoSpace
	}
	d.writeErr.Store(errBox{err})
}

// WritesOK clears the write fault.
func (d *Disk) WritesOK() { d.writeErr.Store(errBox{}) }

// FailSyncs makes every subsequent fsync fail with err (ErrInjected
// when nil).
func (d *Disk) FailSyncs(err error) {
	if err == nil {
		err = ErrInjected
	}
	d.syncErr.Store(errBox{err})
}

// SyncsOK clears the fsync fault.
func (d *Disk) SyncsOK() { d.syncErr.Store(errBox{}) }

// SlowSyncs makes every subsequent fsync sleep d first — the slow-disk
// fault. Zero restores full speed.
func (d *Disk) SlowSyncs(delay time.Duration) { d.syncDelay.Store(int64(delay)) }

// Writes and Syncs report how many operations passed through the seams.
func (d *Disk) Writes() int64 { return d.writes.Load() }

// Syncs reports how many fsyncs passed through the BeforeSync seam.
func (d *Disk) Syncs() int64 { return d.syncs.Load() }

// BeforeWrite is the write seam (matches wal.Hooks.BeforeWrite).
func (d *Disk) BeforeWrite(size int) error {
	d.writes.Add(1)
	if b, ok := d.writeErr.Load().(errBox); ok && b.err != nil {
		return b.err
	}
	return nil
}

// BeforeSync is the fsync seam (matches wal.Hooks.BeforeSync).
func (d *Disk) BeforeSync() error {
	d.syncs.Add(1)
	if delay := d.syncDelay.Load(); delay > 0 {
		time.Sleep(time.Duration(delay))
	}
	if b, ok := d.syncErr.Load().(errBox); ok && b.err != nil {
		return b.err
	}
	return nil
}

// Gate is a reusable stall point: while armed, Wait blocks until the
// gate is released or the caller's context is done. Chaos tests arm it
// to wedge a pipeline stage (a classify pass, a reader) and release it
// to watch the stage recover. The zero value is open (Wait returns
// immediately).
type Gate struct {
	mu      sync.Mutex
	blocked chan struct{} // non-nil while armed; closed on Release
	waiting atomic.Int64
}

// Arm closes the gate: subsequent Wait calls block.
func (g *Gate) Arm() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.blocked == nil {
		g.blocked = make(chan struct{})
	}
}

// Release opens the gate, unblocking every waiter.
func (g *Gate) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.blocked != nil {
		close(g.blocked)
		g.blocked = nil
	}
}

// Waiting reports how many goroutines are currently blocked in Wait —
// tests poll it to know the stall has actually taken hold.
func (g *Gate) Waiting() int64 { return g.waiting.Load() }

// Wait blocks while the gate is armed; it returns nil when released
// and ctx.Err() when the context wins. An open gate returns nil
// immediately.
func (g *Gate) Wait(ctx context.Context) error {
	g.mu.Lock()
	ch := g.blocked
	g.mu.Unlock()
	if ch == nil {
		return nil
	}
	g.waiting.Add(1)
	defer g.waiting.Add(-1)
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StuckReader reads from R until Gate is armed, then blocks inside
// Read until the gate is released — the stuck-peer fault for stream
// consumers. A nil Ctx blocks indefinitely (until Release).
type StuckReader struct {
	R    io.Reader
	Gate *Gate
	Ctx  context.Context
}

// Read implements io.Reader.
func (r *StuckReader) Read(p []byte) (int, error) {
	ctx := r.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := r.Gate.Wait(ctx); err != nil {
		return 0, err
	}
	return r.R.Read(p)
}

// FailNTimes returns a function that fails with err its first n calls
// and then delegates to fn forever after — the canonical supervised
// source that recovers after transient faults. It is safe for
// concurrent use.
func FailNTimes(n int64, err error, fn func() error) func() error {
	if err == nil {
		err = ErrInjected
	}
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) <= n {
			return err
		}
		return fn()
	}
}

// TruncateTail removes the final n bytes of the file at path, simulating
// a torn write: the record framing survives but its payload does not.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte XORs the byte at offset off with 0xff — undetectable without
// a checksum, which is the point.
func FlipByte(path string, off int64) error {
	return mutateByte(path, off, func(b byte) byte { return b ^ 0xff })
}

// WriteByte overwrites the byte at offset off with v.
func WriteByte(path string, off int64, v byte) error {
	return mutateByte(path, off, func(byte) byte { return v })
}

func mutateByte(path string, off int64, fn func(byte) byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] = fn(b[0])
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Sync()
}
