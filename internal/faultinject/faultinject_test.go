package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlakyReaderFailsMidStream(t *testing.T) {
	r := &FlakyReader{R: strings.NewReader("0123456789"), FailAfter: 4}
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "0123" {
		t.Fatalf("delivered %q, want %q", got, "0123")
	}
	// Subsequent reads keep failing.
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v", err)
	}
}

func TestFlakyReaderCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	r := &FlakyReader{R: strings.NewReader("abc"), FailAfter: 0, Err: sentinel}
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestShortReaderDeliversWholeStream(t *testing.T) {
	got, err := io.ReadAll(&ShortReader{R: strings.NewReader("hello world")})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestFailNTimes(t *testing.T) {
	calls := 0
	fn := FailNTimes(2, nil, func() error { calls++; return nil })
	if err := fn(); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 1: %v", err)
	}
	if err := fn(); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 2: %v", err)
	}
	if err := fn(); err != nil {
		t.Fatalf("call 3: %v", err)
	}
	if calls != 1 {
		t.Fatalf("inner fn ran %d times", calls)
	}
}

func TestFileMutators(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateTail(path, 2); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(path, 0); err != nil {
		t.Fatal(err)
	}
	if err := WriteByte(path, 1, 'X'); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{'a' ^ 0xff, 'X', 'c', 'd'}
	if string(got) != string(want) {
		t.Fatalf("file = %q, want %q", got, want)
	}
	// Truncating past the start clamps to empty.
	if err := TruncateTail(path, 100); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != 0 {
		t.Fatalf("size = %d, want 0", fi.Size())
	}
}
