package features

import (
	"runtime"
	"sync"

	"segugio/internal/graph"
)

// Dataset is a labeled feature matrix ready for package ml.
type Dataset struct {
	X       [][]float64
	Y       []int // 0 = benign, 1 = malware
	Domains []string
}

// Len reports the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Counts returns the per-class example counts.
func (d *Dataset) Counts() (benign, malware int) {
	for _, y := range d.Y {
		if y == 1 {
			malware++
		} else {
			benign++
		}
	}
	return benign, malware
}

// TrainingSet measures the feature vector of every known benign and
// malware domain in the extractor's graph (each with its own label hidden,
// per the training-set preparation of paper Figure 5), skipping any domain
// in exclude — the test-set exclusion of the train/test protocol
// (Section IV-A). Extraction runs in parallel.
func TrainingSet(e *Extractor, exclude map[string]struct{}) *Dataset {
	g := e.Graph()
	var nodes []int32
	var labels []int
	for d := int32(0); d < int32(g.NumDomains()); d++ {
		var y int
		switch g.DomainLabel(d) {
		case graph.LabelMalware:
			y = 1
		case graph.LabelBenign:
			y = 0
		default:
			continue
		}
		if _, skip := exclude[g.DomainName(d)]; skip {
			continue
		}
		nodes = append(nodes, d)
		labels = append(labels, y)
	}

	ds := &Dataset{
		X:       make([][]float64, len(nodes)),
		Y:       labels,
		Domains: make([]string, len(nodes)),
	}
	backing := make([]float64, len(nodes)*NumFeatures)
	parallelFor(len(nodes), func(i int) {
		row := backing[i*NumFeatures : (i+1)*NumFeatures : (i+1)*NumFeatures]
		e.VectorInto(nodes[i], row)
		ds.X[i] = row
		ds.Domains[i] = g.DomainName(nodes[i])
	})
	return ds
}

// VectorsFor measures feature vectors for the named domains. Domains
// absent from the graph (e.g. pruned away) yield ok=false and a nil
// vector at their position. All present rows share one flat backing
// array — one allocation per pass instead of one per domain — and each
// row is capped at NumFeatures so appends cannot bleed into a neighbor.
func VectorsFor(e *Extractor, domains []string) ([][]float64, []bool) {
	g := e.g
	X := make([][]float64, len(domains))
	ok := make([]bool, len(domains))
	if len(domains) == 0 {
		return X, ok
	}
	backing := make([]float64, len(domains)*NumFeatures)
	parallelFor(len(domains), func(i int) {
		d, found := g.DomainIndex(domains[i])
		if !found {
			return
		}
		row := backing[i*NumFeatures : (i+1)*NumFeatures : (i+1)*NumFeatures]
		e.VectorInto(d, row)
		X[i] = row
		ok[i] = true
	})
	return X, ok
}

// UnknownDomains lists the unknown-labeled domains of the extractor's
// graph — the classification targets at deployment time. A counting
// pass pre-sizes the result so million-domain graphs pay one allocation.
func UnknownDomains(e *Extractor) []string {
	g := e.Graph()
	n := 0
	for d := int32(0); d < int32(g.NumDomains()); d++ {
		if g.DomainLabel(d) == graph.LabelUnknown {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for d := int32(0); d < int32(g.NumDomains()); d++ {
		if g.DomainLabel(d) == graph.LabelUnknown {
			out = append(out, g.DomainName(d))
		}
	}
	return out
}

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS workers.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
