// Package features measures Segugio's 11 statistical domain features
// (paper Section II-A3) against a labeled behavior graph, an activity log,
// and a passive-DNS abuse index:
//
//	F1 machine behavior: fraction of infected machines querying the
//	  domain, fraction of unknown machines, and total querying machines;
//	F2 domain activity: active days and consecutive-day streak within a
//	  14-day look-back, for both the domain and its effective 2LD;
//	F3 IP abuse: fractions of the domain's resolved IPs and /24 prefixes
//	  historically pointed to by known malware domains, and counts of its
//	  IPs//24s shared with still-unknown domains.
//
// Every vector is measured *as if the domain were unknown*: the domain's
// own ground-truth label is hidden when deriving the labels of the
// machines that query it (paper Figure 5), and its own passive-DNS history
// is excluded from the abuse evidence. This is what makes training
// vectors comparable to deployment-time vectors.
package features

import (
	"errors"
	"sync"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/pdns"
)

// Feature indexes into a feature vector.
const (
	// F1: machine behavior.
	FInfectedFraction = iota
	FUnknownFraction
	FTotalMachines
	// F2: domain activity.
	FDomainActiveDays
	FDomainStreak
	FE2LDActiveDays
	FE2LDStreak
	// F3: IP abuse.
	FMalwareIPFraction
	FMalwarePrefixFraction
	FUnknownIPs
	FUnknownPrefixes

	// NumFeatures is the vector length.
	NumFeatures
)

var featureNames = [NumFeatures]string{
	"infected_machine_fraction",
	"unknown_machine_fraction",
	"total_machines",
	"domain_active_days",
	"domain_consecutive_days",
	"e2ld_active_days",
	"e2ld_consecutive_days",
	"malware_ip_fraction",
	"malware_prefix_fraction",
	"unknown_ip_count",
	"unknown_prefix_count",
}

// Names returns the feature names in vector order.
func Names() []string {
	out := make([]string, NumFeatures)
	copy(out, featureNames[:])
	return out
}

// Group identifies the paper's three feature groups for the ablation
// experiments (Section IV-B).
type Group uint8

// Group values.
const (
	GroupMachineBehavior Group = iota + 1
	GroupDomainActivity
	GroupIPAbuse
)

// Columns returns the vector columns belonging to the group.
func (g Group) Columns() []int {
	switch g {
	case GroupMachineBehavior:
		return []int{FInfectedFraction, FUnknownFraction, FTotalMachines}
	case GroupDomainActivity:
		return []int{FDomainActiveDays, FDomainStreak, FE2LDActiveDays, FE2LDStreak}
	case GroupIPAbuse:
		return []int{FMalwareIPFraction, FMalwarePrefixFraction, FUnknownIPs, FUnknownPrefixes}
	default:
		return nil
	}
}

// ColumnsExcluding returns all feature columns except the given group's —
// the "No machine" / "No activity" / "No IP" ablations of Figure 7.
func ColumnsExcluding(g Group) []int {
	drop := make(map[int]struct{})
	for _, c := range g.Columns() {
		drop[c] = struct{}{}
	}
	var out []int
	for c := 0; c < NumFeatures; c++ {
		if _, skip := drop[c]; !skip {
			out = append(out, c)
		}
	}
	return out
}

// GraphView is the read surface feature measurement needs from a
// behavior graph: target resolution, per-domain annotations, the
// machines querying a domain, and label-hiding machine labels.
// *graph.Graph implements it directly; *graph.PrunedView implements it
// for delta classification without materializing the pruned graph.
type GraphView interface {
	Labeled() bool
	Day() int
	DomainName(d int32) string
	DomainE2LD(d int32) string
	DomainIPs(d int32) []dnsutil.IPv4
	DomainIndex(name string) (int32, bool)
	MachinesOf(d int32) []int32
	MachineLabelHiding(m, d int32) graph.Label
}

// Extractor measures feature vectors for domains of one labeled graph
// (or graph view). It is safe for concurrent Vector calls.
type Extractor struct {
	g      GraphView
	full   *graph.Graph // nil when the extractor wraps a partial view
	log    *activity.Log
	abuse  *pdns.AbuseIndex
	window int
}

// ErrUnlabeledGraph is returned when constructing an Extractor over a
// graph whose ApplyLabels has not run: F1 is undefined without labels.
var ErrUnlabeledGraph = errors.New("features: graph is not labeled")

// NewExtractor builds an extractor. window is the F2 look-back length in
// days (the paper uses 14). The abuse index may be nil, in which case F3
// features are zero (useful for the "No IP" ablation and for deployments
// without a passive-DNS feed).
func NewExtractor(g *graph.Graph, log *activity.Log, abuse *pdns.AbuseIndex, window int) (*Extractor, error) {
	e, err := NewExtractorView(g, log, abuse, window)
	if err != nil {
		return nil, err
	}
	e.full = g
	return e, nil
}

// NewExtractorView builds an extractor over a partial graph view (such
// as graph.PrunedView). TrainingSet and UnknownDomains require a full
// graph and must not be used with a view extractor.
func NewExtractorView(g GraphView, log *activity.Log, abuse *pdns.AbuseIndex, window int) (*Extractor, error) {
	if !g.Labeled() {
		return nil, ErrUnlabeledGraph
	}
	if window <= 0 {
		window = 14
	}
	return &Extractor{g: g, log: log, abuse: abuse, window: window}, nil
}

// Graph returns the underlying full graph, or nil for a view extractor.
func (e *Extractor) Graph() *graph.Graph { return e.full }

// Vector measures the 11 features of domain node d with d's own label and
// history hidden.
func (e *Extractor) Vector(d int32) []float64 {
	v := make([]float64, NumFeatures)
	e.VectorInto(d, v)
	return v
}

// vecPool recycles scratch vectors for transient measurements (single
// lookups, audit records) so hot paths don't allocate per call.
var vecPool = sync.Pool{
	New: func() any {
		s := make([]float64, NumFeatures)
		return &s
	},
}

// BorrowVector returns a scratch feature vector from a shared pool.
// Callers must copy out anything they keep and hand the slice back with
// ReturnVector.
func BorrowVector() []float64 { return *vecPool.Get().(*[]float64) }

// ReturnVector recycles a slice obtained from BorrowVector.
func ReturnVector(v []float64) {
	if cap(v) >= NumFeatures {
		v = v[:NumFeatures]
		vecPool.Put(&v)
	}
}

// VectorInto measures domain node d's features into v, which must have
// length NumFeatures. It overwrites every element, so rows of a shared
// backing array and pooled scratch buffers need no prior clearing.
func (e *Extractor) VectorInto(d int32, v []float64) {
	for i := range v {
		v[i] = 0
	}
	g := e.g
	name := g.DomainName(d)

	// F1: machine behavior, with d's label hidden when re-deriving the
	// label of each machine that queries d.
	machines := g.MachinesOf(d)
	if n := len(machines); n > 0 {
		infected, unknown := 0, 0
		for _, m := range machines {
			switch g.MachineLabelHiding(m, d) {
			case graph.LabelMalware:
				infected++
			case graph.LabelUnknown:
				unknown++
			}
		}
		v[FInfectedFraction] = float64(infected) / float64(n)
		v[FUnknownFraction] = float64(unknown) / float64(n)
		v[FTotalMachines] = float64(n)
	}

	// F2: domain activity over the look-back window ending on the
	// observation day.
	if e.log != nil {
		day := g.Day()
		from := day - e.window + 1
		e2ld := g.DomainE2LD(d)
		v[FDomainActiveDays] = float64(e.log.DomainActiveDays(name, from, day))
		v[FDomainStreak] = float64(e.log.DomainStreak(name, day))
		v[FE2LDActiveDays] = float64(e.log.E2LDActiveDays(e2ld, from, day))
		v[FE2LDStreak] = float64(e.log.E2LDStreak(e2ld, day))
	}

	// F3: IP abuse, excluding d's own passive-DNS contributions.
	if e.abuse != nil {
		ips := g.DomainIPs(d)
		if len(ips) > 0 {
			malIPs, malPrefixes, unkIPs, unkPrefixes := 0, 0, 0, 0
			for _, ip := range ips {
				if e.abuse.MalwareIPExcluding(ip, name) {
					malIPs++
				}
				if e.abuse.MalwarePrefixExcluding(ip, name) {
					malPrefixes++
				}
				if e.abuse.UnknownIPExcluding(ip, name) {
					unkIPs++
				}
				if e.abuse.UnknownPrefixExcluding(ip, name) {
					unkPrefixes++
				}
			}
			v[FMalwareIPFraction] = float64(malIPs) / float64(len(ips))
			v[FMalwarePrefixFraction] = float64(malPrefixes) / float64(len(ips))
			v[FUnknownIPs] = float64(unkIPs)
			v[FUnknownPrefixes] = float64(unkPrefixes)
		}
	}
}
