package features

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/pdns"
)

// fixture builds a small labeled graph with activity and abuse context:
//
//	bot1, bot2, bot3 are infected (query c2.known.com)
//	clean1, clean2 query only whitelisted domains
//	mixed queries benign + the unknown candidate
//	candidate.net is queried by bot1, bot2, bot3, mixed
type fixture struct {
	g     *graph.Graph
	log   *activity.Log
	abuse *pdns.AbuseIndex
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	day := 100
	b := graph.NewBuilder("F", day, dnsutil.DefaultSuffixList())
	// Infected machines: known C&C plus the unknown candidate.
	for _, m := range []string{"bot1", "bot2", "bot3"} {
		b.AddQuery(m, "c2.known.com")
		b.AddQuery(m, "candidate.net")
		b.AddQuery(m, "www.good.com")
	}
	// Clean machines.
	b.AddQuery("clean1", "www.good.com")
	b.AddQuery("clean1", "www.nice.org")
	b.AddQuery("clean2", "www.good.com")
	// Mixed machine: queries candidate but no known malware.
	b.AddQuery("mixed", "candidate.net")
	b.AddQuery("mixed", "www.good.com")
	b.SetDomainIPs("candidate.net", []dnsutil.IPv4{
		dnsutil.MakeIPv4(185, 1, 1, 10), // shared with known malware
		dnsutil.MakeIPv4(50, 1, 1, 10),  // clean
	})
	b.SetDomainIPs("c2.known.com", []dnsutil.IPv4{dnsutil.MakeIPv4(185, 1, 1, 9)})
	g := b.Build()

	bl := intel.NewBlacklist()
	bl.Add(intel.BlacklistEntry{Domain: "c2.known.com", FirstListed: 0})
	wl := intel.NewWhitelist([]string{"good.com", "nice.org"})
	g.ApplyLabels(graph.LabelSources{Blacklist: bl, Whitelist: wl, AsOf: day})

	log := activity.NewLog()
	// candidate.net active the last 3 days; its e2LD the same.
	for d := day - 2; d <= day; d++ {
		log.MarkDomain(d, "candidate.net")
		log.MarkE2LD(d, "candidate.net")
	}
	// good.com active the whole window.
	for d := day - 13; d <= day; d++ {
		log.MarkDomain(d, "www.good.com")
		log.MarkE2LD(d, "good.com")
	}

	db := pdns.NewDB()
	// Abused IP history: another malware domain used 185.1.1.10.
	db.Add(day-30, "old.evil.com", dnsutil.MakeIPv4(185, 1, 1, 10))
	// An unknown domain used the same /24.
	db.Add(day-20, "stranger.com", dnsutil.MakeIPv4(185, 1, 1, 77))
	abuse := pdns.BuildAbuseIndex(db, day-150, day-1, func(d string) pdns.Verdict {
		switch d {
		case "old.evil.com":
			return pdns.VerdictMalware
		case "stranger.com":
			return pdns.VerdictUnknown
		default:
			return pdns.VerdictBenign
		}
	})
	return &fixture{g: g, log: log, abuse: abuse}
}

func (f *fixture) extractor(t *testing.T) *Extractor {
	t.Helper()
	e, err := NewExtractor(f.g, f.log, f.abuse, 14)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func (f *fixture) vector(t *testing.T, domain string) []float64 {
	t.Helper()
	d, ok := f.g.DomainIndex(domain)
	if !ok {
		t.Fatalf("domain %s missing", domain)
	}
	return f.extractor(t).Vector(d)
}

func TestNewExtractorRequiresLabels(t *testing.T) {
	b := graph.NewBuilder("X", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m", "d.com")
	g := b.Build()
	if _, err := NewExtractor(g, nil, nil, 14); !errors.Is(err, ErrUnlabeledGraph) {
		t.Fatalf("err = %v, want ErrUnlabeledGraph", err)
	}
}

func TestVectorMachineBehavior(t *testing.T) {
	f := newFixture(t)
	v := f.vector(t, "candidate.net")
	// candidate.net is queried by bot1..3 (infected via c2.known.com,
	// independent of candidate) and mixed (unknown: its other domains are
	// benign but candidate is ignored, leaving only benign -> benign!).
	// mixed queries candidate + www.good.com; hiding candidate, all its
	// remaining domains are benign, so mixed counts as benign.
	if got := v[FTotalMachines]; got != 4 {
		t.Fatalf("t = %v, want 4", got)
	}
	if got := v[FInfectedFraction]; got != 0.75 {
		t.Fatalf("m = %v, want 0.75", got)
	}
	if got := v[FUnknownFraction]; got != 0 {
		t.Fatalf("u = %v, want 0 (mixed re-derives to benign)", got)
	}
}

func TestVectorHidingKnownMalware(t *testing.T) {
	f := newFixture(t)
	v := f.vector(t, "c2.known.com")
	// Hiding c2.known.com: bots lose their only malware evidence and
	// re-derive. Each bot queries c2.known (hidden), candidate (unknown),
	// good.com (benign): with c2 ignored, candidate is still unknown ->
	// bots become unknown machines.
	if got := v[FInfectedFraction]; got != 0 {
		t.Fatalf("m = %v, want 0 after hiding the sole malware evidence", got)
	}
	if got := v[FUnknownFraction]; got != 1 {
		t.Fatalf("u = %v, want 1", got)
	}
	if got := v[FTotalMachines]; got != 3 {
		t.Fatalf("t = %v, want 3", got)
	}
}

func TestVectorActivity(t *testing.T) {
	f := newFixture(t)
	v := f.vector(t, "candidate.net")
	if got := v[FDomainActiveDays]; got != 3 {
		t.Fatalf("active days = %v, want 3", got)
	}
	if got := v[FDomainStreak]; got != 3 {
		t.Fatalf("streak = %v, want 3", got)
	}
	if got := v[FE2LDActiveDays]; got != 3 {
		t.Fatalf("e2LD active days = %v, want 3", got)
	}
	vg := f.vector(t, "www.good.com")
	if got := vg[FDomainActiveDays]; got != 14 {
		t.Fatalf("good.com active days = %v, want 14", got)
	}
	if got := vg[FE2LDStreak]; got != 14 {
		t.Fatalf("good.com e2LD streak = %v, want 14", got)
	}
}

func TestVectorIPAbuse(t *testing.T) {
	f := newFixture(t)
	v := f.vector(t, "candidate.net")
	// One of candidate's two IPs (185.1.1.10) was used by old.evil.com.
	if got := v[FMalwareIPFraction]; got != 0.5 {
		t.Fatalf("malware IP fraction = %v, want 0.5", got)
	}
	// Same one prefix matches; 50.1.1.0/24 has no history.
	if got := v[FMalwarePrefixFraction]; got != 0.5 {
		t.Fatalf("malware prefix fraction = %v, want 0.5", got)
	}
	// stranger.com (unknown) used 185.1.1.0/24 but not the exact IP.
	if got := v[FUnknownIPs]; got != 0 {
		t.Fatalf("unknown IPs = %v, want 0", got)
	}
	if got := v[FUnknownPrefixes]; got != 1 {
		t.Fatalf("unknown prefixes = %v, want 1", got)
	}
}

func TestVectorNilAbuseAndLog(t *testing.T) {
	f := newFixture(t)
	e, err := NewExtractor(f.g, nil, nil, 14)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.g.DomainIndex("candidate.net")
	v := e.Vector(d)
	for _, i := range []int{FDomainActiveDays, FDomainStreak, FE2LDActiveDays, FE2LDStreak,
		FMalwareIPFraction, FMalwarePrefixFraction, FUnknownIPs, FUnknownPrefixes} {
		if v[i] != 0 {
			t.Fatalf("feature %d = %v, want 0 without context sources", i, v[i])
		}
	}
	if v[FTotalMachines] == 0 {
		t.Fatal("F1 must still be measured")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != NumFeatures {
		t.Fatalf("names = %d, want %d", len(names), NumFeatures)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("invalid or duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestGroupColumns(t *testing.T) {
	all := map[int]bool{}
	for _, g := range []Group{GroupMachineBehavior, GroupDomainActivity, GroupIPAbuse} {
		for _, c := range g.Columns() {
			if all[c] {
				t.Fatalf("column %d in two groups", c)
			}
			all[c] = true
		}
	}
	if len(all) != NumFeatures {
		t.Fatalf("groups cover %d columns, want %d", len(all), NumFeatures)
	}
	if got := len(ColumnsExcluding(GroupIPAbuse)); got != NumFeatures-4 {
		t.Fatalf("ColumnsExcluding(IPAbuse) = %d columns, want %d", got, NumFeatures-4)
	}
	if Group(99).Columns() != nil {
		t.Fatal("unknown group must return nil")
	}
}

func TestTrainingSet(t *testing.T) {
	f := newFixture(t)
	e := f.extractor(t)
	ds := TrainingSet(e, nil)
	// Known domains: c2.known.com (malware), www.good.com, www.nice.org
	// (benign). candidate.net is unknown and excluded by construction.
	if ds.Len() != 3 {
		t.Fatalf("training set = %d examples, want 3", ds.Len())
	}
	benign, malware := ds.Counts()
	if benign != 2 || malware != 1 {
		t.Fatalf("counts = (%d, %d), want (2, 1)", benign, malware)
	}
	for i, dom := range ds.Domains {
		if dom == "candidate.net" {
			t.Fatal("unknown domain in training set")
		}
		if len(ds.X[i]) != NumFeatures {
			t.Fatalf("vector %d has %d features", i, len(ds.X[i]))
		}
	}
}

func TestTrainingSetExclusion(t *testing.T) {
	f := newFixture(t)
	e := f.extractor(t)
	ds := TrainingSet(e, map[string]struct{}{"c2.known.com": {}})
	if ds.Len() != 2 {
		t.Fatalf("training set = %d, want 2 after exclusion", ds.Len())
	}
	for _, dom := range ds.Domains {
		if dom == "c2.known.com" {
			t.Fatal("excluded domain still present")
		}
	}
}

func TestVectorsFor(t *testing.T) {
	f := newFixture(t)
	e := f.extractor(t)
	X, ok := VectorsFor(e, []string{"candidate.net", "missing.com"})
	if !ok[0] || ok[1] {
		t.Fatalf("ok = %v, want [true false]", ok)
	}
	if X[0] == nil || X[1] != nil {
		t.Fatal("vector presence mismatch")
	}
}

// TestVectorsForMatchesVector checks the flat-backed parallel batch path
// is byte-identical to the per-domain Vector path, including missing
// domains and the empty input.
func TestVectorsForMatchesVector(t *testing.T) {
	f := newFixture(t)
	e := f.extractor(t)
	domains := []string{
		"candidate.net", "missing.com", "www.good.com",
		"c2.known.com", "www.nice.org", "also-missing.example",
	}
	X, ok := VectorsFor(e, domains)
	if len(X) != len(domains) || len(ok) != len(domains) {
		t.Fatalf("shape = %d/%d, want %d", len(X), len(ok), len(domains))
	}
	for i, name := range domains {
		d, found := f.g.DomainIndex(name)
		if ok[i] != found {
			t.Fatalf("%s: ok = %v, want %v", name, ok[i], found)
		}
		if !found {
			if X[i] != nil {
				t.Fatalf("%s: missing domain has non-nil vector", name)
			}
			continue
		}
		want := e.Vector(d)
		if len(X[i]) != NumFeatures {
			t.Fatalf("%s: row length %d, want %d", name, len(X[i]), NumFeatures)
		}
		for j := range want {
			if X[i][j] != want[j] {
				t.Fatalf("%s feature %d: batch %v != serial %v", name, j, X[i][j], want[j])
			}
		}
	}

	// Rows must not alias each other past their cap.
	if len(X[0]) != cap(X[0]) {
		t.Fatalf("row cap %d leaks past its length %d", cap(X[0]), len(X[0]))
	}

	// Empty input: non-nil zero-length results, no allocation of backing.
	X0, ok0 := VectorsFor(e, nil)
	if X0 == nil || ok0 == nil || len(X0) != 0 || len(ok0) != 0 {
		t.Fatalf("empty input: X=%v ok=%v, want empty non-nil slices", X0, ok0)
	}
}

// TestVectorPool checks the Borrow/Return scratch cycle produces vectors
// identical to freshly allocated ones even after recycling.
func TestVectorPool(t *testing.T) {
	f := newFixture(t)
	e := f.extractor(t)
	d, _ := f.g.DomainIndex("candidate.net")
	want := e.Vector(d)

	v := BorrowVector()
	if len(v) != NumFeatures {
		t.Fatalf("borrowed length %d, want %d", len(v), NumFeatures)
	}
	for i := range v {
		v[i] = -1 // poison: VectorInto must overwrite every slot
	}
	e.VectorInto(d, v)
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("feature %d: pooled %v != fresh %v", i, v[i], want[i])
		}
	}
	ReturnVector(v)
	v2 := BorrowVector()
	defer ReturnVector(v2)
	if len(v2) != NumFeatures {
		t.Fatalf("recycled length %d, want %d", len(v2), NumFeatures)
	}
}

func TestUnknownDomains(t *testing.T) {
	f := newFixture(t)
	e := f.extractor(t)
	unknown := UnknownDomains(e)
	if len(unknown) != 1 || unknown[0] != "candidate.net" {
		t.Fatalf("unknown = %v, want [candidate.net]", unknown)
	}
}

// TestVectorInvariants checks, over randomized graphs, that every
// measured vector respects the feature semantics: fractions in [0,1],
// m+u <= 1, counts bounded by the window and the IP set.
func TestVectorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		day := 100
		b := graph.NewBuilder("Q", day, dnsutil.DefaultSuffixList())
		bl := intel.NewBlacklist()
		var wl []string
		nd := 8 + rng.Intn(20)
		for d := 0; d < nd; d++ {
			name := fmt.Sprintf("dom%02d.com", d)
			switch rng.Intn(4) {
			case 0:
				bl.Add(intel.BlacklistEntry{Domain: name})
			case 1:
				wl = append(wl, name)
			}
		}
		for m := 0; m < 5+rng.Intn(15); m++ {
			id := fmt.Sprintf("m%02d", m)
			for e := 0; e < 1+rng.Intn(6); e++ {
				d := rng.Intn(nd)
				b.AddQuery(id, fmt.Sprintf("dom%02d.com", d))
			}
		}
		g := b.Build()
		g.ApplyLabels(graph.LabelSources{Blacklist: bl, Whitelist: intel.NewWhitelist(wl), AsOf: day})

		log := activity.NewLog()
		for d := 0; d < nd; d++ {
			for day0 := day - rng.Intn(14); day0 <= day; day0++ {
				log.MarkDomain(day0, fmt.Sprintf("dom%02d.com", d))
				log.MarkE2LD(day0, fmt.Sprintf("dom%02d.com", d))
			}
		}
		window := 14
		ex, err := NewExtractor(g, log, nil, window)
		if err != nil {
			return false
		}
		for d := int32(0); d < int32(g.NumDomains()); d++ {
			v := ex.Vector(d)
			m, u, tt := v[FInfectedFraction], v[FUnknownFraction], v[FTotalMachines]
			if m < 0 || m > 1 || u < 0 || u > 1 || m+u > 1+1e-12 {
				return false
			}
			if tt != float64(g.DomainDegree(d)) {
				return false
			}
			if v[FDomainActiveDays] < 0 || v[FDomainActiveDays] > float64(window) {
				return false
			}
			if v[FDomainStreak] > v[FDomainActiveDays] {
				return false
			}
			if v[FE2LDActiveDays] < v[FDomainActiveDays] {
				return false // e2LD activity includes the domain's own
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
