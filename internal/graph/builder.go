package graph

import (
	"sort"

	"segugio/internal/dnsutil"
)

// Builder accumulates one observation window of DNS queries and produces
// Graphs. It supports two usage modes with identical results:
//
//   - batch: feed a full trace, call Build once, discard the Builder;
//   - incremental: keep appending queries and resolutions (the segugiod
//     streaming path) and call Snapshot whenever a consistent, immutable
//     view is needed for concurrent scoring.
//
// Duplicate (machine, domain) observations are deduplicated at
// Build/Snapshot time. Builder is not safe for concurrent use; callers
// that append and snapshot from different goroutines must serialize
// access themselves. Snapshots, once returned, share no mutable state
// with the Builder and may be read concurrently with further appends.
type Builder struct {
	name     string
	day      int
	suffixes *dnsutil.SuffixList

	machineIndex map[string]int32
	machineIDs   []string
	domainIndex  map[string]int32
	domains      []string
	domainE2LD   []string
	domainIPs    [][]dnsutil.IPv4

	edges []edge
}

type edge struct{ m, d int32 }

// NewBuilder starts a graph for the named network and observation day.
// The suffix list is used to annotate each domain with its effective 2LD.
func NewBuilder(name string, day int, suffixes *dnsutil.SuffixList) *Builder {
	return &Builder{
		name:         name,
		day:          day,
		suffixes:     suffixes,
		machineIndex: make(map[string]int32),
		domainIndex:  make(map[string]int32),
	}
}

// Name returns the network name passed to NewBuilder.
func (b *Builder) Name() string { return b.name }

// Day returns the observation day passed to NewBuilder.
func (b *Builder) Day() int { return b.day }

// NumMachines reports how many distinct machines have been observed.
func (b *Builder) NumMachines() int { return len(b.machineIDs) }

// NumDomains reports how many distinct domains have been observed.
func (b *Builder) NumDomains() int { return len(b.domains) }

// NumObservations reports the raw (machine, domain) observation count,
// before Build/Snapshot-time deduplication. It can only shrink when a
// Build or Snapshot compacts duplicates away.
func (b *Builder) NumObservations() int { return len(b.edges) }

// AddQuery records that machineID queried domain during the window.
func (b *Builder) AddQuery(machineID, domain string) {
	m := b.machine(machineID)
	d := b.domain(domain)
	b.edges = append(b.edges, edge{m: m, d: d})
}

// AddResolution annotates domain with one address it resolved to during
// the window. Duplicate addresses are ignored. This is the streaming
// counterpart of SetDomainIPs: one resolution event at a time.
func (b *Builder) AddResolution(domain string, ip dnsutil.IPv4) {
	d := b.domain(domain)
	for _, have := range b.domainIPs[d] {
		if have == ip {
			return
		}
	}
	b.domainIPs[d] = append(b.domainIPs[d], ip)
}

// SetDomainIPs annotates domain with the addresses it resolved to. Calling
// it again for the same domain merges the address sets.
func (b *Builder) SetDomainIPs(domain string, ips []dnsutil.IPv4) {
	for _, ip := range ips {
		b.AddResolution(domain, ip)
	}
}

func (b *Builder) machine(id string) int32 {
	if m, ok := b.machineIndex[id]; ok {
		return m
	}
	m := int32(len(b.machineIDs))
	b.machineIndex[id] = m
	b.machineIDs = append(b.machineIDs, id)
	return m
}

func (b *Builder) domain(name string) int32 {
	if d, ok := b.domainIndex[name]; ok {
		return d
	}
	d := int32(len(b.domains))
	b.domainIndex[name] = d
	b.domains = append(b.domains, name)
	b.domainE2LD = append(b.domainE2LD, b.suffixes.E2LD(name))
	b.domainIPs = append(b.domainIPs, nil)
	return d
}

// Build assembles the bidirectional CSR adjacency. The Builder remains
// usable afterwards; Build is simply Snapshot under its historical name.
func (b *Builder) Build() *Graph { return b.Snapshot() }

// Snapshot deduplicates the recorded queries and assembles an immutable
// Graph that shares no mutable state with the Builder: further AddQuery /
// AddResolution calls never affect a previously returned snapshot, so the
// daemon can keep ingesting while older snapshots are being scored.
func (b *Builder) Snapshot() *Graph {
	nm := len(b.machineIDs)
	nd := len(b.domains)

	// Sort by (machine, domain) and deduplicate in place. Compacting the
	// Builder's own edge list is safe — duplicates carry no information —
	// and keeps repeated snapshots from re-sorting the same observations.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].m != b.edges[j].m {
			return b.edges[i].m < b.edges[j].m
		}
		return b.edges[i].d < b.edges[j].d
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup

	g := &Graph{
		name:         b.name,
		day:          b.day,
		machineIDs:   append([]string(nil), b.machineIDs...),
		domains:      append([]string(nil), b.domains...),
		domainE2LD:   append([]string(nil), b.domainE2LD...),
		domainIPs:    make([][]dnsutil.IPv4, nd),
		domainIndex:  make(map[string]int32, nd),
		machineIndex: make(map[string]int32, nm),
		domainLabel:  make([]Label, nd),
		machineLabel: make([]Label, nm),
		cntMalware:   make([]int32, nm),
		cntNonBenign: make([]int32, nm),
	}
	for d, ips := range b.domainIPs {
		if len(ips) > 0 {
			g.domainIPs[d] = append([]dnsutil.IPv4(nil), ips...)
		}
	}
	for name, i := range b.domainIndex {
		g.domainIndex[name] = i
	}
	for id, i := range b.machineIndex {
		g.machineIndex[id] = i
	}

	// Machine-side CSR comes straight from the sorted edge list.
	g.mOff = make([]int32, nm+1)
	g.mAdj = make([]int32, len(b.edges))
	for _, e := range b.edges {
		g.mOff[e.m+1]++
	}
	for m := 0; m < nm; m++ {
		g.mOff[m+1] += g.mOff[m]
	}
	for i, e := range b.edges {
		g.mAdj[i] = e.d
	}

	// Domain-side CSR via counting sort on the same edges.
	g.dOff = make([]int32, nd+1)
	for _, e := range b.edges {
		g.dOff[e.d+1]++
	}
	for d := 0; d < nd; d++ {
		g.dOff[d+1] += g.dOff[d]
	}
	g.dAdj = make([]int32, len(b.edges))
	cursor := make([]int32, nd)
	copy(cursor, g.dOff[:nd])
	for _, e := range b.edges {
		g.dAdj[cursor[e.d]] = e.m
		cursor[e.d]++
	}
	return g
}
