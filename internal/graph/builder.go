package graph

import (
	"slices"
	"sort"

	"segugio/internal/dnsutil"
)

// Builder accumulates one observation window of DNS queries and produces
// Graphs. It supports two usage modes with identical results:
//
//   - batch: feed a full trace, call Build once, discard the Builder;
//   - incremental: keep appending queries and resolutions (the segugiod
//     streaming path) and call Snapshot whenever a consistent, immutable
//     view is needed for concurrent scoring.
//
// Snapshotting is amortized-incremental: the edge list is kept as a
// sorted, deduplicated base run plus a small unsorted pending buffer, so
// Snapshot sorts only the pending delta and merges it in. Name slabs are
// append-only and shared copy-on-write with snapshots, and the CSR
// adjacency is shared with a per-node overlay for nodes touched since the
// last full compaction. Compaction (a full CSR rebuild) runs when the
// overlay grows past a fraction of the base, keeping the amortized
// snapshot cost O(delta log delta + delta).
//
// Duplicate (machine, domain) observations are deduplicated at
// Build/Snapshot time. Builder is not safe for concurrent use; callers
// that append and snapshot from different goroutines must serialize
// access themselves. Snapshots, once returned, share no mutable state
// with the Builder and may be read concurrently with further appends.
type Builder struct {
	name     string
	day      int
	suffixes *dnsutil.SuffixList

	// Interned node names. The slabs (machineIDs, domains, domainE2LD)
	// are append-only: published prefixes are never rewritten, so a
	// snapshot holds a length-capped view instead of a copy. The lookup
	// maps are split into a frozen published map (shared read-only with
	// snapshots) and a small recent map holding entries interned since
	// the last publish; publishing re-merges the two when the recent map
	// outgrows a fraction of the published one.
	machinePub    map[string]int32
	machineRecent map[string]int32
	domainPub     map[string]int32
	domainRecent  map[string]int32
	machinePubGen uint64
	domainPubGen  uint64

	machineIDs []string
	domains    []string
	domainE2LD []string
	domainIPs  [][]dnsutil.IPv4
	// ipSets holds the per-domain address set for domains whose address
	// count crossed ipSetThreshold (fast-flux); below the threshold a
	// linear scan over domainIPs[d] is cheaper than a map.
	ipSets map[int32]map[dnsutil.IPv4]struct{}

	// Edge storage: base is sorted by (machine, domain) and deduplicated;
	// pending collects appends since the last snapshot.
	base    []edge
	pending []edge

	// Base CSR built at the last compaction, shared with snapshots.
	csrMOff, csrMAdj []int32
	csrDOff, csrDAdj []int32
	csrNM, csrND     int

	// Overlay adjacency for nodes whose edge set changed since the last
	// compaction: ov[node] is -1 (read the base CSR row) or an index into
	// ovAdj holding the node's full adjacency. ovMut/ipMut are change
	// generations used to reuse the previous snapshot's frozen copies.
	ovM, ovD       []int32
	ovMAdj, ovDAdj [][]int32
	ovEdges        int
	ovMut, ipMut   uint64

	// Dirty bookkeeping. freshLog records, in order, every edge that
	// survived deduplication; ipLog/ipLogIP every first-time (domain,
	// address) pair. Positions are absolute (offset by
	// freshBase/ipLogBase) so the logs can be trimmed once no baseline
	// needs the prefix.
	freshLog  []edge
	freshBase int
	ipLog     []int32
	ipLogIP   []dnsutil.IPv4
	ipLogBase int

	// Drain cursors for DrainFresh: absolute positions of the last drained
	// log prefix. Only builders that are actually drained (the per-shard
	// builders behind a sharded ingester) set drainActive, so ordinary
	// builders keep trimming their logs as before.
	drainActive bool
	drainFresh  int
	drainIP     int

	// Per-domain "queried at least once this window" flags and per-e2LD
	// grouping, used to propagate first-query activity dirt to e2LD
	// siblings (their e2LD activity features change too).
	domainQueried []bool
	e2lds         map[string]*e2ldEntry
	e2ldPending   []*e2ldEntry

	lastSnap      *Graph
	lastSnapFresh int
	lastSnapIP    int
	lastSnapND    int
	lastLabeled   *Graph

	frozenNM, frozenND       int
	frozenOvMut, frozenIPMut uint64
	frozenMPubGen            uint64
	frozenDPubGen            uint64
}

type edge struct{ m, d int32 }

func edgeLess(a, b edge) bool {
	if a.m != b.m {
		return a.m < b.m
	}
	return a.d < b.d
}

func edgeCmp(a, b edge) int {
	if a.m != b.m {
		return int(a.m) - int(b.m)
	}
	return int(a.d) - int(b.d)
}

type e2ldEntry struct {
	domains []int32
	queried bool
}

const (
	// ipSetThreshold is the per-domain address count past which
	// AddResolution switches from a linear scan to a hash set. Fast-flux
	// domains accumulate hundreds of addresses, making the scan O(n) per
	// event and O(n²) cumulatively — the exact shape Segugio must track.
	ipSetThreshold = 16
	// indexPublishMin bounds how small the recent intern maps may grow
	// before a publish is considered.
	indexPublishMin = 64
	// overlaySlackMin bounds how many overlay edges may accumulate before
	// a compaction is considered.
	overlaySlackMin = 1024
	// logTrimMin is the minimum consumed log prefix worth compacting.
	logTrimMin = 4096
)

// NewBuilder starts a graph for the named network and observation day.
// The suffix list is used to annotate each domain with its effective 2LD.
func NewBuilder(name string, day int, suffixes *dnsutil.SuffixList) *Builder {
	return &Builder{
		name:          name,
		day:           day,
		suffixes:      suffixes,
		machinePub:    make(map[string]int32),
		machineRecent: make(map[string]int32),
		domainPub:     make(map[string]int32),
		domainRecent:  make(map[string]int32),
		ipSets:        make(map[int32]map[dnsutil.IPv4]struct{}),
		e2lds:         make(map[string]*e2ldEntry),
	}
}

// Name returns the network name passed to NewBuilder.
func (b *Builder) Name() string { return b.name }

// Day returns the observation day passed to NewBuilder.
func (b *Builder) Day() int { return b.day }

// NumMachines reports how many distinct machines have been observed.
func (b *Builder) NumMachines() int { return len(b.machineIDs) }

// NumDomains reports how many distinct domains have been observed.
func (b *Builder) NumDomains() int { return len(b.domains) }

// NumObservations reports the raw (machine, domain) observation count,
// before Build/Snapshot-time deduplication. It can only shrink when a
// Build or Snapshot compacts duplicates away.
func (b *Builder) NumObservations() int { return len(b.base) + len(b.pending) }

// DomainNamesSince returns the names of the domains interned at index n
// or later, in intern order. The name slab is append-only, so the
// returned view stays valid (and fixed) across further appends; the
// sharded ingester uses it to keep an exact global domain count without
// re-scanning whole shards.
func (b *Builder) DomainNamesSince(n int) []string {
	return b.domains[n:len(b.domains):len(b.domains)]
}

// AddQuery records that machineID queried domain during the window.
func (b *Builder) AddQuery(machineID, domain string) {
	m := b.machine(machineID)
	d := b.domain(domain)
	b.pending = append(b.pending, edge{m: m, d: d})
	if !b.domainQueried[d] {
		b.domainQueried[d] = true
		ent := b.e2lds[b.domainE2LD[d]]
		if !ent.queried {
			ent.queried = true
			b.e2ldPending = append(b.e2ldPending, ent)
		}
	}
}

// AddResolution annotates domain with one address it resolved to during
// the window. Duplicate addresses are ignored. This is the streaming
// counterpart of SetDomainIPs: one resolution event at a time.
func (b *Builder) AddResolution(domain string, ip dnsutil.IPv4) {
	d := b.domain(domain)
	ips := b.domainIPs[d]
	if set, ok := b.ipSets[d]; ok {
		if _, dup := set[ip]; dup {
			return
		}
		set[ip] = struct{}{}
	} else if len(ips) < ipSetThreshold {
		for _, have := range ips {
			if have == ip {
				return
			}
		}
	} else {
		set = make(map[dnsutil.IPv4]struct{}, len(ips)+1)
		for _, have := range ips {
			set[have] = struct{}{}
		}
		b.ipSets[d] = set
		if _, dup := set[ip]; dup {
			return
		}
		set[ip] = struct{}{}
	}
	// Snapshots hold the outer slice header by value, so appending here
	// (even growing in place within capacity) never changes what a
	// published snapshot sees.
	b.domainIPs[d] = append(ips, ip)
	b.ipLog = append(b.ipLog, d)
	b.ipLogIP = append(b.ipLogIP, ip)
	b.ipMut++
}

// SetDomainIPs annotates domain with the addresses it resolved to. Calling
// it again for the same domain merges the address sets.
func (b *Builder) SetDomainIPs(domain string, ips []dnsutil.IPv4) {
	for _, ip := range ips {
		b.AddResolution(domain, ip)
	}
}

// MarkLabeled tells the Builder that g — one of its snapshots — has had
// ApplyLabels run with the daemon's standing label sources. Subsequent
// snapshots use the most recent labeled snapshot as the baseline for
// incremental relabeling, so ApplyLabels touches only nodes that changed
// since. Callers must serialize MarkLabeled with other Builder calls.
func (b *Builder) MarkLabeled(g *Graph) {
	if g == nil || !g.labelsApplied || g.day != b.day || g.name != b.name {
		return
	}
	if b.lastLabeled == nil || g.snapFreshPos >= b.lastLabeled.snapFreshPos {
		b.lastLabeled = g
	}
}

func (b *Builder) lookupMachine(id string) (int32, bool) {
	if m, ok := b.machinePub[id]; ok {
		return m, true
	}
	m, ok := b.machineRecent[id]
	return m, ok
}

func (b *Builder) lookupDomain(name string) (int32, bool) {
	if d, ok := b.domainPub[name]; ok {
		return d, true
	}
	d, ok := b.domainRecent[name]
	return d, ok
}

func (b *Builder) machine(id string) int32 {
	if m, ok := b.lookupMachine(id); ok {
		return m
	}
	m := int32(len(b.machineIDs))
	b.machineRecent[id] = m
	b.machineIDs = append(b.machineIDs, id)
	return m
}

func (b *Builder) domain(name string) int32 {
	if d, ok := b.lookupDomain(name); ok {
		return d
	}
	d := int32(len(b.domains))
	b.domainRecent[name] = d
	b.domains = append(b.domains, name)
	e2 := b.suffixes.E2LD(name)
	b.domainE2LD = append(b.domainE2LD, e2)
	b.domainIPs = append(b.domainIPs, nil)
	b.domainQueried = append(b.domainQueried, false)
	ent := b.e2lds[e2]
	if ent == nil {
		ent = &e2ldEntry{}
		b.e2lds[e2] = ent
	}
	ent.domains = append(ent.domains, d)
	return d
}

// Build assembles the bidirectional CSR adjacency. The Builder remains
// usable afterwards; Build forces a full compaction so batch-built graphs
// carry plain CSR arrays exactly like always.
func (b *Builder) Build() *Graph { return b.snapshot(true) }

// Snapshot deduplicates the pending queries, merges them into the base
// run, and assembles an immutable Graph that shares no mutable state with
// the Builder: further AddQuery / AddResolution calls never affect a
// previously returned snapshot, so the daemon can keep ingesting while
// older snapshots are being scored. The snapshot also records which
// domains are dirty since the previous snapshot; see Graph.DirtyDomains.
func (b *Builder) Snapshot() *Graph { return b.snapshot(false) }

func (b *Builder) snapshot(forceCompact bool) *Graph {
	fresh := b.mergePending()
	b.freshLog = append(b.freshLog, fresh...)
	if forceCompact || b.csrMOff == nil || b.ovEdges+len(fresh) > len(b.base)/4+overlaySlackMin {
		b.compact()
	} else if len(fresh) > 0 {
		b.applyOverlay(fresh)
	}
	b.pending = b.pending[:0]

	g := b.freeze()
	b.computeDirty(g)
	b.computeLabelDelta(g)
	b.finishSnapshot(g)
	return g
}

// mergePending sorts and deduplicates the pending buffer, drops edges
// already present in base, merges the survivors into base (kept sorted),
// and returns the fresh edges. The returned slice aliases the pending
// buffer and is only valid until the next append.
func (b *Builder) mergePending() []edge {
	if len(b.pending) == 0 {
		return nil
	}
	p := b.pending
	slices.SortFunc(p, edgeCmp)
	w := 0
	for i, e := range p {
		if i > 0 && e == p[i-1] {
			continue
		}
		p[w] = e
		w++
	}
	p = p[:w]
	fresh := p[:0]
	for _, e := range p {
		if !b.baseContains(e) {
			fresh = append(fresh, e)
		}
	}
	b.mergeIntoBase(fresh)
	return fresh
}

func (b *Builder) baseContains(e edge) bool {
	i := sort.Search(len(b.base), func(i int) bool { return !edgeLess(b.base[i], e) })
	return i < len(b.base) && b.base[i] == e
}

// mergeIntoBase merges the sorted fresh run into the sorted base run with
// a single backward pass, in place when capacity allows.
func (b *Builder) mergeIntoBase(fresh []edge) {
	if len(fresh) == 0 {
		return
	}
	old := len(b.base)
	need := old + len(fresh)
	if cap(b.base) < need {
		grown := make([]edge, old, need+need/4)
		copy(grown, b.base)
		b.base = grown
	}
	b.base = b.base[:need]
	i, j, k := old-1, len(fresh)-1, need-1
	for j >= 0 {
		if i >= 0 && edgeLess(fresh[j], b.base[i]) {
			b.base[k] = b.base[i]
			i--
		} else {
			b.base[k] = fresh[j]
			j--
		}
		k--
	}
}

// applyOverlay folds fresh edges into the per-node overlay adjacency,
// materializing a node's base CSR row on first touch.
func (b *Builder) applyOverlay(fresh []edge) {
	b.ensureOverlay()
	for _, e := range fresh {
		b.overlayAddM(e.m, e.d)
		b.overlayAddD(e.d, e.m)
	}
	b.ovEdges += len(fresh)
	b.ovMut++
}

func (b *Builder) ensureOverlay() {
	if b.ovM == nil {
		b.ovM = filledMinusOne(len(b.machineIDs))
		b.ovD = filledMinusOne(len(b.domains))
		return
	}
	for len(b.ovM) < len(b.machineIDs) {
		b.ovM = append(b.ovM, -1)
	}
	for len(b.ovD) < len(b.domains) {
		b.ovD = append(b.ovD, -1)
	}
}

func filledMinusOne(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

func (b *Builder) overlayAddM(m, d int32) {
	slot := b.ovM[m]
	if slot < 0 {
		var adj []int32
		if int(m) < b.csrNM {
			row := b.csrMAdj[b.csrMOff[m]:b.csrMOff[m+1]]
			adj = append(make([]int32, 0, len(row)+4), row...)
		}
		slot = int32(len(b.ovMAdj))
		b.ovMAdj = append(b.ovMAdj, adj)
		b.ovM[m] = slot
	}
	b.ovMAdj[slot] = append(b.ovMAdj[slot], d)
}

func (b *Builder) overlayAddD(d, m int32) {
	slot := b.ovD[d]
	if slot < 0 {
		var adj []int32
		if int(d) < b.csrND {
			row := b.csrDAdj[b.csrDOff[d]:b.csrDOff[d+1]]
			adj = append(make([]int32, 0, len(row)+4), row...)
		}
		slot = int32(len(b.ovDAdj))
		b.ovDAdj = append(b.ovDAdj, adj)
		b.ovD[d] = slot
	}
	b.ovDAdj[slot] = append(b.ovDAdj[slot], m)
}

// compact rebuilds both CSR directions from the sorted base run and drops
// the overlay. O(nodes + edges), amortized across many snapshots by the
// overlay growth threshold.
func (b *Builder) compact() {
	nm, nd, ne := len(b.machineIDs), len(b.domains), len(b.base)
	mOff := make([]int32, nm+1)
	for _, e := range b.base {
		mOff[e.m+1]++
	}
	for m := 0; m < nm; m++ {
		mOff[m+1] += mOff[m]
	}
	mAdj := make([]int32, ne)
	for i, e := range b.base {
		mAdj[i] = e.d
	}

	dOff := make([]int32, nd+1)
	for _, e := range b.base {
		dOff[e.d+1]++
	}
	for d := 0; d < nd; d++ {
		dOff[d+1] += dOff[d]
	}
	dAdj := make([]int32, ne)
	cursor := make([]int32, nd)
	copy(cursor, dOff[:nd])
	for _, e := range b.base {
		dAdj[cursor[e.d]] = e.m
		cursor[e.d]++
	}

	b.csrMOff, b.csrMAdj, b.csrDOff, b.csrDAdj = mOff, mAdj, dOff, dAdj
	b.csrNM, b.csrND = nm, nd
	b.ovM, b.ovD, b.ovMAdj, b.ovDAdj = nil, nil, nil, nil
	b.ovEdges = 0
	b.ovMut++
}

// freeze assembles an immutable Graph over the current builder state.
// Everything shared with the builder is append-only or copied: name slabs
// become length-capped views, the base CSR is shared outright, and the
// small per-snapshot headers (overlay slots, IP outer slice, recent
// intern maps) are copied — or reused from the previous snapshot when
// nothing changed.
func (b *Builder) freeze() *Graph {
	nm, nd := len(b.machineIDs), len(b.domains)
	prev := b.lastSnap

	if len(b.machineRecent) > len(b.machinePub)/4+indexPublishMin {
		b.machinePub = mergeMaps(b.machinePub, b.machineRecent)
		b.machineRecent = make(map[string]int32)
		b.machinePubGen++
	}
	if len(b.domainRecent) > len(b.domainPub)/4+indexPublishMin {
		b.domainPub = mergeMaps(b.domainPub, b.domainRecent)
		b.domainRecent = make(map[string]int32)
		b.domainPubGen++
	}

	var mExtra, dExtra map[string]int32
	if len(b.machineRecent) > 0 {
		if prev != nil && nm == b.frozenNM && b.machinePubGen == b.frozenMPubGen {
			mExtra = prev.machineExtra
		} else {
			mExtra = mergeMaps(nil, b.machineRecent)
		}
	}
	if len(b.domainRecent) > 0 {
		if prev != nil && nd == b.frozenND && b.domainPubGen == b.frozenDPubGen {
			dExtra = prev.domainExtra
		} else {
			dExtra = mergeMaps(nil, b.domainRecent)
		}
	}

	var ips [][]dnsutil.IPv4
	if prev != nil && nd == b.frozenND && b.ipMut == b.frozenIPMut {
		ips = prev.domainIPs
	} else {
		ips = make([][]dnsutil.IPv4, nd)
		copy(ips, b.domainIPs)
	}

	var ovM, ovD []int32
	var ovMAdj, ovDAdj [][]int32
	if b.ovM != nil {
		if prev != nil && prev.ovM != nil && nm == b.frozenNM && nd == b.frozenND && b.ovMut == b.frozenOvMut {
			ovM, ovD = prev.ovM, prev.ovD
			ovMAdj, ovDAdj = prev.ovMAdj, prev.ovDAdj
		} else {
			ovM = frozenSlots(b.ovM, nm)
			ovD = frozenSlots(b.ovD, nd)
			ovMAdj = append([][]int32(nil), b.ovMAdj...)
			ovDAdj = append([][]int32(nil), b.ovDAdj...)
		}
	}

	return &Graph{
		name:         b.name,
		day:          b.day,
		machineIDs:   b.machineIDs[:nm:nm],
		domains:      b.domains[:nd:nd],
		domainE2LD:   b.domainE2LD[:nd:nd],
		domainIPs:    ips,
		mOff:         b.csrMOff,
		mAdj:         b.csrMAdj,
		dOff:         b.csrDOff,
		dAdj:         b.csrDAdj,
		csrNM:        b.csrNM,
		csrND:        b.csrND,
		ovM:          ovM,
		ovD:          ovD,
		ovMAdj:       ovMAdj,
		ovDAdj:       ovDAdj,
		numEdges:     len(b.base),
		machineIndex: b.machinePub,
		domainIndex:  b.domainPub,
		machineExtra: mExtra,
		domainExtra:  dExtra,
		snapFreshPos: b.freshBase + len(b.freshLog),
	}
}

func mergeMaps(pub, recent map[string]int32) map[string]int32 {
	out := make(map[string]int32, len(pub)+len(recent))
	for k, v := range pub {
		out[k] = v
	}
	for k, v := range recent {
		out[k] = v
	}
	return out
}

func frozenSlots(src []int32, n int) []int32 {
	out := make([]int32, n)
	filled := copy(out, src)
	for i := filled; i < n; i++ {
		out[i] = -1
	}
	return out
}

// computeDirty records on g the set of domains whose adjacency, IP
// annotations, activity, or label-relevant neighborhood changed since the
// previous snapshot: domains with fresh edges or first-time addresses,
// newly interned domains, e2LD siblings of domains first queried this
// window (their e2LD activity features moved), and every domain of a
// machine with fresh edges (the machine's label and counts feed those
// domains' features). The first snapshot of a window has no baseline and
// is marked inexact: every domain must be treated as dirty.
func (b *Builder) computeDirty(g *Graph) {
	if b.lastSnap == nil {
		return
	}
	g.deltaExact = true
	set := make(map[int32]struct{})
	var machines map[int32]struct{}
	for _, e := range b.freshLog[b.lastSnapFresh-b.freshBase:] {
		set[e.d] = struct{}{}
		if machines == nil {
			machines = make(map[int32]struct{})
		}
		machines[e.m] = struct{}{}
	}
	for _, d := range b.ipLog[b.lastSnapIP-b.ipLogBase:] {
		set[d] = struct{}{}
	}
	for d := b.lastSnapND; d < len(b.domains); d++ {
		set[int32(d)] = struct{}{}
	}
	for _, ent := range b.e2ldPending {
		for _, d := range ent.domains {
			set[d] = struct{}{}
		}
	}
	for m := range machines {
		for _, d := range g.DomainsOf(m) {
			set[d] = struct{}{}
		}
	}
	if len(set) == 0 {
		return
	}
	dirty := make([]int32, 0, len(set))
	for d := range set {
		dirty = append(dirty, d)
	}
	slices.Sort(dirty)
	g.dirtyDomains = dirty
}

// computeLabelDelta records the machines ApplyLabels must recompute when
// relabeling incrementally against the last labeled snapshot: machines
// with fresh edges since that snapshot, plus machines interned since.
func (b *Builder) computeLabelDelta(g *Graph) {
	base := b.lastLabeled
	if base == nil {
		return
	}
	g.labelBase = base
	set := make(map[int32]struct{})
	for _, e := range b.freshLog[base.snapFreshPos-b.freshBase:] {
		set[e.m] = struct{}{}
	}
	for m := base.NumMachines(); m < len(b.machineIDs); m++ {
		set[int32(m)] = struct{}{}
	}
	dirty := make([]int32, 0, len(set))
	for m := range set {
		dirty = append(dirty, m)
	}
	slices.Sort(dirty)
	g.labelDirtyMachines = dirty
}

func (b *Builder) finishSnapshot(g *Graph) {
	nm, nd := len(b.machineIDs), len(b.domains)
	b.lastSnap = g
	b.lastSnapFresh = b.freshBase + len(b.freshLog)
	b.lastSnapIP = b.ipLogBase + len(b.ipLog)
	b.lastSnapND = nd
	b.e2ldPending = b.e2ldPending[:0]
	b.frozenNM, b.frozenND = nm, nd
	b.frozenOvMut, b.frozenIPMut = b.ovMut, b.ipMut
	b.frozenMPubGen, b.frozenDPubGen = b.machinePubGen, b.domainPubGen
	b.trimLogs()
}

// DrainFresh folds the pending buffer into the base run and replays every
// not-yet-drained deduplicated edge and first-time (domain, address) pair
// to the callbacks, in apply order. It is the shard-to-merged feed of the
// sharded ingest backend: each shard builder absorbs raw events on the hot
// path, and the snapshot coordinator drains the per-shard deltas into one
// merged Builder whose Snapshot carries the exact global dirty set.
//
// Because query events route by machine and resolution events by domain
// (see ShardOf), per-shard deduplication equals global deduplication: no
// two shards ever see the same (machine, domain) or (domain, address)
// pair, so the drained deltas compose without cross-shard duplicates.
//
// The first DrainFresh must happen before any log trimming (in practice:
// immediately after NewBuilder or DecodeSnapshot, both of which start the
// logs at position zero); from then on trimLogs keeps the undrained
// suffix alive. Callers must serialize DrainFresh with other Builder
// calls.
// BeginDrain activates the DrainFresh cursor at the current log base
// without replaying anything. A builder that will be drained later but
// must be snapshotted first (the rehash path checkpoints redistributed
// shard builders before the ingester's seed drain) calls this right
// after construction: otherwise the snapshot's own baseline lets
// trimLogs discard the not-yet-drained prefix and the first DrainFresh
// silently emits nothing. Do not call it on builders that are never
// drained — a pinned cursor keeps the logs alive forever.
func (b *Builder) BeginDrain() {
	if !b.drainActive {
		b.drainActive = true
		b.drainFresh = b.freshBase
		b.drainIP = b.ipLogBase
	}
}

func (b *Builder) DrainFresh(edgeFn func(machineID, domain string), resFn func(domain string, ip dnsutil.IPv4)) {
	fresh := b.mergePending()
	b.freshLog = append(b.freshLog, fresh...)
	// Keep the CSR/overlay invariant: mergePending grew the base run, so
	// the adjacency must absorb the fresh edges exactly as snapshot() does
	// or a later applyOverlay-path snapshot would miss them.
	if b.csrMOff == nil || b.ovEdges+len(fresh) > len(b.base)/4+overlaySlackMin {
		b.compact()
	} else if len(fresh) > 0 {
		b.applyOverlay(fresh)
	}
	b.pending = b.pending[:0]

	if !b.drainActive {
		b.drainActive = true
		b.drainFresh = b.freshBase
		b.drainIP = b.ipLogBase
	}
	for _, e := range b.freshLog[b.drainFresh-b.freshBase:] {
		edgeFn(b.machineIDs[e.m], b.domains[e.d])
	}
	b.drainFresh = b.freshBase + len(b.freshLog)
	tail := b.drainIP - b.ipLogBase
	for i, d := range b.ipLog[tail:] {
		resFn(b.domains[d], b.ipLogIP[tail+i])
	}
	b.drainIP = b.ipLogBase + len(b.ipLog)
	b.trimLogs()
}

// trimLogs drops log prefixes no outstanding baseline can reference: the
// last snapshot's dirty baseline, the last labeled snapshot's relabel
// baseline, and (for drained shard builders) the DrainFresh cursor.
func (b *Builder) trimLogs() {
	minFresh, haveFresh := 0, false
	lower := func(pos int) {
		if !haveFresh || pos < minFresh {
			minFresh, haveFresh = pos, true
		}
	}
	if b.lastSnap != nil {
		lower(b.lastSnapFresh)
	}
	if b.lastLabeled != nil {
		lower(b.lastLabeled.snapFreshPos)
	}
	if b.drainActive {
		lower(b.drainFresh)
	}
	if haveFresh {
		if cut := minFresh - b.freshBase; cut >= logTrimMin && cut > len(b.freshLog)/2 {
			rest := copy(b.freshLog, b.freshLog[cut:])
			b.freshLog = b.freshLog[:rest]
			b.freshBase += cut
		}
	}

	minIP, haveIP := 0, false
	if b.lastSnap != nil {
		minIP, haveIP = b.lastSnapIP, true
	}
	if b.drainActive && (!haveIP || b.drainIP < minIP) {
		minIP, haveIP = b.drainIP, true
	}
	if haveIP {
		if cut := minIP - b.ipLogBase; cut >= logTrimMin && cut > len(b.ipLog)/2 {
			rest := copy(b.ipLog, b.ipLog[cut:])
			b.ipLog = b.ipLog[:rest]
			copy(b.ipLogIP, b.ipLogIP[cut:])
			b.ipLogIP = b.ipLogIP[:rest]
			b.ipLogBase += cut
		}
	}
}
