package graph

import (
	"sort"

	"segugio/internal/dnsutil"
)

// Builder accumulates one observation window of DNS queries and produces
// an immutable Graph. Duplicate (machine, domain) observations are
// deduplicated at Build time. Builder is not safe for concurrent use.
type Builder struct {
	name     string
	day      int
	suffixes *dnsutil.SuffixList

	machineIndex map[string]int32
	machineIDs   []string
	domainIndex  map[string]int32
	domains      []string
	domainIPs    [][]dnsutil.IPv4

	edges []edge
}

type edge struct{ m, d int32 }

// NewBuilder starts a graph for the named network and observation day.
// The suffix list is used to annotate each domain with its effective 2LD.
func NewBuilder(name string, day int, suffixes *dnsutil.SuffixList) *Builder {
	return &Builder{
		name:         name,
		day:          day,
		suffixes:     suffixes,
		machineIndex: make(map[string]int32),
		domainIndex:  make(map[string]int32),
	}
}

// AddQuery records that machineID queried domain during the window.
func (b *Builder) AddQuery(machineID, domain string) {
	m := b.machine(machineID)
	d := b.domain(domain)
	b.edges = append(b.edges, edge{m: m, d: d})
}

// SetDomainIPs annotates domain with the addresses it resolved to. Calling
// it again for the same domain merges the address sets.
func (b *Builder) SetDomainIPs(domain string, ips []dnsutil.IPv4) {
	d := b.domain(domain)
	existing := b.domainIPs[d]
merge:
	for _, ip := range ips {
		for _, have := range existing {
			if have == ip {
				continue merge
			}
		}
		existing = append(existing, ip)
	}
	b.domainIPs[d] = existing
}

func (b *Builder) machine(id string) int32 {
	if m, ok := b.machineIndex[id]; ok {
		return m
	}
	m := int32(len(b.machineIDs))
	b.machineIndex[id] = m
	b.machineIDs = append(b.machineIDs, id)
	return m
}

func (b *Builder) domain(name string) int32 {
	if d, ok := b.domainIndex[name]; ok {
		return d
	}
	d := int32(len(b.domains))
	b.domainIndex[name] = d
	b.domains = append(b.domains, name)
	b.domainIPs = append(b.domainIPs, nil)
	return d
}

// Build deduplicates the recorded queries and assembles the bidirectional
// CSR adjacency. The Builder can be discarded afterwards.
func (b *Builder) Build() *Graph {
	nm := len(b.machineIDs)
	nd := len(b.domains)

	// Sort by (machine, domain) and deduplicate in place.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].m != b.edges[j].m {
			return b.edges[i].m < b.edges[j].m
		}
		return b.edges[i].d < b.edges[j].d
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup

	g := &Graph{
		name:         b.name,
		day:          b.day,
		machineIDs:   b.machineIDs,
		domains:      b.domains,
		domainIPs:    b.domainIPs,
		domainIndex:  b.domainIndex,
		machineIndex: b.machineIndex,
		domainLabel:  make([]Label, nd),
		machineLabel: make([]Label, nm),
		cntMalware:   make([]int32, nm),
		cntNonBenign: make([]int32, nm),
	}

	g.domainE2LD = make([]string, nd)
	for d, name := range b.domains {
		g.domainE2LD[d] = b.suffixes.E2LD(name)
	}

	// Machine-side CSR comes straight from the sorted edge list.
	g.mOff = make([]int32, nm+1)
	g.mAdj = make([]int32, len(b.edges))
	for _, e := range b.edges {
		g.mOff[e.m+1]++
	}
	for m := 0; m < nm; m++ {
		g.mOff[m+1] += g.mOff[m]
	}
	for i, e := range b.edges {
		g.mAdj[i] = e.d
	}

	// Domain-side CSR via counting sort on the same edges.
	g.dOff = make([]int32, nd+1)
	for _, e := range b.edges {
		g.dOff[e.d+1]++
	}
	for d := 0; d < nd; d++ {
		g.dOff[d+1] += g.dOff[d]
	}
	g.dAdj = make([]int32, len(b.edges))
	cursor := make([]int32, nd)
	copy(cursor, g.dOff[:nd])
	for _, e := range b.edges {
		g.dAdj[cursor[e.d]] = e.m
		cursor[e.d]++
	}
	return g
}
