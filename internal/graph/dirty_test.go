package graph

import (
	"reflect"
	"testing"

	"segugio/internal/dnsutil"
)

// dirtyBase populates the shared baseline for the dirty-set table:
// three querying machines, domains across several e2LDs, and two
// resolution-only domains under a never-queried e2LD.
func dirtyBase(b *Builder) {
	b.AddQuery("m1", "a.one.com")
	b.AddQuery("m1", "b.two.com")
	b.AddQuery("m2", "b.two.com")
	b.AddQuery("m3", "c.three.com")
	b.AddResolution("c.three.com", dnsutil.IPv4(0x01010101))
	b.AddResolution("r1.shared.org", dnsutil.IPv4(0x02020202))
	b.AddResolution("r2.shared.org", dnsutil.IPv4(0x03030303))
}

// TestDirtySet pins down the per-snapshot dirty set: exactly the domains
// whose adjacency, labels, or IP annotations can differ from the
// previous snapshot — the edge's domain, every domain of a machine with
// a fresh edge (its infected/benign fractions shift), newly interned
// domains, domains gaining a resolved address, and all domains of an
// e2LD that transitions to queried. No over-reporting: untouched
// siblings and duplicate observations contribute nothing.
func TestDirtySet(t *testing.T) {
	cases := []struct {
		name string
		// mutate runs between the baseline snapshot and the measured one.
		mutate    func(b *Builder)
		wantExact bool
		want      []string
	}{
		{
			name:      "no changes",
			mutate:    func(b *Builder) {},
			wantExact: true,
			want:      []string{},
		},
		{
			name:      "duplicate query dedups to nothing",
			mutate:    func(b *Builder) { b.AddQuery("m1", "a.one.com") },
			wantExact: true,
			want:      []string{},
		},
		{
			name:      "duplicate resolution dedups to nothing",
			mutate:    func(b *Builder) { b.AddResolution("c.three.com", dnsutil.IPv4(0x01010101)) },
			wantExact: true,
			want:      []string{},
		},
		{
			name:   "new edge between existing nodes",
			mutate: func(b *Builder) { b.AddQuery("m2", "a.one.com") },
			// a.one.com gains a machine; every domain m2 queries shifts.
			wantExact: true,
			want:      []string{"a.one.com", "b.two.com"},
		},
		{
			name:      "new domain under a new e2LD",
			mutate:    func(b *Builder) { b.AddQuery("m1", "x.new.net") },
			wantExact: true,
			want:      []string{"a.one.com", "b.two.com", "x.new.net"},
		},
		{
			name:   "new domain under an already-queried e2LD",
			mutate: func(b *Builder) { b.AddQuery("m9", "d.three.com") },
			// m9 is new and queries only d.three.com; sibling c.three.com
			// is untouched (its e2LD was already queried).
			wantExact: true,
			want:      []string{"d.three.com"},
		},
		{
			name:   "first query of a resolution-only e2LD",
			mutate: func(b *Builder) { b.AddQuery("m1", "r1.shared.org") },
			// shared.org transitions to queried: both its domains become
			// dirty, plus everything m1 queries.
			wantExact: true,
			want:      []string{"a.one.com", "b.two.com", "r1.shared.org", "r2.shared.org"},
		},
		{
			name:      "new resolution on an existing domain",
			mutate:    func(b *Builder) { b.AddResolution("c.three.com", dnsutil.IPv4(0x0a0b0c0d)) },
			wantExact: true,
			want:      []string{"c.three.com"},
		},
		{
			name:      "resolution-only new domain",
			mutate:    func(b *Builder) { b.AddResolution("y.four.org", dnsutil.IPv4(0x04040404)) },
			wantExact: true,
			want:      []string{"y.four.org"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("test", 7, dnsutil.DefaultSuffixList())
			dirtyBase(b)
			if _, exact := b.Snapshot().DirtyDomainNames(); exact {
				t.Fatal("first snapshot must be inexact (no baseline to delta against)")
			}
			tc.mutate(b)
			g := b.Snapshot()
			got, exact := g.DirtyDomainNames()
			if exact != tc.wantExact {
				t.Fatalf("exact = %v, want %v", exact, tc.wantExact)
			}
			if got == nil {
				got = []string{}
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("dirty = %v, want %v", got, tc.want)
			}

			// The set resets: an idle follow-up snapshot reports nothing.
			if names, exact := b.Snapshot().DirtyDomainNames(); !exact || len(names) != 0 {
				t.Fatalf("idle snapshot after mutation: dirty = %v (exact=%v), want exact empty", names, exact)
			}
		})
	}
}

// TestDirtySetEpochRotation pins the rotation edge case: a new day means
// a new Builder, and its first snapshot must declare itself inexact so
// consumers drop every cached per-domain result from the previous epoch.
func TestDirtySetEpochRotation(t *testing.T) {
	day7 := NewBuilder("test", 7, dnsutil.DefaultSuffixList())
	dirtyBase(day7)
	day7.Snapshot()
	day7.AddQuery("m1", "x.new.net")
	if _, exact := day7.Snapshot().DirtyDomainNames(); !exact {
		t.Fatal("pre-rotation snapshot should be exact")
	}

	day8 := NewBuilder("test", 8, dnsutil.DefaultSuffixList())
	day8.AddQuery("m1", "a.one.com")
	g := day8.Snapshot()
	if names, exact := g.DirtyDomainNames(); exact || names != nil {
		t.Fatalf("first post-rotation snapshot: dirty = %v (exact=%v), want inexact nil", names, exact)
	}

	// MarkLabeled from the old epoch must not leak a label baseline into
	// the new builder (same name, different day).
	prev := day7.Snapshot()
	prev.ApplyLabels(LabelSources{AsOf: 7})
	day8.MarkLabeled(prev)
	day8.AddQuery("m2", "b.two.com")
	g2 := day8.Snapshot()
	if g2.labelBase != nil {
		t.Fatal("rotated builder accepted a label baseline from the previous day")
	}
}
