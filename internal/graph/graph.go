// Package graph implements Segugio's machine-domain bipartite behavior
// graph (paper Section II-A): nodes are ISP user machines and queried
// domain names; an edge connects a machine to a domain it queried during
// the observation window. Domain nodes carry annotations (resolved IPs,
// effective 2LD); both node kinds carry labels seeded from blacklists and
// whitelists. The package also implements the conservative pruning rules
// R1-R4 with the paper's two exceptions.
//
// The adjacency is stored in compressed sparse row (CSR) form in both
// directions, because feature measurement iterates machines-of-domain and
// labeling iterates domains-of-machine over graphs with millions of edges.
package graph

import (
	"segugio/internal/dnsutil"
)

// Label is the ground-truth state of a node. The zero value is
// LabelUnknown on purpose: a freshly observed node is unknown until a
// ground-truth source says otherwise.
type Label uint8

// Label values.
const (
	// LabelUnknown nodes are the classification targets.
	LabelUnknown Label = iota
	// LabelBenign marks whitelisted domains and machines that query only
	// whitelisted domains.
	LabelBenign
	// LabelMalware marks blacklisted C&C domains and machines that query
	// at least one of them.
	LabelMalware
)

// String renders the label for logs and reports.
func (l Label) String() string {
	switch l {
	case LabelBenign:
		return "benign"
	case LabelMalware:
		return "malware"
	default:
		return "unknown"
	}
}

// Graph is an immutable bipartite behavior graph for one observation day.
// Build one with a Builder, then call ApplyLabels and Prune.
type Graph struct {
	name string
	day  int

	machineIDs []string
	domains    []string
	domainE2LD []string
	domainIPs  [][]dnsutil.IPv4

	// CSR adjacency, machine -> domains and domain -> machines.
	mOff []int32
	mAdj []int32
	dOff []int32
	dAdj []int32

	domainLabel  []Label
	machineLabel []Label
	// Per-machine label-derivation counts, maintained by ApplyLabels:
	// how many of the machine's queried domains are labeled malware, and
	// how many are labeled anything other than benign. Feature measurement
	// uses them to re-derive machine labels with one domain's label hidden
	// in O(1) (paper Figure 5).
	cntMalware    []int32
	cntNonBenign  []int32
	domainIndex   map[string]int32
	machineIndex  map[string]int32
	labeledAsOf   int
	labelsApplied bool
}

// Name returns the network name the graph was observed in.
func (g *Graph) Name() string { return g.name }

// Day returns the observation day.
func (g *Graph) Day() int { return g.day }

// NumMachines reports the machine-node count.
func (g *Graph) NumMachines() int { return len(g.machineIDs) }

// NumDomains reports the domain-node count.
func (g *Graph) NumDomains() int { return len(g.domains) }

// NumEdges reports the edge count.
func (g *Graph) NumEdges() int { return len(g.mAdj) }

// MachineID returns the identifier of machine node m.
func (g *Graph) MachineID(m int32) string { return g.machineIDs[m] }

// DomainName returns the name of domain node d.
func (g *Graph) DomainName(d int32) string { return g.domains[d] }

// DomainE2LD returns the effective second-level domain of node d.
func (g *Graph) DomainE2LD(d int32) string { return g.domainE2LD[d] }

// DomainIPs returns the addresses node d resolved to during the
// observation window. The returned slice must not be modified.
func (g *Graph) DomainIPs(d int32) []dnsutil.IPv4 { return g.domainIPs[d] }

// DomainIndex returns the node index for a domain name.
func (g *Graph) DomainIndex(domain string) (int32, bool) {
	i, ok := g.domainIndex[domain]
	return i, ok
}

// MachineIndex returns the node index for a machine identifier.
func (g *Graph) MachineIndex(id string) (int32, bool) {
	i, ok := g.machineIndex[id]
	return i, ok
}

// DomainsOf returns the domain nodes queried by machine m. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) DomainsOf(m int32) []int32 { return g.mAdj[g.mOff[m]:g.mOff[m+1]] }

// MachinesOf returns the machine nodes that queried domain d. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) MachinesOf(d int32) []int32 { return g.dAdj[g.dOff[d]:g.dOff[d+1]] }

// MachineDegree returns how many distinct domains machine m queried.
func (g *Graph) MachineDegree(m int32) int { return int(g.mOff[m+1] - g.mOff[m]) }

// DomainDegree returns how many distinct machines queried domain d.
func (g *Graph) DomainDegree(d int32) int { return int(g.dOff[d+1] - g.dOff[d]) }

// DomainLabel returns the label of domain node d.
func (g *Graph) DomainLabel(d int32) Label { return g.domainLabel[d] }

// MachineLabel returns the label of machine node m.
func (g *Graph) MachineLabel(m int32) Label { return g.machineLabel[m] }

// MachineMalwareCount reports how many malware-labeled domains machine m
// queries.
func (g *Graph) MachineMalwareCount(m int32) int { return int(g.cntMalware[m]) }

// MachineNonBenignCount reports how many of machine m's queried domains
// are labeled anything other than benign.
func (g *Graph) MachineNonBenignCount(m int32) int { return int(g.cntNonBenign[m]) }

// LabeledAsOf returns the ground-truth cutoff day passed to ApplyLabels.
func (g *Graph) LabeledAsOf() int { return g.labeledAsOf }

// Labeled reports whether ApplyLabels has run.
func (g *Graph) Labeled() bool { return g.labelsApplied }
