// Package graph implements Segugio's machine-domain bipartite behavior
// graph (paper Section II-A): nodes are ISP user machines and queried
// domain names; an edge connects a machine to a domain it queried during
// the observation window. Domain nodes carry annotations (resolved IPs,
// effective 2LD); both node kinds carry labels seeded from blacklists and
// whitelists. The package also implements the conservative pruning rules
// R1-R4 with the paper's two exceptions.
//
// The adjacency is stored in compressed sparse row (CSR) form in both
// directions, because feature measurement iterates machines-of-domain and
// labeling iterates domains-of-machine over graphs with millions of edges.
// Incremental snapshots share the base CSR with their Builder and carry a
// per-node overlay for nodes whose edges changed since the last
// compaction; derived graphs (Prune, FilterProbers) are always plain CSR.
package graph

import (
	"segugio/internal/dnsutil"
)

// Label is the ground-truth state of a node. The zero value is
// LabelUnknown on purpose: a freshly observed node is unknown until a
// ground-truth source says otherwise.
type Label uint8

// Label values.
const (
	// LabelUnknown nodes are the classification targets.
	LabelUnknown Label = iota
	// LabelBenign marks whitelisted domains and machines that query only
	// whitelisted domains.
	LabelBenign
	// LabelMalware marks blacklisted C&C domains and machines that query
	// at least one of them.
	LabelMalware
)

// String renders the label for logs and reports.
func (l Label) String() string {
	switch l {
	case LabelBenign:
		return "benign"
	case LabelMalware:
		return "malware"
	default:
		return "unknown"
	}
}

// Delta describes which domains changed between two snapshot versions.
// When Exact is false the consumer must assume every domain changed
// (first snapshot of a window, an epoch rotation, or delta history that
// has been trimmed away).
type Delta struct {
	Exact   bool
	Domains []string
}

// Graph is an immutable bipartite behavior graph for one observation day.
// Build one with a Builder, then call ApplyLabels and Prune. A returned
// snapshot is immutable forever: the Builder only appends past the
// prefixes a snapshot can see.
type Graph struct {
	name string
	day  int

	machineIDs []string
	domains    []string
	domainE2LD []string
	domainIPs  [][]dnsutil.IPv4

	// Base CSR adjacency, machine -> domains and domain -> machines. For
	// incremental snapshots it covers the first csrNM machines / csrND
	// domains as of the Builder's last compaction; nodes touched since
	// carry their full adjacency in the overlay below.
	mOff []int32
	mAdj []int32
	dOff []int32
	dAdj []int32

	csrNM, csrND int
	// Overlay: ovM[m] / ovD[d] is -1 (read the base CSR row; nodes at or
	// past csrNM/csrND with -1 have no edges) or an index into
	// ovMAdj/ovDAdj holding the node's full adjacency. nil for plain-CSR
	// graphs (batch builds, pruned graphs).
	ovM, ovD       []int32
	ovMAdj, ovDAdj [][]int32
	numEdges       int

	// Labels are allocated lazily by ApplyLabels; unlabeled graphs report
	// LabelUnknown and zero counts.
	domainLabel  []Label
	machineLabel []Label
	// Per-machine label-derivation counts, maintained by ApplyLabels:
	// how many of the machine's queried domains are labeled malware, and
	// how many are labeled anything other than benign. Feature measurement
	// uses them to re-derive machine labels with one domain's label hidden
	// in O(1) (paper Figure 5).
	cntMalware   []int32
	cntNonBenign []int32

	// machineIndex/domainIndex are the Builder's published (frozen) intern
	// maps, shared across snapshots; machineExtra/domainExtra cover nodes
	// interned after the last publish.
	domainIndex  map[string]int32
	machineIndex map[string]int32
	domainExtra  map[string]int32
	machineExtra map[string]int32

	labeledAsOf   int
	labelsApplied bool
	labelSrc      LabelSources
	stats         LabelStats

	// Delta metadata stamped by Builder.snapshot.
	deltaExact         bool
	dirtyDomains       []int32
	labelBase          *Graph
	labelDirtyMachines []int32
	snapFreshPos       int
}

// Name returns the network name the graph was observed in.
func (g *Graph) Name() string { return g.name }

// Day returns the observation day.
func (g *Graph) Day() int { return g.day }

// NumMachines reports the machine-node count.
func (g *Graph) NumMachines() int { return len(g.machineIDs) }

// NumDomains reports the domain-node count.
func (g *Graph) NumDomains() int { return len(g.domains) }

// NumEdges reports the edge count.
func (g *Graph) NumEdges() int {
	if g.numEdges == 0 {
		return len(g.mAdj)
	}
	return g.numEdges
}

// MachineID returns the identifier of machine node m.
func (g *Graph) MachineID(m int32) string { return g.machineIDs[m] }

// DomainName returns the name of domain node d.
func (g *Graph) DomainName(d int32) string { return g.domains[d] }

// DomainE2LD returns the effective second-level domain of node d.
func (g *Graph) DomainE2LD(d int32) string { return g.domainE2LD[d] }

// DomainIPs returns the addresses node d resolved to during the
// observation window. The returned slice must not be modified.
func (g *Graph) DomainIPs(d int32) []dnsutil.IPv4 { return g.domainIPs[d] }

// DomainIndex returns the node index for a domain name.
func (g *Graph) DomainIndex(domain string) (int32, bool) {
	if i, ok := g.domainIndex[domain]; ok {
		return i, true
	}
	i, ok := g.domainExtra[domain]
	return i, ok
}

// MachineIndex returns the node index for a machine identifier.
func (g *Graph) MachineIndex(id string) (int32, bool) {
	if i, ok := g.machineIndex[id]; ok {
		return i, true
	}
	i, ok := g.machineExtra[id]
	return i, ok
}

// DomainsOf returns the domain nodes queried by machine m. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) DomainsOf(m int32) []int32 {
	if g.ovM != nil {
		if slot := g.ovM[m]; slot >= 0 {
			return g.ovMAdj[slot]
		}
		if int(m) >= g.csrNM {
			return nil
		}
	}
	return g.mAdj[g.mOff[m]:g.mOff[m+1]]
}

// MachinesOf returns the machine nodes that queried domain d. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) MachinesOf(d int32) []int32 {
	if g.ovD != nil {
		if slot := g.ovD[d]; slot >= 0 {
			return g.ovDAdj[slot]
		}
		if int(d) >= g.csrND {
			return nil
		}
	}
	return g.dAdj[g.dOff[d]:g.dOff[d+1]]
}

// MachineDegree returns how many distinct domains machine m queried.
func (g *Graph) MachineDegree(m int32) int { return len(g.DomainsOf(m)) }

// DomainDegree returns how many distinct machines queried domain d.
func (g *Graph) DomainDegree(d int32) int { return len(g.MachinesOf(d)) }

// DomainLabel returns the label of domain node d.
func (g *Graph) DomainLabel(d int32) Label {
	if g.domainLabel == nil {
		return LabelUnknown
	}
	return g.domainLabel[d]
}

// MachineLabel returns the label of machine node m.
func (g *Graph) MachineLabel(m int32) Label {
	if g.machineLabel == nil {
		return LabelUnknown
	}
	return g.machineLabel[m]
}

// MachineMalwareCount reports how many malware-labeled domains machine m
// queries.
func (g *Graph) MachineMalwareCount(m int32) int {
	if g.cntMalware == nil {
		return 0
	}
	return int(g.cntMalware[m])
}

// MachineNonBenignCount reports how many of machine m's queried domains
// are labeled anything other than benign.
func (g *Graph) MachineNonBenignCount(m int32) int {
	if g.cntNonBenign == nil {
		return 0
	}
	return int(g.cntNonBenign[m])
}

// LabeledAsOf returns the ground-truth cutoff day passed to ApplyLabels.
func (g *Graph) LabeledAsOf() int { return g.labeledAsOf }

// Labeled reports whether ApplyLabels has run.
func (g *Graph) Labeled() bool { return g.labelsApplied }

// DirtyDomains returns the domain nodes whose classification-relevant
// state (adjacency, labels, IP annotations, activity, or the labels of a
// querying machine) changed since the previous snapshot of the same
// Builder, and whether that set is exact. When exact is false — the first
// snapshot of a window, including the one after an epoch rotation — every
// domain must be treated as dirty. The returned slice is sorted and must
// not be modified.
func (g *Graph) DirtyDomains() ([]int32, bool) { return g.dirtyDomains, g.deltaExact }

// DirtyDomainNames is DirtyDomains resolved to domain names.
func (g *Graph) DirtyDomainNames() ([]string, bool) {
	if !g.deltaExact {
		return nil, false
	}
	names := make([]string, len(g.dirtyDomains))
	for i, d := range g.dirtyDomains {
		names[i] = g.domains[d]
	}
	return names, true
}
