package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"segugio/internal/dnsutil"
	"segugio/internal/intel"
)

// randomGraph builds a random labeled bipartite graph from a seed.
func randomGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	nm := 5 + rng.Intn(30)
	nd := 5 + rng.Intn(40)
	b := NewBuilder("Q", 1, dnsutil.DefaultSuffixList())
	for m := 0; m < nm; m++ {
		id := fmt.Sprintf("m%03d", m)
		edges := 1 + rng.Intn(8)
		for e := 0; e < edges; e++ {
			b.AddQuery(id, fmt.Sprintf("d%03d.com", rng.Intn(nd)))
		}
	}
	g := b.Build()
	bl := intel.NewBlacklist()
	wl := []string{}
	for d := 0; d < nd; d++ {
		switch rng.Intn(4) {
		case 0:
			bl.Add(intel.BlacklistEntry{Domain: fmt.Sprintf("d%03d.com", d)})
		case 1:
			wl = append(wl, fmt.Sprintf("d%03d.com", d))
		}
	}
	g.ApplyLabels(LabelSources{Blacklist: bl, Whitelist: intel.NewWhitelist(wl), AsOf: 1})
	return g
}

// TestGraphInvariants checks structural invariants on random graphs:
// adjacency symmetry, degree/edge accounting, and machine-label
// consistency with the labeling rules.
func TestGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)

		// Degree sums equal the edge count on both sides.
		sumM, sumD := 0, 0
		for m := int32(0); m < int32(g.NumMachines()); m++ {
			sumM += g.MachineDegree(m)
		}
		for d := int32(0); d < int32(g.NumDomains()); d++ {
			sumD += g.DomainDegree(d)
		}
		if sumM != g.NumEdges() || sumD != g.NumEdges() {
			return false
		}

		// Machine labels follow from the counts, and the counts follow
		// from the domain labels.
		for m := int32(0); m < int32(g.NumMachines()); m++ {
			mal, nonBenign := 0, 0
			for _, d := range g.DomainsOf(m) {
				switch g.DomainLabel(d) {
				case LabelMalware:
					mal++
					nonBenign++
				case LabelUnknown:
					nonBenign++
				}
			}
			if mal != g.MachineMalwareCount(m) || nonBenign != g.MachineNonBenignCount(m) {
				return false
			}
			want := LabelUnknown
			switch {
			case mal > 0:
				want = LabelMalware
			case nonBenign == 0:
				want = LabelBenign
			}
			if g.MachineLabel(m) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPruneInvariants checks that pruned graphs respect the rules they
// were pruned with, for random inputs.
func TestPruneInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		cfg := PruneConfig{
			MaxInactiveDegree:      2,
			ProxyPercentile:        99.99,
			MinDomainMachines:      2,
			MaxE2LDMachineFraction: 0.9,
		}
		pruned, stats, err := Prune(g, cfg)
		if err != nil {
			return false
		}
		if stats.MachinesAfter != pruned.NumMachines() ||
			stats.DomainsAfter != pruned.NumDomains() ||
			stats.EdgesAfter != pruned.NumEdges() {
			return false
		}
		// Every surviving non-malware domain has >= MinDomainMachines
		// queriers (R3 ran against surviving machines).
		for d := int32(0); d < int32(pruned.NumDomains()); d++ {
			if pruned.DomainLabel(d) != LabelMalware &&
				pruned.DomainDegree(d) < cfg.MinDomainMachines {
				return false
			}
		}
		// Every surviving machine either was malware-labeled (the R1
		// exception) or had degree above R1's threshold in the ORIGINAL
		// graph.
		for m := int32(0); m < int32(pruned.NumMachines()); m++ {
			orig, ok := g.MachineIndex(pruned.MachineID(m))
			if !ok {
				return false
			}
			if g.MachineLabel(orig) != LabelMalware &&
				g.MachineDegree(orig) <= cfg.MaxInactiveDegree {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
