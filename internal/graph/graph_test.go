package graph

import (
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/intel"
)

// buildTestGraph assembles the paper's Figure 1-style example:
//
//	M_A -> d1(benign), d2(benign)
//	M_B -> d2(benign), d3(unknown), mal1(malware)
//	M_C -> d3(unknown), mal1(malware), mal2(malware)
//	M_D -> d3(unknown), d4(unknown)
func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("TEST", 100, dnsutil.DefaultSuffixList())
	add := func(m string, ds ...string) {
		for _, d := range ds {
			b.AddQuery(m, d)
		}
	}
	add("MA", "www.d1.com", "www.d2.com")
	add("MB", "www.d2.com", "d3.net", "c2.mal1.com")
	add("MC", "d3.net", "c2.mal1.com", "c2.mal2.com")
	add("MD", "d3.net", "d4.org")
	b.SetDomainIPs("c2.mal1.com", []dnsutil.IPv4{dnsutil.MakeIPv4(6, 6, 6, 6)})
	return b.Build()
}

func labelTestGraph(t *testing.T, g *Graph, hidden map[string]struct{}) LabelStats {
	t.Helper()
	bl := intel.NewBlacklist()
	bl.Add(intel.BlacklistEntry{Domain: "c2.mal1.com", FirstListed: 0})
	bl.Add(intel.BlacklistEntry{Domain: "c2.mal2.com", FirstListed: 0})
	wl := intel.NewWhitelist([]string{"d1.com", "d2.com"})
	return g.ApplyLabels(LabelSources{Blacklist: bl, Whitelist: wl, AsOf: 100, Hidden: hidden})
}

func TestBuilderDedupAndAdjacency(t *testing.T) {
	b := NewBuilder("T", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m1", "a.com")
	b.AddQuery("m1", "a.com") // duplicate
	b.AddQuery("m1", "b.com")
	b.AddQuery("m2", "a.com")
	g := b.Build()

	if g.NumMachines() != 2 || g.NumDomains() != 2 {
		t.Fatalf("nodes = (%d, %d), want (2, 2)", g.NumMachines(), g.NumDomains())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3 (deduplicated)", g.NumEdges())
	}
	m1, _ := g.MachineIndex("m1")
	if g.MachineDegree(m1) != 2 {
		t.Fatalf("m1 degree = %d, want 2", g.MachineDegree(m1))
	}
	a, _ := g.DomainIndex("a.com")
	if g.DomainDegree(a) != 2 {
		t.Fatalf("a.com degree = %d, want 2", g.DomainDegree(a))
	}
	// Adjacency is mutually consistent.
	for m := int32(0); m < int32(g.NumMachines()); m++ {
		for _, d := range g.DomainsOf(m) {
			found := false
			for _, mm := range g.MachinesOf(d) {
				if mm == m {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d, %d) missing from domain-side adjacency", m, d)
			}
		}
	}
}

func TestBuilderMergesIPs(t *testing.T) {
	b := NewBuilder("T", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m1", "a.com")
	b.SetDomainIPs("a.com", []dnsutil.IPv4{1, 2})
	b.SetDomainIPs("a.com", []dnsutil.IPv4{2, 3})
	g := b.Build()
	a, _ := g.DomainIndex("a.com")
	if got := g.DomainIPs(a); len(got) != 3 {
		t.Fatalf("IPs = %v, want 3 distinct", got)
	}
}

func TestBuilderE2LDAnnotation(t *testing.T) {
	b := NewBuilder("T", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m1", "a.b.example.co.uk")
	g := b.Build()
	d, _ := g.DomainIndex("a.b.example.co.uk")
	if got := g.DomainE2LD(d); got != "example.co.uk" {
		t.Fatalf("e2LD = %q, want example.co.uk", got)
	}
}

func TestApplyLabels(t *testing.T) {
	g := buildTestGraph(t)
	stats := labelTestGraph(t, g, nil)

	if stats.MalwareDomains != 2 || stats.BenignDomains != 2 || stats.UnknownDomains != 2 {
		t.Fatalf("domain stats = %+v", stats)
	}

	wantDomain := map[string]Label{
		"www.d1.com":  LabelBenign,
		"www.d2.com":  LabelBenign,
		"d3.net":      LabelUnknown,
		"d4.org":      LabelUnknown,
		"c2.mal1.com": LabelMalware,
		"c2.mal2.com": LabelMalware,
	}
	for name, want := range wantDomain {
		d, ok := g.DomainIndex(name)
		if !ok {
			t.Fatalf("domain %s missing", name)
		}
		if got := g.DomainLabel(d); got != want {
			t.Errorf("label(%s) = %v, want %v", name, got, want)
		}
	}

	wantMachine := map[string]Label{
		"MA": LabelBenign,  // queries only benign
		"MB": LabelMalware, // queries c2.mal1.com
		"MC": LabelMalware,
		"MD": LabelUnknown, // queries only unknown
	}
	for id, want := range wantMachine {
		m, _ := g.MachineIndex(id)
		if got := g.MachineLabel(m); got != want {
			t.Errorf("machine %s = %v, want %v", id, got, want)
		}
	}

	mb, _ := g.MachineIndex("MB")
	if g.MachineMalwareCount(mb) != 1 {
		t.Errorf("MB malware count = %d, want 1", g.MachineMalwareCount(mb))
	}
	if g.MachineNonBenignCount(mb) != 2 { // d3.net + c2.mal1.com
		t.Errorf("MB non-benign count = %d, want 2", g.MachineNonBenignCount(mb))
	}
}

func TestApplyLabelsAsOfCutoff(t *testing.T) {
	b := NewBuilder("T", 50, dnsutil.DefaultSuffixList())
	b.AddQuery("m1", "late.evil.com")
	g := b.Build()
	bl := intel.NewBlacklist()
	bl.Add(intel.BlacklistEntry{Domain: "late.evil.com", FirstListed: 60})
	g.ApplyLabels(LabelSources{Blacklist: bl, AsOf: 50})
	d, _ := g.DomainIndex("late.evil.com")
	if g.DomainLabel(d) != LabelUnknown {
		t.Fatal("domain listed after AsOf must stay unknown")
	}
	g.ApplyLabels(LabelSources{Blacklist: bl, AsOf: 60})
	if g.DomainLabel(d) != LabelMalware {
		t.Fatal("domain listed at AsOf must be malware")
	}
}

func TestApplyLabelsHidden(t *testing.T) {
	g := buildTestGraph(t)
	hidden := map[string]struct{}{"c2.mal1.com": {}}
	stats := labelTestGraph(t, g, hidden)
	if stats.HiddenDomains != 1 {
		t.Fatalf("hidden = %d, want 1", stats.HiddenDomains)
	}
	d, _ := g.DomainIndex("c2.mal1.com")
	if g.DomainLabel(d) != LabelUnknown {
		t.Fatal("hidden domain must stay unknown")
	}
	// MB queried only c2.mal1.com among malware domains: with it hidden,
	// MB must be unknown (Figure 5's machine M1). MC still queries
	// c2.mal2.com and keeps its malware label.
	mb, _ := g.MachineIndex("MB")
	if got := g.MachineLabel(mb); got != LabelUnknown {
		t.Fatalf("MB = %v, want unknown", got)
	}
	mc, _ := g.MachineIndex("MC")
	if got := g.MachineLabel(mc); got != LabelMalware {
		t.Fatalf("MC = %v, want malware", got)
	}
}

func TestMachineLabelHiding(t *testing.T) {
	g := buildTestGraph(t)
	labelTestGraph(t, g, nil)

	mal1, _ := g.DomainIndex("c2.mal1.com")
	mb, _ := g.MachineIndex("MB")
	mc, _ := g.MachineIndex("MC")
	// Hiding mal1: MB loses its only malware evidence -> unknown; MC keeps
	// mal2 -> malware.
	if got := g.MachineLabelHiding(mb, mal1); got != LabelUnknown {
		t.Errorf("MB hiding mal1 = %v, want unknown", got)
	}
	if got := g.MachineLabelHiding(mc, mal1); got != LabelMalware {
		t.Errorf("MC hiding mal1 = %v, want malware", got)
	}

	// Hiding a benign domain: MA queried only benign; ignoring d2, all
	// remaining (d1) are benign -> stays benign.
	d2, _ := g.DomainIndex("www.d2.com")
	ma, _ := g.MachineIndex("MA")
	if got := g.MachineLabelHiding(ma, d2); got != LabelBenign {
		t.Errorf("MA hiding d2 = %v, want benign", got)
	}

	// Hiding an unknown domain: MD queries d3 (unknown) and d4 (unknown).
	// Ignoring d3, d4 is still unknown -> MD unknown.
	d3, _ := g.DomainIndex("d3.net")
	md, _ := g.MachineIndex("MD")
	if got := g.MachineLabelHiding(md, d3); got != LabelUnknown {
		t.Errorf("MD hiding d3 = %v, want unknown", got)
	}
}

func TestDomainsWithLabel(t *testing.T) {
	g := buildTestGraph(t)
	labelTestGraph(t, g, nil)
	if got := len(g.DomainsWithLabel(LabelMalware)); got != 2 {
		t.Fatalf("malware domains = %d, want 2", got)
	}
	if got := len(g.DomainsWithLabel(LabelBenign)); got != 2 {
		t.Fatalf("benign domains = %d, want 2", got)
	}
	if got := len(g.DomainsWithLabel(LabelUnknown)); got != 2 {
		t.Fatalf("unknown domains = %d, want 2", got)
	}
}

func TestLabelString(t *testing.T) {
	if LabelUnknown.String() != "unknown" || LabelBenign.String() != "benign" || LabelMalware.String() != "malware" {
		t.Fatal("Label.String mismatch")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := buildTestGraph(t)
	if g.Name() != "TEST" || g.Day() != 100 {
		t.Fatalf("Name/Day = %q/%d", g.Name(), g.Day())
	}
	if g.Labeled() {
		t.Fatal("graph must not report labeled before ApplyLabels")
	}
	labelTestGraph(t, g, nil)
	if !g.Labeled() || g.LabeledAsOf() != 100 {
		t.Fatal("graph must report labeled after ApplyLabels")
	}
	if _, ok := g.DomainIndex("absent.com"); ok {
		t.Fatal("absent domain must not resolve")
	}
	if _, ok := g.MachineIndex("absent"); ok {
		t.Fatal("absent machine must not resolve")
	}
}
