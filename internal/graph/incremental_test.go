package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"segugio/internal/dnsutil"
)

// graphsEqual compares the name-keyed structure of two graphs: the same
// machines, domains, annotations, and edges, independent of the node
// numbering (which legitimately depends on observation order).
func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumMachines() != b.NumMachines() || a.NumDomains() != b.NumDomains() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: (%d,%d,%d) vs (%d,%d,%d)",
			a.NumMachines(), a.NumDomains(), a.NumEdges(),
			b.NumMachines(), b.NumDomains(), b.NumEdges())
	}
	adjOf := func(g *Graph, m int32) []string {
		var out []string
		for _, d := range g.DomainsOf(m) {
			out = append(out, g.DomainName(d))
		}
		sort.Strings(out)
		return out
	}
	ipsOf := func(g *Graph, d int32) []string {
		var out []string
		for _, ip := range g.DomainIPs(d) {
			out = append(out, ip.String())
		}
		sort.Strings(out)
		return out
	}
	for m := int32(0); int(m) < a.NumMachines(); m++ {
		bm, ok := b.MachineIndex(a.MachineID(m))
		if !ok {
			t.Fatalf("machine %q missing from second graph", a.MachineID(m))
		}
		aa, ba := adjOf(a, m), adjOf(b, bm)
		if !reflect.DeepEqual(aa, ba) {
			t.Fatalf("machine %q adjacency differs:\n  %v\n  %v", a.MachineID(m), aa, ba)
		}
	}
	for d := int32(0); int(d) < a.NumDomains(); d++ {
		bd, ok := b.DomainIndex(a.DomainName(d))
		if !ok {
			t.Fatalf("domain %q missing from second graph", a.DomainName(d))
		}
		if a.DomainE2LD(d) != b.DomainE2LD(bd) {
			t.Fatalf("domain %q e2LD: %q vs %q", a.DomainName(d), a.DomainE2LD(d), b.DomainE2LD(bd))
		}
		if !reflect.DeepEqual(ipsOf(a, d), ipsOf(b, bd)) {
			t.Fatalf("domain %q ips differ: %v vs %v", a.DomainName(d), ipsOf(a, d), ipsOf(b, bd))
		}
		if a.DomainDegree(d) != b.DomainDegree(bd) {
			t.Fatalf("domain %q degree: %d vs %d", a.DomainName(d), a.DomainDegree(d), b.DomainDegree(bd))
		}
	}
}

// TestIncrementalEquivalence checks that the streaming append path
// (interleaved AddQuery/AddResolution with intermediate snapshots) ends at
// a graph identical to the one-shot batch construction over the same
// observations — the acceptance criterion for segugiod's in-place updates.
func TestIncrementalEquivalence(t *testing.T) {
	sl := dnsutil.DefaultSuffixList()
	rng := rand.New(rand.NewSource(9))

	type query struct{ machine, domain string }
	var queries []query
	var resolutions []struct {
		domain string
		ip     dnsutil.IPv4
	}
	for i := 0; i < 4000; i++ {
		q := query{
			machine: fmt.Sprintf("m%03d", rng.Intn(80)),
			domain:  fmt.Sprintf("host%d.zone%d.com", rng.Intn(60), rng.Intn(25)),
		}
		queries = append(queries, q)
		if rng.Intn(3) == 0 {
			resolutions = append(resolutions, struct {
				domain string
				ip     dnsutil.IPv4
			}{q.domain, dnsutil.MakeIPv4(10, byte(rng.Intn(4)), byte(rng.Intn(8)), byte(rng.Intn(50)))})
		}
	}

	batch := NewBuilder("net", 7, sl)
	for _, q := range queries {
		batch.AddQuery(q.machine, q.domain)
	}
	byDomain := map[string][]dnsutil.IPv4{}
	for _, r := range resolutions {
		byDomain[r.domain] = append(byDomain[r.domain], r.ip)
	}
	for d, ips := range byDomain {
		batch.SetDomainIPs(d, ips)
	}
	want := batch.Build()

	// Streaming: same observations one at a time, with snapshots taken
	// mid-stream (they must not perturb the final result).
	inc := NewBuilder("net", 7, sl)
	ri := 0
	var mid *Graph
	for i, q := range queries {
		inc.AddQuery(q.machine, q.domain)
		for ri < len(resolutions) && ri*3 <= i {
			inc.AddResolution(resolutions[ri].domain, resolutions[ri].ip)
			ri++
		}
		if i == len(queries)/2 {
			mid = inc.Snapshot()
		}
	}
	for ; ri < len(resolutions); ri++ {
		inc.AddResolution(resolutions[ri].domain, resolutions[ri].ip)
	}
	got := inc.Snapshot()
	graphsEqual(t, want, got)

	// The mid-stream snapshot must be immune to the appends that followed.
	if mid.NumEdges() >= got.NumEdges() {
		t.Fatalf("mid snapshot has %d edges, final %d", mid.NumEdges(), got.NumEdges())
	}
	midAgainIdx, ok := mid.DomainIndex(queries[0].domain)
	if !ok {
		t.Fatalf("mid snapshot lost %q", queries[0].domain)
	}
	if mid.DomainName(midAgainIdx) != queries[0].domain {
		t.Fatal("mid snapshot index corrupt")
	}

	// Labels behave the same on snapshots as on batch-built graphs.
	want.ApplyLabels(LabelSources{AsOf: 7})
	got.ApplyLabels(LabelSources{AsOf: 7})
	for m := int32(0); int(m) < want.NumMachines(); m++ {
		gm, _ := got.MachineIndex(want.MachineID(m))
		if want.MachineLabel(m) != got.MachineLabel(gm) {
			t.Fatalf("machine %q label differs", want.MachineID(m))
		}
	}
}

// TestSnapshotIsolation verifies a snapshot can be read while the Builder
// keeps growing (run under -race to make the guarantee meaningful).
func TestSnapshotIsolation(t *testing.T) {
	sl := dnsutil.DefaultSuffixList()
	b := NewBuilder("net", 1, sl)
	for i := 0; i < 500; i++ {
		b.AddQuery(fmt.Sprintf("m%d", i%20), fmt.Sprintf("d%d.example.com", i%50))
		b.AddResolution(fmt.Sprintf("d%d.example.com", i%50), dnsutil.MakeIPv4(10, 0, 0, byte(i%200)))
	}
	snap := b.Snapshot()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			b.AddQuery(fmt.Sprintf("x%d", i), fmt.Sprintf("new%d.example.org", i))
			b.AddResolution(fmt.Sprintf("new%d.example.org", i), dnsutil.MakeIPv4(10, 1, 0, byte(i%200)))
		}
	}()
	total := 0
	for k := 0; k < 50; k++ {
		for d := int32(0); int(d) < snap.NumDomains(); d++ {
			total += len(snap.MachinesOf(d)) + len(snap.DomainIPs(d))
			if _, ok := snap.DomainIndex(snap.DomainName(d)); !ok {
				t.Error("snapshot index lookup failed")
			}
		}
	}
	<-done
	if total == 0 {
		t.Fatal("snapshot unexpectedly empty")
	}
	if snap.NumMachines() != 20 || snap.NumDomains() != 50 {
		t.Fatalf("snapshot grew: %d machines, %d domains", snap.NumMachines(), snap.NumDomains())
	}
}
