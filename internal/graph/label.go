package graph

import (
	"segugio/internal/intel"
)

// LabelSources carries the ground truth used to seed node labels (paper
// Section II-A1).
type LabelSources struct {
	// Blacklist supplies known malware-control domains; the full domain
	// string is matched.
	Blacklist *intel.Blacklist
	// Whitelist supplies trusted e2LDs; a domain is benign when its
	// effective 2LD is whitelisted.
	Whitelist *intel.Whitelist
	// AsOf restricts blacklist knowledge to entries listed on or before
	// this day, so experiments never leak future ground truth.
	AsOf int
	// Hidden lists domains whose ground-truth label must be withheld:
	// they stay LabelUnknown and machine labels are derived as if their
	// nature were unknown. The train/test protocol hides the test set this
	// way (paper Section IV-A).
	Hidden map[string]struct{}
}

// LabelStats summarizes the labeling outcome.
type LabelStats struct {
	MalwareDomains int
	BenignDomains  int
	UnknownDomains int
	MalwareMachine int
	BenignMachine  int
	UnknownMachine int
	HiddenDomains  int
}

// ApplyLabels assigns domain labels from the ground-truth sources and
// derives machine labels: a machine is malware when it queries at least
// one malware-labeled domain, benign when every queried domain is
// benign-labeled, unknown otherwise. It may be called again to relabel
// (e.g. with a different Hidden set).
//
// On a streaming snapshot whose Builder was told (via MarkLabeled) that
// an earlier snapshot is labeled with the same sources, labels are
// relabeled incrementally: prior label state is copied and only domains
// interned since and machines with fresh edges are recomputed.
func (g *Graph) ApplyLabels(src LabelSources) LabelStats {
	base := g.labelBase
	g.labelBase = nil
	if base != nil && g.canRelabelIncrementally(base, src) {
		g.relabelDelta(base, src)
	} else {
		g.relabelFull(src)
	}
	g.labeledAsOf = src.AsOf
	g.labelsApplied = true
	g.labelSrc = src
	return g.stats
}

// canRelabelIncrementally reports whether base's labels are reusable as a
// starting point: same source objects and cutoff, no hidden sets (the
// hidden set is experiment machinery, not a daemon path), same day.
func (g *Graph) canRelabelIncrementally(base *Graph, src LabelSources) bool {
	return base.labelsApplied &&
		base.day == g.day &&
		src.Hidden == nil && base.labelSrc.Hidden == nil &&
		src.Blacklist == base.labelSrc.Blacklist &&
		src.Whitelist == base.labelSrc.Whitelist &&
		src.AsOf == base.labelSrc.AsOf
}

func (g *Graph) labelFor(d int, src LabelSources, stats *LabelStats) Label {
	label := LabelUnknown
	if _, hidden := src.Hidden[g.domains[d]]; hidden {
		stats.HiddenDomains++
	} else if src.Blacklist != nil && src.Blacklist.Contains(g.domains[d], src.AsOf) {
		label = LabelMalware
	} else if src.Whitelist != nil && src.Whitelist.ContainsE2LD(g.domainE2LD[d]) {
		label = LabelBenign
	}
	switch label {
	case LabelMalware:
		stats.MalwareDomains++
	case LabelBenign:
		stats.BenignDomains++
	default:
		stats.UnknownDomains++
	}
	return label
}

func (g *Graph) relabelFull(src LabelSources) {
	nd, nm := len(g.domains), len(g.machineIDs)
	if len(g.domainLabel) != nd {
		g.domainLabel = make([]Label, nd)
	}
	if len(g.machineLabel) != nm {
		g.machineLabel = make([]Label, nm)
		g.cntMalware = make([]int32, nm)
		g.cntNonBenign = make([]int32, nm)
	}
	var stats LabelStats
	for d := range g.domains {
		g.domainLabel[d] = g.labelFor(d, src, &stats)
	}
	g.recomputeMachineLabels()
	for m := range g.machineIDs {
		switch g.machineLabel[m] {
		case LabelMalware:
			stats.MalwareMachine++
		case LabelBenign:
			stats.BenignMachine++
		default:
			stats.UnknownMachine++
		}
	}
	g.stats = stats
}

// relabelDelta copies base's label state and recomputes only the domains
// interned since base and the machines the Builder recorded as dirty
// (fresh edges or newly interned). LabelStats are carried forward and
// adjusted for exactly the recomputed nodes.
func (g *Graph) relabelDelta(base *Graph, src LabelSources) {
	nd, nm := len(g.domains), len(g.machineIDs)
	baseND, baseNM := len(base.domains), len(base.machineIDs)
	stats := base.stats

	dl := make([]Label, nd)
	copy(dl, base.domainLabel)
	ml := make([]Label, nm)
	copy(ml, base.machineLabel)
	cm := make([]int32, nm)
	copy(cm, base.cntMalware)
	cnb := make([]int32, nm)
	copy(cnb, base.cntNonBenign)
	g.domainLabel, g.machineLabel, g.cntMalware, g.cntNonBenign = dl, ml, cm, cnb

	for d := baseND; d < nd; d++ {
		dl[d] = g.labelFor(d, src, &stats)
	}

	for _, m := range g.labelDirtyMachines {
		old := LabelUnknown
		counted := int(m) < baseNM
		if counted {
			old = base.machineLabel[m]
		}
		var mal, nonBenign int32
		adj := g.DomainsOf(m)
		for _, d := range adj {
			switch dl[d] {
			case LabelMalware:
				mal++
				nonBenign++
			case LabelUnknown:
				nonBenign++
			}
		}
		cm[m], cnb[m] = mal, nonBenign
		label := LabelUnknown
		switch {
		case mal > 0:
			label = LabelMalware
		case nonBenign == 0 && len(adj) > 0:
			label = LabelBenign
		}
		ml[m] = label
		if counted {
			switch old {
			case LabelMalware:
				stats.MalwareMachine--
			case LabelBenign:
				stats.BenignMachine--
			default:
				stats.UnknownMachine--
			}
		}
		switch label {
		case LabelMalware:
			stats.MalwareMachine++
		case LabelBenign:
			stats.BenignMachine++
		default:
			stats.UnknownMachine++
		}
	}
	g.stats = stats
}

// recomputeMachineLabels rebuilds the per-machine counts and labels from
// the current domain labels. Machines are independent, so the scan is
// sharded across workers.
func (g *Graph) recomputeMachineLabels() {
	parallelFor(len(g.machineIDs), func(lo, hi int) {
		for m := lo; m < hi; m++ {
			var mal, nonBenign int32
			for _, d := range g.DomainsOf(int32(m)) {
				switch g.domainLabel[d] {
				case LabelMalware:
					mal++
					nonBenign++
				case LabelUnknown:
					nonBenign++
				}
			}
			g.cntMalware[m] = mal
			g.cntNonBenign[m] = nonBenign
			switch {
			case mal > 0:
				g.machineLabel[m] = LabelMalware
			case nonBenign == 0 && g.MachineDegree(int32(m)) > 0:
				g.machineLabel[m] = LabelBenign
			default:
				g.machineLabel[m] = LabelUnknown
			}
		}
	})
}

// MachineLabelHiding returns machine m's label as derived when domain d's
// label is withheld — the per-domain "hiding" step of training-set
// preparation (paper Figure 5). m must be a machine that queries d.
//
//   - malware: m queries a malware-labeled domain other than d;
//   - benign: every queried domain except d is benign-labeled;
//   - unknown: otherwise.
func (g *Graph) MachineLabelHiding(m, d int32) Label {
	mal := g.cntMalware[m]
	nonBenign := g.cntNonBenign[m]
	switch g.domainLabel[d] {
	case LabelMalware:
		mal--
		nonBenign--
	case LabelUnknown:
		nonBenign--
	}
	switch {
	case mal > 0:
		return LabelMalware
	case nonBenign == 0:
		return LabelBenign
	default:
		return LabelUnknown
	}
}

// DomainsWithLabel returns the indexes of domains carrying the label.
// A counting pass pre-sizes the result so million-domain graphs pay one
// allocation instead of log-many reallocations.
func (g *Graph) DomainsWithLabel(l Label) []int32 {
	n := 0
	for d := range g.domains {
		if g.DomainLabel(int32(d)) == l {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]int32, 0, n)
	for d := range g.domains {
		if g.DomainLabel(int32(d)) == l {
			out = append(out, int32(d))
		}
	}
	return out
}
