package graph

import (
	"segugio/internal/intel"
)

// LabelSources carries the ground truth used to seed node labels (paper
// Section II-A1).
type LabelSources struct {
	// Blacklist supplies known malware-control domains; the full domain
	// string is matched.
	Blacklist *intel.Blacklist
	// Whitelist supplies trusted e2LDs; a domain is benign when its
	// effective 2LD is whitelisted.
	Whitelist *intel.Whitelist
	// AsOf restricts blacklist knowledge to entries listed on or before
	// this day, so experiments never leak future ground truth.
	AsOf int
	// Hidden lists domains whose ground-truth label must be withheld:
	// they stay LabelUnknown and machine labels are derived as if their
	// nature were unknown. The train/test protocol hides the test set this
	// way (paper Section IV-A).
	Hidden map[string]struct{}
}

// LabelStats summarizes the labeling outcome.
type LabelStats struct {
	MalwareDomains int
	BenignDomains  int
	UnknownDomains int
	MalwareMachine int
	BenignMachine  int
	UnknownMachine int
	HiddenDomains  int
}

// ApplyLabels assigns domain labels from the ground-truth sources and
// derives machine labels: a machine is malware when it queries at least
// one malware-labeled domain, benign when every queried domain is
// benign-labeled, unknown otherwise. It may be called again to relabel
// (e.g. with a different Hidden set).
func (g *Graph) ApplyLabels(src LabelSources) LabelStats {
	var stats LabelStats
	for d := range g.domains {
		label := LabelUnknown
		if _, hidden := src.Hidden[g.domains[d]]; hidden {
			stats.HiddenDomains++
		} else if src.Blacklist != nil && src.Blacklist.Contains(g.domains[d], src.AsOf) {
			label = LabelMalware
		} else if src.Whitelist != nil && src.Whitelist.ContainsE2LD(g.domainE2LD[d]) {
			label = LabelBenign
		}
		g.domainLabel[d] = label
		switch label {
		case LabelMalware:
			stats.MalwareDomains++
		case LabelBenign:
			stats.BenignDomains++
		default:
			stats.UnknownDomains++
		}
	}
	g.recomputeMachineLabels()
	for m := range g.machineIDs {
		switch g.machineLabel[m] {
		case LabelMalware:
			stats.MalwareMachine++
		case LabelBenign:
			stats.BenignMachine++
		default:
			stats.UnknownMachine++
		}
	}
	g.labeledAsOf = src.AsOf
	g.labelsApplied = true
	return stats
}

// recomputeMachineLabels rebuilds the per-machine counts and labels from
// the current domain labels.
func (g *Graph) recomputeMachineLabels() {
	for m := range g.machineIDs {
		var mal, nonBenign int32
		for _, d := range g.DomainsOf(int32(m)) {
			switch g.domainLabel[d] {
			case LabelMalware:
				mal++
				nonBenign++
			case LabelUnknown:
				nonBenign++
			}
		}
		g.cntMalware[m] = mal
		g.cntNonBenign[m] = nonBenign
		switch {
		case mal > 0:
			g.machineLabel[m] = LabelMalware
		case nonBenign == 0 && g.MachineDegree(int32(m)) > 0:
			g.machineLabel[m] = LabelBenign
		default:
			g.machineLabel[m] = LabelUnknown
		}
	}
}

// MachineLabelHiding returns machine m's label as derived when domain d's
// label is withheld — the per-domain "hiding" step of training-set
// preparation (paper Figure 5). m must be a machine that queries d.
//
//   - malware: m queries a malware-labeled domain other than d;
//   - benign: every queried domain except d is benign-labeled;
//   - unknown: otherwise.
func (g *Graph) MachineLabelHiding(m, d int32) Label {
	mal := g.cntMalware[m]
	nonBenign := g.cntNonBenign[m]
	switch g.domainLabel[d] {
	case LabelMalware:
		mal--
		nonBenign--
	case LabelUnknown:
		nonBenign--
	}
	switch {
	case mal > 0:
		return LabelMalware
	case nonBenign == 0:
		return LabelBenign
	default:
		return LabelUnknown
	}
}

// DomainsWithLabel returns the indexes of domains carrying the label.
func (g *Graph) DomainsWithLabel(l Label) []int32 {
	var out []int32
	for d := range g.domains {
		if g.domainLabel[d] == l {
			out = append(out, int32(d))
		}
	}
	return out
}
