package graph

import (
	"runtime"
	"sync"
)

// minShard keeps tiny inputs on one goroutine: below this size the
// spawn/join overhead dwarfs the scan itself.
const minShard = 2048

// maxWorkers returns how many workers a scan over n items should use.
func maxWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if w := (n + minShard - 1) / minShard; w < workers {
		workers = w
	}
	return workers
}

// parallelFor runs fn(lo, hi) over disjoint contiguous shards of [0, n)
// across up to GOMAXPROCS workers, so workers touch disjoint cache lines
// of the output arrays they fill. With one worker (or small n) the loop
// runs inline, keeping small graphs allocation-free.
func parallelFor(n int, fn func(lo, hi int)) {
	workers := maxWorkers(n)
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// shardCount mirrors parallelShards' shard arithmetic so callers can
// pre-size per-shard result slices.
func shardCount(n int) int {
	workers := maxWorkers(n)
	if workers <= 1 {
		if n == 0 {
			return 0
		}
		return 1
	}
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}

// parallelShards is parallelFor with the shard index exposed, for scans
// that accumulate per-shard partial results.
func parallelShards(n int, fn func(shard, lo, hi int)) {
	workers := maxWorkers(n)
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	shard := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(shard, lo, hi)
		shard++
	}
	wg.Wait()
}

// shardedInt32s runs fn over shards, each appending to its own output
// slice, and returns the per-shard slices in shard order so the caller
// can concatenate deterministically.
func shardedInt32s(n int, fn func(lo, hi int, out *[]int32)) [][]int32 {
	out := make([][]int32, shardCount(n))
	parallelShards(n, func(shard, lo, hi int) {
		fn(lo, hi, &out[shard])
	})
	return out
}
