package graph

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"segugio/internal/dnsutil"
)

// Graph snapshot persistence: segugiod checkpoints its live behavior
// graph so an unclean death does not forget the day's machine-domain
// observations. Only the observation data (nodes, edges, resolved IPs)
// is serialized — labels are re-derived from the ground-truth sources on
// load, and e2LD annotations are recomputed from the suffix list, so a
// checkpoint can never pin stale intelligence.

// SnapshotFormatVersion is the current on-disk snapshot format. Files
// written by other versions are rejected with ErrSnapshotVersion.
const SnapshotFormatVersion = 1

// ErrSnapshotVersion marks a snapshot written by an incompatible format
// version.
var ErrSnapshotVersion = errors.New("graph: incompatible snapshot format version")

type snapshotWire struct {
	Version  int
	Name     string
	Day      int
	Machines []string
	Domains  []string
	// IPDomain/IPAddr are parallel: domain index -> one resolved address.
	IPDomain []int32
	IPAddr   []dnsutil.IPv4
	// EdgeOff/EdgeAdj are the machine-side CSR adjacency.
	EdgeOff []int32
	EdgeAdj []int32
}

// EncodeSnapshot writes g's observation data to w.
func EncodeSnapshot(w io.Writer, g *Graph) error {
	wire := snapshotWire{
		Version:  SnapshotFormatVersion,
		Name:     g.name,
		Day:      g.day,
		Machines: g.machineIDs,
		Domains:  g.domains,
	}
	// Adjacency is flattened through the accessor rather than the raw CSR
	// arrays: incremental snapshots keep part of their adjacency in the
	// overlay, which the base CSR alone does not see.
	nm := len(g.machineIDs)
	wire.EdgeOff = make([]int32, nm+1)
	wire.EdgeAdj = make([]int32, 0, g.NumEdges())
	for m := 0; m < nm; m++ {
		adj := g.DomainsOf(int32(m))
		wire.EdgeOff[m+1] = wire.EdgeOff[m] + int32(len(adj))
		wire.EdgeAdj = append(wire.EdgeAdj, adj...)
	}
	for d, ips := range g.domainIPs {
		for _, ip := range ips {
			wire.IPDomain = append(wire.IPDomain, int32(d))
			wire.IPAddr = append(wire.IPAddr, ip)
		}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// DecodeSnapshot reads a snapshot written by EncodeSnapshot and rebuilds
// it as a Builder seeded with every recorded observation, ready for
// further streaming appends. The suffix list recomputes the e2LD
// annotations; labels are left for ApplyLabels at the next Snapshot.
func DecodeSnapshot(r io.Reader, suffixes *dnsutil.SuffixList) (*Builder, error) {
	var wire snapshotWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("graph: decode snapshot: %w", err)
	}
	if wire.Version != SnapshotFormatVersion {
		return nil, fmt.Errorf("%w: file is version %d, this build reads version %d",
			ErrSnapshotVersion, wire.Version, SnapshotFormatVersion)
	}
	nm, nd := len(wire.Machines), len(wire.Domains)
	if len(wire.EdgeOff) != nm+1 && !(nm == 0 && len(wire.EdgeOff) == 0) {
		return nil, fmt.Errorf("graph: decode snapshot: offsets length %d does not match %d machines", len(wire.EdgeOff), nm)
	}
	if len(wire.IPDomain) != len(wire.IPAddr) {
		return nil, fmt.Errorf("graph: decode snapshot: ip columns disagree (%d vs %d)", len(wire.IPDomain), len(wire.IPAddr))
	}

	b := NewBuilder(wire.Name, wire.Day, suffixes)
	// Interning machines and domains in wire order keeps the rebuilt
	// builder's indices aligned with the serialized adjacency.
	for _, id := range wire.Machines {
		b.machine(id)
	}
	for _, name := range wire.Domains {
		b.domain(name)
	}
	for m := 0; m < nm; m++ {
		lo, hi := wire.EdgeOff[m], wire.EdgeOff[m+1]
		if lo < 0 || hi < lo || int(hi) > len(wire.EdgeAdj) {
			return nil, fmt.Errorf("graph: decode snapshot: bad offsets for machine %d", m)
		}
		for _, d := range wire.EdgeAdj[lo:hi] {
			if d < 0 || int(d) >= nd {
				return nil, fmt.Errorf("graph: decode snapshot: edge to out-of-range domain %d", d)
			}
			// Recorded edges go through the pending buffer: the first
			// Snapshot sorts and deduplicates them into the base run, and
			// the domain-queried flags keep e2LD activity propagation from
			// re-reporting recovered domains as freshly queried.
			b.pending = append(b.pending, edge{m: int32(m), d: d})
			if !b.domainQueried[d] {
				b.domainQueried[d] = true
				b.e2lds[b.domainE2LD[d]].queried = true
			}
		}
	}
	for i, d := range wire.IPDomain {
		if d < 0 || int(d) >= nd {
			return nil, fmt.Errorf("graph: decode snapshot: address for out-of-range domain %d", d)
		}
		b.AddResolution(wire.Domains[d], wire.IPAddr[i])
	}
	return b, nil
}
