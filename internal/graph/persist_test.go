package graph

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"

	"segugio/internal/dnsutil"
)

func buildSample(t *testing.T) *Builder {
	t.Helper()
	sl := dnsutil.DefaultSuffixList()
	b := NewBuilder("net", 42, sl)
	for i := 0; i < 200; i++ {
		machine := fmt.Sprintf("m%02d", i%17)
		domain := fmt.Sprintf("h%d.zone%d.com", i%23, i%9)
		b.AddQuery(machine, domain)
		if i%4 == 0 {
			b.AddResolution(domain, dnsutil.MakeIPv4(10, 1, byte(i%5), byte(i%200)))
		}
	}
	// A domain observed only through a resolution: no query edges.
	b.SetDomainIPs("lonely.example.org", []dnsutil.IPv4{dnsutil.MakeIPv4(192, 0, 2, 1)})
	return b
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	sl := dnsutil.DefaultSuffixList()
	b := buildSample(t)
	want := b.Snapshot()

	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeSnapshot(&buf, sl)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Snapshot()

	if got.Name() != want.Name() || got.Day() != want.Day() {
		t.Fatalf("identity: got (%s,%d), want (%s,%d)", got.Name(), got.Day(), want.Name(), want.Day())
	}
	if got.NumMachines() != want.NumMachines() || got.NumDomains() != want.NumDomains() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("sizes: got (%d,%d,%d), want (%d,%d,%d)",
			got.NumMachines(), got.NumDomains(), got.NumEdges(),
			want.NumMachines(), want.NumDomains(), want.NumEdges())
	}
	for d := int32(0); int(d) < want.NumDomains(); d++ {
		name := want.DomainName(d)
		gd, ok := got.DomainIndex(name)
		if !ok {
			t.Fatalf("domain %q missing after round trip", name)
		}
		if got.DomainE2LD(gd) != want.DomainE2LD(d) {
			t.Fatalf("domain %q e2ld %q != %q", name, got.DomainE2LD(gd), want.DomainE2LD(d))
		}
		if got.DomainDegree(gd) != want.DomainDegree(d) {
			t.Fatalf("domain %q degree %d != %d", name, got.DomainDegree(gd), want.DomainDegree(d))
		}
		if len(got.DomainIPs(gd)) != len(want.DomainIPs(d)) {
			t.Fatalf("domain %q ips %d != %d", name, len(got.DomainIPs(gd)), len(want.DomainIPs(d)))
		}
	}
	// The restored builder keeps accepting appends.
	restored.AddQuery("fresh-machine", "fresh.example.com")
	g2 := restored.Snapshot()
	if g2.NumMachines() != want.NumMachines()+1 {
		t.Fatalf("append after restore: %d machines", g2.NumMachines())
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot(bytes.NewReader([]byte("not gob")), dnsutil.DefaultSuffixList()); err == nil {
		t.Fatal("garbage must not decode")
	}
}

func TestDecodeSnapshotRejectsVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshotWire{Version: 99}); err != nil {
		t.Fatal(err)
	}
	_, err := DecodeSnapshot(&buf, dnsutil.DefaultSuffixList())
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("err = %v, want ErrSnapshotVersion", err)
	}
}

func TestDecodeSnapshotRejectsBadAdjacency(t *testing.T) {
	sl := dnsutil.DefaultSuffixList()
	cases := []snapshotWire{
		{Version: 1, Machines: []string{"m"}, Domains: []string{"d.com"},
			EdgeOff: []int32{0, 1}, EdgeAdj: []int32{5}}, // edge to missing domain
		{Version: 1, Machines: []string{"m"}, Domains: []string{"d.com"},
			EdgeOff: []int32{0}}, // offsets too short
		{Version: 1, Domains: []string{"d.com"},
			IPDomain: []int32{3}, IPAddr: []dnsutil.IPv4{1}}, // address for missing domain
		{Version: 1, IPDomain: []int32{0}}, // ip columns disagree
	}
	for i, wire := range cases {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeSnapshot(&buf, sl); err == nil {
			t.Fatalf("case %d: malformed wire must not decode", i)
		}
	}
}
