package graph

// Prober filtering (paper Section VI): some clients run security tools
// that continuously probe long lists of known malware domains — to check
// blacklisting status, resolved IPs, and so on. They look like
// spectacularly infected machines and inject noise into every
// machine-behavior feature. The paper reports using heuristics to verify
// pruned graphs contained no such anomalous clients; this file implements
// that verification as a filter.
//
// The heuristic exploits Figure 3: real infections query a handful of
// control domains per day (essentially never more than twenty), and
// malware traffic is a sliver of an infected user's browsing. A client
// whose known-malware query count is implausibly high — in absolute terms
// and as a fraction of its profile — is a scanner, not a victim.

// ProberConfig tunes the anomalous-client heuristic.
type ProberConfig struct {
	// MinMalwareDomains is the absolute threshold: a real infection stays
	// well under this many distinct known-malware domains per day
	// (default 30, above Figure 3's observed maximum of ~20).
	MinMalwareDomains int
	// MinMalwareFraction is the profile threshold: known-malware domains
	// must make up at least this fraction of the client's queries
	// (default 0.25; infected users still mostly browse normally).
	MinMalwareFraction float64
}

// DefaultProberConfig returns thresholds conservatively above any
// behavior Figure 3 attributes to real infections.
func DefaultProberConfig() ProberConfig {
	return ProberConfig{MinMalwareDomains: 30, MinMalwareFraction: 0.25}
}

func normalizeProberConfig(cfg ProberConfig) ProberConfig {
	if cfg.MinMalwareDomains <= 0 {
		cfg.MinMalwareDomains = 30
	}
	if cfg.MinMalwareFraction <= 0 {
		cfg.MinMalwareFraction = 0.25
	}
	return cfg
}

func machineIsProber(g *Graph, m int32, cfg ProberConfig) bool {
	mal := g.MachineMalwareCount(m)
	deg := g.MachineDegree(m)
	return mal >= cfg.MinMalwareDomains && deg > 0 &&
		float64(mal)/float64(deg) >= cfg.MinMalwareFraction
}

// FindProbers returns the machine nodes matching the heuristic, in node
// order. The graph must be labeled (the heuristic reads known-malware
// query counts). The scan is sharded across GOMAXPROCS workers.
func FindProbers(g *Graph, cfg ProberConfig) ([]int32, error) {
	if !g.labelsApplied {
		return nil, ErrNotLabeled
	}
	fullScans.Add(1)
	cfg = normalizeProberConfig(cfg)
	shards := shardedInt32s(g.NumMachines(), func(lo, hi int, out *[]int32) {
		for m := lo; m < hi; m++ {
			if machineIsProber(g, int32(m), cfg) {
				*out = append(*out, int32(m))
			}
		}
	})
	var out []int32
	for _, s := range shards {
		out = append(out, s...)
	}
	return out, nil
}

// FilterProbers removes the machines matched by FindProbers and returns
// the filtered graph with the removed machine identifiers. Domain nodes
// are kept (their degrees shrink; subsequent pruning handles fallout).
func FilterProbers(g *Graph, cfg ProberConfig) (*Graph, []string, error) {
	probers, err := FindProbers(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	if len(probers) == 0 {
		return g, nil, nil
	}
	keepM := make([]bool, g.NumMachines())
	for i := range keepM {
		keepM[i] = true
	}
	removed := make([]string, 0, len(probers))
	for _, m := range probers {
		keepM[m] = false
		removed = append(removed, g.machineIDs[m])
	}
	keepD := make([]bool, g.NumDomains())
	for i := range keepD {
		keepD[i] = true
	}
	return materialize(g, keepM, keepD), removed, nil
}
