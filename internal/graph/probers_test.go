package graph

import (
	"errors"
	"fmt"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/intel"
)

// buildProberGraph: 3 ordinary infected machines (2 C&C domains each, 20
// benign), one scanner querying 40 C&C domains and 5 benign.
func buildProberGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("P", 1, dnsutil.DefaultSuffixList())
	bl := intel.NewBlacklist()
	for i := 0; i < 50; i++ {
		bl.Add(intel.BlacklistEntry{Domain: fmt.Sprintf("c2-%02d.evil.net", i)})
	}
	for m := 0; m < 3; m++ {
		id := fmt.Sprintf("bot%d", m)
		for j := 0; j < 2; j++ {
			b.AddQuery(id, fmt.Sprintf("c2-%02d.evil.net", (m*2+j)%50))
		}
		for j := 0; j < 20; j++ {
			b.AddQuery(id, fmt.Sprintf("site%02d.com", j))
		}
	}
	for j := 0; j < 40; j++ {
		b.AddQuery("scanner", fmt.Sprintf("c2-%02d.evil.net", j))
	}
	for j := 0; j < 5; j++ {
		b.AddQuery("scanner", fmt.Sprintf("site%02d.com", j))
	}
	g := b.Build()
	g.ApplyLabels(LabelSources{Blacklist: bl, AsOf: 1})
	return g
}

func TestFindProbersRequiresLabels(t *testing.T) {
	b := NewBuilder("P", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m", "d.com")
	g := b.Build()
	if _, err := FindProbers(g, DefaultProberConfig()); !errors.Is(err, ErrNotLabeled) {
		t.Fatalf("err = %v, want ErrNotLabeled", err)
	}
}

func TestFindProbers(t *testing.T) {
	g := buildProberGraph(t)
	probers, err := FindProbers(g, DefaultProberConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(probers) != 1 {
		t.Fatalf("found %d probers, want 1", len(probers))
	}
	if g.MachineID(probers[0]) != "scanner" {
		t.Fatalf("prober = %s, want scanner", g.MachineID(probers[0]))
	}
}

func TestFindProbersSparesRealInfections(t *testing.T) {
	// An infected machine at Figure 3's observed maximum (20 C&C domains)
	// with normal browsing must not be flagged.
	b := NewBuilder("P", 1, dnsutil.DefaultSuffixList())
	bl := intel.NewBlacklist()
	for j := 0; j < 20; j++ {
		d := fmt.Sprintf("c2-%02d.evil.net", j)
		bl.Add(intel.BlacklistEntry{Domain: d})
		b.AddQuery("heavybot", d)
	}
	for j := 0; j < 80; j++ {
		b.AddQuery("heavybot", fmt.Sprintf("site%02d.com", j))
	}
	g := b.Build()
	g.ApplyLabels(LabelSources{Blacklist: bl, AsOf: 1})
	probers, err := FindProbers(g, DefaultProberConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(probers) != 0 {
		t.Fatalf("heavily infected but plausible machine flagged as prober")
	}
}

func TestFilterProbers(t *testing.T) {
	g := buildProberGraph(t)
	filtered, removed, err := FilterProbers(g, DefaultProberConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "scanner" {
		t.Fatalf("removed = %v, want [scanner]", removed)
	}
	if _, ok := filtered.MachineIndex("scanner"); ok {
		t.Fatal("scanner still present")
	}
	if _, ok := filtered.MachineIndex("bot0"); !ok {
		t.Fatal("bot0 lost")
	}
	if filtered.NumDomains() != g.NumDomains() {
		t.Fatal("domains must be kept; only machines are filtered")
	}
	// C&C domain degrees drop by the scanner's edge.
	d, _ := filtered.DomainIndex("c2-00.evil.net")
	dOrig, _ := g.DomainIndex("c2-00.evil.net")
	if filtered.DomainDegree(d) != g.DomainDegree(dOrig)-1 {
		t.Fatal("domain degree should shrink by the removed scanner")
	}
	if !filtered.Labeled() {
		t.Fatal("filtered graph must stay labeled")
	}
}

func TestFilterProbersNoopWhenClean(t *testing.T) {
	b := NewBuilder("P", 1, dnsutil.DefaultSuffixList())
	b.AddQuery("m1", "a.com")
	b.AddQuery("m2", "a.com")
	g := b.Build()
	g.ApplyLabels(LabelSources{AsOf: 1})
	filtered, removed, err := FilterProbers(g, DefaultProberConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("removed = %v, want none", removed)
	}
	if filtered != g {
		t.Fatal("clean graph should be returned unchanged")
	}
}
