package graph

import (
	"errors"
	"math"
	"sort"
	"sync/atomic"
)

// PruneConfig parameterizes the conservative filtering rules of paper
// Section II-A2.
type PruneConfig struct {
	// MaxInactiveDegree is R1's threshold: machines querying this many or
	// fewer domains are considered inactive and dropped (paper: 5), unless
	// they are malware-labeled (the R1 exception keeps infected machines
	// whose only traffic is a short C&C heartbeat).
	MaxInactiveDegree int
	// ProxyPercentile is R2's threshold: machines whose degree reaches
	// this percentile of the machine-degree distribution are treated as
	// proxies/forwarders and dropped (paper: 99.99).
	ProxyPercentile float64
	// MinDomainMachines is R3's threshold: domains queried by fewer
	// distinct machines are dropped (paper: 2, i.e. single-machine domains
	// go), unless they are malware-labeled (the R3 exception).
	MinDomainMachines int
	// MaxE2LDMachineFraction is R4's threshold: domains whose effective
	// 2LD is queried by at least this fraction of all machines are too
	// popular to be malware control and are dropped (paper: 1/3).
	MaxE2LDMachineFraction float64
}

// DefaultPruneConfig returns the paper's settings.
func DefaultPruneConfig() PruneConfig {
	return PruneConfig{
		MaxInactiveDegree:      5,
		ProxyPercentile:        99.99,
		MinDomainMachines:      2,
		MaxE2LDMachineFraction: 1.0 / 3.0,
	}
}

// PruneStats reports the reduction achieved by pruning, matching the
// aggregate numbers the paper gives in Section III.
type PruneStats struct {
	MachinesBefore, MachinesAfter int
	DomainsBefore, DomainsAfter   int
	EdgesBefore, EdgesAfter       int
	// ThetaD is the resolved R2 degree threshold.
	ThetaD int
	// ThetaM is the resolved R4 machine-count threshold.
	ThetaM int
	// Dropped counts by rule (a node dropped by several rules counts for
	// the first one that matched, in R2, R1, R4, R3 order).
	DroppedR1, DroppedR2, DroppedR3, DroppedR4 int
}

// MachineReduction returns the fractional machine-node reduction.
func (s PruneStats) MachineReduction() float64 {
	return reduction(s.MachinesBefore, s.MachinesAfter)
}

// DomainReduction returns the fractional domain-node reduction.
func (s PruneStats) DomainReduction() float64 {
	return reduction(s.DomainsBefore, s.DomainsAfter)
}

// EdgeReduction returns the fractional edge reduction.
func (s PruneStats) EdgeReduction() float64 {
	return reduction(s.EdgesBefore, s.EdgesAfter)
}

func reduction(before, after int) float64 {
	if before == 0 {
		return 0
	}
	return float64(before-after) / float64(before)
}

// ErrNotLabeled is returned when pruning an unlabeled graph: the R1/R3
// exceptions depend on node labels.
var ErrNotLabeled = errors.New("graph: ApplyLabels must run before Prune")

// fullScans counts O(graph) scans of the prune pipeline (Prune,
// NewPrunePlan, FindProbers, PruneSignature) process-wide. A classify
// session that claims to be O(dirty) on delta passes is asserted against
// this counter in tests: between two delta passes it must not move.
var fullScans atomic.Uint64

// FullGraphScans reports how many full-graph prune-pipeline scans have
// run in this process. It is a test and diagnostics hook, not a metric.
func FullGraphScans() uint64 { return fullScans.Load() }

// Prune applies rules R1-R4 to a labeled graph and materializes a new,
// smaller graph. Rules are evaluated against the input graph's degrees
// (one pass, not to fixpoint), mirroring the paper's one-shot filtering.
// The scans are sharded across GOMAXPROCS workers.
func Prune(g *Graph, cfg PruneConfig) (*Graph, PruneStats, error) {
	fullScans.Add(1)
	plan, err := newPrunePlan(g, nil, cfg, false)
	if err != nil {
		return nil, PruneStats{}, err
	}
	pruned := plan.Materialize()
	return pruned, plan.stats, nil
}

// PrunePlan holds the prober-filter and R1-R4 keep decisions for one
// graph snapshot without materializing the pruned subgraph: per-node keep
// bits, the resolved global thresholds (thetaD, thetaM), and the
// per-e2LD surviving-machine counts R4 reads. A plan is the memoizable
// half of the prune pipeline: Materialize turns it into the pruned graph
// for a cold full pass, and NewPrunedView applies its frozen decisions
// to a *later* snapshot of the same builder lineage so a delta pass can
// measure dirty domains without rescanning the graph.
type PrunePlan struct {
	base         *Graph
	prober       *ProberConfig // normalized; nil when prober filtering is off
	cfg          PruneConfig
	disablePrune bool

	keepM, keepD   []bool
	probers        []int32
	probersRemoved []string
	thetaD, thetaM int
	e2ldMachines   map[string]int
	stats          PruneStats
}

// NewPrunePlan computes keep decisions for g in one combined pass:
// prober filtering (when prober is non-nil) composed with rules R1-R4
// (unless disablePrune). The resulting keep sets, thresholds, and stats
// are identical to running FilterProbers followed by Prune, but the
// graph is scanned once and nothing is materialized.
func NewPrunePlan(g *Graph, prober *ProberConfig, cfg PruneConfig, disablePrune bool) (*PrunePlan, error) {
	fullScans.Add(1)
	return newPrunePlan(g, prober, cfg, disablePrune)
}

func newPrunePlan(g *Graph, prober *ProberConfig, cfg PruneConfig, disablePrune bool) (*PrunePlan, error) {
	if !g.labelsApplied {
		return nil, ErrNotLabeled
	}
	p := &PrunePlan{base: g, cfg: cfg, disablePrune: disablePrune}
	nm, nd := g.NumMachines(), g.NumDomains()
	p.keepM = make([]bool, nm)
	p.keepD = make([]bool, nd)

	// Prober mask first: removed machines are invisible to every
	// subsequent threshold, exactly as if FilterProbers had materialized.
	eligible := p.keepM // reused as the "not a prober" mask
	if prober != nil {
		pc := normalizeProberConfig(*prober)
		p.prober = &pc
		shards := shardedInt32s(nm, func(lo, hi int, out *[]int32) {
			for m := lo; m < hi; m++ {
				if machineIsProber(g, int32(m), pc) {
					*out = append(*out, int32(m))
				} else {
					eligible[m] = true
				}
			}
		})
		for _, s := range shards {
			p.probers = append(p.probers, s...)
		}
		for _, m := range p.probers {
			p.probersRemoved = append(p.probersRemoved, g.machineIDs[m])
		}
	} else {
		for m := range eligible {
			eligible[m] = true
		}
	}

	if disablePrune {
		for d := range p.keepD {
			p.keepD[d] = true
		}
		return p, nil
	}

	stats := PruneStats{
		MachinesBefore: nm - len(p.probers),
		DomainsBefore:  nd,
	}

	p.thetaD = degreePercentileMasked(g, cfg.ProxyPercentile, maskOrNil(eligible, len(p.probers)))
	stats.ThetaD = p.thetaD
	p.thetaM = thetaMFor(cfg, stats.MachinesBefore)
	stats.ThetaM = p.thetaM

	// Machine rules R1/R2, sharded. Each shard accumulates its own drop
	// counts and the pre-prune edge total (edges incident to non-prober
	// machines, matching the prober-filtered graph's edge count).
	type mShard struct{ r1, r2, edges int }
	mRes := make([]mShard, shardCount(nm))
	parallelShards(nm, func(shard, lo, hi int) {
		var s mShard
		for m := lo; m < hi; m++ {
			if !eligible[m] {
				continue
			}
			deg := g.MachineDegree(int32(m))
			s.edges += deg
			switch {
			case deg >= p.thetaD:
				s.r2++ // R2: proxy/forwarder
				p.keepM[m] = false
			case deg <= cfg.MaxInactiveDegree && g.machineLabel[m] != LabelMalware:
				s.r1++ // R1: inactive (exception: infected machines stay)
				p.keepM[m] = false
			default:
				p.keepM[m] = true
			}
		}
		mRes[shard] = s
	})
	for _, s := range mRes {
		stats.DroppedR1 += s.r1
		stats.DroppedR2 += s.r2
		stats.EdgesBefore += s.edges
	}

	// Domain rules run against the machine-filtered graph, so R3's
	// "queried by only one machine" means one *surviving* machine — the
	// pruned graph never contains non-malware domains with a single
	// querying machine.
	p.e2ldMachines = g.e2ldMachineCounts(p.keepM)
	type dShard struct{ r3, r4 int }
	dRes := make([]dShard, shardCount(nd))
	parallelShards(nd, func(shard, lo, hi int) {
		var s dShard
		for d := lo; d < hi; d++ {
			deg := 0
			for _, m := range g.MachinesOf(int32(d)) {
				if p.keepM[m] {
					deg++
				}
			}
			switch {
			case p.e2ldMachines[g.domainE2LD[d]] >= p.thetaM:
				s.r4++ // R4: too popular to be malware control
			case deg < cfg.MinDomainMachines && g.domainLabel[d] != LabelMalware:
				s.r3++ // R3: single-machine domain (exception: known malware stays)
			default:
				p.keepD[d] = true
			}
		}
		dRes[shard] = s
	})
	for _, s := range dRes {
		stats.DroppedR3 += s.r3
		stats.DroppedR4 += s.r4
	}
	p.stats = stats
	return p, nil
}

// maskOrNil returns nil when every machine is eligible, letting the
// percentile scan skip the mask check.
func maskOrNil(eligible []bool, removed int) []bool {
	if removed == 0 {
		return nil
	}
	return eligible
}

// thetaMFor resolves R4's machine-count threshold for a machine
// population of n.
func thetaMFor(cfg PruneConfig, n int) int {
	t := int(math.Ceil(cfg.MaxE2LDMachineFraction * float64(n)))
	if t < 1 {
		t = 1
	}
	return t
}

// Materialize builds the pruned graph the plan describes. The result is
// byte-identical to FilterProbers + Prune on the plan's base graph.
func (p *PrunePlan) Materialize() *Graph {
	if p.disablePrune && len(p.probers) == 0 {
		return p.base
	}
	pruned := materialize(p.base, p.keepM, p.keepD)
	p.stats.MachinesAfter = pruned.NumMachines()
	p.stats.DomainsAfter = pruned.NumDomains()
	p.stats.EdgesAfter = pruned.NumEdges()
	return pruned
}

// Stats returns the plan's prune statistics. After/edge counts are
// filled in by Materialize; a plan that was never materialized reports
// only the before/threshold/drop numbers.
func (p *PrunePlan) Stats() PruneStats { return p.stats }

// ProbersRemoved lists the machine identifiers the prober filter
// removed, in node order.
func (p *PrunePlan) ProbersRemoved() []string { return p.probersRemoved }

// Signature condenses the plan's resolved global thresholds into one
// comparable value, like PruneSignature but without rescanning: a score
// cache keyed by per-domain dirty sets must flush when it moves, because
// a threshold shift can change the pruning fate of domains no local
// mutation touched. Zero when pruning is disabled.
func (p *PrunePlan) Signature() uint64 {
	if p.disablePrune {
		return 0
	}
	return uint64(uint32(p.thetaD))<<32 | uint64(uint32(p.thetaM))
}

// Base returns the graph snapshot the plan was computed on.
func (p *PrunePlan) Base() *Graph { return p.base }

// sessionDriftSlack absorbs small absolute growth on tiny graphs where
// a fractional bound would be meaninglessly tight.
const (
	sessionDriftFrac      = 0.05
	sessionDriftNodeSlack = 512
	sessionDriftEdgeSlack = 4096
)

// StaleFor reports whether the plan's frozen decisions should no longer
// be applied to live, a later snapshot of the same builder lineage. It
// is O(1): the plan is stale when the graph shrank (not the same
// lineage), grew beyond a drift bound (too many decisions would be
// frozen wrong), or R4's thetaM resolved against the live machine count
// no longer matches (a global threshold moved).
func (p *PrunePlan) StaleFor(live *Graph) bool {
	b := p.base
	if live.NumMachines() < b.NumMachines() || live.NumDomains() < b.NumDomains() ||
		live.NumEdges() < b.NumEdges() {
		return true
	}
	if grewPast(b.NumMachines(), live.NumMachines(), sessionDriftNodeSlack) ||
		grewPast(b.NumDomains(), live.NumDomains(), sessionDriftNodeSlack) ||
		grewPast(b.NumEdges(), live.NumEdges(), sessionDriftEdgeSlack) {
		return true
	}
	if !p.disablePrune {
		if thetaMFor(p.cfg, live.NumMachines()-len(p.probers)) != p.thetaM {
			return true
		}
	}
	return false
}

func grewPast(base, now, slack int) bool {
	bound := base + int(float64(base)*sessionDriftFrac) + slack
	return now > bound
}

// degHistCap bounds the degree histogram the percentile scan uses;
// degrees at or above it (rare proxies) fall into a sorted overflow
// list.
const degHistCap = 1 << 12

// degreePercentile returns the machine-degree value at the given
// percentile (nearest-rank).
func degreePercentile(g *Graph, pct float64) int {
	return degreePercentileMasked(g, pct, nil)
}

// degreePercentileMasked is degreePercentile restricted to machines with
// include[m] true (nil includes every machine). The scan builds sharded
// degree histograms instead of sorting, so it is O(machines) and
// parallel; the nearest-rank result is identical to sorting.
func degreePercentileMasked(g *Graph, pct float64, include []bool) int {
	nm := g.NumMachines()
	type shard struct {
		hist     []int
		overflow []int
		n        int
	}
	res := make([]shard, shardCount(nm))
	parallelShards(nm, func(si, lo, hi int) {
		s := shard{hist: make([]int, degHistCap)}
		for m := lo; m < hi; m++ {
			if include != nil && !include[m] {
				continue
			}
			s.n++
			deg := g.MachineDegree(int32(m))
			if deg < degHistCap {
				s.hist[deg]++
			} else {
				s.overflow = append(s.overflow, deg)
			}
		}
		res[si] = s
	})
	n := 0
	hist := make([]int, degHistCap)
	var overflow []int
	for _, s := range res {
		n += s.n
		for d, c := range s.hist {
			hist[d] += c
		}
		overflow = append(overflow, s.overflow...)
	}
	if n == 0 {
		return 1
	}
	rank := int(math.Ceil(pct / 100.0 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	seen := 0
	for d, c := range hist {
		seen += c
		if seen >= rank {
			return d
		}
	}
	// Rank falls past every histogrammed degree: it indexes the sorted
	// overflow values (seen counts everything below degHistCap).
	sort.Ints(overflow)
	return overflow[rank-seen-1]
}

// e2ldMachineCounts counts, per effective 2LD, the distinct surviving
// machines that query any domain under it. A per-machine stamp keeps the
// scan O(edges); e2LD groups are sharded across workers, each with its
// own stamp array. keepM may be nil to count every machine.
func (g *Graph) e2ldMachineCounts(keepM []bool) map[string]int {
	// Group domains by e2LD.
	byE2LD := make(map[string][]int32)
	for d := range g.domains {
		byE2LD[g.domainE2LD[d]] = append(byE2LD[g.domainE2LD[d]], int32(d))
	}
	groups := make([]string, 0, len(byE2LD))
	for e2ld := range byE2LD {
		groups = append(groups, e2ld)
	}
	// Each shard owns a disjoint range of groups and a private stamp
	// array; results land in a per-group slice, merged into the map after
	// the barrier.
	perGroup := make([]int, len(groups))
	parallelShards(len(groups), func(_, lo, hi int) {
		stamp := make([]int, g.NumMachines())
		cur := 0
		for gi := lo; gi < hi; gi++ {
			cur++
			n := 0
			for _, d := range byE2LD[groups[gi]] {
				for _, m := range g.MachinesOf(d) {
					if keepM != nil && !keepM[m] {
						continue
					}
					if stamp[m] != cur {
						stamp[m] = cur
						n++
					}
				}
			}
			perGroup[gi] = n
		}
	})
	counts := make(map[string]int, len(byE2LD))
	for gi, e2ld := range groups {
		counts[e2ld] = perGroup[gi]
	}
	return counts
}

// materialize builds the subgraph induced by the kept nodes, carrying over
// labels and annotations and re-deriving machine labels. The machine-side
// CSR fill and the label recomputation are sharded.
func materialize(g *Graph, keepM, keepD []bool) *Graph {
	out := &Graph{
		name:          g.name,
		day:           g.day,
		labeledAsOf:   g.labeledAsOf,
		labelsApplied: g.labelsApplied,
	}

	mMap := make([]int32, g.NumMachines())
	out.machineIndex = make(map[string]int32)
	for m := range keepM {
		mMap[m] = -1
		if !keepM[m] {
			continue
		}
		id := int32(len(out.machineIDs))
		mMap[m] = id
		out.machineIndex[g.machineIDs[m]] = id
		out.machineIDs = append(out.machineIDs, g.machineIDs[m])
	}

	dMap := make([]int32, g.NumDomains())
	out.domainIndex = make(map[string]int32)
	for d := range keepD {
		dMap[d] = -1
		if !keepD[d] {
			continue
		}
		id := int32(len(out.domains))
		dMap[d] = id
		out.domainIndex[g.domains[d]] = id
		out.domains = append(out.domains, g.domains[d])
		out.domainE2LD = append(out.domainE2LD, g.domainE2LD[d])
		out.domainIPs = append(out.domainIPs, g.domainIPs[d])
		out.domainLabel = append(out.domainLabel, g.domainLabel[d])
	}

	nm := len(out.machineIDs)
	nd := len(out.domains)
	out.machineLabel = make([]Label, nm)
	out.cntMalware = make([]int32, nm)
	out.cntNonBenign = make([]int32, nm)

	// Machine-side CSR over surviving edges. Counting and filling are
	// parallel over source machines: after the prefix sum each machine
	// owns a disjoint range of mAdj.
	out.mOff = make([]int32, nm+1)
	parallelFor(len(keepM), func(lo, hi int) {
		for m := lo; m < hi; m++ {
			if !keepM[m] {
				continue
			}
			n := int32(0)
			for _, d := range g.DomainsOf(int32(m)) {
				if dMap[d] >= 0 {
					n++
				}
			}
			out.mOff[mMap[m]+1] = n
		}
	})
	for m := 0; m < nm; m++ {
		out.mOff[m+1] += out.mOff[m]
	}
	out.mAdj = make([]int32, out.mOff[nm])
	parallelFor(len(keepM), func(lo, hi int) {
		for m := lo; m < hi; m++ {
			if !keepM[m] {
				continue
			}
			cursor := out.mOff[mMap[m]]
			for _, d := range g.DomainsOf(int32(m)) {
				if dMap[d] >= 0 {
					out.mAdj[cursor] = dMap[d]
					cursor++
				}
			}
		}
	})

	// Domain-side CSR via counting sort.
	out.dOff = make([]int32, nd+1)
	for _, d := range out.mAdj {
		out.dOff[d+1]++
	}
	for d := 0; d < nd; d++ {
		out.dOff[d+1] += out.dOff[d]
	}
	out.dAdj = make([]int32, len(out.mAdj))
	dCursor := make([]int32, nd)
	copy(dCursor, out.dOff[:nd])
	for m := 0; m < nm; m++ {
		for _, d := range out.DomainsOf(int32(m)) {
			out.dAdj[dCursor[d]] = int32(m)
			dCursor[d]++
		}
	}

	out.numEdges = len(out.mAdj)
	out.recomputeMachineLabels()
	return out
}

// PruneSignature condenses the graph-global pruning thresholds that
// classification outcomes depend on — R2's degree percentile thetaD and
// R4's machine-count threshold thetaM — into one comparable value. A
// score cache keyed by per-domain dirty sets must also be flushed when
// these global thresholds move, because a threshold shift can change the
// pruning fate of domains no local mutation touched.
func PruneSignature(g *Graph, cfg PruneConfig) uint64 {
	fullScans.Add(1)
	thetaD := degreePercentile(g, cfg.ProxyPercentile)
	thetaM := thetaMFor(cfg, g.NumMachines())
	return uint64(uint32(thetaD))<<32 | uint64(uint32(thetaM))
}
