package graph

import (
	"errors"
	"math"
	"sort"
)

// PruneConfig parameterizes the conservative filtering rules of paper
// Section II-A2.
type PruneConfig struct {
	// MaxInactiveDegree is R1's threshold: machines querying this many or
	// fewer domains are considered inactive and dropped (paper: 5), unless
	// they are malware-labeled (the R1 exception keeps infected machines
	// whose only traffic is a short C&C heartbeat).
	MaxInactiveDegree int
	// ProxyPercentile is R2's threshold: machines whose degree reaches
	// this percentile of the machine-degree distribution are treated as
	// proxies/forwarders and dropped (paper: 99.99).
	ProxyPercentile float64
	// MinDomainMachines is R3's threshold: domains queried by fewer
	// distinct machines are dropped (paper: 2, i.e. single-machine domains
	// go), unless they are malware-labeled (the R3 exception).
	MinDomainMachines int
	// MaxE2LDMachineFraction is R4's threshold: domains whose effective
	// 2LD is queried by at least this fraction of all machines are too
	// popular to be malware control and are dropped (paper: 1/3).
	MaxE2LDMachineFraction float64
}

// DefaultPruneConfig returns the paper's settings.
func DefaultPruneConfig() PruneConfig {
	return PruneConfig{
		MaxInactiveDegree:      5,
		ProxyPercentile:        99.99,
		MinDomainMachines:      2,
		MaxE2LDMachineFraction: 1.0 / 3.0,
	}
}

// PruneStats reports the reduction achieved by pruning, matching the
// aggregate numbers the paper gives in Section III.
type PruneStats struct {
	MachinesBefore, MachinesAfter int
	DomainsBefore, DomainsAfter   int
	EdgesBefore, EdgesAfter       int
	// ThetaD is the resolved R2 degree threshold.
	ThetaD int
	// ThetaM is the resolved R4 machine-count threshold.
	ThetaM int
	// Dropped counts by rule (a node dropped by several rules counts for
	// the first one that matched, in R2, R1, R4, R3 order).
	DroppedR1, DroppedR2, DroppedR3, DroppedR4 int
}

// MachineReduction returns the fractional machine-node reduction.
func (s PruneStats) MachineReduction() float64 {
	return reduction(s.MachinesBefore, s.MachinesAfter)
}

// DomainReduction returns the fractional domain-node reduction.
func (s PruneStats) DomainReduction() float64 {
	return reduction(s.DomainsBefore, s.DomainsAfter)
}

// EdgeReduction returns the fractional edge reduction.
func (s PruneStats) EdgeReduction() float64 {
	return reduction(s.EdgesBefore, s.EdgesAfter)
}

func reduction(before, after int) float64 {
	if before == 0 {
		return 0
	}
	return float64(before-after) / float64(before)
}

// ErrNotLabeled is returned when pruning an unlabeled graph: the R1/R3
// exceptions depend on node labels.
var ErrNotLabeled = errors.New("graph: ApplyLabels must run before Prune")

// Prune applies rules R1-R4 to a labeled graph and materializes a new,
// smaller graph. Rules are evaluated against the input graph's degrees
// (one pass, not to fixpoint), mirroring the paper's one-shot filtering.
func Prune(g *Graph, cfg PruneConfig) (*Graph, PruneStats, error) {
	if !g.labelsApplied {
		return nil, PruneStats{}, ErrNotLabeled
	}
	stats := PruneStats{
		MachinesBefore: g.NumMachines(),
		DomainsBefore:  g.NumDomains(),
		EdgesBefore:    g.NumEdges(),
	}

	thetaD := degreePercentile(g, cfg.ProxyPercentile)
	stats.ThetaD = thetaD
	thetaM := int(math.Ceil(cfg.MaxE2LDMachineFraction * float64(g.NumMachines())))
	if thetaM < 1 {
		thetaM = 1
	}
	stats.ThetaM = thetaM

	keepM := make([]bool, g.NumMachines())
	for m := range keepM {
		deg := g.MachineDegree(int32(m))
		switch {
		case deg >= thetaD:
			stats.DroppedR2++ // R2: proxy/forwarder
		case deg <= cfg.MaxInactiveDegree && g.machineLabel[m] != LabelMalware:
			stats.DroppedR1++ // R1: inactive (exception: infected machines stay)
		default:
			keepM[m] = true
		}
	}

	// Domain rules run against the machine-filtered graph, so R3's
	// "queried by only one machine" means one *surviving* machine — the
	// pruned graph never contains non-malware domains with a single
	// querying machine.
	e2ldMachines := g.e2ldMachineCounts(keepM)
	keepD := make([]bool, g.NumDomains())
	for d := range keepD {
		deg := 0
		for _, m := range g.MachinesOf(int32(d)) {
			if keepM[m] {
				deg++
			}
		}
		switch {
		case e2ldMachines[g.domainE2LD[d]] >= thetaM:
			stats.DroppedR4++ // R4: too popular to be malware control
		case deg < cfg.MinDomainMachines && g.domainLabel[d] != LabelMalware:
			stats.DroppedR3++ // R3: single-machine domain (exception: known malware stays)
		default:
			keepD[d] = true
		}
	}

	pruned := materialize(g, keepM, keepD)
	stats.MachinesAfter = pruned.NumMachines()
	stats.DomainsAfter = pruned.NumDomains()
	stats.EdgesAfter = pruned.NumEdges()
	return pruned, stats, nil
}

// degreePercentile returns the machine-degree value at the given
// percentile (nearest-rank).
func degreePercentile(g *Graph, pct float64) int {
	n := g.NumMachines()
	if n == 0 {
		return 1
	}
	degrees := make([]int, n)
	for m := 0; m < n; m++ {
		degrees[m] = g.MachineDegree(int32(m))
	}
	sort.Ints(degrees)
	rank := int(math.Ceil(pct / 100.0 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return degrees[rank-1]
}

// e2ldMachineCounts counts, per effective 2LD, the distinct surviving
// machines that query any domain under it. A per-machine stamp keeps the
// scan O(edges). keepM may be nil to count every machine.
func (g *Graph) e2ldMachineCounts(keepM []bool) map[string]int {
	// Group domains by e2LD.
	byE2LD := make(map[string][]int32)
	for d := range g.domains {
		byE2LD[g.domainE2LD[d]] = append(byE2LD[g.domainE2LD[d]], int32(d))
	}
	counts := make(map[string]int, len(byE2LD))
	stamp := make([]int, g.NumMachines())
	cur := 0
	for e2ld, ds := range byE2LD {
		cur++
		n := 0
		for _, d := range ds {
			for _, m := range g.MachinesOf(d) {
				if keepM != nil && !keepM[m] {
					continue
				}
				if stamp[m] != cur {
					stamp[m] = cur
					n++
				}
			}
		}
		counts[e2ld] = n
	}
	return counts
}

// materialize builds the subgraph induced by the kept nodes, carrying over
// labels and annotations and re-deriving machine labels.
func materialize(g *Graph, keepM, keepD []bool) *Graph {
	out := &Graph{
		name:          g.name,
		day:           g.day,
		labeledAsOf:   g.labeledAsOf,
		labelsApplied: g.labelsApplied,
	}

	mMap := make([]int32, g.NumMachines())
	out.machineIndex = make(map[string]int32)
	for m := range keepM {
		mMap[m] = -1
		if !keepM[m] {
			continue
		}
		id := int32(len(out.machineIDs))
		mMap[m] = id
		out.machineIndex[g.machineIDs[m]] = id
		out.machineIDs = append(out.machineIDs, g.machineIDs[m])
	}

	dMap := make([]int32, g.NumDomains())
	out.domainIndex = make(map[string]int32)
	for d := range keepD {
		dMap[d] = -1
		if !keepD[d] {
			continue
		}
		id := int32(len(out.domains))
		dMap[d] = id
		out.domainIndex[g.domains[d]] = id
		out.domains = append(out.domains, g.domains[d])
		out.domainE2LD = append(out.domainE2LD, g.domainE2LD[d])
		out.domainIPs = append(out.domainIPs, g.domainIPs[d])
		out.domainLabel = append(out.domainLabel, g.domainLabel[d])
	}

	nm := len(out.machineIDs)
	nd := len(out.domains)
	out.machineLabel = make([]Label, nm)
	out.cntMalware = make([]int32, nm)
	out.cntNonBenign = make([]int32, nm)

	// Machine-side CSR over surviving edges.
	out.mOff = make([]int32, nm+1)
	for m := range keepM {
		if !keepM[m] {
			continue
		}
		for _, d := range g.DomainsOf(int32(m)) {
			if dMap[d] >= 0 {
				out.mOff[mMap[m]+1]++
			}
		}
	}
	for m := 0; m < nm; m++ {
		out.mOff[m+1] += out.mOff[m]
	}
	out.mAdj = make([]int32, out.mOff[nm])
	cursor := make([]int32, nm)
	copy(cursor, out.mOff[:nm])
	for m := range keepM {
		if !keepM[m] {
			continue
		}
		nm2 := mMap[m]
		for _, d := range g.DomainsOf(int32(m)) {
			if dMap[d] >= 0 {
				out.mAdj[cursor[nm2]] = dMap[d]
				cursor[nm2]++
			}
		}
	}

	// Domain-side CSR via counting sort.
	out.dOff = make([]int32, nd+1)
	for _, d := range out.mAdj {
		out.dOff[d+1]++
	}
	for d := 0; d < nd; d++ {
		out.dOff[d+1] += out.dOff[d]
	}
	out.dAdj = make([]int32, len(out.mAdj))
	dCursor := make([]int32, nd)
	copy(dCursor, out.dOff[:nd])
	for m := 0; m < nm; m++ {
		for _, d := range out.DomainsOf(int32(m)) {
			out.dAdj[dCursor[d]] = int32(m)
			dCursor[d]++
		}
	}

	out.numEdges = len(out.mAdj)
	out.recomputeMachineLabels()
	return out
}

// PruneSignature condenses the graph-global pruning thresholds that
// classification outcomes depend on — R2's degree percentile thetaD and
// R4's machine-count threshold thetaM — into one comparable value. A
// score cache keyed by per-domain dirty sets must also be flushed when
// these global thresholds move, because a threshold shift can change the
// pruning fate of domains no local mutation touched.
func PruneSignature(g *Graph, cfg PruneConfig) uint64 {
	thetaD := degreePercentile(g, cfg.ProxyPercentile)
	thetaM := int(math.Ceil(cfg.MaxE2LDMachineFraction * float64(g.NumMachines())))
	if thetaM < 1 {
		thetaM = 1
	}
	return uint64(uint32(thetaD))<<32 | uint64(uint32(thetaM))
}
