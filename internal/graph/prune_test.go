package graph

import (
	"errors"
	"fmt"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/intel"
)

// buildPruneGraph creates a graph exercising every pruning rule:
//   - "idle" queries 2 domains (R1 target).
//   - "idlebot" queries only 2 malware domains (R1 exception).
//   - "proxy" queries every domain (R2 target at a low percentile).
//   - "lonely.com" is queried by one machine (R3 target).
//   - "c2.solo.com" is malware queried by one machine (R3 exception).
//   - "popular.com" is queried by nearly all machines (R4 target).
func buildPruneGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("P", 10, dnsutil.DefaultSuffixList())

	normals := make([]string, 30)
	for i := range normals {
		normals[i] = fmt.Sprintf("m%02d", i)
		// Enough breadth to survive R1, spread thin enough that no site
		// e2LD approaches the R4 popularity threshold.
		for j := 0; j < 8; j++ {
			b.AddQuery(normals[i], fmt.Sprintf("site%d.com", (i*3+j)%40))
		}
		b.AddQuery(normals[i], "www.popular.com")
	}
	b.AddQuery("m00", "lonely.com")
	b.AddQuery("m01", "c2.solo.com")

	b.AddQuery("idle", "site0.com")
	b.AddQuery("idle", "site1.com")

	b.AddQuery("idlebot", "c2.bot.com")
	b.AddQuery("idlebot", "c2.bot2.com")

	for j := 0; j < 12; j++ {
		b.AddQuery("proxy", fmt.Sprintf("site%d.com", j))
	}
	for j := 0; j < 300; j++ {
		b.AddQuery("proxy", fmt.Sprintf("proxyonly%03d.net", j))
	}
	return b.Build()
}

func labelPruneGraph(t *testing.T, g *Graph) {
	t.Helper()
	bl := intel.NewBlacklist()
	for _, d := range []string{"c2.solo.com", "c2.bot.com", "c2.bot2.com"} {
		bl.Add(intel.BlacklistEntry{Domain: d, FirstListed: 0})
	}
	wl := intel.NewWhitelist([]string{"popular.com"})
	g.ApplyLabels(LabelSources{Blacklist: bl, Whitelist: wl, AsOf: 10})
}

func TestPruneRequiresLabels(t *testing.T) {
	g := buildPruneGraph(t)
	if _, _, err := Prune(g, DefaultPruneConfig()); !errors.Is(err, ErrNotLabeled) {
		t.Fatalf("err = %v, want ErrNotLabeled", err)
	}
}

func TestPruneRules(t *testing.T) {
	g := buildPruneGraph(t)
	labelPruneGraph(t, g)
	cfg := DefaultPruneConfig()
	cfg.ProxyPercentile = 97 // small population: make R2 bite the proxy
	pruned, stats, err := Prune(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := pruned.MachineIndex("idle"); ok {
		t.Error("R1: idle machine must be pruned")
	}
	if _, ok := pruned.MachineIndex("idlebot"); !ok {
		t.Error("R1 exception: infected idle machine must survive")
	}
	if _, ok := pruned.MachineIndex("proxy"); ok {
		t.Error("R2: proxy machine must be pruned")
	}
	if _, ok := pruned.MachineIndex("m05"); !ok {
		t.Error("ordinary machine must survive")
	}
	if _, ok := pruned.DomainIndex("lonely.com"); ok {
		t.Error("R3: single-machine domain must be pruned")
	}
	if _, ok := pruned.DomainIndex("c2.solo.com"); !ok {
		t.Error("R3 exception: known malware domain must survive")
	}
	if _, ok := pruned.DomainIndex("www.popular.com"); ok {
		t.Error("R4: domain under near-universally queried e2LD must be pruned")
	}
	if _, ok := pruned.DomainIndex("site0.com"); !ok {
		t.Error("ordinary domain must survive")
	}

	if stats.DroppedR1 == 0 || stats.DroppedR2 == 0 || stats.DroppedR3 == 0 || stats.DroppedR4 == 0 {
		t.Errorf("every rule should fire: %+v", stats)
	}
	if stats.MachinesAfter >= stats.MachinesBefore || stats.DomainsAfter >= stats.DomainsBefore {
		t.Errorf("pruning must shrink the graph: %+v", stats)
	}
	if stats.EdgesAfter >= stats.EdgesBefore {
		t.Errorf("pruning must drop edges: %+v", stats)
	}
}

func TestPruneKeepsLabelsAndAnnotations(t *testing.T) {
	g := buildPruneGraph(t)
	labelPruneGraph(t, g)
	cfg := DefaultPruneConfig()
	cfg.ProxyPercentile = 97
	pruned, _, err := Prune(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := pruned.DomainIndex("c2.bot.com")
	if !ok {
		t.Fatal("c2.bot.com should survive (malware exception)")
	}
	if pruned.DomainLabel(d) != LabelMalware {
		t.Fatal("label must carry over")
	}
	if pruned.DomainE2LD(d) != "bot.com" {
		t.Fatalf("e2LD = %q, want bot.com", pruned.DomainE2LD(d))
	}
	m, ok := pruned.MachineIndex("idlebot")
	if !ok {
		t.Fatal("idlebot should survive")
	}
	if pruned.MachineLabel(m) != LabelMalware {
		t.Fatal("machine labels must be re-derived on the pruned graph")
	}
	if !pruned.Labeled() {
		t.Fatal("pruned graph must remain labeled")
	}
}

func TestPruneAdjacencyConsistent(t *testing.T) {
	g := buildPruneGraph(t)
	labelPruneGraph(t, g)
	cfg := DefaultPruneConfig()
	cfg.ProxyPercentile = 97
	pruned, _, err := Prune(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := 0
	for m := int32(0); m < int32(pruned.NumMachines()); m++ {
		for _, d := range pruned.DomainsOf(m) {
			edges++
			found := false
			for _, mm := range pruned.MachinesOf(d) {
				if mm == m {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) missing from domain side", m, d)
			}
		}
	}
	if edges != pruned.NumEdges() {
		t.Fatalf("edge count mismatch: %d vs %d", edges, pruned.NumEdges())
	}
}

func TestPruneReductionStats(t *testing.T) {
	s := PruneStats{
		MachinesBefore: 100, MachinesAfter: 80,
		DomainsBefore: 200, DomainsAfter: 150,
		EdgesBefore: 1000, EdgesAfter: 700,
	}
	if got := s.MachineReduction(); got != 0.2 {
		t.Errorf("MachineReduction = %v, want 0.2", got)
	}
	if got := s.DomainReduction(); got != 0.25 {
		t.Errorf("DomainReduction = %v, want 0.25", got)
	}
	if got := s.EdgeReduction(); got != 0.3 {
		t.Errorf("EdgeReduction = %v, want 0.3", got)
	}
	var zero PruneStats
	if zero.MachineReduction() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestDegreePercentile(t *testing.T) {
	b := NewBuilder("T", 1, dnsutil.DefaultSuffixList())
	// Machine i queries i+1 domains, i in [0,9].
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			b.AddQuery(fmt.Sprintf("m%d", i), fmt.Sprintf("d%d.com", j))
		}
	}
	g := b.Build()
	if got := degreePercentile(g, 100); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	if got := degreePercentile(g, 50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := degreePercentile(g, 10); got != 1 {
		t.Errorf("p10 = %d, want 1", got)
	}
}
