package graph

import (
	"segugio/internal/dnsutil"
)

// PrunedView applies a frozen PrunePlan to a later snapshot of the same
// builder lineage, restricted to a set of target domains, without
// materializing anything. It answers exactly the queries feature
// extraction makes — target resolution, the surviving machines of a
// target, and label-hiding machine labels — as the real pruned graph at
// the live snapshot would, under one approximation: keep decisions for
// nodes that existed when the plan was computed are frozen (targets and
// nodes interned since get fresh decisions against the plan's frozen
// thresholds). PrunePlan.StaleFor bounds how far the graph may drift
// before a caller must recompute the plan instead.
//
// Construction resolves everything eagerly in O(2-hop neighborhood of
// the targets); the built view is immutable and safe for concurrent use.
type PrunedView struct {
	live *Graph
	plan *PrunePlan

	targets    map[string]int32
	machinesOf map[int32][]int32
	// cnt holds, per machine appearing in a target's surviving-machine
	// list, the pruned-graph label-derivation counts {cntMalware,
	// cntNonBenign} over surviving domains.
	cnt map[int32][2]int32
}

// NewPrunedView resolves the targets against live under plan's frozen
// decisions. Targets absent from live or pruned away resolve to
// not-found, mirroring VectorsFor's ok=false on a materialized pruned
// graph. live must be labeled.
func NewPrunedView(live *Graph, plan *PrunePlan, targets []string) *PrunedView {
	v := &PrunedView{
		live:       live,
		plan:       plan,
		targets:    make(map[string]int32, len(targets)),
		machinesOf: make(map[int32][]int32, len(targets)),
		cnt:        make(map[int32][2]int32),
	}

	isTarget := make(map[int32]bool, len(targets))
	targetIdx := make([]int32, 0, len(targets))
	for _, name := range targets {
		if d, ok := live.DomainIndex(name); ok {
			if !isTarget[d] {
				targetIdx = append(targetIdx, d)
			}
			isTarget[d] = true
		}
	}

	keepMMemo := make(map[int32]bool)
	machineKeep := func(m int32) bool {
		if int(m) < len(plan.keepM) {
			return plan.keepM[m]
		}
		if k, ok := keepMMemo[m]; ok {
			return k
		}
		k := v.freshMachineKeep(m)
		keepMMemo[m] = k
		return k
	}

	keepDMemo := make(map[int32]bool)
	domainKeep := func(d int32) bool {
		if int(d) < len(plan.keepD) && !isTarget[d] {
			return plan.keepD[d]
		}
		if k, ok := keepDMemo[d]; ok {
			return k
		}
		k := v.freshDomainKeep(d, machineKeep)
		keepDMemo[d] = k
		return k
	}

	for _, name := range targets {
		d, ok := live.DomainIndex(name)
		if !ok || !domainKeep(d) {
			continue
		}
		v.targets[name] = d
		if _, done := v.machinesOf[d]; done {
			continue
		}
		all := live.MachinesOf(d)
		ms := make([]int32, 0, len(all))
		for _, m := range all {
			if machineKeep(m) {
				ms = append(ms, m)
			}
		}
		v.machinesOf[d] = ms
		for _, m := range ms {
			if _, done := v.cnt[m]; done {
				continue
			}
			var mal, nonBenign int32
			for _, dd := range live.DomainsOf(m) {
				if !domainKeep(dd) {
					continue
				}
				switch live.domainLabel[dd] {
				case LabelMalware:
					mal++
					nonBenign++
				case LabelUnknown:
					nonBenign++
				}
			}
			v.cnt[m] = [2]int32{mal, nonBenign}
		}
	}
	return v
}

// freshMachineKeep evaluates the prober heuristic and R1/R2 for a
// machine interned after the plan, against the plan's frozen thetaD.
func (v *PrunedView) freshMachineKeep(m int32) bool {
	p := v.plan
	if p.prober != nil && machineIsProber(v.live, m, *p.prober) {
		return false
	}
	if p.disablePrune {
		return true
	}
	deg := v.live.MachineDegree(m)
	if deg >= p.thetaD {
		return false
	}
	if deg <= p.cfg.MaxInactiveDegree && v.live.machineLabel[m] != LabelMalware {
		return false
	}
	return true
}

// freshDomainKeep evaluates R4 then R3 for a target or newly interned
// domain, against the plan's frozen thetaM and e2LD machine counts
// (a brand-new e2LD counts zero surviving machines).
func (v *PrunedView) freshDomainKeep(d int32, machineKeep func(int32) bool) bool {
	p := v.plan
	if p.disablePrune {
		return true
	}
	if p.e2ldMachines[v.live.domainE2LD[d]] >= p.thetaM {
		return false
	}
	if v.live.domainLabel[d] == LabelMalware {
		return true
	}
	deg := 0
	for _, m := range v.live.MachinesOf(d) {
		if machineKeep(m) {
			deg++
		}
	}
	return deg >= p.cfg.MinDomainMachines
}

// Labeled reports true: views are only built over labeled snapshots.
func (v *PrunedView) Labeled() bool { return true }

// Day returns the live snapshot's observation day.
func (v *PrunedView) Day() int { return v.live.day }

// DomainName returns the name of domain node d in the live index space.
func (v *PrunedView) DomainName(d int32) string { return v.live.DomainName(d) }

// DomainE2LD returns the effective 2LD of domain node d.
func (v *PrunedView) DomainE2LD(d int32) string { return v.live.DomainE2LD(d) }

// DomainIPs returns the resolved addresses of domain node d.
func (v *PrunedView) DomainIPs(d int32) []dnsutil.IPv4 { return v.live.DomainIPs(d) }

// DomainIndex resolves a target domain name; names outside the resolved
// target set (including pruned-away targets) report not-found.
func (v *PrunedView) DomainIndex(name string) (int32, bool) {
	d, ok := v.targets[name]
	return d, ok
}

// MachinesOf returns the surviving machines querying target domain d.
func (v *PrunedView) MachinesOf(d int32) []int32 { return v.machinesOf[d] }

// MachineLabelHiding mirrors Graph.MachineLabelHiding over the view's
// pruned-graph label counts.
func (v *PrunedView) MachineLabelHiding(m, d int32) Label {
	c := v.cnt[m]
	mal, nonBenign := c[0], c[1]
	switch v.live.domainLabel[d] {
	case LabelMalware:
		mal--
		nonBenign--
	case LabelUnknown:
		nonBenign--
	}
	switch {
	case mal > 0:
		return LabelMalware
	case nonBenign == 0:
		return LabelBenign
	default:
		return LabelUnknown
	}
}
