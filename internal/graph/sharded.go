package graph

import "segugio/internal/dnsutil"

// ShardOf routes an event key to one of n graph shards with the same
// 32-bit FNV-1a hash the ingest rings use, so the per-(source,shard) SPSC
// rings feed straight into their shard's builder when the ring and graph
// shard counts match. Query events route by machine ID and resolution
// events by domain name; the resulting partition invariants are what make
// sharding exact:
//
//   - every (machine, domain) edge lands in shard(machine), so a machine's
//     whole adjacency — and therefore its label — is shard-local;
//   - every (domain, address) pair lands in shard(domain), so per-shard
//     address deduplication equals global deduplication;
//   - per-shard edge deduplication equals global deduplication, so the
//     per-shard fresh deltas drained by Builder.DrainFresh compose into
//     one exact global delta with no cross-shard duplicates.
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// ShardedSnapshot is a consistent point-in-time view of a sharded graph
// backend: the merged graph every consumer (classify sessions, the prune
// plan, the score cache, both detectors) runs on unchanged, plus the
// per-shard snapshots it was composed from for scatter-gather reads and
// per-shard introspection.
type ShardedSnapshot struct {
	merged *Graph
	shards []*Graph
}

// NewShardedSnapshot wraps a merged graph and the per-shard snapshots it
// was composed from.
func NewShardedSnapshot(merged *Graph, shards []*Graph) *ShardedSnapshot {
	return &ShardedSnapshot{merged: merged, shards: shards}
}

// Merged returns the merged view; it is a plain *Graph carrying the exact
// union of the per-shard deltas.
func (s *ShardedSnapshot) Merged() *Graph { return s.merged }

// NumShards reports how many shard snapshots back the view.
func (s *ShardedSnapshot) NumShards() int { return len(s.shards) }

// Shard returns shard i's snapshot.
func (s *ShardedSnapshot) Shard(i int) *Graph { return s.shards[i] }

// MachineFractions computes the F1 machine-behavior numerators scatter-
// gather style: each shard contributes the infected/unknown counts of its
// own machines querying the domain, and the per-shard tallies sum into
// the global fractions. Because machines partition disjointly across
// shards and a machine's label derives only from its shard-local
// adjacency, the composition is exact:
//
//	infected_fraction = (Σ_s infected_s) / (Σ_s n_s)
//
// Every shard snapshot must be labeled (ApplyLabels) with the same label
// sources as the merged view. This is the composition the equivalence
// tests pin against the merged graph's own F1 features; the production
// classify path reads Merged() directly.
func (s *ShardedSnapshot) MachineFractions(domain string) (infected, unknown float64, total int) {
	var inf, unk int
	for _, g := range s.shards {
		d, ok := g.DomainIndex(domain)
		if !ok {
			continue
		}
		machines := g.MachinesOf(d)
		total += len(machines)
		for _, m := range machines {
			switch g.MachineLabelHiding(m, d) {
			case LabelMalware:
				inf++
			case LabelUnknown:
				unk++
			}
		}
	}
	if total > 0 {
		infected = float64(inf) / float64(total)
		unknown = float64(unk) / float64(total)
	}
	return infected, unknown, total
}

// DomainIPs gathers the domain's resolved addresses across shards. The
// resolution routing invariant means at most one shard owns a domain's
// address set, so no cross-shard merge or deduplication is needed — the
// first shard that knows any address for the domain is authoritative.
func (s *ShardedSnapshot) DomainIPs(domain string) []dnsutil.IPv4 {
	for _, g := range s.shards {
		if d, ok := g.DomainIndex(domain); ok {
			if ips := g.DomainIPs(d); len(ips) > 0 {
				return ips
			}
		}
	}
	return nil
}
