package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"segugio/internal/dnsutil"
)

// benchEvent is one pre-generated observation, so the benchmarks measure
// graph work rather than fmt.Sprintf.
type benchEvent struct {
	machine, domain string
	ip              dnsutil.IPv4
	hasIP           bool
}

// benchEvents generates a reproducible event stream with a realistic
// shape: machine and domain popularity are skewed, and a seventh of the
// events carry a resolution.
func benchEvents(n int) []benchEvent {
	rng := rand.New(rand.NewSource(42))
	events := make([]benchEvent, n)
	for i := range events {
		m := rng.Intn(4000)
		d := rng.Intn(15000)
		events[i] = benchEvent{
			machine: fmt.Sprintf("m%05d", m),
			domain:  fmt.Sprintf("h%d.zone%d.example.com", d, d%700),
		}
		if i%7 == 0 {
			events[i].ip = dnsutil.IPv4(rng.Uint32())
			events[i].hasIP = true
		}
	}
	return events
}

func feed(b *Builder, events []benchEvent) {
	for _, e := range events {
		b.AddQuery(e.machine, e.domain)
		if e.hasIP {
			b.AddResolution(e.domain, e.ip)
		}
	}
}

const (
	benchGraphEvents = 100_000
	benchBatch       = 32
)

// BenchmarkSnapshotIncremental measures the amortized cost the daemon
// actually pays: one snapshot after a small batch of appends, against a
// large established graph. Compare with BenchmarkSnapshotFullRebuild at
// the same graph size — the incremental path must be orders of magnitude
// cheaper in both ns/op and B/op.
func BenchmarkSnapshotIncremental(b *testing.B) {
	events := benchEvents(benchGraphEvents + (b.N+1)*benchBatch)
	builder := NewBuilder("bench", 1, dnsutil.DefaultSuffixList())
	feed(builder, events[:benchGraphEvents])
	builder.Snapshot()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := benchGraphEvents + i*benchBatch
		feed(builder, events[lo:lo+benchBatch])
		builder.Snapshot()
	}
}

// BenchmarkSnapshotFullRebuild is the pre-incremental baseline: every
// snapshot reconstructs all per-snapshot state from scratch at the same
// graph size (full sort of the edge multiset, fresh name and index
// copies, CSR from zero) — the cost the seed implementation paid on
// every Snapshot call.
func BenchmarkSnapshotFullRebuild(b *testing.B) {
	events := benchEvents(benchGraphEvents + benchBatch)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := NewBuilder("bench", 1, dnsutil.DefaultSuffixList())
		feed(builder, events)
		builder.Build()
	}
}

// BenchmarkSnapshotIdle measures the no-change fast path: a snapshot
// with nothing pending should reuse the frozen previous snapshot state.
func BenchmarkSnapshotIdle(b *testing.B) {
	builder := NewBuilder("bench", 1, dnsutil.DefaultSuffixList())
	feed(builder, benchEvents(benchGraphEvents))
	builder.Snapshot()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Snapshot()
	}
}

// BenchmarkAddResolutionManyIPs exercises the per-domain IP dedup on a
// domain accumulating many distinct addresses — linear scans below the
// threshold, a hash set beyond it.
func BenchmarkAddResolutionManyIPs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		builder := NewBuilder("bench", 1, dnsutil.DefaultSuffixList())
		for ip := uint32(0); ip < 2048; ip++ {
			builder.AddResolution("fluxy.example.com", dnsutil.IPv4(ip))
		}
	}
}
