// Package health is segugiod's overload state machine. Every pipeline
// stage feeds named signals (ingest queue depth, WAL fsync latency,
// classify-pass deadline overruns, memory watermark) into a Tracker;
// the daemon's overall state is the worst live signal, ordered
//
//	healthy → degraded → overloaded
//
// Signals are TTL-held: a hot path reports pressure once (with a decay
// window) and never has to report recovery — when the pressure stops
// being re-asserted the signal expires and the state relaxes on the
// next read. That keeps the fast paths free of clear-on-success
// bookkeeping and makes recovery automatic. Sticky signals (no TTL)
// exist for conditions with an explicit all-clear, e.g. the classify
// watchdog clearing after a pass completes inside its deadline.
//
// The Tracker records every state transition (bounded history) so the
// daemon can audit them, and exposes the current state for /healthz,
// /readyz, the segugiod_health_state gauge, and the shed/admission
// policies that act only under pressure.
package health

import (
	"sync"
	"time"
)

// State is one of the three daemon health states, ordered by severity.
type State int32

const (
	// Healthy: every stage within its budget.
	Healthy State = iota
	// Degraded: some stage is over budget (slow fsyncs, classify passes
	// blowing their deadline, memory above the soft watermark) but the
	// daemon is keeping up. Serving continues; operators should look.
	Degraded
	// Overloaded: a stage can no longer keep up (ingest queues full,
	// memory above the hard watermark). Shedding and admission-control
	// policies that are armed only under pressure engage in this state.
	Overloaded
)

// String renders the state for /healthz and logs.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Overloaded:
		return "overloaded"
	default:
		return "unknown"
	}
}

// Transition is one recorded state change, attributed to the signal
// whose arrival (or expiry) caused it.
type Transition struct {
	Time   time.Time `json:"ts"`
	From   string    `json:"from"`
	To     string    `json:"to"`
	Signal string    `json:"signal"`
	Reason string    `json:"reason,omitempty"`
}

// Signal is a named pressure report with its current severity, the
// human-readable reason it was last raised, and (for TTL-held signals)
// when it decays.
type Signal struct {
	Name    string    `json:"name"`
	State   string    `json:"state"`
	Reason  string    `json:"reason,omitempty"`
	Expires time.Time `json:"expires,omitempty"`
}

type signal struct {
	state   State
	reason  string
	expires time.Time // zero: sticky until Clear
}

// Config parameterizes a Tracker. The zero value is usable.
type Config struct {
	// HistorySize bounds the transition ring (default 64).
	HistorySize int
	// OnTransition, when set, is called (outside the tracker lock) for
	// every state change — the daemon wires it to the audit trail.
	OnTransition func(tr Transition)
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Tracker aggregates signals into the daemon state. All methods are
// safe for concurrent use.
type Tracker struct {
	cfg Config

	mu      sync.Mutex
	signals map[string]signal
	state   State
	history []Transition
}

// New builds a Tracker in the Healthy state with no signals.
func New(cfg Config) *Tracker {
	if cfg.HistorySize <= 0 {
		cfg.HistorySize = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Tracker{cfg: cfg, signals: make(map[string]signal)}
}

func (t *Tracker) now() time.Time { return t.cfg.Now() }

// Set raises (or lowers) a sticky signal: it holds until Clear or a
// later Set. Setting Healthy is equivalent to Clear.
func (t *Tracker) Set(name string, s State, reason string) {
	t.SetFor(name, s, reason, 0)
}

// SetFor raises a signal that decays back to Healthy after ttl unless
// re-asserted — the idiom for hot-path pressure reports, which never
// have to report recovery. ttl <= 0 makes the signal sticky.
func (t *Tracker) SetFor(name string, s State, reason string, ttl time.Duration) {
	t.mu.Lock()
	if s == Healthy {
		delete(t.signals, name)
	} else {
		sig := signal{state: s, reason: reason}
		if ttl > 0 {
			sig.expires = t.now().Add(ttl)
		}
		t.signals[name] = sig
	}
	trs := t.recomputeLocked(name, reason)
	t.mu.Unlock()
	t.notify(trs)
}

// Clear removes a signal; the state relaxes if it was the worst one.
func (t *Tracker) Clear(name string) {
	t.mu.Lock()
	_, had := t.signals[name]
	if had {
		delete(t.signals, name)
	}
	trs := t.recomputeLocked(name, "cleared")
	t.mu.Unlock()
	t.notify(trs)
}

// State returns the current aggregate state, expiring stale TTL
// signals first (expiry transitions are recorded like any other).
func (t *Tracker) State() State {
	t.mu.Lock()
	trs := t.recomputeLocked("", "")
	s := t.state
	t.mu.Unlock()
	t.notify(trs)
	return s
}

// Overloaded reports whether the aggregate state is Overloaded — the
// gate the shed policies check on their slow path.
func (t *Tracker) Overloaded() bool { return t.State() == Overloaded }

// Signals returns a snapshot of the live (unexpired) signals, for
// /healthz.
func (t *Tracker) Signals() []Signal {
	t.mu.Lock()
	trs := t.recomputeLocked("", "")
	out := make([]Signal, 0, len(t.signals))
	for name, sig := range t.signals {
		out = append(out, Signal{Name: name, State: sig.state.String(), Reason: sig.reason, Expires: sig.expires})
	}
	t.mu.Unlock()
	t.notify(trs)
	return out
}

// History returns the recorded transitions, oldest first.
func (t *Tracker) History() []Transition {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Transition(nil), t.history...)
}

// recomputeLocked expires stale signals, recomputes the aggregate, and
// returns any transitions to deliver after the lock is released.
// cause/reason attribute a transition triggered by an explicit
// Set/Clear; expiry-driven transitions are attributed to the signal
// that expired.
func (t *Tracker) recomputeLocked(cause, reason string) []Transition {
	now := t.now()
	expired := ""
	for name, sig := range t.signals {
		if !sig.expires.IsZero() && now.After(sig.expires) {
			delete(t.signals, name)
			expired = name
		}
	}
	next := Healthy
	for _, sig := range t.signals {
		if sig.state > next {
			next = sig.state
		}
	}
	if next == t.state {
		return nil
	}
	if cause == "" {
		cause, reason = expired, "signal expired"
	}
	tr := Transition{Time: now, From: t.state.String(), To: next.String(), Signal: cause, Reason: reason}
	t.state = next
	t.history = append(t.history, tr)
	if len(t.history) > t.cfg.HistorySize {
		t.history = t.history[len(t.history)-t.cfg.HistorySize:]
	}
	return []Transition{tr}
}

func (t *Tracker) notify(trs []Transition) {
	if t.cfg.OnTransition == nil {
		return
	}
	for _, tr := range trs {
		t.cfg.OnTransition(tr)
	}
}
