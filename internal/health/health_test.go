package health

import (
	"sync"
	"testing"
	"time"
)

func TestAggregateIsWorstSignal(t *testing.T) {
	tr := New(Config{})
	if got := tr.State(); got != Healthy {
		t.Fatalf("initial state = %v, want healthy", got)
	}
	tr.Set("wal_fsync", Degraded, "slow fsync")
	if got := tr.State(); got != Degraded {
		t.Fatalf("state = %v, want degraded", got)
	}
	tr.Set("ingest_queue", Overloaded, "queue full")
	if got := tr.State(); got != Overloaded {
		t.Fatalf("state = %v, want overloaded", got)
	}
	tr.Clear("ingest_queue")
	if got := tr.State(); got != Degraded {
		t.Fatalf("state after clear = %v, want degraded", got)
	}
	tr.Clear("wal_fsync")
	if got := tr.State(); got != Healthy {
		t.Fatalf("state after all clear = %v, want healthy", got)
	}
}

func TestTTLSignalDecays(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tr := New(Config{Now: clock})
	tr.SetFor("ingest_queue", Overloaded, "queue full", 2*time.Second)
	if got := tr.State(); got != Overloaded {
		t.Fatalf("state = %v, want overloaded", got)
	}
	mu.Lock()
	now = now.Add(3 * time.Second)
	mu.Unlock()
	if got := tr.State(); got != Healthy {
		t.Fatalf("state after ttl = %v, want healthy", got)
	}
	hist := tr.History()
	if len(hist) != 2 {
		t.Fatalf("history = %d transitions, want 2: %+v", len(hist), hist)
	}
	if hist[1].Reason != "signal expired" || hist[1].Signal != "ingest_queue" {
		t.Fatalf("expiry transition = %+v", hist[1])
	}
}

func TestReassertExtendsTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tr := New(Config{Now: clock})
	tr.SetFor("mem", Degraded, "above soft watermark", 2*time.Second)
	mu.Lock()
	now = now.Add(time.Second)
	mu.Unlock()
	tr.SetFor("mem", Degraded, "above soft watermark", 2*time.Second)
	mu.Lock()
	now = now.Add(1500 * time.Millisecond)
	mu.Unlock()
	if got := tr.State(); got != Degraded {
		t.Fatalf("state = %v, want degraded (ttl re-extended)", got)
	}
}

func TestTransitionsRecordedAndNotified(t *testing.T) {
	var notified []Transition
	tr := New(Config{OnTransition: func(x Transition) { notified = append(notified, x) }})
	tr.Set("a", Degraded, "r1")
	tr.Set("a", Degraded, "r1 again") // no state change: no transition
	tr.Set("b", Overloaded, "r2")
	tr.Clear("b")
	tr.Clear("a")
	want := [][2]string{
		{"healthy", "degraded"},
		{"degraded", "overloaded"},
		{"overloaded", "degraded"},
		{"degraded", "healthy"},
	}
	hist := tr.History()
	if len(hist) != len(want) || len(notified) != len(want) {
		t.Fatalf("got %d history / %d notified transitions, want %d", len(hist), len(notified), len(want))
	}
	for i, w := range want {
		if hist[i].From != w[0] || hist[i].To != w[1] {
			t.Fatalf("transition %d = %s→%s, want %s→%s", i, hist[i].From, hist[i].To, w[0], w[1])
		}
	}
}

func TestSetHealthyClears(t *testing.T) {
	tr := New(Config{})
	tr.Set("x", Overloaded, "pressure")
	tr.Set("x", Healthy, "recovered")
	if got := tr.State(); got != Healthy {
		t.Fatalf("state = %v, want healthy", got)
	}
	if sigs := tr.Signals(); len(sigs) != 0 {
		t.Fatalf("signals = %+v, want none", sigs)
	}
}

func TestHistoryBounded(t *testing.T) {
	tr := New(Config{HistorySize: 4})
	for i := 0; i < 10; i++ {
		tr.Set("x", Degraded, "up")
		tr.Clear("x")
	}
	if got := len(tr.History()); got != 4 {
		t.Fatalf("history len = %d, want 4", got)
	}
}

func TestConcurrentSignals(t *testing.T) {
	tr := New(Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := []string{"a", "b", "c", "d"}[i%4]
			for j := 0; j < 200; j++ {
				tr.SetFor(name, Degraded, "x", time.Millisecond)
				tr.State()
				tr.Signals()
				tr.Clear(name)
			}
		}(i)
	}
	wg.Wait()
	if got := tr.State(); got != Healthy {
		t.Fatalf("final state = %v, want healthy", got)
	}
}
