package ingest

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/logio"
	"segugio/internal/wal"
)

// binStream renders events as a segb1 binary stream.
func binStream(t *testing.T, events []logio.Event) []byte {
	t.Helper()
	var b bytes.Buffer
	enc := logio.NewEventEncoder(&b)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func binTestEvents(n int) []logio.Event {
	var events []logio.Event
	for i := 0; i < n; i++ {
		machine := fmt.Sprintf("m%03d", i%70)
		domain := fmt.Sprintf("h%d.zone%d.com", i%40, i%15)
		events = append(events, logio.Event{Kind: logio.EventQuery, Day: 3, Machine: machine, Domain: domain})
		if i%5 == 0 {
			ip := dnsutil.MakeIPv4(10, 0, byte(i%7), byte(i%90))
			events = append(events, logio.Event{Kind: logio.EventResolution, Day: 3, Domain: domain, IPs: []dnsutil.IPv4{ip}})
		}
	}
	return events
}

// TestConsumeBinaryMatchesText feeds the same fixture through the text
// and the auto-detected binary path; the resulting graphs must be
// identical.
func TestConsumeBinaryMatchesText(t *testing.T) {
	events := binTestEvents(3000)

	mt, _ := newMetrics()
	it := New(Config{Network: "net", StartDay: 3, Workers: 4, Metrics: mt})
	if err := it.Consume(strings.NewReader(stream(t, events))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "text events applied", func() bool {
		return mt.EventsIngested.Value() == int64(len(events))
	})
	want, _ := it.Snapshot()
	it.Shutdown()

	mb, _ := newMetrics()
	ib := New(Config{Network: "net", StartDay: 3, Workers: 4, Metrics: mb})
	if err := ib.Consume(bytes.NewReader(binStream(t, events))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "binary events applied", func() bool {
		return mb.EventsIngested.Value() == int64(len(events))
	})
	got, _ := ib.Snapshot()
	ib.Shutdown()

	if graphShape(got) != graphShape(want) {
		t.Fatalf("binary graph shape %v, want %v (text)", graphShape(got), graphShape(want))
	}
	for d := int32(0); int(d) < want.NumDomains(); d++ {
		name := want.DomainName(d)
		gd, ok := got.DomainIndex(name)
		if !ok {
			t.Fatalf("domain %q missing from binary-ingested graph", name)
		}
		if got.DomainDegree(gd) != want.DomainDegree(d) || len(got.DomainIPs(gd)) != len(want.DomainIPs(d)) {
			t.Fatalf("domain %q differs between text and binary ingest", name)
		}
	}
	if mb.ParseErrors.Value() != 0 || mb.EventsDropped.Value() != 0 {
		t.Fatalf("binary ingest: parse errors %d, dropped %d", mb.ParseErrors.Value(), mb.EventsDropped.Value())
	}
}

// TestConsumeBinaryMalformedFrame corrupts one mid-stream frame: its
// loss must be counted as a parse error while later frames keep
// flowing — a bad frame never wedges the source.
func TestConsumeBinaryMalformedFrame(t *testing.T) {
	// Two frames, second self-contained (fresh strings only), as in the
	// logio-level test.
	var b bytes.Buffer
	enc := logio.NewEventEncoder(&b)
	if err := enc.Encode(logio.Event{Kind: logio.EventQuery, Day: 3, Machine: "mA", Domain: "a.example.com"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	frame1End := b.Len()
	if err := enc.Encode(logio.Event{Kind: logio.EventQuery, Day: 3, Machine: "mB", Domain: "b.example.com"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	wire := b.Bytes()
	wire[frame1End-1] ^= 0xff // corrupt frame one's CRC trailer

	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 3, Workers: 1, Metrics: m})
	defer in.Shutdown()
	if err := in.Consume(bytes.NewReader(wire)); err != nil {
		t.Fatalf("a skippable frame must not abort Consume: %v", err)
	}
	waitFor(t, "surviving event applied", func() bool {
		return m.EventsIngested.Value() == 1
	})
	if m.ParseErrors.Value() != 1 {
		t.Fatalf("parse errors = %d, want 1", m.ParseErrors.Value())
	}
	g, _ := in.Snapshot()
	if _, ok := g.DomainIndex("b.example.com"); !ok {
		t.Fatal("frame after the corrupt one was not ingested")
	}
}

// TestConsumeBinaryTruncatedStream: a torn tail (dead writer) ends the
// source cleanly with the complete frames applied.
func TestConsumeBinaryTruncatedStream(t *testing.T) {
	events := binTestEvents(10000) // several frames, so a torn tail leaves complete ones
	wire := binStream(t, events)
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 3, Workers: 2, Metrics: m})
	defer in.Shutdown()
	if err := in.Consume(bytes.NewReader(wire[:len(wire)-7])); err != nil {
		t.Fatalf("torn tail must end the source cleanly: %v", err)
	}
	waitFor(t, "events applied", func() bool { return m.EventsIngested.Value() > 0 })
	if m.ParseErrors.Value() != 1 {
		t.Fatalf("parse errors = %d, want 1 for the torn tail", m.ParseErrors.Value())
	}
	if got := m.EventsIngested.Value(); got >= int64(len(events)) {
		t.Fatalf("ingested %d events from a truncated stream of %d", got, len(events))
	}
}

// TestDurableBinaryWAL runs the WAL-only crash recovery path with
// binary WAL records: events fed through the binary stream, appended to
// the WAL as self-contained segb1 payloads, and replayed after an
// unclean death.
func TestDurableBinaryWAL(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	cfg.BinaryWAL = true
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	evs := genDurableEvents(5, 1200)
	for i := 0; i < 40; i++ { // some resolutions so both opcodes hit the WAL
		evs = append(evs, logio.Event{Kind: logio.EventResolution, Day: 5,
			Domain: fmt.Sprintf("h%d.zone%d.net", i%29, i%11),
			IPs:    []dnsutil.IPv4{dnsutil.MakeIPv4(10, 9, byte(i), 1)}})
	}
	before := m.EventsIngested.Value()
	if err := in.Consume(bytes.NewReader(binStream(t, evs))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "events applied", func() bool {
		return m.EventsIngested.Value() == before+int64(len(evs))
	})
	want, _ := in.Snapshot()
	// Unclean death: no Shutdown, no checkpoint.

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	cfg2.BinaryWAL = true
	in2, info2, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if info2.ReplayedEvents != len(evs) {
		t.Fatalf("replayed %d events, want %d (replay errors %d)", info2.ReplayedEvents, len(evs), info2.ReplayErrors)
	}
	if info2.ReplayErrors != 0 {
		t.Fatalf("replay errors = %d", info2.ReplayErrors)
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v", graphShape(got), graphShape(want))
	}
}

// TestDurableMixedFormatWAL: a WAL written partly with text records and
// partly with binary records (a restart that flipped the flag) must
// replay fully — the format is sniffed per record.
func TestDurableMixedFormatWAL(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	textEvs := genDurableEvents(5, 300)
	feed(t, in, m, textEvs)
	in.Shutdown()

	// Shutdown wrote a checkpoint, so reopen with BinaryWAL and append
	// events on top: the dirty WAL tail now holds binary records while
	// the checkpointed prefix came from text ones.
	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	cfg2.BinaryWAL = true
	in2, _, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	binEvs := genDurableEvents(5, 400)[100:] // overlapping machines, new volume
	before := m2.EventsIngested.Value()
	if err := in2.Consume(bytes.NewReader(binStream(t, binEvs))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "binary tail applied", func() bool {
		return m2.EventsIngested.Value() == before+int64(len(binEvs))
	})
	want, _ := in2.Snapshot()
	// Unclean death.

	m3, _ := newMetrics()
	cfg3, dc3 := durableCfg(dir, m3, newDurableMetrics())
	in3, info3, err := OpenDurable(cfg3, dc3) // replayer does not need the flag
	if err != nil {
		t.Fatal(err)
	}
	defer in3.Shutdown()
	if info3.ReplayedEvents != len(binEvs) {
		t.Fatalf("replayed %d events from the binary tail, want %d (errors %d)",
			info3.ReplayedEvents, len(binEvs), info3.ReplayErrors)
	}
	got, _ := in3.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v", graphShape(got), graphShape(want))
	}
}

// TestBinaryWALRecordFitsCap: the WAL flush threshold plus one maximal
// binary frame must stay under the WAL's record-size cap, or a flush
// could build an unappendable record.
func TestBinaryWALRecordFitsCap(t *testing.T) {
	if walFlushBytes+logio.MaxFrameBytes >= wal.MaxRecordBytes {
		t.Fatalf("walFlushBytes(%d) + MaxFrameBytes(%d) >= wal.MaxRecordBytes(%d)",
			walFlushBytes, logio.MaxFrameBytes, wal.MaxRecordBytes)
	}
}
