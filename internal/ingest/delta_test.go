package ingest

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"segugio/internal/graph"
)

func TestSnapshotSinceDeltas(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	defer in.Shutdown()

	if err := in.Consume(strings.NewReader("q\t1\tm1\ta.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first event", func() bool { return m.EventsIngested.Value() == 1 })

	// The first snapshot of a builder has no baseline: any span reaching
	// back before it is inexact.
	_, v1, delta := in.SnapshotSince(0)
	if delta.Exact {
		t.Fatal("span across the first snapshot must be inexact")
	}
	// Asking at the current version is an exact empty delta.
	if _, _, d := in.SnapshotSince(v1); !d.Exact || len(d.Domains) != 0 {
		t.Fatalf("same-version delta = %+v, want exact empty", d)
	}

	// One new observation: the delta names exactly the touched domain.
	if err := in.Consume(strings.NewReader("q\t1\tm2\tb.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second event", func() bool { return m.EventsIngested.Value() == 2 })
	_, v2, delta := in.SnapshotSince(v1)
	if !delta.Exact || len(delta.Domains) != 1 || delta.Domains[0] != "b.example.com" {
		t.Fatalf("delta = %+v, want exactly [b.example.com]", delta)
	}

	// Spans accumulate across intermediate snapshots: ingest two batches
	// with a snapshot between, then ask from v2 — both batches' domains
	// must be reported.
	if err := in.Consume(strings.NewReader("q\t1\tm1\tc.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "third event", func() bool { return m.EventsIngested.Value() == 3 })
	in.Snapshot()
	if err := in.Consume(strings.NewReader("r\t1\td.example.com\t10.0.0.1\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fourth event", func() bool { return m.EventsIngested.Value() == 4 })
	_, _, delta = in.SnapshotSince(v2)
	if !delta.Exact {
		t.Fatalf("multi-step delta inexact: %+v", delta)
	}
	got := map[string]bool{}
	for _, d := range delta.Domains {
		got[d] = true
	}
	// m1 gained an edge, so every domain m1 queries is dirty too.
	for _, want := range []string{"a.example.com", "c.example.com", "d.example.com"} {
		if !got[want] {
			t.Fatalf("delta %v missing %s", delta.Domains, want)
		}
	}
	if got["b.example.com"] {
		t.Fatalf("delta %v over-reports untouched b.example.com", delta.Domains)
	}
}

func TestSnapshotSinceRotationIsInexact(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	defer in.Shutdown()

	if err := in.Consume(strings.NewReader("q\t1\tm1\ta.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "day-1 event", func() bool { return m.EventsIngested.Value() == 1 })
	_, v1, _ := in.SnapshotSince(0)

	// Crossing a day boundary rotates the epoch; per-domain deltas from
	// the old day are meaningless and the span must degrade to inexact.
	if err := in.Consume(strings.NewReader("q\t2\tm1\tb.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rotation", func() bool { return m.Rotations.Value() == 1 })
	g, _, delta := in.SnapshotSince(v1)
	if delta.Exact {
		t.Fatalf("delta across rotation = %+v, want inexact", delta)
	}
	if g.Day() != 2 {
		t.Fatalf("day = %d, want 2", g.Day())
	}
}

// TestConcurrentIngestAndClassify is the -race check that streaming
// appends never mutate a published snapshot: one goroutine ingests
// continuously while another loops Snapshot + a classification-shaped
// read pass (labels, adjacency walks), and a snapshot captured early
// must look identical at the end.
func TestConcurrentIngestAndClassify(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{
		Network: "net", StartDay: 1, Workers: 4, QueueDepth: 1 << 14, Metrics: m,
		PrepareSnapshot: func(g *graph.Graph) {
			g.ApplyLabels(graph.LabelSources{AsOf: g.Day()})
		},
	})
	defer in.Shutdown()

	const total = 20000
	lines := 0
	var seed, rest strings.Builder
	for i := 0; i < total; i++ {
		out := &rest
		if i < total/10 {
			out = &seed
		}
		fmt.Fprintf(out, "q\t1\tm%03d\th%d.zone%d.example.com\n", i%80, i%500, i%25)
		lines++
		if i%7 == 0 {
			fmt.Fprintf(out, "r\t1\th%d.zone%d.example.com\t10.%d.%d.%d\n", i%500, i%25, i%200, i%251, i%249)
			lines++
		}
	}

	// Seed enough state for a meaningful early snapshot.
	if err := in.Consume(strings.NewReader(seed.String())); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "seed applied", func() bool { return m.EventsIngested.Value() > 100 })
	early, earlyVer := in.Snapshot()
	earlyMachines, earlyDomains, earlyEdges := early.NumMachines(), early.NumDomains(), early.NumEdges()
	earlyDegrees := make([]int, earlyDomains)
	for d := range earlyDegrees {
		earlyDegrees[d] = early.DomainDegree(int32(d))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := in.Consume(strings.NewReader(rest.String())); err != nil {
			t.Error(err)
		}
		stop.Store(true)
	}()
	go func() {
		defer wg.Done()
		for !stop.Load() {
			g, _ := in.Snapshot()
			if !g.Labeled() {
				t.Error("snapshot not labeled")
				return
			}
			// Classification-shaped read load: walk both adjacency sides
			// and the per-domain annotations of the newest snapshot.
			sum := 0
			for d := int32(0); int(d) < g.NumDomains(); d++ {
				sum += len(g.MachinesOf(d)) + len(g.DomainIPs(d))
				_ = g.DomainLabel(d)
			}
			for mm := int32(0); int(mm) < g.NumMachines(); mm++ {
				sum += len(g.DomainsOf(mm))
			}
			_ = sum
		}
	}()
	wg.Wait()
	waitFor(t, "all events applied or dropped", func() bool {
		return m.EventsIngested.Value()+m.EventsDropped.Value() == int64(lines)
	})

	// The early snapshot must be byte-for-byte what it was: later appends
	// land in the builder, never in published graphs.
	if early.NumMachines() != earlyMachines || early.NumDomains() != earlyDomains || early.NumEdges() != earlyEdges {
		t.Fatalf("early snapshot mutated: (%d,%d,%d) != (%d,%d,%d)",
			early.NumMachines(), early.NumDomains(), early.NumEdges(),
			earlyMachines, earlyDomains, earlyEdges)
	}
	for d := range earlyDegrees {
		if early.DomainDegree(int32(d)) != earlyDegrees[d] {
			t.Fatalf("early snapshot domain %d degree changed: %d != %d",
				d, early.DomainDegree(int32(d)), earlyDegrees[d])
		}
	}
	final, finalVer := in.Snapshot()
	if finalVer == earlyVer {
		t.Fatal("version did not advance")
	}
	if final.NumEdges() < earlyEdges {
		t.Fatalf("final snapshot lost edges: %d < %d", final.NumEdges(), earlyEdges)
	}
}
