package ingest

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"segugio/internal/core"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/logio"
	"segugio/internal/metrics"
	"segugio/internal/wal"
)

// Durability layer: OpenDurable wraps New with a write-ahead log and
// periodic checkpoints so an unclean death loses at most the WAL's
// unsynced suffix instead of the whole day's graph.
//
// Durability is sharded the same way the live graph is: each graph shard
// owns a WAL stripe and an A/B checkpoint pair, and a MANIFEST.json at
// the state-dir root records the shard count and the current layout
// generation. The invariant the layer maintains is per shard and simple,
// because stripe appends happen inside shardApply's critical section:
// under a shard's lock, its builder state and its WAL end position
// always agree. A checkpoint round therefore captures each shard's
// (snapshot, WAL position) atomically; recovery loads every shard's
// newest intact checkpoint and replays only that stripe's records at or
// after its position. Corrupt trailing stripe records are truncated by
// wal.Open; a corrupt or torn shard checkpoint falls back to its
// previous generation, which still works because stripe segments are
// only reclaimed up to the position of the checkpoint one generation
// back.
//
// When -graph-shards changes across a restart (or a legacy
// single-builder state directory is found), recovery rehashes: the old
// partition is loaded in full — checkpoints plus WAL replay — then every
// edge and resolution is re-routed through graph.ShardOf into the new
// partition, and the redistributed state is written as a fresh layout
// generation (new checkpoints, empty stripes) before the old one is
// deleted. The manifest flips to the new generation atomically, so a
// crash mid-migration simply re-runs it; generation directories the
// manifest does not name are orphans and are swept at the next open.

// State-directory layout names. Legacy (pre-sharding) layouts keep a
// single checkpoint pair and WAL at the root; sharded layouts live in a
// per-generation directory named by the manifest.
const (
	manifestFile       = "MANIFEST.json"
	checkpointFile     = "checkpoint.gob"      // legacy layout
	checkpointPrevFile = "checkpoint.prev.gob" // legacy layout
	walDirName         = "wal"                 // legacy layout
	genDirPrefix       = "gen-"
)

// CheckpointFormatVersion is the current checkpoint file format. The
// per-shard files of the sharded layout carry the same format as the
// legacy single checkpoint; the manifest, not the checkpoint, describes
// the partition.
const CheckpointFormatVersion = 1

// ManifestFormatVersion is the current MANIFEST.json format.
const ManifestFormatVersion = 1

// ErrNotDurable is returned by Checkpoint on an ingester built with New
// instead of OpenDurable.
var ErrNotDurable = errors.New("ingest: ingester has no durability layer")

var checkpointCRC = crc32.MakeTable(crc32.Castagnoli)

type checkpointWire struct {
	Version      int
	GraphVersion uint64
	Day          int
	WALSegment   uint64
	WALOffset    int64
	// CRC is the Castagnoli checksum of Snapshot; gob's self-describing
	// framing catches structural damage, the CRC catches flipped bits
	// inside the opaque snapshot bytes.
	CRC      uint32
	Snapshot []byte
}

// manifestWire is MANIFEST.json: which generation directory is live and
// how many shards it was written with.
type manifestWire struct {
	Format int
	Shards int
	Gen    uint64
}

func genDirName(gen uint64) string {
	return fmt.Sprintf("%s%06d", genDirPrefix, gen)
}

func shardCheckpointFile(s int) string {
	return fmt.Sprintf("checkpoint-%04d.gob", s)
}

func shardCheckpointPrevFile(s int) string {
	return fmt.Sprintf("checkpoint-%04d.prev.gob", s)
}

func shardWALDir(s int) string {
	return fmt.Sprintf("wal-%04d", s)
}

// DurableMetrics bundles the durability layer's instrumentation. Any
// field may be nil.
type DurableMetrics struct {
	// WAL hooks are passed through to every write-ahead log stripe.
	WAL wal.Metrics
	// ReplayedEvents counts events re-applied from the WAL at startup.
	ReplayedEvents *metrics.Counter
	// ReplayErrors counts CRC-intact WAL records skipped during recovery
	// because their contents did not parse (version skew or a bug).
	ReplayErrors *metrics.Counter
	// CheckpointFallbacks counts shard recoveries that had to discard the
	// newest checkpoint and use the previous generation.
	CheckpointFallbacks *metrics.Counter
	// Checkpoints / CheckpointFailures count checkpoint rounds (one round
	// persists every shard).
	Checkpoints        *metrics.Counter
	CheckpointFailures *metrics.Counter
	// LastCheckpointUnix is the wall-clock second of the newest durable
	// checkpoint round.
	LastCheckpointUnix *metrics.Gauge
}

// DurableConfig parameterizes the durability layer.
type DurableConfig struct {
	// Dir is the state directory: MANIFEST.json lives at its root, the
	// per-shard checkpoints and WAL stripes under the generation
	// directory it names. Required.
	Dir string
	// CheckpointEvery is the checkpoint interval (default 30s).
	CheckpointEvery time.Duration
	// SyncInterval bounds how stale the WAL's durable prefix may be
	// (default 1s): a background loop fsyncs at this cadence on top of
	// the count-based batching.
	SyncInterval time.Duration
	// SyncEvery fsyncs after this many WAL records (default 256; 1 makes
	// every applied batch durable before the next is accepted).
	SyncEvery int
	// SegmentBytes sizes WAL segment files (default 8 MiB).
	SegmentBytes int64
	// Metrics hooks; may be nil.
	Metrics *DurableMetrics
	// WALHooks are passed through to wal.Options.Hooks — the fault
	// injection seam the chaos harness uses to simulate ENOSPC and slow
	// fsyncs. Production configs leave it nil.
	WALHooks *wal.Hooks

	m       DurableMetrics // resolved copy
	genDir  string         // current generation directory
	lastPos []wal.Pos      // per-shard position of the previous checkpoint generation
}

// RecoveryInfo reports what startup recovery found and rebuilt.
type RecoveryInfo struct {
	// CheckpointLoaded is true when any shard checkpoint decoded
	// successfully.
	CheckpointLoaded bool
	// UsedFallback is true when at least one shard's newest checkpoint
	// was corrupt and its previous generation was used instead.
	UsedFallback bool
	// Rehashed is true when the on-disk shard count differed from the
	// requested one (or a legacy layout was found) and the state was
	// redistributed through graph.ShardOf.
	Rehashed bool
	// Shards is the shard count the recovered ingester runs with.
	Shards int
	// ReplayedEvents is how many events were re-applied from the WAL.
	ReplayedEvents int
	// ReplayErrors is how many intact WAL records failed to parse and
	// were skipped.
	ReplayErrors int
	// Day, Machines, Domains describe the recovered live graph.
	Day      int
	Machines int
	Domains  int
	// WALStart is the position shard 0's replay began from.
	WALStart wal.Pos
}

func (ri *RecoveryInfo) String() string {
	if ri == nil {
		return "no recovery"
	}
	src := "fresh start"
	if ri.CheckpointLoaded {
		src = "checkpoint"
		if ri.UsedFallback {
			src = "fallback checkpoint"
		}
	}
	extra := ""
	if ri.Rehashed {
		extra = fmt.Sprintf(" (rehashed to %d shards)", ri.Shards)
	}
	return fmt.Sprintf("%s + %d replayed events (%d unparseable) -> day %d, %d machines, %d domains%s",
		src, ri.ReplayedEvents, ri.ReplayErrors, ri.Day, ri.Machines, ri.Domains, extra)
}

// OpenDurable builds an Ingester whose state survives crashes: it
// recovers every shard's newest intact checkpoint from dc.Dir, replays
// each WAL stripe's tail on top, and returns an ingester that logs every
// applied event to its shard's stripe and checkpoints periodically. If
// the on-disk shard count differs from cfg.GraphShards the recovered
// state is rehashed into the requested partition first. The
// RecoveryInfo describes what was rebuilt (a fresh start on an empty
// directory is not an error).
func OpenDurable(cfg Config, dc DurableConfig) (*Ingester, *RecoveryInfo, error) {
	if dc.Dir == "" {
		return nil, nil, errors.New("ingest: DurableConfig.Dir is required")
	}
	if dc.CheckpointEvery <= 0 {
		dc.CheckpointEvery = 30 * time.Second
	}
	if dc.SyncInterval <= 0 {
		dc.SyncInterval = time.Second
	}
	if dc.Metrics != nil {
		dc.m = *dc.Metrics
	}
	if cfg.Suffixes == nil {
		cfg.Suffixes = dnsutil.DefaultSuffixList()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.GraphShards <= 0 {
		cfg.GraphShards = cfg.Workers
	}
	if err := os.MkdirAll(dc.Dir, 0o755); err != nil {
		return nil, nil, err
	}

	info := &RecoveryInfo{Shards: cfg.GraphShards}
	man, err := readManifest(dc.Dir)
	if err != nil {
		return nil, nil, err
	}
	// Sweep generation directories the manifest does not name: they are
	// leftovers of a migration that crashed before (orphan new gen) or
	// after (orphan old gen) the manifest flipped. With no manifest at
	// all, every generation directory is such an orphan.
	if man != nil {
		sweepOrphanGens(dc.Dir, man.Gen)
	} else {
		sweepOrphanGens(dc.Dir, 0)
	}

	var (
		builders []*graph.Builder
		logs     []*wal.Log
		version  uint64
	)
	switch {
	case man == nil && !legacyLayoutPresent(dc.Dir):
		// Fresh state directory: create generation 1 directly at the
		// requested shard count.
		builders, logs, err = createGeneration(&dc, cfg, nil, 1, 0)
		if err != nil {
			return nil, nil, err
		}
	case man == nil:
		// Legacy single-builder layout: load it, then rehash into a
		// first-generation sharded layout.
		b, v := loadLegacy(&dc, cfg, info)
		old := []*graph.Builder{b}
		builders, logs, err = createGeneration(&dc, cfg, old, 1, v)
		if err != nil {
			return nil, nil, err
		}
		version = v
		info.Rehashed = true
		removeLegacyLayout(dc.Dir)
	default:
		old, v, pos := loadGeneration(&dc, cfg, man, info)
		version = v
		if man.Shards == cfg.GraphShards {
			// Same partition: reopen the stripes in place and carry on.
			dc.genDir = filepath.Join(dc.Dir, genDirName(man.Gen))
			logs = make([]*wal.Log, man.Shards)
			dc.lastPos = pos
			for s := range logs {
				logs[s], err = openShardWAL(&dc, s)
				if err != nil {
					closeAll(logs[:s])
					return nil, nil, err
				}
			}
			// Replay happened during loadGeneration (it needs the stripe
			// open); loadGeneration already closed its read handles, so
			// reuse its builders.
			builders = old
		} else {
			// Shard count changed: redistribute the loaded state through
			// graph.ShardOf into a fresh generation.
			builders, logs, err = createGeneration(&dc, cfg, old, man.Gen+1, v)
			if err != nil {
				return nil, nil, err
			}
			info.Rehashed = true
			os.RemoveAll(filepath.Join(dc.Dir, genDirName(man.Gen)))
		}
		if len(pos) > 0 {
			info.WALStart = pos[0]
		}
	}

	alignShardDays(builders, cfg)
	info.Day = builders[0].Day()
	for _, b := range builders {
		info.Machines += b.NumMachines()
	}
	info.Domains = countDistinctDomains(builders)

	cfg.restoredShards = builders
	cfg.restoredVersion = version
	cfg.walShards = logs
	cfg.durable = &dc
	in := New(cfg)
	return in, info, nil
}

// readManifest loads MANIFEST.json; a missing file returns (nil, nil).
func readManifest(dir string) (*manifestWire, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var man manifestWire
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("ingest: parse %s: %w", manifestFile, err)
	}
	if man.Format != ManifestFormatVersion {
		return nil, fmt.Errorf("ingest: manifest format %d, this build reads %d", man.Format, ManifestFormatVersion)
	}
	if man.Shards <= 0 || man.Gen == 0 {
		return nil, fmt.Errorf("ingest: manifest names %d shards, generation %d", man.Shards, man.Gen)
	}
	return &man, nil
}

// writeManifest atomically publishes the manifest — the commit point of
// a layout migration.
func writeManifest(dir string, man manifestWire) error {
	return core.WriteAtomic(filepath.Join(dir, manifestFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(man)
	})
}

// sweepOrphanGens deletes generation directories other than the live
// one. Best effort: an undeletable orphan only wastes disk.
func sweepOrphanGens(dir string, live uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keep := genDirName(live)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() && len(name) > len(genDirPrefix) && name[:len(genDirPrefix)] == genDirPrefix && name != keep {
			os.RemoveAll(filepath.Join(dir, name))
		}
	}
}

// legacyLayoutPresent reports whether dir holds a pre-sharding state
// layout (single checkpoint pair and WAL at the root, no manifest).
func legacyLayoutPresent(dir string) bool {
	for _, name := range []string{checkpointFile, checkpointPrevFile, walDirName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

func removeLegacyLayout(dir string) {
	os.Remove(filepath.Join(dir, checkpointFile))
	os.Remove(filepath.Join(dir, checkpointPrevFile))
	os.RemoveAll(filepath.Join(dir, walDirName))
}

// loadLegacy recovers a pre-sharding layout: one checkpoint pair plus
// one WAL, replayed in place. The WAL is opened read-replay-close; the
// migration that follows writes fresh stripes.
func loadLegacy(dc *DurableConfig, cfg Config, info *RecoveryInfo) (*graph.Builder, uint64) {
	b, version, pos := loadCheckpointPair(
		filepath.Join(dc.Dir, checkpointFile),
		filepath.Join(dc.Dir, checkpointPrevFile),
		dc, cfg, info)
	if b == nil {
		b = graph.NewBuilder(cfg.Network, cfg.StartDay, cfg.Suffixes)
	}
	l, err := wal.Open(filepath.Join(dc.Dir, walDirName), wal.Options{
		SegmentBytes: dc.SegmentBytes,
		SyncEvery:    dc.SyncEvery,
		Metrics:      &dc.m.WAL,
		Hooks:        dc.WALHooks,
	})
	if err != nil {
		return b, version
	}
	b, replayed := replayShardWAL(l, pos, b, cfg, dc, info)
	l.Close()
	info.WALStart = pos
	return b, version + uint64(replayed)
}

// loadGeneration recovers every shard of the manifest's generation:
// checkpoint (with A/B fallback) plus stripe replay. It returns the
// per-shard builders, the restored graph version (max checkpoint version
// plus total replayed events — monotonicity is all the version
// promises), and each stripe's replay start position.
func loadGeneration(dc *DurableConfig, cfg Config, man *manifestWire, info *RecoveryInfo) ([]*graph.Builder, uint64, []wal.Pos) {
	genDir := filepath.Join(dc.Dir, genDirName(man.Gen))
	builders := make([]*graph.Builder, man.Shards)
	positions := make([]wal.Pos, man.Shards)
	var maxVersion uint64
	totalReplayed := 0
	for s := 0; s < man.Shards; s++ {
		b, version, pos := loadCheckpointPair(
			filepath.Join(genDir, shardCheckpointFile(s)),
			filepath.Join(genDir, shardCheckpointPrevFile(s)),
			dc, cfg, info)
		if b == nil {
			b = graph.NewBuilder(cfg.Network, cfg.StartDay, cfg.Suffixes)
		}
		if version > maxVersion {
			maxVersion = version
		}
		l, err := wal.Open(filepath.Join(genDir, shardWALDir(s)), wal.Options{
			SegmentBytes: dc.SegmentBytes,
			SyncEvery:    dc.SyncEvery,
			Metrics:      &dc.m.WAL,
			Hooks:        dc.WALHooks,
		})
		if err == nil {
			var replayed int
			b, replayed = replayShardWAL(l, pos, b, cfg, dc, info)
			totalReplayed += replayed
			l.Close()
		}
		builders[s] = b
		positions[s] = pos
	}
	return builders, maxVersion + uint64(totalReplayed), positions
}

// loadCheckpointPair tries the current then the previous checkpoint
// file, returning the restored builder, its graph version, and the WAL
// replay position. A nil builder means fresh start for this shard.
func loadCheckpointPair(cur, prev string, dc *DurableConfig, cfg Config, info *RecoveryInfo) (*graph.Builder, uint64, wal.Pos) {
	b, version, pos, err := readCheckpoint(cur, cfg)
	if err == nil {
		info.CheckpointLoaded = true
		return b, version, pos
	}
	discarded := !errors.Is(err, os.ErrNotExist)
	if discarded {
		// The newest checkpoint existed but was torn or corrupt. Delete
		// it so the next checkpointOnce does not rotate a known-bad file
		// over the previous generation — that rename would destroy the
		// only proven-good checkpoint before the newly written current
		// one has ever been validated. Best effort: if the remove fails
		// the file simply stays and the old (weaker) behavior applies.
		inc(dc.m.CheckpointFallbacks)
		os.Remove(cur)
		info.UsedFallback = true
	}
	b, version, pos, err = readCheckpoint(prev, cfg)
	if err != nil {
		return nil, 0, wal.Pos{}
	}
	info.CheckpointLoaded = true
	return b, version, pos
}

// readCheckpoint decodes and validates one checkpoint file.
func readCheckpoint(path string, cfg Config) (*graph.Builder, uint64, wal.Pos, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, wal.Pos{}, err
	}
	defer f.Close()
	var wire checkpointWire
	if err := gob.NewDecoder(f).Decode(&wire); err != nil {
		return nil, 0, wal.Pos{}, fmt.Errorf("ingest: decode checkpoint %s: %w", path, err)
	}
	if wire.Version != CheckpointFormatVersion {
		return nil, 0, wal.Pos{}, fmt.Errorf("ingest: checkpoint %s: version %d, this build reads %d",
			path, wire.Version, CheckpointFormatVersion)
	}
	if crc32.Checksum(wire.Snapshot, checkpointCRC) != wire.CRC {
		return nil, 0, wal.Pos{}, fmt.Errorf("ingest: checkpoint %s: snapshot checksum mismatch", path)
	}
	b, err := graph.DecodeSnapshot(bytes.NewReader(wire.Snapshot), cfg.Suffixes)
	if err != nil {
		return nil, 0, wal.Pos{}, fmt.Errorf("ingest: checkpoint %s: %w", path, err)
	}
	return b, wire.GraphVersion, wal.Pos{Segment: wire.WALSegment, Offset: wire.WALOffset}, nil
}

// replayShardWAL re-applies every intact record of one stripe at or
// after pos to the shard's builder, honoring the same day-rotation and
// staleness rules as live ingestion. Rotation hooks are not re-fired for
// day boundaries found in the tail, which makes OnRotate delivery
// at-most-once across crashes: a rotating event is logged inside
// shardApply but the hook only runs after the locks are released, so a
// crash in that window durably records the rotation yet never delivers
// the finalized epoch on either side of the crash. Consumers needing
// exactly-once epoch handoff must persist their own handoff state.
// Records that fail to parse despite an intact CRC are counted and
// skipped.
func replayShardWAL(l *wal.Log, pos wal.Pos, b *graph.Builder, cfg Config, dc *DurableConfig, info *RecoveryInfo) (*graph.Builder, int) {
	day := b.Day()
	replayed := 0
	replayErr := l.Replay(pos, func(_ wal.Pos, payload []byte) error {
		apply := func(e logio.Event) error {
			if e.Day < day {
				return nil
			}
			if e.Day > day {
				b = graph.NewBuilder(cfg.Network, e.Day, cfg.Suffixes)
				day = e.Day
			}
			switch e.Kind {
			case logio.EventQuery:
				b.AddQuery(e.Machine, e.Domain)
				if cfg.Activity != nil {
					cfg.Activity.MarkDomain(e.Day, e.Domain)
					cfg.Activity.MarkE2LD(e.Day, cfg.Suffixes.E2LD(e.Domain))
				}
			case logio.EventResolution:
				for _, ip := range e.IPs {
					b.AddResolution(e.Domain, ip)
				}
			}
			replayed++
			info.ReplayedEvents++
			inc(dc.m.ReplayedEvents)
			return nil
		}
		// Records sniff their own format: binary WAL records are
		// self-contained segb1 streams (the record encoder's symbol
		// table resets per record), text records are event lines.
		var perr error
		if bytes.HasPrefix(payload, []byte(logio.BinaryMagic)) {
			perr = logio.ReadEventsBinary(bytes.NewReader(payload), apply, func(error) {
				info.ReplayErrors++
				inc(dc.m.ReplayErrors)
			})
		} else {
			perr = logio.ReadEvents(bytes.NewReader(payload), apply)
		}
		if perr != nil {
			info.ReplayErrors++
			inc(dc.m.ReplayErrors)
		}
		return nil
	})
	// Replay only fails on I/O errors; corruption stops it silently. An
	// I/O failure mid-replay still leaves a usable (shorter) prefix.
	if replayErr != nil {
		info.ReplayErrors++
		inc(dc.m.ReplayErrors)
	}
	return b, replayed
}

// alignShardDays moves every shard to the newest day any shard reached.
// Stripes replay independently, so a shard whose stripe ended before a
// day boundary can come back on an older day than its peers; its content
// belongs to an epoch the newer shards already finalized, so it restarts
// empty on the shared day — exactly what live rotation would have done.
func alignShardDays(builders []*graph.Builder, cfg Config) {
	maxDay := builders[0].Day()
	for _, b := range builders[1:] {
		if d := b.Day(); d > maxDay {
			maxDay = d
		}
	}
	for s, b := range builders {
		if b.Day() < maxDay {
			builders[s] = graph.NewBuilder(cfg.Network, maxDay, cfg.Suffixes)
		}
	}
}

// countDistinctDomains sizes the union of the shards' domain sets
// (domains overlap machine partitions, so the counts cannot be summed).
func countDistinctDomains(builders []*graph.Builder) int {
	if len(builders) == 1 {
		return builders[0].NumDomains()
	}
	seen := make(map[string]struct{})
	for _, b := range builders {
		for _, name := range b.DomainNamesSince(0) {
			seen[name] = struct{}{}
		}
	}
	return len(seen)
}

// openShardWAL opens one stripe of the current generation.
func openShardWAL(dc *DurableConfig, s int) (*wal.Log, error) {
	l, err := wal.Open(filepath.Join(dc.genDir, shardWALDir(s)), wal.Options{
		SegmentBytes: dc.SegmentBytes,
		SyncEvery:    dc.SyncEvery,
		Metrics:      &dc.m.WAL,
		Hooks:        dc.WALHooks,
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: open wal stripe %d: %w", s, err)
	}
	return l, nil
}

func closeAll(logs []*wal.Log) {
	for _, l := range logs {
		if l != nil {
			l.Close()
		}
	}
}

// createGeneration writes a new layout generation at cfg.GraphShards
// shards: old state (if any) is rehashed through graph.ShardOf into
// fresh builders, each shard gets an initial checkpoint and an empty WAL
// stripe, and the manifest flips to the new generation as the final,
// atomic commit step. A crash before the manifest write leaves the
// previous generation live and the half-built one an orphan for the next
// open to sweep.
func createGeneration(dc *DurableConfig, cfg Config, old []*graph.Builder, gen uint64, version uint64) ([]*graph.Builder, []*wal.Log, error) {
	dc.genDir = filepath.Join(dc.Dir, genDirName(gen))
	shards := cfg.GraphShards
	day := cfg.StartDay
	if len(old) > 0 {
		alignShardDays(old, cfg)
		day = old[0].Day()
	}
	builders := make([]*graph.Builder, shards)
	for s := range builders {
		builders[s] = graph.NewBuilder(cfg.Network, day, cfg.Suffixes)
		// The checkpoint snapshot below must not trim the fresh log: the
		// ingester's seed drain into the merged builder still needs it.
		builders[s].BeginDrain()
	}
	for _, ob := range old {
		// Rehash-on-replay: route every recovered edge by machine and
		// every resolution by domain, the same invariants live dispatch
		// uses. DrainFresh on a freshly decoded/replayed builder emits
		// its whole content.
		ob.DrainFresh(func(machineID, domain string) {
			builders[graph.ShardOf(machineID, shards)].AddQuery(machineID, domain)
		}, func(domain string, ip dnsutil.IPv4) {
			builders[graph.ShardOf(domain, shards)].AddResolution(domain, ip)
		})
	}
	if err := os.MkdirAll(dc.genDir, 0o755); err != nil {
		return nil, nil, err
	}
	logs := make([]*wal.Log, shards)
	dc.lastPos = make([]wal.Pos, shards)
	for s := range logs {
		l, err := openShardWAL(dc, s)
		if err != nil {
			closeAll(logs[:s])
			return nil, nil, err
		}
		logs[s] = l
		dc.lastPos[s] = l.End()
		if len(old) == 0 {
			// Fresh directory: nothing to persist, and writing an empty
			// checkpoint would make a later WAL-only recovery misreport
			// CheckpointLoaded.
			continue
		}
		// Persist the redistributed state before the manifest commits to
		// it: after the flip, the old generation's files are gone and
		// these checkpoints are the only copy.
		g := builders[s].Snapshot()
		if err := writeShardCheckpoint(dc, s, g, version, l.End()); err != nil {
			closeAll(logs[:s+1])
			return nil, nil, err
		}
	}
	if err := writeManifest(dc.Dir, manifestWire{Format: ManifestFormatVersion, Shards: shards, Gen: gen}); err != nil {
		closeAll(logs)
		return nil, nil, err
	}
	return builders, logs, nil
}

// writeShardCheckpoint encodes one shard's snapshot and A/B-rotates it
// into place.
func writeShardCheckpoint(dc *DurableConfig, s int, g *graph.Graph, version uint64, pos wal.Pos) error {
	var snap bytes.Buffer
	if err := graph.EncodeSnapshot(&snap, g); err != nil {
		return err
	}
	wire := checkpointWire{
		Version:      CheckpointFormatVersion,
		GraphVersion: version,
		Day:          g.Day(),
		WALSegment:   pos.Segment,
		WALOffset:    pos.Offset,
		CRC:          crc32.Checksum(snap.Bytes(), checkpointCRC),
		Snapshot:     snap.Bytes(),
	}
	cur := filepath.Join(dc.genDir, shardCheckpointFile(s))
	prev := filepath.Join(dc.genDir, shardCheckpointPrevFile(s))
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, prev); err != nil {
			return err
		}
	}
	return core.WriteAtomic(cur, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(wire)
	})
}

// Checkpoint durably persists every shard's graph and the stripe
// position it covers, then reclaims stripe segments older than the
// previous checkpoint generation. OpenDurable runs this periodically and
// at Shutdown; tests and operators may force one.
func (in *Ingester) Checkpoint() error {
	if in.cfg.durable == nil {
		return ErrNotDurable
	}
	return in.checkpoint(in.cfg.durable)
}

func (in *Ingester) checkpoint(dc *DurableConfig) error {
	// Serialize whole checkpoint rounds: the rename dance and lastPos
	// tracking assume one writer at a time (the periodic loop and a
	// forced Checkpoint may otherwise overlap).
	in.ckptMu.Lock()
	defer in.ckptMu.Unlock()
	err := in.checkpointOnce(dc)
	if err != nil {
		inc(dc.m.CheckpointFailures)
	} else {
		inc(dc.m.Checkpoints)
		if dc.m.LastCheckpointUnix != nil {
			dc.m.LastCheckpointUnix.SetInt(time.Now().Unix())
		}
	}
	return err
}

func (in *Ingester) checkpointOnce(dc *DurableConfig) error {
	// Each shard's builder snapshot and stripe position move together
	// under its lock — this is the whole per-shard consistency argument.
	// The epoch read lock pins one day across the round, so every shard
	// checkpoint in it belongs to the same epoch. Shard snapshots do not
	// consume the merged builder's dirty baseline, so — unlike the
	// pre-sharding code — no delta-ring entry is recorded here.
	type capture struct {
		g   *graph.Graph
		pos wal.Pos
	}
	in.epochMu.RLock()
	version := in.version.Load()
	caps := make([]capture, len(in.shards))
	for s, sh := range in.shards {
		sh.mu.Lock()
		caps[s] = capture{g: sh.builder.Snapshot(), pos: sh.wal.End()}
		sh.mu.Unlock()
	}
	in.epochMu.RUnlock()

	for s, sh := range in.shards {
		if err := sh.wal.Sync(); err != nil {
			return err
		}
		if err := writeShardCheckpoint(dc, s, caps[s].g, version, caps[s].pos); err != nil {
			return err
		}
		// Reclaim only up to the PREVIOUS generation's position: if this
		// checkpoint later turns out corrupt, the fallback file still has
		// every stripe record it needs.
		if _, err := sh.wal.TruncateBefore(dc.lastPos[s]); err != nil {
			return err
		}
		dc.lastPos[s] = caps[s].pos
	}
	return nil
}

// durabilityLoop drives periodic WAL syncs and checkpoints until
// Shutdown closes durStop.
func (in *Ingester) durabilityLoop(dc *DurableConfig) {
	defer in.durWG.Done()
	syncT := time.NewTicker(dc.SyncInterval)
	defer syncT.Stop()
	ckptT := time.NewTicker(dc.CheckpointEvery)
	defer ckptT.Stop()
	for {
		select {
		case <-in.durStop:
			return
		case <-syncT.C:
			for _, sh := range in.shards {
				sh.wal.Sync()
			}
		case <-ckptT.C:
			in.checkpoint(dc)
		}
	}
}
