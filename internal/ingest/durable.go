package ingest

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"segugio/internal/core"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/logio"
	"segugio/internal/metrics"
	"segugio/internal/wal"
)

// Durability layer: OpenDurable wraps New with a write-ahead log and
// periodic checkpoints so an unclean death loses at most the WAL's
// unsynced suffix instead of the whole day's graph.
//
// The invariant the layer maintains is simple because WAL appends happen
// inside apply's critical section: under the ingest mutex, the builder
// state and the WAL end position always agree. A checkpoint therefore
// captures (snapshot, version, WAL position) atomically; recovery loads
// the newest intact checkpoint and replays only the WAL records at or
// after its position. Corrupt trailing WAL records are truncated by
// wal.Open; a corrupt or torn checkpoint falls back to the previous one,
// which still works because WAL segments are only reclaimed up to the
// position of the checkpoint one generation back.

// Checkpoint file names inside the state directory. The previous
// generation is kept as the fallback for a checkpoint torn mid-write or
// rotted on disk.
const (
	checkpointFile     = "checkpoint.gob"
	checkpointPrevFile = "checkpoint.prev.gob"
	walDirName         = "wal"
)

// CheckpointFormatVersion is the current checkpoint file format.
const CheckpointFormatVersion = 1

// ErrNotDurable is returned by Checkpoint on an ingester built with New
// instead of OpenDurable.
var ErrNotDurable = errors.New("ingest: ingester has no durability layer")

var checkpointCRC = crc32.MakeTable(crc32.Castagnoli)

type checkpointWire struct {
	Version      int
	GraphVersion uint64
	Day          int
	WALSegment   uint64
	WALOffset    int64
	// CRC is the Castagnoli checksum of Snapshot; gob's self-describing
	// framing catches structural damage, the CRC catches flipped bits
	// inside the opaque snapshot bytes.
	CRC      uint32
	Snapshot []byte
}

// DurableMetrics bundles the durability layer's instrumentation. Any
// field may be nil.
type DurableMetrics struct {
	// WAL hooks are passed through to the write-ahead log.
	WAL wal.Metrics
	// ReplayedEvents counts events re-applied from the WAL at startup.
	ReplayedEvents *metrics.Counter
	// ReplayErrors counts CRC-intact WAL records skipped during recovery
	// because their contents did not parse (version skew or a bug).
	ReplayErrors *metrics.Counter
	// CheckpointFallbacks counts recoveries that had to discard the
	// newest checkpoint and use the previous generation.
	CheckpointFallbacks *metrics.Counter
	// Checkpoints / CheckpointFailures count checkpoint attempts.
	Checkpoints        *metrics.Counter
	CheckpointFailures *metrics.Counter
	// LastCheckpointUnix is the wall-clock second of the newest durable
	// checkpoint.
	LastCheckpointUnix *metrics.Gauge
}

// DurableConfig parameterizes the durability layer.
type DurableConfig struct {
	// Dir is the state directory: checkpoint files live at its root, WAL
	// segments under Dir/wal. Required.
	Dir string
	// CheckpointEvery is the checkpoint interval (default 30s).
	CheckpointEvery time.Duration
	// SyncInterval bounds how stale the WAL's durable prefix may be
	// (default 1s): a background loop fsyncs at this cadence on top of
	// the count-based batching.
	SyncInterval time.Duration
	// SyncEvery fsyncs after this many WAL records (default 256; 1 makes
	// every applied batch durable before the next is accepted).
	SyncEvery int
	// SegmentBytes sizes WAL segment files (default 8 MiB).
	SegmentBytes int64
	// Metrics hooks; may be nil.
	Metrics *DurableMetrics
	// WALHooks are passed through to wal.Options.Hooks — the fault
	// injection seam the chaos harness uses to simulate ENOSPC and slow
	// fsyncs. Production configs leave it nil.
	WALHooks *wal.Hooks

	m       DurableMetrics // resolved copy
	lastPos wal.Pos        // position of the previous checkpoint generation
}

// RecoveryInfo reports what startup recovery found and rebuilt.
type RecoveryInfo struct {
	// CheckpointLoaded is true when any checkpoint decoded successfully.
	CheckpointLoaded bool
	// UsedFallback is true when the newest checkpoint was corrupt and
	// the previous generation was used instead.
	UsedFallback bool
	// ReplayedEvents is how many events were re-applied from the WAL.
	ReplayedEvents int
	// ReplayErrors is how many intact WAL records failed to parse and
	// were skipped.
	ReplayErrors int
	// Day, Machines, Domains describe the recovered live graph.
	Day      int
	Machines int
	Domains  int
	// WALStart is the position replay began from.
	WALStart wal.Pos
}

func (ri *RecoveryInfo) String() string {
	if ri == nil {
		return "no recovery"
	}
	src := "fresh start"
	if ri.CheckpointLoaded {
		src = "checkpoint"
		if ri.UsedFallback {
			src = "fallback checkpoint"
		}
	}
	return fmt.Sprintf("%s + %d replayed events (%d unparseable) -> day %d, %d machines, %d domains",
		src, ri.ReplayedEvents, ri.ReplayErrors, ri.Day, ri.Machines, ri.Domains)
}

// OpenDurable builds an Ingester whose state survives crashes: it
// recovers the newest intact checkpoint from dc.Dir, replays the WAL
// tail on top, and returns an ingester that logs every applied event to
// the WAL and checkpoints periodically. The RecoveryInfo describes what
// was rebuilt (a fresh start on an empty directory is not an error).
func OpenDurable(cfg Config, dc DurableConfig) (*Ingester, *RecoveryInfo, error) {
	if dc.Dir == "" {
		return nil, nil, errors.New("ingest: DurableConfig.Dir is required")
	}
	if dc.CheckpointEvery <= 0 {
		dc.CheckpointEvery = 30 * time.Second
	}
	if dc.SyncInterval <= 0 {
		dc.SyncInterval = time.Second
	}
	if dc.Metrics != nil {
		dc.m = *dc.Metrics
	}
	if cfg.Suffixes == nil {
		cfg.Suffixes = dnsutil.DefaultSuffixList()
	}
	if err := os.MkdirAll(dc.Dir, 0o755); err != nil {
		return nil, nil, err
	}

	info := &RecoveryInfo{}
	b, version, pos := loadCheckpoints(&dc, cfg, info)

	l, err := wal.Open(filepath.Join(dc.Dir, walDirName), wal.Options{
		SegmentBytes: dc.SegmentBytes,
		SyncEvery:    dc.SyncEvery,
		Metrics:      &dc.m.WAL,
		Hooks:        dc.WALHooks,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open wal: %w", err)
	}

	if b == nil {
		b = graph.NewBuilder(cfg.Network, cfg.StartDay, cfg.Suffixes)
	}
	b, version = replayWAL(l, pos, b, version, cfg, &dc, info)
	info.Day = b.Day()
	info.Machines = b.NumMachines()
	info.Domains = b.NumDomains()
	info.WALStart = pos

	// The WAL currently reaches back to pos at most one checkpoint
	// generation old; remember it so the first new checkpoint does not
	// reclaim segments the on-disk fallback still points into.
	dc.lastPos = pos

	cfg.restoredBuilder = b
	cfg.restoredVersion = version
	cfg.wal = l
	cfg.durable = &dc
	in := New(cfg)
	return in, info, nil
}

// loadCheckpoints tries the current then the previous checkpoint file,
// returning the restored builder, its graph version, and the WAL replay
// position. A nil builder means fresh start.
func loadCheckpoints(dc *DurableConfig, cfg Config, info *RecoveryInfo) (*graph.Builder, uint64, wal.Pos) {
	cur := filepath.Join(dc.Dir, checkpointFile)
	b, version, pos, err := readCheckpoint(cur, cfg)
	if err == nil {
		info.CheckpointLoaded = true
		return b, version, pos
	}
	discarded := !errors.Is(err, os.ErrNotExist)
	if discarded {
		// The newest checkpoint existed but was torn or corrupt. Delete
		// it so the next checkpointOnce does not rotate a known-bad file
		// over the previous generation — that rename would destroy the
		// only proven-good checkpoint before the newly written current
		// one has ever been validated. Best effort: if the remove fails
		// the file simply stays and the old (weaker) behavior applies.
		inc(dc.m.CheckpointFallbacks)
		os.Remove(cur)
	}
	b, version, pos, err = readCheckpoint(filepath.Join(dc.Dir, checkpointPrevFile), cfg)
	if err != nil {
		info.UsedFallback = discarded
		return nil, 0, wal.Pos{}
	}
	info.CheckpointLoaded = true
	info.UsedFallback = discarded
	return b, version, pos
}

// readCheckpoint decodes and validates one checkpoint file.
func readCheckpoint(path string, cfg Config) (*graph.Builder, uint64, wal.Pos, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, wal.Pos{}, err
	}
	defer f.Close()
	var wire checkpointWire
	if err := gob.NewDecoder(f).Decode(&wire); err != nil {
		return nil, 0, wal.Pos{}, fmt.Errorf("ingest: decode checkpoint %s: %w", path, err)
	}
	if wire.Version != CheckpointFormatVersion {
		return nil, 0, wal.Pos{}, fmt.Errorf("ingest: checkpoint %s: version %d, this build reads %d",
			path, wire.Version, CheckpointFormatVersion)
	}
	if crc32.Checksum(wire.Snapshot, checkpointCRC) != wire.CRC {
		return nil, 0, wal.Pos{}, fmt.Errorf("ingest: checkpoint %s: snapshot checksum mismatch", path)
	}
	b, err := graph.DecodeSnapshot(bytes.NewReader(wire.Snapshot), cfg.Suffixes)
	if err != nil {
		return nil, 0, wal.Pos{}, fmt.Errorf("ingest: checkpoint %s: %w", path, err)
	}
	return b, wire.GraphVersion, wal.Pos{Segment: wire.WALSegment, Offset: wire.WALOffset}, nil
}

// replayWAL re-applies every intact WAL record at or after pos to the
// builder, honoring the same day-rotation and staleness rules as live
// ingestion. Rotation hooks are not re-fired for day boundaries found in
// the WAL tail, which makes OnRotate delivery at-most-once across
// crashes: a rotating event is logged inside applyLocked but the hook
// only runs after the lock is released, so a crash in that window
// durably records the rotation yet never delivers the finalized epoch on
// either side of the crash. Consumers needing exactly-once epoch
// handoff must persist their own handoff state. Records that fail to
// parse despite an intact CRC are counted and skipped.
func replayWAL(l *wal.Log, pos wal.Pos, b *graph.Builder, version uint64, cfg Config, dc *DurableConfig, info *RecoveryInfo) (*graph.Builder, uint64) {
	day := b.Day()
	replayErr := l.Replay(pos, func(_ wal.Pos, payload []byte) error {
		apply := func(e logio.Event) error {
			if e.Day < day {
				return nil
			}
			if e.Day > day {
				b = graph.NewBuilder(cfg.Network, e.Day, cfg.Suffixes)
				day = e.Day
			}
			switch e.Kind {
			case logio.EventQuery:
				b.AddQuery(e.Machine, e.Domain)
				if cfg.Activity != nil {
					cfg.Activity.MarkDomain(e.Day, e.Domain)
					cfg.Activity.MarkE2LD(e.Day, cfg.Suffixes.E2LD(e.Domain))
				}
			case logio.EventResolution:
				for _, ip := range e.IPs {
					b.AddResolution(e.Domain, ip)
				}
			}
			info.ReplayedEvents++
			inc(dc.m.ReplayedEvents)
			return nil
		}
		// Records sniff their own format: binary WAL records are
		// self-contained segb1 streams (the record encoder's symbol
		// table resets per record), text records are event lines.
		var perr error
		if bytes.HasPrefix(payload, []byte(logio.BinaryMagic)) {
			perr = logio.ReadEventsBinary(bytes.NewReader(payload), apply, func(error) {
				info.ReplayErrors++
				inc(dc.m.ReplayErrors)
			})
		} else {
			perr = logio.ReadEvents(bytes.NewReader(payload), apply)
		}
		if perr != nil {
			info.ReplayErrors++
			inc(dc.m.ReplayErrors)
		}
		return nil
	})
	// Replay only fails on I/O errors; corruption stops it silently. An
	// I/O failure mid-replay still leaves a usable (shorter) prefix.
	if replayErr != nil {
		info.ReplayErrors++
		inc(dc.m.ReplayErrors)
	}
	// Advancing the version by the replayed count keeps it at or beyond
	// any value the daemon reported before the crash: every applied
	// batch bumped the version at most once per event it contained, and
	// each of those events is in the WAL.
	return b, version + uint64(info.ReplayedEvents)
}

// Checkpoint durably persists the live graph and the WAL position it
// covers, then reclaims WAL segments older than the previous checkpoint
// generation. OpenDurable runs this periodically and at Shutdown; tests
// and operators may force one.
func (in *Ingester) Checkpoint() error {
	if in.cfg.durable == nil {
		return ErrNotDurable
	}
	return in.checkpoint(in.cfg.durable)
}

func (in *Ingester) checkpoint(dc *DurableConfig) error {
	// Serialize whole checkpoints: the rename dance and lastPos tracking
	// assume one writer at a time (the periodic loop and a forced
	// Checkpoint may otherwise overlap).
	in.ckptMu.Lock()
	defer in.ckptMu.Unlock()
	err := in.checkpointOnce(dc)
	if err != nil {
		inc(dc.m.CheckpointFailures)
	} else {
		inc(dc.m.Checkpoints)
		if dc.m.LastCheckpointUnix != nil {
			dc.m.LastCheckpointUnix.SetInt(time.Now().Unix())
		}
	}
	return err
}

func (in *Ingester) checkpointOnce(dc *DurableConfig) error {
	// Builder snapshot, graph version, and WAL position move together
	// under mu — this is the whole consistency argument. The snapshot
	// consumes the builder's dirty-delta baseline, so it must be recorded
	// in the delta ring like any served snapshot, or the next
	// SnapshotSince span would silently lose these changes.
	in.mu.Lock()
	g := in.builder.Snapshot()
	in.recordSnapshotLocked(g)
	version := in.version
	pos := in.wal.End()
	in.mu.Unlock()

	if err := in.wal.Sync(); err != nil {
		return err
	}
	var snap bytes.Buffer
	if err := graph.EncodeSnapshot(&snap, g); err != nil {
		return err
	}
	wire := checkpointWire{
		Version:      CheckpointFormatVersion,
		GraphVersion: version,
		Day:          g.Day(),
		WALSegment:   pos.Segment,
		WALOffset:    pos.Offset,
		CRC:          crc32.Checksum(snap.Bytes(), checkpointCRC),
		Snapshot:     snap.Bytes(),
	}
	cur := filepath.Join(dc.Dir, checkpointFile)
	prev := filepath.Join(dc.Dir, checkpointPrevFile)
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, prev); err != nil {
			return err
		}
	}
	if err := core.WriteAtomic(cur, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(wire)
	}); err != nil {
		return err
	}
	// Reclaim only up to the PREVIOUS generation's position: if this
	// checkpoint later turns out corrupt, the fallback file still has
	// every WAL record it needs.
	if _, err := in.wal.TruncateBefore(dc.lastPos); err != nil {
		return err
	}
	dc.lastPos = pos
	return nil
}

// durabilityLoop drives periodic WAL syncs and checkpoints until
// Shutdown closes durStop.
func (in *Ingester) durabilityLoop(dc *DurableConfig) {
	defer in.durWG.Done()
	syncT := time.NewTicker(dc.SyncInterval)
	defer syncT.Stop()
	ckptT := time.NewTicker(dc.CheckpointEvery)
	defer ckptT.Stop()
	for {
		select {
		case <-in.durStop:
			return
		case <-syncT.C:
			in.wal.Sync()
		case <-ckptT.C:
			in.checkpoint(dc)
		}
	}
}
