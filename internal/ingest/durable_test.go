package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"segugio/internal/dnsutil"
	"segugio/internal/faultinject"
	"segugio/internal/graph"
	"segugio/internal/logio"
	"segugio/internal/metrics"
	"segugio/internal/wal"
)

func newDurableMetrics() *DurableMetrics {
	r := metrics.NewRegistry()
	return &DurableMetrics{
		WAL: wal.Metrics{
			Appends:     r.NewCounter("wal_appends", "", ""),
			Syncs:       r.NewCounter("wal_syncs", "", ""),
			TornRecords: r.NewCounter("wal_torn", "", ""),
			Segments:    r.NewGauge("wal_segments", "", ""),
		},
		ReplayedEvents:      r.NewCounter("replayed", "", ""),
		ReplayErrors:        r.NewCounter("replay_errors", "", ""),
		CheckpointFallbacks: r.NewCounter("ckpt_fallbacks", "", ""),
		Checkpoints:         r.NewCounter("ckpts", "", ""),
		CheckpointFailures:  r.NewCounter("ckpt_failures", "", ""),
		LastCheckpointUnix:  r.NewGauge("ckpt_unix", "", ""),
	}
}

// durableCfg builds a durable ingester config pair with fast, test-sized
// knobs: every WAL record synced immediately, checkpoints only on
// demand (interval far in the future). A single graph shard keeps the
// on-disk layout deterministic for the fault-injection tests (which
// corrupt specific files); the multi-shard layout has its own tests.
func durableCfg(dir string, m *Metrics, dm *DurableMetrics) (Config, DurableConfig) {
	return Config{Network: "net", StartDay: 5, Workers: 2, GraphShards: 1, Metrics: m},
		DurableConfig{
			Dir:             dir,
			SyncEvery:       1,
			CheckpointEvery: time.Hour,
			Metrics:         dm,
		}
}

// Shard 0's file locations in the first-generation sharded layout.
func shard0WALSeg(dir string) string {
	return filepath.Join(dir, genDirName(1), shardWALDir(0), "wal-00000001.seg")
}

func shard0WALGlob(dir string) string {
	return filepath.Join(dir, genDirName(1), shardWALDir(0), "wal-*.seg")
}

func shard0Checkpoint(dir string) string {
	return filepath.Join(dir, genDirName(1), shardCheckpointFile(0))
}

func shard0CheckpointPrev(dir string) string {
	return filepath.Join(dir, genDirName(1), shardCheckpointPrevFile(0))
}

func feed(t *testing.T, in *Ingester, m *Metrics, events []logio.Event) {
	t.Helper()
	before := m.EventsIngested.Value()
	if err := in.Consume(strings.NewReader(stream(t, events))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "events applied", func() bool {
		return m.EventsIngested.Value() == before+int64(len(events))
	})
}

func genDurableEvents(day, n int) []logio.Event {
	var evs []logio.Event
	for i := 0; i < n; i++ {
		evs = append(evs, logio.Event{
			Kind: logio.EventQuery, Day: day,
			Machine: fmt.Sprintf("m%03d", i%37),
			Domain:  fmt.Sprintf("h%d.zone%d.net", i%29, i%11),
		})
	}
	return evs
}

func graphShape(g *graph.Graph) [3]int {
	return [3]int{g.NumMachines(), g.NumDomains(), g.NumEdges()}
}

// TestDurableRecoveryFromWALOnly kills an ingester that never
// checkpointed (simulated by skipping Shutdown's checkpoint via a fresh
// OpenDurable on the same directory): every applied event must come
// back from the WAL alone.
func TestDurableRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	in, info, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointLoaded || info.ReplayedEvents != 0 {
		t.Fatalf("fresh start info = %+v", info)
	}
	evs := genDurableEvents(5, 1200)
	feed(t, in, m, evs)
	want, wantVersion := in.Snapshot()
	// Unclean death: no Shutdown, no checkpoint. SyncEvery=1 means every
	// applied record is already durable.

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	in2, info2, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if info2.CheckpointLoaded {
		t.Fatalf("no checkpoint was written, info = %+v", info2)
	}
	if info2.ReplayedEvents != len(evs) {
		t.Fatalf("replayed %d events, want %d", info2.ReplayedEvents, len(evs))
	}
	got, gotVersion := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v", graphShape(got), graphShape(want))
	}
	if gotVersion < wantVersion {
		t.Fatalf("recovered version %d went backwards from %d", gotVersion, wantVersion)
	}
	if got.Day() != 5 {
		t.Fatalf("recovered day %d", got.Day())
	}
}

// TestDurableRecoveryFromCheckpointAndTail checkpoints mid-stream, feeds
// more events, dies uncleanly, and must recover checkpoint + WAL tail.
func TestDurableRecoveryFromCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	dm := newDurableMetrics()
	cfg, dc := durableCfg(dir, m, dm)
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, m, genDurableEvents(5, 800))
	if err := in.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if dm.Checkpoints.Value() != 1 {
		t.Fatalf("checkpoints = %d", dm.Checkpoints.Value())
	}
	tail := genDurableEvents(5, 400)
	for i := range tail {
		tail[i].Machine = fmt.Sprintf("late%03d", i%23)
	}
	feed(t, in, m, tail)
	want, _ := in.Snapshot()
	// Unclean death here.

	m2, _ := newMetrics()
	dm2 := newDurableMetrics()
	cfg2, dc2 := durableCfg(dir, m2, dm2)
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if !info.CheckpointLoaded || info.UsedFallback {
		t.Fatalf("info = %+v, want checkpoint without fallback", info)
	}
	if info.ReplayedEvents != len(tail) {
		t.Fatalf("replayed %d, want only the %d tail events", info.ReplayedEvents, len(tail))
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v", graphShape(got), graphShape(want))
	}
}

// TestDurableRecoveryTornWALTail truncates the WAL mid-record: recovery
// must keep every intact record and drop only the torn one.
func TestDurableRecoveryTornWALTail(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	// Two separate consumes -> at least two WAL records (one per batch).
	feed(t, in, m, genDurableEvents(5, 300))
	feed(t, in, m, []logio.Event{{Kind: logio.EventQuery, Day: 5, Machine: "victim", Domain: "torn.example.com"}})

	// Tear the final record's payload.
	seg := shard0WALSeg(dir)
	if err := faultinject.TruncateTail(seg, 3); err != nil {
		t.Fatal(err)
	}

	m2, _ := newMetrics()
	dm2 := newDurableMetrics()
	cfg2, dc2 := durableCfg(dir, m2, dm2)
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if dm2.WAL.TornRecords.Value() != 1 {
		t.Fatalf("torn records = %d, want 1", dm2.WAL.TornRecords.Value())
	}
	if info.ReplayedEvents != 300 {
		t.Fatalf("replayed %d, want 300 (torn victim dropped)", info.ReplayedEvents)
	}
	g, _ := in2.Snapshot()
	if _, ok := g.DomainIndex("torn.example.com"); ok {
		t.Fatal("torn record's event must not survive recovery")
	}
}

// TestDurableRecoveryCorruptCheckpointFallsBack corrupts the newest
// checkpoint; recovery must use the previous generation plus a longer
// WAL replay and still converge on the same graph.
func TestDurableRecoveryCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, m, genDurableEvents(5, 500))
	if err := in.Checkpoint(); err != nil { // generation 1 (becomes .prev)
		t.Fatal(err)
	}
	feed(t, in, m, genDurableEvents(5, 250))
	if err := in.Checkpoint(); err != nil { // generation 2 (to be corrupted)
		t.Fatal(err)
	}
	extra := []logio.Event{{Kind: logio.EventQuery, Day: 5, Machine: "post", Domain: "post-ckpt.example.org"}}
	feed(t, in, m, extra)
	want, _ := in.Snapshot()

	// Flip a byte inside the newest checkpoint's snapshot payload.
	cur := shard0Checkpoint(dir)
	fi, err := os.Stat(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(cur, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	m2, _ := newMetrics()
	dm2 := newDurableMetrics()
	cfg2, dc2 := durableCfg(dir, m2, dm2)
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if !info.CheckpointLoaded || !info.UsedFallback {
		t.Fatalf("info = %+v, want fallback checkpoint", info)
	}
	if dm2.CheckpointFallbacks.Value() != 1 {
		t.Fatalf("fallbacks = %d", dm2.CheckpointFallbacks.Value())
	}
	// The fallback is older, so replay covers everything after gen 1.
	if info.ReplayedEvents != 251 {
		t.Fatalf("replayed %d, want 251", info.ReplayedEvents)
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v", graphShape(got), graphShape(want))
	}
	if _, ok := got.DomainIndex("post-ckpt.example.org"); !ok {
		t.Fatal("post-checkpoint event lost in fallback recovery")
	}
}

// TestDurableCleanShutdownLeavesEmptyReplay verifies Shutdown's final
// checkpoint: a restart after a clean exit replays nothing.
func TestDurableCleanShutdownLeavesEmptyReplay(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, m, genDurableEvents(5, 400))
	want, _ := in.Snapshot()
	in.Shutdown()
	in.Shutdown() // idempotent with durability attached

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if !info.CheckpointLoaded || info.ReplayedEvents != 0 {
		t.Fatalf("after clean shutdown: %+v, want checkpoint-only recovery", info)
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v", graphShape(got), graphShape(want))
	}
}

// TestDurableRotationAcrossRestart: events from a later day land after a
// checkpoint of the earlier day; recovery must end up on the later day.
func TestDurableRotationAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, m, genDurableEvents(5, 100))
	if err := in.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	day6 := genDurableEvents(6, 40)
	feed(t, in, m, day6)
	// Unclean death.

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if info.Day != 6 {
		t.Fatalf("recovered day %d, want 6", info.Day)
	}
	g, _ := in2.Snapshot()
	if g.Day() != 6 {
		t.Fatalf("live graph day %d, want 6", g.Day())
	}
	if in2.Day() != 6 {
		t.Fatalf("ingester day %d, want 6", in2.Day())
	}
}

// TestDurableWALTruncationKeepsFallbackWindow drives enough checkpoints
// and segment rotations to trigger WAL reclamation, then corrupts the
// newest checkpoint: the fallback must still find every record it
// needs.
func TestDurableWALTruncationKeepsFallbackWindow(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	dm := newDurableMetrics()
	cfg, dc := durableCfg(dir, m, dm)
	dc.SegmentBytes = 4096 // force frequent segment rotation
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		evs := genDurableEvents(5, 300)
		for i := range evs {
			evs[i].Machine = fmt.Sprintf("r%d-%s", round, evs[i].Machine)
		}
		feed(t, in, m, evs)
		if err := in.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := in.Snapshot()
	segs, _ := filepath.Glob(shard0WALGlob(dir))
	if len(segs) == 0 {
		t.Fatal("no wal segments on disk")
	}

	cur := shard0Checkpoint(dir)
	fi, err := os.Stat(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(cur, fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if !info.UsedFallback {
		t.Fatalf("info = %+v, want fallback", info)
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v (fallback window lost records)", graphShape(got), graphShape(want))
	}
}

// TestWALFlushFitsRecordCap pins the sizing invariant the WAL batching
// relies on: the flush threshold triggers after a line is appended, so a
// record can reach walFlushBytes plus one maximum-size event line (incl.
// newline) and must still be accepted by wal.Append.
func TestWALFlushFitsRecordCap(t *testing.T) {
	if walFlushBytes+logio.MaxLineBytes+1 > wal.MaxRecordBytes {
		t.Fatalf("walFlushBytes (%d) + logio.MaxLineBytes (%d) + 1 exceeds wal.MaxRecordBytes (%d): "+
			"a batch holding large resolution lines would be rejected and silently lose durability",
			walFlushBytes, logio.MaxLineBytes, wal.MaxRecordBytes)
	}
}

// TestDurableLargeBatchKeepsDurability builds one worker batch whose
// serialized size straddles the WAL flush threshold with a huge
// resolution line on top: no WAL append may fail, and every applied
// event must come back on recovery. (Regression: the record used to be
// handed to wal.Append only after the oversized line was already in the
// buffer, tripping ErrTooLarge and dropping the whole batch's
// durability.)
func TestDurableLargeBatchKeepsDurability(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	cfg.Workers = 1
	cfg.QueueDepth = 1024
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}

	// 511 padded query lines (~200 KiB total) followed by one ~900 KiB
	// line (a grotesque machine ID — only the serialized size matters
	// here): drained as a single 512-event batch below, whose WAL record
	// would have exceeded a 1 MiB cap.
	pad := strings.Repeat("x", 350)
	var evs []logio.Event
	for i := 0; i < 511; i++ {
		evs = append(evs, logio.Event{
			Kind: logio.EventQuery, Day: 5,
			Machine: fmt.Sprintf("m%04d-%s", i, pad),
			Domain:  fmt.Sprintf("h%d.zone.net", i%7),
		})
	}
	evs = append(evs, logio.Event{
		Kind: logio.EventQuery, Day: 5,
		Machine: "fat-" + strings.Repeat("m", 900_000),
		Domain:  "fat.query.net",
	})

	// Stall the single worker on the builder lock so the whole stream
	// queues up and drains as one maximal batch.
	in.shards[0].mu.Lock()
	if err := in.Consume(strings.NewReader(stream(t, evs))); err != nil {
		in.shards[0].mu.Unlock()
		t.Fatal(err)
	}
	in.shards[0].mu.Unlock()
	waitFor(t, "batch applied", func() bool {
		return m.EventsIngested.Value() == int64(len(evs))
	})
	if m.WALAppendFailures.Value() != 0 {
		t.Fatalf("wal append failures = %d, want 0", m.WALAppendFailures.Value())
	}
	want, _ := in.Snapshot()
	// Unclean death: recovery must replay every event, including the fat
	// resolution line.

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if info.ReplayedEvents != len(evs) {
		t.Fatalf("replayed %d events, want %d", info.ReplayedEvents, len(evs))
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v", graphShape(got), graphShape(want))
	}
	if _, ok := got.DomainIndex("fat.query.net"); !ok {
		t.Fatal("oversized query line lost")
	}
}

// TestDurableFallbackSurvivesNextCheckpoint: after a recovery that fell
// back to the previous checkpoint generation, the first new checkpoint
// must not rotate the known-corrupt current file over the proven-good
// fallback. A second corruption of the (new) current checkpoint must
// therefore still recover through a valid previous generation.
func TestDurableFallbackSurvivesNextCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, m, genDurableEvents(5, 500))
	if err := in.Checkpoint(); err != nil { // generation A (becomes .prev)
		t.Fatal(err)
	}
	feed(t, in, m, genDurableEvents(5, 250))
	if err := in.Checkpoint(); err != nil { // generation B (to be corrupted)
		t.Fatal(err)
	}
	cur := shard0Checkpoint(dir)
	fi, err := os.Stat(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(cur, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	// Recovery #1 falls back to generation A.
	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.UsedFallback {
		t.Fatalf("info = %+v, want fallback", info)
	}
	// The first post-fallback checkpoint must leave a loadable previous
	// generation behind (generation A, not the corrupt B).
	extra := []logio.Event{{Kind: logio.EventQuery, Day: 5, Machine: "late", Domain: "late.example.net"}}
	feed(t, in2, m2, extra)
	if err := in2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want, _ := in2.Snapshot()
	cfgRead := cfg2
	cfgRead.Suffixes = dnsutil.DefaultSuffixList()
	if _, _, _, err := readCheckpoint(shard0CheckpointPrev(dir), cfgRead); err != nil {
		t.Fatalf("previous checkpoint generation unreadable after post-fallback checkpoint: %v", err)
	}

	// Corrupt the freshly written current checkpoint: recovery #2 must
	// still come back through the valid previous generation.
	fi, err = os.Stat(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(cur, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	m3, _ := newMetrics()
	cfg3, dc3 := durableCfg(dir, m3, newDurableMetrics())
	in3, info3, err := OpenDurable(cfg3, dc3)
	if err != nil {
		t.Fatal(err)
	}
	defer in3.Shutdown()
	if !info3.CheckpointLoaded || !info3.UsedFallback {
		t.Fatalf("info = %+v, want successful fallback recovery", info3)
	}
	got, _ := in3.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("recovered shape %v, want %v (good fallback generation was clobbered)", graphShape(got), graphShape(want))
	}
	if _, ok := got.DomainIndex("late.example.net"); !ok {
		t.Fatal("post-fallback event lost")
	}
	_ = in2 // left un-shutdown: it simulated a second unclean death
}

func TestCheckpointOnNonDurableIngester(t *testing.T) {
	in := New(Config{Network: "net", StartDay: 1, Workers: 1})
	defer in.Shutdown()
	if err := in.Checkpoint(); err != ErrNotDurable {
		t.Fatalf("err = %v, want ErrNotDurable", err)
	}
}
