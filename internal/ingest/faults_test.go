package ingest

import (
	"errors"
	"testing"

	"segugio/internal/faultinject"
	"segugio/internal/health"
	"segugio/internal/wal"
)

// TestDurableWALFaultRaisesHealthAndRecovers injects fsync failures into
// a durable ingester's WAL: applied batches must keep flowing (reduced
// durability, never a wedged pipeline), every failure must be counted,
// and the "wal" health signal must go Degraded. Once the fault clears
// and the signal's TTL allows, a fresh OpenDurable on the same directory
// must replay cleanly.
func TestDurableWALFaultRaisesHealthAndRecovers(t *testing.T) {
	dir := t.TempDir()
	disk := &faultinject.Disk{}
	h := health.New(health.Config{})
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	cfg.Health = h
	dc.WALHooks = &wal.Hooks{BeforeWrite: disk.BeforeWrite, BeforeSync: disk.BeforeSync}
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}

	healthy := genDurableEvents(5, 200)
	feed(t, in, m, healthy)
	if m.WALAppendFailures.Value() != 0 {
		t.Fatalf("healthy phase append failures = %d", m.WALAppendFailures.Value())
	}
	if st := h.State(); st != health.Healthy {
		t.Fatalf("healthy phase state = %v", st)
	}

	disk.FailSyncs(errors.New("injected fsync failure"))
	faulted := genDurableEvents(5, 200)
	// The graph must still absorb every event — WAL trouble degrades
	// durability, it never stalls ingestion.
	feed(t, in, m, faulted)
	if m.WALAppendFailures.Value() == 0 {
		t.Fatal("no WAL append failures counted under injected fsync faults")
	}
	if st := h.State(); st != health.Degraded {
		t.Fatalf("state under WAL faults = %v, want Degraded", st)
	}
	var walSignal bool
	for _, s := range h.Signals() {
		if s.Name == healthSignalWAL {
			walSignal = true
		}
	}
	if !walSignal {
		t.Fatalf("no %q signal asserted; signals = %+v", healthSignalWAL, h.Signals())
	}

	// Fault clears: appends work again and recovery replays every record
	// that actually made it to the log.
	disk.SyncsOK()
	after := genDurableEvents(5, 100)
	feed(t, in, m, after)
	failures := m.WALAppendFailures.Value()
	feed(t, in, m, genDurableEvents(5, 50))
	if m.WALAppendFailures.Value() != failures {
		t.Fatalf("append failures kept climbing after fault cleared: %d -> %d",
			failures, m.WALAppendFailures.Value())
	}
	// Unclean death; a fresh ingester on the same directory must come up
	// without error, replaying only the durable records.
	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatalf("recovery after WAL fault window: %v", err)
	}
	defer in2.Shutdown()
	if info.ReplayedEvents == 0 {
		t.Fatal("recovery replayed nothing — even pre-fault records lost")
	}
	g, _ := in2.Snapshot()
	if g.NumMachines() == 0 || g.Day() != 5 {
		t.Fatalf("recovered graph machines=%d day=%d", g.NumMachines(), g.Day())
	}
}
