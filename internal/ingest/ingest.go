// Package ingest turns segugio's batch graph construction into a
// streaming subsystem: it consumes logio event-stream records (DNS
// queries and resolutions) from any reader — stdin, a tailed file, or a
// TCP connection — shards them by machine-ID hash across worker
// goroutines, and applies them incrementally to a live behavior-graph
// Builder. Bounded per-shard channels give explicit backpressure: when a
// shard falls behind, events are dropped and counted rather than ever
// blocking the accept loop, which is how an ISP tap has to behave (the
// resolver will not wait for us).
//
// Epochs rotate at day boundaries: an event stamped with a later day than
// the current epoch finalizes the old graph (handing a snapshot to the
// OnRotate hook) and starts a fresh one, so the live graph always covers
// exactly the current observation window, mirroring the paper's
// one-day-at-a-time deployment loop.
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/health"
	"segugio/internal/logio"
	"segugio/internal/metrics"
	"segugio/internal/obs"
	"segugio/internal/wal"

	"segugio/internal/activity"
)

// Metrics bundles the instrumentation hooks the ingester feeds. Any field
// may be nil; nil metrics are simply not recorded.
type Metrics struct {
	// EventsIngested counts events applied to the live graph.
	EventsIngested *metrics.Counter
	// EventsDropped counts events dropped because a shard queue was full.
	EventsDropped *metrics.Counter
	// EventsStale counts events discarded for belonging to an already
	// rotated-out day.
	EventsStale *metrics.Counter
	// ParseErrors counts malformed input: a bad line aborts stream
	// sources (stdin, TCP) and is counted and skipped by the tail
	// source, which must survive whatever lands in a live log file.
	ParseErrors *metrics.Counter
	// Rotations counts epoch rotations.
	Rotations *metrics.Counter
	// GraphMachines/GraphDomains/GraphObservations mirror the live
	// graph's size after each applied batch: machines and observations
	// sum exactly across the shard partition, domains come from the
	// global domain set (domains overlap machine partitions).
	GraphMachines     *metrics.Gauge
	GraphDomains      *metrics.Gauge
	GraphObservations *metrics.Gauge
	// Panics counts panics recovered inside ingest workers (the worker
	// restarts its drain loop instead of killing the daemon).
	Panics *metrics.Counter
	// TailReopens counts tailed-file reopens forced by log rotation or
	// in-place truncation.
	TailReopens *metrics.Counter
	// WALAppendFailures counts applied batches that could not be logged
	// to the write-ahead log (the daemon keeps serving; durability of
	// those events is lost).
	WALAppendFailures *metrics.Counter
	// SnapshotSeconds observes how long producing one snapshot takes
	// (incremental graph freeze plus label application).
	SnapshotSeconds *metrics.Histogram
	// DirtyDomains mirrors the dirty-domain count of the latest snapshot
	// (the whole domain count when the delta was inexact).
	DirtyDomains *metrics.Gauge
	// EventsShed counts unacknowledged events shed by the overload
	// policy, keyed by reason ("drop-oldest", "sample"). Shedding only
	// happens in the overloaded health state under an explicit policy;
	// a missing reason key is simply not recorded.
	EventsShed map[string]*metrics.Counter
	// ShardEvents/ShardApplySeconds are per-graph-shard instrumentation:
	// ShardEvents[s] counts events applied to shard s, ShardApplySeconds[s]
	// observes shard s's apply-segment latency (lock wait included, so
	// cross-shard contention is visible). Slices shorter than the shard
	// count leave the remaining shards uninstrumented.
	ShardEvents       []*metrics.Counter
	ShardApplySeconds []*metrics.Histogram
}

func inc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

func addN(c *metrics.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// Config parameterizes an Ingester. The zero Config (plus a Network and
// StartDay) is a purely in-memory ingester; OpenDurable layers the
// write-ahead log and checkpointing on top.
type Config struct {
	// Network names the graphs built from the stream.
	Network string
	// StartDay is the initial epoch day. Events from earlier days are
	// counted stale and dropped; an event from a later day rotates the
	// epoch forward.
	StartDay int
	// Suffixes annotates domains with effective 2LDs; defaults to
	// dnsutil.DefaultSuffixList.
	Suffixes *dnsutil.SuffixList
	// Workers is the ring shard count (default 4). Events are sharded by
	// machine-ID hash (queries) or domain hash (resolutions), so one
	// machine's events stay ordered relative to each other.
	Workers int
	// GraphShards is the number of machine-hash-partitioned graph
	// builders behind the rings (default = Workers). Each shard has its
	// own apply lock; when GraphShards == Workers (the default) every
	// ring feeds its shard's builder directly, with no repartition step
	// and zero cross-shard contention on the hot path.
	GraphShards int
	// QueueDepth bounds each (source, shard) ring (default 4096, rounded
	// up to a power of two). A full ring drops events instead of
	// blocking the accept loop (see ShedPolicy for the alternatives).
	QueueDepth int
	// BinaryWAL, when true, encodes WAL records with the segb1 binary
	// event framing instead of text lines (each record is
	// self-contained: the encoder's symbol table resets per record, so
	// replay can decode any record in isolation). Replay auto-detects
	// the format per record, so flipping this across restarts is safe;
	// the default keeps the text format byte-identical to prior
	// releases.
	BinaryWAL bool
	// Activity, when non-nil, receives per-day domain/e2LD activity marks
	// for every applied query, keeping F2 features live.
	Activity *activity.Log
	// ActivityKeepDays bounds the activity log's history after a rotation
	// (default 30 days; 0 keeps everything only if Activity is nil).
	ActivityKeepDays int
	// PrepareSnapshot, when non-nil, runs once on every freshly built
	// snapshot before it is cached and returned (segugiod applies
	// ground-truth labels here). It must not call back into the Ingester.
	PrepareSnapshot func(*graph.Graph)
	// OnRotate, when non-nil, is called with the finalized graph of each
	// completed epoch; PrepareSnapshot (when set) has already run on it. It runs outside the ingest lock but on a worker
	// goroutine: heavy work should be handed off. It must not call back
	// into the Ingester. With a durable ingester delivery is
	// at-most-once across crashes: a crash between the WAL logging of a
	// rotating event and the hook call loses that delivery, and WAL
	// replay does not re-fire hooks.
	OnRotate func(day int, final *graph.Graph)
	// Metrics hooks; may be nil.
	Metrics *Metrics
	// Tracer, when non-nil, receives pipeline spans: per-batch graph_apply
	// traces with wal_append children, plus chunked parse traces and
	// per-line parse stage observations. A nil Tracer costs nothing.
	Tracer *obs.Tracer
	// Health, when non-nil, receives the ingester's overload signals:
	// shard-queue saturation (overloaded, short TTL so it decays when
	// pressure drains) and WAL append failures or latency stalls
	// (degraded). It also gates shedding — see ShedPolicy.
	Health *health.Tracker
	// ShedPolicy decides what happens to an event whose shard queue is
	// full. The default (ShedDrop) is the legacy tap behavior: drop the
	// newest event and count it, never blocking the source. Every other
	// policy blocks the source (TCP backpressure) while the daemon is
	// healthy or degraded; only the overloaded health state sheds
	// unacknowledged events, and only as the policy says:
	//
	//	ShedBlock      never shed — block until the shard drains
	//	ShedDropOldest evict the oldest queued event to admit the newest
	//	ShedSample     admit 1 in shedSampleKeep events, shed the rest
	ShedPolicy string
	// Watermarks, when non-nil, receives event-time freshness marks:
	// every source advances its day frontier at dispatch (before any
	// shedding, so a dropped event still counts as observed input), and
	// the wal_append / graph_apply / snapshot stages acknowledge the
	// event days they complete. A nil Watermarks costs one predictable
	// branch per event.
	Watermarks *obs.Watermarks
	// ApplyHook, when non-nil, runs at the start of every apply batch on
	// the worker goroutine — the test seam the chaos harness uses to
	// stall graph apply and burn the freshness SLO.
	ApplyHook func()

	// Durability wiring, set by OpenDurable: restored per-shard builders
	// to resume from (one per graph shard, all on the same day), the
	// graph version they were checkpointed at, and the open per-shard
	// WAL stripes that apply() feeds.
	restoredShards  []*graph.Builder
	restoredVersion uint64
	walShards       []*wal.Log
	durable         *DurableConfig
}

// Shed policies (Config.ShedPolicy).
const (
	ShedDrop       = "drop"        // legacy: drop the newest event whenever a shard is full
	ShedBlock      = "block"       // never shed: block the source until the shard drains
	ShedDropOldest = "drop-oldest" // overloaded only: evict the oldest queued event
	ShedSample     = "sample"      // overloaded only: keep 1 in shedSampleKeep events
)

// shedSampleKeep is ShedSample's admission rate: 1 in this many events
// bound for a full shard is admitted (blocking if needed); the rest are
// shed. A uniform thinning keeps the live graph a representative sample
// of the stream instead of a prefix of it.
const shedSampleKeep = 8

// Health signal names and decay windows asserted by the ingester.
const (
	healthSignalQueue = "ingest_queue"
	healthSignalWAL   = "wal"
	// queuePressureTTL is how long one full-shard observation keeps the
	// ingest_queue signal asserted: sustained pressure re-arms it every
	// dispatch, a transient burst decays back to healthy on its own.
	queuePressureTTL = 2 * time.Second
	// walFaultTTL covers WAL append failures and latency stalls; longer
	// than the queue TTL because disk trouble rarely clears in a burst.
	walFaultTTL = 5 * time.Second
	// slowWALAppend is the append+fsync latency past which the WAL is
	// considered stalling (slow disk, saturated fsync queue).
	slowWALAppend = 250 * time.Millisecond
)

// ValidShedPolicy reports whether p names a shed policy ("" selects
// ShedDrop).
func ValidShedPolicy(p string) bool {
	switch p {
	case "", ShedDrop, ShedBlock, ShedDropOldest, ShedSample:
		return true
	}
	return false
}

// ErrShuttingDown aborts Consume loops once Shutdown has begun.
var ErrShuttingDown = errors.New("ingest: shutting down")

// graphShard is one machine-hash partition of the live graph: a builder
// with its own apply lock, an optional WAL stripe, and per-shard
// instrumentation mirrors. Sharding is what lets N ingest workers apply
// batches with zero cross-shard contention — each worker's ring feeds
// exactly one shard when the ring and graph shard counts match.
type graphShard struct {
	// mu guards the shard's builder and its WAL stripe buffers: appends
	// happen inside shardApply's critical section, so a checkpoint
	// always sees builder state and WAL position move together, per
	// shard.
	mu      sync.Mutex
	builder *graph.Builder
	wal     *wal.Log
	walBuf  bytes.Buffer
	walLine bytes.Buffer        // scratch for one encoded event line (text WAL)
	walEnc  *logio.EventEncoder // binary WAL record encoder (BinaryWAL only)
	// walBatchErr records a WAL append failure inside the current apply
	// segment so the wal_append watermark holds back (guarded by mu;
	// reset at the top of each shardApply).
	walBatchErr bool

	// machines/observations mirror the builder's size so the global
	// gauges can sum shards without taking every shard lock. Machines
	// partition disjointly (queries route by machine hash) and every
	// observation lands in exactly one shard, so the sums are exact.
	machines     atomic.Int64
	observations atomic.Int64

	// Per-shard instrumentation; nil fields are not recorded.
	events       *metrics.Counter
	applySeconds *metrics.Histogram
	wmSource     string // watermark source label ("shard-N")
}

// Ingester owns the live behavior graph — partitioned into machine-hash
// graph shards — and the worker shards applying events to it.
type Ingester struct {
	cfg Config
	m   Metrics

	// Each shard owns a set of SPSC rings — one per live source — that
	// its worker sweeps. shardRings[s] is swapped copy-on-write under
	// ringMu when sources attach or retire, so workers read it with one
	// atomic load and no lock on the hot path. wake[s] is a one-slot
	// doorbell: producers ring it on an empty→nonempty transition, the
	// only publish a blocked worker can miss.
	shardRings  []atomic.Pointer[[]*eventRing]
	wake        []chan struct{}
	stopWorkers chan struct{}
	ringMu      sync.Mutex
	workers     sync.WaitGroup

	consumers sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once

	// sampleSeq sequences full-shard events under ShedSample so exactly
	// 1 in shedSampleKeep is admitted.
	sampleSeq atomic.Uint64

	// aligned is true when the ring shard count equals the graph shard
	// count, so a ring's batch feeds exactly one graph shard with no
	// repartition step. hasWAL is set when OpenDurable wired WAL stripes.
	aligned bool
	hasWAL  bool

	// epochMu orders epoch rotation against everything that reads the
	// current day or walks the shard set: batch appliers, delta drains,
	// and checkpoint captures hold it for read; rotation holds it for
	// write. Within it, each shard's own mutex serializes access to that
	// shard's builder and WAL stripe — the hot path takes epochMu.RLock
	// (uncontended between workers) plus exactly one shard lock.
	epochMu sync.RWMutex
	day     int // guarded by epochMu
	shards  []*graphShard
	// merged accumulates every shard's drained fresh delta into the one
	// builder snapshots are served from, so every consumer (classify,
	// prune plan, score cache, both detectors) runs on a plain merged
	// *graph.Graph. Guarded by snapMu+epochMu.R (snapshots) or
	// epochMu.W (rotation).
	merged *graph.Builder

	// version moves whenever any shard's builder changes; incremented
	// inside the shard lock, after the change is visible to drains.
	version atomic.Uint64

	// domainMu guards the global domain set behind the graph_domains
	// gauge: domains overlap machine partitions, so per-shard counts
	// cannot simply be summed the way machines can. Shards feed it only
	// the names they interned for the first time in a batch, so upkeep
	// is O(new domains), not O(events).
	domainMu  sync.Mutex
	domainSet map[string]struct{}
	domainN   atomic.Int64

	// Durability plumbing (nil/zero without OpenDurable).
	ckptMu  sync.Mutex
	durStop chan struct{}
	durWG   sync.WaitGroup
	durOnce sync.Once

	// snapMu serializes snapshot construction; the cached snapshot is
	// reused until the underlying version moves.
	snapMu      sync.Mutex
	snap        *graph.Graph
	snapVersion uint64
	snapDay     int

	// Delta history (guarded by deltaMu): one entry per snapshot taken
	// from the merged builder, so SnapshotSince can answer "which domains
	// changed since version X" across several snapshots. lastSnapVer is
	// the version the most recent snapshot was taken at.
	deltaMu     sync.Mutex
	ring        deltaRing
	lastSnapVer uint64
}

// deltaEntry records the dirty domains between two consecutive snapshot
// versions. inexact entries (first snapshot of an epoch) poison any span
// crossing them: the consumer must treat every domain as dirty.
type deltaEntry struct {
	from, to uint64
	inexact  bool
	domains  []string
}

// deltaRing is a bounded FIFO of deltaEntries. Bounds are generous — a
// span that outgrows them simply becomes inexact, which is always safe.
type deltaRing struct {
	entries []deltaEntry
	names   int
}

const (
	ringMaxEntries = 512
	ringMaxNames   = 1 << 17
)

func (r *deltaRing) push(e deltaEntry) {
	r.entries = append(r.entries, e)
	r.names += len(e.domains)
	if len(r.entries) > ringMaxEntries || r.names > ringMaxNames {
		drop := 1
		for drop < len(r.entries)-1 &&
			(len(r.entries)-drop > ringMaxEntries || r.names > ringMaxNames) {
			r.names -= len(r.entries[drop-1].domains)
			drop++
		}
		r.names -= len(r.entries[drop-1].domains)
		r.entries = append(r.entries[:0], r.entries[drop:]...)
	}
}

// since accumulates the dirty domains between version v and the current
// version cur by walking entries newest-first. It reports ok=false when
// the span crosses an inexact entry or history no longer reaches v.
func (r *deltaRing) since(v, cur uint64) ([]string, bool) {
	if v == cur {
		return nil, true
	}
	seen := make(map[string]struct{})
	var out []string
	for i := len(r.entries) - 1; i >= 0; i-- {
		e := r.entries[i]
		if e.to <= v {
			break
		}
		if e.inexact {
			return nil, false
		}
		for _, n := range e.domains {
			if _, dup := seen[n]; !dup {
				seen[n] = struct{}{}
				out = append(out, n)
			}
		}
		if e.from == v {
			return out, true
		}
		if e.from < v {
			return nil, false
		}
	}
	return nil, false
}

// New builds an Ingester and starts its worker shards. Call Shutdown to
// stop them.
func New(cfg Config) *Ingester {
	if cfg.Suffixes == nil {
		cfg.Suffixes = dnsutil.DefaultSuffixList()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.GraphShards <= 0 {
		cfg.GraphShards = cfg.Workers
	}
	if cfg.restoredShards != nil {
		// OpenDurable already partitioned the restored state.
		cfg.GraphShards = len(cfg.restoredShards)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.ActivityKeepDays <= 0 {
		cfg.ActivityKeepDays = 30
	}
	in := &Ingester{
		cfg:       cfg,
		closing:   make(chan struct{}),
		day:       cfg.StartDay,
		aligned:   cfg.GraphShards == cfg.Workers,
		domainSet: make(map[string]struct{}),
	}
	if cfg.Metrics != nil {
		in.m = *cfg.Metrics
	}
	in.shards = make([]*graphShard, cfg.GraphShards)
	for s := range in.shards {
		sh := &graphShard{wmSource: "shard-" + strconv.Itoa(s)}
		if cfg.restoredShards != nil {
			sh.builder = cfg.restoredShards[s]
		} else {
			sh.builder = graph.NewBuilder(cfg.Network, cfg.StartDay, cfg.Suffixes)
		}
		if cfg.walShards != nil {
			sh.wal = cfg.walShards[s]
			in.hasWAL = true
		}
		if s < len(in.m.ShardEvents) {
			sh.events = in.m.ShardEvents[s]
		}
		if s < len(in.m.ShardApplySeconds) {
			sh.applySeconds = in.m.ShardApplySeconds[s]
		}
		in.shards[s] = sh
	}
	if cfg.restoredShards != nil {
		in.day = in.shards[0].builder.Day()
		in.version.Store(cfg.restoredVersion)
	}
	// Seed the merged builder, the size mirrors, and the global domain
	// set from the (possibly checkpoint-restored) shards, so a recovered
	// daemon reports — and serves — its real graph before the first new
	// batch lands.
	in.merged = graph.NewBuilder(cfg.Network, in.day, cfg.Suffixes)
	for _, sh := range in.shards {
		sh.builder.DrainFresh(in.merged.AddQuery, in.merged.AddResolution)
		sh.machines.Store(int64(sh.builder.NumMachines()))
		sh.observations.Store(int64(sh.builder.NumObservations()))
		if sh.builder.NumDomains() > 0 {
			in.noteNewDomains(sh.builder.DomainNamesSince(0))
		}
	}
	in.lastSnapVer = in.version.Load()
	in.publishGauges()
	if wm := cfg.Watermarks; wm != nil {
		// The snapshot stage trails the merged stream, so it is measured
		// against the max frontier across all sources — as is each graph
		// shard's apply mark, whose "shard-N" label partitions the merged
		// stream rather than naming a source.
		wm.Register(obs.WatermarkSnapshot, obs.WatermarkSourceAll)
		for _, sh := range in.shards {
			wm.RegisterAllFrontier(obs.WatermarkShardApply, sh.wmSource)
		}
	}
	if cfg.durable != nil {
		in.durStop = make(chan struct{})
		in.durWG.Add(1)
		go in.durabilityLoop(cfg.durable)
	}
	in.stopWorkers = make(chan struct{})
	in.shardRings = make([]atomic.Pointer[[]*eventRing], cfg.Workers)
	in.wake = make([]chan struct{}, cfg.Workers)
	for s := 0; s < cfg.Workers; s++ {
		empty := []*eventRing{}
		in.shardRings[s].Store(&empty)
		in.wake[s] = make(chan struct{}, 1)
		in.workers.Add(1)
		go in.worker(s)
	}
	return in
}

// notify rings shard s's doorbell without ever blocking; a token
// already waiting is enough.
func (in *Ingester) notify(shard int) {
	select {
	case in.wake[shard] <- struct{}{}:
	default:
	}
}

// eventSource is one producer's attachment to the shards: an SPSC ring
// per shard, plus per-shard pending buffers the binary path uses to
// publish whole frames in one batch. Each Consume loop and each Tailer
// owns exactly one, which is what keeps the rings single-producer.
type eventSource struct {
	in    *Ingester
	rings []*eventRing
	pend  [][]logio.Event
	// wm is the source's watermark frontier (nil when watermarks are
	// off); advanced on every dispatch.
	wm *obs.SourceMark
}

// newSource attaches a fresh source to every shard. name labels the
// source kind ("stream", "binary", "tail", "tracedns") for watermark
// attribution; parallel connections of one kind share a frontier.
func (in *Ingester) newSource(name string) *eventSource {
	s := &eventSource{
		in:    in,
		rings: make([]*eventRing, in.cfg.Workers),
		pend:  make([][]logio.Event, in.cfg.Workers),
	}
	if wm := in.cfg.Watermarks; wm != nil {
		s.wm = wm.Source(name)
		wm.Register(obs.WatermarkGraphApply, name)
		if in.hasWAL {
			wm.Register(obs.WatermarkWALAppend, name)
		}
	}
	in.ringMu.Lock()
	for i := range s.rings {
		s.rings[i] = newEventRing(in.cfg.QueueDepth)
		s.rings[i].source = name
		cur := *in.shardRings[i].Load()
		next := make([]*eventRing, 0, len(cur)+1)
		next = append(append(next, cur...), s.rings[i])
		in.shardRings[i].Store(&next)
	}
	in.ringMu.Unlock()
	return s
}

// close marks every ring closed (the producer is done) and wakes the
// workers so drained rings retire promptly.
func (s *eventSource) close() {
	for i, r := range s.rings {
		r.close()
		s.in.notify(i)
	}
}

// retireRings drops closed, drained rings from shard s's set.
func (in *Ingester) retireRings(shard int) {
	in.ringMu.Lock()
	cur := *in.shardRings[shard].Load()
	next := make([]*eventRing, 0, len(cur))
	for _, r := range cur {
		if !(r.isClosed() && r.empty()) {
			next = append(next, r)
		}
	}
	in.shardRings[shard].Store(&next)
	in.ringMu.Unlock()
}

// parseChunkLines is how many parsed lines one "parse" flight-recorder
// trace accumulates before flushing. Per-line traces would flood the
// recorder; per-line durations still feed the stage histogram
// individually.
const parseChunkLines = 256

// parseMeter folds per-line parse timings into the tracer: every line
// feeds the parse stage histogram, and each chunk of parseChunkLines
// lines becomes one single-span trace in the flight recorder. A nil
// *parseMeter (tracing disabled) no-ops.
type parseMeter struct {
	tr     *obs.Tracer
	source string
	start  time.Time
	total  time.Duration
	lines  int
}

func newParseMeter(tr *obs.Tracer, source string) *parseMeter {
	if tr == nil {
		return nil
	}
	return &parseMeter{tr: tr, source: source}
}

// observe books lines parsed lines at a representative per-line
// duration d — the sampled form logio.ReadEventsObserved and the frame
// decoder deliver (one timing stands in for the group it covers).
func (m *parseMeter) observe(d time.Duration, lines int) {
	if lines <= 0 {
		return
	}
	est := d * time.Duration(lines)
	if m.lines == 0 {
		m.start = time.Now().Add(-est)
	}
	m.tr.ObserveStageN(obs.StageParse, d, lines)
	m.total += est
	m.lines += lines
	if m.lines >= parseChunkLines {
		m.flush()
	}
}

// flush ships the accumulated chunk as one completed trace.
func (m *parseMeter) flush() {
	if m == nil || m.lines == 0 {
		return
	}
	m.tr.RecordRoot(obs.StageParse, m.start, m.total, map[string]string{
		"lines":  strconv.Itoa(m.lines),
		"source": m.source,
	})
	m.lines, m.total = 0, 0
}

// Consume parses one event stream and dispatches its records to the
// shards, returning when the reader is exhausted, the input is malformed
// (a line-numbered error), or Shutdown begins. It never blocks on a slow
// shard. Multiple Consume calls may run concurrently (one per TCP
// connection); each gets its own set of shard rings.
//
// The stream format is auto-detected: input starting with the segb1
// magic decodes as binary frames (malformed frames are counted as
// parse errors and skipped), anything else parses as text lines.
func (in *Ingester) Consume(r io.Reader) error {
	in.consumers.Add(1)
	defer in.consumers.Done()
	select {
	case <-in.closing:
		return ErrShuttingDown
	default:
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	// Sniff before attaching the source so the watermark frontier is
	// attributed to the right source kind from the first event.
	if sniff, _ := br.Peek(len(logio.BinaryMagic)); string(sniff) == logio.BinaryMagic {
		src := in.newSource("binary")
		defer src.close()
		return in.consumeBinary(br, src)
	}
	src := in.newSource("stream")
	defer src.close()
	return in.consumeText(br, src)
}

// consumeText runs the text line protocol for one source.
func (in *Ingester) consumeText(r io.Reader, src *eventSource) error {
	meter := newParseMeter(in.cfg.Tracer, "stream")
	var observe func(time.Duration, int)
	if meter != nil {
		observe = meter.observe
	}
	err := logio.ReadEventsObserved(r, func(e logio.Event) error {
		select {
		case <-in.closing:
			return ErrShuttingDown
		default:
		}
		src.dispatch(e)
		return nil
	}, observe)
	meter.flush()
	if err != nil && !errors.Is(err, ErrShuttingDown) {
		inc(in.m.ParseErrors)
	}
	return err
}

// consumeBinary runs the segb1 frame protocol for one source. Records
// are staged into per-shard pending buffers and batch-published at
// frame boundaries, so the ring's atomics are paid per batch instead of
// per event. Frame-granular decode failures count as parse errors and
// the stream continues; only a desynced or failing stream aborts.
func (in *Ingester) consumeBinary(r io.Reader, src *eventSource) error {
	meter := newParseMeter(in.cfg.Tracer, "binary")
	dec := logio.NewEventDecoder(r)
	defer dec.Release()
	dec.OnFrameError = func(error) { inc(in.m.ParseErrors) }
	dec.AfterFrame = func(records int, took time.Duration) {
		src.flushAll()
		if meter != nil && records > 0 {
			meter.observe(took/time.Duration(records), records)
		}
	}
	err := dec.Run(func(e *logio.Event) error {
		select {
		case <-in.closing:
			return ErrShuttingDown
		default:
		}
		src.dispatchBatched(*e)
		return nil
	})
	// Flush whatever the aborted frame staged, so every decoded event is
	// accounted for (published, shed, or dropped) exactly once.
	src.flushAll()
	meter.flush()
	if err != nil && !errors.Is(err, ErrShuttingDown) {
		inc(in.m.ParseErrors)
	}
	return err
}

// shardOf routes an event by machine hash (queries) or domain hash
// (resolutions), so one machine's events stay ordered. The hash is
// graph.ShardOf — the same routing the graph shards use — so when the
// ring and graph shard counts match, a ring's events belong to exactly
// one graph shard.
func (s *eventSource) shardOf(e logio.Event) int {
	return graph.ShardOf(eventKey(e), len(s.rings))
}

// eventKey is the routing key of an event: machine for queries, domain
// for resolutions (see graph.ShardOf for the partition invariants this
// buys).
func eventKey(e logio.Event) string {
	if e.Kind == logio.EventResolution {
		return e.Domain
	}
	return e.Machine
}

// dispatch routes one event to its shard ring. The fast path is a
// lock-free publish; a full ring falls through to the shed policy.
func (s *eventSource) dispatch(e logio.Event) {
	s.wm.Advance(e.Day)
	shard := s.shardOf(e)
	if ok, wasEmpty := s.rings[shard].publish1(e); ok {
		if wasEmpty {
			s.in.notify(shard)
		}
		return
	}
	s.dispatchSlow(shard, e)
}

// dispatchBatchSize caps a per-shard pending buffer between frame
// flushes so a shard-skewed frame still publishes incrementally.
const dispatchBatchSize = 256

// dispatchBatched stages one event for batch publication; the batch
// flushes when full or at the next frame boundary.
func (s *eventSource) dispatchBatched(e logio.Event) {
	s.wm.Advance(e.Day)
	shard := s.shardOf(e)
	s.pend[shard] = append(s.pend[shard], e)
	if len(s.pend[shard]) >= dispatchBatchSize {
		s.flushShard(shard)
	}
}

// flushAll publishes every pending per-shard batch.
func (s *eventSource) flushAll() {
	for shard := range s.pend {
		if len(s.pend[shard]) > 0 {
			s.flushShard(shard)
		}
	}
}

// flushShard batch-publishes shard's pending events; whatever does not
// fit goes through the shed policy one event at a time.
func (s *eventSource) flushShard(shard int) {
	pend := s.pend[shard]
	n, wasEmpty := s.rings[shard].publish(pend)
	if wasEmpty {
		s.in.notify(shard)
	}
	for _, e := range pend[n:] {
		s.dispatchSlow(shard, e)
	}
	// Release references before reuse so shed events do not linger.
	clear(pend)
	s.pend[shard] = pend[:0]
}

// dispatchSlow handles an event whose shard ring is full. Every full
// ring asserts the ingest_queue overload signal (self-arming: sustained
// pressure keeps re-asserting it, a burst decays after queuePressureTTL),
// then the shed policy decides the event's fate. Shedding unacknowledged
// events is reserved for the overloaded state under an explicit policy;
// otherwise the source blocks, which is the backpressure a TCP sender
// feels as a stalled read loop.
func (s *eventSource) dispatchSlow(shard int, e logio.Event) {
	in := s.in
	overloaded := false
	if h := in.cfg.Health; h != nil {
		h.SetFor(healthSignalQueue, health.Overloaded, "shard queue full", queuePressureTTL)
		overloaded = h.State() == health.Overloaded
	}
	switch in.cfg.ShedPolicy {
	case ShedBlock:
		s.blockPublish(shard, e)
	case ShedDropOldest:
		if !overloaded {
			s.blockPublish(shard, e)
			return
		}
		// Ask the worker to evict the oldest queued event (the producer
		// cannot pop an SPSC ring), then wait for the slot: under
		// overload the most recent observation is the one that keeps the
		// live graph current. The worker clears the request unserved if
		// the ring drained on its own first.
		s.rings[shard].evict.Add(1)
		in.notify(shard)
		s.blockPublish(shard, e)
	case ShedSample:
		if !overloaded {
			s.blockPublish(shard, e)
			return
		}
		if in.sampleSeq.Add(1)%shedSampleKeep == 0 {
			s.blockPublish(shard, e)
		} else {
			in.shedN(ShedSample, 1)
		}
	default:
		// Legacy tap behavior: the newest event is dropped and counted,
		// the source never blocks.
		inc(in.m.EventsDropped)
	}
}

// blockPublish parks the caller until the ring has room — the
// backpressure path. Shutdown unblocks it; the event is then counted as
// dropped rather than wedging the Consume loop forever.
func (s *eventSource) blockPublish(shard int, e logio.Event) {
	r := s.rings[shard]
	for spin := 0; ; spin++ {
		if ok, wasEmpty := r.publish1(e); ok {
			if wasEmpty {
				s.in.notify(shard)
			}
			return
		}
		select {
		case <-s.in.closing:
			inc(s.in.m.EventsDropped)
			return
		default:
		}
		if spin < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// shedN counts n events shed by the overload policy.
func (in *Ingester) shedN(reason string, n int64) {
	if in.m.EventsShed != nil {
		addN(in.m.EventsShed[reason], n)
	}
}

// batchSize bounds how many queued events a worker applies per lock
// acquisition, amortizing the per-batch bookkeeping.
const batchSize = 512

// applyScratch is a worker's reusable repartition buffer for the
// misaligned case (ring shard count != graph shard count): one pending
// slice per graph shard, refilled per segment. The partition is stable,
// so per-machine event order survives repartitioning.
type applyScratch struct {
	byShard [][]logio.Event
}

// worker drains one shard until shutdown. A panic anywhere in the
// drain path (apply, a rotation hook, a metrics callback) is recovered
// and counted, and the worker resumes draining: one poisonous batch
// must not take the whole shard — let alone the daemon — down.
func (in *Ingester) worker(shard int) {
	defer in.workers.Done()
	buf := make([]logio.Event, batchSize)
	var scratch *applyScratch
	if !in.aligned {
		scratch = &applyScratch{byShard: make([][]logio.Event, len(in.shards))}
	}
	for !in.drainShard(shard, buf, scratch) {
	}
}

// drainShard sweeps the shard's rings, blocking on the doorbell when
// everything is empty, and returns true once shutdown has begun and the
// rings are drained. It returns false when a recovered panic aborted
// the loop; the caller restarts it.
func (in *Ingester) drainShard(shard int, buf []logio.Event, scratch *applyScratch) (done bool) {
	defer func() {
		if r := recover(); r != nil {
			inc(in.m.Panics)
		}
	}()
	for {
		if in.sweepShard(shard, buf, scratch) > 0 {
			continue
		}
		select {
		case <-in.wake[shard]:
		case <-in.stopWorkers:
			// Producers are gone (Shutdown waits for them before closing
			// stopWorkers): once a sweep comes up empty, so is the shard.
			if in.sweepShard(shard, buf, scratch) == 0 {
				return true
			}
		}
	}
}

// sweepShard makes one pass over the shard's rings: serving drop-oldest
// eviction requests, applying queued events in batches, and retiring
// rings whose producer closed and whose queue drained. Returns how many
// events it handled (applied or shed) — zero means the shard was idle.
func (in *Ingester) sweepShard(shard int, buf []logio.Event, scratch *applyScratch) (handled int) {
	rings := *in.shardRings[shard].Load()
	retire := false
	for _, r := range rings {
		// Serve the producer's eviction request only while the ring is
		// actually full; a request that drained on its own is stale.
		if ev := r.evict.Load(); ev > 0 {
			if r.full() {
				n := r.shedOldest(ev)
				if n > 0 {
					in.shedN(ShedDropOldest, int64(n))
					r.evict.Add(^uint64(n - 1)) // subtract n
					handled += n
				}
			} else {
				r.evict.Store(0)
			}
		}
		for {
			n := r.consume(buf)
			if n == 0 {
				break
			}
			in.apply(buf[:n], r.source, shard, scratch)
			handled += n
		}
		if r.isClosed() && r.empty() {
			retire = true
		}
	}
	if retire {
		in.retireRings(shard)
	}
	return handled
}

// rotation is one finalized epoch handed to the OnRotate hook.
type rotation struct {
	day   int
	final *graph.Graph
}

// walFlushBytes caps one WAL record: a batch whose serialized lines
// exceed it is split across several records. The flush triggers after an
// appended line crosses the threshold, so a record can reach
// walFlushBytes + one maximum-size event line — the constant must keep
// that sum under wal.MaxRecordBytes (asserted in tests) or batches
// holding large resolution lines would be rejected by wal.Append.
const walFlushBytes = 256 << 10

// apply folds a batch of events into the live epoch, rotating when a
// later day appears. The batch is cut into day segments: each segment
// applies under the epoch read lock (plus exactly one shard lock per
// touched shard), and a later-day boundary rotates the epoch under the
// write lock before the next segment runs. Each batch is one
// graph_apply trace; the WAL flushes inside it appear as wal_append
// child spans. source names the producer kind the batch came from and
// ringShard the ring the batch was swept from — when ring and graph
// shards are aligned, that is also the graph shard it feeds.
func (in *Ingester) apply(batch []logio.Event, source string, ringShard int, scratch *applyScratch) {
	if in.cfg.ApplyHook != nil {
		in.cfg.ApplyHook()
	}
	_, span := in.cfg.Tracer.StartSpan(context.Background(), obs.StageGraphApply)
	var (
		rotations []rotation
		applied   int64
		walOK     = true
	)
	for off := 0; off < len(batch); {
		n, segApplied, segWALOK := in.applySegment(batch[off:], ringShard, scratch, span)
		off += n
		applied += segApplied
		walOK = walOK && segWALOK
		if off < len(batch) {
			// batch[off] belongs to a later day than the epoch the segment
			// ran under: rotate forward. rotate no-ops (and the next
			// segment picks the event up) when another worker crossed the
			// boundary first. A multi-day jump still causes one rotation.
			if r := in.rotate(batch[off].Day); r != nil {
				rotations = append(rotations, *r)
			}
		}
	}
	span.SetAttr("events", len(batch))
	span.SetAttr("applied", applied)
	if len(rotations) > 0 {
		span.SetAttr("rotations", len(rotations))
	}
	span.End()

	if wm := in.cfg.Watermarks; wm != nil {
		maxDay := batch[0].Day
		for _, e := range batch[1:] {
			if e.Day > maxDay {
				maxDay = e.Day
			}
		}
		wm.Ack(obs.WatermarkGraphApply, source, maxDay)
		// The WAL ack only advances when every flush in the batch landed;
		// a failed append leaves the wal_append watermark behind, which is
		// exactly the durability lag the gauge should show.
		if in.hasWAL && walOK {
			wm.Ack(obs.WatermarkWALAppend, source, maxDay)
		}
	}

	addN(in.m.EventsIngested, applied)
	in.publishGauges()
	for _, r := range rotations {
		// Finalized epochs get the same preparation as served snapshots
		// (label application), so rotation hooks can classify them.
		if in.cfg.PrepareSnapshot != nil {
			in.cfg.PrepareSnapshot(r.final)
		}
		if in.cfg.OnRotate != nil {
			in.cfg.OnRotate(r.day, r.final)
		}
	}
}

// applySegment applies the longest batch prefix that belongs to the
// current epoch (events at or before the epoch day) and reports how many
// events it consumed; a shorter-than-batch return means the next event
// starts a later day and the caller must rotate. Aligned batches go
// straight to the ring's graph shard; otherwise the segment is
// repartitioned by graph.ShardOf through scratch.
func (in *Ingester) applySegment(events []logio.Event, ringShard int, scratch *applyScratch, span *obs.Span) (n int, applied int64, walOK bool) {
	in.epochMu.RLock()
	defer in.epochMu.RUnlock()
	day := in.day
	n = len(events)
	for i := range events {
		if events[i].Day > day {
			n = i
			break
		}
	}
	if n == 0 {
		return 0, 0, true
	}
	seg := events[:n]
	if in.aligned {
		applied, walOK = in.shardApply(in.shards[ringShard], seg, day, span)
		return n, applied, walOK
	}
	for _, e := range seg {
		s := graph.ShardOf(eventKey(e), len(in.shards))
		scratch.byShard[s] = append(scratch.byShard[s], e)
	}
	walOK = true
	for s, evs := range scratch.byShard {
		if len(evs) == 0 {
			continue
		}
		a, ok := in.shardApply(in.shards[s], evs, day, span)
		applied += a
		walOK = walOK && ok
		clear(evs) // release event references before reuse
		scratch.byShard[s] = evs[:0]
	}
	return n, applied, walOK
}

// shardApply is one shard's apply critical section: builder appends,
// activity marks, and the shard's WAL stripe move together under the
// shard lock. The unlock is deferred so a panic inside a builder append
// cannot leave the shard mutex held when the worker's recovery kicks
// in. Callers hold epochMu for read; day is the epoch day they read
// under it. walOK reports whether every stripe append succeeded.
func (in *Ingester) shardApply(sh *graphShard, events []logio.Event, day int, span *obs.Span) (applied int64, walOK bool) {
	start := time.Now() // before the lock: contention is part of apply latency
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.walBuf.Reset()
	sh.walBatchErr = false
	ndBefore := sh.builder.NumDomains()
	for _, e := range events {
		if e.Day < day {
			inc(in.m.EventsStale)
			continue
		}
		switch e.Kind {
		case logio.EventQuery:
			sh.builder.AddQuery(e.Machine, e.Domain)
			if in.cfg.Activity != nil {
				in.cfg.Activity.MarkDomain(e.Day, e.Domain)
				in.cfg.Activity.MarkE2LD(e.Day, in.cfg.Suffixes.E2LD(e.Domain))
			}
		case logio.EventResolution:
			for _, ip := range e.IPs {
				sh.builder.AddResolution(e.Domain, ip)
			}
		}
		if sh.wal != nil {
			in.appendShardWAL(sh, e, span)
		}
		applied++
	}
	if sh.wal != nil {
		in.flushShardWAL(sh, span)
	}
	if applied > 0 {
		// Inside the shard lock, after the appends: a drain that wins the
		// lock next sees every event this version accounts for.
		in.version.Add(1)
		sh.machines.Store(int64(sh.builder.NumMachines()))
		sh.observations.Store(int64(sh.builder.NumObservations()))
		if nd := sh.builder.NumDomains(); nd > ndBefore {
			in.noteNewDomains(sh.builder.DomainNamesSince(ndBefore))
		}
		addN(sh.events, applied)
		if sh.applySeconds != nil {
			sh.applySeconds.Observe(time.Since(start).Seconds())
		}
		in.cfg.Watermarks.Ack(obs.WatermarkShardApply, sh.wmSource, day)
	}
	return applied, !sh.walBatchErr
}

// rotate finalizes the current epoch and starts newDay: every shard's
// outstanding delta is drained into the merged builder, the merged
// builder is finalized as the epoch's graph, and fresh shard builders
// start the new day. Returns nil when another worker already rotated to
// (or past) newDay.
func (in *Ingester) rotate(newDay int) *rotation {
	in.epochMu.Lock()
	defer in.epochMu.Unlock()
	if newDay <= in.day {
		return nil
	}
	in.drainShardsLocked()
	final := in.merged.Snapshot()
	r := &rotation{day: in.day, final: final}
	for _, sh := range in.shards {
		sh.mu.Lock()
		sh.builder = graph.NewBuilder(in.cfg.Network, newDay, in.cfg.Suffixes)
		sh.machines.Store(0)
		sh.observations.Store(0)
		sh.mu.Unlock()
	}
	in.merged = graph.NewBuilder(in.cfg.Network, newDay, in.cfg.Suffixes)
	in.day = newDay
	in.domainMu.Lock()
	in.domainSet = make(map[string]struct{})
	in.domainN.Store(0)
	in.domainMu.Unlock()
	v := in.version.Add(1)
	// A rotation invalidates every delta baseline: poison the ring so
	// SnapshotSince spans crossing the boundary come back inexact and
	// consumers re-score everything.
	in.deltaMu.Lock()
	in.ring.push(deltaEntry{from: v, to: v, inexact: true})
	in.lastSnapVer = v
	in.deltaMu.Unlock()
	inc(in.m.Rotations)
	if in.cfg.Activity != nil {
		in.cfg.Activity.Trim(newDay - in.cfg.ActivityKeepDays)
	}
	return r
}

// drainShardsLocked folds every shard's fresh delta since its last drain
// into the merged builder. The per-shard deltas are already deduplicated
// and — by the ShardOf routing invariants — disjoint across shards, so
// the merged builder receives each new edge and address exactly once.
// Callers must hold epochMu (read side plus snapMu, or write side), so
// only one drain touches the merged builder at a time.
func (in *Ingester) drainShardsLocked() {
	for _, sh := range in.shards {
		sh.mu.Lock()
		sh.builder.DrainFresh(in.merged.AddQuery, in.merged.AddResolution)
		sh.mu.Unlock()
	}
}

// noteNewDomains records freshly interned shard domains in the global
// domain set behind the graph_domains gauge.
func (in *Ingester) noteNewDomains(names []string) {
	in.domainMu.Lock()
	for _, name := range names {
		in.domainSet[name] = struct{}{}
	}
	in.domainN.Store(int64(len(in.domainSet)))
	in.domainMu.Unlock()
}

// publishGauges refreshes the graph size gauges from the per-shard
// mirrors and the global domain set.
func (in *Ingester) publishGauges() {
	if in.m.GraphMachines != nil {
		var n int64
		for _, sh := range in.shards {
			n += sh.machines.Load()
		}
		in.m.GraphMachines.SetInt(n)
	}
	if in.m.GraphDomains != nil {
		in.m.GraphDomains.SetInt(in.domainN.Load())
	}
	if in.m.GraphObservations != nil {
		var n int64
		for _, sh := range in.shards {
			n += sh.observations.Load()
		}
		in.m.GraphObservations.SetInt(n)
	}
}

// appendShardWAL stages one event into the shard's WAL record being
// built, in the configured format, cutting a record whenever the buffer
// crosses walFlushBytes. Callers hold the shard lock.
func (in *Ingester) appendShardWAL(sh *graphShard, e logio.Event, span *obs.Span) {
	if in.cfg.BinaryWAL {
		if sh.walEnc == nil {
			sh.walEnc = logio.NewEventEncoder(&sh.walBuf)
		}
		if sh.walBuf.Len() == 0 && sh.walEnc.Buffered() == 0 {
			// Record start: fresh symbol table, so every WAL record is a
			// self-contained segb1 stream replay can decode in isolation.
			sh.walEnc.Reset(&sh.walBuf)
		}
		if err := sh.walEnc.Encode(e); err != nil {
			// An event too large for one frame cannot be made durable;
			// count it like any other failed append and keep serving.
			inc(in.m.WALAppendFailures)
			sh.walBatchErr = true
			return
		}
		// Worst case here is walFlushBytes plus one maximum-size frame,
		// comfortably under wal.MaxRecordBytes (asserted in tests).
		if sh.walBuf.Len()+sh.walEnc.Buffered() >= walFlushBytes {
			in.flushShardWAL(sh, span)
		}
		return
	}
	sh.walLine.Reset()
	logio.WriteEvent(&sh.walLine, e)
	// Flush first if this line would push the buffered record
	// past the WAL's cap: wal.Append rejects oversized records
	// wholesale, which would silently void durability for every
	// event already in the buffer. Unreachable while
	// walFlushBytes + logio.MaxLineBytes fits in a record
	// (asserted in tests), but cheap insurance against drift.
	if sh.walBuf.Len() > 0 && sh.walBuf.Len()+sh.walLine.Len() > wal.MaxRecordBytes {
		in.flushShardWAL(sh, span)
	}
	sh.walBuf.Write(sh.walLine.Bytes())
	if sh.walBuf.Len() >= walFlushBytes {
		in.flushShardWAL(sh, span)
	}
}

// flushShardWAL appends the shard's buffered event lines as one record
// on its WAL stripe. Append failures are counted, not fatal: segugiod
// stays available at reduced durability rather than dying on a full
// disk. The append shows up as a wal_append child of the batch's
// graph_apply span. Callers hold the shard lock.
func (in *Ingester) flushShardWAL(sh *graphShard, span *obs.Span) {
	if sh.walEnc != nil && sh.walEnc.Buffered() > 0 {
		// Complete the in-progress binary frame; writing into a
		// bytes.Buffer cannot fail.
		sh.walEnc.Flush()
	}
	if sh.walBuf.Len() == 0 {
		return
	}
	start := time.Now()
	_, err := sh.wal.Append(sh.walBuf.Bytes())
	took := time.Since(start)
	if err != nil {
		inc(in.m.WALAppendFailures)
		sh.walBatchErr = true
		if h := in.cfg.Health; h != nil {
			h.SetFor(healthSignalWAL, health.Degraded,
				fmt.Sprintf("wal append failed: %v", err), walFaultTTL)
		}
	} else if h := in.cfg.Health; h != nil && took >= slowWALAppend {
		h.SetFor(healthSignalWAL, health.Degraded,
			fmt.Sprintf("wal append took %s", took.Round(time.Millisecond)), walFaultTTL)
	}
	span.RecordChild(obs.StageWALAppend, took)
	sh.walBuf.Reset()
}

// Day returns the current epoch day.
func (in *Ingester) Day() int {
	in.epochMu.RLock()
	defer in.epochMu.RUnlock()
	return in.day
}

// Version returns a counter that moves whenever the live graph changes;
// callers can cheaply detect staleness between Snapshot calls.
func (in *Ingester) Version() uint64 {
	return in.version.Load()
}

// NumShards reports the graph shard count.
func (in *Ingester) NumShards() int {
	return len(in.shards)
}

// QueueDepths reports the queued-event count per ring shard, summed
// across each shard's source rings — the shard_queue_depth gauge. With
// the default aligned configuration, ring shard s feeds graph shard s.
func (in *Ingester) QueueDepths() []int64 {
	out := make([]int64, len(in.shardRings))
	for s := range in.shardRings {
		var n uint64
		for _, r := range *in.shardRings[s].Load() {
			n += r.size()
		}
		out[s] = int64(n)
	}
	return out
}

// Snapshot returns an immutable view of the live graph plus its version.
// The view is built by draining every shard's fresh delta into the
// merged builder and snapshotting that — by the ShardOf routing
// invariants the drained deltas are disjoint, so the merged view is the
// exact union of the shards. Snapshots are cached: repeated calls
// without intervening ingestion return the same graph. The
// PrepareSnapshot hook has already run on the returned graph.
func (in *Ingester) Snapshot() (*graph.Graph, uint64) {
	in.snapMu.Lock()
	defer in.snapMu.Unlock()

	in.epochMu.RLock()
	v, day := in.version.Load(), in.day
	if in.snap != nil && v == in.snapVersion && day == in.snapDay {
		in.epochMu.RUnlock()
		in.cfg.Watermarks.Ack(obs.WatermarkSnapshot, obs.WatermarkSourceAll, day)
		return in.snap, v
	}
	start := time.Now()
	in.drainShardsLocked()
	g := in.merged.Snapshot()
	in.recordSnapshot(g, v)
	in.epochMu.RUnlock()

	if in.cfg.PrepareSnapshot != nil {
		in.cfg.PrepareSnapshot(g)
		// Tell the merged builder this snapshot is labeled so the next
		// one can relabel incrementally against it. The builder ignores
		// the call if a rotation slipped in between.
		in.epochMu.RLock()
		in.merged.MarkLabeled(g)
		in.epochMu.RUnlock()
	}
	if in.m.SnapshotSeconds != nil {
		in.m.SnapshotSeconds.Observe(time.Since(start).Seconds())
	}
	in.snap, in.snapVersion, in.snapDay = g, v, day
	in.cfg.Watermarks.Ack(obs.WatermarkSnapshot, obs.WatermarkSourceAll, day)
	return g, v
}

// ShardSnapshots is Snapshot plus per-shard views: the merged graph the
// production consumers run on, wrapped with snapshots of every shard
// taken in parallel for scatter-gather reads (graph.ShardedSnapshot's
// MachineFractions, DomainIPs) and shard introspection. PrepareSnapshot
// runs on each shard view, so shard-local labels are in place. Under
// concurrent ingestion the shard views may include events newer than the
// merged view; quiesce ingestion first when exact agreement matters.
func (in *Ingester) ShardSnapshots() (*graph.ShardedSnapshot, uint64) {
	g, v := in.Snapshot()
	in.epochMu.RLock()
	defer in.epochMu.RUnlock()
	shards := make([]*graph.Graph, len(in.shards))
	var wg sync.WaitGroup
	for i, sh := range in.shards {
		wg.Add(1)
		go func(i int, sh *graphShard) {
			defer wg.Done()
			sh.mu.Lock()
			shards[i] = sh.builder.Snapshot()
			sh.mu.Unlock()
		}(i, sh)
	}
	wg.Wait()
	if in.cfg.PrepareSnapshot != nil {
		for _, sg := range shards {
			in.cfg.PrepareSnapshot(sg)
		}
	}
	return graph.NewShardedSnapshot(g, shards), v
}

// SnapshotSince is Snapshot plus the delta against an earlier version the
// caller has already processed: the set of domains whose
// classification-relevant state changed between since and the returned
// version. When the delta is inexact (epoch rotated, history trimmed, or
// since is unknown) the caller must treat every domain as dirty.
func (in *Ingester) SnapshotSince(since uint64) (*graph.Graph, uint64, graph.Delta) {
	g, v := in.Snapshot()
	if since == v {
		return g, v, graph.Delta{Exact: true}
	}
	in.deltaMu.Lock()
	names, ok := in.ring.since(since, v)
	in.deltaMu.Unlock()
	return g, v, graph.Delta{Exact: ok, Domains: names}
}

// recordSnapshot stamps the delta ring with the dirty delta of a freshly
// taken merged snapshot at version v. Every merged.Snapshot call on the
// live merged builder must be recorded here (the snapshot consumes the
// builder's dirty baseline, so skipping an entry would silently
// under-report later deltas). Events drained after v was read are part
// of g and of this delta — the next snapshot's span then starts at v,
// which at worst re-reports a domain, never misses one.
func (in *Ingester) recordSnapshot(g *graph.Graph, v uint64) {
	names, exact := g.DirtyDomainNames()
	in.deltaMu.Lock()
	in.ring.push(deltaEntry{from: in.lastSnapVer, to: v, inexact: !exact, domains: names})
	in.lastSnapVer = v
	in.deltaMu.Unlock()
	if in.m.DirtyDomains != nil {
		if exact {
			in.m.DirtyDomains.SetInt(int64(len(names)))
		} else {
			in.m.DirtyDomains.SetInt(int64(g.NumDomains()))
		}
	}
}

// Shutdown drains the ingest pipeline: new and in-flight Consume loops
// stop, queued events are applied, and workers exit. When the ingester
// is durable, a final WAL sync and checkpoint run after the drain, so a
// clean shutdown restarts with an empty replay. It is idempotent.
func (in *Ingester) Shutdown() {
	in.closeOnce.Do(func() {
		close(in.closing)
		in.consumers.Wait()
		// Producers are done; close every ring so workers drain what is
		// queued, then tell them to exit once their sweeps come up empty.
		in.ringMu.Lock()
		for s := range in.shardRings {
			for _, r := range *in.shardRings[s].Load() {
				r.close()
			}
		}
		in.ringMu.Unlock()
		close(in.stopWorkers)
		for s := range in.wake {
			in.notify(s)
		}
	})
	in.workers.Wait()
	in.durOnce.Do(func() {
		if !in.hasWAL {
			return
		}
		if in.durStop != nil {
			close(in.durStop)
			in.durWG.Wait()
		}
		if in.cfg.durable != nil {
			in.checkpoint(in.cfg.durable)
		}
		for _, sh := range in.shards {
			if sh.wal != nil {
				sh.wal.Close()
			}
		}
	})
}

// TailFile consumes a file in follow mode: it reads to EOF, then polls
// for appended data every interval until ctx is canceled (returning nil)
// or the file errors. A rotated file (new inode at the same path) is
// reopened from the start, and an in-place truncation (size below the
// read offset) rewinds to zero — so logrotate-style deployments never
// leave the daemon silently tailing a deleted fd. This is the "tail -f"
// ingestion source for deployments that drop event files next to the
// daemon; it is shorthand for NewTailer(path, interval).Run(ctx).
func (in *Ingester) TailFile(ctx context.Context, path string, interval time.Duration) error {
	return in.NewTailer(path, interval).Run(ctx)
}

// Tailer follows one event file at line granularity and remembers how
// far it got: the byte offset just past the last fully read line, plus
// the identity of the file that offset belongs to. The state survives
// across Run calls, so a supervisor that restarts a failed tail source
// resumes exactly where the previous run stopped instead of re-ingesting
// — and double-counting — everything the file already delivered.
// Malformed lines are counted and skipped rather than aborting the
// stream, so one bad line cannot put a supervised tail into an infinite
// restart/re-ingest loop. A Tailer is not safe for concurrent Run calls.
type Tailer struct {
	in       *Ingester
	src      *eventSource
	path     string
	interval time.Duration
	meter    *parseMeter // nil when tracing is disabled
	// parse maps one trimmed line to an event; ok=false with a nil
	// error skips the line silently. Nil wraps logio.ParseEvent — the
	// seam the trace_dns adapter plugs its JSONL mapping into.
	parse func(line string) (e logio.Event, ok bool, err error)

	// Parse-metering sampler state: 1 line in logio.ParseSampleEvery is
	// timed and stands in for the pending lines it covers.
	lastD   time.Duration
	haveD   bool
	pending int

	// offset is the resume point: every line before it was fully read
	// (dispatched or deliberately skipped). fi identifies the file the
	// offset belongs to; nil means start from scratch.
	offset int64
	fi     os.FileInfo
}

// NewTailer builds a Tailer for path polling at interval (default
// 500ms). Pass its Run to Supervise to get a tail source that survives
// transient I/O failures without replaying consumed data. The tailer
// holds its shard rings for the ingester's lifetime (they retire at
// Shutdown), so build one per tailed path, not one per attempt.
func (in *Ingester) NewTailer(path string, interval time.Duration) *Tailer {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Tailer{in: in, src: in.newSource("tail"), path: path, interval: interval, meter: newParseMeter(in.cfg.Tracer, "tail")}
}

// errFileChanged signals that the tailed path was rotated (new inode) or
// truncated in place: the current file generation is exhausted and the
// tail must reopen from offset zero.
var errFileChanged = errors.New("ingest: tailed file rotated or truncated")

// Run tails the file until ctx is canceled or the ingester shuts down
// (both return nil) or an I/O error occurs (returned, so a supervisor
// restarts the tail; the consumed offset is preserved for the next Run).
func (t *Tailer) Run(ctx context.Context) error {
	for {
		err := t.runFile(ctx)
		switch {
		case errors.Is(err, errFileChanged):
			// New file generation behind the same path: start it from
			// byte zero.
			t.fi, t.offset = nil, 0
			inc(t.in.m.TailReopens)
		case errors.Is(err, ErrShuttingDown) || ctx.Err() != nil:
			return nil
		default:
			return err
		}
	}
}

// runFile consumes one generation of the tailed file, resuming at the
// remembered offset when the file on disk is still the one the offset
// was measured against (same inode, not shrunk below it).
func (t *Tailer) runFile(ctx context.Context) error {
	f, err := os.Open(t.path)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	start := int64(0)
	if t.fi != nil && os.SameFile(t.fi, fi) && fi.Size() >= t.offset {
		start = t.offset
	}
	if start > 0 {
		if _, err := f.Seek(start, io.SeekStart); err != nil {
			f.Close()
			return err
		}
	}
	t.fi, t.offset = fi, start
	r := &followReader{ctx: ctx, closing: t.in.closing, path: t.path, f: f, fi: fi, offset: start, interval: t.interval}
	defer f.Close()
	return t.consume(r)
}

// consume reads line-delimited events from r, dispatching each one and
// advancing t.offset past every fully read line — the offset therefore
// always names a line boundary that is safe to resume from. Lines that
// fail to parse, and lines longer than logio.MaxLineBytes, are counted
// as parse errors and skipped.
func (t *Tailer) consume(r *followReader) error {
	in := t.in
	in.consumers.Add(1)
	defer in.consumers.Done()
	defer t.flushMeter()
	br := bufio.NewReaderSize(r, 64<<10)
	var line []byte
	discarding := false // inside an over-long line, dropping until '\n'
	var lineBytes int64 // bytes of the line accumulated so far
	for {
		chunk, rerr := br.ReadSlice('\n')
		lineBytes += int64(len(chunk))
		if !discarding {
			line = append(line, chunk...)
			if len(line) > logio.MaxLineBytes {
				discarding, line = true, line[:0]
			}
		}
		switch {
		case rerr == nil:
			if !discarding {
				t.processLine(line)
			} else {
				inc(in.m.ParseErrors)
			}
			t.offset += lineBytes
			line, discarding, lineBytes = line[:0], false, 0
		case errors.Is(rerr, bufio.ErrBufferFull):
			continue
		case errors.Is(rerr, errFileChanged):
			// The file was swapped or truncated underneath us. Treat an
			// unterminated final line as complete (mirrors how scanners
			// treat EOF without a trailing newline); the caller reopens
			// the new generation from offset zero, resetting t.offset.
			if !discarding && len(line) > 0 {
				t.processLine(line)
			}
			return errFileChanged
		case errors.Is(rerr, io.EOF):
			// followReader reports EOF only when the context ended or the
			// ingester began shutting down: leave any unterminated partial
			// line unconsumed so the next run re-reads it from t.offset.
			return nil
		default:
			return rerr
		}
		select {
		case <-in.closing:
			return ErrShuttingDown
		default:
		}
	}
}

// processLine parses one event line and dispatches it; blank lines and
// comments are ignored, malformed lines counted and dropped. Parse
// metering is sampled: 1 line in logio.ParseSampleEvery is timed (the
// first always), and the measurement is booked for the whole group.
func (t *Tailer) processLine(raw []byte) {
	line := strings.TrimSpace(string(raw))
	if line == "" || strings.HasPrefix(line, "#") {
		return
	}
	sample := t.meter != nil && (!t.haveD || t.pending+1 >= logio.ParseSampleEvery)
	var t0 time.Time
	if sample {
		t0 = time.Now()
	}
	var (
		e   logio.Event
		ok  bool
		err error
	)
	if t.parse != nil {
		e, ok, err = t.parse(line)
	} else {
		e, err = logio.ParseEvent(line)
		ok = err == nil
	}
	if sample {
		t.lastD = time.Since(t0)
		t.haveD = true
	}
	if err != nil {
		inc(t.in.m.ParseErrors)
		return
	}
	if !ok {
		return
	}
	if t.meter != nil {
		t.pending++
		if sample {
			t.meter.observe(t.lastD, t.pending)
			t.pending = 0
		}
	}
	t.src.dispatch(e)
}

// flushMeter books lines parsed since the last sample, then ships the
// meter's open chunk.
func (t *Tailer) flushMeter() {
	if t.pending > 0 && t.haveD {
		t.meter.observe(t.lastD, t.pending)
		t.pending = 0
	}
	t.meter.flush()
}

// followReader blocks at EOF, polling for appended bytes until its
// context is canceled or the ingester shuts down, at which point it
// reports EOF. Each poll checks whether the path was rotated (different
// inode) or truncated in place (size shrank below the offset already
// read) and reports errFileChanged so the Tailer can reopen with a fresh
// offset baseline.
type followReader struct {
	ctx      context.Context
	closing  <-chan struct{}
	path     string
	f        *os.File
	fi       os.FileInfo
	offset   int64
	interval time.Duration
}

func (r *followReader) Read(p []byte) (int, error) {
	for {
		n, err := r.f.Read(p)
		r.offset += int64(n)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		if r.checkRotated() {
			return 0, errFileChanged
		}
		select {
		case <-r.ctx.Done():
			return 0, io.EOF
		case <-r.closing:
			return 0, io.EOF
		case <-time.After(r.interval):
		}
	}
}

// checkRotated re-stats the tailed path and reports whether the file
// underneath has been swapped or truncated. A stat failure (rotated away
// and not yet recreated) is not a change: the reader keeps polling until
// a successful stat sees the new inode.
func (r *followReader) checkRotated() bool {
	fi, err := os.Stat(r.path)
	if err != nil {
		return false
	}
	return !os.SameFile(r.fi, fi) || fi.Size() < r.offset
}
