package ingest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/logio"
)

// benchBatches generates parsed event batches, so the benchmarks measure
// graph application rather than wire parsing.
func benchBatches(total, batch int) [][]logio.Event {
	rng := rand.New(rand.NewSource(7))
	out := make([][]logio.Event, 0, total/batch)
	for len(out)*batch < total {
		events := make([]logio.Event, batch)
		for i := range events {
			m := rng.Intn(4000)
			d := rng.Intn(15000)
			events[i] = logio.Event{
				Kind:    logio.EventQuery,
				Day:     1,
				Machine: fmt.Sprintf("m%05d", m),
				Domain:  fmt.Sprintf("h%d.zone%d.example.com", d, d%700),
			}
			if i%7 == 0 {
				events[i] = logio.Event{
					Kind:   logio.EventResolution,
					Day:    1,
					Domain: events[i].Domain,
					IPs:    []dnsutil.IPv4{dnsutil.IPv4(rng.Uint32())},
				}
			}
		}
		out = append(out, events)
	}
	return out
}

// benchShardBatches routes the benchBatches stream the way the dispatch
// layer would — by machine/domain hash — and re-batches per shard, so
// the sharded benchmarks exercise the aligned (zero-repartition) path.
func benchShardBatches(total, batch, shards int) [][][]logio.Event {
	perShard := make([][]logio.Event, shards)
	for _, events := range benchBatches(total, batch) {
		for _, e := range events {
			s := graph.ShardOf(eventKey(e), shards)
			perShard[s] = append(perShard[s], e)
		}
	}
	out := make([][][]logio.Event, shards)
	for s, evs := range perShard {
		for len(evs) > 0 {
			n := min(batch, len(evs))
			out[s] = append(out[s], evs[:n])
			evs = evs[n:]
		}
	}
	return out
}

// BenchmarkIngestApply measures raw event-application throughput: one op
// applies one 256-event batch to the live builder (no snapshots).
func BenchmarkIngestApply(b *testing.B) {
	m, _ := newMetrics()
	in := New(Config{Network: "bench", StartDay: 1, Workers: 1, Metrics: m})
	defer in.Shutdown()
	batches := benchBatches(1<<20, 256)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.apply(batches[i%len(batches)], "bench", 0, nil)
	}
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkIngestApplyWithSnapshots is the deployment mix: continuous
// ingestion with a snapshot (merge + publish) every 16 batches, the
// pattern the checkpointer and classify-all path impose on the builder.
func BenchmarkIngestApplyWithSnapshots(b *testing.B) {
	m, _ := newMetrics()
	in := New(Config{Network: "bench", StartDay: 1, Workers: 1, Metrics: m})
	defer in.Shutdown()
	batches := benchBatches(1<<20, 256)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.apply(batches[i%len(batches)], "bench", 0, nil)
		if i%16 == 15 {
			in.Snapshot()
		}
	}
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkIngestApplyShards is the sharding scaling curve: N appliers,
// each feeding its own machine-hash shard, measuring aggregate
// graph-apply throughput. One op is one 256-event batch on one shard.
// On a single-core host the curve is flat (appliers serialize on the
// CPU, not on a lock); the CI gate conditions on available parallelism.
func BenchmarkIngestApplyShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m, _ := newMetrics()
			in := New(Config{Network: "bench", StartDay: 1, Workers: shards, Metrics: m})
			defer in.Shutdown()
			perShard := benchShardBatches(1<<20, 256, shards)

			b.ReportAllocs()
			b.ResetTimer()
			var (
				wg      sync.WaitGroup
				next    atomic.Int64
				applied atomic.Int64
			)
			for s := 0; s < shards; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					batches := perShard[s]
					if len(batches) == 0 {
						return
					}
					for i := 0; next.Add(1) <= int64(b.N); i++ {
						batch := batches[i%len(batches)]
						in.apply(batch, "bench", s, nil)
						applied.Add(int64(len(batch)))
					}
				}(s)
			}
			wg.Wait()
			b.ReportMetric(float64(applied.Load())/b.Elapsed().Seconds(), "events/s")
		})
	}
}
