package ingest

import (
	"fmt"
	"math/rand"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/logio"
)

// benchBatches generates parsed event batches, so the benchmarks measure
// graph application rather than wire parsing.
func benchBatches(total, batch int) [][]logio.Event {
	rng := rand.New(rand.NewSource(7))
	out := make([][]logio.Event, 0, total/batch)
	for len(out)*batch < total {
		events := make([]logio.Event, batch)
		for i := range events {
			m := rng.Intn(4000)
			d := rng.Intn(15000)
			events[i] = logio.Event{
				Kind:    logio.EventQuery,
				Day:     1,
				Machine: fmt.Sprintf("m%05d", m),
				Domain:  fmt.Sprintf("h%d.zone%d.example.com", d, d%700),
			}
			if i%7 == 0 {
				events[i] = logio.Event{
					Kind:   logio.EventResolution,
					Day:    1,
					Domain: events[i].Domain,
					IPs:    []dnsutil.IPv4{dnsutil.IPv4(rng.Uint32())},
				}
			}
		}
		out = append(out, events)
	}
	return out
}

// BenchmarkIngestApply measures raw event-application throughput: one op
// applies one 256-event batch to the live builder (no snapshots).
func BenchmarkIngestApply(b *testing.B) {
	m, _ := newMetrics()
	in := New(Config{Network: "bench", StartDay: 1, Workers: 1, Metrics: m})
	defer in.Shutdown()
	batches := benchBatches(1<<20, 256)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.apply(batches[i%len(batches)], "bench")
	}
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkIngestApplyWithSnapshots is the deployment mix: continuous
// ingestion with a snapshot (merge + publish) every 16 batches, the
// pattern the checkpointer and classify-all path impose on the builder.
func BenchmarkIngestApplyWithSnapshots(b *testing.B) {
	m, _ := newMetrics()
	in := New(Config{Network: "bench", StartDay: 1, Workers: 1, Metrics: m})
	defer in.Shutdown()
	batches := benchBatches(1<<20, 256)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.apply(batches[i%len(batches)], "bench")
		if i%16 == 15 {
			in.Snapshot()
		}
	}
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "events/s")
}
