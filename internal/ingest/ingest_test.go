package ingest

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/logio"
	"segugio/internal/metrics"
)

func newMetrics() (*Metrics, *metrics.Registry) {
	r := metrics.NewRegistry()
	return &Metrics{
		EventsIngested:    r.NewCounter("ingested_total", "", ""),
		EventsDropped:     r.NewCounter("dropped_total", "", ""),
		EventsStale:       r.NewCounter("stale_total", "", ""),
		ParseErrors:       r.NewCounter("parse_errors_total", "", ""),
		Rotations:         r.NewCounter("rotations_total", "", ""),
		GraphMachines:     r.NewGauge("graph_machines", "", ""),
		GraphDomains:      r.NewGauge("graph_domains", "", ""),
		GraphObservations: r.NewGauge("graph_observations", "", ""),
		Panics:            r.NewCounter("panics_total", "", ""),
		TailReopens:       r.NewCounter("tail_reopens_total", "", ""),
		WALAppendFailures: r.NewCounter("wal_append_failures_total", "", ""),
	}, r
}

// stream renders events as the wire format.
func stream(t *testing.T, events []logio.Event) string {
	t.Helper()
	var b strings.Builder
	for _, e := range events {
		if err := logio.WriteEvent(&b, e); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestIngestBuildsSameGraphAsBatch(t *testing.T) {
	sl := dnsutil.DefaultSuffixList()
	var events []logio.Event
	batch := graph.NewBuilder("net", 3, sl)
	for i := 0; i < 3000; i++ {
		machine := fmt.Sprintf("m%03d", i%70)
		domain := fmt.Sprintf("h%d.zone%d.com", i%40, i%15)
		events = append(events, logio.Event{Kind: logio.EventQuery, Day: 3, Machine: machine, Domain: domain})
		batch.AddQuery(machine, domain)
		if i%5 == 0 {
			ip := dnsutil.MakeIPv4(10, 0, byte(i%7), byte(i%90))
			events = append(events, logio.Event{Kind: logio.EventResolution, Day: 3, Domain: domain, IPs: []dnsutil.IPv4{ip}})
			batch.AddResolution(domain, ip)
		}
	}
	want := batch.Build()

	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 3, Workers: 4, Metrics: m})
	if err := in.Consume(strings.NewReader(stream(t, events))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all events applied", func() bool {
		return m.EventsIngested.Value() == int64(len(events))
	})
	got, v1 := in.Snapshot()
	in.Shutdown()

	if got.NumMachines() != want.NumMachines() || got.NumDomains() != want.NumDomains() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("sizes: got (%d,%d,%d), want (%d,%d,%d)",
			got.NumMachines(), got.NumDomains(), got.NumEdges(),
			want.NumMachines(), want.NumDomains(), want.NumEdges())
	}
	for d := int32(0); int(d) < want.NumDomains(); d++ {
		name := want.DomainName(d)
		gd, ok := got.DomainIndex(name)
		if !ok {
			t.Fatalf("domain %q missing", name)
		}
		if got.DomainDegree(gd) != want.DomainDegree(d) {
			t.Fatalf("domain %q degree %d != %d", name, got.DomainDegree(gd), want.DomainDegree(d))
		}
		if len(got.DomainIPs(gd)) != len(want.DomainIPs(d)) {
			t.Fatalf("domain %q ips %d != %d", name, len(got.DomainIPs(gd)), len(want.DomainIPs(d)))
		}
	}
	if m.EventsDropped.Value() != 0 || m.EventsStale.Value() != 0 {
		t.Fatalf("unexpected drops %d / stale %d", m.EventsDropped.Value(), m.EventsStale.Value())
	}
	_ = v1
}

func TestSnapshotCaching(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 2, Metrics: m})
	defer in.Shutdown()

	if err := in.Consume(strings.NewReader("q\t1\tm1\ta.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "event applied", func() bool { return m.EventsIngested.Value() == 1 })
	g1, v1 := in.Snapshot()
	g2, v2 := in.Snapshot()
	if g1 != g2 || v1 != v2 {
		t.Fatal("unchanged graph must return the cached snapshot")
	}
	if err := in.Consume(strings.NewReader("q\t1\tm2\tb.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second event applied", func() bool { return m.EventsIngested.Value() == 2 })
	g3, v3 := in.Snapshot()
	if g3 == g1 || v3 == v1 {
		t.Fatal("changed graph must rebuild the snapshot")
	}
	if g3.NumMachines() != 2 {
		t.Fatalf("machines = %d", g3.NumMachines())
	}
}

func TestPrepareSnapshotHook(t *testing.T) {
	prepared := 0
	in := New(Config{
		Network: "net", StartDay: 1, Workers: 1,
		PrepareSnapshot: func(g *graph.Graph) {
			prepared++
			g.ApplyLabels(graph.LabelSources{AsOf: 1})
		},
	})
	defer in.Shutdown()
	g, _ := in.Snapshot()
	if !g.Labeled() {
		t.Fatal("PrepareSnapshot must have labeled the snapshot")
	}
	in.Snapshot()
	if prepared != 1 {
		t.Fatalf("prepare ran %d times for one version", prepared)
	}
}

func TestEpochRotation(t *testing.T) {
	m, _ := newMetrics()
	var mu sync.Mutex
	var rotatedDays []int
	var finals []*graph.Graph
	act := activity.NewLog()
	in := New(Config{
		Network: "net", StartDay: 10, Workers: 1, Activity: act,
		OnRotate: func(day int, final *graph.Graph) {
			mu.Lock()
			rotatedDays = append(rotatedDays, day)
			finals = append(finals, final)
			mu.Unlock()
		},
		Metrics: m,
	})

	input := "q\t10\tm1\ta.example.com\n" +
		"q\t10\tm2\tb.example.com\n" +
		"q\t11\tm1\tc.example.com\n" + // rotates 10 -> 11
		"q\t9\tm9\told.example.com\n" + // stale: day 9 < 11
		"q\t11\tm3\td.example.com\n"
	if err := in.Consume(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rotation applied", func() bool {
		return m.Rotations.Value() == 1 && m.EventsIngested.Value() == 4
	})
	in.Shutdown()

	if in.Day() != 11 {
		t.Fatalf("day = %d, want 11", in.Day())
	}
	if m.EventsStale.Value() != 1 {
		t.Fatalf("stale = %d, want 1", m.EventsStale.Value())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rotatedDays) != 1 || rotatedDays[0] != 10 {
		t.Fatalf("rotated days = %v", rotatedDays)
	}
	if finals[0].NumMachines() != 2 || finals[0].NumDomains() != 2 {
		t.Fatalf("final graph of day 10: %d machines, %d domains", finals[0].NumMachines(), finals[0].NumDomains())
	}
	g, _ := in.Snapshot()
	if g.Day() != 11 || g.NumDomains() != 2 {
		t.Fatalf("live graph: day %d, %d domains", g.Day(), g.NumDomains())
	}
	// The query marks landed in the activity log.
	if act.DomainActiveDays("c.example.com", 11, 11) != 1 {
		t.Fatal("activity mark missing for day 11")
	}
}

func TestBackpressureDropsInsteadOfBlocking(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, QueueDepth: 1, Metrics: m})

	// Stall the single worker by saturating the shard's builder lock.
	in.shards[0].mu.Lock()
	var b strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, "q\t1\tm%d\td%d.example.com\n", i, i)
	}
	done := make(chan error, 1)
	go func() { done <- in.Consume(strings.NewReader(b.String())) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("consume: %v", err)
		}
		// Accept loop finished while the worker was stalled: backpressure
		// dropped instead of blocking.
	case <-time.After(10 * time.Second):
		t.Error("accept loop blocked on a stalled worker")
	}
	in.shards[0].mu.Unlock()
	in.Shutdown()
	if m.EventsDropped.Value() == 0 {
		t.Fatal("expected dropped events under backpressure")
	}
	if m.EventsDropped.Value()+m.EventsIngested.Value() != 5000 {
		t.Fatalf("dropped %d + ingested %d != 5000", m.EventsDropped.Value(), m.EventsIngested.Value())
	}
}

func TestConcurrentConsumers(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 4, Metrics: m})

	const streams, perStream = 8, 500
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var b strings.Builder
			for i := 0; i < perStream; i++ {
				fmt.Fprintf(&b, "q\t1\tm%d-%d\tshared%d.example.com\n", s, i, i%30)
			}
			if err := in.Consume(strings.NewReader(b.String())); err != nil {
				t.Errorf("stream %d: %v", s, err)
			}
		}(s)
	}
	wg.Wait()
	waitFor(t, "all streams applied", func() bool {
		return m.EventsIngested.Value()+m.EventsDropped.Value() == streams*perStream
	})
	// Snapshot while more events trickle in concurrently.
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		in.Consume(strings.NewReader("q\t1\tlate\tlate.example.com\n"))
	}()
	g, _ := in.Snapshot()
	if g.NumDomains() == 0 {
		t.Fatal("empty snapshot")
	}
	wg2.Wait()
	in.Shutdown()
}

func TestShutdownDrainsQueues(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 2, QueueDepth: 10000, Metrics: m})
	var b strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "q\t1\tm%d\td%d.example.com\n", i%50, i%80)
	}
	if err := in.Consume(strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	in.Shutdown() // must apply everything still queued
	if got := m.EventsIngested.Value() + m.EventsDropped.Value(); got != 2000 {
		t.Fatalf("after shutdown: ingested+dropped = %d, want 2000", got)
	}
	// Consume after shutdown aborts.
	if err := in.Consume(strings.NewReader("q\t1\tx\ty.example.com\n")); err == nil {
		t.Fatal("consume after shutdown must fail")
	}
	in.Shutdown() // idempotent
}

func TestConsumeMalformedStream(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	defer in.Shutdown()
	err := in.Consume(strings.NewReader("q\t1\tm1\ta.example.com\nGARBAGE\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered parse error, got %v", err)
	}
	if m.ParseErrors.Value() != 1 {
		t.Fatalf("parse errors = %d", m.ParseErrors.Value())
	}
}

func TestTailFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "q\t1\tm1\ta.example.com\n")
	f.Sync()

	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.TailFile(ctx, path, 10*time.Millisecond) }()

	waitFor(t, "first event", func() bool { return m.EventsIngested.Value() == 1 })
	// Append while tailing.
	io.WriteString(f, "q\t1\tm2\tb.example.com\n")
	f.Sync()
	waitFor(t, "appended event", func() bool { return m.EventsIngested.Value() == 2 })
	f.Close()

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("tail: %v", err)
	}
	in.Shutdown()
	g, _ := in.Snapshot()
	if g.NumMachines() != 2 {
		t.Fatalf("machines = %d", g.NumMachines())
	}
}

// TestTailFileRotation swaps a new file in at the tailed path (the
// logrotate move-and-recreate dance); the tail must notice the inode
// change and read the fresh file from the start.
func TestTailFileRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.log")
	if err := os.WriteFile(path, []byte("q\t1\tm1\ta.example.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.TailFile(ctx, path, 5*time.Millisecond) }()
	waitFor(t, "pre-rotation event", func() bool { return m.EventsIngested.Value() == 1 })

	// Rotate: the old file moves aside, a new one appears at the path.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("q\t1\tm2\tb.example.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-rotation event", func() bool { return m.EventsIngested.Value() == 2 })
	if m.TailReopens.Value() != 1 {
		t.Fatalf("tail reopens = %d, want 1", m.TailReopens.Value())
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("tail: %v", err)
	}
	in.Shutdown()
	g, _ := in.Snapshot()
	if _, ok := g.DomainIndex("b.example.com"); !ok {
		t.Fatal("rotated-in file's event missing")
	}
}

// TestTailFileTruncation truncates the tailed file in place (copytruncate
// rotation); the tail must rewind to offset zero instead of waiting for
// the file to regrow past its old length.
func TestTailFileTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.log")
	if err := os.WriteFile(path, []byte("q\t1\tm1\tlong-first-machine.example.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.TailFile(ctx, path, 5*time.Millisecond) }()
	waitFor(t, "pre-truncation event", func() bool { return m.EventsIngested.Value() == 1 })

	// Same inode, shorter content: size drops below the consumed offset.
	if err := os.WriteFile(path, []byte("q\t1\tm2\tb.example.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-truncation event", func() bool { return m.EventsIngested.Value() == 2 })
	if m.TailReopens.Value() == 0 {
		t.Fatal("truncation must count a tail reopen")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("tail: %v", err)
	}
	in.Shutdown()
	g, _ := in.Snapshot()
	if _, ok := g.DomainIndex("b.example.com"); !ok {
		t.Fatal("post-truncation event missing")
	}
}

// TestTailFileSkipsMalformedLines feeds a tailed file containing garbage
// between valid events: the tail must count and skip the bad line and
// keep consuming, instead of aborting the stream (which would make a
// supervisor restart re-ingest the whole file forever).
func TestTailFileSkipsMalformedLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.log")
	content := "q\t1\tm1\ta.example.com\n" +
		"GARBAGE NOT AN EVENT\n" +
		"q\t1\tm2\tb.example.com\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.TailFile(ctx, path, 5*time.Millisecond) }()

	waitFor(t, "events past the garbage line", func() bool { return m.EventsIngested.Value() == 2 })
	if m.ParseErrors.Value() != 1 {
		t.Fatalf("parse errors = %d, want 1", m.ParseErrors.Value())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("tail must not abort on a malformed line: %v", err)
	}
	in.Shutdown()
	g, _ := in.Snapshot()
	if _, ok := g.DomainIndex("b.example.com"); !ok {
		t.Fatal("event after the malformed line missing")
	}
}

// TestTailerResumesAcrossRuns restarts a Tailer on the same file (the
// supervisor scenario after a transient failure): the second run must
// resume at the consumed offset instead of re-ingesting — and hence
// double-counting — everything the first run already applied.
func TestTailerResumesAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.log")
	first := "q\t1\tm1\ta.example.com\n" + "q\t1\tm2\tb.example.com\n"
	if err := os.WriteFile(path, []byte(first), 0o644); err != nil {
		t.Fatal(err)
	}

	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	tailer := in.NewTailer(path, 5*time.Millisecond)

	ctx1, cancel1 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tailer.Run(ctx1) }()
	waitFor(t, "first run's events", func() bool { return m.EventsIngested.Value() == 2 })
	cancel1()
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "q\t1\tm3\tc.example.com\n")
	f.Close()

	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { done <- tailer.Run(ctx2) }()
	waitFor(t, "appended event", func() bool { return m.EventsIngested.Value() >= 3 })
	// Give a re-ingesting tailer time to double-count before asserting.
	time.Sleep(50 * time.Millisecond)
	if got := m.EventsIngested.Value(); got != 3 {
		t.Fatalf("ingested = %d, want 3 (restarted run must not re-consume the file)", got)
	}
	cancel2()
	if err := <-done; err != nil {
		t.Fatalf("second run: %v", err)
	}
	in.Shutdown()
	g, _ := in.Snapshot()
	if g.NumMachines() != 3 {
		t.Fatalf("machines = %d, want 3", g.NumMachines())
	}
}

// TestWorkerPanicRecovery poisons the OnRotate hook: the worker must
// recover the panic, count it, and keep applying events afterwards.
func TestWorkerPanicRecovery(t *testing.T) {
	m, _ := newMetrics()
	var hookCalls atomic.Int32
	in := New(Config{
		Network: "net", StartDay: 1, Workers: 1, Metrics: m,
		OnRotate: func(day int, final *graph.Graph) {
			if hookCalls.Add(1) == 1 {
				panic("rotation hook exploded")
			}
		},
	})
	defer in.Shutdown()

	if err := in.Consume(strings.NewReader("q\t1\tm1\ta.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first event", func() bool { return m.EventsIngested.Value() == 1 })

	// Day 2 rotates; the hook panics on this first rotation.
	if err := in.Consume(strings.NewReader("q\t2\tm2\tb.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "panic recovered", func() bool { return m.Panics.Value() == 1 })

	// The shard must still be alive and applying.
	if err := in.Consume(strings.NewReader("q\t2\tm3\tc.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-panic event", func() bool { return m.EventsIngested.Value() == 3 })

	// A second rotation exercises the healed hook.
	if err := in.Consume(strings.NewReader("q\t3\tm4\td.example.com\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second rotation", func() bool { return m.Rotations.Value() == 2 })
	if hookCalls.Load() != 2 {
		t.Fatalf("hook ran %d times, want 2", hookCalls.Load())
	}
	g, _ := in.Snapshot()
	if g.Day() != 3 {
		t.Fatalf("day = %d, want 3", g.Day())
	}
}

// TestSnapshotShutdownRace hammers Snapshot/Version readers against
// concurrent dispatch and a mid-flight Shutdown; run under -race.
func TestSnapshotShutdownRace(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 4, Metrics: m})

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				in.Snapshot()
				in.Version()
				in.Day()
			}
		}()
	}

	var feeders sync.WaitGroup
	for s := 0; s < 4; s++ {
		feeders.Add(1)
		go func(s int) {
			defer feeders.Done()
			var b strings.Builder
			for i := 0; i < 500; i++ {
				fmt.Fprintf(&b, "q\t%d\tm%d-%d\tr%d.example.com\n", 1+i/250, s, i, i%40)
			}
			in.Consume(strings.NewReader(b.String()))
		}(s)
	}
	feeders.Wait()
	in.Shutdown() // races the snapshot readers
	close(stop)
	readers.Wait()

	g, _ := in.Snapshot()
	if g.NumDomains() == 0 {
		t.Fatal("empty graph after concurrent ingest")
	}
}
