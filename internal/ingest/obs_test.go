package ingest

import (
	"strings"
	"sync"
	"testing"
	"time"

	"segugio/internal/obs"
)

// TestIngestStageObservations verifies that a traced ingester reports
// parse and graph_apply stage durations and files graph_apply traces
// into the flight recorder.
func TestIngestStageObservations(t *testing.T) {
	var mu sync.Mutex
	stages := map[string]int{}
	tr := obs.NewTracer(obs.TracerConfig{RingSize: 8, OnStage: func(s string, sec float64) {
		if sec < 0 {
			t.Errorf("negative duration for stage %s", s)
		}
		mu.Lock()
		stages[s]++
		mu.Unlock()
	}})
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Tracer: tr})
	if err := in.Consume(strings.NewReader(
		"q\t1\tm1\ta.example.com\nq\t1\tm2\tb.example.com\nr\t1\ta.example.com\t10.0.0.1\n")); err != nil {
		t.Fatal(err)
	}
	in.Shutdown()

	mu.Lock()
	defer mu.Unlock()
	if stages[obs.StageParse] != 3 {
		t.Fatalf("parse observations = %d, want 3 (map: %v)", stages[obs.StageParse], stages)
	}
	if stages[obs.StageGraphApply] == 0 {
		t.Fatalf("no graph_apply observations: %v", stages)
	}

	d := tr.Dump()
	found := false
	for _, trc := range d.Recent {
		if trc.Root == obs.StageGraphApply {
			found = true
			if trc.Spans[len(trc.Spans)-1].Attrs["events"] == "" {
				t.Fatalf("graph_apply span lacks events attr: %+v", trc.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("no graph_apply trace in flight recorder: %+v", d.Recent)
	}
}

// TestParseMeterChunks verifies that the parse meter ships one trace per
// parseChunkLines lines plus a final partial chunk at flush.
func TestParseMeterChunks(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{RingSize: 16})
	m := newParseMeter(tr, "test")
	for i := 0; i < parseChunkLines+3; i++ {
		m.observe(time.Microsecond, 1)
	}
	m.flush()
	var parses []obs.TraceRecord
	for _, trc := range tr.Dump().Recent {
		if trc.Root == obs.StageParse {
			parses = append(parses, trc)
		}
	}
	if len(parses) != 2 {
		t.Fatalf("parse traces = %d, want 2 (full chunk + partial)", len(parses))
	}
	// Newest first: the partial flush is first.
	if parses[0].Spans[0].Attrs["lines"] != "3" || parses[1].Spans[0].Attrs["lines"] != "256" {
		t.Fatalf("chunk line counts = %v / %v",
			parses[0].Spans[0].Attrs, parses[1].Spans[0].Attrs)
	}
	if parses[0].Spans[0].Attrs["source"] != "test" {
		t.Fatalf("source attr = %v", parses[0].Spans[0].Attrs)
	}

	// A nil meter (tracing off) must be inert.
	var nilMeter *parseMeter
	nilMeter.flush()
}
