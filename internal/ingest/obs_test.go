package ingest

import (
	"strings"
	"sync"
	"testing"
	"time"

	"segugio/internal/logio"
	"segugio/internal/obs"
)

// TestIngestStageObservations verifies that a traced ingester reports
// parse and graph_apply stage durations and files graph_apply traces
// into the flight recorder.
func TestIngestStageObservations(t *testing.T) {
	var mu sync.Mutex
	stages := map[string]int{}
	tr := obs.NewTracer(obs.TracerConfig{RingSize: 8, OnStage: func(s string, sec float64) {
		if sec < 0 {
			t.Errorf("negative duration for stage %s", s)
		}
		mu.Lock()
		stages[s]++
		mu.Unlock()
	}})
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Tracer: tr})
	if err := in.Consume(strings.NewReader(
		"q\t1\tm1\ta.example.com\nq\t1\tm2\tb.example.com\nr\t1\ta.example.com\t10.0.0.1\n")); err != nil {
		t.Fatal(err)
	}
	in.Shutdown()

	mu.Lock()
	defer mu.Unlock()
	if stages[obs.StageParse] != 3 {
		t.Fatalf("parse observations = %d, want 3 (map: %v)", stages[obs.StageParse], stages)
	}
	if stages[obs.StageGraphApply] == 0 {
		t.Fatalf("no graph_apply observations: %v", stages)
	}

	d := tr.Dump()
	found := false
	for _, trc := range d.Recent {
		if trc.Root == obs.StageGraphApply {
			found = true
			if trc.Spans[len(trc.Spans)-1].Attrs["events"] == "" {
				t.Fatalf("graph_apply span lacks events attr: %+v", trc.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("no graph_apply trace in flight recorder: %+v", d.Recent)
	}
}

// TestParseMeterChunks verifies that the parse meter ships one trace per
// parseChunkLines lines plus a final partial chunk at flush.
func TestParseMeterChunks(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{RingSize: 16})
	m := newParseMeter(tr, "test")
	for i := 0; i < parseChunkLines+3; i++ {
		m.observe(time.Microsecond, 1)
	}
	m.flush()
	var parses []obs.TraceRecord
	for _, trc := range tr.Dump().Recent {
		if trc.Root == obs.StageParse {
			parses = append(parses, trc)
		}
	}
	if len(parses) != 2 {
		t.Fatalf("parse traces = %d, want 2 (full chunk + partial)", len(parses))
	}
	// Newest first: the partial flush is first.
	if parses[0].Spans[0].Attrs["lines"] != "3" || parses[1].Spans[0].Attrs["lines"] != "256" {
		t.Fatalf("chunk line counts = %v / %v",
			parses[0].Spans[0].Attrs, parses[1].Spans[0].Attrs)
	}
	if parses[0].Spans[0].Attrs["source"] != "test" {
		t.Fatalf("source attr = %v", parses[0].Spans[0].Attrs)
	}

	// A nil meter (tracing off) must be inert.
	var nilMeter *parseMeter
	nilMeter.flush()
}

// TestTailerSampledParseMetering verifies the tailer's 1-in-N parse
// sampling books exact line counts: every parsed line is accounted for
// through ObserveStageN, while the clock is consulted only about
// lines/ParseSampleEvery times.
func TestTailerSampledParseMetering(t *testing.T) {
	var mu sync.Mutex
	var calls, booked int
	tr := obs.NewTracer(obs.TracerConfig{RingSize: 8, OnStageN: func(stage string, sec float64, n int) {
		if stage != obs.StageParse {
			return
		}
		mu.Lock()
		calls++
		booked += n
		mu.Unlock()
	}})
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Tracer: tr, Metrics: m})
	defer in.Shutdown()
	tl := in.NewTailer(t.TempDir()+"/unused.log", time.Second)

	const lines = 3*logio.ParseSampleEvery + 5 // 101
	for i := 0; i < lines; i++ {
		tl.processLine([]byte("q\t1\tm1\ta.example.com"))
	}
	// Blank lines and comments are skipped before metering.
	tl.processLine([]byte("   "))
	tl.processLine([]byte("# comment"))
	tl.flushMeter()

	mu.Lock()
	defer mu.Unlock()
	if booked != lines {
		t.Fatalf("booked %d parse samples, want exactly %d", booked, lines)
	}
	// 1 first-line sample + 3 full groups + 1 flush of the remainder.
	if want := lines/logio.ParseSampleEvery + 2; calls > want {
		t.Fatalf("meter calls = %d, want <= %d (sampled 1-in-%d)",
			calls, want, logio.ParseSampleEvery)
	}

	// A malformed line counts a parse error and books nothing extra.
	tl.processLine([]byte("not an event line"))
	tl.flushMeter()
	if booked != lines {
		t.Fatalf("malformed line changed booked count to %d", booked)
	}
	if got := m.ParseErrors.Value(); got == 0 {
		t.Fatal("malformed line did not count a parse error")
	}
}
