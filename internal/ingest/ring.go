package ingest

import (
	"sync/atomic"

	"segugio/internal/logio"
)

// eventRing is a lock-free single-producer/single-consumer ring of
// events — the per-(source, shard) hop that replaced the mutex-guarded
// shard channels. The producer is one Consume loop (or Tailer); the
// consumer is the shard's worker. Neither side ever takes a lock: the
// producer owns tail, the consumer owns head, and each reads the other
// side's index with an atomic load (Go's atomics are sequentially
// consistent, so slot writes made before the tail store are visible to
// a consumer that observes the new tail, and slots freed by a head
// store are safe for the producer to overwrite).
//
// head and tail sit on their own cache lines so the producer's tail
// stores do not false-share with the consumer's head stores.
//
// Overload coordination: the producer cannot pop an SPSC ring, so
// drop-oldest eviction is a request/serve pair — the producer bumps
// evict when it finds the ring full under the drop-oldest policy, and
// the consumer sheds that many oldest entries when it next sees the
// ring full (clearing stale requests whenever the ring is not full, so
// a burst that drained on its own sheds nothing).
type eventRing struct {
	buf  []logio.Event // len is a power of two
	mask uint64
	// source names the producer kind that owns this ring; the consumer
	// uses it to attribute watermark acks. Set once at attach, read-only
	// afterwards.
	source string

	_    [64]byte
	head atomic.Uint64 // next slot to consume; consumer-owned
	_    [56]byte
	tail atomic.Uint64 // next slot to fill; producer-owned
	_    [56]byte
	// evict is the number of oldest entries the producer wants shed
	// (drop-oldest policy only). Producer adds; consumer serves or
	// clears.
	evict atomic.Uint64
	// closed marks that the producer is done; once also empty, the ring
	// is retired from its shard.
	closed atomic.Bool
}

// newEventRing builds a ring holding at least depth events (rounded up
// to a power of two).
func newEventRing(depth int) *eventRing {
	size := 1
	for size < depth {
		size <<= 1
	}
	return &eventRing{buf: make([]logio.Event, size), mask: uint64(size - 1)}
}

// publish1 appends one event; reports whether it fit and whether the
// ring was empty beforehand (the wake-the-consumer signal: the worker
// only blocks after seeing every ring empty, so only an empty→nonempty
// transition can need a wakeup). Producer-side only.
func (r *eventRing) publish1(e logio.Event) (ok, wasEmpty bool) {
	t := r.tail.Load()
	h := r.head.Load()
	if t-h >= uint64(len(r.buf)) {
		return false, false
	}
	r.buf[t&r.mask] = e
	r.tail.Store(t + 1)
	return true, t == h
}

// publish appends as many of events as fit, returning how many and
// whether the ring was empty beforehand. Producer-side only.
func (r *eventRing) publish(events []logio.Event) (n int, wasEmpty bool) {
	t := r.tail.Load()
	h := r.head.Load()
	free := uint64(len(r.buf)) - (t - h)
	n = len(events)
	if uint64(n) > free {
		n = int(free)
	}
	for i := 0; i < n; i++ {
		r.buf[(t+uint64(i))&r.mask] = events[i]
	}
	if n > 0 {
		r.tail.Store(t + uint64(n))
	}
	return n, n > 0 && t == h
}

// consume copies up to len(dst) queued events out and frees their
// slots. Consumer-side only.
func (r *eventRing) consume(dst []logio.Event) int {
	h := r.head.Load()
	t := r.tail.Load()
	n := int(t - h)
	if n == 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		pos := (h + uint64(i)) & r.mask
		dst[i] = r.buf[pos]
		r.buf[pos] = logio.Event{} // release string/slice references
	}
	r.head.Store(h + uint64(n))
	return n
}

// shedOldest drops up to max queued events from the head — serving a
// producer's drop-oldest eviction request — and returns how many went.
// Consumer-side only.
func (r *eventRing) shedOldest(max uint64) int {
	h := r.head.Load()
	t := r.tail.Load()
	n := t - h
	if n > max {
		n = max
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(h+i)&r.mask] = logio.Event{}
	}
	r.head.Store(h + n)
	return int(n)
}

// size is the queued-event count. Racy by nature; exact only from the
// producer or consumer goroutine.
func (r *eventRing) size() uint64 { return r.tail.Load() - r.head.Load() }

// full reports whether every slot is queued.
func (r *eventRing) full() bool { return r.size() >= uint64(len(r.buf)) }

// empty reports whether no slot is queued.
func (r *eventRing) empty() bool { return r.tail.Load() == r.head.Load() }

// close marks the producer done. The consumer retires the ring once it
// has drained.
func (r *eventRing) close() { r.closed.Store(true) }

// isClosed reports whether the producer is done.
func (r *eventRing) isClosed() bool { return r.closed.Load() }
