package ingest

import (
	"runtime"
	"sync"
	"testing"

	"segugio/internal/logio"
)

func ringEvent(i int) logio.Event {
	return logio.Event{Kind: logio.EventQuery, Day: i, Machine: "m", Domain: "d.example.com"}
}

func TestRingDepthRounding(t *testing.T) {
	for depth, want := range map[int]int{1: 1, 2: 2, 3: 4, 511: 512, 512: 512, 513: 1024} {
		if r := newEventRing(depth); len(r.buf) != want {
			t.Errorf("depth %d -> %d slots, want %d", depth, len(r.buf), want)
		}
	}
}

func TestRingPublishConsume(t *testing.T) {
	r := newEventRing(4)
	if ok, wasEmpty := r.publish1(ringEvent(0)); !ok || !wasEmpty {
		t.Fatalf("first publish1 = (%v, %v), want (true, true)", ok, wasEmpty)
	}
	if ok, wasEmpty := r.publish1(ringEvent(1)); !ok || wasEmpty {
		t.Fatalf("second publish1 = (%v, %v), want (true, false)", ok, wasEmpty)
	}
	n, wasEmpty := r.publish([]logio.Event{ringEvent(2), ringEvent(3), ringEvent(4)})
	if n != 2 || wasEmpty {
		t.Fatalf("batch publish into 2 free slots = (%d, %v), want (2, false)", n, wasEmpty)
	}
	if !r.full() {
		t.Fatal("ring should be full")
	}
	if ok, _ := r.publish1(ringEvent(9)); ok {
		t.Fatal("publish1 into a full ring must fail")
	}
	dst := make([]logio.Event, 8)
	if n := r.consume(dst); n != 4 {
		t.Fatalf("consume = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if dst[i].Day != i {
			t.Fatalf("consumed order broken: slot %d has day %d", i, dst[i].Day)
		}
	}
	if !r.empty() {
		t.Fatal("ring should be empty after full drain")
	}
	// Consumed slots must be zeroed so string/slice refs are released.
	for i := range r.buf {
		if r.buf[i].Machine != "" || r.buf[i].IPs != nil {
			t.Fatalf("slot %d still holds references after consume", i)
		}
	}
	// Batch publish into an empty ring reports the empty->nonempty edge.
	if n, wasEmpty := r.publish([]logio.Event{ringEvent(5)}); n != 1 || !wasEmpty {
		t.Fatalf("publish after drain = (%d, %v), want (1, true)", n, wasEmpty)
	}
}

func TestRingWraparound(t *testing.T) {
	r := newEventRing(4)
	dst := make([]logio.Event, 4)
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if ok, _ := r.publish1(ringEvent(round*3 + i)); !ok {
				t.Fatalf("round %d: publish1 failed with %d queued", round, r.size())
			}
		}
		if n := r.consume(dst); n != 3 {
			t.Fatalf("round %d: consume = %d, want 3", round, n)
		}
		for i := 0; i < 3; i++ {
			if dst[i].Day != next {
				t.Fatalf("round %d: got day %d, want %d", round, dst[i].Day, next)
			}
			next++
		}
	}
}

func TestRingShedOldest(t *testing.T) {
	r := newEventRing(4)
	for i := 0; i < 4; i++ {
		r.publish1(ringEvent(i))
	}
	if n := r.shedOldest(2); n != 2 {
		t.Fatalf("shedOldest(2) = %d", n)
	}
	dst := make([]logio.Event, 4)
	if n := r.consume(dst); n != 2 || dst[0].Day != 2 || dst[1].Day != 3 {
		t.Fatalf("after shed: consumed %d starting at day %d, want 2 starting at 2", n, dst[0].Day)
	}
	// Shedding more than queued drops only what's there.
	r.publish1(ringEvent(9))
	if n := r.shedOldest(100); n != 1 {
		t.Fatalf("shedOldest(100) with 1 queued = %d", n)
	}
}

// TestRingSPSCStress hammers one producer against one consumer; under
// -race this doubles as a memory-model check on the index handoff. The
// consumer verifies strict FIFO order and the exact total.
func TestRingSPSCStress(t *testing.T) {
	const total = 30000
	r := newEventRing(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer
		defer wg.Done()
		i := 0
		for i < total {
			if ok, _ := r.publish1(ringEvent(i)); ok {
				i++
				continue
			}
			// Mix in batch publishes while backed off.
			if i+2 <= total {
				n, _ := r.publish([]logio.Event{ringEvent(i), ringEvent(i + 1)})
				i += n
			}
			runtime.Gosched() // single-core machines need the handoff
		}
		r.close()
	}()

	dst := make([]logio.Event, 32)
	seen := 0
	for {
		n := r.consume(dst)
		for i := 0; i < n; i++ {
			if dst[i].Day != seen {
				t.Errorf("out of order: got %d, want %d", dst[i].Day, seen)
				wg.Wait()
				return
			}
			seen++
		}
		if n == 0 {
			if r.isClosed() && r.empty() {
				break
			}
			runtime.Gosched()
		}
	}
	wg.Wait()
	if seen != total {
		t.Fatalf("consumed %d events, want %d", seen, total)
	}
}

// TestRingEvictProtocol exercises the producer-requests/consumer-serves
// drop-oldest handshake the way dispatchSlow and sweepShard use it.
func TestRingEvictProtocol(t *testing.T) {
	r := newEventRing(4)
	for i := 0; i < 4; i++ {
		r.publish1(ringEvent(i))
	}
	// Producer finds the ring full under drop-oldest and requests one
	// eviction; consumer serves it because the ring is still full.
	r.evict.Add(1)
	if want := r.evict.Load(); want != 1 {
		t.Fatal("evict request lost")
	}
	served := r.shedOldest(min(r.evict.Load(), uint64(len(r.buf))))
	if served != 1 {
		t.Fatalf("served %d evictions, want 1", served)
	}
	r.evict.Add(^uint64(uint64(served) - 1))
	if r.evict.Load() != 0 {
		t.Fatalf("evict counter = %d after serving, want 0", r.evict.Load())
	}
	// A stale request on a no-longer-full ring is cleared, not served
	// (the burst drained on its own; shedding now would drop for free).
	r.evict.Add(3)
	if !r.full() {
		dst := make([]logio.Event, 4)
		r.consume(dst)
	}
	if r.full() {
		t.Fatal("ring should not be full after drain")
	}
	r.evict.Store(0) // what sweepShard does on the not-full path
	if r.evict.Load() != 0 {
		t.Fatal("stale evict request must clear")
	}
}
