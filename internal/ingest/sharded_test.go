package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"testing"

	"segugio/internal/activity"
	"segugio/internal/core"
	"segugio/internal/dnsutil"
	"segugio/internal/graph"
	"segugio/internal/intel"
	"segugio/internal/logio"
	"segugio/internal/ml"

	"segugio/internal/features"
)

// equivLabelSources builds the label fixture shared by the equivalence
// tests: 10 blacklisted C&C domains on distinct e2LDs and 20 whitelisted
// e2LDs, matching the scale the core training pipeline needs.
func equivLabelSources() (func(day int) graph.LabelSources, *intel.Blacklist, *intel.Whitelist) {
	bl := intel.NewBlacklist()
	for i := 0; i < 10; i++ {
		bl.Add(intel.BlacklistEntry{Domain: fmt.Sprintf("c2.evil%d.net", i), Family: "fam", FirstListed: 0})
	}
	var whitelisted []string
	for i := 0; i < 20; i++ {
		whitelisted = append(whitelisted, fmt.Sprintf("good%d.com", i))
	}
	wl := intel.NewWhitelist(whitelisted)
	return func(day int) graph.LabelSources {
		return graph.LabelSources{Blacklist: bl, Whitelist: wl, AsOf: day}
	}, bl, wl
}

// genEquivEvents is one day of the equivalence stream: infected machines
// querying C&C plus unknown domains, clean machines querying whitelisted
// domains, and resolutions for everything — enough structure for the
// full train/classify pipeline to run on the resulting graph.
func genEquivEvents(day int) []logio.Event {
	var evs []logio.Event
	query := func(machine, domain string) {
		evs = append(evs, logio.Event{Kind: logio.EventQuery, Day: day, Machine: machine, Domain: domain})
	}
	resolve := func(domain string, ip dnsutil.IPv4) {
		evs = append(evs, logio.Event{Kind: logio.EventResolution, Day: day, Domain: domain, IPs: []dnsutil.IPv4{ip}})
	}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("c2.evil%d.net", i)
		for m := 0; m < 6; m++ {
			query(fmt.Sprintf("inf%02d", (i+m)%12), name)
		}
		resolve(name, dnsutil.IPv4(0x0a000000+uint32(i)))
	}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("www.good%d.com", i)
		for m := 0; m < 8; m++ {
			query(fmt.Sprintf("clean%02d", (i+m)%25), name)
		}
		resolve(name, dnsutil.IPv4(0x0b000000+uint32(i)))
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("unk.gray%d.org", i)
		for m := 0; m < 5; m++ {
			query(fmt.Sprintf("inf%02d", (i+m)%12), name)
		}
		resolve(name, dnsutil.IPv4(0x0c000000+uint32(i)))
	}
	// Bulk noise: many machines, many domains, deterministic shape, with
	// deliberate duplicates so edge dedup matters.
	for i := 0; i < 2000; i++ {
		query(fmt.Sprintf("bulk%03d", i%211), fmt.Sprintf("h%d.bulkzone%d.example", i%97, i%41))
	}
	return evs
}

// refReplay applies the stream to a single unsharded builder with the
// same day semantics live ingestion uses: stale days dropped, a newer
// day starts a fresh epoch.
func refReplay(network string, startDay int, suffixes *dnsutil.SuffixList, evs []logio.Event) *graph.Builder {
	b := graph.NewBuilder(network, startDay, suffixes)
	day := startDay
	for _, e := range evs {
		if e.Day < day {
			continue
		}
		if e.Day > day {
			b = graph.NewBuilder(network, e.Day, suffixes)
			day = e.Day
		}
		switch e.Kind {
		case logio.EventQuery:
			b.AddQuery(e.Machine, e.Domain)
		case logio.EventResolution:
			for _, ip := range e.IPs {
				b.AddResolution(e.Domain, ip)
			}
		}
	}
	return b
}

// requireGraphsEquivalent compares two labeled graphs by name — intern
// order differs between a sharded merge and a sequential build, so
// indices are meaningless across the two — down to per-domain feature
// vectors and per-machine labels.
func requireGraphsEquivalent(t *testing.T, want, got *graph.Graph, act *activity.Log) {
	t.Helper()
	if want.NumMachines() != got.NumMachines() || want.NumDomains() != got.NumDomains() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("shape differs: want %d/%d/%d machines/domains/edges, got %d/%d/%d",
			want.NumMachines(), want.NumDomains(), want.NumEdges(),
			got.NumMachines(), got.NumDomains(), got.NumEdges())
	}
	exWant, err := features.NewExtractor(want, act, nil, 14)
	if err != nil {
		t.Fatal(err)
	}
	exGot, err := features.NewExtractor(got, act, nil, 14)
	if err != nil {
		t.Fatal(err)
	}
	for wd := int32(0); wd < int32(want.NumDomains()); wd++ {
		name := want.DomainName(wd)
		gd, ok := got.DomainIndex(name)
		if !ok {
			t.Fatalf("domain %s missing from sharded graph", name)
		}
		if wl, gl := want.DomainLabel(wd), got.DomainLabel(gd); wl != gl {
			t.Fatalf("domain %s label %v != %v", name, gl, wl)
		}
		wantIPs := slices.Clone(want.DomainIPs(wd))
		gotIPs := slices.Clone(got.DomainIPs(gd))
		slices.Sort(wantIPs)
		slices.Sort(gotIPs)
		if !slices.Equal(wantIPs, gotIPs) {
			t.Fatalf("domain %s IPs %v != %v", name, gotIPs, wantIPs)
		}
		if wv, gv := exWant.Vector(wd), exGot.Vector(gd); !slices.Equal(wv, gv) {
			t.Fatalf("domain %s feature vector %v != %v", name, gv, wv)
		}
	}
	for wm := int32(0); wm < int32(want.NumMachines()); wm++ {
		id := want.MachineID(wm)
		gm, ok := got.MachineIndex(id)
		if !ok {
			t.Fatalf("machine %s missing from sharded graph", id)
		}
		if wl, gl := want.MachineLabel(wm), got.MachineLabel(gm); wl != gl {
			t.Fatalf("machine %s label %v != %v", id, gl, wl)
		}
	}
}

// classifyAllSorted runs a full classify pass and returns the detections
// sorted by name for order-independent comparison.
func classifyAllSorted(t *testing.T, det *core.Detector, g *graph.Graph, act *activity.Log) []core.Detection {
	t.Helper()
	dets, _, err := det.Classify(core.ClassifyInput{Graph: g, Activity: act})
	if err != nil {
		t.Fatal(err)
	}
	dets = slices.Clone(dets)
	sort.Slice(dets, func(i, j int) bool { return dets[i].Domain < dets[j].Domain })
	return dets
}

// TestShardedEquivalence is the acceptance test for the sharded graph
// backend: over the same stream, the sharded ingester's merged snapshot
// must be feature-for-feature and detection-for-detection identical to a
// single unsharded builder, the within-epoch delta sets must stay exact,
// and rotation must degrade deltas to inexact. Run under -race it also
// exercises the concurrent shard-apply path. Both the aligned
// (shards == workers) and repartitioning (shards != workers) dispatch
// paths are covered.
func TestShardedEquivalence(t *testing.T) {
	for _, tc := range []struct{ workers, shards int }{
		{workers: 4, shards: 4},
		{workers: 4, shards: 3},
	} {
		t.Run(fmt.Sprintf("workers=%d_shards=%d", tc.workers, tc.shards), func(t *testing.T) {
			suffixes := dnsutil.DefaultSuffixList()
			src, _, _ := equivLabelSources()
			act := activity.NewLog()
			m, _ := newMetrics()
			in := New(Config{
				Network:     "equiv",
				StartDay:    5,
				Workers:     tc.workers,
				GraphShards: tc.shards,
				Suffixes:    suffixes,
				Activity:    act,
				Metrics:     m,
				PrepareSnapshot: func(g *graph.Graph) {
					g.ApplyLabels(src(g.Day()))
				},
			})
			defer in.Shutdown()
			if in.NumShards() != tc.shards {
				t.Fatalf("NumShards = %d, want %d", in.NumShards(), tc.shards)
			}

			day5 := genEquivEvents(5)
			feed(t, in, m, day5)
			got5, v5 := in.Snapshot()

			ref5 := refReplay("equiv", 5, suffixes, day5)
			want5 := ref5.Snapshot()
			want5.ApplyLabels(src(5))
			requireGraphsEquivalent(t, want5, got5, act)

			// Classify-all over both graphs with one detector trained on
			// the reference: identical detections, domain by domain.
			cfg := core.DefaultConfig()
			cfg.NewModel = func(benign, malware int) ml.Model {
				return ml.NewLogisticRegression(ml.LogisticRegressionConfig{Seed: 7})
			}
			det, _, err := core.Train(cfg, core.TrainInput{Graph: want5, Activity: act})
			if err != nil {
				t.Fatal(err)
			}
			wantDets := classifyAllSorted(t, det, want5, act)
			gotDets := classifyAllSorted(t, det, got5, act)
			if len(wantDets) == 0 {
				t.Fatal("classify-all found nothing; fixture too weak to prove equivalence")
			}
			if !slices.Equal(wantDets, gotDets) {
				t.Fatalf("classify-all differs:\nsharded %v\nsingle  %v", gotDets, wantDets)
			}

			// Within-epoch delta exactness: brand-new edges must surface as
			// exactly their domains in the next delta, composed across every
			// shard's fresh set.
			var deltaEvs []logio.Event
			wantDirty := make([]string, 0, 8)
			for i := 0; i < 8; i++ {
				name := fmt.Sprintf("delta%d.fresh.example", i)
				wantDirty = append(wantDirty, name)
				deltaEvs = append(deltaEvs, logio.Event{
					Kind: logio.EventQuery, Day: 5,
					Machine: fmt.Sprintf("freshm%02d", i), Domain: name,
				})
			}
			feed(t, in, m, deltaEvs)
			_, v6, delta := in.SnapshotSince(v5)
			if v6 <= v5 {
				t.Fatalf("version did not advance: %d -> %d", v5, v6)
			}
			if !delta.Exact {
				t.Fatal("within-epoch delta is inexact")
			}
			gotDirty := slices.Clone(delta.Domains)
			slices.Sort(gotDirty)
			slices.Sort(wantDirty)
			if !slices.Equal(gotDirty, wantDirty) {
				t.Fatalf("dirty set %v, want %v", gotDirty, wantDirty)
			}

			// Scatter-gather F1: the per-shard machine fractions must
			// compose into exactly the merged graph's own tallies.
			ss, _ := in.ShardSnapshots()
			if ss.NumShards() != tc.shards {
				t.Fatalf("ShardSnapshots has %d shards, want %d", ss.NumShards(), tc.shards)
			}
			merged := ss.Merged()
			for d := int32(0); d < int32(merged.NumDomains()); d++ {
				name := merged.DomainName(d)
				var inf, unk, total int
				for _, mm := range merged.MachinesOf(d) {
					total++
					switch merged.MachineLabelHiding(mm, d) {
					case graph.LabelMalware:
						inf++
					case graph.LabelUnknown:
						unk++
					}
				}
				gi, gu, gt := ss.MachineFractions(name)
				if gt != total || gi != float64(inf)/float64(max(total, 1)) && total > 0 || gu != float64(unk)/float64(max(total, 1)) && total > 0 {
					t.Fatalf("domain %s fractions (%v,%v,%d), merged says (%d,%d,%d)", name, gi, gu, gt, inf, unk, total)
				}
			}

			// Epoch rotation: day 6 arrives, the delta against any pre-
			// rotation version must be inexact, and the post-rotation graph
			// must again match the single-builder replay.
			day6 := genEquivEvents(6)
			feed(t, in, m, day6)
			got6, _, delta6 := in.SnapshotSince(v6)
			if delta6.Exact {
				t.Fatal("delta across an epoch rotation claims exactness")
			}
			ref6 := refReplay("equiv", 6, suffixes, day6)
			want6 := ref6.Snapshot()
			want6.ApplyLabels(src(6))
			requireGraphsEquivalent(t, want6, got6, act)
		})
	}
}

// TestDurableRehashOnShardCountChange kills a 4-shard durable ingester
// (checkpoint plus WAL tail on disk) and restarts it with 2 shards: the
// recovered state must be rehashed into the new partition with nothing
// lost, and the new layout must itself survive a further unclean death.
func TestDurableRehashOnShardCountChange(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	cfg.GraphShards = 4
	in, info, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rehashed || info.Shards != 4 {
		t.Fatalf("fresh 4-shard info = %+v", info)
	}
	feed(t, in, m, genDurableEvents(5, 800))
	if err := in.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tail := genDurableEvents(5, 300)
	for i := range tail {
		tail[i].Machine = fmt.Sprintf("late%03d", i%23)
	}
	feed(t, in, m, tail)
	want, _ := in.Snapshot()
	// Unclean death: no Shutdown, no final checkpoint.

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	cfg2.GraphShards = 2
	in2, info2, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Rehashed || info2.Shards != 2 {
		t.Fatalf("flipped-shards info = %+v, want rehash to 2", info2)
	}
	if !info2.CheckpointLoaded {
		t.Fatalf("info = %+v, want the 4-shard checkpoints loaded", info2)
	}
	if info2.ReplayedEvents != len(tail) {
		t.Fatalf("replayed %d, want the %d tail events", info2.ReplayedEvents, len(tail))
	}
	if in2.NumShards() != 2 {
		t.Fatalf("recovered ingester has %d shards", in2.NumShards())
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("rehashed shape %v, want %v", graphShape(got), graphShape(want))
	}

	// The rehashed layout keeps working: more durable events, another
	// unclean death, and a same-shard-count recovery with no rehash.
	extra := genDurableEvents(5, 200)
	for i := range extra {
		extra[i].Machine = fmt.Sprintf("post%03d", i%19)
	}
	feed(t, in2, m2, extra)
	want2, _ := in2.Snapshot()

	m3, _ := newMetrics()
	cfg3, dc3 := durableCfg(dir, m3, newDurableMetrics())
	cfg3.GraphShards = 2
	in3, info3, err := OpenDurable(cfg3, dc3)
	if err != nil {
		t.Fatal(err)
	}
	defer in3.Shutdown()
	if info3.Rehashed {
		t.Fatalf("same shard count must not rehash: %+v", info3)
	}
	got2, _ := in3.Snapshot()
	if graphShape(got2) != graphShape(want2) {
		t.Fatalf("post-rehash recovery shape %v, want %v", graphShape(got2), graphShape(want2))
	}
}

// TestDurableLegacyLayoutMigration plants a pre-sharding state directory
// (root checkpoint + WAL, no manifest) and opens it sharded: the legacy
// state must migrate into a first-generation sharded layout and the
// legacy files must be gone afterwards.
func TestDurableLegacyLayoutMigration(t *testing.T) {
	dir := t.TempDir()

	// Build legacy state by hand: a single-shard generation's files moved
	// to the legacy root locations, manifest removed.
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, in, m, genDurableEvents(5, 500))
	if err := in.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want, _ := in.Snapshot()
	in.Shutdown()
	if err := os.Rename(shard0Checkpoint(dir), filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, genDirName(1), shardWALDir(0)), filepath.Join(dir, walDirName)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestFile)); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, genDirName(1))); err != nil {
		t.Fatal(err)
	}

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	cfg2.GraphShards = 3
	in2, info, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if !info.Rehashed || info.Shards != 3 || !info.CheckpointLoaded {
		t.Fatalf("legacy migration info = %+v", info)
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("migrated shape %v, want %v", graphShape(got), graphShape(want))
	}
	if legacyLayoutPresent(dir) {
		t.Fatal("legacy files still present after migration")
	}
}

// TestDurableRehashSurvivesLogTrim pins a recovery hole: the rehash
// path checkpoints the redistributed shard builders before the
// ingester's seed drain, and that snapshot used to let the builder trim
// its fresh log once a shard crossed the log-trim threshold — the
// merged view after reopen came back empty while the shard builders
// (and the graph gauges) still reported the full state. The fixture is
// sized so every post-rehash shard crosses the threshold in both the
// edge log and the address log.
func TestDurableRehashSurvivesLogTrim(t *testing.T) {
	dir := t.TempDir()
	m, _ := newMetrics()
	cfg, dc := durableCfg(dir, m, newDurableMetrics())
	cfg.GraphShards = 4
	// The fixture is ~15k events in one burst: size the rings to take it
	// losslessly, and skip per-record fsync — the recovery under test is
	// checkpoint-based, so WAL-tail durability is irrelevant here.
	cfg.QueueDepth = 32768
	dc.SyncEvery = 4096
	in, _, err := OpenDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	var evs []logio.Event
	for i := 0; i < 12000; i++ {
		evs = append(evs, logio.Event{
			Kind: logio.EventQuery, Day: 5,
			Machine: fmt.Sprintf("trim-m%03d", i%300),
			Domain:  fmt.Sprintf("trim-d%d.net", i/300),
		})
	}
	for i := 0; i < 2500; i++ {
		evs = append(evs, logio.Event{
			Kind: logio.EventResolution, Day: 5,
			Domain: fmt.Sprintf("trim-r%d.net", i),
			IPs: []dnsutil.IPv4{
				dnsutil.IPv4(0x0a000000 + uint32(i)),
				dnsutil.IPv4(0x0b000000 + uint32(i)),
				dnsutil.IPv4(0x0c000000 + uint32(i)),
				dnsutil.IPv4(0x0d000000 + uint32(i)),
			},
		})
	}
	feed(t, in, m, evs)
	if err := in.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want, _ := in.Snapshot()
	// Unclean death: no Shutdown.

	m2, _ := newMetrics()
	cfg2, dc2 := durableCfg(dir, m2, newDurableMetrics())
	cfg2.GraphShards = 2
	in2, info2, err := OpenDurable(cfg2, dc2)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Shutdown()
	if !info2.Rehashed || info2.Shards != 2 {
		t.Fatalf("info = %+v, want rehash to 2 shards", info2)
	}
	got, _ := in2.Snapshot()
	if graphShape(got) != graphShape(want) {
		t.Fatalf("merged snapshot after rehash is %v, want %v (seed drain lost the trimmed log)", graphShape(got), graphShape(want))
	}
	for _, name := range []string{"trim-d0.net", "trim-d39.net"} {
		d, ok := got.DomainIndex(name)
		if !ok {
			t.Fatalf("domain %s missing from merged snapshot", name)
		}
		if n := got.DomainDegree(d); n != 300 {
			t.Fatalf("domain %s has %d querying machines, want 300", name, n)
		}
	}
	if d, ok := got.DomainIndex("trim-r2499.net"); !ok || len(got.DomainIPs(d)) != 4 {
		t.Fatalf("resolutions for trim-r2499.net lost in rehash")
	}
}
