package ingest

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"time"

	"segugio/internal/metrics"
)

// Source supervision: segugiod's event sources (a tailed file, a TCP
// listener, a stdin pipe) live in a hostile world — files vanish mid-
// rotation, listeners hit transient EMFILE, a parse error aborts a
// stream. Supervise keeps a source running across such failures with
// exponential backoff plus jitter, recovers panics, and gives up only
// when told to (restart cap) or when the context ends.

// SupervisorConfig parameterizes Supervise.
type SupervisorConfig struct {
	// Name labels the source in log lines.
	Name string
	// InitialBackoff is the delay after the first failure (default
	// 100ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 30s).
	MaxBackoff time.Duration
	// ResetAfter declares a run healthy once it has survived this long:
	// the next failure backs off from InitialBackoff again (default
	// 60s).
	ResetAfter time.Duration
	// MaxRestarts caps consecutive restarts: a source that keeps failing
	// is restarted at most this many times in a row — so it runs
	// MaxRestarts+1 times in all — before Supervise gives up (0 means
	// never give up).
	MaxRestarts int
	// Restarts counts restarts; may be nil.
	Restarts *metrics.Counter
	// Panics counts recovered panics; may be nil.
	Panics *metrics.Counter
	// Logger receives a structured record per restart (Warn, with
	// source/err/backoff attrs) and one when the supervisor gives up
	// (Error). Nil discards them.
	Logger *slog.Logger

	// now and randFloat are test seams; nil means the real clock/rand.
	now       func() time.Time
	randFloat func() float64
}

// Supervise runs fn until it returns nil (the source completed), the
// context is canceled, or the MaxRestarts restart cap is exhausted (in
// which case the last error is returned). A non-nil error or a panic
// from fn triggers a restart after a jittered exponential backoff.
func Supervise(ctx context.Context, cfg SupervisorConfig, fn func(context.Context) error) error {
	if cfg.InitialBackoff <= 0 {
		cfg.InitialBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.ResetAfter <= 0 {
		cfg.ResetAfter = time.Minute
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.randFloat == nil {
		cfg.randFloat = rand.Float64
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	backoff := cfg.InitialBackoff
	failures := 0
	for {
		started := cfg.now()
		err := runRecovered(ctx, cfg.Panics, fn)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return nil // shutdown, not a source failure
		}
		if cfg.now().Sub(started) >= cfg.ResetAfter {
			backoff = cfg.InitialBackoff
			failures = 0
		}
		failures++
		if cfg.MaxRestarts > 0 && failures > cfg.MaxRestarts {
			// failures counts consecutive failed runs; the restarts
			// between them number one fewer (== MaxRestarts here).
			logger.Error("event source giving up",
				"source", cfg.Name, "err", err,
				"failed_runs", failures, "restarts", failures-1)
			return fmt.Errorf("ingest: source %s failed %d consecutive runs (restart cap %d), last: %w",
				cfg.Name, failures, cfg.MaxRestarts, err)
		}
		// Full jitter in [backoff/2, backoff): restarting fleets must not
		// thunder back in lockstep.
		delay := backoff/2 + time.Duration(cfg.randFloat()*float64(backoff/2))
		logger.Warn("event source restarting",
			"source", cfg.Name, "err", err,
			"backoff", delay.Round(time.Millisecond).String())
		inc(cfg.Restarts)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(delay):
		}
		if backoff *= 2; backoff > cfg.MaxBackoff {
			backoff = cfg.MaxBackoff
		}
	}
}

// runRecovered invokes fn, converting a panic into an error so the
// supervisor treats it like any other failure instead of letting it
// unwind the daemon.
func runRecovered(ctx context.Context, panics *metrics.Counter, fn func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			inc(panics)
			err = fmt.Errorf("ingest: source panicked: %v", r)
		}
	}()
	return fn(ctx)
}
