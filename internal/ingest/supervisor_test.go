package ingest

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"segugio/internal/faultinject"
	"segugio/internal/metrics"
)

// fastSupervisor returns a config whose real-time delays are tiny and
// whose jitter is pinned, so tests assert exact restart behavior.
func fastSupervisor(name string) SupervisorConfig {
	return SupervisorConfig{
		Name:           name,
		InitialBackoff: time.Microsecond,
		MaxBackoff:     10 * time.Microsecond,
		ResetAfter:     time.Hour, // never auto-reset in tests unless faked
		randFloat:      func() float64 { return 0 },
	}
}

func TestSuperviseRecoversTransientFailures(t *testing.T) {
	r := metrics.NewRegistry()
	cfg := fastSupervisor("flaky")
	cfg.Restarts = r.NewCounter("restarts", "", "")
	runs := 0
	source := faultinject.FailNTimes(3, faultinject.ErrInjected, func() error {
		runs++
		return nil
	})
	err := Supervise(context.Background(), cfg, func(context.Context) error { return source() })
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1 successful run", runs)
	}
	if cfg.Restarts.Value() != 3 {
		t.Fatalf("restarts = %d, want 3", cfg.Restarts.Value())
	}
}

func TestSuperviseGivesUpAtRestartCap(t *testing.T) {
	cfg := fastSupervisor("doomed")
	cfg.MaxRestarts = 4
	calls := 0
	err := Supervise(context.Background(), cfg, func(context.Context) error {
		calls++
		return faultinject.ErrInjected
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "doomed") {
		t.Fatalf("error must name the source: %v", err)
	}
	// MaxRestarts=4 allows the initial run plus 4 restarts.
	if calls != 5 {
		t.Fatalf("fn ran %d times, want 5", calls)
	}
}

func TestSuperviseRecoversPanics(t *testing.T) {
	r := metrics.NewRegistry()
	cfg := fastSupervisor("panicky")
	cfg.Panics = r.NewCounter("panics", "", "")
	runs := 0
	err := Supervise(context.Background(), cfg, func(context.Context) error {
		runs++
		if runs < 3 {
			panic("source exploded")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	if runs != 3 {
		t.Fatalf("fn ran %d times, want 3", runs)
	}
	if cfg.Panics.Value() != 2 {
		t.Fatalf("panics = %d, want 2", cfg.Panics.Value())
	}
}

func TestSupervisePanicAtRestartCapReportsPanic(t *testing.T) {
	cfg := fastSupervisor("panicky")
	cfg.MaxRestarts = 1
	err := Supervise(context.Background(), cfg, func(context.Context) error {
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the panic value", err)
	}
}

func TestSuperviseStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	done := make(chan error, 1)
	go func() {
		cfg := fastSupervisor("canceled")
		cfg.InitialBackoff = time.Hour // park in the backoff wait
		done <- Supervise(ctx, cfg, func(context.Context) error {
			calls.Add(1)
			return faultinject.ErrInjected
		})
	}()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("canceled supervise must return nil, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervise did not notice cancellation")
	}
}

func TestSuperviseFailureDuringShutdownIsNotAnError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Supervise(ctx, fastSupervisor("closing"), func(context.Context) error {
		return faultinject.ErrInjected // e.g. listener closed by shutdown
	})
	if err != nil {
		t.Fatalf("failure after cancel must be nil, got %v", err)
	}
}

func TestSuperviseBackoffGrowsAndResets(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := SupervisorConfig{
		Name:           "timed",
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     400 * time.Millisecond,
		ResetAfter:     time.Minute,
		MaxRestarts:    6,
		now:            func() time.Time { return now },
		// Jitter pinned to the top of the range: delay == backoff.
		randFloat: func() float64 { return 0.999999 },
	}
	// Intercepting the delays by measuring wall time is flaky; instead pin
	// jitter to ~backoff and derive the sequence from the structured
	// restart records' backoff attr.
	var logBuf bytes.Buffer
	cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	runs := 0
	err := Supervise(context.Background(), cfg, func(context.Context) error {
		runs++
		if runs == 4 {
			// Simulate a long healthy run before the next failure: the
			// backoff must reset to InitialBackoff.
			now = now.Add(2 * time.Minute)
		}
		if runs < 6 {
			return faultinject.ErrInjected
		}
		return nil
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	var delays []string
	backoffRe := regexp.MustCompile(`backoff=(\S+)`)
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, "event source restarting") {
			continue
		}
		m := backoffRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("restart record lacks backoff attr: %q", line)
		}
		delays = append(delays, m[1])
	}
	// Failures 1,2,3 back off 100ms,200ms,400ms (cap); run 4 "survived"
	// ResetAfter, so its failure restarts the ladder at 100ms.
	want := []string{"100ms", "200ms", "400ms", "100ms", "200ms"}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %d entries", delays, len(want))
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay[%d] = %s, want %s (all: %v)", i, delays[i], want[i], delays)
		}
	}
}
