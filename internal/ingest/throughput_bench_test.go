package ingest

import (
	"bytes"
	"strings"
	"testing"

	"segugio/internal/logio"
)

// The throughput benchmarks measure the ingest frontend — wire bytes
// through parse/decode, sharding, and ring publish — which is the layer
// this wire format exists for. The graph-apply backend is deliberately
// excluded (rings are sized to hold the whole fixture, so Consume never
// blocks on the workers): its cost is format-independent and measured
// separately by BenchmarkIngestApply. Each op is one full Consume of
// the fixture on a fresh ingester; Shutdown (and the backend drain it
// implies) happens off the clock.

// throughputEvents is one op's worth of wire traffic. Rings must hold
// all of it, so depth is the next power of two above the event count.
const (
	throughputEvents = 200000
	throughputDepth  = 1 << 18
)

func throughputFixture(b *testing.B) []logio.Event {
	evs := make([]logio.Event, 0, throughputEvents)
	for _, batch := range benchBatches(throughputEvents, 256) {
		evs = append(evs, batch...)
	}
	if len(evs) < throughputEvents {
		b.Fatalf("fixture has %d events", len(evs))
	}
	return evs[:throughputEvents]
}

func benchConsume(b *testing.B, wire []byte) {
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, _ := newMetrics()
		in := New(Config{Network: "bench", StartDay: 1, Workers: 1,
			QueueDepth: throughputDepth, Metrics: m})
		b.StartTimer()
		if err := in.Consume(bytes.NewReader(wire)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		in.Shutdown()
		if got := m.EventsIngested.Value(); got != throughputEvents {
			b.Fatalf("ingested %d events, want %d (dropped %d, parse errors %d)",
				got, throughputEvents, m.EventsDropped.Value(), m.ParseErrors.Value())
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(throughputEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkIngestBinaryThroughput is the headline wire-speed number:
// segb1 frames through auto-detection, zero-copy decode, and ring
// publish. Gated in scripts/bench-allocs.sh (events/s floor).
func BenchmarkIngestBinaryThroughput(b *testing.B) {
	var buf bytes.Buffer
	enc := logio.NewEventEncoder(&buf)
	for _, e := range throughputFixture(b) {
		if err := enc.Encode(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	benchConsume(b, buf.Bytes())
}

// BenchmarkIngestTextThroughput is the same fixture through the text
// path — the baseline the binary format's speedup is measured against.
func BenchmarkIngestTextThroughput(b *testing.B) {
	var sb strings.Builder
	for _, e := range throughputFixture(b) {
		if err := logio.WriteEvent(&sb, e); err != nil {
			b.Fatal(err)
		}
	}
	benchConsume(b, []byte(sb.String()))
}
