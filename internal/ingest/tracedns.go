package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"segugio/internal/dnsutil"
	"segugio/internal/logio"
)

// trace_dns source adapter: maps the JSONL emitted by inspektor-gadget's
// trace_dns gadget (`ig run trace_dns -o jsonl`) onto the event stream.
// Query packets (qr "Q") become EventQuery records keyed by the client
// address; response packets (qr "R") carrying A-record addresses become
// EventResolution records. AAAA/IPv6 answers are skipped (the behavior
// graph is IPv4-keyed), as are responses with no addresses. Malformed
// lines are counted as parse errors and skipped — gadget output is
// external tooling, one bad line must not abort a live tap.
//
// Days are derived from timestamp_raw (nanoseconds): the first record
// seen anchors to the ingester's current epoch day, and each later
// record's day advances with whole 24h periods elapsed since that
// anchor, driving the same day-rotation machinery as native events.

// traceDNSRecord is the subset of the gadget's JSON fields the adapter
// reads.
type traceDNSRecord struct {
	QR   string `json:"qr"`
	Name string `json:"name"`
	Src  struct {
		Addr string `json:"addr"`
	} `json:"src"`
	// Addresses is a comma-separated string in gadget.yaml's rendering
	// but an array in some output modes; accept both.
	Addresses    json.RawMessage `json:"addresses"`
	TimestampRaw int64           `json:"timestamp_raw"`
}

// traceDNSParser converts gadget JSONL lines to events, carrying the
// day anchor across lines. Not safe for concurrent use.
type traceDNSParser struct {
	in       *Ingester
	baseDay  int
	anchorNS int64
	anchored bool
}

// parse maps one line to an event. ok=false with a nil error means the
// line is valid but carries no event (a response without IPv4 answers).
func (p *traceDNSParser) parse(line string) (logio.Event, bool, error) {
	var rec traceDNSRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return logio.Event{}, false, fmt.Errorf("tracedns: %w", err)
	}
	name := strings.TrimSuffix(rec.Name, ".")
	domain, err := dnsutil.Normalize(name)
	if err != nil {
		return logio.Event{}, false, fmt.Errorf("tracedns: %w", err)
	}
	day := p.day(rec.TimestampRaw)
	switch rec.QR {
	case "Q":
		if rec.Src.Addr == "" {
			return logio.Event{}, false, fmt.Errorf("tracedns: query for %s has no src.addr", domain)
		}
		return logio.Event{Kind: logio.EventQuery, Day: day, Machine: rec.Src.Addr, Domain: domain}, true, nil
	case "R":
		ips, err := parseTraceDNSAddresses(rec.Addresses)
		if err != nil {
			return logio.Event{}, false, err
		}
		if len(ips) == 0 {
			return logio.Event{}, false, nil // pure response or AAAA-only: nothing to add
		}
		return logio.Event{Kind: logio.EventResolution, Day: day, Domain: domain, IPs: ips}, true, nil
	default:
		return logio.Event{}, false, fmt.Errorf("tracedns: unknown qr %q", rec.QR)
	}
}

// day anchors the first observed timestamp to the ingester's current
// epoch and advances by whole days from there. Records without a
// timestamp stay on the anchor day.
func (p *traceDNSParser) day(tsNS int64) int {
	if !p.anchored {
		p.baseDay = p.in.Day()
		p.anchorNS = tsNS
		p.anchored = true
	}
	if tsNS == 0 || p.anchorNS == 0 || tsNS < p.anchorNS {
		return p.baseDay
	}
	const dayNS = 24 * 60 * 60 * 1e9
	return p.baseDay + int((tsNS-p.anchorNS)/dayNS)
}

// parseTraceDNSAddresses decodes the addresses field — string or array
// — keeping the IPv4 answers and silently skipping IPv6 ones.
func parseTraceDNSAddresses(raw json.RawMessage) ([]dnsutil.IPv4, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var parts []string
	if raw[0] == '[' {
		if err := json.Unmarshal(raw, &parts); err != nil {
			return nil, fmt.Errorf("tracedns: addresses: %w", err)
		}
	} else {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("tracedns: addresses: %w", err)
		}
		if s != "" {
			parts = strings.Split(s, ",")
		}
	}
	ips := make([]dnsutil.IPv4, 0, len(parts))
	for _, part := range parts {
		ip, err := dnsutil.ParseIPv4(strings.TrimSpace(part))
		if err != nil {
			continue // AAAA answers land here; the graph is IPv4-keyed
		}
		ips = append(ips, ip)
	}
	return ips, nil
}

// ConsumeTraceDNS ingests trace_dns JSONL from r until EOF or
// shutdown. Malformed lines are counted as parse errors and skipped;
// only scanner-level failures (I/O errors, an over-long line) abort.
func (in *Ingester) ConsumeTraceDNS(r io.Reader) error {
	in.consumers.Add(1)
	defer in.consumers.Done()
	select {
	case <-in.closing:
		return ErrShuttingDown
	default:
	}
	src := in.newSource("tracedns")
	defer src.close()
	p := &traceDNSParser{in: in}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), logio.MaxLineBytes)
	for sc.Scan() {
		select {
		case <-in.closing:
			return ErrShuttingDown
		default:
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, ok, err := p.parse(line)
		if err != nil {
			inc(in.m.ParseErrors)
			continue
		}
		if !ok {
			continue
		}
		src.dispatch(e)
	}
	if err := sc.Err(); err != nil {
		inc(in.m.ParseErrors)
		return fmt.Errorf("ingest: tracedns stream: %w", err)
	}
	return nil
}

// NewTraceDNSTailer builds a Tailer that follows a trace_dns JSONL
// file instead of a native event file, with the same resume-offset and
// rotation semantics.
func (in *Ingester) NewTraceDNSTailer(path string, interval time.Duration) *Tailer {
	t := in.NewTailer(path, interval)
	p := &traceDNSParser{in: in}
	t.parse = p.parse
	return t
}
