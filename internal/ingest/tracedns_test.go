package ingest

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTraceDNSParse(t *testing.T) {
	in := New(Config{Network: "net", StartDay: 7, Workers: 1})
	defer in.Shutdown()
	p := &traceDNSParser{in: in}

	const dayNS = int64(24 * 60 * 60 * 1e9)
	base := int64(1700000000_000000000)

	// Query: machine is the client address, name loses its trailing dot.
	e, ok, err := p.parse(`{"qr":"Q","name":"www.Example.COM.","src":{"addr":"10.1.2.3"},"timestamp_raw":` + itoa(base) + `}`)
	if err != nil || !ok {
		t.Fatalf("query parse: ok=%v err=%v", ok, err)
	}
	if e.Kind != 1 || e.Machine != "10.1.2.3" || e.Domain != "www.example.com" || e.Day != 7 {
		t.Fatalf("query event = %+v", e)
	}

	// Response with comma-separated addresses string; IPv6 skipped.
	e, ok, err = p.parse(`{"qr":"R","name":"cdn.example.net","src":{"addr":"10.1.2.3"},` +
		`"addresses":"93.184.216.34,2606:2800:220:1::1,93.184.216.35","timestamp_raw":` + itoa(base+1) + `}`)
	if err != nil || !ok {
		t.Fatalf("response parse: ok=%v err=%v", ok, err)
	}
	if e.Kind != 2 || e.Domain != "cdn.example.net" || len(e.IPs) != 2 {
		t.Fatalf("response event = %+v", e)
	}
	if e.IPs[0].String() != "93.184.216.34" || e.IPs[1].String() != "93.184.216.35" {
		t.Fatalf("response ips = %v", e.IPs)
	}

	// Response with a JSON array of addresses.
	e, ok, err = p.parse(`{"qr":"R","name":"a.example.org","addresses":["198.51.100.7"],"timestamp_raw":` + itoa(base+2) + `}`)
	if err != nil || !ok || len(e.IPs) != 1 || e.IPs[0].String() != "198.51.100.7" {
		t.Fatalf("array addresses: e=%+v ok=%v err=%v", e, ok, err)
	}

	// AAAA-only response: valid line, no event.
	if _, ok, err := p.parse(`{"qr":"R","name":"v6.example.org","addresses":"2606:2800::1","timestamp_raw":` + itoa(base+3) + `}`); err != nil || ok {
		t.Fatalf("AAAA-only response must yield no event: ok=%v err=%v", ok, err)
	}
	// Response with no addresses field at all.
	if _, ok, err := p.parse(`{"qr":"R","name":"nx.example.org","timestamp_raw":` + itoa(base+4) + `}`); err != nil || ok {
		t.Fatalf("empty response must yield no event: ok=%v err=%v", ok, err)
	}

	// Day advancement: 2.5 days after the anchor lands on baseDay+2.
	e, ok, err = p.parse(`{"qr":"Q","name":"late.example.com","src":{"addr":"10.0.0.1"},"timestamp_raw":` + itoa(base+dayNS*5/2) + `}`)
	if err != nil || !ok || e.Day != 9 {
		t.Fatalf("2.5 days later: day=%d want 9 (err=%v)", e.Day, err)
	}
	// A timestamp before the anchor stays on the anchor day.
	e, _, err = p.parse(`{"qr":"Q","name":"early.example.com","src":{"addr":"10.0.0.1"},"timestamp_raw":` + itoa(base-dayNS) + `}`)
	if err != nil || e.Day != 7 {
		t.Fatalf("pre-anchor timestamp: day=%d want 7 (err=%v)", e.Day, err)
	}

	// Malformed inputs error.
	for _, bad := range []string{
		`{not json`,
		`{"qr":"Q","name":"!!bad!!","src":{"addr":"10.0.0.1"}}`, // invalid domain
		`{"qr":"Q","name":"ok.example.com"}`,                    // query without src.addr
		`{"qr":"X","name":"ok.example.com"}`,                    // unknown qr
		`{"qr":"R","name":"ok.example.com","addresses":42}`,     // addresses wrong type
	} {
		if _, _, err := p.parse(bad); err == nil {
			t.Errorf("parse(%q) did not error", bad)
		}
	}
}

func itoa(v int64) string {
	b := make([]byte, 0, 20)
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var digits [20]byte
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(append(b, digits[i:]...))
}

// TestConsumeTraceDNS runs gadget JSONL through the full ingest path:
// valid lines build the graph, malformed lines are counted and skipped.
func TestConsumeTraceDNS(t *testing.T) {
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 2, Workers: 2, Metrics: m})
	defer in.Shutdown()
	jsonl := `{"qr":"Q","name":"c2.bad.example.","src":{"addr":"10.0.0.1"},"timestamp_raw":1000}
{"qr":"Q","name":"c2.bad.example.","src":{"addr":"10.0.0.2"},"timestamp_raw":2000}
garbage line that is not json

{"qr":"R","name":"c2.bad.example","addresses":"203.0.113.9","timestamp_raw":3000}
{"qr":"R","name":"quiet.example","timestamp_raw":4000}
`
	if err := in.ConsumeTraceDNS(strings.NewReader(jsonl)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "trace events applied", func() bool {
		return m.EventsIngested.Value() == 3
	})
	if m.ParseErrors.Value() != 1 {
		t.Fatalf("parse errors = %d, want 1", m.ParseErrors.Value())
	}
	g, _ := in.Snapshot()
	d, ok := g.DomainIndex("c2.bad.example")
	if !ok {
		t.Fatal("domain missing from graph")
	}
	if g.DomainDegree(d) != 2 {
		t.Fatalf("domain degree = %d, want 2 machines", g.DomainDegree(d))
	}
	if len(g.DomainIPs(d)) != 1 {
		t.Fatalf("domain ips = %v, want the one A answer", g.DomainIPs(d))
	}
}

// TestTraceDNSTailer follows a growing gadget JSONL file.
func TestTraceDNSTailer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(path, []byte(`{"qr":"Q","name":"a.example.com","src":{"addr":"10.0.0.1"},"timestamp_raw":1000}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, _ := newMetrics()
	in := New(Config{Network: "net", StartDay: 1, Workers: 1, Metrics: m})
	defer in.Shutdown()
	tl := in.NewTraceDNSTailer(path, 5*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()
	defer func() { cancel(); <-done }()
	waitFor(t, "first trace line tailed", func() bool { return m.EventsIngested.Value() == 1 })

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"qr":"R","name":"a.example.com","addresses":"192.0.2.1","timestamp_raw":2000}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	waitFor(t, "appended trace line tailed", func() bool { return m.EventsIngested.Value() == 2 })
	g, _ := in.Snapshot()
	d, ok := g.DomainIndex("a.example.com")
	if !ok || len(g.DomainIPs(d)) != 1 {
		t.Fatalf("tailed trace not applied: ok=%v", ok)
	}
}
