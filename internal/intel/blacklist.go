// Package intel manages the ground-truth sources Segugio seeds its graph
// labels from: malware C&C domain blacklists (commercial or public, with
// malware-family tags and first-listed dates) and popular-domain whitelists
// built from a daily ranking archive with a "consistently popular for a
// year" filter and free-registration-zone exclusions (paper Section III).
package intel

import (
	"sort"
	"strings"
)

// BlacklistEntry is one blacklisted malware-control domain.
type BlacklistEntry struct {
	// Domain is the full (normalized) domain name; the paper matches the
	// entire FQD string against the blacklist.
	Domain string
	// Family is the malware family (or criminal-group) tag provided by the
	// blacklist vendor; empty when unlabeled.
	Family string
	// FirstListed is the day the entry appeared on the list. Time-aware
	// lookups use it so experiments can honestly exclude future knowledge,
	// and the early-detection experiment (Section IV-F) compares Segugio's
	// detection day against it.
	FirstListed int
}

// Blacklist is a set of known malware-control domains. The zero value is
// not usable; construct with NewBlacklist.
type Blacklist struct {
	entries map[string]BlacklistEntry
}

// NewBlacklist returns an empty blacklist.
func NewBlacklist() *Blacklist {
	return &Blacklist{entries: make(map[string]BlacklistEntry)}
}

// Add inserts or replaces an entry. When the domain is already present the
// earlier FirstListed day is kept, matching how real feeds accumulate.
func (b *Blacklist) Add(e BlacklistEntry) {
	if old, ok := b.entries[e.Domain]; ok && old.FirstListed < e.FirstListed {
		e.FirstListed = old.FirstListed
	}
	b.entries[e.Domain] = e
}

// Len reports the number of blacklisted domains.
func (b *Blacklist) Len() int { return len(b.entries) }

// Contains reports whether domain was on the blacklist as of the given day.
// The full domain string is matched, per the paper's labeling rule.
func (b *Blacklist) Contains(domain string, asOf int) bool {
	e, ok := b.entries[domain]
	return ok && e.FirstListed <= asOf
}

// Entry returns the entry for domain regardless of listing day.
func (b *Blacklist) Entry(domain string) (BlacklistEntry, bool) {
	e, ok := b.entries[domain]
	return e, ok
}

// Domains returns all blacklisted domains in sorted order, ignoring listing
// days. Use DomainsAsOf for time-aware enumeration.
func (b *Blacklist) Domains() []string {
	out := make([]string, 0, len(b.entries))
	for d := range b.entries {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DomainsAsOf returns the domains listed on or before day, sorted.
func (b *Blacklist) DomainsAsOf(day int) []string {
	out := make([]string, 0, len(b.entries))
	for d, e := range b.entries {
		if e.FirstListed <= day {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// Families returns the distinct family tags present, sorted. Entries with
// an empty family tag are skipped.
func (b *Blacklist) Families() []string {
	set := make(map[string]struct{})
	for _, e := range b.entries {
		if e.Family != "" {
			set[e.Family] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// ByFamily groups blacklisted domains by family tag. Unlabeled entries are
// grouped under the empty string.
func (b *Blacklist) ByFamily() map[string][]string {
	out := make(map[string][]string)
	for d, e := range b.entries {
		out[e.Family] = append(out[e.Family], d)
	}
	for f := range out {
		sort.Strings(out[f])
	}
	return out
}

// Minus returns the entries of b whose domains are not in other. The
// cross-blacklist experiment (Section IV-E) tests on public-list domains
// absent from the commercial list used in training.
func (b *Blacklist) Minus(other *Blacklist) *Blacklist {
	out := NewBlacklist()
	for d, e := range b.entries {
		if _, dup := other.entries[d]; !dup {
			out.Add(e)
		}
	}
	return out
}

// Union merges two blacklists into a new one, keeping the earlier
// FirstListed day for shared domains.
func (b *Blacklist) Union(other *Blacklist) *Blacklist {
	out := NewBlacklist()
	for _, e := range b.entries {
		out.Add(e)
	}
	for _, e := range other.entries {
		out.Add(e)
	}
	return out
}

// Intersect returns the domains present in both lists (entries from b).
func (b *Blacklist) Intersect(other *Blacklist) *Blacklist {
	out := NewBlacklist()
	for d, e := range b.entries {
		if _, ok := other.entries[d]; ok {
			out.Add(e)
		}
	}
	return out
}

// IsSupersetOf reports whether b contains every domain of other. Section V
// verifies the Notos training blacklist is a proper superset of Segugio's.
func (b *Blacklist) IsSupersetOf(other *Blacklist) bool {
	for d := range other.entries {
		if _, ok := b.entries[d]; !ok {
			return false
		}
	}
	return true
}

// FilterFamilies returns a new blacklist keeping only entries whose family
// tag is in keep. Used to build family-balanced folds.
func (b *Blacklist) FilterFamilies(keep map[string]struct{}) *Blacklist {
	out := NewBlacklist()
	for _, e := range b.entries {
		if _, ok := keep[e.Family]; ok {
			out.Add(e)
		}
	}
	return out
}

// MatchesZone reports whether domain equals zone or is a subdomain of it.
// Helper for heuristics that group FQDs under listed zones.
func MatchesZone(domain, zone string) bool {
	return domain == zone || strings.HasSuffix(domain, "."+zone)
}
