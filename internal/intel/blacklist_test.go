package intel

import (
	"testing"
)

func TestBlacklistAddContains(t *testing.T) {
	b := NewBlacklist()
	b.Add(BlacklistEntry{Domain: "c2.evil.com", Family: "zeus", FirstListed: 10})

	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	if !b.Contains("c2.evil.com", 10) {
		t.Error("should be listed on its FirstListed day")
	}
	if !b.Contains("c2.evil.com", 50) {
		t.Error("should be listed after FirstListed")
	}
	if b.Contains("c2.evil.com", 9) {
		t.Error("must not be listed before FirstListed")
	}
	if b.Contains("other.com", 100) {
		t.Error("unlisted domain must not match")
	}
	// Full-string match only: subdomains of listed domains do not match.
	if b.Contains("x.c2.evil.com", 100) {
		t.Error("blacklist matching is exact, not suffix-based")
	}
}

func TestBlacklistKeepsEarliestListing(t *testing.T) {
	b := NewBlacklist()
	b.Add(BlacklistEntry{Domain: "d.com", Family: "a", FirstListed: 5})
	b.Add(BlacklistEntry{Domain: "d.com", Family: "b", FirstListed: 9})
	e, ok := b.Entry("d.com")
	if !ok || e.FirstListed != 5 {
		t.Fatalf("FirstListed = %d, want 5 (earliest kept)", e.FirstListed)
	}
	if e.Family != "b" {
		t.Fatalf("Family = %q, want latest tag %q", e.Family, "b")
	}

	// Adding an earlier sighting moves FirstListed back.
	b.Add(BlacklistEntry{Domain: "d.com", Family: "b", FirstListed: 2})
	if e, _ := b.Entry("d.com"); e.FirstListed != 2 {
		t.Fatalf("FirstListed = %d, want 2", e.FirstListed)
	}
}

func TestBlacklistDomainsAsOf(t *testing.T) {
	b := NewBlacklist()
	b.Add(BlacklistEntry{Domain: "a.com", FirstListed: 1})
	b.Add(BlacklistEntry{Domain: "b.com", FirstListed: 5})
	b.Add(BlacklistEntry{Domain: "c.com", FirstListed: 9})

	got := b.DomainsAsOf(5)
	if len(got) != 2 || got[0] != "a.com" || got[1] != "b.com" {
		t.Fatalf("DomainsAsOf(5) = %v, want [a.com b.com]", got)
	}
	if all := b.Domains(); len(all) != 3 {
		t.Fatalf("Domains = %v, want 3 entries", all)
	}
}

func TestBlacklistFamilies(t *testing.T) {
	b := NewBlacklist()
	b.Add(BlacklistEntry{Domain: "a.com", Family: "zeus"})
	b.Add(BlacklistEntry{Domain: "b.com", Family: "spyeye"})
	b.Add(BlacklistEntry{Domain: "c.com", Family: "zeus"})
	b.Add(BlacklistEntry{Domain: "d.com"}) // unlabeled

	fams := b.Families()
	if len(fams) != 2 || fams[0] != "spyeye" || fams[1] != "zeus" {
		t.Fatalf("Families = %v, want [spyeye zeus]", fams)
	}

	byFam := b.ByFamily()
	if len(byFam["zeus"]) != 2 || len(byFam["spyeye"]) != 1 || len(byFam[""]) != 1 {
		t.Fatalf("ByFamily = %v", byFam)
	}
}

func TestBlacklistSetOps(t *testing.T) {
	commercial := NewBlacklist()
	commercial.Add(BlacklistEntry{Domain: "a.com"})
	commercial.Add(BlacklistEntry{Domain: "b.com"})
	public := NewBlacklist()
	public.Add(BlacklistEntry{Domain: "b.com"})
	public.Add(BlacklistEntry{Domain: "c.com"})

	onlyPublic := public.Minus(commercial)
	if onlyPublic.Len() != 1 || !onlyPublic.Contains("c.com", 0) {
		t.Fatalf("Minus: got %v", onlyPublic.Domains())
	}

	u := commercial.Union(public)
	if u.Len() != 3 {
		t.Fatalf("Union Len = %d, want 3", u.Len())
	}
	if !u.IsSupersetOf(commercial) || !u.IsSupersetOf(public) {
		t.Error("union must be a superset of both inputs")
	}
	if commercial.IsSupersetOf(public) {
		t.Error("commercial is not a superset of public")
	}

	i := commercial.Intersect(public)
	if i.Len() != 1 || !i.Contains("b.com", 0) {
		t.Fatalf("Intersect: got %v", i.Domains())
	}
}

func TestBlacklistFilterFamilies(t *testing.T) {
	b := NewBlacklist()
	b.Add(BlacklistEntry{Domain: "a.com", Family: "zeus"})
	b.Add(BlacklistEntry{Domain: "b.com", Family: "spyeye"})
	kept := b.FilterFamilies(map[string]struct{}{"zeus": {}})
	if kept.Len() != 1 || !kept.Contains("a.com", 0) {
		t.Fatalf("FilterFamilies: got %v", kept.Domains())
	}
}

func TestMatchesZone(t *testing.T) {
	tests := []struct {
		domain, zone string
		want         bool
	}{
		{"evil.com", "evil.com", true},
		{"c2.evil.com", "evil.com", true},
		{"a.b.evil.com", "evil.com", true},
		{"notevil.com", "evil.com", false},
		{"evil.com.org", "evil.com", false},
	}
	for _, tt := range tests {
		if got := MatchesZone(tt.domain, tt.zone); got != tt.want {
			t.Errorf("MatchesZone(%q, %q) = %v, want %v", tt.domain, tt.zone, got, tt.want)
		}
	}
}
