package intel

import (
	"errors"
	"fmt"
	"sort"

	"segugio/internal/dnsutil"
)

// RankArchive is a multi-day archive of popularity rankings of effective
// second-level domains, analogous to the paper's one-year collection of
// daily alexa.com top-1M lists. Day i's list is a rank-ordered slice
// (index 0 = most popular).
type RankArchive struct {
	days [][]string
}

// NewRankArchive returns an empty archive.
func NewRankArchive() *RankArchive { return &RankArchive{} }

// AddDay appends one day's ranked e2LD list. The slice is copied.
func (a *RankArchive) AddDay(ranked []string) {
	day := make([]string, len(ranked))
	copy(day, ranked)
	a.days = append(a.days, day)
}

// Days reports the number of archived days.
func (a *RankArchive) Days() int { return len(a.days) }

// ErrEmptyArchive is returned when building a whitelist from no data.
var ErrEmptyArchive = errors.New("intel: rank archive has no days")

// WhitelistConfig controls whitelist construction.
type WhitelistConfig struct {
	// TopK restricts each day's list to its TopK most popular e2LDs before
	// the consistency intersection (the paper uses the full top-1M for the
	// main whitelist and top-100K for the Notos comparison). Zero means use
	// each day's entire list.
	TopK int
	// MinDays is the number of archive days an e2LD must appear in (within
	// TopK) to be whitelisted. Zero means "every archived day", the paper's
	// consistently-top-for-a-year rule.
	MinDays int
	// ExcludeZones lists e2LDs that must never be whitelisted even when
	// consistently popular — free-registration zones such as dynamic-DNS
	// and blog-hosting services whose subdomains are routinely abused.
	ExcludeZones []string
}

// Whitelist is a set of trusted effective second-level domains. A full
// domain name is whitelisted when its e2LD is in the set.
type Whitelist struct {
	e2lds map[string]struct{}
}

// BuildWhitelist applies the paper's filtering strategy to the archive:
// keep e2LDs that appeared in the (top-K of the) ranking on at least
// MinDays days, then drop excluded free-registration zones.
func BuildWhitelist(a *RankArchive, cfg WhitelistConfig) (*Whitelist, error) {
	if a.Days() == 0 {
		return nil, ErrEmptyArchive
	}
	minDays := cfg.MinDays
	if minDays <= 0 {
		minDays = a.Days()
	}
	if minDays > a.Days() {
		return nil, fmt.Errorf("intel: MinDays %d exceeds archived days %d", minDays, a.Days())
	}
	counts := make(map[string]int)
	for _, day := range a.days {
		limit := len(day)
		if cfg.TopK > 0 && cfg.TopK < limit {
			limit = cfg.TopK
		}
		for _, e2ld := range day[:limit] {
			counts[e2ld]++
		}
	}
	w := &Whitelist{e2lds: make(map[string]struct{})}
	for e2ld, c := range counts {
		if c >= minDays {
			w.e2lds[e2ld] = struct{}{}
		}
	}
	for _, zone := range cfg.ExcludeZones {
		delete(w.e2lds, zone)
	}
	return w, nil
}

// NewWhitelist builds a whitelist directly from a set of e2LDs, for tests
// and for deployments with a pre-vetted list.
func NewWhitelist(e2lds []string) *Whitelist {
	w := &Whitelist{e2lds: make(map[string]struct{}, len(e2lds))}
	for _, d := range e2lds {
		w.e2lds[d] = struct{}{}
	}
	return w
}

// Len reports the number of whitelisted e2LDs.
func (w *Whitelist) Len() int { return len(w.e2lds) }

// ContainsE2LD reports whether the exact e2LD is whitelisted.
func (w *Whitelist) ContainsE2LD(e2ld string) bool {
	_, ok := w.e2lds[e2ld]
	return ok
}

// ContainsDomain reports whether domain's effective second-level domain is
// whitelisted, e.g. "www.bbc.co.uk" is benign when "bbc.co.uk" is listed.
func (w *Whitelist) ContainsDomain(domain string, suffixes *dnsutil.SuffixList) bool {
	return w.ContainsE2LD(suffixes.E2LD(domain))
}

// Remove deletes e2LDs from the whitelist, returning how many were present.
// The Notos comparison removes the top-100K training domains from the test
// whitelist (Section V).
func (w *Whitelist) Remove(e2lds []string) int {
	removed := 0
	for _, d := range e2lds {
		if _, ok := w.e2lds[d]; ok {
			delete(w.e2lds, d)
			removed++
		}
	}
	return removed
}

// E2LDs returns the whitelisted e2LDs in sorted order.
func (w *Whitelist) E2LDs() []string {
	out := make([]string, 0, len(w.e2lds))
	for d := range w.e2lds {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy.
func (w *Whitelist) Clone() *Whitelist {
	return NewWhitelist(w.E2LDs())
}
