package intel

import (
	"errors"
	"testing"

	"segugio/internal/dnsutil"
)

func TestBuildWhitelistConsistency(t *testing.T) {
	a := NewRankArchive()
	a.AddDay([]string{"stable.com", "flaky.com", "also-stable.org"})
	a.AddDay([]string{"stable.com", "also-stable.org"})
	a.AddDay([]string{"also-stable.org", "stable.com", "newcomer.net"})

	w, err := BuildWhitelist(a, WhitelistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !w.ContainsE2LD("stable.com") || !w.ContainsE2LD("also-stable.org") {
		t.Error("consistently-listed e2LDs must be whitelisted")
	}
	if w.ContainsE2LD("flaky.com") || w.ContainsE2LD("newcomer.net") {
		t.Error("inconsistently-listed e2LDs must be excluded")
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
}

func TestBuildWhitelistTopK(t *testing.T) {
	a := NewRankArchive()
	// "tail.com" is present daily but always below the top-2 cut.
	a.AddDay([]string{"a.com", "b.com", "tail.com"})
	a.AddDay([]string{"b.com", "a.com", "tail.com"})

	w, err := BuildWhitelist(a, WhitelistConfig{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.ContainsE2LD("tail.com") {
		t.Error("e2LD below TopK must not be whitelisted")
	}
	if !w.ContainsE2LD("a.com") || !w.ContainsE2LD("b.com") {
		t.Error("consistently top-K e2LDs must be whitelisted")
	}
}

func TestBuildWhitelistMinDays(t *testing.T) {
	a := NewRankArchive()
	a.AddDay([]string{"often.com", "rare.com"})
	a.AddDay([]string{"often.com"})
	a.AddDay([]string{"often.com"})

	w, err := BuildWhitelist(a, WhitelistConfig{MinDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !w.ContainsE2LD("often.com") {
		t.Error("often.com appears 3 days, MinDays 2: must be listed")
	}
	if w.ContainsE2LD("rare.com") {
		t.Error("rare.com appears 1 day, MinDays 2: must not be listed")
	}

	if _, err := BuildWhitelist(a, WhitelistConfig{MinDays: 10}); err == nil {
		t.Error("MinDays beyond archive length must fail")
	}
}

func TestBuildWhitelistExcludesFreeRegistrationZones(t *testing.T) {
	a := NewRankArchive()
	a.AddDay([]string{"good.com", "dyndns.example"})
	a.AddDay([]string{"good.com", "dyndns.example"})

	w, err := BuildWhitelist(a, WhitelistConfig{ExcludeZones: []string{"dyndns.example"}})
	if err != nil {
		t.Fatal(err)
	}
	if w.ContainsE2LD("dyndns.example") {
		t.Error("excluded free-registration zone must not be whitelisted")
	}
	if !w.ContainsE2LD("good.com") {
		t.Error("good.com must remain whitelisted")
	}
}

func TestBuildWhitelistEmptyArchive(t *testing.T) {
	if _, err := BuildWhitelist(NewRankArchive(), WhitelistConfig{}); !errors.Is(err, ErrEmptyArchive) {
		t.Fatalf("err = %v, want ErrEmptyArchive", err)
	}
}

func TestWhitelistContainsDomain(t *testing.T) {
	w := NewWhitelist([]string{"bbc.co.uk", "example.com"})
	s := dnsutil.DefaultSuffixList()
	if !w.ContainsDomain("www.bbc.co.uk", s) {
		t.Error("www.bbc.co.uk should match via e2LD bbc.co.uk")
	}
	if !w.ContainsDomain("example.com", s) {
		t.Error("exact e2LD should match")
	}
	if w.ContainsDomain("www.evil.com", s) {
		t.Error("unlisted e2LD must not match")
	}
}

func TestWhitelistRemoveAndClone(t *testing.T) {
	w := NewWhitelist([]string{"a.com", "b.com", "c.com"})
	clone := w.Clone()
	if n := w.Remove([]string{"b.com", "zzz.com"}); n != 1 {
		t.Fatalf("Remove returned %d, want 1", n)
	}
	if w.ContainsE2LD("b.com") {
		t.Error("b.com should be removed")
	}
	if !clone.ContainsE2LD("b.com") {
		t.Error("clone must be unaffected by Remove on the original")
	}
	got := w.E2LDs()
	if len(got) != 2 || got[0] != "a.com" || got[1] != "c.com" {
		t.Fatalf("E2LDs = %v, want [a.com c.com]", got)
	}
}
