// Binary event framing for the live event stream — the wire-speed
// counterpart to the text format in logio.go.
//
// A binary stream is the 5-byte magic "segb1" followed by frames:
//
//	frame   = uvarint(len(payload)) payload crc32c-LE(payload)
//	payload = record...
//	record  = 0x01 varint(day) ref(machine) ref(domain)           query
//	        | 0x02 varint(day) ref(domain) uvarint(n) n×ipv4-BE   resolution
//	ref     = uvarint(0) uvarint(len) bytes      literal, not interned
//	        | uvarint(1) uvarint(len) bytes      define: intern, next id
//	        | uvarint(k) with k >= 2             symbol id k-2
//
// The symbol table is per stream and append-only: each define is
// assigned the next sequential id on both sides, so steady-state frames
// carry small integer ids instead of repeated machine/domain strings.
// The encoder stops interning past maxSymbols entries or maxSymbolBytes
// of string data and falls back to literals; the decoder enforces the
// same caps, so a well-formed stream never trips them.
//
// Error handling is frame-granular: a CRC mismatch or a malformed
// record skips the rest of that frame (reported through OnFrameError,
// counted in FramesSkipped) and decoding continues with the next frame.
// Only a frame length outside (0, MaxFrameBytes] — after which record
// boundaries cannot be trusted — or an I/O error aborts the stream. A
// truncated frame at EOF is reported as a frame error and the stream
// ends cleanly, so a torn tail (crashed writer, torn WAL record) never
// wedges a source.
package logio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"segugio/internal/dnsutil"
)

// BinaryMagic opens every binary event stream (and, because the WAL
// encoder resets per record, every binary WAL record payload) — the
// sniffing handle for auto-detecting text vs binary sources and replay
// payloads.
const BinaryMagic = "segb1"

// MaxFrameBytes bounds one frame's payload. A frame length outside
// (0, MaxFrameBytes] means the stream is desynced and aborts decoding.
const MaxFrameBytes = 1 << 20

// FrameTargetBytes is the payload size at which the encoder flushes a
// frame on its own; small enough to keep per-frame latency low, large
// enough to amortize the length/CRC framing and the decoder's
// per-frame bookkeeping.
const FrameTargetBytes = 32 << 10

// Symbol-table caps, enforced identically by encoder and decoder.
const (
	maxSymbols     = 1 << 18
	maxSymbolBytes = 8 << 20
)

// Record opcodes.
const (
	opQuery      = 0x01
	opResolution = 0x02
)

// Reference-encoding tags (see package comment).
const (
	refLiteral = 0
	refDefine  = 1
	refBase    = 2 // tag k >= refBase is symbol id k-refBase
)

// ErrBadFrame tags frame-granular decode failures: CRC mismatches,
// malformed records, unknown symbol ids, truncated tails. Errors
// wrapping it are reported through OnFrameError and skipped; they never
// abort the stream.
var ErrBadFrame = errors.New("logio: malformed frame")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func frameErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadFrame, fmt.Sprintf(format, args...))
}

// framePool recycles frame payload buffers across decoder lifetimes
// (one decoder per connection; connections churn).
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, FrameTargetBytes+frameSlack)
	return &b
}}

const frameSlack = 4 << 10

// EventEncoder writes events as a binary stream. Not safe for
// concurrent use. Flush (or a full frame) is what actually writes;
// callers must Flush before closing the destination.
type EventEncoder struct {
	w        io.Writer
	payload  []byte
	syms     map[string]uint64
	symBytes int
	started  bool // magic written
	varbuf   [binary.MaxVarintLen64]byte
}

// NewEventEncoder builds an encoder writing to w.
func NewEventEncoder(w io.Writer) *EventEncoder {
	return &EventEncoder{
		w:       w,
		payload: make([]byte, 0, FrameTargetBytes+frameSlack),
		syms:    make(map[string]uint64),
	}
}

// Reset discards all encoder state — symbol table included — and
// retargets w. Each WAL record is encoded after a Reset so its payload
// is self-contained and replayable in isolation.
func (enc *EventEncoder) Reset(w io.Writer) {
	enc.w = w
	enc.payload = enc.payload[:0]
	clear(enc.syms)
	enc.symBytes = 0
	enc.started = false
}

// Buffered returns the bytes of the in-progress frame not yet flushed.
func (enc *EventEncoder) Buffered() int { return len(enc.payload) }

// Encode appends one event to the stream, flushing a frame whenever the
// payload reaches FrameTargetBytes.
func (enc *EventEncoder) Encode(e Event) error {
	// Worst-case record size, so a flush decision never needs to roll
	// back a half-encoded record (symbol defines are not undoable).
	bound := 64 + len(e.Machine) + len(e.Domain) + 4*len(e.IPs)
	if bound > MaxFrameBytes {
		return fmt.Errorf("logio: event too large for one frame (%d byte bound)", bound)
	}
	if len(enc.payload) > 0 && len(enc.payload)+bound > MaxFrameBytes {
		if err := enc.Flush(); err != nil {
			return err
		}
	}
	switch e.Kind {
	case EventQuery:
		enc.payload = append(enc.payload, opQuery)
		enc.payload = binary.AppendVarint(enc.payload, int64(e.Day))
		enc.appendRef(e.Machine)
		enc.appendRef(e.Domain)
	case EventResolution:
		enc.payload = append(enc.payload, opResolution)
		enc.payload = binary.AppendVarint(enc.payload, int64(e.Day))
		enc.appendRef(e.Domain)
		enc.payload = binary.AppendUvarint(enc.payload, uint64(len(e.IPs)))
		for _, ip := range e.IPs {
			enc.payload = binary.BigEndian.AppendUint32(enc.payload, uint32(ip))
		}
	default:
		return fmt.Errorf("logio: unknown event kind %d", e.Kind)
	}
	if len(enc.payload) >= FrameTargetBytes {
		return enc.Flush()
	}
	return nil
}

// appendRef encodes one string reference, interning when under the caps.
func (enc *EventEncoder) appendRef(s string) {
	if id, ok := enc.syms[s]; ok {
		enc.payload = binary.AppendUvarint(enc.payload, id+refBase)
		return
	}
	if len(enc.syms) < maxSymbols && enc.symBytes+len(s) <= maxSymbolBytes {
		enc.syms[s] = uint64(len(enc.syms))
		enc.symBytes += len(s)
		enc.payload = binary.AppendUvarint(enc.payload, refDefine)
	} else {
		enc.payload = binary.AppendUvarint(enc.payload, refLiteral)
	}
	enc.payload = binary.AppendUvarint(enc.payload, uint64(len(s)))
	enc.payload = append(enc.payload, s...)
}

// Flush writes the in-progress frame (magic first, on the first flush).
// A no-op when nothing is buffered.
func (enc *EventEncoder) Flush() error {
	if len(enc.payload) == 0 {
		return nil
	}
	if !enc.started {
		if _, err := io.WriteString(enc.w, BinaryMagic); err != nil {
			return err
		}
		enc.started = true
	}
	n := binary.PutUvarint(enc.varbuf[:], uint64(len(enc.payload)))
	if _, err := enc.w.Write(enc.varbuf[:n]); err != nil {
		return err
	}
	// CRC travels after the payload so the whole frame body is built
	// append-only; reuse the payload buffer's tail for the trailer.
	sum := crc32.Checksum(enc.payload, crcTable)
	enc.payload = binary.LittleEndian.AppendUint32(enc.payload, sum)
	_, err := enc.w.Write(enc.payload)
	enc.payload = enc.payload[:0]
	return err
}

// symEntry is one interned string on the decode side. Domain
// normalization is validated lazily, once per symbol, and cached.
type symEntry struct {
	raw        string
	dom        string
	domErr     error
	domChecked bool
}

// EventDecoder reads a binary event stream. Not safe for concurrent
// use. The *Event handed to the callback is reused between records —
// consumers that retain events past the callback must copy the struct
// (the strings and the IP slice backing array stay valid; they are
// never reused).
type EventDecoder struct {
	// OnFrameError, when non-nil, receives every frame-granular decode
	// failure (the frame is skipped and decoding continues). The ingest
	// layer counts these as parse errors.
	OnFrameError func(error)
	// AfterFrame, when non-nil, runs after each frame fully decodes (or
	// is abandoned mid-frame on a record error) with the number of
	// records delivered and how long decoding them took, callback time
	// included — the batch-flush and parse-metering hook.
	AfterFrame func(records int, took time.Duration)
	// FramesSkipped counts frames dropped for frame-granular errors.
	FramesSkipped int

	r        *bufio.Reader
	syms     []symEntry
	symBytes int
	payloadP *[]byte
	ipArena  []dnsutil.IPv4
	ev       Event
}

// NewEventDecoder builds a decoder reading from r. Call Release when
// done to recycle internal buffers.
func NewEventDecoder(r io.Reader) *EventDecoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	return &EventDecoder{r: br, payloadP: framePool.Get().(*[]byte)}
}

// Release returns pooled buffers. The decoder is unusable afterwards.
func (d *EventDecoder) Release() {
	if d.payloadP != nil {
		*d.payloadP = (*d.payloadP)[:0]
		framePool.Put(d.payloadP)
		d.payloadP = nil
	}
	d.syms = nil
	d.ipArena = nil
}

// ipAlloc carves an n-address slice out of the arena. Chunks are never
// reused — events handed downstream keep referencing them safely — so
// the steady-state cost is one allocation per arena chunk, not per
// event.
func (d *EventDecoder) ipAlloc(n int) []dnsutil.IPv4 {
	if n > cap(d.ipArena)-len(d.ipArena) {
		size := 4096
		if n > size {
			size = n
		}
		d.ipArena = make([]dnsutil.IPv4, 0, size)
	}
	s := d.ipArena[len(d.ipArena) : len(d.ipArena)+n : len(d.ipArena)+n]
	d.ipArena = d.ipArena[:len(d.ipArena)+n]
	return s
}

// Run decodes the stream, invoking fn for every record until EOF or an
// unrecoverable error. fn's error aborts decoding and is returned
// verbatim (so consumers can abort on shutdown). Frame-granular
// failures are skipped, not returned — see OnFrameError.
func (d *EventDecoder) Run(fn func(*Event) error) error {
	var magic [len(BinaryMagic)]byte
	if _, err := io.ReadFull(d.r, magic[:]); err != nil {
		if err == io.EOF {
			return nil // empty stream
		}
		return fmt.Errorf("logio: binary stream: reading magic: %w", err)
	}
	if string(magic[:]) != BinaryMagic {
		return fmt.Errorf("logio: binary stream: bad magic %q", magic[:])
	}
	for {
		ln, err := binary.ReadUvarint(d.r)
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			d.frameError(frameErrf("torn frame length at EOF"))
			return nil
		}
		if err != nil {
			return fmt.Errorf("logio: binary stream: %w", err)
		}
		if ln == 0 || ln > MaxFrameBytes {
			return fmt.Errorf("logio: binary stream: frame length %d out of range, stream desynced", ln)
		}
		need := int(ln) + 4
		buf := *d.payloadP
		if cap(buf) < need {
			buf = make([]byte, need)
			*d.payloadP = buf
		}
		buf = buf[:need]
		if _, err := io.ReadFull(d.r, buf); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				d.frameError(frameErrf("torn frame at EOF (wanted %d bytes)", need))
				return nil
			}
			return fmt.Errorf("logio: binary stream: %w", err)
		}
		payload := buf[:ln]
		if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(buf[ln:]); got != want {
			d.frameError(frameErrf("crc mismatch: got %08x want %08x", got, want))
			continue
		}
		t0 := time.Now()
		recs, err := d.DecodeFrame(payload, fn)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				return err
			}
			d.frameError(err)
		}
		if d.AfterFrame != nil {
			d.AfterFrame(recs, time.Since(t0))
		}
	}
}

func (d *EventDecoder) frameError(err error) {
	d.FramesSkipped++
	if d.OnFrameError != nil {
		d.OnFrameError(err)
	}
}

// DecodeFrame decodes one CRC-verified frame payload, invoking fn per
// record, and returns how many records were delivered. Errors wrapping
// ErrBadFrame mean the rest of the frame is undecodable; any other
// error came from fn. Exported for the fuzzer and for WAL replay.
func (d *EventDecoder) DecodeFrame(payload []byte, fn func(*Event) error) (int, error) {
	recs := 0
	for len(payload) > 0 {
		op := payload[0]
		payload = payload[1:]
		day, n := binary.Varint(payload)
		if n <= 0 {
			return recs, frameErrf("record %d: bad day varint", recs)
		}
		payload = payload[n:]
		switch op {
		case opQuery:
			machine, rest, err := d.readRef(payload, false)
			if err != nil {
				return recs, fmt.Errorf("record %d machine: %w", recs, err)
			}
			domain, rest, err := d.readRef(rest, true)
			if err != nil {
				return recs, fmt.Errorf("record %d domain: %w", recs, err)
			}
			payload = rest
			d.ev = Event{Kind: EventQuery, Day: int(day), Machine: machine, Domain: domain}
		case opResolution:
			domain, rest, err := d.readRef(payload, true)
			if err != nil {
				return recs, fmt.Errorf("record %d domain: %w", recs, err)
			}
			nips, n := binary.Uvarint(rest)
			if n <= 0 {
				return recs, frameErrf("record %d: bad ip count", recs)
			}
			rest = rest[n:]
			if nips > uint64(len(rest))/4 {
				return recs, frameErrf("record %d: ip count %d exceeds frame", recs, nips)
			}
			ips := d.ipAlloc(int(nips))
			for i := range ips {
				ips[i] = dnsutil.IPv4(binary.BigEndian.Uint32(rest[i*4:]))
			}
			payload = rest[int(nips)*4:]
			d.ev = Event{Kind: EventResolution, Day: int(day), Domain: domain, IPs: ips}
		default:
			return recs, frameErrf("record %d: unknown opcode %#02x", recs, op)
		}
		recs++
		if err := fn(&d.ev); err != nil {
			return recs, err
		}
	}
	return recs, nil
}

// readRef decodes one string reference. Domain references are
// normalized (cached per symbol); machine references are taken raw, as
// the text parser does.
func (d *EventDecoder) readRef(b []byte, domain bool) (string, []byte, error) {
	tag, n := binary.Uvarint(b)
	if n <= 0 {
		return "", b, frameErrf("bad ref tag")
	}
	b = b[n:]
	if tag >= refBase {
		id := tag - refBase
		if id >= uint64(len(d.syms)) {
			return "", b, frameErrf("unknown symbol id %d (table has %d)", id, len(d.syms))
		}
		return d.symString(&d.syms[id], domain, b)
	}
	ln, n := binary.Uvarint(b)
	if n <= 0 {
		return "", b, frameErrf("bad ref length")
	}
	b = b[n:]
	if ln > uint64(len(b)) {
		return "", b, frameErrf("ref length %d exceeds frame", ln)
	}
	// The payload buffer is reused frame to frame, so both literal and
	// interned strings are copied out here — interned ones once per
	// symbol for the life of the stream.
	s := string(b[:ln])
	b = b[ln:]
	if tag == refDefine {
		if len(d.syms) >= maxSymbols || d.symBytes+len(s) > maxSymbolBytes {
			return "", b, frameErrf("symbol table overflow at %d entries", len(d.syms))
		}
		d.syms = append(d.syms, symEntry{raw: s})
		d.symBytes += len(s)
		return d.symString(&d.syms[len(d.syms)-1], domain, b)
	}
	if domain {
		norm, err := dnsutil.Normalize(s)
		if err != nil {
			return "", b, frameErrf("bad domain: %v", err)
		}
		return norm, b, nil
	}
	return s, b, nil
}

// symString resolves an interned entry for machine or domain use.
func (d *EventDecoder) symString(e *symEntry, domain bool, rest []byte) (string, []byte, error) {
	if !domain {
		return e.raw, rest, nil
	}
	if !e.domChecked {
		e.dom, e.domErr = dnsutil.Normalize(e.raw)
		e.domChecked = true
	}
	if e.domErr != nil {
		return "", rest, frameErrf("bad domain symbol: %v", e.domErr)
	}
	return e.dom, rest, nil
}

// ReadEventsBinary decodes a binary event stream into fn, mirroring
// ReadEvents for the binary format. Frame-granular failures go to
// onFrameErr (nil to ignore) and are skipped; fn's error aborts and is
// returned verbatim.
func ReadEventsBinary(r io.Reader, fn func(Event) error, onFrameErr func(error)) error {
	d := NewEventDecoder(r)
	defer d.Release()
	d.OnFrameError = onFrameErr
	return d.Run(func(e *Event) error { return fn(*e) })
}
