package logio

import (
	"bytes"
	"io"
	"testing"

	"segugio/internal/dnsutil"
)

// benchFixture builds one reusable event set plus its text and binary
// renderings. The shape mirrors the ingest benchmarks: many machines, a
// domain pool with heavy repetition, ~1-in-7 resolutions.
func benchFixture(n int) (evs []Event, text, bin []byte) {
	evs = make([]Event, 0, n)
	machines := make([]string, 4000)
	for i := range machines {
		machines[i] = "10.1." + string(rune('a'+i%26)) + dnsutil.MakeIPv4(0, 0, byte(i>>8), byte(i)).String()
	}
	domains := make([]string, 15000)
	for i := range domains {
		domains[i] = "host" + dnsutil.MakeIPv4(0, 0, byte(i>>8), byte(i)).String() + ".example.com"
	}
	for i := 0; i < n; i++ {
		if i%7 == 6 {
			evs = append(evs, Event{Kind: EventResolution, Day: 1, Domain: domains[i%len(domains)],
				IPs: []dnsutil.IPv4{dnsutil.MakeIPv4(93, 184, byte(i>>8), byte(i))}})
		} else {
			evs = append(evs, Event{Kind: EventQuery, Day: 1,
				Machine: machines[i%len(machines)], Domain: domains[(i*31)%len(domains)]})
		}
	}
	var tb bytes.Buffer
	for _, e := range evs {
		WriteEvent(&tb, e)
	}
	var bb bytes.Buffer
	enc := NewEventEncoder(&bb)
	for _, e := range evs {
		enc.Encode(e)
	}
	enc.Flush()
	return evs, tb.Bytes(), bb.Bytes()
}

// benchEvents is sized so symbol defines amortize (~2% of records
// define, the rest are integer refs) — matching a long-lived source
// connection, which is what the steady-state numbers gate on. Real ISP
// traffic repeats far more heavily still: popular domains are queried
// by millions of machines.
const benchEvents = 1000000

func BenchmarkParseEventText(b *testing.B) {
	n := benchEvents
	_, text, _ := benchFixture(n)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ReadEvents(bytes.NewReader(text), func(Event) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkDecodeEventsBinary(b *testing.B) {
	n := benchEvents
	_, _, bin := benchFixture(n)
	b.SetBytes(int64(len(bin)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewEventDecoder(bytes.NewReader(bin))
		if err := d.Run(func(*Event) error { return nil }); err != nil {
			b.Fatal(err)
		}
		d.Release()
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkEncodeEventsBinary(b *testing.B) {
	n := benchEvents
	evs, _, bin := benchFixture(n)
	b.SetBytes(int64(len(bin)))
	b.ReportAllocs()
	enc := NewEventEncoder(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset(io.Discard)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkWriteEventText(b *testing.B) {
	n := benchEvents
	evs, text, _ := benchFixture(n)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range evs {
			if err := WriteEvent(io.Discard, e); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
