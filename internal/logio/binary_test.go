package logio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"testing"

	"segugio/internal/dnsutil"
	"segugio/internal/faultinject"
)

// binEvents is a fixture with repeated machines/domains (so interning
// kicks in) and mixed kinds.
func binEvents(n int) []Event {
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		m := fmt.Sprintf("m%d", i%7)
		d := fmt.Sprintf("d%d.example.com", i%11)
		if i%5 == 4 {
			evs = append(evs, Event{Kind: EventResolution, Day: 3 + i/1000, Domain: d,
				IPs: []dnsutil.IPv4{dnsutil.MakeIPv4(10, 0, byte(i%250), 1), dnsutil.MakeIPv4(10, 1, byte(i%250), 2)}})
		} else {
			evs = append(evs, Event{Kind: EventQuery, Day: 3 + i/1000, Machine: m, Domain: d})
		}
	}
	return evs
}

func encodeAll(t testing.TB, evs []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEventEncoder(&buf)
	for _, e := range evs {
		if err := enc.Encode(e); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

func decodeAll(t testing.TB, r io.Reader) ([]Event, int, error) {
	t.Helper()
	var got []Event
	errs := 0
	err := ReadEventsBinary(r, func(e Event) error {
		// Deep-copy IPs: the arena is safe, but the test wants
		// independence from the decoder entirely.
		e.IPs = append([]dnsutil.IPv4(nil), e.IPs...)
		got = append(got, e)
		return nil
	}, func(error) { errs++ })
	return got, errs, err
}

func TestBinaryRoundTrip(t *testing.T) {
	want := binEvents(5000) // spans multiple frames and two day values
	wire := encodeAll(t, want)
	got, errs, err := decodeAll(t, bytes.NewReader(wire))
	if err != nil || errs != 0 {
		t.Fatalf("decode: err=%v frameErrs=%d", err, errs)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Day != want[i].Day ||
			got[i].Machine != want[i].Machine || got[i].Domain != want[i].Domain ||
			len(got[i].IPs) != len(want[i].IPs) {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
		for j := range want[i].IPs {
			if got[i].IPs[j] != want[i].IPs[j] {
				t.Fatalf("event %d ip %d = %v, want %v", i, j, got[i].IPs[j], want[i].IPs[j])
			}
		}
	}
	// Interning must actually compress: the text rendering is much
	// bigger than the symbol-table wire form.
	var text bytes.Buffer
	for _, e := range want {
		WriteEvent(&text, e)
	}
	if len(wire) >= text.Len() {
		t.Fatalf("binary %d bytes >= text %d bytes: interning is not working", len(wire), text.Len())
	}
}

func TestBinaryRoundTripShortReads(t *testing.T) {
	want := binEvents(300)
	wire := encodeAll(t, want)
	got, errs, err := decodeAll(t, &faultinject.ShortReader{R: bytes.NewReader(wire)})
	if err != nil || errs != 0 {
		t.Fatalf("decode: err=%v frameErrs=%d", err, errs)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	if got, errs, err := decodeAll(t, bytes.NewReader(nil)); err != nil || errs != 0 || len(got) != 0 {
		t.Fatalf("empty stream: got=%d errs=%d err=%v", len(got), errs, err)
	}
}

// twoFrameWire encodes two frames whose second frame only defines fresh
// symbols (never references earlier ids), so corrupting frame one must
// not poison frame two.
func twoFrameWire(t *testing.T) (wire []byte, frame1Events, frame2Events int) {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEventEncoder(&buf)
	a := []Event{
		{Kind: EventQuery, Day: 1, Machine: "mA", Domain: "a.example.com"},
		{Kind: EventQuery, Day: 1, Machine: "mA", Domain: "a.example.com"},
	}
	for _, e := range a {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	b := []Event{
		{Kind: EventQuery, Day: 1, Machine: "mB", Domain: "b.example.com"},
		{Kind: EventResolution, Day: 1, Domain: "c.example.com", IPs: []dnsutil.IPv4{dnsutil.MakeIPv4(10, 0, 0, 9)}},
	}
	for _, e := range b {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), len(a), len(b)
}

func TestBinaryBadCRCSkipsFrame(t *testing.T) {
	wire, _, n2 := twoFrameWire(t)
	// Corrupt one payload byte of the first frame (after magic +
	// 1-byte length varint; frames here are tiny).
	corrupted := append([]byte(nil), wire...)
	corrupted[len(BinaryMagic)+3] ^= 0xff
	got, errs, err := decodeAll(t, bytes.NewReader(corrupted))
	if err != nil {
		t.Fatalf("decode aborted: %v", err)
	}
	if errs != 1 {
		t.Fatalf("frame errors = %d, want 1", errs)
	}
	if len(got) != n2 {
		t.Fatalf("decoded %d events, want the %d from the intact frame", len(got), n2)
	}
	if got[0].Machine != "mB" {
		t.Fatalf("surviving event = %+v, want frame-two's", got[0])
	}
}

func TestBinaryTornTail(t *testing.T) {
	want := binEvents(200)
	wire := encodeAll(t, want)
	for _, cut := range []int{1, 3, 17} {
		got, errs, err := decodeAll(t, bytes.NewReader(wire[:len(wire)-cut]))
		if err != nil {
			t.Fatalf("cut %d: torn tail must end cleanly, got %v", cut, err)
		}
		if errs != 1 {
			t.Fatalf("cut %d: frame errors = %d, want 1", cut, errs)
		}
		if len(got) >= len(want) {
			t.Fatalf("cut %d: decoded %d of %d events despite torn tail", cut, len(got), len(want))
		}
	}
}

func TestBinaryFlakyReaderAborts(t *testing.T) {
	wire := encodeAll(t, binEvents(2000))
	_, _, err := decodeAll(t, &faultinject.FlakyReader{R: bytes.NewReader(wire), FailAfter: int64(len(wire) / 2)})
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("mid-stream I/O error must abort with the cause, got %v", err)
	}
}

// rawFrame wraps a hand-built payload in valid framing (magic + length
// + CRC) so decode tests can target record-level corruption.
func rawFrame(payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(BinaryMagic)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	buf.Write(lenBuf[:n])
	buf.Write(payload)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	buf.Write(crcBuf[:])
	return buf.Bytes()
}

func TestBinaryMalformedRecords(t *testing.T) {
	cases := map[string][]byte{
		"unknown opcode": {0x7f, 0x02},
		"bad day varint": {opQuery, 0x80},
		"unknown symbol": append([]byte{opQuery, 0x02},
			// machine = symbol id 40 (tag 42) that was never defined
			42, 42),
		"ref length past frame": {opQuery, 0x02, 0x00, 0x7f, 'x'},
		"ip count past frame": append([]byte{opResolution, 0x02},
			// domain literal "a.co", then claims 100 ips with 0 bytes left
			0x00, 0x04, 'a', '.', 'c', 'o', 100),
		"bad domain literal": {opQuery, 0x02, 0x00, 0x01, 'm', 0x00, 0x03, '!', '!', '!'},
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			got, errs, err := decodeAll(t, bytes.NewReader(rawFrame(payload)))
			if err != nil {
				t.Fatalf("record-level damage must not abort the stream: %v", err)
			}
			if errs != 1 {
				t.Fatalf("frame errors = %d, want 1", errs)
			}
			if len(got) != 0 {
				t.Fatalf("decoded %d events from a malformed frame", len(got))
			}
		})
	}
}

func TestBinaryDesyncAborts(t *testing.T) {
	// A frame length past MaxFrameBytes means record boundaries are
	// untrustworthy: the stream must abort, not skip.
	var buf bytes.Buffer
	buf.WriteString(BinaryMagic)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(MaxFrameBytes)+1)
	buf.Write(lenBuf[:n])
	buf.Write(make([]byte, 64))
	if _, _, err := decodeAll(t, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("oversized frame length must abort the stream")
	}
	if _, _, err := decodeAll(t, strings.NewReader("not a binary stream at all")); err == nil {
		t.Fatal("bad magic must abort the stream")
	}
}

func TestBinaryEncoderReset(t *testing.T) {
	// Reset must produce self-contained streams: the second use may not
	// lean on symbols defined during the first (the WAL's per-record
	// invariant).
	e := Event{Kind: EventQuery, Day: 2, Machine: "m1", Domain: "a.example.com"}
	var first bytes.Buffer
	enc := NewEventEncoder(&first)
	if err := enc.Encode(e); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	enc.Reset(&second)
	if err := enc.Encode(e); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("post-Reset encoding differs: a record stream leaned on prior state")
	}
	got, errs, err := decodeAll(t, bytes.NewReader(second.Bytes()))
	if err != nil || errs != 0 || len(got) != 1 || got[0].Machine != "m1" {
		t.Fatalf("post-Reset stream decode: got=%+v errs=%d err=%v", got, errs, err)
	}
}

func TestBinaryLiteralFallbackPastSymbolCap(t *testing.T) {
	// Exhaust the symbol-count cap with distinct strings (each event
	// defines a machine and a domain), then verify strings past the cap
	// still round-trip — as literals.
	var buf bytes.Buffer
	enc := NewEventEncoder(&buf)
	events := make([]Event, 0, maxSymbols/2+3)
	for i := 0; i < maxSymbols/2+1; i++ {
		events = append(events, Event{Kind: EventQuery, Day: 1,
			Machine: fmt.Sprintf("mach-%d", i), Domain: fmt.Sprintf("d%d.example.com", i)})
	}
	events = append(events,
		Event{Kind: EventQuery, Day: 1, Machine: "m-after-cap", Domain: "b.example.com"},
		Event{Kind: EventQuery, Day: 1, Machine: "m-after-cap", Domain: "b.example.com"})
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	got, errs, err := decodeAll(t, bytes.NewReader(buf.Bytes()))
	if err != nil || errs != 0 {
		t.Fatalf("decode: err=%v frameErrs=%d", err, errs)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i, e := range events {
		if got[i].Machine != e.Machine || got[i].Domain != e.Domain {
			t.Fatalf("event %d mismatch after symbol-cap fallback", i)
		}
	}
}

func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{opQuery, 0x02, 0x01, 0x02, 'm', '1', 0x01, 0x05, 'a', '.', 'c', 'o', 'm'})
	f.Add([]byte{opResolution, 0x02, 0x00, 0x04, 'a', '.', 'c', 'o', 0x01, 10, 0, 0, 1})
	wire := encodeAll(f, binEvents(64))
	f.Add(wire[len(BinaryMagic)+2:]) // roughly a real payload
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		d := NewEventDecoder(bytes.NewReader(nil))
		defer d.Release()
		// Must never panic or hang; errors are fine.
		d.DecodeFrame(payload, func(e *Event) error {
			if e.Kind != EventQuery && e.Kind != EventResolution {
				t.Fatalf("decoded impossible kind %d", e.Kind)
			}
			return nil
		})
	})
}

func FuzzDecodeStream(f *testing.F) {
	f.Add(encodeAll(f, binEvents(32)))
	f.Add([]byte(BinaryMagic))
	f.Add([]byte("q\t1\tm\ta.com\n"))
	f.Fuzz(func(t *testing.T, stream []byte) {
		d := NewEventDecoder(bytes.NewReader(stream))
		defer d.Release()
		d.Run(func(*Event) error { return nil })
	})
}
