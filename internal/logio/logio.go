// Package logio defines the plain-text file formats the segugio CLI
// exchanges with the outside world, with streaming readers and writers:
//
//	query log     machine<TAB>domain
//	resolutions   domain<TAB>ip[,ip...]
//	blacklist     domain<TAB>family<TAB>firstListedDay
//	whitelist     e2ld
//	passive DNS   day<TAB>domain<TAB>ip
//	activity      day<TAB>domain
//	event stream  q<TAB>day<TAB>machine<TAB>domain
//	              r<TAB>day<TAB>domain<TAB>ip[,ip...]
//
// The event stream interleaves the query and resolution records with a
// day stamp; it is what segugiod ingests live (stdin, tailed file, or TCP
// connection).
//
// Lines starting with '#' and blank lines are ignored everywhere. All
// readers validate domain syntax via dnsutil.Normalize so malformed input
// fails loudly at the boundary instead of corrupting graphs, and every
// error — including scanner-level failures such as an over-long line — is
// reported with the 1-based line number it occurred on.
package logio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/intel"
	"segugio/internal/pdns"
)

// lineBufPool recycles line-assembly buffers for the writers: each line
// is built with appends into one pooled buffer and written in a single
// w.Write call, so the writers allocate nothing in steady state.
var lineBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// writeLine assembles one line via build (which appends the line body,
// without the trailing newline, to the buffer it is handed) and writes
// it with the newline in one call.
func writeLine(w io.Writer, build func(b []byte) []byte) error {
	bp := lineBufPool.Get().(*[]byte)
	b := build((*bp)[:0])
	b = append(b, '\n')
	_, err := w.Write(b)
	*bp = b[:0]
	lineBufPool.Put(bp)
	return err
}

// appendIPList appends a comma-separated dotted-quad list to b.
func appendIPList(b []byte, ips []dnsutil.IPv4) []byte {
	for i, ip := range ips {
		if i > 0 {
			b = append(b, ',')
		}
		b = ip.Append(b)
	}
	return b
}

// MaxLineBytes bounds a single input line; DNS names cap at 253 bytes but
// resolution lines carry many addresses. Exported so consumers that frame
// lines themselves (the ingest tailer) enforce the same cap.
const MaxLineBytes = 1 << 20

// scanLines iterates non-comment lines, reporting 1-based line numbers.
// Scanner-level failures (for example a line exceeding MaxLineBytes) are
// wrapped with the line number they occurred on, so no reader ever
// silently truncates its input.
func scanLines(r io.Reader, fn func(lineNo int, line string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := fn(lineNo, line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("logio: line %d: %w", lineNo+1, err)
	}
	return nil
}

// ReadQueryLog streams (machine, domain) pairs into fn.
func ReadQueryLog(r io.Reader, fn func(machine, domain string)) error {
	return scanLines(r, func(lineNo int, line string) error {
		machine, rest, ok := strings.Cut(line, "\t")
		if !ok || machine == "" {
			return fmt.Errorf("logio: query log line %d: want machine<TAB>domain", lineNo)
		}
		domain, err := dnsutil.Normalize(rest)
		if err != nil {
			return fmt.Errorf("logio: query log line %d: %w", lineNo, err)
		}
		fn(machine, domain)
		return nil
	})
}

// WriteQuery writes one query-log line.
func WriteQuery(w io.Writer, machine, domain string) error {
	return writeLine(w, func(b []byte) []byte {
		b = append(b, machine...)
		b = append(b, '\t')
		return append(b, domain...)
	})
}

// ReadResolutions streams (domain, ips) records into fn.
func ReadResolutions(r io.Reader, fn func(domain string, ips []dnsutil.IPv4)) error {
	return scanLines(r, func(lineNo int, line string) error {
		name, rest, ok := strings.Cut(line, "\t")
		if !ok {
			return fmt.Errorf("logio: resolutions line %d: want domain<TAB>ip[,ip...]", lineNo)
		}
		domain, err := dnsutil.Normalize(name)
		if err != nil {
			return fmt.Errorf("logio: resolutions line %d: %w", lineNo, err)
		}
		ips, err := parseIPList(rest)
		if err != nil {
			return fmt.Errorf("logio: resolutions line %d: %w", lineNo, err)
		}
		fn(domain, ips)
		return nil
	})
}

// parseIPList parses a comma-separated IPv4 list.
func parseIPList(s string) ([]dnsutil.IPv4, error) {
	parts := strings.Split(s, ",")
	ips := make([]dnsutil.IPv4, 0, len(parts))
	for _, p := range parts {
		ip, err := dnsutil.ParseIPv4(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		ips = append(ips, ip)
	}
	return ips, nil
}

// WriteResolution writes one resolutions line.
func WriteResolution(w io.Writer, domain string, ips []dnsutil.IPv4) error {
	return writeLine(w, func(b []byte) []byte {
		b = append(b, domain...)
		b = append(b, '\t')
		return appendIPList(b, ips)
	})
}

// ReadBlacklist parses a blacklist file. The family and first-listed-day
// fields are optional (missing day means 0, i.e. "always known").
func ReadBlacklist(r io.Reader) (*intel.Blacklist, error) {
	bl := intel.NewBlacklist()
	err := scanLines(r, func(lineNo int, line string) error {
		fields := strings.Split(line, "\t")
		domain, err := dnsutil.Normalize(fields[0])
		if err != nil {
			return fmt.Errorf("logio: blacklist line %d: %w", lineNo, err)
		}
		e := intel.BlacklistEntry{Domain: domain}
		if len(fields) > 1 {
			e.Family = fields[1]
		}
		if len(fields) > 2 && fields[2] != "" {
			day, err := strconv.Atoi(fields[2])
			if err != nil {
				return fmt.Errorf("logio: blacklist line %d: bad day %q", lineNo, fields[2])
			}
			e.FirstListed = day
		}
		bl.Add(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return bl, nil
}

// WriteBlacklist writes every entry of a blacklist.
func WriteBlacklist(w io.Writer, bl *intel.Blacklist) error {
	for _, d := range bl.Domains() {
		e, _ := bl.Entry(d)
		err := writeLine(w, func(b []byte) []byte {
			b = append(b, e.Domain...)
			b = append(b, '\t')
			b = append(b, e.Family...)
			b = append(b, '\t')
			return strconv.AppendInt(b, int64(e.FirstListed), 10)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadWhitelist parses a whitelist file (one e2LD per line).
func ReadWhitelist(r io.Reader) (*intel.Whitelist, error) {
	var e2lds []string
	err := scanLines(r, func(lineNo int, line string) error {
		d, err := dnsutil.Normalize(line)
		if err != nil {
			return fmt.Errorf("logio: whitelist line %d: %w", lineNo, err)
		}
		e2lds = append(e2lds, d)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return intel.NewWhitelist(e2lds), nil
}

// WriteWhitelist writes every e2LD of a whitelist.
func WriteWhitelist(w io.Writer, wl *intel.Whitelist) error {
	for _, d := range wl.E2LDs() {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// ReadActivity streams day<TAB>domain activity marks into the log,
// tracking e2LDs via the suffix list. The activity file carries the
// per-day query-log digest the F2 features are measured against; it is
// finer-grained than the passive-DNS snapshots.
func ReadActivity(r io.Reader, log *activity.Log, suffixes *dnsutil.SuffixList) error {
	e2ldCache := make(map[string]string)
	return scanLines(r, func(lineNo int, line string) error {
		dayStr, rest, ok := strings.Cut(line, "\t")
		if !ok {
			return fmt.Errorf("logio: activity line %d: want day<TAB>domain", lineNo)
		}
		day, err := strconv.Atoi(dayStr)
		if err != nil {
			return fmt.Errorf("logio: activity line %d: bad day %q", lineNo, dayStr)
		}
		domain, err := dnsutil.Normalize(rest)
		if err != nil {
			return fmt.Errorf("logio: activity line %d: %w", lineNo, err)
		}
		log.MarkDomain(day, domain)
		e2ld, cached := e2ldCache[domain]
		if !cached {
			e2ld = suffixes.E2LD(domain)
			e2ldCache[domain] = e2ld
		}
		log.MarkE2LD(day, e2ld)
		return nil
	})
}

// WriteActivityMark writes one activity line.
func WriteActivityMark(w io.Writer, day int, domain string) error {
	return writeLine(w, func(b []byte) []byte {
		b = strconv.AppendInt(b, int64(day), 10)
		b = append(b, '\t')
		return append(b, domain...)
	})
}

// ReadPDNS streams passive-DNS records into a database.
func ReadPDNS(r io.Reader, db *pdns.DB) error {
	return scanLines(r, func(lineNo int, line string) error {
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return fmt.Errorf("logio: pdns line %d: want day<TAB>domain<TAB>ip", lineNo)
		}
		day, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("logio: pdns line %d: bad day %q", lineNo, fields[0])
		}
		domain, err := dnsutil.Normalize(fields[1])
		if err != nil {
			return fmt.Errorf("logio: pdns line %d: %w", lineNo, err)
		}
		ip, err := dnsutil.ParseIPv4(fields[2])
		if err != nil {
			return fmt.Errorf("logio: pdns line %d: %w", lineNo, err)
		}
		db.Add(day, domain, ip)
		return nil
	})
}

// WritePDNSRecord writes one passive-DNS line.
func WritePDNSRecord(w io.Writer, day int, domain string, ip dnsutil.IPv4) error {
	return writeLine(w, func(b []byte) []byte {
		b = strconv.AppendInt(b, int64(day), 10)
		b = append(b, '\t')
		b = append(b, domain...)
		b = append(b, '\t')
		return ip.Append(b)
	})
}

// EventKind distinguishes the two record kinds of the live event stream.
type EventKind uint8

// EventKind values.
const (
	// EventQuery is one observed (machine queried domain) pair.
	EventQuery EventKind = iota + 1
	// EventResolution is one observed domain->address resolution.
	EventResolution
)

// Event is one record of the live DNS event stream segugiod ingests.
type Event struct {
	Kind EventKind
	// Day is the observation day the event belongs to; segugiod rotates
	// its behavior-graph epoch when it advances.
	Day int
	// Machine is set for EventQuery.
	Machine string
	Domain  string
	// IPs is set for EventResolution.
	IPs []dnsutil.IPv4
}

// ReadEvents streams event records into fn until EOF, a malformed line,
// or a non-nil error from fn (which is returned verbatim, so consumers
// can abort on shutdown). Format:
//
//	q<TAB>day<TAB>machine<TAB>domain
//	r<TAB>day<TAB>domain<TAB>ip[,ip...]
func ReadEvents(r io.Reader, fn func(Event) error) error {
	return ReadEventsObserved(r, fn, nil)
}

// ParseSampleEvery is the parse-metering sampling interval: with a
// non-nil observe callback, ReadEventsObserved times 1 line in every
// ParseSampleEvery and books the measurement for the whole group it
// covers, so the observability seam costs two time.Now() calls per
// group instead of per line.
const ParseSampleEvery = 32

// ReadEventsObserved is ReadEvents plus a sampled parse-time callback:
// observe (when non-nil) receives a representative per-line parse
// duration d together with the number of successfully parsed lines it
// stands for. The first line is always timed (seeding the estimate),
// then 1 in every ParseSampleEvery; at EOF the remaining untimed lines
// are flushed with the last measurement, so the line counts delivered
// through observe are exact. A nil observe skips the timing entirely,
// so the default path pays nothing.
func ReadEventsObserved(r io.Reader, fn func(Event) error, observe func(d time.Duration, lines int)) error {
	if observe == nil {
		return scanLines(r, func(lineNo int, line string) error {
			e, err := ParseEvent(line)
			if err != nil {
				return fmt.Errorf("logio: event line %d: %w", lineNo, err)
			}
			return fn(e)
		})
	}
	var (
		lastD   time.Duration
		haveD   bool
		pending int
	)
	err := scanLines(r, func(lineNo int, line string) error {
		pending++
		sample := !haveD || pending >= ParseSampleEvery
		var t0 time.Time
		if sample {
			t0 = time.Now()
		}
		e, perr := ParseEvent(line)
		if sample {
			lastD = time.Since(t0)
			haveD = true
		}
		if perr != nil {
			// The malformed line aborts the stream and is not booked as
			// a parsed line; earlier untimed lines flush below.
			pending--
			return fmt.Errorf("logio: event line %d: %w", lineNo, perr)
		}
		if sample {
			observe(lastD, pending)
			pending = 0
		}
		return fn(e)
	})
	if pending > 0 && haveD {
		observe(lastD, pending)
	}
	return err
}

// ParseEvent parses one event-stream line (already stripped of its
// newline, leading/trailing space, and comment filtering). Exported for
// consumers that frame lines themselves — the ingest tailer skips
// malformed lines instead of aborting, so it needs per-line parsing.
func ParseEvent(line string) (Event, error) {
	kind, rest, ok := strings.Cut(line, "\t")
	if !ok {
		return Event{}, fmt.Errorf("want q|r<TAB>day<TAB>...")
	}
	dayStr, rest, ok := strings.Cut(rest, "\t")
	if !ok {
		return Event{}, fmt.Errorf("want q|r<TAB>day<TAB>...")
	}
	day, err := strconv.Atoi(dayStr)
	if err != nil {
		return Event{}, fmt.Errorf("bad day %q", dayStr)
	}
	switch kind {
	case "q":
		machine, rest, ok := strings.Cut(rest, "\t")
		if !ok || machine == "" {
			return Event{}, fmt.Errorf("want q<TAB>day<TAB>machine<TAB>domain")
		}
		domain, err := dnsutil.Normalize(rest)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: EventQuery, Day: day, Machine: machine, Domain: domain}, nil
	case "r":
		name, rest, ok := strings.Cut(rest, "\t")
		if !ok {
			return Event{}, fmt.Errorf("want r<TAB>day<TAB>domain<TAB>ip[,ip...]")
		}
		domain, err := dnsutil.Normalize(name)
		if err != nil {
			return Event{}, err
		}
		ips, err := parseIPList(rest)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: EventResolution, Day: day, Domain: domain, IPs: ips}, nil
	default:
		return Event{}, fmt.Errorf("unknown kind %q (want q or r)", kind)
	}
}

// WriteEvent writes one event-stream line.
func WriteEvent(w io.Writer, e Event) error {
	switch e.Kind {
	case EventQuery:
		return writeLine(w, func(b []byte) []byte {
			b = append(b, 'q', '\t')
			b = strconv.AppendInt(b, int64(e.Day), 10)
			b = append(b, '\t')
			b = append(b, e.Machine...)
			b = append(b, '\t')
			return append(b, e.Domain...)
		})
	case EventResolution:
		return writeLine(w, func(b []byte) []byte {
			b = append(b, 'r', '\t')
			b = strconv.AppendInt(b, int64(e.Day), 10)
			b = append(b, '\t')
			b = append(b, e.Domain...)
			b = append(b, '\t')
			return appendIPList(b, e.IPs)
		})
	default:
		return fmt.Errorf("logio: unknown event kind %d", e.Kind)
	}
}
