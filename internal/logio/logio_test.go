package logio

import (
	"bytes"
	"strings"
	"testing"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/intel"
	"segugio/internal/pdns"
)

func TestQueryLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteQuery(&buf, "m1", "a.example.com"); err != nil {
		t.Fatal(err)
	}
	if err := WriteQuery(&buf, "m2", "B.Example.COM"); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("# comment\n\n")

	var got [][2]string
	if err := ReadQueryLog(&buf, func(m, d string) { got = append(got, [2]string{m, d}) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d queries, want 2", len(got))
	}
	if got[0] != [2]string{"m1", "a.example.com"} {
		t.Fatalf("first = %v", got[0])
	}
	if got[1][1] != "b.example.com" {
		t.Fatalf("domain not normalized: %v", got[1])
	}
}

func TestReadQueryLogErrors(t *testing.T) {
	tests := []struct {
		name, input string
	}{
		{"no tab", "machineonly\n"},
		{"empty machine", "\tdomain.com\n"},
		{"bad domain", "m1\tnot a domain!\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := ReadQueryLog(strings.NewReader(tt.input), func(string, string) {})
			if err == nil {
				t.Fatalf("input %q must fail", tt.input)
			}
			if !strings.Contains(err.Error(), "line 1") {
				t.Fatalf("error should carry the line number: %v", err)
			}
		})
	}
}

func TestResolutionsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := []dnsutil.IPv4{dnsutil.MakeIPv4(1, 2, 3, 4), dnsutil.MakeIPv4(5, 6, 7, 8)}
	if err := WriteResolution(&buf, "a.com", want); err != nil {
		t.Fatal(err)
	}
	var gotDomain string
	var gotIPs []dnsutil.IPv4
	if err := ReadResolutions(&buf, func(d string, ips []dnsutil.IPv4) {
		gotDomain, gotIPs = d, ips
	}); err != nil {
		t.Fatal(err)
	}
	if gotDomain != "a.com" || len(gotIPs) != 2 || gotIPs[0] != want[0] || gotIPs[1] != want[1] {
		t.Fatalf("got %s %v", gotDomain, gotIPs)
	}

	if err := ReadResolutions(strings.NewReader("a.com\t1.2.3.999\n"), func(string, []dnsutil.IPv4) {}); err == nil {
		t.Fatal("bad IP must fail")
	}
	if err := ReadResolutions(strings.NewReader("notab\n"), func(string, []dnsutil.IPv4) {}); err == nil {
		t.Fatal("missing tab must fail")
	}
}

func TestBlacklistRoundTrip(t *testing.T) {
	bl := intel.NewBlacklist()
	bl.Add(intel.BlacklistEntry{Domain: "c2.evil.com", Family: "zeus", FirstListed: 42})
	bl.Add(intel.BlacklistEntry{Domain: "other.net"})

	var buf bytes.Buffer
	if err := WriteBlacklist(&buf, bl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlacklist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d, want 2", got.Len())
	}
	e, ok := got.Entry("c2.evil.com")
	if !ok || e.Family != "zeus" || e.FirstListed != 42 {
		t.Fatalf("entry = %+v", e)
	}

	// Optional fields.
	short, err := ReadBlacklist(strings.NewReader("only.domain.com\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !short.Contains("only.domain.com", 0) {
		t.Fatal("bare domain line must parse with FirstListed 0")
	}
	if _, err := ReadBlacklist(strings.NewReader("a.com\tfam\tnotaday\n")); err == nil {
		t.Fatal("bad day must fail")
	}
}

func TestWhitelistRoundTrip(t *testing.T) {
	wl := intel.NewWhitelist([]string{"example.com", "bbc.co.uk"})
	var buf bytes.Buffer
	if err := WriteWhitelist(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWhitelist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !got.ContainsE2LD("bbc.co.uk") {
		t.Fatalf("whitelist = %v", got.E2LDs())
	}
	if _, err := ReadWhitelist(strings.NewReader("bad domain!\n")); err == nil {
		t.Fatal("bad domain must fail")
	}
}

func TestPDNSRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePDNSRecord(&buf, 10, "a.com", dnsutil.MakeIPv4(9, 9, 9, 9)); err != nil {
		t.Fatal(err)
	}
	db := pdns.NewDB()
	if err := ReadPDNS(&buf, db); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	ips := db.IPs("a.com", 0, 20)
	if len(ips) != 1 || ips[0] != dnsutil.MakeIPv4(9, 9, 9, 9) {
		t.Fatalf("ips = %v", ips)
	}

	for _, bad := range []string{"x\ty\tz\n", "1\ta.com\n", "1\tbad domain\t1.1.1.1\n", "1\ta.com\tnope\n"} {
		if err := ReadPDNS(strings.NewReader(bad), pdns.NewDB()); err == nil {
			t.Fatalf("input %q must fail", bad)
		}
	}
}

func TestActivityRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for d := 5; d <= 7; d++ {
		if err := WriteActivityMark(&buf, d, "www.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	log := activity.NewLog()
	if err := ReadActivity(&buf, log, dnsutil.DefaultSuffixList()); err != nil {
		t.Fatal(err)
	}
	if got := log.DomainActiveDays("www.example.com", 0, 10); got != 3 {
		t.Fatalf("active days = %d, want 3", got)
	}
	if got := log.DomainStreak("www.example.com", 7); got != 3 {
		t.Fatalf("streak = %d, want 3", got)
	}
	if got := log.E2LDActiveDays("example.com", 0, 10); got != 3 {
		t.Fatalf("e2LD active days = %d, want 3", got)
	}

	for _, bad := range []string{"notaday\ta.com\n", "1\tbad domain\n", "justone\n"} {
		if err := ReadActivity(strings.NewReader(bad), activity.NewLog(), dnsutil.DefaultSuffixList()); err == nil {
			t.Fatalf("input %q must fail", bad)
		}
	}
}
