package logio

import (
	"strings"
	"testing"

	"segugio/internal/activity"
	"segugio/internal/dnsutil"
	"segugio/internal/pdns"
)

// Every streaming reader must handle empty, malformed, and truncated
// input by returning a line-numbered error — never panicking, never
// silently dropping or truncating records.

// readers drives each reader over an arbitrary string input.
var readers = map[string]func(s string) error{
	"querylog": func(s string) error {
		return ReadQueryLog(strings.NewReader(s), func(machine, domain string) {})
	},
	"resolutions": func(s string) error {
		return ReadResolutions(strings.NewReader(s), func(domain string, ips []dnsutil.IPv4) {})
	},
	"blacklist": func(s string) error {
		_, err := ReadBlacklist(strings.NewReader(s))
		return err
	},
	"whitelist": func(s string) error {
		_, err := ReadWhitelist(strings.NewReader(s))
		return err
	},
	"activity": func(s string) error {
		return ReadActivity(strings.NewReader(s), activity.NewLog(), dnsutil.DefaultSuffixList())
	},
	"pdns": func(s string) error {
		return ReadPDNS(strings.NewReader(s), pdns.NewDB())
	},
	"events": func(s string) error {
		return ReadEvents(strings.NewReader(s), func(Event) error { return nil })
	},
}

func TestReadersEmptyInput(t *testing.T) {
	for name, read := range readers {
		for _, input := range []string{"", "\n\n", "# only a comment\n", "   \n\t\n"} {
			if err := read(input); err != nil {
				t.Errorf("%s: empty-ish input %q: unexpected error %v", name, input, err)
			}
		}
	}
}

func TestReadersMalformedInput(t *testing.T) {
	malformed := map[string][]string{
		"querylog": {
			"no-tab-here",
			"\texample.com",              // empty machine
			"m1\tnot a domain!!",         // invalid domain
			"# ok\nm1\texample.com\nbad", // fails on line 3
		},
		"resolutions": {
			"no-tab-here",
			"example.com\tnot-an-ip",
			"example.com\t1.2.3.4,999.1.1.1",
			"not a domain\t1.2.3.4",
		},
		"blacklist": {
			"not a domain!!",
			"evil.com\tfam\tnot-a-day",
		},
		"whitelist": {
			"not a domain!!",
		},
		"activity": {
			"17", // missing domain
			"notaday\texample.com",
			"17\tnot a domain!!",
		},
		"pdns": {
			"17\texample.com", // missing ip
			"notaday\texample.com\t1.2.3.4",
			"17\texample.com\tnot-an-ip",
			"17\tnot a domain\t1.2.3.4",
		},
		"events": {
			"x\t17\tm1\texample.com", // unknown kind
			"q\tnotaday\tm1\texample.com",
			"q\t17",                // truncated record
			"q\t17\t\texample.com", // empty machine
			"q\t17\tm1\tnot a domain!!",
			"r\t17", // truncated record
			"r\t17\texample.com\tnot-an-ip",
			"r\t17\tnot a domain\t1.2.3.4",
			"justnoise",
		},
	}
	for name, inputs := range malformed {
		read := readers[name]
		for _, input := range inputs {
			err := read(input)
			if err == nil {
				t.Errorf("%s: malformed input %q: expected error", name, input)
				continue
			}
			if !strings.Contains(err.Error(), "line") {
				t.Errorf("%s: error for %q is not line-numbered: %v", name, input, err)
			}
		}
	}
}

// TestReadersFailOnCorrectLine checks the reported line number points at
// the offending line, counting comments and blanks.
func TestReadersFailOnCorrectLine(t *testing.T) {
	input := "# header\n\nm1\texample.com\nBROKEN-NO-TAB\n"
	err := ReadQueryLog(strings.NewReader(input), func(machine, domain string) {})
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want line 4 in error, got %v", err)
	}
}

// TestReadersOverlongLine checks that a line exceeding the scanner buffer
// surfaces as a line-numbered error instead of silent truncation.
func TestReadersOverlongLine(t *testing.T) {
	long := "m1\t" + strings.Repeat("a", MaxLineBytes+10) + ".com\n"
	input := "m0\texample.com\n" + long
	err := ReadQueryLog(strings.NewReader(input), func(machine, domain string) {})
	if err == nil {
		t.Fatal("overlong line must fail")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line 2 in error, got %v", err)
	}
}

// TestReadersTruncatedFinalLine: a final line cut off mid-record (no
// trailing newline) must still either parse or error — a record missing
// its required fields errors.
func TestReadersTruncatedFinalLine(t *testing.T) {
	// Query log line chopped after the machine field.
	if err := ReadQueryLog(strings.NewReader("m1\texample.com\nm2"), func(string, string) {}); err == nil {
		t.Fatal("truncated final query line must fail")
	}
	// Event stream chopped mid-record.
	if err := ReadEvents(strings.NewReader("q\t17\tm1\texample.com\nr\t17"), func(Event) error { return nil }); err == nil {
		t.Fatal("truncated final event must fail")
	}
	// A complete final line without a newline parses fine.
	n := 0
	if err := ReadQueryLog(strings.NewReader("m1\texample.com"), func(string, string) { n++ }); err != nil || n != 1 {
		t.Fatalf("final line without newline: n=%d err=%v", n, err)
	}
}

func TestEventRoundTrip(t *testing.T) {
	var b strings.Builder
	events := []Event{
		{Kind: EventQuery, Day: 17, Machine: "m1", Domain: "a.example.com"},
		{Kind: EventResolution, Day: 17, Domain: "a.example.com",
			IPs: []dnsutil.IPv4{dnsutil.MakeIPv4(10, 0, 0, 1), dnsutil.MakeIPv4(10, 0, 0, 2)}},
		{Kind: EventQuery, Day: 18, Machine: "m2", Domain: "b.example.org"},
	}
	for _, e := range events {
		if err := WriteEvent(&b, e); err != nil {
			t.Fatal(err)
		}
	}
	var got []Event
	if err := ReadEvents(strings.NewReader(b.String()), func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i, e := range events {
		g := got[i]
		if g.Kind != e.Kind || g.Day != e.Day || g.Machine != e.Machine || g.Domain != e.Domain || len(g.IPs) != len(e.IPs) {
			t.Fatalf("event %d: %+v != %+v", i, g, e)
		}
	}
	if err := WriteEvent(&b, Event{Kind: 99}); err == nil {
		t.Fatal("unknown kind must fail to write")
	}
}

// TestReadEventsConsumerAbort checks fn's error is propagated verbatim so
// the ingester can stop mid-stream on shutdown.
func TestReadEventsConsumerAbort(t *testing.T) {
	input := "q\t17\tm1\ta.example.com\nq\t17\tm2\tb.example.com\n"
	seen := 0
	err := ReadEvents(strings.NewReader(input), func(Event) error {
		seen++
		return errStop
	})
	if err != errStop || seen != 1 {
		t.Fatalf("seen=%d err=%v", seen, err)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }
