package logio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"segugio/internal/dnsutil"
	"segugio/internal/intel"
)

// TestWritersGoldenFormat pins the text wire format byte-for-byte: the
// buffered writers must emit exactly what the old fmt.Fprintf code did.
func TestWritersGoldenFormat(t *testing.T) {
	ips := []dnsutil.IPv4{dnsutil.MakeIPv4(10, 0, 0, 1), dnsutil.MakeIPv4(192, 168, 200, 254)}
	var got bytes.Buffer
	if err := WriteQuery(&got, "m1", "a.example.com"); err != nil {
		t.Fatal(err)
	}
	if err := WriteResolution(&got, "a.example.com", ips); err != nil {
		t.Fatal(err)
	}
	if err := WriteActivityMark(&got, 17, "a.example.com"); err != nil {
		t.Fatal(err)
	}
	if err := WritePDNSRecord(&got, -3, "b.example.com", ips[1]); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvent(&got, Event{Kind: EventQuery, Day: 17, Machine: "m1", Domain: "a.example.com"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvent(&got, Event{Kind: EventResolution, Day: 17, Domain: "a.example.com", IPs: ips}); err != nil {
		t.Fatal(err)
	}
	bl := intel.NewBlacklist()
	bl.Add(intel.BlacklistEntry{Domain: "bad.example.com", Family: "zeus", FirstListed: 4})
	if err := WriteBlacklist(&got, bl); err != nil {
		t.Fatal(err)
	}
	want := "m1\ta.example.com\n" +
		"a.example.com\t10.0.0.1,192.168.200.254\n" +
		"17\ta.example.com\n" +
		"-3\tb.example.com\t192.168.200.254\n" +
		"q\t17\tm1\ta.example.com\n" +
		"r\t17\ta.example.com\t10.0.0.1,192.168.200.254\n" +
		"bad.example.com\tzeus\t4\n"
	if got.String() != want {
		t.Fatalf("writer output changed:\ngot:  %q\nwant: %q", got.String(), want)
	}
}

// TestReadEventsLongLine: a valid event line far larger than the
// scanner's 64KiB initial buffer (but under MaxLineBytes) must parse,
// not fail with bufio.ErrTooLong. Regression test for the scanner
// buffer sizing in scanLines.
func TestReadEventsLongLine(t *testing.T) {
	var b strings.Builder
	b.WriteString("q\t1\tm1\ta.example.com\n")
	b.WriteString("r\t1\tbig.example.com\t")
	// ~900KB of IPs: 75000 * ~12 bytes each.
	for i := 0; i < 75000; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "10.%d.%d.%d", i>>16&0xff, i>>8&0xff, i&0xff)
	}
	b.WriteString("\nq\t1\tm2\tb.example.com\n")
	if len(b.String()) < 800*1024 {
		t.Fatalf("fixture only %d bytes; not exercising the buffer growth path", b.Len())
	}
	var events []Event
	if err := ReadEvents(strings.NewReader(b.String()), func(e Event) error {
		events = append(events, Event{Kind: e.Kind, Day: e.Day, Machine: e.Machine, Domain: e.Domain, IPs: append([]dnsutil.IPv4(nil), e.IPs...)})
		return nil
	}); err != nil {
		t.Fatalf("long valid line must parse: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if len(events[1].IPs) != 75000 {
		t.Fatalf("long resolution carried %d ips, want 75000", len(events[1].IPs))
	}
	if events[2].Machine != "m2" {
		t.Fatalf("event after the long line = %+v", events[2])
	}
}

// TestReadEventsObservedSampling: the sampled meter must still account
// for every line exactly once (the observability tests depend on exact
// line counts), while calling the clock only ~1/ParseSampleEvery times.
func TestReadEventsObservedSampling(t *testing.T) {
	for _, n := range []int{1, 2, ParseSampleEvery - 1, ParseSampleEvery, ParseSampleEvery + 1, 3*ParseSampleEvery + 5} {
		var b strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "q\t1\tm%d\ta.example.com\n", i)
		}
		var totalLines, calls, parsed int
		err := ReadEventsObserved(strings.NewReader(b.String()), func(Event) error {
			parsed++
			return nil
		}, func(d time.Duration, lines int) {
			if d < 0 || lines <= 0 {
				t.Fatalf("observe(%v, %d)", d, lines)
			}
			totalLines += lines
			calls++
		})
		if err != nil {
			t.Fatal(err)
		}
		if parsed != n || totalLines != n {
			t.Fatalf("n=%d: parsed=%d, observed lines=%d — every line must be booked exactly once", n, parsed, totalLines)
		}
		wantMax := n/ParseSampleEvery + 2
		if calls > wantMax {
			t.Fatalf("n=%d: %d observe calls, want <= %d (sampling broken)", n, calls, wantMax)
		}
	}

	// A parse error must not book the failing line.
	var totalLines int
	err := ReadEventsObserved(strings.NewReader("q\t1\tm1\ta.example.com\nBROKEN\n"), func(Event) error { return nil },
		func(d time.Duration, lines int) { totalLines += lines })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
	if totalLines > 1 {
		t.Fatalf("booked %d lines past a line-2 parse error", totalLines)
	}

	// Nil observe must behave exactly like ReadEvents.
	seen := 0
	if err := ReadEventsObserved(strings.NewReader("q\t1\tm1\ta.example.com\n"), func(Event) error { seen++; return nil }, nil); err != nil || seen != 1 {
		t.Fatalf("nil observe: seen=%d err=%v", seen, err)
	}
}
